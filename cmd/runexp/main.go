// Command runexp regenerates the paper's tables and figures (§5).
//
// Examples:
//
//	runexp -exp table2                  # Table 2 at default scale
//	runexp -exp fig3a -scale quick      # fast smoke run
//	runexp -exp fig1 -outdir ./figs     # SVGs of the five partitioners
//	runexp -exp all
//
// Default scale is the paper's setup shrunk ~1000× (see DESIGN.md);
// results are printed in the same row/series structure as the paper so
// the *shape* (who wins, by what factor) can be compared directly.
// EXPERIMENTS.md records one full run.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"geographer/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "table1|table2|fig1|fig2|fig3a|fig3b|fig4|components|phases|repart|stream|ablation|soak|chaos|serve|durable|highdim|all")
		scale   = flag.String("scale", "default", "default|quick")
		outdir  = flag.String("outdir", ".", "directory for fig1 SVGs")
		repeats = flag.Int("repeats", 0, "override measurement repetitions (paper: 5)")
		csvDir  = flag.String("csv", "", "also dump raw results as CSV files into this directory")
		bench   = flag.String("bench", "", "write the soak/chaos/serve/durable report as JSON to this path (BENCH_soak.json / BENCH_chaos.json / BENCH_serve.json / BENCH_durable.json convention)")
	)
	flag.Parse()

	var sc experiments.Scale
	switch *scale {
	case "default":
		sc = experiments.DefaultScale()
	case "quick":
		sc = experiments.QuickScale()
	default:
		fatal(fmt.Errorf("unknown scale %q", *scale))
	}
	if *repeats > 0 {
		sc.Repeats = *repeats
	}

	run := func(name string, f func() error) {
		t0 := time.Now()
		fmt.Printf("=== %s ===\n", name)
		if err := f(); err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		fmt.Printf("(%s finished in %v)\n\n", name, time.Since(t0).Round(time.Millisecond))
	}

	all := *exp == "all"
	any := false
	if all || *exp == "fig1" {
		any = true
		run("fig1", func() error {
			paths, err := experiments.Fig1(*outdir, sc)
			for _, p := range paths {
				fmt.Println("wrote", p)
			}
			return err
		})
	}
	if all || *exp == "table2" {
		any = true
		run("table2", func() error {
			rows, err := experiments.Table2(os.Stdout, sc)
			return dumpRows(*csvDir, "table2.csv", rows, err)
		})
	}
	if all || *exp == "table1" {
		any = true
		run("table1", func() error {
			rows, err := experiments.Table1(os.Stdout, sc)
			return dumpRows(*csvDir, "table1.csv", rows, err)
		})
	}
	if all || *exp == "fig2" {
		any = true
		run("fig2", func() error {
			ratios, err := experiments.Fig2(os.Stdout, sc)
			if err != nil || *csvDir == "" {
				return err
			}
			f, err := os.Create(filepath.Join(*csvDir, "fig2.csv"))
			if err != nil {
				return err
			}
			defer f.Close()
			return experiments.WriteRatiosCSV(f, ratios)
		})
	}
	if all || *exp == "fig3a" {
		any = true
		run("fig3a", func() error {
			pts, err := experiments.Fig3a(os.Stdout, sc)
			return dumpScale(*csvDir, "fig3a.csv", pts, err)
		})
	}
	if all || *exp == "fig3b" {
		any = true
		run("fig3b", func() error {
			pts, err := experiments.Fig3b(os.Stdout, sc)
			return dumpScale(*csvDir, "fig3b.csv", pts, err)
		})
	}
	if all || *exp == "fig4" {
		any = true
		run("fig4", func() error {
			rows, err := experiments.Fig4(os.Stdout, sc)
			return dumpRows(*csvDir, "fig4.csv", rows, err)
		})
	}
	if all || *exp == "components" {
		any = true
		run("components", func() error { _, err := experiments.Components(os.Stdout, sc); return err })
	}
	if all || *exp == "phases" {
		any = true
		run("phases", func() error {
			rows, err := experiments.Phases(os.Stdout, sc)
			if err != nil || *csvDir == "" {
				return err
			}
			f, err := os.Create(filepath.Join(*csvDir, "phases.csv"))
			if err != nil {
				return err
			}
			defer f.Close()
			return experiments.WritePhaseRowsCSV(f, rows)
		})
	}
	if all || *exp == "repart" {
		any = true
		run("repart", func() error {
			rows, err := experiments.Repart(os.Stdout, sc)
			if err != nil || *csvDir == "" {
				return err
			}
			f, err := os.Create(filepath.Join(*csvDir, "repart.csv"))
			if err != nil {
				return err
			}
			defer f.Close()
			return experiments.WriteRepartRowsCSV(f, rows)
		})
	}
	if all || *exp == "stream" {
		any = true
		run("stream", func() error {
			rows, err := experiments.Stream(os.Stdout, sc)
			if err != nil || *csvDir == "" {
				return err
			}
			f, err := os.Create(filepath.Join(*csvDir, "stream.csv"))
			if err != nil {
				return err
			}
			defer f.Close()
			return experiments.WriteStreamRowsCSV(f, rows)
		})
	}
	if all || *exp == "ablation" {
		any = true
		run("ablation", func() error { _, err := experiments.Ablation(os.Stdout, sc); return err })
	}
	// The soak is opt-in only ("-exp all" regenerates the paper's
	// tables/figures; the soak is a runtime stress, not a paper
	// artifact, and takes much longer at default scale).
	if *exp == "soak" {
		any = true
		run("soak", func() error {
			rep, err := experiments.Soak(os.Stdout, sc)
			if err != nil || *bench == "" {
				return err
			}
			f, err := os.Create(*bench)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := experiments.WriteSoakJSON(f, rep); err != nil {
				return err
			}
			fmt.Println("wrote", *bench)
			return nil
		})
	}
	// The chaos run is opt-in like the soak: it validates the
	// fault-tolerance machinery (injected rank failures, checkpoint
	// rollback, retry convergence), not a paper artifact.
	if *exp == "chaos" {
		any = true
		run("chaos", func() error {
			rows, rep, err := experiments.Chaos(os.Stdout, sc)
			if err != nil {
				return err
			}
			if *csvDir != "" {
				f, err := os.Create(filepath.Join(*csvDir, "chaos.csv"))
				if err != nil {
					return err
				}
				defer f.Close()
				if err := experiments.WriteChaosRowsCSV(f, rows); err != nil {
					return err
				}
			}
			if *bench != "" {
				f, err := os.Create(*bench)
				if err != nil {
					return err
				}
				defer f.Close()
				if err := experiments.WriteChaosJSON(f, rep); err != nil {
					return err
				}
				fmt.Println("wrote", *bench)
			}
			// Zero hangs is the headline claim; failing loudly here (rather
			// than in a diff later) keeps CI's timeout wrapper honest.
			for _, c := range rep.Cells {
				if !c.Identical {
					return fmt.Errorf("%s: chaos chain diverged from the fault-free chain", c.Graph)
				}
				if c.Recoveries != int(c.FaultsFired) {
					return fmt.Errorf("%s: %d faults fired but %d recoveries", c.Graph, c.FaultsFired, c.Recoveries)
				}
			}
			return nil
		})
	}
	// The serving run is opt-in like the soak and the chaos run: it
	// stresses the multi-tenant registry (shared worker pool, forced
	// eviction/restore, concurrent chains), not a paper artifact.
	if *exp == "serve" {
		any = true
		run("serve", func() error {
			_, rep, err := experiments.Serve(os.Stdout, sc)
			if err != nil {
				return err
			}
			if *bench != "" {
				f, err := os.Create(*bench)
				if err != nil {
					return err
				}
				defer f.Close()
				if err := experiments.WriteServeJSON(f, rep); err != nil {
					return err
				}
				fmt.Println("wrote", *bench)
			}
			// Bit-identical chains under shared scheduling is the headline
			// claim; fail loudly here rather than in a diff later.
			for _, c := range rep.Cells {
				if c.IdenticalChains != c.Tenants {
					return fmt.Errorf("%d of %d tenant chains diverged from their solo references",
						c.Tenants-c.IdenticalChains, c.Tenants)
				}
				if c.Restores != c.Evictions || c.Evictions == 0 {
					return fmt.Errorf("evictions=%d restores=%d: every forced park must restore", c.Evictions, c.Restores)
				}
			}
			return nil
		})
	}
	// The durability fence is opt-in like the chaos run: it validates
	// the disk spill store under injected corruption (torn writes,
	// bit-flips, deleted files) and cold crash recovery, not a paper
	// artifact.
	if *exp == "durable" {
		any = true
		run("durable", func() error {
			rep, err := experiments.Durable(os.Stdout, sc)
			if err != nil {
				return err
			}
			if *bench != "" {
				f, err := os.Create(*bench)
				if err != nil {
					return err
				}
				defer f.Close()
				if err := experiments.WriteDurableJSON(f, rep); err != nil {
					return err
				}
				fmt.Println("wrote", *bench)
			}
			// Quarantine-not-crash is the headline claim; fail loudly here
			// rather than in a diff later.
			for _, c := range rep.Cells {
				injured := c.InjectedTorn + c.InjectedFlip + c.InjectedDelete
				if c.LostTyped != injured {
					return fmt.Errorf("%d injuries but only %d degraded to the typed ErrTenantLost", injured, c.LostTyped)
				}
				if c.Quarantined != c.InjectedTorn+c.InjectedFlip {
					return fmt.Errorf("quarantined %d spills, want %d (torn + flipped)", c.Quarantined, c.InjectedTorn+c.InjectedFlip)
				}
				if want := c.Tenants - injured; c.SurvivorChains != want {
					return fmt.Errorf("%d of %d uninjured chains diverged from their solo references", want-c.SurvivorChains, want)
				}
				if c.Recovered != c.Tenants || c.RecoveredChains != c.Tenants {
					return fmt.Errorf("cold recovery resumed %d/%d tenants, %d/%d chains bit-identical",
						c.Recovered, c.Tenants, c.RecoveredChains, c.Tenants)
				}
			}
			return nil
		})
	}
	// The highdim grid is opt-in like the soak: feature-space clustering
	// at d ∈ {8, 16, 64} through the generic-dimension kernels — an
	// extension beyond the paper's 2D/3D meshes, not a paper artifact.
	if *exp == "highdim" {
		any = true
		run("highdim", func() error {
			rep, err := experiments.Highdim(os.Stdout, sc)
			if err != nil || *bench == "" {
				return err
			}
			f, err := os.Create(*bench)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := experiments.WriteHighdimJSON(f, rep); err != nil {
				return err
			}
			fmt.Println("wrote", *bench)
			return nil
		})
	}
	if !any {
		fatal(fmt.Errorf("unknown experiment %q", *exp))
	}
}

func dumpRows(dir, name string, rows []experiments.Row, err error) error {
	if err != nil || dir == "" {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return experiments.WriteRowsCSV(f, rows)
}

func dumpScale(dir, name string, pts []experiments.ScalePoint, err error) error {
	if err != nil || dir == "" {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return experiments.WriteScalePointsCSV(f, pts)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "runexp:", err)
	os.Exit(1)
}
