package main

// End-to-end crash-recovery test: build the real daemon binary, drive
// it over HTTP, kill -9 it between verbs, restart it on the same
// -spill-dir, and assert the parked tenant — and its exact partition —
// survived the crash.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

// buildDaemon compiles geographerd into dir and returns the binary path.
func buildDaemon(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "geographerd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// freeAddr reserves a loopback port and releases it for the daemon.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// startDaemon launches the binary and waits for /v1/stats to answer.
func startDaemon(t *testing.T, bin, addr, spill string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, "-addr", addr, "-spill-dir", spill, "-sweep-every", "0")
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/v1/stats")
		if err == nil {
			resp.Body.Close()
			return cmd
		}
		time.Sleep(25 * time.Millisecond)
	}
	_ = cmd.Process.Kill()
	t.Fatal("daemon did not become ready")
	return nil
}

// call issues a JSON request and decodes the response into out (out may
// be nil). Fails the test on any non-2xx status.
func call(t *testing.T, method, url string, body, out any) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var e map[string]string
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("%s %s: status %d (%v)", method, url, resp.StatusCode, e)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
}

// TestKillNineRecovery: create + partition + evict a tenant over HTTP,
// SIGKILL the daemon (no drain, no shutdown hook — the hard-crash
// shape), restart it from the same -spill-dir, and the tenant must be
// re-registered with a bit-identical assignment.
func TestKillNineRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the daemon binary")
	}
	dir := t.TempDir()
	bin := buildDaemon(t, dir)
	spill := filepath.Join(dir, "spill")
	addr := freeAddr(t)
	base := "http://" + addr

	const n, dim, k, p = 400, 2, 4, 2
	rng := rand.New(rand.NewSource(17))
	coords := make([]float64, n*dim)
	for i := range coords {
		coords[i] = rng.Float64() * 100
	}

	d1 := startDaemon(t, bin, addr, spill)
	call(t, "POST", base+"/v1/tenants", map[string]any{
		"name": "sim", "dim": dim, "coords": coords, "k": k, "processes": p,
	}, nil)
	var step struct {
		Assign []int32 `json:"assign"`
	}
	call(t, "POST", base+"/v1/tenants/sim/partition", map[string]any{}, &step)
	if len(step.Assign) != n {
		t.Fatalf("partition returned %d assignments", len(step.Assign))
	}
	want := step.Assign
	call(t, "POST", base+"/v1/tenants/sim/evict", map[string]any{}, nil)

	// kill -9: nothing graceful runs in the daemon.
	if err := d1.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_ = d1.Wait()

	addr2 := freeAddr(t)
	base2 := "http://" + addr2
	d2 := startDaemon(t, bin, addr2, spill)
	defer func() {
		_ = d2.Process.Signal(syscall.SIGTERM)
		done := make(chan struct{})
		go func() { _ = d2.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(15 * time.Second):
			_ = d2.Process.Kill()
		}
	}()

	var infos []struct {
		Name     string `json:"name"`
		Resident bool   `json:"resident"`
		Spilled  bool   `json:"spilled"`
	}
	call(t, "GET", base2+"/v1/tenants", nil, &infos)
	if len(infos) != 1 || infos[0].Name != "sim" || infos[0].Resident || !infos[0].Spilled {
		t.Fatalf("recovered tenant list: %+v", infos)
	}

	var got struct {
		Assign []int32 `json:"assign"`
	}
	call(t, "GET", base2+"/v1/tenants/sim/assign", nil, &got)
	if len(got.Assign) != n {
		t.Fatalf("recovered assign has %d entries", len(got.Assign))
	}
	for i := range want {
		if got.Assign[i] != want[i] {
			t.Fatalf("assignment diverged across kill -9 at point %d: %d vs %d", i, got.Assign[i], want[i])
		}
	}

	var st struct {
		Tenants  int   `json:"tenants"`
		Restores int64 `json:"restores"`
		Lost     int64 `json:"lost"`
	}
	call(t, "GET", base2+"/v1/stats", nil, &st)
	if st.Tenants != 1 || st.Restores != 1 || st.Lost != 0 {
		t.Fatalf("post-recovery stats: %+v", st)
	}

	fmt.Fprintln(os.Stderr, "kill -9 recovery round trip complete")
}
