// Command geographerd serves the partitioner as a multi-tenant HTTP
// service: named long-lived sessions (one per simulation/tenant) behind
// the registry of internal/serve, sharing the host under one bounded
// worker pool, with admission control against a resident-memory budget
// and LRU eviction of idle tenants to checkpointed spills.
//
//	geographerd -addr :8080 -max-resident-mb 1024 -max-tenants 64 -spill-dir /var/lib/geographer
//
// With -spill-dir, parked tenants are durable: evictions write
// checksummed checkpoint files under the directory (atomic rename,
// CRC32-C verified on read, corrupt files quarantined), and at startup
// the daemon scans the directory and re-registers every surviving
// tenant — so a crash (even kill -9) between verbs loses no parked
// tenant, and restored chains resume bit-identically. Without it,
// spills live in process memory and die with the daemon (the pre-spill
// behavior).
//
// Endpoints (see docs/serving.md for schemas):
//
//	POST   /v1/tenants                     create a tenant (ingest point set)
//	GET    /v1/tenants                     list tenants
//	GET    /v1/stats                       registry accounting
//	GET    /v1/tenants/{name}             tenant info
//	DELETE /v1/tenants/{name}             delete tenant
//	POST   /v1/tenants/{name}/partition    cold initial partition
//	POST   /v1/tenants/{name}/repartition  warm step if imbalance > eps
//	POST   /v1/tenants/{name}/weights      replace weights
//	POST   /v1/tenants/{name}/coords       replace coordinates
//	GET    /v1/tenants/{name}/imbalance    measure imbalance
//	GET    /v1/tenants/{name}/assign       current partition
//	GET    /v1/tenants/{name}/checkpoint   checkpoint bytes
//	POST   /v1/tenants/{name}/evict        force-park tenant
//
// Shutdown is graceful: SIGINT/SIGTERM stops accepting connections,
// lets in-flight requests finish (up to -drain-timeout), then drains
// the registry — every in-flight session verb completes and every
// resident tenant is parked to the spill store before state is
// released.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"geographer/internal/serve"
	"geographer/internal/store"
)

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		maxResidentMB = flag.Int64("max-resident-mb", 0, "resident-memory budget for live tenants, MiB (0 = unlimited)")
		maxTenants    = flag.Int("max-tenants", 0, "max tenants, resident + parked (0 = unlimited)")
		spillDir      = flag.String("spill-dir", "", "directory for durable tenant spills (empty = in-memory, lost on exit)")
		sweepEvery    = flag.Duration("sweep-every", time.Minute, "idle-eviction sweep period (0 disables)")
		sweepIdle     = flag.Int64("sweep-idle", 1000, "verbs of registry traffic a tenant may sit out before a sweep parks it")
		drainTimeout  = flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight requests on shutdown")
	)
	flag.Parse()

	cfg := serve.Config{
		MaxResidentBytes: *maxResidentMB << 20,
		MaxTenants:       *maxTenants,
	}
	if *spillDir != "" {
		disk, err := store.NewDisk(*spillDir)
		if err != nil {
			log.Fatalf("spill dir: %v", err)
		}
		cfg.Store = disk
	}
	reg := serve.NewRegistry(cfg)
	if *spillDir != "" {
		n, err := reg.Recover()
		if err != nil {
			log.Fatalf("recover from %s: %v", *spillDir, err)
		}
		if n > 0 {
			log.Printf("recovered %d parked tenant(s) from %s", n, *spillDir)
		}
	}

	// Server-side timeouts close off slowloris and stuck-client hangs;
	// the generous read/write ceilings accommodate large point-set
	// ingests and big assignment responses. Per-verb cancellation is
	// separate: handlers thread each request's context into the session
	// verbs, so a disconnected client aborts its own run immediately.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           serve.NewHandler(reg),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       5 * time.Minute,
		WriteTimeout:      10 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	stop := make(chan struct{})
	if *sweepEvery > 0 {
		go func() {
			tick := time.NewTicker(*sweepEvery)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					if n := reg.Sweep(*sweepIdle); n > 0 {
						log.Printf("sweep: parked %d idle tenant(s)", n)
					}
				}
			}
		}()
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		sig := <-sigs
		log.Printf("received %s, draining", sig)
		close(stop)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}()

	log.Printf("geographerd listening on %s (resident budget %d MiB, tenant cap %d, spill %q)",
		*addr, *maxResidentMB, *maxTenants, *spillDir)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	if n := reg.Drain(); n > 0 {
		log.Printf("parked %d resident tenant(s) on drain", n)
	}
	log.Printf("drained, bye")
}
