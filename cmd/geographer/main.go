// Command geographer partitions a geometric mesh from the command line:
// generate (or load) a mesh, run one of the five partitioners, report the
// paper's quality metrics, and optionally render the result as SVG.
//
// Examples:
//
//	geographer -gen refined -n 20000 -k 16 -method geographer -svg out.svg
//	geographer -in mesh.ggm -k 64 -method rcb -spmv 20
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"geographer/internal/baselines"
	"geographer/internal/core"
	"geographer/internal/mesh"
	"geographer/internal/metrics"
	"geographer/internal/mpi"
	"geographer/internal/partition"
	"geographer/internal/refine"
	"geographer/internal/spmv"
	"geographer/internal/viz"
)

func main() {
	var (
		gen     = flag.String("gen", "", "generate a mesh: delaunay2d|refined|bubbles|airfoil|rgg|climate|delaunay3d|tube3d")
		in      = flag.String("in", "", "load a mesh file written by genmesh")
		metis   = flag.String("metis", "", "load a METIS graph file (needs -xyz for coordinates)")
		xyz     = flag.String("xyz", "", "coordinate file accompanying -metis")
		n       = flag.Int("n", 20000, "mesh size when generating")
		seed    = flag.Int64("seed", 1, "generator / algorithm seed")
		k       = flag.Int("k", 16, "number of blocks")
		p       = flag.Int("p", 4, "number of simulated MPI ranks")
		method  = flag.String("method", "geographer", "partitioner: geographer|rcb|rib|multijagged|hsfc")
		eps     = flag.Float64("eps", 0.03, "max imbalance ε")
		strict  = flag.Bool("strict", false, "enforce ε as a hard guarantee (geographer only)")
		workers = flag.Int("workers", 0, "intra-rank kernel shards for geographer (0 = auto, 1 = serial)")
		doFM    = flag.Bool("refine", false, "apply FM boundary refinement after partitioning")
		svg     = flag.String("svg", "", "write partition SVG to this path (2D meshes)")
		spmvIt  = flag.Int("spmv", 0, "run the SpMV communication benchmark with this many iterations")
		outPart = flag.String("out", "", "write the block of each vertex, one per line")
	)
	flag.Parse()

	var m *mesh.Mesh
	var err error
	if *metis != "" {
		if *xyz == "" {
			fatal(fmt.Errorf("-metis requires -xyz with the coordinates"))
		}
		m, err = mesh.ReadMETISFiles(*metis, *xyz)
	} else {
		m, err = obtainMesh(*gen, *in, *n, *seed)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Println(m)

	tool, err := selectTool(*method, *eps, *seed, *strict, *workers)
	if err != nil {
		fatal(err)
	}

	world := mpi.NewWorld(*p)
	t0 := time.Now()
	part, err := partition.Run(world, m.Points, *k, tool)
	if err != nil {
		fatal(err)
	}
	wall := time.Since(t0)
	comp, comm := world.CostModel().ModeledTime(world.Stats())
	fmt.Printf("%s: k=%d p=%d wall=%v modeled=%.4gs (comp %.4g + comm %.4g)\n",
		tool.Name(), *k, *p, wall.Round(time.Millisecond), comp+comm, comp, comm)

	if *doFM {
		opts := refine.DefaultOptions()
		opts.Epsilon = *eps
		res, err := refine.Refine(m.G, m.Points, part.Assign, *k, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("refinement: %d moves, cut %d -> %d\n", res.Moves, res.CutBefore, res.CutAfter)
	}

	rep, err := metrics.Evaluate(m.G, m.Points, part.Assign, *k)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("quality: %s\n", rep)
	ar := metrics.MeanAspectRatio(m.Points, part.Assign, *k)
	fmt.Printf("block shapes: mean bbox aspect ratio %.2f\n", ar)

	if bkm, ok := tool.(*core.BalancedKMeans); ok {
		info := bkm.LastInfo()
		fmt.Printf("geographer phases: sfc=%.4fs redistribute=%.4fs kmeans=%.4fs; %d iterations, %d balance rounds\n",
			info.SFCSeconds, info.SortSeconds, info.KMeansSeconds, info.Iterations, info.BalanceRounds)
	}

	if *spmvIt > 0 {
		res, err := spmv.Benchmark(m.G, part.Assign, *k, *spmvIt)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("spmv comm: modeled %.4g s/iter, wall %.4g s/iter, halo %d values/iter (max %d per rank)\n",
			res.ModeledCommSeconds, res.CommSeconds, res.TotalHaloValues, res.MaxHaloValues)
	}

	if *svg != "" {
		if m.Points.Dim != 2 {
			fatal(fmt.Errorf("svg output needs a 2D mesh"))
		}
		if err := viz.RenderToFile(*svg, m.Points, part.Assign, *k, viz.DefaultOptions()); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *svg)
	}

	if *outPart != "" {
		f, err := os.Create(*outPart)
		if err != nil {
			fatal(err)
		}
		for _, b := range part.Assign {
			fmt.Fprintln(f, b)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *outPart)
	}
}

func obtainMesh(gen, in string, n int, seed int64) (*mesh.Mesh, error) {
	switch {
	case gen != "" && in != "":
		return nil, fmt.Errorf("use either -gen or -in, not both")
	case in != "":
		return mesh.ReadFile(in)
	case gen != "":
		switch gen {
		case "delaunay2d":
			return mesh.GenDelaunayUniform2D(n, seed)
		case "refined":
			return mesh.GenRefinedTri(n, seed)
		case "bubbles":
			return mesh.GenBubbles(n, seed)
		case "airfoil":
			return mesh.GenAirfoil(n, seed)
		case "rgg":
			return mesh.GenRGG2D(n, seed, 13)
		case "climate":
			return mesh.GenClimate(n, seed)
		case "delaunay3d":
			return mesh.GenDelaunay3D(n, seed)
		case "tube3d":
			return mesh.GenTube3D(n, seed)
		default:
			return nil, fmt.Errorf("unknown generator %q", gen)
		}
	default:
		return nil, fmt.Errorf("specify -gen <kind> or -in <file>")
	}
}

func selectTool(method string, eps float64, seed int64, strict bool, workers int) (partition.Distributed, error) {
	switch method {
	case "geographer":
		cfg := core.DefaultConfig()
		cfg.Epsilon = eps
		cfg.Seed = seed
		cfg.Strict = strict
		cfg.Workers = workers
		return core.New(cfg), nil
	case "rcb":
		return baselines.RCB(), nil
	case "rib":
		return baselines.RIB(), nil
	case "multijagged", "mj":
		return baselines.MultiJagged(), nil
	case "hsfc", "sfc":
		return baselines.HSFC{}, nil
	default:
		return nil, fmt.Errorf("unknown method %q", method)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "geographer:", err)
	os.Exit(1)
}
