// Command genmesh generates the synthetic benchmark meshes of the
// evaluation and stores them in the binary mesh format, or inspects an
// existing mesh file.
//
// Examples:
//
//	genmesh -kind climate -n 100000 -seed 3 -out climate.ggm
//	genmesh -info climate.ggm
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"geographer/internal/mesh"
)

func main() {
	var (
		kind   = flag.String("kind", "delaunay2d", "delaunay2d|refined|bubbles|airfoil|rgg|climate|delaunay3d|tube3d")
		n      = flag.Int("n", 100000, "approximate vertex count")
		seed   = flag.Int64("seed", 1, "generator seed")
		out    = flag.String("out", "", "output file (binary mesh format)")
		format = flag.String("format", "binary", "output format: binary|metis (metis writes <out>.graph and <out>.xyz)")
		info   = flag.String("info", "", "inspect an existing mesh file and exit")
	)
	flag.Parse()

	if *info != "" {
		m, err := mesh.ReadFile(*info)
		if err != nil {
			fatal(err)
		}
		fmt.Println(m)
		min, med, max := mesh.EdgeLengthStats(m)
		fmt.Printf("edge lengths: min=%.4g median=%.4g max=%.4g\n", min, med, max)
		fmt.Printf("max degree: %d\n", m.G.MaxDegree())
		if m.Points.Weight != nil {
			fmt.Printf("total weight: %.4g\n", m.Points.TotalWeight())
		}
		return
	}

	var m *mesh.Mesh
	var err error
	switch *kind {
	case "delaunay2d":
		m, err = mesh.GenDelaunayUniform2D(*n, *seed)
	case "refined":
		m, err = mesh.GenRefinedTri(*n, *seed)
	case "bubbles":
		m, err = mesh.GenBubbles(*n, *seed)
	case "airfoil":
		m, err = mesh.GenAirfoil(*n, *seed)
	case "rgg":
		m, err = mesh.GenRGG2D(*n, *seed, 13)
	case "climate":
		m, err = mesh.GenClimate(*n, *seed)
	case "delaunay3d":
		m, err = mesh.GenDelaunay3D(*n, *seed)
	case "tube3d":
		m, err = mesh.GenTube3D(*n, *seed)
	default:
		fatal(fmt.Errorf("unknown kind %q", *kind))
	}
	if err != nil {
		fatal(err)
	}
	fmt.Println(m)
	if *out == "" {
		fmt.Println("(no -out given; mesh not saved)")
		return
	}
	switch *format {
	case "binary":
		if err := mesh.WriteFile(*out, m); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	case "metis":
		prefix := strings.TrimSuffix(*out, ".graph")
		if err := mesh.WriteMETISFiles(prefix, m); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s.graph and %s.xyz\n", prefix, prefix)
	default:
		fatal(fmt.Errorf("unknown format %q", *format))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "genmesh:", err)
	os.Exit(1)
}
