package geographer

import (
	"math/rand"
	"path/filepath"
	"testing"
)

func randomCoords(n, dim int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n*dim)
	for i := range out {
		out[i] = rng.Float64()
	}
	return out
}

func TestPartitionFacade(t *testing.T) {
	coords := randomCoords(2000, 2, 1)
	blocks, err := Partition(coords, 2, nil, Options{K: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 2000 {
		t.Fatalf("%d assignments", len(blocks))
	}
	sizes := make([]int, 8)
	for _, b := range blocks {
		if b < 0 || b >= 8 {
			t.Fatalf("invalid block %d", b)
		}
		sizes[b]++
	}
	for b, s := range sizes {
		if s < 200 || s > 300 {
			t.Errorf("block %d has %d points (ε=0.03 → ~250)", b, s)
		}
	}
}

func TestPartitionAllMethods(t *testing.T) {
	coords := randomCoords(1000, 3, 2)
	for _, m := range []string{MethodGeographer, MethodRCB, MethodRIB, MethodMultiJagged, MethodHSFC} {
		blocks, err := Partition(coords, 3, nil, Options{K: 4, Method: m})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if len(blocks) != 1000 {
			t.Fatalf("%s: %d assignments", m, len(blocks))
		}
	}
	if _, err := Partition(coords, 3, nil, Options{K: 4, Method: "nope"}); err == nil {
		t.Fatal("unknown method accepted")
	}
	if _, err := Partition(coords, 3, nil, Options{K: 0}); err == nil {
		t.Fatal("K=0 accepted")
	}
	if _, err := Partition([]float64{1, 2, 3}, 2, nil, Options{K: 2}); err == nil {
		t.Fatal("odd coords accepted")
	}
}

func TestGenerateEvaluateRoundTrip(t *testing.T) {
	m, err := GenerateMesh(MeshRefined, 3000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if m.N() < 2500 {
		t.Fatalf("n = %d", m.N())
	}
	blocks, err := Partition(m.Coords, m.Dim, m.Weights, Options{K: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	q, err := Evaluate(m.XAdj, m.Adj, m.Coords, m.Dim, m.Weights, blocks, 8)
	if err != nil {
		t.Fatal(err)
	}
	if q.EdgeCut <= 0 || q.TotalCommVol <= 0 {
		t.Errorf("degenerate quality: %+v", q)
	}
	if q.Imbalance > 0.031 {
		t.Errorf("imbalance %.4f", q.Imbalance)
	}
	if q.EmptyBlocks != 0 {
		t.Errorf("%d empty blocks", q.EmptyBlocks)
	}
}

func TestGenerateMeshKinds(t *testing.T) {
	for _, kind := range []string{MeshDelaunay2D, MeshRefined, MeshBubbles, MeshAirfoil,
		MeshRGG, MeshClimate, MeshDelaunay3D, MeshTube3D} {
		m, err := GenerateMesh(kind, 800, 5)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if m.N() < 500 {
			t.Errorf("%s: n=%d", kind, m.N())
		}
	}
	if _, err := GenerateMesh("granite", 10, 1); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestClimateWeightedPartition(t *testing.T) {
	m, err := GenerateMesh(MeshClimate, 4000, 9)
	if err != nil {
		t.Fatal(err)
	}
	if m.Weights == nil {
		t.Fatal("climate mesh must carry weights")
	}
	blocks, err := Partition(m.Coords, m.Dim, m.Weights, Options{K: 8, Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	q, err := Evaluate(m.XAdj, m.Adj, m.Coords, m.Dim, m.Weights, blocks, 8)
	if err != nil {
		t.Fatal(err)
	}
	if q.Imbalance > 0.031 {
		t.Errorf("weighted imbalance %.4f", q.Imbalance)
	}
}

func TestSpMVCommTimeFacade(t *testing.T) {
	m, err := GenerateMesh(MeshDelaunay2D, 1500, 4)
	if err != nil {
		t.Fatal(err)
	}
	blocks, err := Partition(m.Coords, m.Dim, nil, Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	modeled, wall, err := SpMVCommTime(m.XAdj, m.Adj, blocks, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if modeled <= 0 || wall < 0 {
		t.Errorf("times: %g %g", modeled, wall)
	}
}

func TestRenderSVGFacade(t *testing.T) {
	m, err := GenerateMesh(MeshDelaunay2D, 500, 4)
	if err != nil {
		t.Fatal(err)
	}
	blocks, err := Partition(m.Coords, 2, nil, Options{K: 4, Method: MethodRCB})
	if err != nil {
		t.Fatal(err)
	}
	if err := RenderSVG(filepath.Join(t.TempDir(), "p.svg"), m.Coords, blocks, 4); err != nil {
		t.Fatal(err)
	}
}

func TestRefinePartitionFacade(t *testing.T) {
	m, err := GenerateMesh(MeshDelaunay2D, 2000, 8)
	if err != nil {
		t.Fatal(err)
	}
	// HSFC partitions have wrinkled boundaries: refinement should help.
	blocks, err := Partition(m.Coords, m.Dim, nil, Options{K: 8, Method: MethodHSFC})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RefinePartition(m.XAdj, m.Adj, m.Coords, m.Dim, nil, blocks, 8, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	if res.CutAfter > res.CutBefore {
		t.Errorf("refinement worsened cut: %d -> %d", res.CutBefore, res.CutAfter)
	}
	if res.Moves == 0 {
		t.Error("refinement of an SFC partition should move at least one vertex")
	}
	q, err := Evaluate(m.XAdj, m.Adj, m.Coords, m.Dim, nil, blocks, 8)
	if err != nil {
		t.Fatal(err)
	}
	if q.Imbalance > 0.031 {
		t.Errorf("refinement broke balance: %.4f", q.Imbalance)
	}
}

func TestExtrudeFacade(t *testing.T) {
	surface, err := GenerateMesh(MeshClimate, 1500, 3)
	if err != nil {
		t.Fatal(err)
	}
	blocks, err := Partition(surface.Coords, surface.Dim, surface.Weights, Options{K: 4, Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	vol, lifted, err := Extrude(surface, blocks, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if vol.Dim != 3 || vol.N() <= surface.N() {
		t.Fatalf("extruded mesh: dim=%d n=%d (surface %d)", vol.Dim, vol.N(), surface.N())
	}
	if len(lifted) != vol.N() {
		t.Fatalf("lifted partition length %d != %d", len(lifted), vol.N())
	}
	// The lifted 3D imbalance equals the weighted 2D imbalance up to the
	// weight flooring.
	q3, err := Evaluate(vol.XAdj, vol.Adj, vol.Coords, 3, nil, lifted, 4)
	if err != nil {
		t.Fatal(err)
	}
	if q3.Imbalance > 0.04 {
		t.Errorf("lifted imbalance %.4f", q3.Imbalance)
	}
	// Error paths.
	if _, _, err := Extrude(surface, blocks[:1], 0.01); err == nil {
		t.Error("short partition accepted")
	}
	surface.Weights = nil
	if _, _, err := Extrude(surface, blocks, 0.01); err == nil {
		t.Error("unweighted surface accepted")
	}
}

func TestHeterogeneousTargetsFacade(t *testing.T) {
	coords := randomCoords(2000, 2, 6)
	blocks, err := Partition(coords, 2, nil, Options{
		K: 2, TargetFractions: []float64{0.7, 0.3}, Strict: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	n0 := 0
	for _, b := range blocks {
		if b == 0 {
			n0++
		}
	}
	if n0 < 1300 || n0 > 1500 {
		t.Errorf("block 0 holds %d of 2000, want ~1400", n0)
	}
}
