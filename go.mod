module geographer

go 1.24
