// Command doccheck verifies that every exported top-level identifier
// in the given package directories carries a doc comment, so the
// public facade stays fully documented under `go doc` (the CI docs job
// runs it over the repository root). It checks exported functions,
// methods on exported receivers, type declarations, and const/var
// specs (a doc comment on a grouped declaration covers the group,
// mirroring how godoc renders them). Test files are skipped.
//
// Usage: doccheck DIR [DIR...]
// Exits non-zero listing every undocumented identifier.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		dirs = []string{"."}
	}
	var missing []string
	for _, dir := range dirs {
		m, err := checkDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			os.Exit(2)
		}
		missing = append(missing, m...)
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		fmt.Fprintf(os.Stderr, "doccheck: %d exported identifiers without doc comments:\n", len(missing))
		for _, m := range missing {
			fmt.Fprintln(os.Stderr, " ", m)
		}
		os.Exit(1)
	}
}

// checkDir parses one package directory and returns the undocumented
// exported identifiers as "file:line: name" strings.
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var missing []string
	report := func(pos token.Pos, name string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: %s", filepath.ToSlash(p.Filename), p.Line, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || !exportedReceiver(d) {
						continue
					}
					if d.Doc == nil {
						report(d.Pos(), funcLabel(d))
					}
				case *ast.GenDecl:
					checkGenDecl(d, report)
				}
			}
		}
	}
	return missing, nil
}

// exportedReceiver reports whether a function is free or its receiver
// type is exported (methods on unexported types are not public API).
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return true
		}
	}
}

func funcLabel(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	t := d.Recv.List[0].Type
	if s, ok := t.(*ast.StarExpr); ok {
		t = s.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + d.Name.Name
	}
	return d.Name.Name
}

// checkGenDecl handles type/const/var declarations: a doc comment on
// the declaration covers every spec in the group; otherwise each
// exported spec needs its own.
func checkGenDecl(d *ast.GenDecl, report func(token.Pos, string)) {
	if d.Tok == token.IMPORT || d.Doc != nil {
		return
	}
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && s.Doc == nil && s.Comment == nil {
				report(s.Pos(), s.Name.Name)
			}
		case *ast.ValueSpec:
			if s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					report(name.Pos(), name.Name)
				}
			}
		}
	}
}
