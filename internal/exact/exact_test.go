package exact

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
)

// refSum computes the exactly-rounded sum of vs with big.Float at a
// precision large enough to be exact for the inputs used in these tests.
func refSum(vs []float64) float64 {
	acc := new(big.Float).SetPrec(4096)
	tmp := new(big.Float).SetPrec(4096)
	for _, v := range vs {
		acc.Add(acc, tmp.SetFloat64(v))
	}
	v, _ := acc.Float64()
	return v
}

func sumAll(vs []float64) float64 {
	var s Sum
	for _, v := range vs {
		s.Add(v)
	}
	return s.Float64()
}

func TestSingleValuesRoundTrip(t *testing.T) {
	cases := []float64{
		0, 1, -1, 0.1, -0.1, 1e300, -1e300, 1e-300, 3.5,
		math.MaxFloat64, -math.MaxFloat64,
		math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64,
		0x1p-1022, // smallest normal
		0x1.fffffffffffffp1023 / 2,
		math.Pi, math.E, 1<<53 - 1, 1 << 53,
	}
	for _, v := range cases {
		var s Sum
		s.Add(v)
		if got := s.Float64(); got != v {
			t.Errorf("Add(%g).Float64() = %g", v, got)
		}
	}
}

func TestNegativeZeroAndEmpty(t *testing.T) {
	var s Sum
	if got := s.Float64(); got != 0 {
		t.Errorf("empty sum = %g", got)
	}
	s.Add(math.Copysign(0, -1))
	s.Add(0)
	if got := s.Float64(); got != 0 {
		t.Errorf("sum of zeros = %g", got)
	}
}

func TestNonFinite(t *testing.T) {
	var s Sum
	s.Add(1)
	s.Add(math.Inf(1))
	if got := s.Float64(); !math.IsInf(got, 1) {
		t.Errorf("sum with +Inf = %g", got)
	}
	s.Add(math.Inf(-1))
	if got := s.Float64(); !math.IsNaN(got) {
		t.Errorf("sum with +Inf and -Inf = %g, want NaN", got)
	}
	var s2 Sum
	s2.Add(math.NaN())
	s2.Add(5)
	if got := s2.Float64(); !math.IsNaN(got) {
		t.Errorf("sum with NaN = %g", got)
	}
	var s3 Sum
	s3.Add(math.Inf(-1))
	if got := s3.Float64(); !math.IsInf(got, -1) {
		t.Errorf("sum with -Inf = %g", got)
	}
}

func TestCancellation(t *testing.T) {
	vs := []float64{1e308, 1e-308, -1e308, 1.0, -1.0, 1e-308}
	want := 2e-308
	if got := sumAll(vs); got != want {
		t.Errorf("cancellation sum = %g, want %g", got, want)
	}
	// Exact cancellation to zero across the full range.
	var s Sum
	for _, v := range []float64{math.MaxFloat64, math.SmallestNonzeroFloat64} {
		s.Add(v)
		s.Add(-v)
	}
	if got := s.Float64(); got != 0 {
		t.Errorf("full cancellation = %g", got)
	}
}

func TestOverflowSaturates(t *testing.T) {
	var s Sum
	s.Add(math.MaxFloat64)
	s.Add(math.MaxFloat64)
	if got := s.Float64(); !math.IsInf(got, 1) {
		t.Errorf("2·MaxFloat64 = %g, want +Inf", got)
	}
	s.Add(-math.MaxFloat64)
	if got := s.Float64(); got != math.MaxFloat64 {
		// The accumulator is exact: the intermediate overflow must not
		// be sticky, unlike naive float64 accumulation.
		t.Errorf("2·Max − Max = %g, want MaxFloat64", got)
	}
}

func TestMatchesReferenceAcrossMagnitudes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(400)
		vs := make([]float64, n)
		for i := range vs {
			mag := rng.Intn(600) - 300
			vs[i] = (rng.Float64()*2 - 1) * math.Pow(2, float64(mag))
		}
		got := sumAll(vs)
		want := refSum(vs)
		if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
			t.Fatalf("trial %d: sum = %g, want %g", trial, got, want)
		}
	}
}

func TestOrderAndGroupingInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 1000
	vs := make([]float64, n)
	for i := range vs {
		vs[i] = (rng.Float64()*2 - 1) * math.Pow(10, float64(rng.Intn(40)-20))
	}
	want := sumAll(vs)

	for trial := 0; trial < 20; trial++ {
		perm := rng.Perm(n)
		// Random grouping into 1..8 accumulators, merged via the wire
		// format like a cross-rank reduction.
		groups := 1 + rng.Intn(8)
		wires := make([][]int64, groups)
		accs := make([]Sum, groups)
		for _, i := range perm {
			accs[rng.Intn(groups)].Add(vs[i])
		}
		total := make([]int64, WireLen)
		for g := range accs {
			wires[g] = make([]int64, WireLen)
			accs[g].EncodeTo(wires[g])
			for j, v := range wires[g] {
				total[j] += v
			}
		}
		if got := DecodeFloat64(total); got != want {
			t.Fatalf("trial %d (%d groups): %g != %g", trial, groups, got, want)
		}
	}
}

func TestMergeMatchesWireSum(t *testing.T) {
	var a, b Sum
	a.Add(1e100)
	a.Add(-3.25)
	b.Add(7e-200)
	b.Add(1e100)

	wa := make([]int64, WireLen)
	wb := make([]int64, WireLen)
	a.EncodeTo(wa)
	b.EncodeTo(wb)
	for i := range wa {
		wa[i] += wb[i]
	}
	a.Merge(&b)
	if got, want := a.Float64(), DecodeFloat64(wa); got != want {
		t.Errorf("Merge = %g, wire sum = %g", got, want)
	}
}

func TestManySmallAdds(t *testing.T) {
	// 1M unit weights: exact integer sum, no drift.
	var s Sum
	for i := 0; i < 1_000_000; i++ {
		s.Add(1)
	}
	if got := s.Float64(); got != 1_000_000 {
		t.Errorf("1M unit adds = %g", got)
	}
}

func BenchmarkSumAdd(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	vs := make([]float64, 4096)
	for i := range vs {
		vs[i] = rng.Float64() * 100
	}
	var s Sum
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(vs[i&4095])
	}
	sinkFloat = s.Float64()
}

var sinkFloat float64
