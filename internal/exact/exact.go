// Package exact provides an order-independent, exactly-rounded float64
// accumulator for the warm-start repartitioning path of the balanced
// k-means core.
//
// Floating-point addition is not associative, so the global weight and
// center sums of the k-means balance loop depend on how points are
// grouped into ranks and kernel chunks — the one obstacle to making
// warm-start repartitioning bit-identical across Processes and Workers
// (see DESIGN.md, "Repartitioning invariants"). Sum sidesteps this by
// accumulating every contribution into a fixed-point superaccumulator
// wide enough to represent any finite float64 sum exactly: integer
// limb additions are associative and commutative, so any grouping of
// Add calls and any reduction order over encoded accumulators yields
// the same limbs, and Float64 rounds the exact value to the nearest
// float64 once at the end.
//
// The wire format (EncodeTo / DecodeFloat64) is a flat []int64 designed
// to ride mpi.AllreduceSum: element-wise integer summation of encoded
// accumulators is exactly the merge of the underlying sums.
package exact

import (
	"math"
	"math/big"
)

const (
	// limbBits is the width of one accumulator digit. Digits are kept in
	// int64 so carries accumulate in the spare high bits instead of
	// requiring propagation on every Add.
	limbBits = 32

	// minExp is the exponent of the accumulator's least significant bit:
	// the smallest subnormal float64 is 2^-1074.
	minExp = -1074

	// numLimbs spans the full finite float64 range: the largest finite
	// mantissa bit sits at exponent 971+52 = 1023, i.e. offset
	// 1023-minExp = 2097, limb 65. An Add touches limbs [li, li+2], so
	// 66 limbs suffice.
	numLimbs = 66

	// WireLen is the []int64 footprint of one encoded Sum: the limbs
	// plus the three non-finite counters.
	WireLen = numLimbs + 3
)

// MaxAdds bounds the number of Add calls (summed over all accumulators
// merged into one, e.g. across ranks) before a limb could overflow:
// each Add contributes < 2^32 to a limb digit, and int64 holds 2^63.
const MaxAdds = 1 << 31

// Sum is a superaccumulator for float64 values. The zero value is an
// empty sum. Sum is not safe for concurrent use.
type Sum struct {
	limb [numLimbs]int64
	// Non-finite inputs are counted, not accumulated: any NaN (or both
	// infinity signs) makes the sum NaN, one infinity sign makes it
	// that infinity — matching the result of ordinary float64 addition
	// up to the usual Inf-Inf ambiguity, which IEEE also defines as NaN.
	nan, posInf, negInf int64
}

// Reset empties the accumulator.
func (s *Sum) Reset() { *s = Sum{} }

// Add accumulates v exactly.
func (s *Sum) Add(v float64) {
	bits := math.Float64bits(v)
	exp := int((bits >> 52) & 0x7ff)
	frac := bits & (1<<52 - 1)
	if exp == 0x7ff {
		switch {
		case frac != 0:
			s.nan++
		case bits>>63 == 0:
			s.posInf++
		default:
			s.negInf++
		}
		return
	}
	if exp == 0 && frac == 0 {
		return // ±0 contributes nothing
	}
	// v = m · 2^e with m < 2^53: normals are (2^52|frac)·2^(exp-1075),
	// subnormals frac·2^-1074.
	m := frac
	e := minExp
	if exp != 0 {
		m |= 1 << 52
		e = exp - 1075
	}
	p := e - minExp // bit offset of m's bit 0 in the accumulator
	li := p >> 5
	sh := uint(p & 31)
	w := m << sh // low 64 bits of the shifted mantissa
	lo := int64(w & 0xffffffff)
	mid := int64(w >> 32)
	hi := int64(m >> (64 - sh)) // 0 when sh == 0 (Go shifts never wrap)
	if bits>>63 != 0 {
		lo, mid, hi = -lo, -mid, -hi
	}
	s.limb[li] += lo
	s.limb[li+1] += mid
	s.limb[li+2] += hi
}

// Merge adds the contents of o into s. Equivalent to summing the two
// encoded forms element-wise.
func (s *Sum) Merge(o *Sum) {
	for i := range s.limb {
		s.limb[i] += o.limb[i]
	}
	s.nan += o.nan
	s.posInf += o.posInf
	s.negInf += o.negInf
}

// EncodeTo writes the accumulator into dst[:WireLen]. Encoded
// accumulators may be summed element-wise (e.g. by mpi.AllreduceSum)
// and the result decoded with DecodeFloat64; integer addition is
// associative, so the decode is independent of the merge order.
func (s *Sum) EncodeTo(dst []int64) {
	_ = dst[WireLen-1]
	copy(dst, s.limb[:])
	dst[numLimbs] = s.nan
	dst[numLimbs+1] = s.posInf
	dst[numLimbs+2] = s.negInf
}

// Float64 returns the exactly-rounded (nearest-even) float64 value of
// the sum; overflow saturates to ±Inf like ordinary float64 addition.
func (s *Sum) Float64() float64 {
	return decode(s.limb[:], s.nan, s.posInf, s.negInf)
}

// DecodeFloat64 rounds an encoded (possibly element-wise summed)
// accumulator from src[:WireLen].
func DecodeFloat64(src []int64) float64 {
	_ = src[WireLen-1]
	return decode(src[:numLimbs], src[numLimbs], src[numLimbs+1], src[numLimbs+2])
}

func decode(limb []int64, nan, posInf, negInf int64) float64 {
	switch {
	case nan > 0 || (posInf > 0 && negInf > 0):
		return math.NaN()
	case posInf > 0:
		return math.Inf(1)
	case negInf > 0:
		return math.Inf(-1)
	}
	// Fold the signed base-2^32 digits into one exact integer, highest
	// limb first, then scale by the accumulator's least significant bit.
	acc := new(big.Int)
	tmp := new(big.Int)
	for i := numLimbs - 1; i >= 0; i-- {
		acc.Lsh(acc, limbBits)
		acc.Add(acc, tmp.SetInt64(limb[i]))
	}
	if acc.Sign() == 0 {
		return 0
	}
	f := new(big.Float).SetPrec(uint(acc.BitLen()) + 1).SetInt(acc)
	f.SetMantExp(f, minExp) // z = f · 2^minExp
	v, _ := f.Float64()
	return v
}
