package exact

import "math"

// RowSums is a bank of m superaccumulators stored limb-major: row l
// holds limb l of every sum, i.e. backing[l*m+j] is limb l of sum j,
// and the last three rows hold the nan/posInf/negInf counters. It is
// semantically identical to m parallel Sum values — integer limb
// addition is associative, so any Add order and any merge grouping
// yield the same limbs — but shaped for the warm repartition path:
//
//   - The backing array IS the wire format: element-wise int64 summation
//     of two banks merges them, exactly like Sum's EncodeTo wire, with
//     no per-round encode/decode copies and no second wire buffer.
//
//   - Real inputs cluster in a narrow exponent range, so Adds touch a
//     handful of the 66 limb rows. The bank tracks the touched-row
//     window [Lo, Hi) and exchanges only rows[Lo*m : Hi*m] through
//     mpi.AllreduceSumSparse — ~10× less fold work and traffic than a
//     dense k·WireLen reduction, still bit-identical.
//
// The invariant behind the window: rows outside [lo, hi) are all-zero.
// Add grows the window over rows it touches; Reset clears only the
// window; a sparse reduction whose result window is a superset (the
// union over ranks) writes global values into rows that were zero here,
// preserving the invariant when the window widens to the union.
//
// The zero-extended bank of m sums takes WireLen·m int64 — for k=256
// that is ~138 KB versus ~430 KB for 256 Sum values plus their wire
// buffer, which is what bounds per-rank scratch at p=4096 (DESIGN.md,
// "Scaling invariants").
type RowSums struct {
	m      int
	rows   []int64
	lo, hi int // touched-row window, in rows
}

// NewRowSums returns a bank of m empty sums.
func NewRowSums(m int) *RowSums {
	return &RowSums{m: m, rows: make([]int64, WireLen*m), lo: WireLen}
}

// Len returns the number of sums in the bank.
func (rs *RowSums) Len() int { return rs.m }

// Reset empties every sum. Only the touched window is cleared, so a
// bank whose inputs span few exponent rows resets in O(window·m).
func (rs *RowSums) Reset() {
	if rs.hi > rs.lo {
		clear(rs.rows[rs.lo*rs.m : rs.hi*rs.m])
	}
	rs.lo, rs.hi = WireLen, 0
}

// Add accumulates v into sum j exactly. Same bit path as Sum.Add.
func (rs *RowSums) Add(j int, v float64) {
	m := rs.m
	bits := math.Float64bits(v)
	exp := int((bits >> 52) & 0x7ff)
	frac := bits & (1<<52 - 1)
	if exp == 0x7ff {
		var row int
		switch {
		case frac != 0:
			row = numLimbs
		case bits>>63 == 0:
			row = numLimbs + 1
		default:
			row = numLimbs + 2
		}
		rs.rows[row*m+j]++
		rs.grow(row, row+1)
		return
	}
	if exp == 0 && frac == 0 {
		return // ±0 contributes nothing
	}
	mant := frac
	e := minExp
	if exp != 0 {
		mant |= 1 << 52
		e = exp - 1075
	}
	p := e - minExp
	li := p >> 5
	sh := uint(p & 31)
	w := mant << sh
	lo := int64(w & 0xffffffff)
	mid := int64(w >> 32)
	hi := int64(mant >> (64 - sh)) // 0 when sh == 0 (Go shifts never wrap)
	if bits>>63 != 0 {
		lo, mid, hi = -lo, -mid, -hi
	}
	rs.rows[li*m+j] += lo
	rs.rows[(li+1)*m+j] += mid
	rs.rows[(li+2)*m+j] += hi
	rs.grow(li, li+3)
}

func (rs *RowSums) grow(lo, hi int) {
	if lo < rs.lo {
		rs.lo = lo
	}
	if hi > rs.hi {
		rs.hi = hi
	}
}

// Wire exposes the touched window as an offset and segment of the flat
// wire vector of conceptual length WireLen·m, ready for
// mpi.AllreduceSumSparse(c, WireLen·m, off, seg, rs.Backing()). The
// segment aliases the bank — summing into it merges banks.
func (rs *RowSums) Wire() (off int, seg []int64) {
	if rs.hi <= rs.lo {
		return 0, nil
	}
	return rs.lo * rs.m, rs.rows[rs.lo*rs.m : rs.hi*rs.m]
}

// Backing returns the full wire vector (length WireLen·m) for use as
// the in-place output of a sparse reduction.
func (rs *RowSums) Backing() []int64 { return rs.rows }

// SetWindow records that rows now holds valid (and outside, zero) data
// for the flat window [off, off+n) — the result window of a sparse
// reduction. off and n must be multiples of m, as produced by reducing
// Wire segments.
func (rs *RowSums) SetWindow(off, n int) {
	if n == 0 {
		rs.lo, rs.hi = WireLen, 0
		return
	}
	if off%rs.m != 0 || n%rs.m != 0 {
		panic("exact: RowSums window not row-aligned")
	}
	rs.lo, rs.hi = off/rs.m, (off+n)/rs.m
}

// Float64 returns the exactly-rounded value of sum j.
func (rs *RowSums) Float64(j int) float64 {
	m := rs.m
	var limbs [numLimbs]int64
	for l := rs.lo; l < rs.hi && l < numLimbs; l++ {
		limbs[l] = rs.rows[l*m+j]
	}
	var nan, posInf, negInf int64
	if rs.hi > numLimbs {
		nan = rs.rows[numLimbs*m+j]
		posInf = rs.rows[(numLimbs+1)*m+j]
		negInf = rs.rows[(numLimbs+2)*m+j]
	}
	return decode(limbs[:], nan, posInf, negInf)
}
