package exact

import (
	"math"
	"math/rand"
	"testing"
)

// RowSums must agree bit-for-bit with a bank of Sum accumulators on any
// input mix, including subnormals, huge magnitudes, and non-finites.
func TestRowSumsMatchesSum(t *testing.T) {
	const m = 7
	rng := rand.New(rand.NewSource(42))
	rs := NewRowSums(m)
	ref := make([]Sum, m)
	for i := 0; i < 5000; i++ {
		j := rng.Intn(m)
		var v float64
		switch rng.Intn(10) {
		case 0:
			v = math.Ldexp(rng.Float64()-0.5, rng.Intn(600)-300)
		case 1:
			v = math.Ldexp(rng.Float64(), -1070-rng.Intn(5)) // subnormal range
		case 2:
			v = 0
		default:
			v = (rng.Float64() - 0.5) * 1e6
		}
		rs.Add(j, v)
		ref[j].Add(v)
	}
	for j := 0; j < m; j++ {
		got, want := rs.Float64(j), ref[j].Float64()
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("sum %d: RowSums %x != Sum %x", j, got, want)
		}
	}
}

func TestRowSumsNonFinite(t *testing.T) {
	rs := NewRowSums(3)
	rs.Add(0, math.Inf(1))
	rs.Add(0, 1)
	rs.Add(1, math.Inf(-1))
	rs.Add(2, math.NaN())
	if v := rs.Float64(0); !math.IsInf(v, 1) {
		t.Errorf("sum 0 = %g, want +Inf", v)
	}
	if v := rs.Float64(1); !math.IsInf(v, -1) {
		t.Errorf("sum 1 = %g, want -Inf", v)
	}
	if v := rs.Float64(2); !math.IsNaN(v) {
		t.Errorf("sum 2 = %g, want NaN", v)
	}
}

// The wire window must cover exactly the touched rows, and element-wise
// summation of two banks' windows must merge them, matching Sum.Merge.
func TestRowSumsWireMerge(t *testing.T) {
	const m = 4
	a, b := NewRowSums(m), NewRowSums(m)
	refA, refB := make([]Sum, m), make([]Sum, m)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		j := rng.Intn(m)
		va := (rng.Float64() - 0.5) * 1e3
		vb := math.Ldexp(rng.Float64()-0.5, rng.Intn(100)-50)
		a.Add(j, va)
		refA[j].Add(va)
		b.Add(j, vb)
		refB[j].Add(vb)
	}
	// Merge b into a through the flat wire: union window, element-wise add.
	offA, segA := a.Wire()
	offB, segB := b.Wire()
	lo := min(offA, offB)
	hi := max(offA+len(segA), offB+len(segB))
	back := a.Backing()
	for i, v := range segB {
		back[offB+i] += v
	}
	_ = offA
	a.SetWindow(lo, hi-lo)
	for j := 0; j < m; j++ {
		refA[j].Merge(&refB[j])
		got, want := a.Float64(j), refA[j].Float64()
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("merged sum %d: %x != %x", j, got, want)
		}
	}
	_ = segA
}

// Typical k-means data (weights near 1, coordinates in a unit box)
// must touch only a few rows, and Reset must restore the empty state.
func TestRowSumsWindowNarrowAndReset(t *testing.T) {
	const m = 8
	rs := NewRowSums(m)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		rs.Add(rng.Intn(m), rng.Float64())
	}
	_, seg := rs.Wire()
	if rows := len(seg) / m; rows > 4 {
		t.Errorf("unit-box inputs touched %d rows; expected a narrow window", rows)
	}
	rs.Reset()
	if off, seg := rs.Wire(); off != 0 || seg != nil {
		t.Errorf("Reset left window (%d, %d)", off, len(seg))
	}
	for _, v := range rs.Backing() {
		if v != 0 {
			t.Fatal("Reset left nonzero backing")
		}
	}
	for j := 0; j < m; j++ {
		if rs.Float64(j) != 0 {
			t.Errorf("sum %d nonzero after Reset", j)
		}
	}
	// Reuse after Reset behaves like a fresh bank.
	rs.Add(2, 1.5)
	rs.Add(2, 2.5)
	if got := rs.Float64(2); got != 4 {
		t.Errorf("reused sum = %g, want 4", got)
	}
}
