package spmv

import (
	"fmt"
	"sort"
	"time"

	"geographer/internal/graph"
	"geographer/internal/mpi"
)

// BenchmarkP2P is Benchmark with the halo exchange done via neighbor
// point-to-point messages instead of a personalized all-to-all — the
// pattern a production MPI SpMV uses (posting sends/receives only to the
// blocks sharing a boundary). Results are numerically identical to
// Benchmark; the modeled communication time differs because p2p pays one
// latency per neighbor rather than a collective tree, which is exactly
// why well-shaped partitions (few neighbors per block) win on real
// machines.
func BenchmarkP2P(g *graph.Graph, part []int32, k int, iters int) (Result, error) {
	if k < 1 {
		return Result{}, fmt.Errorf("spmv: k=%d", k)
	}
	if len(part) != g.N {
		return Result{}, fmt.Errorf("spmv: partition length %d != n %d", len(part), g.N)
	}
	if iters < 1 {
		iters = 1
	}
	owned := make([][]int32, k)
	for v := 0; v < g.N; v++ {
		b := part[v]
		if b < 0 || int(b) >= k {
			return Result{}, fmt.Errorf("spmv: vertex %d in invalid block %d", v, b)
		}
		owned[b] = append(owned[b], int32(v))
	}

	world := mpi.NewWorld(k)
	commSec := make([]float64, k)
	checksums := make([]float64, k)

	err := world.Run(func(c *mpi.Comm) {
		me := c.Rank()
		mine := owned[me]
		localIdx := make(map[int32]int32, len(mine))
		for i, v := range mine {
			localIdx[v] = int32(i)
		}
		need := make(map[int32][]int32)
		for _, v := range mine {
			for _, u := range g.Neighbors(v) {
				if part[u] != int32(me) {
					need[part[u]] = append(need[part[u]], u)
				}
			}
		}
		recvLists := make([][]int32, k)
		var neighbors []int // ranks I exchange with (either direction)
		for owner, vs := range need {
			sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
			dedup := vs[:0]
			for i, u := range vs {
				if i == 0 || vs[i-1] != u {
					dedup = append(dedup, u)
				}
			}
			recvLists[owner] = dedup
		}
		// Plans still travel by one alltoall (setup phase, untimed).
		plansOut := make([][]int32, k)
		for owner := 0; owner < k; owner++ {
			plansOut[owner] = recvLists[owner]
		}
		sendLists := mpi.Alltoall(c, plansOut)
		for r := 0; r < k; r++ {
			if r != me && (len(sendLists[r]) > 0 || len(recvLists[r]) > 0) {
				neighbors = append(neighbors, r)
			}
		}

		haloSlot := make(map[int32]int32)
		nHalo := 0
		for owner := 0; owner < k; owner++ {
			for _, u := range recvLists[owner] {
				haloSlot[u] = int32(len(mine) + nHalo)
				nHalo++
			}
		}
		var xadj []int64
		var cols []int32
		xadj = append(xadj, 0)
		for _, v := range mine {
			for _, u := range g.Neighbors(v) {
				if part[u] == int32(me) {
					cols = append(cols, localIdx[u])
				} else {
					cols = append(cols, haloSlot[u])
				}
			}
			xadj = append(xadj, int64(len(cols)))
		}

		x := make([]float64, len(mine)+nHalo)
		y := make([]float64, len(mine))
		for i := range mine {
			x[i] = 1
		}

		var localCommSec float64
		for it := 0; it < iters; it++ {
			t0 := time.Now()
			// Post all sends, then drain receives (deadlock-free because
			// mailboxes are buffered and symmetric).
			for _, r := range neighbors {
				if len(sendLists[r]) == 0 {
					continue
				}
				vals := make([]float64, len(sendLists[r]))
				for i, v := range sendLists[r] {
					vals[i] = x[localIdx[v]]
				}
				c.Send(r, vals, int64(len(vals))*8)
			}
			for _, r := range neighbors {
				if len(recvLists[r]) == 0 {
					continue
				}
				vals := c.Recv(r).([]float64)
				for i, u := range recvLists[r] {
					x[haloSlot[u]] = vals[i]
				}
			}
			c.Barrier() // iteration boundary (replaces collective sync)
			localCommSec += time.Since(t0).Seconds()

			for i := range mine {
				sum := 0.0
				for jj := xadj[i]; jj < xadj[i+1]; jj++ {
					sum += x[cols[jj]]
				}
				y[i] = sum
			}
			c.AddOps(xadj[len(mine)])
			for i := range mine {
				deg := float64(xadj[i+1] - xadj[i])
				if deg == 0 {
					deg = 1
				}
				x[i] = y[i] / deg
			}
		}
		commSec[me] = localCommSec
		sum := 0.0
		for _, v := range y {
			sum += v
		}
		checksums[me] = sum
	})
	if err != nil {
		return Result{}, err
	}

	res := Result{Iterations: iters}
	for _, s := range commSec {
		if s > res.CommSeconds {
			res.CommSeconds = s
		}
	}
	res.CommSeconds /= float64(iters)
	for _, s := range world.Stats() {
		if s.ModeledCommSec > res.ModeledCommSeconds {
			res.ModeledCommSeconds = s.ModeledCommSec
		}
	}
	res.ModeledCommSeconds /= float64(iters)
	for _, s := range checksums {
		res.Checksum += s
	}
	res.TotalHaloValues, res.MaxHaloValues = HaloVolumes(g, part, k)
	return res, nil
}
