package spmv

import (
	"math"
	"testing"

	"geographer/internal/mesh"
)

func TestP2PMatchesAlltoallResults(t *testing.T) {
	m, err := mesh.GenDelaunayUniform2D(1000, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 2, 6} {
		part := make([]int32, m.N())
		for v := range part {
			part[v] = int32(v * k / m.N())
		}
		a, err := Benchmark(m.G, part, k, 4)
		if err != nil {
			t.Fatal(err)
		}
		b, err := BenchmarkP2P(m.G, part, k, 4)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a.Checksum-b.Checksum) > 1e-9*math.Abs(a.Checksum)+1e-12 {
			t.Errorf("k=%d: checksums differ: %g vs %g", k, a.Checksum, b.Checksum)
		}
		if a.TotalHaloValues != b.TotalHaloValues {
			t.Errorf("k=%d: halo volumes differ: %d vs %d", k, a.TotalHaloValues, b.TotalHaloValues)
		}
	}
}

func TestP2PFewNeighborsCheaperModel(t *testing.T) {
	// A path split contiguously has ≤2 neighbors per rank; the p2p model
	// should charge far less latency than one with many neighbors.
	g := pathGraph(800)
	contig := make([]int32, g.N)
	scattered := make([]int32, g.N)
	for v := range contig {
		contig[v] = int32(v * 8 / g.N)
		scattered[v] = int32(v % 8)
	}
	few, err := BenchmarkP2P(g, contig, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	many, err := BenchmarkP2P(g, scattered, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if few.ModeledCommSeconds >= many.ModeledCommSeconds {
		t.Errorf("few-neighbor partition modeled %g >= scattered %g",
			few.ModeledCommSeconds, many.ModeledCommSeconds)
	}
}

func TestP2PErrors(t *testing.T) {
	g := pathGraph(4)
	if _, err := BenchmarkP2P(g, []int32{0}, 1, 1); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := BenchmarkP2P(g, []int32{0, 0, 7, 0}, 2, 1); err == nil {
		t.Error("invalid block accepted")
	}
}
