package spmv

import (
	"math"
	"testing"

	"geographer/internal/graph"
	"geographer/internal/mesh"
)

func pathGraph(n int) *graph.Graph {
	edges := make([][2]int32, n-1)
	for i := range edges {
		edges[i] = [2]int32{int32(i), int32(i + 1)}
	}
	return graph.FromEdges(n, edges)
}

func TestSpMVCorrectness(t *testing.T) {
	// One iteration of A·1 on a path equals the degree vector; checksum =
	// Σ deg = 2m. Verify partitioned SpMV agrees for several k.
	g := pathGraph(50)
	want := float64(2 * g.M())
	for _, k := range []int{1, 2, 5} {
		part := make([]int32, g.N)
		for v := range part {
			part[v] = int32(v * k / g.N)
		}
		res, err := Benchmark(g, part, k, 1)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if math.Abs(res.Checksum-want) > 1e-9 {
			t.Errorf("k=%d: checksum %g, want %g", k, res.Checksum, want)
		}
	}
}

func TestSpMVChecksumIndependentOfK(t *testing.T) {
	// Multiple damped iterations must give identical results regardless of
	// the partition (the computation is partition-invariant).
	m, err := mesh.GenDelaunayUniform2D(800, 5)
	if err != nil {
		t.Fatal(err)
	}
	var ref float64
	for i, k := range []int{1, 3, 8} {
		part := make([]int32, m.N())
		for v := range part {
			part[v] = int32(v % k)
		}
		res, err := Benchmark(m.G, part, k, 5)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = res.Checksum
		} else if math.Abs(res.Checksum-ref) > 1e-6*math.Abs(ref) {
			t.Errorf("k=%d: checksum %g != reference %g", k, res.Checksum, ref)
		}
	}
}

func TestHaloVolumesPath(t *testing.T) {
	// Path split in two halves: each half needs exactly 1 foreign value.
	g := pathGraph(10)
	part := []int32{0, 0, 0, 0, 0, 1, 1, 1, 1, 1}
	tot, max := HaloVolumes(g, part, 2)
	if tot != 2 || max != 1 {
		t.Errorf("tot=%d max=%d, want 2/1", tot, max)
	}
}

func TestHaloVolumesMatchCommVolume(t *testing.T) {
	// HaloVolumes must equal the metrics-package communication volume by
	// construction (same definition, §2).
	m, err := mesh.GenRGG2D(1200, 9, 10)
	if err != nil {
		t.Fatal(err)
	}
	k := 6
	part := make([]int32, m.N())
	for v := range part {
		part[v] = int32(v * k / m.N())
	}
	tot, _ := HaloVolumes(m.G, part, k)
	res, err := Benchmark(m.G, part, k, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalHaloValues != tot {
		t.Errorf("result halo %d != direct computation %d", res.TotalHaloValues, tot)
	}
	if res.ModeledCommSeconds <= 0 || res.CommSeconds < 0 {
		t.Errorf("times: %+v", res)
	}
}

func TestBetterPartitionLessComm(t *testing.T) {
	// A contiguous split of a path has far less halo than a round-robin
	// split; the benchmark must reflect that in volumes and modeled time.
	g := pathGraph(400)
	contig := make([]int32, g.N)
	rr := make([]int32, g.N)
	for v := range contig {
		contig[v] = int32(v * 4 / g.N)
		rr[v] = int32(v % 4)
	}
	good, err := Benchmark(g, contig, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := Benchmark(g, rr, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if good.TotalHaloValues >= bad.TotalHaloValues {
		t.Errorf("contiguous halo %d >= round-robin %d", good.TotalHaloValues, bad.TotalHaloValues)
	}
	if good.ModeledCommSeconds >= bad.ModeledCommSeconds {
		t.Errorf("contiguous modeled %g >= round-robin %g", good.ModeledCommSeconds, bad.ModeledCommSeconds)
	}
}

func TestBenchmarkErrors(t *testing.T) {
	g := pathGraph(4)
	if _, err := Benchmark(g, []int32{0, 0}, 1, 1); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Benchmark(g, []int32{0, 0, 9, 0}, 2, 1); err == nil {
		t.Error("invalid block accepted")
	}
}

func BenchmarkSpMV64Blocks(b *testing.B) {
	m, err := mesh.GenDelaunayUniform2D(20000, 42)
	if err != nil {
		b.Fatal(err)
	}
	part := make([]int32, m.N())
	for v := range part {
		part[v] = int32(v * 64 / m.N())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Benchmark(m.G, part, 64, 5); err != nil {
			b.Fatal(err)
		}
	}
}
