// Package spmv measures the communication cost a partition induces on the
// central kernel of mesh-based simulations: sparse matrix-vector
// multiplication with the mesh adjacency matrix (paper §2: "we
// redistribute the input graph according to [the partition], perform
// sparse matrix-vector multiplications ... and measure the communication
// time needed within the SpMV").
//
// One simulated rank owns each block. Before the iterations, ranks
// exchange halo plans (which of my vertices each neighbor block needs);
// during each iteration they pack boundary values, run one personalized
// all-to-all, and multiply locally. Reported numbers are the wall-clock
// time of the communication phase and the α-β modeled time, both averaged
// per iteration.
package spmv

import (
	"fmt"
	"sort"
	"time"

	"geographer/internal/graph"
	"geographer/internal/mpi"
)

// Result summarizes one SpMV benchmark run.
type Result struct {
	Iterations         int
	CommSeconds        float64 // max over ranks, wall clock, per iteration
	ModeledCommSeconds float64 // α-β model, max over ranks, per iteration
	TotalHaloValues    int64   // values exchanged per iteration (all ranks)
	MaxHaloValues      int64   // heaviest rank's received values per iteration
	Checksum           float64 // Σy after the last iteration (verification)
}

// Benchmark runs iters SpMV iterations of the adjacency matrix of g
// distributed according to part (k blocks = k ranks) and reports
// communication cost. The multiplied vector starts as all-ones and is
// refreshed from y after every iteration, so results are checkable.
func Benchmark(g *graph.Graph, part []int32, k int, iters int) (Result, error) {
	if k < 1 {
		return Result{}, fmt.Errorf("spmv: k=%d", k)
	}
	if len(part) != g.N {
		return Result{}, fmt.Errorf("spmv: partition length %d != n %d", len(part), g.N)
	}
	if iters < 1 {
		iters = 1
	}

	// Global structures shared read-only by all ranks.
	owned := make([][]int32, k) // vertices per block, ascending
	for v := 0; v < g.N; v++ {
		b := part[v]
		if b < 0 || int(b) >= k {
			return Result{}, fmt.Errorf("spmv: vertex %d in invalid block %d", v, b)
		}
		owned[b] = append(owned[b], int32(v))
	}

	world := mpi.NewWorld(k)
	commSec := make([]float64, k)
	checksums := make([]float64, k)

	err := world.Run(func(c *mpi.Comm) {
		me := c.Rank()
		mine := owned[me]
		localIdx := make(map[int32]int32, len(mine))
		for i, v := range mine {
			localIdx[v] = int32(i)
		}

		// Halo discovery: foreign vertices my rows reference, per owner.
		need := make(map[int32][]int32) // owner -> foreign vertices (dedup later)
		for _, v := range mine {
			for _, u := range g.Neighbors(v) {
				if part[u] != int32(me) {
					need[part[u]] = append(need[part[u]], u)
				}
			}
		}
		recvLists := make([][]int32, k) // vertices I receive from each owner
		for owner, vs := range need {
			sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
			dedup := vs[:0]
			for i, u := range vs {
				if i == 0 || vs[i-1] != u {
					dedup = append(dedup, u)
				}
			}
			recvLists[owner] = dedup
		}

		// Exchange plans: tell each owner which of its values I need.
		plansOut := make([][]int32, k)
		for owner := 0; owner < k; owner++ {
			plansOut[owner] = recvLists[owner]
		}
		sendLists := mpi.Alltoall(c, plansOut) // sendLists[dst] = my vertices dst needs

		// Halo slot layout: x = [own values | halo values].
		haloSlot := make(map[int32]int32)
		nHalo := 0
		for owner := 0; owner < k; owner++ {
			for _, u := range recvLists[owner] {
				haloSlot[u] = int32(len(mine) + nHalo)
				nHalo++
			}
		}

		// Local CSR with remapped columns.
		var xadj []int64
		var cols []int32
		xadj = append(xadj, 0)
		for _, v := range mine {
			for _, u := range g.Neighbors(v) {
				if part[u] == int32(me) {
					cols = append(cols, localIdx[u])
				} else {
					cols = append(cols, haloSlot[u])
				}
			}
			xadj = append(xadj, int64(len(cols)))
		}

		x := make([]float64, len(mine)+nHalo)
		y := make([]float64, len(mine))
		for i := range mine {
			x[i] = 1
		}

		var localCommSec float64
		for it := 0; it < iters; it++ {
			// --- Communication phase (timed): pack, exchange, unpack.
			t0 := time.Now()
			sendVals := make([][]float64, k)
			for dst := 0; dst < k; dst++ {
				if len(sendLists[dst]) == 0 {
					continue
				}
				vals := make([]float64, len(sendLists[dst]))
				for i, v := range sendLists[dst] {
					vals[i] = x[localIdx[v]]
				}
				sendVals[dst] = vals
			}
			recvVals := mpi.Alltoall(c, sendVals)
			for owner := 0; owner < k; owner++ {
				for i, u := range recvLists[owner] {
					x[haloSlot[u]] = recvVals[owner][i]
				}
			}
			localCommSec += time.Since(t0).Seconds()

			// --- Local multiply: y = A·x (unweighted adjacency).
			for i := range mine {
				sum := 0.0
				for jj := xadj[i]; jj < xadj[i+1]; jj++ {
					sum += x[cols[jj]]
				}
				y[i] = sum
			}
			c.AddOps(xadj[len(mine)])

			// Refresh x from y, dampened to keep values bounded.
			for i := range mine {
				deg := float64(xadj[i+1] - xadj[i])
				if deg == 0 {
					deg = 1
				}
				x[i] = y[i] / deg
			}
		}
		commSec[me] = localCommSec
		sum := 0.0
		for _, v := range y {
			sum += v
		}
		checksums[me] = sum
	})
	if err != nil {
		return Result{}, err
	}

	res := Result{Iterations: iters}
	for _, s := range commSec {
		if s > res.CommSeconds {
			res.CommSeconds = s
		}
	}
	res.CommSeconds /= float64(iters)
	stats := world.Stats()
	for _, s := range stats {
		if s.ModeledCommSec > res.ModeledCommSeconds {
			res.ModeledCommSeconds = s.ModeledCommSec
		}
	}
	res.ModeledCommSeconds /= float64(iters)
	for _, s := range checksums {
		res.Checksum += s
	}

	// Halo volumes straight from the partition (independent of timing).
	tot, max := HaloVolumes(g, part, k)
	res.TotalHaloValues = tot
	res.MaxHaloValues = max
	return res, nil
}

// HaloVolumes returns the number of vector values exchanged per SpMV
// iteration: total over ranks and the maximum received by one rank. These
// equal the communication volumes of the partition (§2).
func HaloVolumes(g *graph.Graph, part []int32, k int) (total, maxPerRank int64) {
	recv := make([]int64, k)
	stamp := make([]int64, k)
	for i := range stamp {
		stamp[i] = -1
	}
	// For each vertex v, each *other* block containing a neighbor of v
	// receives v's value once.
	for v := 0; v < g.N; v++ {
		pv := part[v]
		for _, u := range g.Neighbors(int32(v)) {
			pu := part[u]
			if pu != pv && stamp[pu] != int64(v) {
				stamp[pu] = int64(v)
				recv[pu]++
			}
		}
	}
	for _, r := range recv {
		total += r
		if r > maxPerRank {
			maxPerRank = r
		}
	}
	return total, maxPerRank
}
