package dsort

import (
	"math/rand"
	"sync"
	"testing"

	"geographer/internal/mpi"
)

// makeCols builds the SoA twin of makeItems for one rank.
func makeCols(rank, n int, seed int64, dim int) *Cols {
	items := makeItems(rank, n, seed)
	return ColsFromItems(dim, items)
}

// colsEqual compares two batches record-by-record, bit-exact.
func colsEqual(t *testing.T, tag string, got *Cols, want []Item) {
	t.Helper()
	if got.Len() != len(want) {
		t.Fatalf("%s: %d records, want %d", tag, got.Len(), len(want))
	}
	for i, it := range want {
		if got.Keys[i] != it.Key || got.IDs[i] != it.ID || got.W[i] != it.W || got.Point(i) != it.X {
			t.Fatalf("%s: record %d = {%x %d %v %v}, want {%x %d %v %v}",
				tag, i, got.Keys[i], got.IDs[i], got.W[i], got.Point(i),
				it.Key, it.ID, it.W, it.X)
		}
	}
}

// TestSortColsLocalMatchesSortLocal pins the radix sort to the
// comparison reference, including the ID tiebreak under heavy key
// collisions and shuffled (non-ascending) ID orders.
func TestSortColsLocalMatchesSortLocal(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, n := range []int{0, 1, 2, 7, 100, 5000} {
		for _, collide := range []bool{false, true} {
			items := makeItems(0, n, 99)
			if collide {
				for i := range items {
					items[i].Key %= 5 // almost every key collides
				}
			}
			rng.Shuffle(len(items), func(i, j int) { items[i], items[j] = items[j], items[i] })
			cols := ColsFromItems(2, items)
			SortColsLocal(cols)
			SortLocal(items)
			colsEqual(t, "local sort", cols, items)
		}
	}
}

// TestSortColsLocalNegativeIDs covers the int64 sign handling of the
// ID radix passes.
func TestSortColsLocalNegativeIDs(t *testing.T) {
	cols := &Cols{
		Dim:  2,
		Keys: []uint64{7, 7, 7, 1, 7},
		IDs:  []int64{5, -3, 0, 9, -1 << 62},
		W:    []float64{1, 2, 3, 4, 5},
		C:    [][]float64{{1, 2, 3, 4, 5}, {0, 0, 0, 0, 0}},
	}
	items := cols.Items()
	SortColsLocal(cols)
	SortLocal(items)
	colsEqual(t, "negative ids", cols, items)
}

// TestSortPermByKeysStable checks the exported permutation sort keeps
// equal keys in incoming perm order (the tiebreak seeding relies on).
func TestSortPermByKeysStable(t *testing.T) {
	keys := []uint64{3, 1, 3, 1, 3}
	perm := []int32{0, 1, 2, 3, 4}
	SortPermByKeys(keys, perm)
	want := []int32{1, 3, 0, 2, 4}
	for i := range perm {
		if perm[i] != want[i] {
			t.Fatalf("perm = %v, want %v", perm, want)
		}
	}
}

// collectCols runs an SPMD function returning one batch per rank.
func collectCols(t *testing.T, p int, run func(c *mpi.Comm) *Cols) []*Cols {
	t.Helper()
	w := mpi.NewWorld(p)
	results := make([]*Cols, p)
	var mu sync.Mutex
	if err := w.Run(func(c *mpi.Comm) {
		out := run(c)
		mu.Lock()
		results[c.Rank()] = out
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	return results
}

// TestColsPipelineMatchesItems is the ingest differential test: for both
// dimensions and several rank counts, SampleSortCols and RebalanceCols
// must reproduce the Item reference path bit-identically on every rank —
// same global (Key, ID) order, same per-rank chunks, same payloads.
func TestColsPipelineMatchesItems(t *testing.T) {
	for _, dim := range []int{2, 3} {
		for _, p := range []int{1, 2, 3, 8} {
			for _, nPer := range []int{0, 1, 100, 1000} {
				// Reference: Item path.
				wantSorted := make([][]Item, p)
				wantBalanced := make([][]Item, p)
				var mu sync.Mutex
				w := mpi.NewWorld(p)
				if err := w.Run(func(c *mpi.Comm) {
					sorted := SampleSort(c, makeItems(c.Rank(), nPer, 42))
					balanced := Rebalance(c, append([]Item(nil), sorted...))
					mu.Lock()
					wantSorted[c.Rank()] = sorted
					wantBalanced[c.Rank()] = balanced
					mu.Unlock()
				}); err != nil {
					t.Fatal(err)
				}

				// SoA path, same input.
				gotSorted := collectCols(t, p, func(c *mpi.Comm) *Cols {
					out := SampleSortCols(c, makeCols(c.Rank(), nPer, 42, dim))
					if !IsGloballySortedCols(c, out) {
						t.Errorf("dim=%d p=%d n=%d: cols path not globally sorted", dim, p, nPer)
					}
					return out
				})
				gotBalanced := collectCols(t, p, func(c *mpi.Comm) *Cols {
					sorted := SampleSortCols(c, makeCols(c.Rank(), nPer, 42, dim))
					return RebalanceCols(c, sorted)
				})
				for r := 0; r < p; r++ {
					want := wantSorted[r]
					if dim == 2 {
						want = drop3rd(want)
					}
					colsEqual(t, "sorted", gotSorted[r], want)
					want = wantBalanced[r]
					if dim == 2 {
						want = drop3rd(want)
					}
					colsEqual(t, "balanced", gotBalanced[r], want)
				}
			}
		}
	}
}

// drop3rd zeroes the third coordinate of reference items: a 2D Cols
// batch never carries it (makeItems fills X[2]=0 already, so this is a
// no-op safeguard that documents the comparison).
func drop3rd(items []Item) []Item {
	out := append([]Item(nil), items...)
	for i := range out {
		out[i].X[2] = 0
	}
	return out
}

// TestColsPipelineSkewedKeys repeats the worst-case splitter scenario on
// the SoA path.
func TestColsPipelineSkewedKeys(t *testing.T) {
	p := 4
	results := collectCols(t, p, func(c *mpi.Comm) *Cols {
		local := NewCols(2, 500)
		for i := 0; i < 500; i++ {
			local.Keys[i] = uint64(i % 3)
			local.IDs[i] = int64(c.Rank()*1000 + i)
		}
		out := SampleSortCols(c, local)
		if !IsGloballySortedCols(c, out) {
			t.Error("skewed: not globally sorted")
		}
		return out
	})
	total := 0
	for _, chunk := range results {
		total += chunk.Len()
	}
	if total != p*500 {
		t.Fatalf("lost records: %d", total)
	}
}

// TestExchangeWireBytes2D pins the traffic-accounting fix: a 2D
// redistribution must move (and account) 40 bytes per off-rank record —
// key, id, weight, two coordinates — not the 48 bytes of a padded
// three-coordinate Item.
func TestExchangeWireBytes2D(t *testing.T) {
	const n = 10
	w := mpi.NewWorld(2)
	if err := w.Run(func(c *mpi.Comm) {
		var local *Cols
		if c.Rank() == 0 {
			local = makeCols(0, n, 7, 2)
			SortColsLocal(local)
		} else {
			local = NewCols(2, 0)
		}
		RebalanceCols(c, local)
	}); err != nil {
		t.Fatal(err)
	}
	// Rank 0 holds all n records and sends n/2 to rank 1, plus two scalar
	// collectives (ReduceScalarSum + ExscanSum, 8 bytes each).
	want := (n / 2) * int(WireBytes(2))
	got := int(w.Stats()[0].CollectiveBytes) - 16
	if got != want {
		t.Fatalf("2D exchange accounted %d payload bytes, want %d (WireBytes(2)=%d)",
			got, want, WireBytes(2))
	}
}

// BenchmarkRadixVsSortSlice compares the two local sorts on one rank's
// typical load (20k records, random 48-bit keys).
func BenchmarkRadixVsSortSlice(b *testing.B) {
	const n = 20000
	base := makeItems(0, n, 42)
	b.Run("sortslice", func(b *testing.B) {
		items := make([]Item, n)
		for i := 0; i < b.N; i++ {
			copy(items, base)
			SortLocal(items)
		}
	})
	b.Run("radix", func(b *testing.B) {
		cols := ColsFromItems(3, base)
		scratch := ColsFromItems(3, base)
		for i := 0; i < b.N; i++ {
			copy(scratch.Keys, cols.Keys)
			copy(scratch.IDs, cols.IDs)
			SortColsLocal(scratch)
		}
	})
}
