// Package dsort implements a distributed sample sort over the simulated
// MPI runtime.
//
// Geographer's first phase globally sorts all points by their Hilbert
// index and redistributes them so that each process owns a contiguous,
// spatially compact chunk (paper §4.1, Algorithm 2 lines 4–6). The paper
// uses the scalable quicksort of Axtmann et al.; this package substitutes
// a classic sample sort with the same communication pattern — local sort,
// splitter selection from regular samples, one personalized all-to-all,
// local merge — and the same postconditions (globally sorted by key,
// approximately balanced; Rebalance makes the balance exact).
//
// Two implementations coexist: the AoS Item path in this file (the
// readable reference) and the SoA Cols fast path (cols.go: radix local
// sort, flat-buffer exchanges, p-way merge) used by the partitioners.
// Both produce the bit-identical global (Key, ID) order.
package dsort

import (
	"sort"

	"geographer/internal/geom"
	"geographer/internal/mpi"
)

// Item is one point record travelling through the sort: its space-filling
// curve key, a stable global id, its weight and coordinates. The Item
// functions below are the retained *reference* implementation; the
// production ingest runs the SoA Cols path (cols.go), which is pinned
// bit-identical to this one by the differential tests. Note that an Item
// always carries geom.MaxDim coordinates, so Item-based exchanges
// overstate the wire volume of 2D workloads; WireBytes(dim) gives the
// honest per-record size the Cols path both moves and accounts.
type Item struct {
	Key uint64
	ID  int64
	W   float64
	X   geom.Point
}

// Less orders items by (Key, ID); the ID tiebreak makes the global order
// total and therefore the whole pipeline deterministic.
func Less(a, b Item) bool {
	if a.Key != b.Key {
		return a.Key < b.Key
	}
	return a.ID < b.ID
}

// SortLocal sorts items in place by (Key, ID).
func SortLocal(items []Item) {
	sort.Slice(items, func(i, j int) bool { return Less(items[i], items[j]) })
}

// samplesPerRank controls splitter quality; p·samplesPerRank keys are
// gathered globally. 32 keeps the imbalance after SampleSort within a few
// percent for the sizes used in the experiments.
const samplesPerRank = 32

// SampleSort globally sorts the union of all ranks' items by (Key, ID)
// and returns this rank's resulting chunk: rank r's chunk precedes rank
// r+1's in the global order. Chunk sizes are approximately balanced; call
// Rebalance afterwards for exact ⌈n/p⌉ balance (the paper's redistribution
// step).
func SampleSort(c *mpi.Comm, local []Item) []Item {
	p := c.Size()
	SortLocal(local)
	if p == 1 {
		return local
	}

	// Regular sampling of local keys.
	s := samplesPerRank
	if len(local) < s {
		s = len(local)
	}
	samples := make([]uint64, 0, s)
	for i := 0; i < s; i++ {
		idx := (i*2 + 1) * len(local) / (2 * s)
		samples = append(samples, local[idx].Key)
	}
	all := mpi.AllgatherFlat(c, samples)
	if len(all) == 0 {
		// Globally empty input: every rank agrees (collective result).
		return local
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })

	// p-1 splitters; bucket b receives keys in (split[b-1], split[b]].
	splitters := make([]uint64, p-1)
	for i := 0; i < p-1; i++ {
		splitters[i] = all[(i+1)*len(all)/p]
	}

	// Partition the sorted local run into p contiguous buckets.
	send := make([][]Item, p)
	begin := 0
	for b := 0; b < p; b++ {
		end := len(local)
		if b < p-1 {
			end = begin + sort.Search(len(local)-begin, func(i int) bool {
				return local[begin+i].Key > splitters[b]
			})
		}
		send[b] = local[begin:end]
		begin = end
	}

	recv := mpi.Alltoall(c, send) // traffic recorded inside Alltoall
	out := concat(recv)
	SortLocal(out)
	c.AddOps(int64(len(local)) + int64(len(out))) // sort work proxy
	return out
}

// concat flattens received chunks into one exactly-sized slice, so the
// redistribution path never grows a buffer incrementally.
func concat(chunks [][]Item) []Item {
	total := 0
	for _, chunk := range chunks {
		total += len(chunk)
	}
	out := make([]Item, 0, total)
	for _, chunk := range chunks {
		out = append(out, chunk...)
	}
	return out
}

// Rebalance redistributes globally sorted chunks so every rank holds an
// exact balanced slice of the global order: rank r gets global positions
// [r·n/p, (r+1)·n/p) (Algorithm 2 line 6). Order is preserved.
func Rebalance(c *mpi.Comm, local []Item) []Item {
	p := c.Size()
	if p == 1 {
		return local
	}
	n := mpi.ReduceScalarSum(c, int64(len(local)))
	if n == 0 {
		return local
	}
	start := mpi.ExscanSum(c, int64(len(local)))

	// Global position g belongs to rank g*p/n (balanced cuts).
	send := make([][]Item, p)
	i := 0
	for i < len(local) {
		g := start + int64(i)
		dst := int(g * int64(p) / n)
		if dst > p-1 {
			dst = p - 1
		}
		// End of dst's range: first g' with g'*p/n > dst.
		endG := (int64(dst+1)*n + int64(p) - 1) / int64(p)
		j := i + int(endG-g)
		if j > len(local) {
			j = len(local)
		}
		send[dst] = local[i:j]
		i = j
	}
	return concat(mpi.Alltoall(c, send))
}

// GlobalIndexOf returns the global position of this rank's first item
// after a sort (exclusive scan of chunk lengths).
func GlobalIndexOf(c *mpi.Comm, localLen int) int64 {
	return mpi.ExscanSum(c, int64(localLen))
}

// IsGloballySorted verifies (collectively) that the distributed sequence
// is sorted by (Key, ID): each local run is sorted and boundary pairs
// between consecutive ranks are ordered. Intended for tests and debugging.
func IsGloballySorted(c *mpi.Comm, local []Item) bool {
	ok := int64(1)
	for i := 1; i < len(local); i++ {
		if Less(local[i], local[i-1]) {
			ok = 0
			break
		}
	}
	// Share boundary items: first and last of each rank (empty ranks send
	// sentinels that compare as always-ordered).
	type boundary struct {
		First, Last Item
		Has         bool
	}
	b := boundary{Has: len(local) > 0}
	if b.Has {
		b.First, b.Last = local[0], local[len(local)-1]
	}
	bounds := mpi.AllgatherScalar(c, b)
	var prev *Item
	for r := range bounds {
		if !bounds[r].Has {
			continue
		}
		f, l := bounds[r].First, bounds[r].Last
		if prev != nil && Less(f, *prev) {
			ok = 0
		}
		last := l
		prev = &last
	}
	return mpi.ReduceScalarMax(c, 1-ok) == 0
}
