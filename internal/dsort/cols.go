// SoA fast path of the distributed sample sort.
//
// The ingest pipeline (paper §4.1, Algorithm 2 lines 4–6) is the one
// place where every input point crosses the wire. The AoS Item path
// (dsort.go) remains as the reference; the Cols path below carries the
// same data as flat columns — keys, ids, weights, and one []float64 per
// *actual* spatial dimension — which buys three things:
//
//   - the local sort is an LSD radix over the uint64 key (radix.go)
//     instead of reflection-based sort.Slice;
//   - the post-exchange "concat + full re-sort" becomes a p-way merge of
//     the already-sorted received runs;
//   - the all-to-all moves flat buffers (mpi.AlltoallFlat) whose traffic
//     statistics match the real wire size — a 2D point no longer pays
//     for a padded third coordinate.
//
// The global (Key, ID) order, the per-rank chunks, and therefore every
// downstream partition are bit-identical to the Item path; the
// differential tests in cols_test.go enforce this across rank counts and
// dimensions.
package dsort

import (
	"sort"

	"geographer/internal/geom"
	"geographer/internal/mpi"
)

// Cols is the SoA record batch travelling through the sort: parallel
// columns indexed by point. Only the Dim leading coordinate columns are
// allocated; a 2D batch has no Z column at all.
type Cols struct {
	Dim  int
	Keys []uint64
	IDs  []int64
	W    []float64
	C    [][]float64 // Dim coordinate columns
}

// NewCols allocates a batch of n zero records in dim dimensions.
func NewCols(dim, n int) *Cols {
	c := &Cols{
		Dim:  dim,
		Keys: make([]uint64, n),
		IDs:  make([]int64, n),
		W:    make([]float64, n),
		C:    make([][]float64, dim),
	}
	for d := 0; d < dim; d++ {
		c.C[d] = make([]float64, n)
	}
	return c
}

// Len returns the number of records.
func (c *Cols) Len() int { return len(c.Keys) }

// SetPoint writes the Dim leading coordinates of p into record i.
func (c *Cols) SetPoint(i int, p geom.Point) {
	for d := 0; d < c.Dim; d++ {
		c.C[d][i] = p[d]
	}
}

// Point returns the coordinates of record i.
func (c *Cols) Point(i int) geom.Point {
	var p geom.Point
	for d := 0; d < c.Dim; d++ {
		p[d] = c.C[d][i]
	}
	return p
}

// col returns coordinate column d, or nil when the batch has fewer
// dimensions.
func (c *Cols) col(d int) []float64 {
	if d < c.Dim {
		return c.C[d]
	}
	return nil
}

// GeomView returns a geom.Cols sharing the coordinate columns; columns
// of unused spatial axes stay nil. Only safe for consumers that never
// touch the missing axes (the batch key kernel).
func (c *Cols) GeomView() geom.Cols {
	return geom.Cols{Dim: c.Dim, X: c.col(0), Y: c.col(1), Z: c.col(2), Col: c.C}
}

// Geom converts the batch into a full geom.Cols point store: present
// coordinate columns are shared (no copy); for spatial dimensions the
// absent X/Y/Z axes get fresh zero-filled columns so SoA kernels that
// read all three axes work, and beyond MaxDim the aliases point at the
// first three real columns (only the generic kernels read them there).
func (c *Cols) Geom() geom.Cols {
	out := geom.Cols{Dim: c.Dim, Col: c.C, X: c.col(0), Y: c.col(1), Z: c.col(2)}
	n := c.Len()
	if out.X == nil {
		out.X = make([]float64, n)
	}
	if out.Y == nil {
		out.Y = make([]float64, n)
	}
	if out.Z == nil {
		out.Z = make([]float64, n)
	}
	return out
}

// ColsFromItems converts an AoS item batch (reference path, tests).
func ColsFromItems(dim int, items []Item) *Cols {
	c := NewCols(dim, len(items))
	for i, it := range items {
		c.Keys[i] = it.Key
		c.IDs[i] = it.ID
		c.W[i] = it.W
		c.SetPoint(i, it.X)
	}
	return c
}

// Items converts back to the AoS form (reference path, tests).
func (c *Cols) Items() []Item {
	items := make([]Item, c.Len())
	for i := range items {
		items[i] = Item{Key: c.Keys[i], ID: c.IDs[i], W: c.W[i], X: c.Point(i)}
	}
	return items
}

// WireBytes returns the modeled per-record wire size of the SoA
// exchange: key + id + weight + dim coordinates. This replaces the old
// itemBytes constant, which hardcoded three coordinates and overstated
// the communication volume of 2D workloads by 8 bytes per point.
func WireBytes(dim int) int64 { return 8 + 8 + 8 + 8*int64(dim) }

// SortColsLocal sorts the batch in place by (Key, ID): radix-sort a
// permutation, then gather every column through it once.
func SortColsLocal(c *Cols) {
	n := c.Len()
	if n < 2 {
		return
	}
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	sortPermByKeyID(c.Keys, c.IDs, perm)
	c.permute(perm)
}

// permute reorders every column by perm (out[i] = col[perm[i]]).
func (c *Cols) permute(perm []int32) {
	n := len(perm)
	keys := make([]uint64, n)
	ids := make([]int64, n)
	w := make([]float64, n)
	for i, p := range perm {
		keys[i] = c.Keys[p]
		ids[i] = c.IDs[p]
		w[i] = c.W[p]
	}
	c.Keys, c.IDs, c.W = keys, ids, w
	for d := 0; d < c.Dim; d++ {
		col := make([]float64, n)
		src := c.C[d]
		for i, p := range perm {
			col[i] = src[p]
		}
		c.C[d] = col
	}
}

// exchange performs the SoA all-to-all: all columns (keys, ids,
// weights, Dim coordinates) travel in one collective with shared
// sendCounts, so the collective count matches the reference path's
// single Alltoall while the accounted bytes are WireBytes(Dim) per
// off-rank record. Returns the received batch (runs concatenated in
// rank order) and the per-source run lengths.
func exchange(c *mpi.Comm, local *Cols, sendCounts []int) (*Cols, []int) {
	f64 := make([][]float64, 1+local.Dim)
	f64[0] = local.W
	for d := 0; d < local.Dim; d++ {
		f64[1+d] = local.C[d]
	}
	keys, ids, recvF, counts := mpi.AlltoallCols(c, local.Keys, local.IDs, f64, sendCounts)
	out := &Cols{Dim: local.Dim, Keys: keys, IDs: ids, W: recvF[0], C: make([][]float64, local.Dim)}
	for d := 0; d < local.Dim; d++ {
		out.C[d] = recvF[1+d]
	}
	return out, counts
}

// SampleSortCols is SampleSort over the SoA batch: same splitters, same
// buckets, same global (Key, ID) order as the Item path — bit-identical
// per-rank results — but with a radix local sort, flat exchanges, and a
// p-way merge of the received (already sorted) runs instead of the
// reference path's concat + full re-sort.
func SampleSortCols(c *mpi.Comm, local *Cols) *Cols {
	p := c.Size()
	SortColsLocal(local)
	if p == 1 {
		return local
	}
	n := local.Len()

	// Regular sampling of local keys (identical to the reference path, so
	// splitters and bucket boundaries match exactly).
	s := samplesPerRank
	if n < s {
		s = n
	}
	samples := make([]uint64, 0, s)
	for i := 0; i < s; i++ {
		idx := (i*2 + 1) * n / (2 * s)
		samples = append(samples, local.Keys[idx])
	}
	all := mpi.AllgatherFlat(c, samples)
	if len(all) == 0 {
		// Globally empty input: every rank agrees (collective result).
		return local
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })

	// p-1 splitters; bucket b receives keys in (split[b-1], split[b]].
	splitters := make([]uint64, p-1)
	for i := 0; i < p-1; i++ {
		splitters[i] = all[(i+1)*len(all)/p]
	}

	// Contiguous buckets of the sorted local run, as counts.
	sendCounts := make([]int, p)
	begin := 0
	for b := 0; b < p; b++ {
		end := n
		if b < p-1 {
			end = begin + sort.Search(n-begin, func(i int) bool {
				return local.Keys[begin+i] > splitters[b]
			})
		}
		sendCounts[b] = end - begin
		begin = end
	}

	recv, counts := exchange(c, local, sendCounts)
	out := mergeRuns(recv, counts)
	c.AddOps(int64(n) + int64(out.Len())) // sort work proxy
	return out
}

// mergeRuns merges the p sorted runs of a received batch (run r occupies
// the next counts[r] records) into one batch ordered by (Key, ID). A
// binary min-heap over the run heads gives O(n log p); with at most one
// non-empty run the input is returned unchanged.
func mergeRuns(in *Cols, counts []int) *Cols {
	heads := make([]int, 0, len(counts))
	ends := make([]int, 0, len(counts))
	off := 0
	for _, cnt := range counts {
		if cnt > 0 {
			heads = append(heads, off)
			ends = append(ends, off+cnt)
		}
		off += cnt
	}
	if len(heads) <= 1 {
		return in
	}

	keys, ids := in.Keys, in.IDs
	// less orders two record positions by (Key, ID); IDs are globally
	// unique so the order is total.
	less := func(a, b int) bool {
		if keys[a] != keys[b] {
			return keys[a] < keys[b]
		}
		return ids[a] < ids[b]
	}

	// heap[j] is a run index; ordered by the run's head record.
	heap := make([]int, len(heads))
	for j := range heap {
		heap[j] = j
	}
	siftDown := func(j int) {
		for {
			l, r := 2*j+1, 2*j+2
			m := j
			if l < len(heap) && less(heads[heap[l]], heads[heap[m]]) {
				m = l
			}
			if r < len(heap) && less(heads[heap[r]], heads[heap[m]]) {
				m = r
			}
			if m == j {
				return
			}
			heap[j], heap[m] = heap[m], heap[j]
			j = m
		}
	}
	for j := len(heap)/2 - 1; j >= 0; j-- {
		siftDown(j)
	}

	out := NewCols(in.Dim, in.Len())
	for i := 0; i < out.Len(); i++ {
		r := heap[0]
		h := heads[r]
		out.Keys[i] = keys[h]
		out.IDs[i] = ids[h]
		out.W[i] = in.W[h]
		for d := 0; d < in.Dim; d++ {
			out.C[d][i] = in.C[d][h]
		}
		heads[r]++
		if heads[r] == ends[r] {
			heap[0] = heap[len(heap)-1]
			heap = heap[:len(heap)-1]
		}
		if len(heap) > 0 {
			siftDown(0)
		}
	}
	return out
}

// RebalanceCols is Rebalance over the SoA batch: exact ⌈n/p⌉ balance
// with the global order preserved (Algorithm 2 line 6). The received
// runs arrive in rank order and the cuts are order-preserving, so the
// flat exchange output needs no merge at all.
func RebalanceCols(c *mpi.Comm, local *Cols) *Cols {
	p := c.Size()
	if p == 1 {
		return local
	}
	n := mpi.ReduceScalarSum(c, int64(local.Len()))
	if n == 0 {
		return local
	}
	start := mpi.ExscanSum(c, int64(local.Len()))

	// Global position g belongs to rank g*p/n (balanced cuts).
	sendCounts := make([]int, p)
	i := 0
	for i < local.Len() {
		g := start + int64(i)
		dst := int(g * int64(p) / n)
		if dst > p-1 {
			dst = p - 1
		}
		// End of dst's range: first g' with g'*p/n > dst.
		endG := (int64(dst+1)*n + int64(p) - 1) / int64(p)
		j := i + int(endG-g)
		if j > local.Len() {
			j = local.Len()
		}
		sendCounts[dst] = j - i
		i = j
	}
	out, _ := exchange(c, local, sendCounts)
	return out
}

// IsGloballySortedCols is IsGloballySorted for a SoA batch.
func IsGloballySortedCols(c *mpi.Comm, local *Cols) bool {
	return IsGloballySorted(c, local.Items())
}
