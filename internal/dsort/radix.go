// LSD radix sort for the ingest pipeline.
//
// The local sort inside SampleSortCols orders (Key, ID) pairs. A
// comparison sort through sort.Slice pays reflection on every swap and a
// closure call on every compare; an LSD radix over the uint64 key is a
// handful of counting-sort passes with pure array traffic. The sort is
// carried on a permutation (the SoA columns are gathered once at the
// end), passes whose byte is globally constant are skipped (a 62-bit
// Hilbert key never spends more than 8, and locally clustered keys far
// fewer), and the ID tiebreak is folded in by LSD stability: ID passes
// run before key passes, so equal keys stay in ascending-ID order. In
// the common case — IDs already ascending in input order, which every
// caller that fills columns from a Scatter-produced Local satisfies —
// the ID passes are skipped entirely after one O(n) check.
package dsort

// signFlip converts int64 to order-preserving uint64.
const signFlip = uint64(1) << 63

// SortPermByKeys stably sorts perm (indices into keys) so that
// keys[perm[i]] is ascending. Stability preserves the incoming relative
// order of equal keys, so tiebreaks are whatever order perm arrives in —
// pass an identity permutation to tiebreak by position.
func SortPermByKeys(keys []uint64, perm []int32) {
	if len(perm) < 2 {
		return
	}
	tmp := make([]int32, len(perm))
	radixPerm(keys, perm, tmp)
}

// radixPerm is the 8-pass LSD counting sort behind SortPermByKeys; tmp
// must have len(perm). The result always lands back in perm.
func radixPerm(vals []uint64, perm, tmp []int32) {
	n := int32(len(perm))
	var hist [8][256]int32
	for _, pi := range perm {
		v := vals[pi]
		hist[0][v&0xff]++
		hist[1][v>>8&0xff]++
		hist[2][v>>16&0xff]++
		hist[3][v>>24&0xff]++
		hist[4][v>>32&0xff]++
		hist[5][v>>40&0xff]++
		hist[6][v>>48&0xff]++
		hist[7][v>>56&0xff]++
	}
	src, dst := perm, tmp
	for pass := 0; pass < 8; pass++ {
		h := &hist[pass]
		// A globally constant byte makes the pass an identity: skip it.
		constant := false
		for b := 0; b < 256; b++ {
			if h[b] != 0 {
				constant = h[b] == n
				break
			}
		}
		if constant {
			continue
		}
		// Exclusive prefix sums turn counts into write offsets.
		total := int32(0)
		for b := 0; b < 256; b++ {
			c := h[b]
			h[b] = total
			total += c
		}
		shift := uint(8 * pass)
		for _, pi := range src {
			b := vals[pi] >> shift & 0xff
			dst[h[b]] = pi
			h[b]++
		}
		src, dst = dst, src
	}
	if &src[0] != &perm[0] {
		copy(perm, src)
	}
}

// sortPermByKeyID sorts perm by (keys, ids) ascending. perm must start as
// the identity (or any ID-consistent order) only if the caller wants the
// documented tiebreak; this function establishes (Key, ID) regardless of
// the incoming perm order.
func sortPermByKeyID(keys []uint64, ids []int64, perm []int32) {
	if len(perm) < 2 {
		return
	}
	tmp := make([]int32, len(perm))
	// LSD: the secondary ID passes run first, then the key passes; key
	// stability then keeps equal keys in ascending-ID order. When ids are
	// already ascending along perm the ID passes are identities — skip.
	ascending := true
	for i := 1; i < len(perm); i++ {
		if ids[perm[i]] < ids[perm[i-1]] {
			ascending = false
			break
		}
	}
	if !ascending {
		u := make([]uint64, len(ids))
		for i, id := range ids {
			u[i] = uint64(id) ^ signFlip // order-preserving for negative IDs
		}
		radixPerm(u, perm, tmp)
	}
	radixPerm(keys, perm, tmp)
}
