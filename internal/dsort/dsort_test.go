package dsort

import (
	"math/rand"
	"sync"
	"testing"

	"geographer/internal/geom"
	"geographer/internal/mpi"
)

// makeItems builds a deterministic random item set for one rank.
func makeItems(rank, n int, seed int64) []Item {
	rng := rand.New(rand.NewSource(seed + int64(rank)*7919))
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{
			Key: rng.Uint64() >> 16, // collisions likely at small sizes: exercises ID tiebreak
			ID:  int64(rank*1_000_000 + i),
			W:   rng.Float64(),
			X:   geom.Point{rng.Float64(), rng.Float64(), 0},
		}
	}
	return items
}

func collectAll(t *testing.T, p int, run func(c *mpi.Comm) []Item) [][]Item {
	t.Helper()
	w := mpi.NewWorld(p)
	results := make([][]Item, p)
	var mu sync.Mutex
	if err := w.Run(func(c *mpi.Comm) {
		out := run(c)
		mu.Lock()
		results[c.Rank()] = out
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	return results
}

func TestSampleSortGlobalOrder(t *testing.T) {
	for _, p := range []int{1, 2, 3, 8} {
		for _, nPer := range []int{0, 1, 100, 1000} {
			results := collectAll(t, p, func(c *mpi.Comm) []Item {
				local := makeItems(c.Rank(), nPer, 42)
				out := SampleSort(c, local)
				if !IsGloballySorted(c, out) {
					t.Errorf("p=%d n=%d: not globally sorted", p, nPer)
				}
				return out
			})
			// Multiset preservation: all IDs present exactly once.
			seen := make(map[int64]Item)
			total := 0
			for _, chunk := range results {
				for _, it := range chunk {
					if _, dup := seen[it.ID]; dup {
						t.Fatalf("p=%d: duplicate id %d", p, it.ID)
					}
					seen[it.ID] = it
					total++
				}
			}
			if total != p*nPer {
				t.Fatalf("p=%d nPer=%d: %d items after sort", p, nPer, total)
			}
			// Payload integrity: regenerate inputs and compare.
			for r := 0; r < p; r++ {
				for _, want := range makeItems(r, nPer, 42) {
					got, ok := seen[want.ID]
					if !ok || got != want {
						t.Fatalf("p=%d: item %d corrupted: got %+v want %+v", p, want.ID, got, want)
					}
				}
			}
		}
	}
}

func TestSampleSortSkewedKeys(t *testing.T) {
	// All ranks contribute nearly identical keys — the worst case for
	// splitter selection; correctness (not balance) must hold.
	p := 4
	results := collectAll(t, p, func(c *mpi.Comm) []Item {
		local := make([]Item, 500)
		for i := range local {
			local[i] = Item{Key: uint64(i % 3), ID: int64(c.Rank()*1000 + i)}
		}
		out := SampleSort(c, local)
		if !IsGloballySorted(c, out) {
			t.Error("skewed: not globally sorted")
		}
		return out
	})
	total := 0
	for _, chunk := range results {
		total += len(chunk)
	}
	if total != p*500 {
		t.Fatalf("lost items: %d", total)
	}
}

func TestRebalanceExact(t *testing.T) {
	for _, p := range []int{1, 2, 3, 7} {
		// Heavily imbalanced input: rank r has r*100 items.
		results := collectAll(t, p, func(c *mpi.Comm) []Item {
			local := makeItems(c.Rank(), c.Rank()*100, 7)
			sorted := SampleSort(c, local)
			bal := Rebalance(c, sorted)
			if !IsGloballySorted(c, bal) {
				t.Errorf("p=%d: rebalanced sequence lost order", p)
			}
			return bal
		})
		n := 0
		for _, chunk := range results {
			n += len(chunk)
		}
		lo, hi := n/p, (n+p-1)/p
		for r, chunk := range results {
			if len(chunk) < lo-1 || len(chunk) > hi+1 {
				t.Errorf("p=%d rank %d: %d items, want ~[%d,%d] of %d", p, r, len(chunk), lo, hi, n)
			}
		}
	}
}

func TestRebalanceEmptyWorld(t *testing.T) {
	collectAll(t, 3, func(c *mpi.Comm) []Item {
		out := Rebalance(c, nil)
		if len(out) != 0 {
			t.Error("empty rebalance should stay empty")
		}
		return out
	})
}

func TestGlobalIndexOf(t *testing.T) {
	p := 4
	w := mpi.NewWorld(p)
	if err := w.Run(func(c *mpi.Comm) {
		g := GlobalIndexOf(c, 10)
		if g != int64(c.Rank()*10) {
			t.Errorf("rank %d: global index %d", c.Rank(), g)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestIsGloballySortedDetectsViolations(t *testing.T) {
	p := 2
	w := mpi.NewWorld(p)
	if err := w.Run(func(c *mpi.Comm) {
		// Rank 0 holds larger keys than rank 1: boundary violation.
		var local []Item
		if c.Rank() == 0 {
			local = []Item{{Key: 100, ID: 0}}
		} else {
			local = []Item{{Key: 50, ID: 1}}
		}
		if IsGloballySorted(c, local) {
			t.Error("boundary violation not detected")
		}
		// Local violation.
		local = []Item{{Key: 9, ID: 0}, {Key: 3, ID: 1}}
		if IsGloballySorted(c, local) {
			t.Error("local violation not detected")
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestLessTotalOrder(t *testing.T) {
	a := Item{Key: 1, ID: 5}
	b := Item{Key: 1, ID: 6}
	cIt := Item{Key: 2, ID: 0}
	if !Less(a, b) || Less(b, a) {
		t.Error("ID tiebreak broken")
	}
	if !Less(b, cIt) {
		t.Error("key order broken")
	}
	if Less(a, a) {
		t.Error("irreflexivity broken")
	}
}

func BenchmarkSampleSort(b *testing.B) {
	p := 4
	const nPer = 20000
	b.Run("items", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			w := mpi.NewWorld(p)
			if err := w.Run(func(c *mpi.Comm) {
				local := makeItems(c.Rank(), nPer, 42)
				SampleSort(c, local)
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, dim := range []int{2, 3} {
		name := "cols2d"
		if dim == 3 {
			name = "cols3d"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w := mpi.NewWorld(p)
				if err := w.Run(func(c *mpi.Comm) {
					local := makeCols(c.Rank(), nPer, 42, dim)
					SampleSortCols(c, local)
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
