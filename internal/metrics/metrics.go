// Package metrics evaluates partition quality with the graph-based
// measures of the paper (§2, §5.2.4): edge cut, external edges, maximum
// and total communication volume, imbalance, and per-block diameters
// (BFS-based iFUB-style lower bounds aggregated with the harmonic mean).
package metrics

import (
	"fmt"
	"math"

	"geographer/internal/geom"
	"geographer/internal/graph"
)

// Report holds all quality measures of one partition, matching the
// columns of the paper's Tables 1 and 2 (SpMV time is measured separately
// by the spmv package).
type Report struct {
	K            int     // number of blocks
	EdgeCut      int64   // cut edges, each counted once
	MaxCommVol   int64   // max over blocks of the block's communication volume
	TotCommVol   int64   // Σ comm (total communication volume)
	Imbalance    float64 // max_b weight(b)/avg - 1
	HarmDiam     float64 // harmonic mean of block diameter lower bounds
	MaxDiam      int32   // maximum finite block diameter bound
	Disconnected int     // number of blocks with more than one component
	EmptyBlocks  int     // blocks with no vertices
}

// String renders the report compactly.
func (r Report) String() string {
	return fmt.Sprintf("k=%d cut=%d maxComm=%d totComm=%d imb=%.3f harmDiam=%.1f disconn=%d",
		r.K, r.EdgeCut, r.MaxCommVol, r.TotCommVol, r.Imbalance, r.HarmDiam, r.Disconnected)
}

// ValidatePartition checks that part assigns each of the n vertices a
// block id in [0, k). The per-block passes below (CommVolumes,
// BlockWeights, ...) index scratch arrays of length k by block id and
// would panic on out-of-range input, so every entry point that accepts
// external partitions must validate first (like refine.Refine does).
func ValidatePartition(part []int32, n, k int) error {
	if k < 1 {
		return fmt.Errorf("metrics: k=%d", k)
	}
	if len(part) != n {
		return fmt.Errorf("metrics: %d assignments for %d vertices", len(part), n)
	}
	for v, b := range part {
		if b < 0 || int(b) >= k {
			return fmt.Errorf("metrics: vertex %d assigned to invalid block %d (k=%d)", v, b, k)
		}
	}
	return nil
}

// EdgeCut returns the number of edges whose endpoints lie in different
// blocks (each undirected edge counted once).
func EdgeCut(g *graph.Graph, part []int32) int64 {
	var cut int64
	for v := 0; v < g.N; v++ {
		pv := part[v]
		for _, u := range g.Neighbors(int32(v)) {
			if int32(v) < u && part[u] != pv {
				cut++
			}
		}
	}
	return cut
}

// ExternalEdges returns ext(V_b) for every block: the number of edges with
// exactly one endpoint in the block (paper §2).
func ExternalEdges(g *graph.Graph, part []int32, k int) []int64 {
	ext := make([]int64, k)
	for v := 0; v < g.N; v++ {
		pv := part[v]
		for _, u := range g.Neighbors(int32(v)) {
			if part[u] != pv {
				ext[pv]++
			}
		}
	}
	return ext
}

// CommVolumes returns comm(V_b) for every block: for each vertex v in the
// block, the number of *other* blocks containing a neighbor of v (the
// Hendrickson-Kolda communication volume the paper adopts, §2). The
// total communication volume is the sum, the max is taken over blocks.
func CommVolumes(g *graph.Graph, part []int32, k int) []int64 {
	vol := make([]int64, k)
	// Per-vertex distinct-block counting with an epoch-stamped scratch
	// array: O(m) total, no per-vertex allocations.
	stamp := make([]int32, k)
	for i := range stamp {
		stamp[i] = -1
	}
	for v := 0; v < g.N; v++ {
		pv := part[v]
		var distinct int64
		for _, u := range g.Neighbors(int32(v)) {
			pu := part[u]
			if pu != pv && stamp[pu] != int32(v) {
				stamp[pu] = int32(v)
				distinct++
			}
		}
		vol[pv] += distinct
	}
	return vol
}

// BlockWeights returns the total point weight per block.
func BlockWeights(ps *geom.PointSet, part []int32, k int) []float64 {
	w := make([]float64, k)
	for i := 0; i < ps.Len(); i++ {
		w[part[i]] += ps.W(i)
	}
	return w
}

// Imbalance returns max_b weight(b) / (total/k) − 1.
func Imbalance(weights []float64) float64 {
	total := 0.0
	maxW := 0.0
	for _, w := range weights {
		total += w
		if w > maxW {
			maxW = w
		}
	}
	if total == 0 {
		return 0
	}
	avg := total / float64(len(weights))
	return maxW/avg - 1
}

// BlockDiameters computes a lower bound on the diameter of each block's
// induced subgraph using BFS double sweeps — the paper runs "the first 3
// rounds of the iFUB algorithm" to the same effect (§5.2.4). A block whose
// induced subgraph is disconnected has infinite diameter, reported as -1.
// Empty blocks are reported as 0.
func BlockDiameters(g *graph.Graph, part []int32, k int) []int32 {
	diam := make([]int32, k)
	sizes := make([]int64, k)
	first := make([]int32, k)
	for i := range first {
		first[i] = -1
	}
	for v := 0; v < g.N; v++ {
		b := part[v]
		sizes[b]++
		if first[b] < 0 {
			first[b] = int32(v)
		}
	}
	bfs := graph.NewBFS(g.N)
	for b := 0; b < k; b++ {
		if sizes[b] == 0 {
			diam[b] = 0
			continue
		}
		allow := func(v int32) bool { return part[v] == int32(b) }
		// Sweep 1 from an arbitrary block vertex.
		far, ecc, visited := bfs.Run(g, first[b], allow)
		if int64(visited) < sizes[b] {
			diam[b] = -1 // disconnected: infinite diameter
			continue
		}
		best := ecc
		// Sweeps 2 and 3 from the successively farthest vertices.
		for sweep := 0; sweep < 2; sweep++ {
			far2, ecc2, _ := bfs.Run(g, far, allow)
			if ecc2 > best {
				best = ecc2
			}
			far = far2
		}
		diam[b] = best
	}
	return diam
}

// HarmonicMeanDiameter aggregates per-block diameters with the harmonic
// mean; infinite diameters (disconnected blocks, encoded -1) contribute 0
// to the reciprocal sum, exactly as the paper handles them (§5.3).
// Blocks that are empty or singletons (diameter 0) are skipped to keep the
// mean finite.
func HarmonicMeanDiameter(diam []int32) float64 {
	var recip float64
	count := 0
	for _, d := range diam {
		switch {
		case d < 0: // infinite
			count++
		case d == 0: // empty or singleton: not meaningful
		default:
			recip += 1 / float64(d)
			count++
		}
	}
	if count == 0 || recip == 0 {
		return 0
	}
	return float64(count) / recip
}

// Evaluate computes the full quality report for a partition. The
// partition is validated first; an out-of-range block id is an error,
// not a panic.
func Evaluate(g *graph.Graph, ps *geom.PointSet, part []int32, k int) (Report, error) {
	if ps.Len() != g.N {
		return Report{}, fmt.Errorf("metrics: %d points for %d graph vertices", ps.Len(), g.N)
	}
	if err := ValidatePartition(part, g.N, k); err != nil {
		return Report{}, err
	}
	r := Report{K: k}
	r.EdgeCut = EdgeCut(g, part)
	vols := CommVolumes(g, part, k)
	for _, v := range vols {
		r.TotCommVol += v
		if v > r.MaxCommVol {
			r.MaxCommVol = v
		}
	}
	r.Imbalance = Imbalance(BlockWeights(ps, part, k))
	diam := BlockDiameters(g, part, k)
	r.HarmDiam = HarmonicMeanDiameter(diam)
	sizes := make([]int64, k)
	for _, b := range part {
		sizes[b]++
	}
	for b := 0; b < k; b++ {
		switch {
		case sizes[b] == 0:
			r.EmptyBlocks++
		case diam[b] < 0:
			r.Disconnected++
		case diam[b] > r.MaxDiam:
			r.MaxDiam = diam[b]
		}
	}
	return r, nil
}

// MigrationVolume returns the total weight and number of points whose
// block changed between two partitions of the same point set — the
// data-movement cost a simulation pays when it adopts the new partition
// (the migration measure of the repartitioning literature; see
// DESIGN.md, "Repartitioning invariants"). prev and next must both
// have one entry per point.
func MigrationVolume(ps *geom.PointSet, prev, next []int32) (weight float64, points int, err error) {
	if len(prev) != ps.Len() || len(next) != ps.Len() {
		return 0, 0, fmt.Errorf("metrics: %d/%d assignments for %d points", len(prev), len(next), ps.Len())
	}
	for i := 0; i < ps.Len(); i++ {
		if prev[i] != next[i] {
			weight += ps.W(i)
			points++
		}
	}
	return weight, points, nil
}

// ReportDelta is the change between two quality reports of consecutive
// partitions of the same mesh, plus the migration cost of moving from
// the previous partition to the next. Positive deltas mean the new
// partition is worse on that measure.
type ReportDelta struct {
	EdgeCut    int64   // next − prev
	MaxCommVol int64   // next − prev
	TotCommVol int64   // next − prev
	Imbalance  float64 // next − prev

	MigratedWeight float64 // weight of points whose block changed
	MigratedPoints int     // number of points whose block changed
	MigratedFrac   float64 // MigratedWeight / total point weight
}

// Delta compares two consecutive partitions: the metric deltas of their
// reports and the migration volume between the assignments.
func Delta(prev, next Report, ps *geom.PointSet, prevAssign, nextAssign []int32) (ReportDelta, error) {
	d := ReportDelta{
		EdgeCut:    next.EdgeCut - prev.EdgeCut,
		MaxCommVol: next.MaxCommVol - prev.MaxCommVol,
		TotCommVol: next.TotCommVol - prev.TotCommVol,
		Imbalance:  next.Imbalance - prev.Imbalance,
	}
	var err error
	if d.MigratedWeight, d.MigratedPoints, err = MigrationVolume(ps, prevAssign, nextAssign); err != nil {
		return ReportDelta{}, err
	}
	if total := ps.TotalWeight(); total > 0 {
		d.MigratedFrac = d.MigratedWeight / total
	}
	return d, nil
}

// BlockAspectRatios returns, per block, the aspect ratio of the block's
// bounding box (longest side / shortest side, in the point space). Good
// block shapes — the paper's motivation for k-means over recursive
// bisection (§1, §3.2) — have ratios near 1; strip-shaped RCB blocks have
// large ratios. Empty blocks report 0.
func BlockAspectRatios(ps *geom.PointSet, part []int32, k int) []float64 {
	boxes := make([]geom.Box, k)
	for b := range boxes {
		boxes[b] = geom.EmptyBox(ps.Dim)
	}
	for i := 0; i < ps.Len(); i++ {
		boxes[part[i]].Extend(ps.At(i))
	}
	out := make([]float64, k)
	for b, box := range boxes {
		if box.Empty() {
			continue
		}
		lo, hi := math.Inf(1), 0.0
		for d := 0; d < ps.Dim; d++ {
			s := box.Side(d)
			if s < lo {
				lo = s
			}
			if s > hi {
				hi = s
			}
		}
		if lo <= 0 {
			lo = hi * 1e-12 // degenerate (collinear) block
		}
		if hi == 0 {
			out[b] = 1 // single point: perfectly compact by convention
			continue
		}
		out[b] = hi / lo
	}
	return out
}

// MeanAspectRatio averages the nonzero block aspect ratios.
func MeanAspectRatio(ps *geom.PointSet, part []int32, k int) float64 {
	rs := BlockAspectRatios(ps, part, k)
	sum, cnt := 0.0, 0
	for _, r := range rs {
		if r > 0 && !math.IsInf(r, 0) {
			sum += r
			cnt++
		}
	}
	if cnt == 0 {
		return 0
	}
	return sum / float64(cnt)
}

// GeometricMean returns the geometric mean of positive values (zeros and
// negatives are skipped); the paper aggregates metric ratios per instance
// class this way (Fig. 2).
func GeometricMean(vals []float64) float64 {
	var logSum float64
	count := 0
	for _, v := range vals {
		if v > 0 {
			logSum += math.Log(v)
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return math.Exp(logSum / float64(count))
}
