package metrics

import (
	"math"
	"math/rand"
	"testing"

	"geographer/internal/geom"
	"geographer/internal/graph"
)

// ring returns a cycle graph with n vertices.
func ring(n int) *graph.Graph {
	edges := make([][2]int32, n)
	for i := 0; i < n; i++ {
		edges[i] = [2]int32{int32(i), int32((i + 1) % n)}
	}
	return graph.FromEdges(n, edges)
}

func unitPoints(n int) *geom.PointSet {
	ps := geom.NewPointSet(2, n)
	for i := 0; i < n; i++ {
		ps.Append(geom.Point{float64(i), 0}, 1)
	}
	return ps
}

func TestEdgeCutRing(t *testing.T) {
	g := ring(8)
	// Two contiguous halves: exactly 2 cut edges.
	part := []int32{0, 0, 0, 0, 1, 1, 1, 1}
	if cut := EdgeCut(g, part); cut != 2 {
		t.Errorf("cut = %d, want 2", cut)
	}
	// Alternating: every edge cut.
	alt := []int32{0, 1, 0, 1, 0, 1, 0, 1}
	if cut := EdgeCut(g, alt); cut != 8 {
		t.Errorf("alternating cut = %d, want 8", cut)
	}
	// Single block: no cut.
	one := make([]int32, 8)
	if cut := EdgeCut(g, one); cut != 0 {
		t.Errorf("single block cut = %d", cut)
	}
}

func TestExternalEdges(t *testing.T) {
	g := ring(8)
	part := []int32{0, 0, 0, 0, 1, 1, 1, 1}
	ext := ExternalEdges(g, part, 2)
	if ext[0] != 2 || ext[1] != 2 {
		t.Errorf("ext = %v, want [2 2]", ext)
	}
}

func TestCommVolumesStar(t *testing.T) {
	// Star: center 0 adjacent to 1..5; leaves in distinct blocks.
	edges := [][2]int32{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}}
	g := graph.FromEdges(6, edges)
	part := []int32{0, 1, 1, 2, 2, 3}
	vols := CommVolumes(g, part, 4)
	// Center (block 0) sees blocks {1,2,3}: contributes 3 to block 0.
	if vols[0] != 3 {
		t.Errorf("vols[0] = %d, want 3", vols[0])
	}
	// Each leaf sees only block 0: 1 each; block 1 has two leaves -> 2.
	if vols[1] != 2 || vols[2] != 2 || vols[3] != 1 {
		t.Errorf("vols = %v", vols)
	}
}

func TestCommVolumeDistinctBlocksOnly(t *testing.T) {
	// Vertex with two neighbors in the same foreign block counts once.
	edges := [][2]int32{{0, 1}, {0, 2}}
	g := graph.FromEdges(3, edges)
	part := []int32{0, 1, 1}
	vols := CommVolumes(g, part, 2)
	if vols[0] != 1 {
		t.Errorf("vols[0] = %d, want 1 (distinct blocks only)", vols[0])
	}
	if vols[1] != 2 {
		t.Errorf("vols[1] = %d, want 2 (two boundary vertices)", vols[1])
	}
}

func TestImbalance(t *testing.T) {
	if imb := Imbalance([]float64{10, 10, 10}); imb != 0 {
		t.Errorf("balanced imbalance = %g", imb)
	}
	if imb := Imbalance([]float64{20, 10, 0}); math.Abs(imb-1.0) > 1e-12 {
		t.Errorf("imbalance = %g, want 1.0", imb)
	}
	if imb := Imbalance([]float64{0, 0}); imb != 0 {
		t.Errorf("zero weights imbalance = %g", imb)
	}
}

func TestBlockWeights(t *testing.T) {
	ps := unitPoints(4)
	ps.Weight = []float64{1, 2, 3, 4}
	w := BlockWeights(ps, []int32{0, 1, 0, 1}, 2)
	if w[0] != 4 || w[1] != 6 {
		t.Errorf("weights = %v", w)
	}
}

func TestBlockDiametersPath(t *testing.T) {
	// Path of 10; block 0 = first 4 (diameter 3), block 1 = rest (diameter 5).
	edges := make([][2]int32, 9)
	for i := 0; i < 9; i++ {
		edges[i] = [2]int32{int32(i), int32(i + 1)}
	}
	g := graph.FromEdges(10, edges)
	part := []int32{0, 0, 0, 0, 1, 1, 1, 1, 1, 1}
	diam := BlockDiameters(g, part, 2)
	if diam[0] != 3 || diam[1] != 5 {
		t.Errorf("diam = %v, want [3 5]", diam)
	}
}

func TestBlockDiametersDisconnected(t *testing.T) {
	// Path 0-1-2-3-4; block 0 = {0, 4} is disconnected within the block.
	edges := [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 4}}
	g := graph.FromEdges(5, edges)
	part := []int32{0, 1, 1, 1, 0}
	diam := BlockDiameters(g, part, 2)
	if diam[0] != -1 {
		t.Errorf("disconnected block diameter = %d, want -1", diam[0])
	}
	if diam[1] != 2 {
		t.Errorf("diam[1] = %d, want 2", diam[1])
	}
}

func TestBlockDiametersEmptyBlock(t *testing.T) {
	g := ring(4)
	part := []int32{0, 0, 0, 0}
	diam := BlockDiameters(g, part, 2) // block 1 empty
	if diam[1] != 0 {
		t.Errorf("empty block diameter = %d, want 0", diam[1])
	}
}

func TestHarmonicMeanDiameter(t *testing.T) {
	if h := HarmonicMeanDiameter([]int32{2, 2, 2}); math.Abs(h-2) > 1e-12 {
		t.Errorf("uniform harmonic mean = %g", h)
	}
	// Infinite diameters pull the mean *up* (contribute 0 reciprocal but
	// count): harmonic mean of {2, inf} = 2/(1/2) = 4.
	if h := HarmonicMeanDiameter([]int32{2, -1}); math.Abs(h-4) > 1e-12 {
		t.Errorf("with one infinite = %g, want 4", h)
	}
	if h := HarmonicMeanDiameter([]int32{0, 0}); h != 0 {
		t.Errorf("all empty = %g", h)
	}
	if h := HarmonicMeanDiameter([]int32{-1, -1}); h != 0 {
		t.Errorf("all infinite = %g", h)
	}
}

func TestEvaluateEndToEnd(t *testing.T) {
	g := ring(12)
	ps := unitPoints(12)
	part := []int32{0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2}
	r, err := Evaluate(g, ps, part, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.EdgeCut != 3 {
		t.Errorf("cut = %d, want 3", r.EdgeCut)
	}
	// Each block has 2 boundary vertices, each seeing 1 other block.
	if r.TotCommVol != 6 || r.MaxCommVol != 2 {
		t.Errorf("commVol = %d/%d, want 6/2", r.TotCommVol, r.MaxCommVol)
	}
	if r.Imbalance != 0 {
		t.Errorf("imbalance = %g", r.Imbalance)
	}
	if r.HarmDiam != 3 || r.MaxDiam != 3 {
		t.Errorf("diam = %g/%d, want 3/3", r.HarmDiam, r.MaxDiam)
	}
	if r.Disconnected != 0 || r.EmptyBlocks != 0 {
		t.Errorf("disconnected=%d empty=%d", r.Disconnected, r.EmptyBlocks)
	}
	if r.String() == "" {
		t.Error("empty String")
	}
}

func TestEvaluateFlagsProblems(t *testing.T) {
	g := ring(6)
	ps := unitPoints(6)
	// Splitting one ring block into two arcs disconnects both blocks
	// (each occupies two disjoint arcs); block 2 stays empty.
	part := []int32{0, 1, 1, 0, 1, 1}
	r, err := Evaluate(g, ps, part, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Disconnected != 2 {
		t.Errorf("Disconnected = %d, want 2", r.Disconnected)
	}
	if r.EmptyBlocks != 1 {
		t.Errorf("EmptyBlocks = %d, want 1", r.EmptyBlocks)
	}
}

func TestBlockAspectRatios(t *testing.T) {
	ps := geom.NewPointSet(2, 8)
	// Block 0: 4x1 strip; block 1: 2x2 square; block 2: empty; block 3: single point.
	pts := []geom.Point{{0, 0}, {4, 1}, {10, 10}, {12, 12}, {20, 20}}
	parts := []int32{0, 0, 1, 1, 3}
	for _, p := range pts {
		ps.Append(p, 1)
	}
	rs := BlockAspectRatios(ps, parts, 4)
	if math.Abs(rs[0]-4) > 1e-12 {
		t.Errorf("strip aspect = %g, want 4", rs[0])
	}
	if math.Abs(rs[1]-1) > 1e-12 {
		t.Errorf("square aspect = %g, want 1", rs[1])
	}
	if rs[2] != 0 {
		t.Errorf("empty block aspect = %g", rs[2])
	}
	if rs[3] != 1 {
		t.Errorf("single-point aspect = %g, want 1", rs[3])
	}
	if m := MeanAspectRatio(ps, parts, 4); math.Abs(m-2) > 1e-12 {
		t.Errorf("mean aspect = %g, want 2", m)
	}
}

func TestGeometricMean(t *testing.T) {
	if gm := GeometricMean([]float64{2, 8}); math.Abs(gm-4) > 1e-12 {
		t.Errorf("gm = %g, want 4", gm)
	}
	if gm := GeometricMean([]float64{5, 0, -1}); math.Abs(gm-5) > 1e-12 {
		t.Errorf("gm with zeros = %g, want 5", gm)
	}
	if gm := GeometricMean(nil); gm != 0 {
		t.Errorf("gm of empty = %g", gm)
	}
}

// Property: total comm volume >= edge cut / max-degree-ish relation does
// not hold in general, but comm volume is always <= 2*cut (each cut edge
// adds at most 1 to each side) and >= cut/(maxdeg).
func TestCommVolumeCutRelationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		n := 20 + rng.Intn(50)
		edges := make([][2]int32, 3*n)
		for i := range edges {
			edges[i] = [2]int32{int32(rng.Intn(n)), int32(rng.Intn(n))}
		}
		g := graph.FromEdges(n, edges)
		k := 2 + rng.Intn(4)
		part := make([]int32, n)
		for i := range part {
			part[i] = int32(rng.Intn(k))
		}
		cut := EdgeCut(g, part)
		vols := CommVolumes(g, part, k)
		var tot int64
		for _, v := range vols {
			tot += v
		}
		if tot > 2*cut {
			t.Fatalf("trial %d: totComm %d > 2*cut %d", trial, tot, cut)
		}
		if cut > 0 && tot == 0 {
			t.Fatalf("trial %d: cut %d but no comm volume", trial, cut)
		}
	}
}

func BenchmarkEvaluate(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 20000
	edges := make([][2]int32, 3*n)
	for i := range edges {
		edges[i] = [2]int32{int32(rng.Intn(n)), int32(rng.Intn(n))}
	}
	g := graph.FromEdges(n, edges)
	ps := unitPoints(n)
	part := make([]int32, n)
	for i := range part {
		part[i] = int32(rng.Intn(64))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Evaluate(g, ps, part, 64); err != nil {
			b.Fatal(err)
		}
	}
}

func TestEvaluateRejectsInvalidPartitions(t *testing.T) {
	g := ring(6)
	ps := unitPoints(6)
	// Out-of-range block id used to panic with index out of range in
	// CommVolumes' stamp array; it must surface as an error instead.
	for _, part := range [][]int32{
		{0, 1, 2, 0, 1, 7},  // block id >= k
		{0, 1, 2, 0, 1, -3}, // negative block id
	} {
		if _, err := Evaluate(g, ps, part, 3); err == nil {
			t.Errorf("part %v accepted", part)
		}
	}
	if _, err := Evaluate(g, ps, []int32{0, 1, 2}, 3); err == nil {
		t.Error("short partition accepted")
	}
	if _, err := Evaluate(g, ps, make([]int32, 6), 0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestMigrationVolumeAndDelta(t *testing.T) {
	g := ring(6)
	ps := geom.NewPointSet(2, 6)
	for i := 0; i < 6; i++ {
		ps.Append(geom.Point{float64(i), 0}, float64(i+1)) // weights 1..6
	}
	prev := []int32{0, 0, 0, 1, 1, 1}
	next := []int32{0, 0, 1, 1, 1, 0} // points 2 (w=3) and 5 (w=6) move
	w, n, err := MigrationVolume(ps, prev, next)
	if err != nil {
		t.Fatal(err)
	}
	if w != 9 || n != 2 {
		t.Fatalf("migration = (%g, %d), want (9, 2)", w, n)
	}
	if _, _, err := MigrationVolume(ps, prev[:3], next); err == nil {
		t.Error("short prev accepted")
	}
	rPrev, err := Evaluate(g, ps, prev, 2)
	if err != nil {
		t.Fatal(err)
	}
	rNext, err := Evaluate(g, ps, next, 2)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Delta(rPrev, rNext, ps, prev, next)
	if err != nil {
		t.Fatal(err)
	}
	if d.MigratedWeight != 9 || d.MigratedPoints != 2 {
		t.Errorf("delta migration = (%g, %d)", d.MigratedWeight, d.MigratedPoints)
	}
	if want := 9.0 / 21.0; math.Abs(d.MigratedFrac-want) > 1e-15 {
		t.Errorf("migrated frac = %g, want %g", d.MigratedFrac, want)
	}
	if d.EdgeCut != rNext.EdgeCut-rPrev.EdgeCut {
		t.Errorf("cut delta = %d", d.EdgeCut)
	}
	same, err := Delta(rPrev, rPrev, ps, prev, prev)
	if err != nil {
		t.Fatal(err)
	}
	if same.MigratedWeight != 0 || same.EdgeCut != 0 {
		t.Errorf("self delta = %+v", same)
	}
}
