package geom

import (
	"math"
	"math/rand"
	"testing"
)

func randCols(dim, n int, seed int64) Cols {
	rng := rand.New(rand.NewSource(seed))
	c := MakeCols(dim, n)
	for i := 0; i < n; i++ {
		var p Point
		for d := 0; d < dim; d++ {
			p[d] = rng.Float64()
		}
		c.Set(i, p)
	}
	return c
}

func TestColsRoundTrip(t *testing.T) {
	for _, dim := range []int{2, 3} {
		c := randCols(dim, 100, int64(dim))
		if c.Len() != 100 {
			t.Fatalf("len %d", c.Len())
		}
		for i := 0; i < c.Len(); i++ {
			p := c.At(i)
			for d := dim; d < MaxDim; d++ {
				if p[d] != 0 {
					t.Fatalf("dim=%d: unused axis %d of point %d is %g", dim, d, i, p[d])
				}
			}
		}
	}
}

func TestDist2BatchMatchesDist2(t *testing.T) {
	for _, dim := range []int{2, 3} {
		c := randCols(dim, 500, int64(10+dim))
		q := Point{0.3, 0.7, 0.1}
		if dim == 2 {
			q[2] = 0
		}
		out := make([]float64, c.Len())
		Dist2Batch(dim, c.X, c.Y, c.Z, q, out)
		for i := range out {
			want := Dist2(c.At(i), q, dim)
			if math.Float64bits(out[i]) != math.Float64bits(want) {
				t.Fatalf("dim=%d point %d: batch %x, Dist2 %x", dim, i, out[i], want)
			}
		}
	}
}

func TestSampleBoxW(t *testing.T) {
	c := randCols(2, 200, 3)
	w := make([]float64, 200)
	idx := make([]int32, 0, 100)
	for i := range w {
		w[i] = float64(i%7) + 0.5
		if i%2 == 0 {
			idx = append(idx, int32(i))
		}
	}
	bb, sumW := SampleBoxW(2, c.X, c.Y, c.Z, w, idx)

	want := EmptyBox(2)
	wantW := 0.0
	for _, i := range idx {
		want.Extend(c.At(int(i)))
		wantW += w[i]
	}
	if bb.Min != want.Min || bb.Max != want.Max || sumW != wantW {
		t.Fatalf("got (%v, %g), want (%v, %g)", bb, sumW, want, wantW)
	}

	empty, zw := SampleBoxW(2, c.X, c.Y, c.Z, w, nil)
	if !empty.Empty() || zw != 0 {
		t.Fatalf("empty sample: %v, %g", empty, zw)
	}
}

// BenchmarkDist2Batch is the stable baseline for the raw SoA distance
// throughput the assignment kernels build on.
func BenchmarkDist2Batch(b *testing.B) {
	for _, bc := range []struct {
		name string
		dim  int
	}{{"2D", 2}, {"3D", 3}} {
		b.Run(bc.name, func(b *testing.B) {
			const n = 100_000
			c := randCols(bc.dim, n, 1)
			out := make([]float64, n)
			q := Point{0.5, 0.5, 0.5}
			b.SetBytes(int64(n * bc.dim * 8))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Dist2Batch(bc.dim, c.X, c.Y, c.Z, q, out)
			}
		})
	}
}
