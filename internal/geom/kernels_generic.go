// Generic-dimension bodies of the batch assignment kernels: the same
// squared effective-distance comparison structure as the 2D/3D
// specialized passes in kernels.go, with the per-axis difference
// accumulation replaced by a walk over the PC/CC column slices. The
// accumulation is left to right with a zero start, exactly the
// association order the specialized expressions use, so at d ≤ MaxDim
// every value these bodies produce is bit-identical to the specialized
// passes — pinned by TestGenericKernelMatchesSpecialized — and for
// d > MaxDim they are pinned against the scalar reference path of
// internal/core. The entry points are exported so the differential tests
// can force the generic path at the spatial dimensions the production
// dispatch would route to the specialized bodies.

package geom

import "math"

// colsDist2 returns the squared Euclidean distance between point i of
// the pc columns and center b of the cc columns.
func colsDist2(pc, cc [][]float64, i, b int32) float64 {
	s := 0.0
	for d, col := range cc {
		t := pc[d][i] - col[b]
		s += t * t
	}
	return s
}

// RunBoundedGeneric is the generic-dimension body of RunBounded. The
// kernel's PC/CC columns must be populated.
func (kr *AssignKernel) RunBoundedGeneric(idx []int32, hamerly bool) {
	pc, cc := kr.PC, kr.CC
	inv2 := kr.InvInf2
	order, dbb2 := kr.Order, kr.DistBB2
	prune := kr.Prune
	w, a, ub, lb, localW := kr.W, kr.A, kr.Ub, kr.Lb, kr.LocalW
	ubScale, lbScale := kr.UbScale, kr.LbScale
	scaled := ubScale != nil
	var distCalcs, skips, breaks int64
	for _, i := range idx {
		best := a[i]
		if hamerly && best >= 0 {
			u, l := ub[i], lb[i]
			if scaled {
				u *= ubScale[best]
				l *= lbScale
			}
			if u < l {
				if scaled {
					ub[i] = u
					lb[i] = l
				}
				skips++
				localW[best] += w[i]
				continue
			}
		}
		best2, second2 := math.Inf(1), math.Inf(1)
		best = 0
		for _, bc := range order {
			if prune && dbb2[bc] > second2 {
				breaks++
				break
			}
			d2 := colsDist2(pc, cc, i, bc) * inv2[bc]
			distCalcs++
			if d2 < best2 {
				second2 = best2
				best2 = d2
				best = bc
			} else if d2 < second2 {
				second2 = d2
			}
		}
		a[i] = best
		ub[i] = math.Sqrt(best2)
		lb[i] = math.Sqrt(second2)
		localW[best] += w[i]
	}
	kr.DistCalcs += distCalcs
	kr.Skips += skips
	kr.Breaks += breaks
}

// RunElkanGeneric is the generic-dimension body of RunElkan.
func (kr *AssignKernel) RunElkanGeneric(idx []int32) {
	pc, cc := kr.PC, kr.CC
	inv2 := kr.InvInf2
	order, dbb2 := kr.Order, kr.DistBB2
	prune := kr.Prune
	k := kr.K
	w, a, ub, lbk, localW := kr.W, kr.A, kr.Ub, kr.Lbk, kr.LocalW
	var distCalcs, skips, breaks int64
	for _, i := range idx {
		best2 := math.Inf(1)
		bestC := int32(0)
		row := int(i) * k
		cur := a[i]
		if cur >= 0 {
			raw2 := colsDist2(pc, cc, i, cur)
			distCalcs++
			lbk[row+int(cur)] = math.Sqrt(raw2)
			best2 = raw2 * inv2[cur]
			bestC = cur
		}
		for _, bc := range order {
			if bc == cur {
				continue
			}
			if prune && dbb2[bc] > best2 {
				breaks++
				break
			}
			if l := lbk[row+int(bc)]; l > 0 && l*l*inv2[bc] >= best2 {
				skips++
				continue
			}
			raw2 := colsDist2(pc, cc, i, bc)
			distCalcs++
			lbk[row+int(bc)] = math.Sqrt(raw2)
			if d2 := raw2 * inv2[bc]; d2 < best2 {
				best2 = d2
				bestC = bc
			}
		}
		a[i] = bestC
		ub[i] = math.Sqrt(best2)
		localW[bestC] += w[i]
	}
	kr.DistCalcs += distCalcs
	kr.Skips += skips
	kr.Breaks += breaks
}

// RunBoundedRawGeneric is the generic-dimension body of RunBoundedRaw.
func (kr *AssignKernel) RunBoundedRawGeneric(idx []int32) {
	pc, cc := kr.PC, kr.CC
	inv2 := kr.InvInf2
	k := kr.K
	order := kr.Order
	ccOrder, ccDist := kr.CCOrder, kr.CCDist
	w, a, ub, lb, localW := kr.W, kr.A, kr.Ub, kr.Lb, kr.LocalW
	rawLb, rawLbInv := kr.RawLb, kr.RawLbInv
	invMaxInf2 := rawLbInv * rawLbInv
	ubScale, lbScale := kr.UbScale, kr.LbScale
	scaled := ubScale != nil
	var distCalcs, skips, breaks int64
	for _, i := range idx {
		cur := a[i]
		if cur >= 0 {
			u, l := ub[i], lb[i]
			if scaled {
				u *= ubScale[cur]
				l *= lbScale
			}
			if lr := rawLb[i] * rawLbInv; lr > l {
				l = lr
			}
			if u < l {
				ub[i] = u
				lb[i] = l
				skips++
				localW[cur] += w[i]
				continue
			}
		}
		best2, second2 := math.Inf(1), math.Inf(1)
		r1, r2 := math.Inf(1), math.Inf(1)
		r1id := int32(-1)
		best := int32(0)
		rawFloor2 := math.Inf(1)
		if cur >= 0 {
			row := int(cur) * k
			rawA2 := colsDist2(pc, cc, i, cur)
			distCalcs++
			rub := math.Sqrt(rawA2)
			r1, r1id = rawA2, cur
			best2 = rawA2 * inv2[cur]
			best = cur
			for j := 1; j < k; j++ {
				lr := ccDist[row+j] - rub
				if lr > 0 && lr*lr*invMaxInf2 > second2 {
					breaks++
					rawFloor2 = lr * lr
					break
				}
				bc := ccOrder[row+j]
				raw2 := colsDist2(pc, cc, i, bc)
				d2 := raw2 * inv2[bc]
				distCalcs++
				if raw2 < r1 {
					r2 = r1
					r1 = raw2
					r1id = bc
				} else if raw2 < r2 {
					r2 = raw2
				}
				if d2 < best2 {
					second2 = best2
					best2 = d2
					best = bc
				} else if d2 < second2 {
					second2 = d2
				}
			}
		} else {
			for _, bc := range order {
				raw2 := colsDist2(pc, cc, i, bc)
				d2 := raw2 * inv2[bc]
				distCalcs++
				if raw2 < r1 {
					r2 = r1
					r1 = raw2
					r1id = bc
				} else if raw2 < r2 {
					r2 = raw2
				}
				if d2 < best2 {
					second2 = best2
					best2 = d2
					best = bc
				} else if d2 < second2 {
					second2 = d2
				}
			}
		}
		a[i] = best
		ub[i] = math.Sqrt(best2)
		lb[i] = math.Sqrt(second2)
		rl := r1
		if r1id == best {
			rl = r2
		}
		if rawFloor2 < rl {
			rl = rawFloor2
		}
		rawLb[i] = math.Sqrt(rl)
		localW[best] += w[i]
	}
	kr.DistCalcs += distCalcs
	kr.Skips += skips
	kr.Breaks += breaks
}
