package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDist2Cases(t *testing.T) {
	p := Point{0, 0, 0}
	q := Point{3, 4, 0}
	if got := Dist2(p, q, 2); got != 25 {
		t.Errorf("Dist2 2D = %g, want 25", got)
	}
	if got := Dist(p, q, 2); got != 5 {
		t.Errorf("Dist 2D = %g, want 5", got)
	}
	q3 := Point{1, 2, 2}
	if got := Dist2(p, q3, 3); got != 9 {
		t.Errorf("Dist2 3D = %g, want 9", got)
	}
	if got := Dist2(p, q3, 1); got != 1 {
		t.Errorf("Dist2 1D = %g, want 1", got)
	}
}

func TestDistSymmetryProperty(t *testing.T) {
	f := func(a, b [3]float64) bool {
		p, q := Point(a), Point(b)
		for dim := 2; dim <= 3; dim++ {
			if Dist2(p, q, dim) != Dist2(q, p, dim) {
				return false
			}
			if Dist2(p, q, dim) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTriangleInequalityProperty(t *testing.T) {
	// The Hamerly bounds in the core package rely on the triangle
	// inequality of Dist; check it on random triples.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 1000; trial++ {
		var a, b, c Point
		for d := 0; d < 3; d++ {
			a[d], b[d], c[d] = rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
		}
		for dim := 2; dim <= 3; dim++ {
			ab, bc, ac := Dist(a, b, dim), Dist(b, c, dim), Dist(a, c, dim)
			if ac > ab+bc+1e-12 {
				t.Fatalf("triangle inequality violated: %g > %g + %g", ac, ab, bc)
			}
		}
	}
}

func TestBoxBasics(t *testing.T) {
	b := EmptyBox(2)
	if !b.Empty() {
		t.Fatal("EmptyBox not empty")
	}
	b.Extend(Point{1, 2})
	b.Extend(Point{-1, 5})
	if b.Empty() {
		t.Fatal("box with points reports empty")
	}
	if b.Min != (Point{-1, 2}) || b.Max != (Point{1, 5}) {
		t.Fatalf("bad bounds: %v", b)
	}
	if b.Side(0) != 2 || b.Side(1) != 3 {
		t.Fatalf("bad sides: %g, %g", b.Side(0), b.Side(1))
	}
	if b.WidestAxis() != 1 {
		t.Fatalf("widest axis = %d, want 1", b.WidestAxis())
	}
	if got := b.Center(); got != (Point{0, 3.5}) {
		t.Fatalf("center = %v", got)
	}
	if math.Abs(b.Diagonal()-math.Sqrt(13)) > 1e-12 {
		t.Fatalf("diagonal = %g", b.Diagonal())
	}
	if !b.Contains(Point{0, 3}) || b.Contains(Point{0, 6}) {
		t.Fatal("Contains wrong")
	}
	u := b.Union(NewBox(Point{5, 5}, Point{6, 6}, 2))
	if u.Max != (Point{6, 6}) || u.Min != (Point{-1, 2}) {
		t.Fatalf("union = %v", u)
	}
	if b.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestBoxMinMaxDist(t *testing.T) {
	b := NewBox(Point{0, 0}, Point{1, 1}, 2)
	cases := []struct {
		p        Point
		min, max float64
	}{
		{Point{0.5, 0.5}, 0, math.Sqrt(0.5)},
		{Point{2, 0.5}, 1, math.Sqrt(4 + 0.25)},
		{Point{-1, -1}, math.Sqrt2, math.Sqrt(8)},
		{Point{0.5, 3}, 2, math.Sqrt(0.25 + 9)},
	}
	for _, c := range cases {
		if got := b.MinDist(c.p); math.Abs(got-c.min) > 1e-12 {
			t.Errorf("MinDist(%v) = %g, want %g", c.p, got, c.min)
		}
		if got := b.MaxDist(c.p); math.Abs(got-c.max) > 1e-12 {
			t.Errorf("MaxDist(%v) = %g, want %g", c.p, got, c.max)
		}
	}
}

// Property: for any point q inside the box, MinDist(p) <= Dist(p,q) <= MaxDist(p).
func TestBoxDistBoundsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 2000; trial++ {
		dim := 2 + trial%2
		b := EmptyBox(dim)
		var q Point
		for d := 0; d < dim; d++ {
			lo, hi := rng.Float64()*10-5, rng.Float64()*10-5
			if lo > hi {
				lo, hi = hi, lo
			}
			b.Min[d], b.Max[d] = lo, hi
			q[d] = lo + rng.Float64()*(hi-lo)
		}
		var p Point
		for d := 0; d < dim; d++ {
			p[d] = rng.Float64()*20 - 10
		}
		dist := Dist(p, q, dim)
		if dist < b.MinDist(p)-1e-9 {
			t.Fatalf("dim %d: dist %g < MinDist %g", dim, dist, b.MinDist(p))
		}
		if dist > b.MaxDist(p)+1e-9 {
			t.Fatalf("dim %d: dist %g > MaxDist %g", dim, dist, b.MaxDist(p))
		}
	}
}

func TestPointArithmetic(t *testing.T) {
	p, q := Point{1, 2, 3}, Point{4, 5, 6}
	if p.Add(q) != (Point{5, 7, 9}) {
		t.Error("Add")
	}
	if q.Sub(p) != (Point{3, 3, 3}) {
		t.Error("Sub")
	}
	if p.Scale(2) != (Point{2, 4, 6}) {
		t.Error("Scale")
	}
	if p.Dot(q, 3) != 32 {
		t.Error("Dot 3D")
	}
	if p.Dot(q, 2) != 14 {
		t.Error("Dot 2D")
	}
}

func TestPointSetBasics(t *testing.T) {
	ps := NewPointSet(2, 4)
	ps.Append(Point{0, 0}, 1)
	ps.Append(Point{1, 0}, 1)
	if ps.Weight != nil {
		t.Fatal("unit weights should stay implicit")
	}
	ps.Append(Point{1, 1}, 2.5)
	if ps.Weight == nil {
		t.Fatal("non-unit weight must materialize weights")
	}
	if ps.Len() != 3 {
		t.Fatalf("Len = %d", ps.Len())
	}
	if ps.W(0) != 1 || ps.W(2) != 2.5 {
		t.Fatalf("weights: %v", ps.Weight)
	}
	if ps.TotalWeight() != 4.5 {
		t.Fatalf("TotalWeight = %g", ps.TotalWeight())
	}
	if ps.At(1) != (Point{1, 0}) {
		t.Fatalf("At(1) = %v", ps.At(1))
	}
	ps.Set(1, Point{9, 9})
	if ps.At(1) != (Point{9, 9}) {
		t.Fatal("Set failed")
	}
	if err := ps.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	b := ps.Bounds()
	if b.Min != (Point{0, 0}) || b.Max != (Point{9, 9}) {
		t.Fatalf("bounds: %v", b)
	}

	cl := ps.Clone()
	cl.Set(0, Point{7, 7})
	if ps.At(0) == (Point{7, 7}) {
		t.Fatal("Clone aliases original")
	}

	sub := ps.Subset([]int{2, 0})
	if sub.Len() != 2 || sub.At(0) != (Point{1, 1}) || sub.W(0) != 2.5 {
		t.Fatalf("Subset wrong: %v %v", sub.Coords, sub.Weight)
	}
}

func TestPointSetUnweightedTotals(t *testing.T) {
	ps := NewPointSet(3, 2)
	ps.Append(Point{0, 0, 0}, 1)
	ps.Append(Point{1, 1, 1}, 1)
	if ps.TotalWeight() != 2 {
		t.Fatalf("TotalWeight = %g", ps.TotalWeight())
	}
	sub := ps.Subset([]int{1})
	if sub.Weight != nil || sub.Len() != 1 {
		t.Fatal("Subset of unweighted set should stay unweighted")
	}
}

func TestPointSetValidateErrors(t *testing.T) {
	bad := &PointSet{Dim: 0}
	if bad.Validate() == nil {
		t.Error("dim 0 should fail")
	}
	if ok := (&PointSet{Dim: 5}).Validate(); ok != nil {
		t.Errorf("dim 5 is a valid feature-space set: %v", ok)
	}
	bad = &PointSet{Dim: 2, Coords: []float64{1, 2, 3}}
	if bad.Validate() == nil {
		t.Error("odd coord count should fail")
	}
	bad = &PointSet{Dim: 2, Coords: []float64{1, 2}, Weight: []float64{1, 2}}
	if bad.Validate() == nil {
		t.Error("weight length mismatch should fail")
	}
	bad = &PointSet{Dim: 2, Coords: []float64{1, 2}, Weight: []float64{-1}}
	if bad.Validate() == nil {
		t.Error("negative weight should fail")
	}
}

func BenchmarkDist2_2D(b *testing.B) {
	p, q := Point{0.3, 0.7}, Point{0.9, 0.1}
	s := 0.0
	for i := 0; i < b.N; i++ {
		s += Dist2(p, q, 2)
	}
	_ = s
}

func BenchmarkBoxMinDist2(b *testing.B) {
	box := NewBox(Point{0, 0, 0}, Point{1, 1, 1}, 3)
	p := Point{2, -1, 0.5}
	s := 0.0
	for i := 0; i < b.N; i++ {
		s += box.MinDist2(p)
	}
	_ = s
}
