// Batch assignment kernels in squared effective-distance space.
//
// The balanced k-means assignment loop (paper Algorithm 1) compares
// effective distances dist(p,c)/influence(c) across centers. Because x²
// is strictly monotone on [0,∞), every comparison — argmin selection,
// second-best tracking, bound skips and bounding-box pruning — can be
// carried out on dist²(p,c)·invInfluence²(c) instead, which removes the
// math.Sqrt and the division from the innermost O(n·k) loop. Square
// roots survive only at bound-maintenance boundaries (one or two per
// *point* when its upper/lower bounds are rewritten, and one per actual
// distance evaluation in Elkan mode where the stored per-center bounds
// live in raw-distance space). See DESIGN.md, "Performance notes", for
// the invariants the callers rely on.
//
// The kernels read points from a structure-of-arrays Cols store. The
// spatial dimensions (2D and 3D; 1D inputs ride on the 2D kernel with a
// zero Y column) run through register-specialized bodies; any higher
// dimension dispatches to the generic column-walking bodies (the
// *Generic entry points), which share the exact comparison structure and
// left-to-right accumulation order — at d ≤ 3 the generic bodies are
// bit-identical to the specialized ones, which is pinned by a
// differential test. Each AssignKernel value carries its own weight
// accumulator and counters so that several kernels can run concurrently
// over disjoint index shards of the same point set.
package geom

import "math"

// The machine-independent chunk grid shared by every batch kernel that
// splits per-point work for intra-rank parallelism (the assignment
// kernels of internal/core, the key kernel of internal/sfc). Chunk
// boundaries are a function of n alone — never of the worker count or
// the host — so per-chunk accumulators always merge in the same
// floating-point order and output stays bit-identical across machines
// and worker settings.
const (
	// MinChunkPoints is the smallest per-chunk slice worth its own
	// accumulator: below this, setup/merge overhead dominates.
	MinChunkPoints = 512
	// MaxKernelChunks caps the fan-out: beyond this, merge overhead and
	// goroutine churn outweigh the per-chunk speedup at the sample sizes
	// the balance rounds run on.
	MaxKernelChunks = 16
)

// ChunkGrid returns the chunk count of the shared grid for n points.
func ChunkGrid(n int) int {
	c := n / MinChunkPoints
	if c < 1 {
		c = 1
	}
	if c > MaxKernelChunks {
		c = MaxKernelChunks
	}
	return c
}

// Cols is a structure-of-arrays point store: one flat []float64 column
// per axis, the layout the batch kernels operate on. Col holds the Dim
// live columns (strided views over one backing buffer). For spatial
// dimensions (Dim ≤ MaxDim) the X/Y/Z aliases are additionally always
// allocated to the full length — unused axes stay zero — so the
// dimension-specialized kernels never need bounds switches on Dim; for
// Dim > MaxDim the X/Y/Z aliases point at the first three columns and
// only the generic kernels may be used.
type Cols struct {
	Dim     int
	X, Y, Z []float64
	Col     [][]float64
}

// MakeCols returns a Cols holding n zero points in one backing allocation.
func MakeCols(dim, n int) Cols {
	if dim <= MaxDim {
		buf := make([]float64, 3*n)
		c := Cols{Dim: dim, X: buf[0:n:n], Y: buf[n : 2*n : 2*n], Z: buf[2*n : 3*n : 3*n]}
		c.Col = [][]float64{c.X, c.Y, c.Z}[:dim]
		return c
	}
	buf := make([]float64, dim*n)
	col := make([][]float64, dim)
	for d := range col {
		col[d] = buf[d*n : (d+1)*n : (d+1)*n]
	}
	return Cols{Dim: dim, X: col[0], Y: col[1], Z: col[2], Col: col}
}

// Len returns the number of points.
func (c *Cols) Len() int { return len(c.X) }

// At returns point i as a Point value (spatial dimensions only).
func (c *Cols) At(i int) Point { return Point{c.X[i], c.Y[i], c.Z[i]} }

// Set overwrites point i (spatial dimensions only).
func (c *Cols) Set(i int, p Point) {
	c.X[i], c.Y[i], c.Z[i] = p[0], p[1], p[2]
}

// AtVec copies point i into out (len(out) ≥ Dim), any dimension.
func (c *Cols) AtVec(i int, out []float64) {
	for d, col := range c.Col {
		out[d] = col[i]
	}
}

// SetVec overwrites point i from v (len(v) ≥ Dim), any dimension.
func (c *Cols) SetVec(i int, v []float64) {
	for d, col := range c.Col {
		col[i] = v[d]
	}
}

// Dist2Batch writes the squared Euclidean distance from every point of
// the columns to the query point q into out (len(out) = column length).
// It is the unconditional building block underneath the assignment
// kernels and the baseline for their microbenchmarks.
func Dist2Batch(dim int, px, py, pz []float64, q Point, out []float64) {
	if dim == 3 {
		qx, qy, qz := q[0], q[1], q[2]
		for i := range out {
			dx := px[i] - qx
			dy := py[i] - qy
			dz := pz[i] - qz
			out[i] = dx*dx + dy*dy + dz*dz
		}
		return
	}
	qx, qy := q[0], q[1]
	for i := range out {
		dx := px[i] - qx
		dy := py[i] - qy
		out[i] = dx*dx + dy*dy
	}
}

// SampleBoxW extends an empty box over the indexed points and sums their
// weights — the fused first pass of every balance round. The min/max
// running values stay in registers instead of going through Box.Extend
// per point.
func SampleBoxW(dim int, px, py, pz, w []float64, idx []int32) (Box, float64) {
	bb := EmptyBox(dim)
	sumW := 0.0
	if dim == 3 {
		minX, minY, minZ := bb.Min[0], bb.Min[1], bb.Min[2]
		maxX, maxY, maxZ := bb.Max[0], bb.Max[1], bb.Max[2]
		for _, i := range idx {
			x, y, z := px[i], py[i], pz[i]
			if x < minX {
				minX = x
			}
			if x > maxX {
				maxX = x
			}
			if y < minY {
				minY = y
			}
			if y > maxY {
				maxY = y
			}
			if z < minZ {
				minZ = z
			}
			if z > maxZ {
				maxZ = z
			}
			sumW += w[i]
		}
		bb.Min[0], bb.Min[1], bb.Min[2] = minX, minY, minZ
		bb.Max[0], bb.Max[1], bb.Max[2] = maxX, maxY, maxZ
		return bb, sumW
	}
	if dim == 2 {
		minX, minY := bb.Min[0], bb.Min[1]
		maxX, maxY := bb.Max[0], bb.Max[1]
		for _, i := range idx {
			x, y := px[i], py[i]
			if x < minX {
				minX = x
			}
			if x > maxX {
				maxX = x
			}
			if y < minY {
				minY = y
			}
			if y > maxY {
				maxY = y
			}
			sumW += w[i]
		}
		bb.Min[0], bb.Min[1] = minX, minY
		bb.Max[0], bb.Max[1] = maxX, maxY
		return bb, sumW
	}
	for _, i := range idx {
		bb.Extend(Point{px[i], py[i], pz[i]})
		sumW += w[i]
	}
	return bb, sumW
}

// Dist2BatchND is Dist2Batch for any dimension: the squared Euclidean
// distance from every point of the pc columns to the query vector q
// (len(q) = dimension) is written into out. Axis differences accumulate
// left to right, the same order the specialized kernels use, so at d ≤ 3
// the results are bit-identical to Dist2Batch.
func Dist2BatchND(pc [][]float64, q []float64, out []float64) {
	for i := range out {
		s := 0.0
		for d := range q {
			t := pc[d][i] - q[d]
			s += t * t
		}
		out[i] = s
	}
}

// SampleBoxWND is SampleBoxW for any dimension: it folds the indexed
// points of the pc columns into the caller-provided flat box (bmin/bmax,
// len = dimension, reinitialized to the empty box here) and sums their
// weights. Allocation-free, so warm steps can reuse one scratch box.
func SampleBoxWND(pc [][]float64, w []float64, idx []int32, bmin, bmax []float64) float64 {
	FlatBoxInit(bmin, bmax)
	sumW := 0.0
	for _, i := range idx {
		for d, col := range pc {
			x := col[i]
			if x < bmin[d] {
				bmin[d] = x
			}
			if x > bmax[d] {
				bmax[d] = x
			}
		}
		sumW += w[i]
	}
	return sumW
}

// AssignKernel bundles the inputs, in/out state and accumulators of one
// batch assignment pass. The point and center columns, pruning tables
// and per-point slices (A, Ub, Lb, Lbk) may be shared between several
// kernel values running over disjoint index shards; LocalW and the
// counters are private per kernel so shards need no synchronization.
type AssignKernel struct {
	// Points: SoA columns and weights, indexed by the sample indices.
	PX, PY, PZ []float64
	W          []float64

	// Centers: SoA columns (length K) and squared reciprocal influences.
	CX, CY, CZ []float64
	InvInf2    []float64

	// Generic-dimension columns (the *Generic passes): PC holds the d
	// point columns, CC the d center columns. At d ≤ MaxDim these alias
	// the PX../CX.. columns; beyond MaxDim they are the only
	// representation and the specialized passes must not be used.
	PC, CC [][]float64

	// Pruning tables: centers in ascending order of DistBB2, the squared
	// effective distance from the center to the local bounding box.
	Order   []int32
	DistBB2 []float64
	Prune   bool

	K int

	// Per-point state (full-length; a kernel touches only its indices).
	// Ub and Lb hold *linear* effective distances — their maintenance
	// between rounds is additive and does not commute with squaring —
	// so the kernels take one sqrt per rewritten point on the way out.
	A      []int32
	Ub, Lb []float64
	Lbk    []float64 // Elkan only: raw-distance lower bounds, row stride K

	// Pending influence rescale, fused into the bounded pass: when
	// UbScale is non-nil, a visited point's bounds are corrected by
	// Ub·UbScale[A[i]] and Lb·LbScale before the skip test, and the
	// corrected (or freshly recomputed) values are stored back. The
	// caller owns the once-per-point discipline: every pending ratio
	// must be consumed by exactly one pass over the sample.
	UbScale []float64
	LbScale float64

	// Raw-space shadow lower bound (RunBoundedRaw; the warm incremental
	// path of internal/core): RawLb[i] lower-bounds the *influence-free*
	// distance from point i to every center other than A[i]. Influence
	// changes cannot touch it, so it survives the balance loop's
	// compounding Lb rescales and converts losslessly across runs. The
	// raw pass maintains it on every recompute by tracking the two
	// smallest raw distances of the scan, and uses RawLb[i]·RawLbInv
	// (RawLbInv = a conservatively rounded 1/max-influence) as a second
	// skip floor next to the effective Lb.
	RawLb    []float64
	RawLbInv float64

	// Center-center pruning tables for the raw pass (row-major K×K,
	// centers fixed across the balance rounds of one pass sequence):
	// CCOrder[a·K+j] lists the centers in ascending raw distance from
	// center a, with CCOrder[a·K] = a itself, and CCDist[a·K+j] holds
	// the matching raw distances, pre-deflated by the caller so that
	// rounding keeps the triangle bound below its true value. A rescan
	// of a point still assigned to a walks row a and stops as soon as
	// (CCDist[a·K+j] − rawdist(p,c_a))²·RawLbInv² exceeds the current
	// second-best effective distance — every remaining center is then
	// provably unable to change best or second best, so the truncated
	// scan stores the same A/Ub/Lb a full scan would.
	CCOrder []int32
	CCDist  []float64

	// Accumulators, private per kernel value.
	LocalW    []float64
	DistCalcs int64
	Skips     int64
	Breaks    int64
}

// RunBounded executes the Hamerly/plain assignment pass over idx: for
// each point, recompute the best and second-best effective center unless
// hamerly bound skipping (Ub < Lb) proves the assignment unchanged.
// Spatial dimensions take the register-specialized bodies; d > MaxDim
// dispatches to the generic column walk (RunBoundedGeneric).
func (kr *AssignKernel) RunBounded(dim int, idx []int32, hamerly bool) {
	switch {
	case dim == 3:
		kr.bounded3D(idx, hamerly)
	case dim > MaxDim:
		kr.RunBoundedGeneric(idx, hamerly)
	default:
		kr.bounded2D(idx, hamerly)
	}
}

func (kr *AssignKernel) bounded2D(idx []int32, hamerly bool) {
	px, py := kr.PX, kr.PY
	cx, cy := kr.CX, kr.CY
	inv2 := kr.InvInf2
	order, dbb2 := kr.Order, kr.DistBB2
	prune := kr.Prune
	w, a, ub, lb, localW := kr.W, kr.A, kr.Ub, kr.Lb, kr.LocalW
	ubScale, lbScale := kr.UbScale, kr.LbScale
	scaled := ubScale != nil
	var distCalcs, skips, breaks int64
	for _, i := range idx {
		best := a[i]
		if hamerly && best >= 0 {
			u, l := ub[i], lb[i]
			if scaled {
				u *= ubScale[best]
				l *= lbScale
			}
			if u < l {
				if scaled {
					ub[i] = u
					lb[i] = l
				}
				skips++
				localW[best] += w[i]
				continue
			}
		}
		x, y := px[i], py[i]
		best2, second2 := math.Inf(1), math.Inf(1)
		best = 0
		for _, bc := range order {
			if prune && dbb2[bc] > second2 {
				breaks++
				break
			}
			dx := x - cx[bc]
			dy := y - cy[bc]
			d2 := (dx*dx + dy*dy) * inv2[bc]
			distCalcs++
			if d2 < best2 {
				second2 = best2
				best2 = d2
				best = bc
			} else if d2 < second2 {
				second2 = d2
			}
		}
		a[i] = best
		ub[i] = math.Sqrt(best2)
		lb[i] = math.Sqrt(second2)
		localW[best] += w[i]
	}
	kr.DistCalcs += distCalcs
	kr.Skips += skips
	kr.Breaks += breaks
}

func (kr *AssignKernel) bounded3D(idx []int32, hamerly bool) {
	px, py, pz := kr.PX, kr.PY, kr.PZ
	cx, cy, cz := kr.CX, kr.CY, kr.CZ
	inv2 := kr.InvInf2
	order, dbb2 := kr.Order, kr.DistBB2
	prune := kr.Prune
	w, a, ub, lb, localW := kr.W, kr.A, kr.Ub, kr.Lb, kr.LocalW
	ubScale, lbScale := kr.UbScale, kr.LbScale
	scaled := ubScale != nil
	var distCalcs, skips, breaks int64
	for _, i := range idx {
		best := a[i]
		if hamerly && best >= 0 {
			u, l := ub[i], lb[i]
			if scaled {
				u *= ubScale[best]
				l *= lbScale
			}
			if u < l {
				if scaled {
					ub[i] = u
					lb[i] = l
				}
				skips++
				localW[best] += w[i]
				continue
			}
		}
		x, y, z := px[i], py[i], pz[i]
		best2, second2 := math.Inf(1), math.Inf(1)
		best = 0
		for _, bc := range order {
			if prune && dbb2[bc] > second2 {
				breaks++
				break
			}
			dx := x - cx[bc]
			dy := y - cy[bc]
			dz := z - cz[bc]
			d2 := (dx*dx + dy*dy + dz*dz) * inv2[bc]
			distCalcs++
			if d2 < best2 {
				second2 = best2
				best2 = d2
				best = bc
			} else if d2 < second2 {
				second2 = d2
			}
		}
		a[i] = best
		ub[i] = math.Sqrt(best2)
		lb[i] = math.Sqrt(second2)
		localW[best] += w[i]
	}
	kr.DistCalcs += distCalcs
	kr.Skips += skips
	kr.Breaks += breaks
}

// RunElkan executes the Elkan assignment pass over idx: per (point,
// center) raw-distance lower bounds skip centers that provably cannot
// win. Lbk entries live in raw-distance space (their maintenance
// subtracts center movements), so the squared-space comparison guards
// against non-positive bounds before squaring, and each actual distance
// evaluation spends one sqrt to refresh the stored raw bound.
//
// A pending UbScale is deliberately ignored here: this pass never reads
// Ub and freshly overwrites it for every visited point, which consumes
// the pending rescale by construction.
func (kr *AssignKernel) RunElkan(dim int, idx []int32) {
	switch {
	case dim == 3:
		kr.elkan3D(idx)
	case dim > MaxDim:
		kr.RunElkanGeneric(idx)
	default:
		kr.elkan2D(idx)
	}
}

func (kr *AssignKernel) elkan2D(idx []int32) {
	px, py := kr.PX, kr.PY
	cx, cy := kr.CX, kr.CY
	inv2 := kr.InvInf2
	order, dbb2 := kr.Order, kr.DistBB2
	prune := kr.Prune
	k := kr.K
	w, a, ub, lbk, localW := kr.W, kr.A, kr.Ub, kr.Lbk, kr.LocalW
	var distCalcs, skips, breaks int64
	for _, i := range idx {
		x, y := px[i], py[i]
		best2 := math.Inf(1)
		bestC := int32(0)
		row := int(i) * k
		cur := a[i]
		if cur >= 0 {
			dx := x - cx[cur]
			dy := y - cy[cur]
			raw2 := dx*dx + dy*dy
			distCalcs++
			lbk[row+int(cur)] = math.Sqrt(raw2)
			best2 = raw2 * inv2[cur]
			bestC = cur
		}
		for _, bc := range order {
			if bc == cur {
				continue
			}
			if prune && dbb2[bc] > best2 {
				breaks++
				break
			}
			if l := lbk[row+int(bc)]; l > 0 && l*l*inv2[bc] >= best2 {
				skips++
				continue
			}
			dx := x - cx[bc]
			dy := y - cy[bc]
			raw2 := dx*dx + dy*dy
			distCalcs++
			lbk[row+int(bc)] = math.Sqrt(raw2)
			if d2 := raw2 * inv2[bc]; d2 < best2 {
				best2 = d2
				bestC = bc
			}
		}
		a[i] = bestC
		ub[i] = math.Sqrt(best2)
		localW[bestC] += w[i]
	}
	kr.DistCalcs += distCalcs
	kr.Skips += skips
	kr.Breaks += breaks
}

// RunBoundedRaw is the Hamerly pass of the warm incremental path: next
// to the plain bounded pass it (a) tests the skip against the better of
// the effective Lb and the raw-space floor RawLb·RawLbInv, storing the
// winning (still valid) bound back, (b) refreshes RawLb for every
// recomputed point by tracking the two smallest raw distances of the
// scan, and (c) anchors each rescan of an already-assigned point at its
// current center, walking the CCOrder row in ascending center-center
// distance and breaking once the triangle inequality proves the tail
// irrelevant. The bounding-box prune of the plain pass is not used: its
// break would leave the raw minimum over the unscanned tail unknown
// (DistBB2 lives in effective space), and on the warm path — points in
// input distribution, per-rank boxes spanning the whole domain — it
// never fires anyway. Both truncation rules leave best and second-best
// exactly as a full scan computes them, so A, Ub and Lb match the plain
// pass (modulo exact-tie scan order; see DESIGN.md).
func (kr *AssignKernel) RunBoundedRaw(dim int, idx []int32) {
	switch {
	case dim == 3:
		kr.boundedRaw3D(idx)
	case dim > MaxDim:
		kr.RunBoundedRawGeneric(idx)
	default:
		kr.boundedRaw2D(idx)
	}
}

func (kr *AssignKernel) boundedRaw2D(idx []int32) {
	px, py := kr.PX, kr.PY
	cx, cy := kr.CX, kr.CY
	inv2 := kr.InvInf2
	k := kr.K
	order := kr.Order
	ccOrder, ccDist := kr.CCOrder, kr.CCDist
	w, a, ub, lb, localW := kr.W, kr.A, kr.Ub, kr.Lb, kr.LocalW
	rawLb, rawLbInv := kr.RawLb, kr.RawLbInv
	invMaxInf2 := rawLbInv * rawLbInv
	ubScale, lbScale := kr.UbScale, kr.LbScale
	scaled := ubScale != nil
	var distCalcs, skips, breaks int64
	for _, i := range idx {
		cur := a[i]
		if cur >= 0 {
			u, l := ub[i], lb[i]
			if scaled {
				u *= ubScale[cur]
				l *= lbScale
			}
			if lr := rawLb[i] * rawLbInv; lr > l {
				l = lr
			}
			if u < l {
				ub[i] = u
				lb[i] = l
				skips++
				localW[cur] += w[i]
				continue
			}
		}
		x, y := px[i], py[i]
		best2, second2 := math.Inf(1), math.Inf(1)
		r1, r2 := math.Inf(1), math.Inf(1)
		r1id := int32(-1)
		best := int32(0)
		rawFloor2 := math.Inf(1) // sound (squared) floor under unscanned centers
		if cur >= 0 {
			row := int(cur) * k
			dx := x - cx[cur]
			dy := y - cy[cur]
			rawA2 := dx*dx + dy*dy
			distCalcs++
			rub := math.Sqrt(rawA2)
			r1, r1id = rawA2, cur
			best2 = rawA2 * inv2[cur]
			best = cur
			for j := 1; j < k; j++ {
				// Triangle bound for every center from j on (the row is
				// ascending): rawdist ≥ CCDist − rawdist(p, c_cur).
				lr := ccDist[row+j] - rub
				if lr > 0 && lr*lr*invMaxInf2 > second2 {
					breaks++
					rawFloor2 = lr * lr
					break
				}
				bc := ccOrder[row+j]
				dx := x - cx[bc]
				dy := y - cy[bc]
				raw2 := dx*dx + dy*dy
				d2 := raw2 * inv2[bc]
				distCalcs++
				if raw2 < r1 {
					r2 = r1
					r1 = raw2
					r1id = bc
				} else if raw2 < r2 {
					r2 = raw2
				}
				if d2 < best2 {
					second2 = best2
					best2 = d2
					best = bc
				} else if d2 < second2 {
					second2 = d2
				}
			}
		} else {
			for _, bc := range order {
				dx := x - cx[bc]
				dy := y - cy[bc]
				raw2 := dx*dx + dy*dy
				d2 := raw2 * inv2[bc]
				distCalcs++
				if raw2 < r1 {
					r2 = r1
					r1 = raw2
					r1id = bc
				} else if raw2 < r2 {
					r2 = raw2
				}
				if d2 < best2 {
					second2 = best2
					best2 = d2
					best = bc
				} else if d2 < second2 {
					second2 = d2
				}
			}
		}
		a[i] = best
		ub[i] = math.Sqrt(best2)
		lb[i] = math.Sqrt(second2)
		rl := r1
		if r1id == best {
			rl = r2
		}
		if rawFloor2 < rl {
			rl = rawFloor2
		}
		rawLb[i] = math.Sqrt(rl)
		localW[best] += w[i]
	}
	kr.DistCalcs += distCalcs
	kr.Skips += skips
	kr.Breaks += breaks
}

func (kr *AssignKernel) boundedRaw3D(idx []int32) {
	px, py, pz := kr.PX, kr.PY, kr.PZ
	cx, cy, cz := kr.CX, kr.CY, kr.CZ
	inv2 := kr.InvInf2
	k := kr.K
	order := kr.Order
	ccOrder, ccDist := kr.CCOrder, kr.CCDist
	w, a, ub, lb, localW := kr.W, kr.A, kr.Ub, kr.Lb, kr.LocalW
	rawLb, rawLbInv := kr.RawLb, kr.RawLbInv
	invMaxInf2 := rawLbInv * rawLbInv
	ubScale, lbScale := kr.UbScale, kr.LbScale
	scaled := ubScale != nil
	var distCalcs, skips, breaks int64
	for _, i := range idx {
		cur := a[i]
		if cur >= 0 {
			u, l := ub[i], lb[i]
			if scaled {
				u *= ubScale[cur]
				l *= lbScale
			}
			if lr := rawLb[i] * rawLbInv; lr > l {
				l = lr
			}
			if u < l {
				ub[i] = u
				lb[i] = l
				skips++
				localW[cur] += w[i]
				continue
			}
		}
		x, y, z := px[i], py[i], pz[i]
		best2, second2 := math.Inf(1), math.Inf(1)
		r1, r2 := math.Inf(1), math.Inf(1)
		r1id := int32(-1)
		best := int32(0)
		rawFloor2 := math.Inf(1)
		if cur >= 0 {
			row := int(cur) * k
			dx := x - cx[cur]
			dy := y - cy[cur]
			dz := z - cz[cur]
			rawA2 := dx*dx + dy*dy + dz*dz
			distCalcs++
			rub := math.Sqrt(rawA2)
			r1, r1id = rawA2, cur
			best2 = rawA2 * inv2[cur]
			best = cur
			for j := 1; j < k; j++ {
				lr := ccDist[row+j] - rub
				if lr > 0 && lr*lr*invMaxInf2 > second2 {
					breaks++
					rawFloor2 = lr * lr
					break
				}
				bc := ccOrder[row+j]
				dx := x - cx[bc]
				dy := y - cy[bc]
				dz := z - cz[bc]
				raw2 := dx*dx + dy*dy + dz*dz
				d2 := raw2 * inv2[bc]
				distCalcs++
				if raw2 < r1 {
					r2 = r1
					r1 = raw2
					r1id = bc
				} else if raw2 < r2 {
					r2 = raw2
				}
				if d2 < best2 {
					second2 = best2
					best2 = d2
					best = bc
				} else if d2 < second2 {
					second2 = d2
				}
			}
		} else {
			for _, bc := range order {
				dx := x - cx[bc]
				dy := y - cy[bc]
				dz := z - cz[bc]
				raw2 := dx*dx + dy*dy + dz*dz
				d2 := raw2 * inv2[bc]
				distCalcs++
				if raw2 < r1 {
					r2 = r1
					r1 = raw2
					r1id = bc
				} else if raw2 < r2 {
					r2 = raw2
				}
				if d2 < best2 {
					second2 = best2
					best2 = d2
					best = bc
				} else if d2 < second2 {
					second2 = d2
				}
			}
		}
		a[i] = best
		ub[i] = math.Sqrt(best2)
		lb[i] = math.Sqrt(second2)
		rl := r1
		if r1id == best {
			rl = r2
		}
		if rawFloor2 < rl {
			rl = rawFloor2
		}
		rawLb[i] = math.Sqrt(rl)
		localW[best] += w[i]
	}
	kr.DistCalcs += distCalcs
	kr.Skips += skips
	kr.Breaks += breaks
}

func (kr *AssignKernel) elkan3D(idx []int32) {
	px, py, pz := kr.PX, kr.PY, kr.PZ
	cx, cy, cz := kr.CX, kr.CY, kr.CZ
	inv2 := kr.InvInf2
	order, dbb2 := kr.Order, kr.DistBB2
	prune := kr.Prune
	k := kr.K
	w, a, ub, lbk, localW := kr.W, kr.A, kr.Ub, kr.Lbk, kr.LocalW
	var distCalcs, skips, breaks int64
	for _, i := range idx {
		x, y, z := px[i], py[i], pz[i]
		best2 := math.Inf(1)
		bestC := int32(0)
		row := int(i) * k
		cur := a[i]
		if cur >= 0 {
			dx := x - cx[cur]
			dy := y - cy[cur]
			dz := z - cz[cur]
			raw2 := dx*dx + dy*dy + dz*dz
			distCalcs++
			lbk[row+int(cur)] = math.Sqrt(raw2)
			best2 = raw2 * inv2[cur]
			bestC = cur
		}
		for _, bc := range order {
			if bc == cur {
				continue
			}
			if prune && dbb2[bc] > best2 {
				breaks++
				break
			}
			if l := lbk[row+int(bc)]; l > 0 && l*l*inv2[bc] >= best2 {
				skips++
				continue
			}
			dx := x - cx[bc]
			dy := y - cy[bc]
			dz := z - cz[bc]
			raw2 := dx*dx + dy*dy + dz*dz
			distCalcs++
			lbk[row+int(bc)] = math.Sqrt(raw2)
			if d2 := raw2 * inv2[bc]; d2 < best2 {
				best2 = d2
				bestC = bc
			}
		}
		a[i] = bestC
		ub[i] = math.Sqrt(best2)
		localW[bestC] += w[i]
	}
	kr.DistCalcs += distCalcs
	kr.Skips += skips
	kr.Breaks += breaks
}
