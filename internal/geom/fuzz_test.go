package geom

import (
	"math"
	"math/rand"
	"testing"
)

// sameBits reports float equality at the bit level, with any-NaN pairs
// considered equal (NaN payloads are not portable across expression
// shapes; the kernels only promise identical classification).
func sameBits(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Float64bits(a) == math.Float64bits(b)
}

// FuzzGenericDist2 fuzzes the strided-vector distance against the
// specialized Point expression, including NaN and ±Inf coordinates: for
// finite inputs the two must agree bit for bit (the generic kernels'
// foundational invariant), and NaN must map to NaN.
func FuzzGenericDist2(f *testing.F) {
	f.Add(0.0, 0.0, 0.0, 3.0, 4.0, 0.0, false)
	f.Add(1e300, -1e300, 0.5, math.NaN(), 2.0, -2.0, true)
	f.Add(math.Inf(1), 1.0, 2.0, math.Inf(-1), 1.0, 2.0, true)
	f.Add(0.1, 0.2, 0.3, 0.1, 0.2, 0.3, true) // coincident
	f.Fuzz(func(t *testing.T, x0, x1, x2, y0, y1, y2 float64, threeD bool) {
		dim := 2
		if threeD {
			dim = 3
		}
		p := Point{x0, x1, x2}
		q := Point{y0, y1, y2}
		a := []float64{x0, x1, x2}[:dim]
		b := []float64{y0, y1, y2}[:dim]
		want := Dist2(p, q, dim)
		got := Dist2Vec(a, b)
		if !sameBits(got, want) {
			t.Fatalf("dim=%d: Dist2Vec %x, Dist2 %x", dim, got, want)
		}
		if got2 := DistVec(a, b); !sameBits(got2, Dist(p, q, dim)) {
			t.Fatalf("dim=%d: DistVec %x, Dist %x", dim, got2, Dist(p, q, dim))
		}

		// Degenerate (possibly inverted or NaN) box: the flat min-dist
		// must match the Box method bit for bit.
		box := NewBox(p, q, dim)
		if got3 := FlatBoxMinDist2(a, b, a); !sameBits(got3, box.MinDist2(p)) {
			t.Fatalf("dim=%d: FlatBoxMinDist2 %x, Box.MinDist2 %x", dim, got3, box.MinDist2(p))
		}
	})
}

// fuzzKernel builds a ready-to-run AssignKernel over n random points and
// k centers in dim dimensions, with the two fuzz-controlled coordinates
// injected into point 0 and all of point 1 copied onto point 2
// (coincident pair). Returns the kernel and the full-sample index list.
func fuzzKernel(dim, n, k int, seed int64, inject0, inject1 float64, elkan bool) (*AssignKernel, []int32) {
	rng := rand.New(rand.NewSource(seed))
	pts := MakeCols(dim, n)
	ctr := MakeCols(dim, k)
	w := make([]float64, n)
	vec := make([]float64, dim)
	for i := 0; i < n; i++ {
		for d := range vec {
			vec[d] = rng.Float64() * 4
		}
		pts.SetVec(i, vec)
		w[i] = 0.5 + rng.Float64()
	}
	pts.Col[0][0] = inject0
	pts.Col[dim-1][0] = inject1
	if n > 2 {
		pts.AtVec(1, vec)
		pts.SetVec(2, vec)
	}
	invInf2 := make([]float64, k)
	order := make([]int32, k)
	distBB2 := make([]float64, k)
	bmin := make([]float64, dim)
	bmax := make([]float64, dim)
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	SampleBoxWND(pts.Col, w, idx, bmin, bmax)
	for b := 0; b < k; b++ {
		for d := range vec {
			vec[d] = rng.Float64() * 4
		}
		ctr.SetVec(b, vec)
		inf := 0.5 + 1.5*rng.Float64()
		invInf2[b] = (1 / inf) * (1 / inf)
		order[b] = int32(b)
		distBB2[b] = FlatBoxMinDist2(bmin, bmax, vec) * invInf2[b]
	}
	for i := 1; i < k; i++ { // sort the pruning order
		for j := i; j > 0 && distBB2[order[j-1]] > distBB2[order[j]]; j-- {
			order[j-1], order[j] = order[j], order[j-1]
		}
	}
	kr := &AssignKernel{
		PX: pts.X, PY: pts.Y, PZ: pts.Z, W: w,
		CX: ctr.X, CY: ctr.Y, CZ: ctr.Z,
		PC: pts.Col, CC: ctr.Col,
		InvInf2: invInf2,
		Order:   order, DistBB2: distBB2, Prune: true,
		K:      k,
		A:      make([]int32, n),
		Ub:     make([]float64, n),
		Lb:     make([]float64, n),
		LocalW: make([]float64, k),
	}
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.4 {
			kr.A[i] = -1
			kr.Ub[i] = math.Inf(1)
		} else {
			kr.A[i] = int32(rng.Intn(k))
			kr.Ub[i] = rng.Float64()
			kr.Lb[i] = rng.Float64()
		}
	}
	if elkan {
		kr.Lbk = make([]float64, n*k)
		for i := range kr.Lbk {
			kr.Lbk[i] = rng.Float64() - 0.1
		}
	}
	return kr, idx
}

func cloneKernelState(kr *AssignKernel) *AssignKernel {
	cl := *kr
	cl.A = append([]int32(nil), kr.A...)
	cl.Ub = append([]float64(nil), kr.Ub...)
	cl.Lb = append([]float64(nil), kr.Lb...)
	cl.Lbk = append([]float64(nil), kr.Lbk...)
	cl.LocalW = make([]float64, len(kr.LocalW))
	cl.DistCalcs, cl.Skips, cl.Breaks = 0, 0, 0
	return &cl
}

// FuzzGenericKernelAssign throws adversarial inputs — NaN/Inf
// coordinates, coincident points, k > n, degenerate boxes — at the
// generic kernel entry points. At dim ≤ MaxDim it additionally pins the
// generic body to the specialized one under the same hostile state; at
// dim > MaxDim it checks the structural invariants (every visited point
// ends with an assignment in [-1, k), counters non-negative).
func FuzzGenericKernelAssign(f *testing.F) {
	f.Add(int64(1), 0.5, 0.5, uint8(40), uint8(5), uint8(2), uint8(0))
	f.Add(int64(2), math.NaN(), math.Inf(1), uint8(3), uint8(7), uint8(3), uint8(1)) // k > n
	f.Add(int64(3), math.Inf(-1), 1e300, uint8(60), uint8(4), uint8(8), uint8(2))
	f.Add(int64(4), 0.0, 0.0, uint8(1), uint8(1), uint8(16), uint8(0))
	f.Fuzz(func(t *testing.T, seed int64, inj0, inj1 float64, nRaw, kRaw, dimRaw, modeRaw uint8) {
		n := int(nRaw)%200 + 1
		k := int(kRaw)%20 + 1
		dims := []int{2, 3, 4, 8, 16}
		dim := dims[int(dimRaw)%len(dims)]
		mode := int(modeRaw) % 3 // 0 lloyd, 1 hamerly, 2 elkan
		kr, idx := fuzzKernel(dim, n, k, seed, inj0, inj1, mode == 2)

		run := func(g *AssignKernel, generic bool) {
			switch {
			case mode == 2 && generic:
				g.RunElkanGeneric(idx)
			case mode == 2:
				g.RunElkan(dim, idx)
			case generic:
				g.RunBoundedGeneric(idx, mode == 1)
			default:
				g.RunBounded(dim, idx, mode == 1)
			}
		}

		gen := cloneKernelState(kr)
		run(gen, true)
		for i, a := range gen.A {
			if a < -1 || a >= int32(k) {
				t.Fatalf("dim=%d mode=%d: A[%d] = %d out of range [-1,%d)", dim, mode, i, a, k)
			}
		}
		if gen.DistCalcs < 0 || gen.Skips < 0 || gen.Breaks < 0 {
			t.Fatalf("negative counters (%d,%d,%d)", gen.DistCalcs, gen.Skips, gen.Breaks)
		}

		if dim <= MaxDim {
			spec := cloneKernelState(kr)
			run(spec, false)
			for i := range spec.A {
				if gen.A[i] != spec.A[i] {
					t.Fatalf("dim=%d mode=%d: A[%d] generic %d, specialized %d", dim, mode, i, gen.A[i], spec.A[i])
				}
			}
			for i := range spec.Ub {
				if !sameBits(gen.Ub[i], spec.Ub[i]) || !sameBits(gen.Lb[i], spec.Lb[i]) {
					t.Fatalf("dim=%d mode=%d: bounds[%d] diverge", dim, mode, i)
				}
			}
			for i := range spec.Lbk {
				if !sameBits(gen.Lbk[i], spec.Lbk[i]) {
					t.Fatalf("dim=%d mode=%d: lbk[%d] diverges", dim, mode, i)
				}
			}
			for b := range spec.LocalW {
				if !sameBits(gen.LocalW[b], spec.LocalW[b]) {
					t.Fatalf("dim=%d mode=%d: localW[%d] diverges", dim, mode, b)
				}
			}
			if gen.DistCalcs != spec.DistCalcs || gen.Skips != spec.Skips || gen.Breaks != spec.Breaks {
				t.Fatalf("dim=%d mode=%d: counters generic (%d,%d,%d), specialized (%d,%d,%d)",
					dim, mode, gen.DistCalcs, gen.Skips, gen.Breaks, spec.DistCalcs, spec.Skips, spec.Breaks)
			}
		}
	})
}
