package geom

import "fmt"

// PointSet is a weighted set of points in Dim dimensions, the common input
// type of all partitioners in this repository (paper §4: "The input for
// k-means commonly consists of a set of points P ... We also accept ... an
// optional weight function w : P → R+").
//
// Coordinates are stored flat (structure-of-arrays, stride Dim) for cache
// friendliness; Weights may be nil, meaning unit weights.
type PointSet struct {
	Dim    int
	Coords []float64 // len = N*Dim
	Weight []float64 // len = N, or nil for unit weights
}

// NewPointSet allocates an empty point set with capacity for n points.
func NewPointSet(dim, n int) *PointSet {
	return &PointSet{Dim: dim, Coords: make([]float64, 0, n*dim)}
}

// Len returns the number of points.
func (ps *PointSet) Len() int {
	if ps.Dim == 0 {
		return 0
	}
	return len(ps.Coords) / ps.Dim
}

// At returns point i as a Point value.
func (ps *PointSet) At(i int) Point {
	var p Point
	base := i * ps.Dim
	for d := 0; d < ps.Dim; d++ {
		p[d] = ps.Coords[base+d]
	}
	return p
}

// Set overwrites point i.
func (ps *PointSet) Set(i int, p Point) {
	base := i * ps.Dim
	for d := 0; d < ps.Dim; d++ {
		ps.Coords[base+d] = p[d]
	}
}

// Append adds a point (and weight w, ignored when the set is unweighted
// and w == 1).
func (ps *PointSet) Append(p Point, w float64) {
	for d := 0; d < ps.Dim; d++ {
		ps.Coords = append(ps.Coords, p[d])
	}
	if ps.Weight != nil {
		ps.Weight = append(ps.Weight, w)
	} else if w != 1 {
		// Materialize unit weights lazily on first non-unit weight.
		n := ps.Len() - 1
		ps.Weight = make([]float64, n, n+1)
		for i := range ps.Weight {
			ps.Weight[i] = 1
		}
		ps.Weight = append(ps.Weight, w)
	}
}

// W returns the weight of point i (1 for unweighted sets).
func (ps *PointSet) W(i int) float64 {
	if ps.Weight == nil {
		return 1
	}
	return ps.Weight[i]
}

// TotalWeight returns the sum of all point weights.
func (ps *PointSet) TotalWeight() float64 {
	if ps.Weight == nil {
		return float64(ps.Len())
	}
	s := 0.0
	for _, w := range ps.Weight {
		s += w
	}
	return s
}

// Bounds returns the bounding box of all points.
func (ps *PointSet) Bounds() Box {
	b := EmptyBox(ps.Dim)
	n := ps.Len()
	for i := 0; i < n; i++ {
		b.Extend(ps.At(i))
	}
	return b
}

// Clone returns a deep copy.
func (ps *PointSet) Clone() *PointSet {
	out := &PointSet{Dim: ps.Dim, Coords: append([]float64(nil), ps.Coords...)}
	if ps.Weight != nil {
		out.Weight = append([]float64(nil), ps.Weight...)
	}
	return out
}

// Subset returns a new point set holding the points with the given indices.
func (ps *PointSet) Subset(idx []int) *PointSet {
	out := NewPointSet(ps.Dim, len(idx))
	if ps.Weight != nil {
		out.Weight = make([]float64, 0, len(idx))
	}
	for _, i := range idx {
		out.Coords = append(out.Coords, ps.Coords[i*ps.Dim:(i+1)*ps.Dim]...)
		if ps.Weight != nil {
			out.Weight = append(out.Weight, ps.Weight[i])
		}
	}
	return out
}

// Validate checks structural invariants. Dimensions beyond MaxDim are
// structurally valid (feature-space clustering through the generic
// kernels); consumers that are inherently spatial — meshes, space-filling
// curves, the At/Set Point accessors — must enforce Dim ≤ MaxDim
// themselves.
func (ps *PointSet) Validate() error {
	if ps.Dim < 1 {
		return fmt.Errorf("geom: dimension %d out of range (must be ≥ 1)", ps.Dim)
	}
	if len(ps.Coords)%ps.Dim != 0 {
		return fmt.Errorf("geom: %d coordinates not divisible by dim %d", len(ps.Coords), ps.Dim)
	}
	if ps.Weight != nil && len(ps.Weight) != ps.Len() {
		return fmt.Errorf("geom: %d weights for %d points", len(ps.Weight), ps.Len())
	}
	if ps.Weight != nil {
		for i, w := range ps.Weight {
			if w < 0 {
				return fmt.Errorf("geom: negative weight %g at point %d", w, i)
			}
		}
	}
	return nil
}
