// Package geom provides the low-level geometric primitives used throughout
// Geographer: d-dimensional points stored in a flat structure-of-arrays
// layout, axis-aligned bounding boxes, and the point–box distance bounds
// needed by the pruning optimizations of the balanced k-means core
// (paper §4.3–4.4).
//
// Dimensions 2 and 3 are the supported cases, matching the paper's 2D,
// 2.5D (2D + node weights) and 3D meshes. Coordinates are always float64.
package geom

import (
	"fmt"
	"math"
)

// MaxDim is the largest supported spatial dimension.
const MaxDim = 3

// Point is a fixed-capacity coordinate vector. Only the first Dim entries
// of the containing set are meaningful; the rest are zero. Using a value
// type of fixed size keeps hot loops free of indirections and allocations.
type Point [MaxDim]float64

// Add returns p + q.
func (p Point) Add(q Point) Point {
	return Point{p[0] + q[0], p[1] + q[1], p[2] + q[2]}
}

// Sub returns p - q.
func (p Point) Sub(q Point) Point {
	return Point{p[0] - q[0], p[1] - q[1], p[2] - q[2]}
}

// Scale returns s·p.
func (p Point) Scale(s float64) Point {
	return Point{p[0] * s, p[1] * s, p[2] * s}
}

// Dot returns the dot product over the first dim coordinates.
func (p Point) Dot(q Point, dim int) float64 {
	s := 0.0
	for i := 0; i < dim; i++ {
		s += p[i] * q[i]
	}
	return s
}

// Dist2 returns the squared Euclidean distance between p and q in dim
// dimensions. This is the single hottest function in the repository; the
// explicit switch lets the compiler unroll both supported cases.
func Dist2(p, q Point, dim int) float64 {
	switch dim {
	case 2:
		dx := p[0] - q[0]
		dy := p[1] - q[1]
		return dx*dx + dy*dy
	case 3:
		dx := p[0] - q[0]
		dy := p[1] - q[1]
		dz := p[2] - q[2]
		return dx*dx + dy*dy + dz*dz
	default:
		s := 0.0
		for i := 0; i < dim; i++ {
			d := p[i] - q[i]
			s += d * d
		}
		return s
	}
}

// Dist returns the Euclidean distance between p and q in dim dimensions.
func Dist(p, q Point, dim int) float64 {
	return math.Sqrt(Dist2(p, q, dim))
}

// Dist2Vec returns the squared Euclidean distance between two flat
// coordinate vectors of equal length (any dimension). The axis terms
// accumulate left to right from zero, the association order of the
// Dist2 switch, so at dim ≤ 3 the result is bit-identical to Dist2.
func Dist2Vec(a, b []float64) float64 {
	s := 0.0
	for d := range a {
		t := a[d] - b[d]
		s += t * t
	}
	return s
}

// DistVec returns the Euclidean distance between two flat vectors.
func DistVec(a, b []float64) float64 { return math.Sqrt(Dist2Vec(a, b)) }

// FlatBoxInit resets a flat axis-aligned box (per-axis min and max
// slices of equal length) to the empty box, the identity for folds.
func FlatBoxInit(bmin, bmax []float64) {
	for d := range bmin {
		bmin[d] = math.Inf(1)
		bmax[d] = math.Inf(-1)
	}
}

// FlatBoxEmpty reports whether the flat box contains no points, with the
// same any-axis-inverted test as Box.Empty.
func FlatBoxEmpty(bmin, bmax []float64) bool {
	for d := range bmin {
		if bmin[d] > bmax[d] {
			return true
		}
	}
	return false
}

// FlatBoxMinDist2 returns the squared distance from the flat vector q to
// the closest point of the flat box — Box.MinDist2 for any dimension,
// with identical per-axis arithmetic and accumulation order.
func FlatBoxMinDist2(bmin, bmax, q []float64) float64 {
	s := 0.0
	for d := range q {
		var t float64
		if q[d] < bmin[d] {
			t = bmin[d] - q[d]
		} else if q[d] > bmax[d] {
			t = q[d] - bmax[d]
		}
		s += t * t
	}
	return s
}

// FlatBoxDiagonal returns the diagonal length of the flat box.
func FlatBoxDiagonal(bmin, bmax []float64) float64 {
	s := 0.0
	for d := range bmin {
		t := bmax[d] - bmin[d]
		s += t * t
	}
	return math.Sqrt(s)
}

// Box is an axis-aligned bounding box. A zero Box is not valid; use
// EmptyBox and then Extend, or NewBox.
type Box struct {
	Min, Max Point
	Dim      int
}

// EmptyBox returns an inverted box of the given dimension that behaves as
// the identity for Extend/Union.
func EmptyBox(dim int) Box {
	b := Box{Dim: dim}
	for i := 0; i < dim; i++ {
		b.Min[i] = math.Inf(1)
		b.Max[i] = math.Inf(-1)
	}
	return b
}

// NewBox returns the box spanning [min, max].
func NewBox(min, max Point, dim int) Box {
	return Box{Min: min, Max: max, Dim: dim}
}

// Empty reports whether the box contains no points.
func (b Box) Empty() bool {
	for i := 0; i < b.Dim; i++ {
		if b.Min[i] > b.Max[i] {
			return true
		}
	}
	return false
}

// Extend grows the box to contain p.
func (b *Box) Extend(p Point) {
	for i := 0; i < b.Dim; i++ {
		if p[i] < b.Min[i] {
			b.Min[i] = p[i]
		}
		if p[i] > b.Max[i] {
			b.Max[i] = p[i]
		}
	}
}

// Union returns the smallest box containing both b and c.
func (b Box) Union(c Box) Box {
	out := b
	for i := 0; i < b.Dim; i++ {
		out.Min[i] = math.Min(b.Min[i], c.Min[i])
		out.Max[i] = math.Max(b.Max[i], c.Max[i])
	}
	return out
}

// Contains reports whether p lies inside the closed box.
func (b Box) Contains(p Point) bool {
	for i := 0; i < b.Dim; i++ {
		if p[i] < b.Min[i] || p[i] > b.Max[i] {
			return false
		}
	}
	return true
}

// Center returns the box midpoint.
func (b Box) Center() Point {
	var c Point
	for i := 0; i < b.Dim; i++ {
		c[i] = 0.5 * (b.Min[i] + b.Max[i])
	}
	return c
}

// Side returns the extent of the box along axis i.
func (b Box) Side(i int) float64 { return b.Max[i] - b.Min[i] }

// WidestAxis returns the axis with the largest extent.
func (b Box) WidestAxis() int {
	best, bestLen := 0, b.Side(0)
	for i := 1; i < b.Dim; i++ {
		if l := b.Side(i); l > bestLen {
			best, bestLen = i, l
		}
	}
	return best
}

// Diagonal returns the length of the box diagonal.
func (b Box) Diagonal() float64 {
	s := 0.0
	for i := 0; i < b.Dim; i++ {
		d := b.Side(i)
		s += d * d
	}
	return math.Sqrt(s)
}

// MinDist2 returns the squared distance from p to the closest point of the
// box (0 if p is inside). This is the sound lower bound used to sort and
// prune cluster centers against the process-local bounding box (§4.4; we
// use minDist where the paper's pseudocode prints maxDist, see DESIGN.md).
func (b Box) MinDist2(p Point) float64 {
	s := 0.0
	for i := 0; i < b.Dim; i++ {
		var d float64
		if p[i] < b.Min[i] {
			d = b.Min[i] - p[i]
		} else if p[i] > b.Max[i] {
			d = p[i] - b.Max[i]
		}
		s += d * d
	}
	return s
}

// MinDist returns the distance from p to the closest point of the box.
func (b Box) MinDist(p Point) float64 { return math.Sqrt(b.MinDist2(p)) }

// MaxDist2 returns the squared distance from p to the farthest point of
// the box.
func (b Box) MaxDist2(p Point) float64 {
	s := 0.0
	for i := 0; i < b.Dim; i++ {
		d := math.Max(math.Abs(p[i]-b.Min[i]), math.Abs(p[i]-b.Max[i]))
		s += d * d
	}
	return s
}

// MaxDist returns the distance from p to the farthest point of the box.
func (b Box) MaxDist(p Point) float64 { return math.Sqrt(b.MaxDist2(p)) }

// String implements fmt.Stringer.
func (b Box) String() string {
	return fmt.Sprintf("Box%dD[%v..%v]", b.Dim, b.Min, b.Max)
}
