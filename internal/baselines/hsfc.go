package baselines

import (
	"fmt"
	"math"

	"geographer/internal/dsort"
	"geographer/internal/geom"
	"geographer/internal/mpi"
	"geographer/internal/partition"
	"geographer/internal/sfc"
)

// HSFC partitions by cutting the Hilbert space-filling curve into k
// consecutive weight-balanced pieces (zoltanSFC, §3.1): compute each
// point's Hilbert index over the global bounding box, sort all points by
// index with the distributed sample sort, and assign blocks by global
// weight prefix. One sort is the only communication — the most scalable
// and lowest-quality method in the paper's comparison.
type HSFC struct{}

// Name implements partition.Distributed.
func (HSFC) Name() string { return "Hsfc" }

// Partition implements partition.Distributed.
func (HSFC) Partition(c *mpi.Comm, pts *partition.Local, k int) ([]int64, []int32, error) {
	if k < 1 {
		return nil, nil, fmt.Errorf("hsfc: k=%d", k)
	}
	dim := pts.Dim

	// Global bounding box.
	mins := make([]float64, dim)
	maxs := make([]float64, dim)
	for d := 0; d < dim; d++ {
		mins[d] = math.Inf(1)
		maxs[d] = math.Inf(-1)
	}
	for i := 0; i < pts.Len(); i++ {
		x := pts.At(i)
		for d := 0; d < dim; d++ {
			mins[d] = math.Min(mins[d], x[d])
			maxs[d] = math.Max(maxs[d], x[d])
		}
	}
	mins = mpi.AllreduceMin(c, mins)
	maxs = mpi.AllreduceMax(c, maxs)
	box := geom.Box{Dim: dim}
	for d := 0; d < dim; d++ {
		box.Min[d] = mins[d]
		box.Max[d] = maxs[d]
	}
	curve := sfc.NewCurve(box, dim)

	// SoA ingest: flat columns, batch key kernel, radix sample sort.
	cols := dsort.NewCols(dim, pts.Len())
	for i := 0; i < pts.Len(); i++ {
		cols.SetPoint(i, pts.At(i))
		cols.IDs[i] = pts.IDs[i]
		cols.W[i] = pts.Weight(i)
	}
	gv := cols.GeomView()
	curve.KeysCols(&gv, cols.Keys)
	c.AddOps(int64(cols.Len()))

	sorted := dsort.SampleSortCols(c, cols)

	// Weight prefix over the global order.
	localW := 0.0
	for _, w := range sorted.W {
		localW += w
	}
	totalW := mpi.ReduceScalarSum(c, localW)
	prefix := mpi.ExscanSum(c, localW)
	if totalW <= 0 {
		totalW = 1
	}
	perBlock := totalW / float64(k)

	n := sorted.Len()
	ids := make([]int64, n)
	blocks := make([]int32, n)
	cum := prefix
	for i := 0; i < n; i++ {
		// Block of the weight midpoint of this item.
		w := sorted.W[i]
		b := int32((cum + w/2) / perBlock)
		if b > int32(k-1) {
			b = int32(k - 1)
		}
		ids[i] = sorted.IDs[i]
		blocks[i] = b
		cum += w
	}
	c.AddOps(int64(n))
	return ids, blocks, nil
}

// Name implements partition.Distributed for the engine-based methods.
func (e *engine) Name() string { return e.m.name() }
