package baselines

import (
	"math"

	"geographer/internal/geom"
)

// RCB is Recursive Coordinate Bisection (Berger & Bokhari; Simon): split
// the widest dimension of the bounding box at the weighted median,
// recurse. The classic Zoltan default.
func RCB() *engine { return &engine{m: rcbMethod{}} }

type rcbMethod struct{}

func (rcbMethod) name() string          { return "Rcb" }
func (rcbMethod) needsCovariance() bool { return false }

func (rcbMethod) plan(k, level, dim int, box geom.Box, _ *covariance) (geom.Point, []int) {
	var dir geom.Point
	dir[box.WidestAxis()] = 1
	return dir, []int{(k + 1) / 2, k / 2}
}

// RIB is Recursive Inertial Bisection (Taylor & Nour-Omid; Williams):
// like RCB, but the cut is orthogonal to the principal inertial axis of
// the subproblem's points, which adapts to non-axis-aligned geometry.
func RIB() *engine { return &engine{m: ribMethod{}} }

type ribMethod struct{}

func (ribMethod) name() string          { return "Rib" }
func (ribMethod) needsCovariance() bool { return true }

func (ribMethod) plan(k, level, dim int, box geom.Box, cov *covariance) (geom.Point, []int) {
	dir := cov.principalAxis(dim)
	if dir.Dot(dir, dim) < 1e-20 {
		dir = geom.Point{}
		dir[box.WidestAxis()] = 1
	}
	return dir, []int{(k + 1) / 2, k / 2}
}

// MultiJagged is the multisection algorithm of Deveci et al. (§3.1): a
// generalization of recursive bisection that cuts each dimension into
// ~k^(1/d) slabs, finishing after d levels instead of log₂ k. Fewer
// levels mean fewer migration rounds, which is why MJ scales better than
// RCB/RIB in the paper's experiments.
func MultiJagged() *engine { return &engine{m: mjMethod{}} }

type mjMethod struct{}

func (mjMethod) name() string          { return "MultiJagged" }
func (mjMethod) needsCovariance() bool { return false }

func (mjMethod) plan(k, level, dim int, box geom.Box, _ *covariance) (geom.Point, []int) {
	remaining := dim - level
	if remaining < 1 {
		remaining = 1
	}
	s := int(math.Round(math.Pow(float64(k), 1/float64(remaining))))
	if s < 2 {
		s = 2
	}
	if s > k {
		s = k
	}
	var dir geom.Point
	dir[level%dim] = 1
	return dir, splitBlocks(k, s)
}
