// Package baselines re-implements the geometric partitioners Geographer is
// compared against (paper §3.1, §5.2.2): Recursive Coordinate Bisection
// (RCB), Recursive Inertial Bisection (RIB), the MultiJagged multisection
// algorithm (MJ), and Hilbert space-filling-curve partitioning (HSFC),
// i.e. the relevant Zoltan toolbox methods.
//
// RCB, RIB and MJ share one distributed engine: at every level the active
// subproblems choose a cut direction, locate weighted cut positions by a
// collective bisection search, and migrate points so that each child
// subproblem is owned by a contiguous rank subgroup. Recursion continues
// locally once a subgroup shrinks to a single rank. The per-level
// migration all-to-alls are exactly why the recursive methods scale worse
// than single-shot methods in the paper's Figures 3 and 4: RCB/RIB pay
// ⌈log₂ k⌉ migration rounds, MJ only ⌈levels⌉ = dim, HSFC one sort.
package baselines

import (
	"fmt"
	"math"
	"sort"

	"geographer/internal/geom"
	"geographer/internal/mpi"
	"geographer/internal/partition"
)

// bisectionRounds is the number of collective binary-search rounds used to
// locate each weighted cut: the cut value is resolved to 2⁻⁴⁰ of the
// projection range, far below point spacing.
const bisectionRounds = 40

// method customizes the shared engine per algorithm.
type method interface {
	name() string
	needsCovariance() bool
	// plan returns the cut direction and the per-child block counts for a
	// subproblem with k blocks at the given recursion level.
	plan(k, level, dim int, box geom.Box, cov *covariance) (dir geom.Point, parts []int)
}

// covariance carries the weighted second-moment statistics of one
// subproblem (needed by RIB's inertial axis).
type covariance struct {
	W   float64
	Sum geom.Point // Σ w·x
	XX  [6]float64 // Σ w·x⊗x upper triangle: xx, xy, xz, yy, yz, zz
}

func (cv *covariance) accumulate(x geom.Point, w float64, dim int) {
	cv.W += w
	for d := 0; d < dim; d++ {
		cv.Sum[d] += w * x[d]
	}
	cv.XX[0] += w * x[0] * x[0]
	cv.XX[1] += w * x[0] * x[1]
	cv.XX[3] += w * x[1] * x[1]
	if dim == 3 {
		cv.XX[2] += w * x[0] * x[2]
		cv.XX[4] += w * x[1] * x[2]
		cv.XX[5] += w * x[2] * x[2]
	}
}

// principalAxis returns the dominant eigenvector of the weighted
// covariance matrix via power iteration (deterministic start).
func (cv *covariance) principalAxis(dim int) geom.Point {
	if cv.W <= 0 {
		return geom.Point{1, 0, 0}
	}
	var mean geom.Point
	for d := 0; d < dim; d++ {
		mean[d] = cv.Sum[d] / cv.W
	}
	// C = E[xxᵀ] − μμᵀ
	var c [3][3]float64
	c[0][0] = cv.XX[0]/cv.W - mean[0]*mean[0]
	c[0][1] = cv.XX[1]/cv.W - mean[0]*mean[1]
	c[1][1] = cv.XX[3]/cv.W - mean[1]*mean[1]
	c[1][0] = c[0][1]
	if dim == 3 {
		c[0][2] = cv.XX[2]/cv.W - mean[0]*mean[2]
		c[1][2] = cv.XX[4]/cv.W - mean[1]*mean[2]
		c[2][2] = cv.XX[5]/cv.W - mean[2]*mean[2]
		c[2][0] = c[0][2]
		c[2][1] = c[1][2]
	}
	v := geom.Point{1, 0.7, 0.4} // deterministic non-axis start
	v = v.Scale(1 / math.Sqrt(v.Dot(v, dim)))
	for it := 0; it < 50; it++ {
		var nv geom.Point
		for i := 0; i < dim; i++ {
			for j := 0; j < dim; j++ {
				nv[i] += c[i][j] * v[j]
			}
		}
		norm := math.Sqrt(nv.Dot(nv, dim))
		if norm < 1e-30 {
			break // degenerate covariance (e.g. a single point): keep v
		}
		v = nv.Scale(1 / norm)
	}
	for d := dim; d < geom.MaxDim; d++ {
		v[d] = 0
	}
	return v
}

// splitBlocks distributes k blocks over s children as evenly as possible.
func splitBlocks(k, s int) []int {
	parts := make([]int, s)
	base, rem := k/s, k%s
	for i := range parts {
		parts[i] = base
		if i < rem {
			parts[i]++
		}
	}
	return parts
}

// sub is one subproblem: a contiguous block range owned by a contiguous
// rank subgroup. All ranks maintain identical sub tables (every update is
// derived from collective results).
type sub struct {
	blockLo, blockHi int32 // blocks [blockLo, blockHi)
	rankLo, rankHi   int   // ranks [rankLo, rankHi)
	level            int
}

func (s sub) k() int     { return int(s.blockHi - s.blockLo) }
func (s sub) ranks() int { return s.rankHi - s.rankLo }

// dpoint is a migrating point record.
type dpoint struct {
	ID  int64
	W   float64
	X   geom.Point
	Sub int32
}

const dpointBytes = 8 + 8 + 24 + 4

// engine runs the shared distributed recursion for method m.
type engine struct {
	m method
}

// Partition implements partition.Distributed (via the method wrappers).
func (e *engine) Partition(c *mpi.Comm, pts *partition.Local, k int) ([]int64, []int32, error) {
	if k < 1 {
		return nil, nil, fmt.Errorf("baselines: k=%d", k)
	}
	dim := pts.Dim
	p := c.Size()

	local := make([]dpoint, pts.Len())
	for i := range local {
		local[i] = dpoint{ID: pts.IDs[i], W: pts.Weight(i), X: pts.At(i), Sub: 0}
	}
	subs := []sub{{blockLo: 0, blockHi: int32(k), rankLo: 0, rankHi: p}}

	// ---- World phase: cut subproblems owned by >1 rank, migrating points.
	for {
		active := make([]int, 0, len(subs))
		for i, s := range subs {
			if s.k() > 1 && s.ranks() > 1 {
				active = append(active, i)
			}
		}
		if mpi.ReduceScalarMax(c, int64(len(active))) == 0 {
			break
		}

		// Collective per-sub statistics: bounding box, weight, covariance.
		nSubs := len(subs)
		mins := make([]float64, nSubs*3)
		maxs := make([]float64, nSubs*3)
		for i := range mins {
			mins[i] = math.Inf(1)
			maxs[i] = math.Inf(-1)
		}
		covVec := make([]float64, nSubs*10)
		for _, pt := range local {
			si := int(pt.Sub)
			for d := 0; d < dim; d++ {
				if pt.X[d] < mins[si*3+d] {
					mins[si*3+d] = pt.X[d]
				}
				if pt.X[d] > maxs[si*3+d] {
					maxs[si*3+d] = pt.X[d]
				}
			}
			base := si * 10
			covVec[base] += pt.W
			covVec[base+1] += pt.W * pt.X[0]
			covVec[base+2] += pt.W * pt.X[1]
			covVec[base+3] += pt.W * pt.X[2]
			if e.m.needsCovariance() {
				covVec[base+4] += pt.W * pt.X[0] * pt.X[0]
				covVec[base+5] += pt.W * pt.X[0] * pt.X[1]
				covVec[base+6] += pt.W * pt.X[0] * pt.X[2]
				covVec[base+7] += pt.W * pt.X[1] * pt.X[1]
				covVec[base+8] += pt.W * pt.X[1] * pt.X[2]
				covVec[base+9] += pt.W * pt.X[2] * pt.X[2]
			}
		}
		mins = mpi.AllreduceMin(c, mins)
		maxs = mpi.AllreduceMax(c, maxs)
		covVec = mpi.AllreduceSum(c, covVec)
		c.AddOps(int64(len(local)))

		// Deterministic plans on every rank.
		type cutPlan struct {
			subIdx int
			dir    geom.Point
			parts  []int
			fracs  []float64 // cumulative target weight fractions (len parts-1)
			lo, hi float64   // projection search range
			mids   []float64
			totalW float64
		}
		plans := make([]cutPlan, 0, len(active))
		totalCuts := 0
		for _, si := range active {
			s := subs[si]
			box := geom.Box{Dim: dim}
			for d := 0; d < dim; d++ {
				box.Min[d] = mins[si*3+d]
				box.Max[d] = maxs[si*3+d]
			}
			cv := &covariance{
				W:   covVec[si*10],
				Sum: geom.Point{covVec[si*10+1], covVec[si*10+2], covVec[si*10+3]},
				XX: [6]float64{covVec[si*10+4], covVec[si*10+5], covVec[si*10+6],
					covVec[si*10+7], covVec[si*10+8], covVec[si*10+9]},
			}
			dir, parts := e.m.plan(s.k(), s.level, dim, box, cv)
			// Every child needs at least one owning rank; if the plan wants
			// more parts than the subgroup has ranks, coarsen the cut and
			// let later levels (or the local phase) finish the split.
			if len(parts) > s.ranks() {
				parts = splitBlocks(s.k(), s.ranks())
			}
			pl := cutPlan{subIdx: si, dir: dir, parts: parts, totalW: cv.W}
			kSum := 0
			for _, kc := range parts[:len(parts)-1] {
				kSum += kc
				pl.fracs = append(pl.fracs, float64(kSum)/float64(s.k()))
			}
			// Projection range from box corners (safe bound for any dir).
			lo, hi := math.Inf(1), math.Inf(-1)
			if box.Empty() {
				lo, hi = 0, 1 // empty sub: cuts are irrelevant
			} else {
				for corner := 0; corner < 1<<dim; corner++ {
					var pcorner geom.Point
					for d := 0; d < dim; d++ {
						if corner&(1<<d) != 0 {
							pcorner[d] = box.Max[d]
						} else {
							pcorner[d] = box.Min[d]
						}
					}
					v := pcorner.Dot(dir, dim)
					lo = math.Min(lo, v)
					hi = math.Max(hi, v)
				}
			}
			pl.lo, pl.hi = lo, hi
			totalCuts += len(pl.fracs)
			plans = append(plans, pl)
		}

		// Collective bisection for all cuts of all active subs at once.
		cutLo := make([]float64, totalCuts)
		cutHi := make([]float64, totalCuts)
		idx := 0
		for pi := range plans {
			for range plans[pi].fracs {
				cutLo[idx] = plans[pi].lo
				cutHi[idx] = plans[pi].hi
				idx++
			}
		}
		proj := make([]float64, len(local))
		subOfCut := make([]int32, totalCuts)
		planOfSub := make(map[int32]int, len(plans))
		cutBase := make([]int, len(plans))
		idx = 0
		for pi := range plans {
			cutBase[pi] = idx
			planOfSub[int32(plans[pi].subIdx)] = pi
			for range plans[pi].fracs {
				subOfCut[idx] = int32(plans[pi].subIdx)
				idx++
			}
		}
		for i, pt := range local {
			if pi, ok := planOfSub[pt.Sub]; ok {
				proj[i] = pt.X.Dot(plans[pi].dir, dim)
			}
		}
		weightBelow := make([]float64, totalCuts)
		for round := 0; round < bisectionRounds; round++ {
			for ci := range weightBelow {
				weightBelow[ci] = 0
			}
			for i, pt := range local {
				pi, ok := planOfSub[pt.Sub]
				if !ok {
					continue
				}
				base := cutBase[pi]
				for ci := range plans[pi].fracs {
					mid := 0.5 * (cutLo[base+ci] + cutHi[base+ci])
					if proj[i] < mid {
						weightBelow[base+ci] += pt.W
					}
				}
			}
			global := mpi.AllreduceSum(c, weightBelow)
			c.AddOps(int64(len(local)))
			for ci := range global {
				pi := planOfSub[subOfCut[ci]]
				target := plans[pi].fracs[ci-cutBase[pi]] * plans[pi].totalW
				mid := 0.5 * (cutLo[ci] + cutHi[ci])
				if global[ci] < target {
					cutLo[ci] = mid
				} else {
					cutHi[ci] = mid
				}
			}
		}

		// Build child sub table (deterministically on every rank).
		newSubs := make([]sub, 0, len(subs)+totalCuts)
		remap := make([]int32, len(subs))      // old inactive sub -> new index
		childBase := make([]int32, len(plans)) // first child index per plan
		isActive := make([]bool, len(subs))
		for _, si := range active {
			isActive[si] = true
		}
		for si, s := range subs {
			if !isActive[si] {
				remap[si] = int32(len(newSubs))
				newSubs = append(newSubs, s)
				continue
			}
			pi := planOfSub[int32(si)]
			childBase[pi] = int32(len(newSubs))
			parts := plans[pi].parts
			// Rank subgroup split proportional to block counts.
			ranks := s.ranks()
			bLo := s.blockLo
			rLo := s.rankLo
			kTot := s.k()
			kAcc := 0
			for ci, kc := range parts {
				kAcc += kc
				var rHi int
				if ci == len(parts)-1 {
					rHi = s.rankHi
				} else {
					rHi = s.rankLo + int(math.Round(float64(ranks)*float64(kAcc)/float64(kTot)))
					if rHi <= rLo {
						rHi = rLo + 1
					}
					if rHi > s.rankHi-(len(parts)-1-ci) {
						rHi = s.rankHi - (len(parts) - 1 - ci)
					}
				}
				newSubs = append(newSubs, sub{
					blockLo: bLo, blockHi: bLo + int32(kc),
					rankLo: rLo, rankHi: rHi,
					level: s.level + 1,
				})
				bLo += int32(kc)
				rLo = rHi
			}
		}

		// Route points: child sub index, destination rank within its group.
		send := make([][]dpoint, p)
		kept := local[:0]
		for i, pt := range local {
			pi, ok := planOfSub[pt.Sub]
			if !ok {
				pt.Sub = remap[pt.Sub]
				kept = append(kept, pt)
				continue
			}
			base := cutBase[pi]
			interval := 0
			for ci := range plans[pi].fracs {
				if proj[i] >= 0.5*(cutLo[base+ci]+cutHi[base+ci]) {
					interval = ci + 1
				}
			}
			childIdx := childBase[pi] + int32(interval)
			child := newSubs[childIdx]
			span := child.ranks()
			dst := child.rankLo + int(uint64(pt.ID)%uint64(span))
			pt.Sub = childIdx
			if dst == c.Rank() {
				kept = append(kept, pt)
			} else {
				send[dst] = append(send[dst], pt)
			}
		}
		var sendBytes int64
		for dst := range send {
			if dst != c.Rank() {
				sendBytes += int64(len(send[dst])) * dpointBytes
			}
		}
		_ = sendBytes
		recv := mpi.Alltoall(c, send)
		local = kept
		for _, chunk := range recv {
			local = append(local, chunk...)
		}
		subs = newSubs
	}

	// ---- Local phase: every remaining multi-block sub lives on one rank.
	blocks := make([]int32, len(local))
	bySub := make(map[int32][]int)
	for i, pt := range local {
		s := subs[pt.Sub]
		if s.k() == 1 {
			blocks[i] = s.blockLo
		} else {
			bySub[pt.Sub] = append(bySub[pt.Sub], i)
		}
	}
	for si, idxs := range bySub {
		s := subs[si]
		e.localRecurse(local, blocks, idxs, s.blockLo, s.k(), s.level, dim, c)
	}

	ids := make([]int64, len(local))
	for i, pt := range local {
		ids[i] = pt.ID
	}
	return ids, blocks, nil
}

// localRecurse performs the sequential recursion once a subproblem is
// rank-local: exact weighted splits via sorting by projection.
func (e *engine) localRecurse(local []dpoint, blocks []int32, idxs []int, blockLo int32, k, level, dim int, c *mpi.Comm) {
	if k == 1 || len(idxs) == 0 {
		for _, i := range idxs {
			blocks[i] = blockLo
		}
		return
	}
	box := geom.EmptyBox(dim)
	cv := &covariance{}
	for _, i := range idxs {
		box.Extend(local[i].X)
		cv.accumulate(local[i].X, local[i].W, dim)
	}
	dir, parts := e.m.plan(k, level, dim, box, cv)
	c.AddOps(int64(len(idxs)))

	sort.Slice(idxs, func(a, b int) bool {
		pa := local[idxs[a]].X.Dot(dir, dim)
		pb := local[idxs[b]].X.Dot(dir, dim)
		if pa != pb {
			return pa < pb
		}
		return local[idxs[a]].ID < local[idxs[b]].ID
	})
	totalW := cv.W
	kAcc, start := 0, 0
	cum := 0.0
	bLo := blockLo
	for ci, kc := range parts {
		kAcc += kc
		end := len(idxs)
		if ci < len(parts)-1 {
			target := totalW * float64(kAcc) / float64(k)
			end = start
			for end < len(idxs) && cum+local[idxs[end]].W <= target+1e-12 {
				cum += local[idxs[end]].W
				end++
			}
		}
		e.localRecurse(local, blocks, idxs[start:end], bLo, kc, level+1, dim, c)
		start = end
		bLo += int32(kc)
	}
}
