package baselines

import (
	"math"
	"math/rand"
	"testing"

	"geographer/internal/geom"
	"geographer/internal/metrics"
	"geographer/internal/mpi"
	"geographer/internal/partition"
)

func uniformPoints(n int, dim int, seed int64) *geom.PointSet {
	rng := rand.New(rand.NewSource(seed))
	ps := geom.NewPointSet(dim, n)
	for i := 0; i < n; i++ {
		var p geom.Point
		for d := 0; d < dim; d++ {
			p[d] = rng.Float64()
		}
		ps.Append(p, 1)
	}
	return ps
}

func weightedPoints(n int, seed int64) *geom.PointSet {
	rng := rand.New(rand.NewSource(seed))
	ps := geom.NewPointSet(2, n)
	ps.Weight = make([]float64, 0, n)
	for i := 0; i < n; i++ {
		ps.Append(geom.Point{rng.Float64(), rng.Float64()}, 0.5+4*rng.Float64())
	}
	return ps
}

func allTools() []partition.Distributed {
	return []partition.Distributed{RCB(), RIB(), MultiJagged(), HSFC{}}
}

func TestToolsProduceValidBalancedPartitions(t *testing.T) {
	for _, tool := range allTools() {
		for _, dim := range []int{2, 3} {
			for _, k := range []int{2, 7, 16} {
				for _, p := range []int{1, 2, 4} {
					ps := uniformPoints(4000, dim, 99)
					w := mpi.NewWorld(p)
					part, err := partition.Run(w, ps, k, tool)
					if err != nil {
						t.Fatalf("%s dim=%d k=%d p=%d: %v", tool.Name(), dim, k, p, err)
					}
					if err := part.Validate(true); err != nil {
						t.Fatalf("%s dim=%d k=%d p=%d: %v", tool.Name(), dim, k, p, err)
					}
					imb := metrics.Imbalance(metrics.BlockWeights(ps, part.Assign, k))
					if imb > 0.05 {
						t.Errorf("%s dim=%d k=%d p=%d: imbalance %.4f > 0.05", tool.Name(), dim, k, p, imb)
					}
				}
			}
		}
	}
}

func TestToolsWeightedBalance(t *testing.T) {
	ps := weightedPoints(5000, 3)
	for _, tool := range allTools() {
		for _, p := range []int{1, 3} {
			w := mpi.NewWorld(p)
			part, err := partition.Run(w, ps, 8, tool)
			if err != nil {
				t.Fatalf("%s: %v", tool.Name(), err)
			}
			imb := metrics.Imbalance(metrics.BlockWeights(ps, part.Assign, 8))
			if imb > 0.05 {
				t.Errorf("%s p=%d: weighted imbalance %.4f", tool.Name(), p, imb)
			}
		}
	}
}

func TestRCBProducesAxisAlignedQuadrants(t *testing.T) {
	// 4 well-separated clusters in the unit square corners: RCB with k=4
	// must put each cluster into its own block.
	rng := rand.New(rand.NewSource(1))
	ps := geom.NewPointSet(2, 400)
	centers := []geom.Point{{0.1, 0.1}, {0.9, 0.1}, {0.1, 0.9}, {0.9, 0.9}}
	for i := 0; i < 400; i++ {
		c := centers[i%4]
		ps.Append(geom.Point{c[0] + rng.Float64()*0.05, c[1] + rng.Float64()*0.05}, 1)
	}
	w := mpi.NewWorld(2)
	part, err := partition.Run(w, ps, 4, RCB())
	if err != nil {
		t.Fatal(err)
	}
	// All points of one cluster share a block.
	for cluster := 0; cluster < 4; cluster++ {
		want := part.Assign[cluster]
		for i := cluster; i < 400; i += 4 {
			if part.Assign[i] != want {
				t.Fatalf("cluster %d split between blocks %d and %d", cluster, want, part.Assign[i])
			}
		}
	}
}

func TestRIBHandlesRotatedGeometry(t *testing.T) {
	// A thin diagonal strip: RIB's inertial axis should cut across the
	// strip, giving each half ~contiguous pieces; RCB can only cut
	// axis-aligned. Check RIB's cut is roughly perpendicular to the strip:
	// both blocks should have similar x-extent midpoints separated along
	// the diagonal.
	rng := rand.New(rand.NewSource(2))
	ps := geom.NewPointSet(2, 2000)
	for i := 0; i < 2000; i++ {
		tpos := rng.Float64()
		off := rng.NormFloat64() * 0.01
		ps.Append(geom.Point{tpos - off/math.Sqrt2, tpos + off/math.Sqrt2}, 1)
	}
	w := mpi.NewWorld(2)
	part, err := partition.Run(w, ps, 2, RIB())
	if err != nil {
		t.Fatal(err)
	}
	// Mean diagonal position (x+y) of the blocks must differ clearly.
	var sum [2]float64
	var cnt [2]int
	for i := 0; i < ps.Len(); i++ {
		b := part.Assign[i]
		sum[b] += ps.At(i)[0] + ps.At(i)[1]
		cnt[b]++
	}
	m0, m1 := sum[0]/float64(cnt[0]), sum[1]/float64(cnt[1])
	if math.Abs(m0-m1) < 0.5 {
		t.Errorf("RIB did not separate along the strip: means %.3f vs %.3f", m0, m1)
	}
}

func TestMultiJaggedGridStructure(t *testing.T) {
	// k=9 on uniform 2D points: MJ should produce a 3x3 jagged grid, so
	// each block's bounding box should be much smaller than the domain.
	ps := uniformPoints(9000, 2, 5)
	w := mpi.NewWorld(3)
	part, err := partition.Run(w, ps, 9, MultiJagged())
	if err != nil {
		t.Fatal(err)
	}
	boxes := make([]geom.Box, 9)
	for b := range boxes {
		boxes[b] = geom.EmptyBox(2)
	}
	for i := 0; i < ps.Len(); i++ {
		boxes[part.Assign[i]].Extend(ps.At(i))
	}
	for b, box := range boxes {
		if box.Side(0)*box.Side(1) > 0.35 {
			t.Errorf("block %d covers area %.2f, expected compact ~0.11", b, box.Side(0)*box.Side(1))
		}
	}
}

func TestHSFCContiguousOnCurve(t *testing.T) {
	ps := uniformPoints(3000, 2, 8)
	w := mpi.NewWorld(4)
	part, err := partition.Run(w, ps, 8, HSFC{})
	if err != nil {
		t.Fatal(err)
	}
	if err := part.Validate(true); err != nil {
		t.Fatal(err)
	}
	// Perfect weight balance up to one point per cut.
	sizes := part.Sizes()
	for b, s := range sizes {
		if s < 3000/8-8 || s > 3000/8+8 {
			t.Errorf("block %d size %d, want ~375", b, s)
		}
	}
}

func TestHeterogeneousRanksAndK(t *testing.T) {
	// k not a power of two, p not dividing k.
	ps := uniformPoints(1100, 2, 13)
	for _, tool := range allTools() {
		w := mpi.NewWorld(3)
		part, err := partition.Run(w, ps, 5, tool)
		if err != nil {
			t.Fatalf("%s: %v", tool.Name(), err)
		}
		if err := part.Validate(true); err != nil {
			t.Fatalf("%s: %v", tool.Name(), err)
		}
		imb := metrics.Imbalance(metrics.BlockWeights(ps, part.Assign, 5))
		if imb > 0.06 {
			t.Errorf("%s: imbalance %.4f", tool.Name(), imb)
		}
	}
}

func TestKEqualsOneAndKEqualsN(t *testing.T) {
	ps := uniformPoints(64, 2, 4)
	for _, tool := range allTools() {
		w := mpi.NewWorld(2)
		part, err := partition.Run(w, ps, 1, tool)
		if err != nil {
			t.Fatalf("%s k=1: %v", tool.Name(), err)
		}
		for _, b := range part.Assign {
			if b != 0 {
				t.Fatalf("%s k=1: nonzero block", tool.Name())
			}
		}
		part, err = partition.Run(w, ps, 64, tool)
		if err != nil {
			t.Fatalf("%s k=n: %v", tool.Name(), err)
		}
		if err := part.Validate(false); err != nil {
			t.Fatalf("%s k=n: %v", tool.Name(), err)
		}
	}
}

func TestSplitBlocks(t *testing.T) {
	cases := []struct {
		k, s int
		want []int
	}{
		{4, 2, []int{2, 2}},
		{5, 2, []int{3, 2}},
		{7, 3, []int{3, 2, 2}},
		{3, 3, []int{1, 1, 1}},
	}
	for _, c := range cases {
		got := splitBlocks(c.k, c.s)
		if len(got) != len(c.want) {
			t.Fatalf("splitBlocks(%d,%d) = %v", c.k, c.s, got)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("splitBlocks(%d,%d) = %v, want %v", c.k, c.s, got, c.want)
			}
		}
	}
}

func TestPrincipalAxisDiagonal(t *testing.T) {
	cv := &covariance{}
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 1000; i++ {
		tpos := rng.Float64()
		cv.accumulate(geom.Point{tpos, tpos + rng.NormFloat64()*0.001}, 1, 2)
	}
	axis := cv.principalAxis(2)
	// Expect ±(1,1)/√2.
	if math.Abs(math.Abs(axis[0])-math.Sqrt2/2) > 0.02 || math.Abs(math.Abs(axis[1])-math.Sqrt2/2) > 0.02 {
		t.Errorf("principal axis = %v, want ~(0.707, 0.707)", axis)
	}
}

func TestPrincipalAxisDegenerate(t *testing.T) {
	cv := &covariance{}
	cv.accumulate(geom.Point{0.5, 0.5}, 1, 2) // single point
	axis := cv.principalAxis(2)
	if math.IsNaN(axis[0]) || math.IsNaN(axis[1]) {
		t.Errorf("degenerate axis NaN: %v", axis)
	}
	empty := &covariance{}
	axis = empty.principalAxis(3)
	if axis != (geom.Point{1, 0, 0}) {
		t.Errorf("empty covariance axis = %v", axis)
	}
}

func BenchmarkTools(b *testing.B) {
	ps := uniformPoints(50000, 2, 42)
	for _, tool := range allTools() {
		b.Run(tool.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w := mpi.NewWorld(4)
				if _, err := partition.Run(w, ps, 16, tool); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
