package baselines

import (
	"testing"

	"geographer/internal/mpi"
	"geographer/internal/partition"
)

// The scaling story of the paper's Figures 3 and 4 rests on how many
// communication rounds each method needs: RCB/RIB pay one cut search +
// migration per bisection level (log₂ k), MultiJagged one per dimension,
// HSFC a single sort. Verify that mechanism directly from the runtime's
// collective counters.
func TestCommunicationRoundsOrdering(t *testing.T) {
	ps := uniformPoints(8000, 2, 77)
	k, p := 16, 8
	collectives := func(tool partition.Distributed) int64 {
		w := mpi.NewWorld(p)
		if _, err := partition.Run(w, ps, k, tool); err != nil {
			t.Fatalf("%s: %v", tool.Name(), err)
		}
		var total int64
		for _, s := range w.Stats() {
			total += s.Collectives
		}
		return total
	}
	rcb := collectives(RCB())
	mj := collectives(MultiJagged())
	hsfc := collectives(HSFC{})
	if !(hsfc < mj && mj < rcb) {
		t.Errorf("collective counts out of order: hsfc=%d mj=%d rcb=%d (want hsfc < mj < rcb)",
			hsfc, mj, rcb)
	}
}

// Migration must leave every rank with a reasonable share of the points
// (no rank starves or hoards during the world phase).
func TestMigrationKeepsRanksLoaded(t *testing.T) {
	ps := uniformPoints(8000, 2, 78)
	for _, tool := range []partition.Distributed{RCB(), MultiJagged()} {
		w := mpi.NewWorld(8)
		if _, err := partition.Run(w, ps, 16, tool); err != nil {
			t.Fatal(err)
		}
		// Traffic symmetry proxy: every rank participated in collectives.
		for r, s := range w.Stats() {
			if s.Collectives == 0 {
				t.Errorf("%s: rank %d never joined a collective", tool.Name(), r)
			}
		}
	}
}

// Modeled communication time must grow with p for the recursive methods
// on fixed-size input (the strong-scaling mechanism of Fig. 3b).
func TestRecursiveMethodsCommGrowsWithP(t *testing.T) {
	ps := uniformPoints(6000, 2, 79)
	commAt := func(p int) float64 {
		w := mpi.NewWorld(p)
		if _, err := partition.Run(w, ps, 32, RCB()); err != nil {
			t.Fatal(err)
		}
		_, comm := w.CostModel().ModeledTime(w.Stats())
		return comm
	}
	small, large := commAt(2), commAt(16)
	if large <= small {
		t.Errorf("RCB modeled comm did not grow with p: %g (p=2) vs %g (p=16)", small, large)
	}
}
