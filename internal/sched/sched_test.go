package sched

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestForEachCoversAllIndices: every index runs exactly once, for every
// combination of budget, max, and n — including n smaller than max and
// a zero-capacity pool (serial degradation).
func TestForEachCoversAllIndices(t *testing.T) {
	for _, capacity := range []int{0, 1, 4, 16} {
		p := NewPool(capacity)
		for _, budget := range []int{1, 2, 8} {
			l := p.Lease(budget)
			for _, max := range []int{1, 2, 5, 16} {
				for _, n := range []int{0, 1, 3, 17, 100} {
					var hits sync.Map
					var count atomic.Int64
					l.ForEach(max, n, func(i int) {
						if _, dup := hits.LoadOrStore(i, true); dup {
							t.Fatalf("cap=%d budget=%d max=%d n=%d: index %d ran twice", capacity, budget, max, n, i)
						}
						count.Add(1)
					})
					if got := int(count.Load()); got != n {
						t.Fatalf("cap=%d budget=%d max=%d n=%d: %d indices ran", capacity, budget, max, n, got)
					}
				}
			}
		}
	}
}

// TestForEachNilLease: a nil lease is usable and covers all indices.
func TestForEachNilLease(t *testing.T) {
	var l *Lease
	var count atomic.Int64
	l.ForEach(4, 50, func(i int) { count.Add(1) })
	if count.Load() != 50 {
		t.Fatalf("nil lease ran %d of 50 indices", count.Load())
	}
	if l.Budget() < 1 {
		t.Fatalf("nil lease budget %d < 1", l.Budget())
	}
}

// TestConcurrencyBounds: with all fn invocations blocking until
// released, the observed peak concurrency stays within both the lease
// budget and pool capacity + concurrent callers.
func TestConcurrencyBounds(t *testing.T) {
	const capacity, budget = 8, 3
	p := NewPool(capacity)
	l := p.Lease(budget)

	var cur, peak atomic.Int64
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		l.ForEach(16, 32, func(i int) {
			c := cur.Add(1)
			for {
				old := peak.Load()
				if c <= old || peak.CompareAndSwap(old, c) {
					break
				}
			}
			<-release
			cur.Add(-1)
		})
	}()
	close(release)
	<-done
	// One inline caller + at most budget-1 helpers.
	if peak.Load() > budget {
		t.Fatalf("peak concurrency %d exceeds lease budget %d", peak.Load(), budget)
	}
}

// TestPoolTokensReturned: after many fan-outs, the pool has all its
// tokens back (no leaks), so a later lease can still spawn helpers.
func TestPoolTokensReturned(t *testing.T) {
	p := NewPool(4)
	l := p.Lease(4)
	for r := 0; r < 50; r++ {
		l.ForEach(4, 20, func(i int) {})
	}
	got := 0
	for p.tryAcquire() {
		got++
	}
	if got != 4 {
		t.Fatalf("pool holds %d of 4 tokens after fan-outs", got)
	}
}

// TestTenantsShareThePool: two tenants with large budgets contend on a
// small pool — everything still completes, and pool tokens come back.
func TestTenantsShareThePool(t *testing.T) {
	p := NewPool(2)
	var wg sync.WaitGroup
	var count atomic.Int64
	for tenant := 0; tenant < 8; tenant++ {
		l := p.Lease(8)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 20; r++ {
				l.ForEach(8, 33, func(i int) { count.Add(1) })
			}
		}()
	}
	wg.Wait()
	if want := int64(8 * 20 * 33); count.Load() != want {
		t.Fatalf("ran %d of %d indices", count.Load(), want)
	}
	got := 0
	for p.tryAcquire() {
		got++
	}
	if got != 2 {
		t.Fatalf("pool holds %d of 2 tokens after contention", got)
	}
}

// TestBudgetSemantics pins the Budget values the worker default divides.
func TestBudgetSemantics(t *testing.T) {
	p := NewPool(6)
	if got := p.Lease(0).Budget(); got != 6 {
		t.Fatalf("full lease budget = %d, want pool capacity 6", got)
	}
	if got := p.Lease(1).Budget(); got != 1 {
		t.Fatalf("serial lease budget = %d, want 1", got)
	}
	if got := p.Lease(3).Budget(); got != 3 {
		t.Fatalf("lease budget = %d, want 3", got)
	}
	if got := NewPool(0).Lease(0).Budget(); got != 1 {
		t.Fatalf("zero-capacity full lease budget = %d, want floor 1", got)
	}
}
