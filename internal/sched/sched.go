// Package sched is the process-wide intra-rank worker budget: a single
// Pool of helper tokens sized to the host, and per-tenant Leases drawn
// against it. Every intra-rank fan-out in the repo (the assignment
// kernels of internal/core, the batch Hilbert key kernel of
// internal/sfc) runs through Lease.ForEach instead of spawning its own
// goroutine group, so N concurrent sessions sharing one process degrade
// to bounded concurrency instead of N×GOMAXPROCS oversubscription.
//
// Two properties are load-bearing:
//
//   - Progress without tokens. ForEach always runs work on the calling
//     goroutine; helper goroutines are spawned only while a token is
//     available on BOTH the lease and the pool, acquired non-blocking.
//     A fully drained pool therefore degrades every fan-out to serial
//     execution — it can never deadlock a rank, and the simulated MPI
//     ranks (whose goroutines are not pool-managed) always advance.
//
//   - Determinism. Token availability decides only WHO executes a
//     chunk, never WHAT the chunks are: the chunk grid is the
//     machine-independent geom.ChunkGrid, chunks write disjoint
//     outputs, and callers merge per-chunk accumulators in chunk order
//     after ForEach returns. Output is bit-identical whether zero or
//     all helpers showed up (DESIGN.md, "Multi-tenancy invariants";
//     pinned by the kernel differential tests).
package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a budget of helper-goroutine tokens shared by every lease
// drawn from it. Capacity approximates the host's parallelism, not a
// strict count of running goroutines: callers of ForEach run inline
// without holding a token, so total running workers may exceed capacity
// by the number of concurrent callers — the bounded-degradation
// contract, not a hard semaphore over all execution.
type Pool struct {
	sem chan struct{}
}

// NewPool returns a pool with the given helper-token capacity
// (capacity < 0 is treated as 0: a pool that never grants helpers, so
// every fan-out runs serially on its caller).
func NewPool(capacity int) *Pool {
	if capacity < 0 {
		capacity = 0
	}
	p := &Pool{sem: make(chan struct{}, capacity)}
	for i := 0; i < capacity; i++ {
		p.sem <- struct{}{}
	}
	return p
}

var (
	defaultPool *Pool
	defaultOnce sync.Once
)

// Default returns the process pool, sized to runtime.GOMAXPROCS(0) on
// first use. A nil Lease resolves against it, so single-tenant callers
// (tests, the CLI tools) share one host-sized budget without ever
// naming this package.
func Default() *Pool {
	defaultOnce.Do(func() {
		defaultPool = NewPool(runtime.GOMAXPROCS(0))
	})
	return defaultPool
}

// Capacity returns the pool's total helper-token capacity.
func (p *Pool) Capacity() int { return cap(p.sem) }

// tryAcquire takes one helper token if one is free, without blocking.
func (p *Pool) tryAcquire() bool {
	select {
	case <-p.sem:
		return true
	default:
		return false
	}
}

// release returns a helper token.
func (p *Pool) release() { p.sem <- struct{}{} }

// Lease is one tenant's worker budget carved out of a pool: fan-outs
// through the lease reach at most Budget concurrent workers for the
// tenant (the inline caller plus Budget-1 token-gated helpers), and
// every helper additionally holds a pool token — a tenant can neither
// exceed its own budget nor help exhaust the host beyond the pool's
// capacity. Leases are cheap (one channel) and need no explicit close:
// an idle lease holds no pool tokens.
type Lease struct {
	pool   *Pool
	sem    chan struct{}
	budget int
}

// Lease carves a tenant worker budget out of the pool. budget <= 0
// selects the pool's full capacity (floored at 1 — the inline caller
// always counts as one worker); budget == 1 grants no helper tokens,
// forcing every fan-out through the lease to run serially.
func (p *Pool) Lease(budget int) *Lease {
	if budget <= 0 {
		budget = p.Capacity()
	}
	if budget < 1 {
		budget = 1
	}
	l := &Lease{pool: p, sem: make(chan struct{}, budget-1), budget: budget}
	for i := 1; i < budget; i++ {
		l.sem <- struct{}{}
	}
	return l
}

// Budget returns the lease's worker budget — the per-tenant parallelism
// the kernel shard default divides by the simulated world size
// (core.resolveWorkers). Nil-safe: a nil lease reports the Default
// pool's capacity, floored at 1.
func (l *Lease) Budget() int {
	if l == nil {
		if c := Default().Capacity(); c > 1 {
			return c
		}
		return 1
	}
	return l.budget
}

// tryAcquire takes one helper slot: a lease token and a pool token,
// both non-blocking, all-or-nothing.
func (l *Lease) tryAcquire() bool {
	select {
	case <-l.sem:
	default:
		return false
	}
	if !l.pool.tryAcquire() {
		l.sem <- struct{}{}
		return false
	}
	return true
}

// release returns a helper slot to both the lease and the pool.
func (l *Lease) release() {
	l.pool.release()
	l.sem <- struct{}{}
}

// ForEach runs fn(i) for every i in [0, n), on the calling goroutine
// plus up to max-1 helpers. Helpers are admitted non-blocking against
// the lease and pool budgets, so the call never waits for tokens — at
// worst the caller processes every index itself, serially. Indices are
// handed out dynamically (an atomic counter), which load-balances
// uneven chunks; fn must therefore be safe to run concurrently for
// distinct indices and must not care which goroutine runs which index —
// the disjoint-writes + ordered-merge contract every chunked kernel
// here satisfies, which is what keeps output bit-identical across
// worker counts and token droughts. A nil lease draws on the Default
// pool at full budget.
func (l *Lease) ForEach(max, n int, fn func(int)) {
	if n <= 0 {
		return
	}
	if max > n {
		max = n
	}
	if max <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	if l == nil {
		l = defaultLease()
	}

	var next atomic.Int64
	run := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}

	var wg sync.WaitGroup
	for h := 1; h < max && l.tryAcquire(); h++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer l.release()
			run()
		}()
	}
	run()
	wg.Wait()
}

var (
	defLease     *Lease
	defLeaseOnce sync.Once
)

// defaultLease is the shared full-budget lease nil resolves to. Shared
// (not per-call) so that concurrent nil-lease fan-outs still contend on
// one budget instead of each minting fresh lease tokens.
func defaultLease() *Lease {
	defLeaseOnce.Do(func() {
		defLease = Default().Lease(0)
	})
	return defLease
}
