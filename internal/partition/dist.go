package partition

import (
	"context"
	"fmt"

	"geographer/internal/geom"
	"geographer/internal/mpi"
)

// Local is the per-rank view of a distributed point set: every point
// carries its global id so results can be assembled after arbitrary
// migrations (distributed partitioners move points between ranks).
// Coordinates are stored flat (stride Dim) so any dimension fits; the
// At accessor serves the spatial (Dim ≤ geom.MaxDim) consumers.
type Local struct {
	Dim    int
	IDs    []int64
	Coords []float64 // len = Len()·Dim, stride Dim
	W      []float64 // nil = unit weights
}

// Len returns the number of local points.
func (l *Local) Len() int { return len(l.IDs) }

// At returns local point i as a Point value (Dim ≤ geom.MaxDim only).
func (l *Local) At(i int) geom.Point {
	var p geom.Point
	base := i * l.Dim
	for d := 0; d < l.Dim; d++ {
		p[d] = l.Coords[base+d]
	}
	return p
}

// Coord returns the flat coordinate vector of local point i (any
// dimension; the returned slice aliases the Coords buffer).
func (l *Local) Coord(i int) []float64 {
	return l.Coords[i*l.Dim : (i+1)*l.Dim]
}

// Weight returns the weight of local point i.
func (l *Local) Weight(i int) float64 {
	if l.W == nil {
		return 1
	}
	return l.W[i]
}

// Distributed is a partitioner that runs SPMD inside a simulated MPI
// world. It returns (ids, blocks) pairs — the ids may be a permutation of
// the input ids (migrated points report from their final owner).
type Distributed interface {
	Name() string
	Partition(c *mpi.Comm, pts *Local, k int) (ids []int64, blocks []int32, err error)
}

// Scatter splits ps into contiguous chunks, one per rank, and returns this
// rank's chunk. Global ids are the point indices in ps.
func Scatter(c *mpi.Comm, ps *geom.PointSet) *Local {
	n := ps.Len()
	p := c.Size()
	r := c.Rank()
	lo := r * n / p
	hi := (r + 1) * n / p
	lp := &Local{
		Dim:    ps.Dim,
		IDs:    make([]int64, 0, hi-lo),
		Coords: append([]float64(nil), ps.Coords[lo*ps.Dim:hi*ps.Dim]...),
	}
	if ps.Weight != nil {
		lp.W = append([]float64(nil), ps.Weight[lo:hi]...)
	}
	for i := lo; i < hi; i++ {
		lp.IDs = append(lp.IDs, int64(i))
	}
	return lp
}

// Run executes a distributed partitioner on ps over world w and assembles
// the global partition. The write-back of (id, block) pairs into the
// result exploits shared memory for output collection only — the
// algorithm under test communicates exclusively through the mpi runtime.
func Run(w *mpi.World, ps *geom.PointSet, k int, d Distributed) (P, error) {
	return RunCtx(nil, w, ps, k, d)
}

// RunCtx is Run under a context: cancellation aborts the world through
// the mpi runtime's abort path (mpi.World.RunCtx) and surfaces as a
// typed mpi.ErrBroken. A nil context runs exactly like Run.
func RunCtx(ctx context.Context, w *mpi.World, ps *geom.PointSet, k int, d Distributed) (P, error) {
	exec := w.Run
	if ctx != nil {
		exec = func(f func(c *mpi.Comm)) error { return w.RunCtx(ctx, f) }
	}
	out := New(ps.Len(), k)
	for i := range out.Assign {
		out.Assign[i] = -1
	}
	runErr := exec(func(c *mpi.Comm) {
		lp := Scatter(c, ps)
		ids, blocks, err := d.Partition(c, lp, k)
		if err != nil {
			panic(fmt.Sprintf("%s: %v", d.Name(), err))
		}
		if len(ids) != len(blocks) {
			panic(fmt.Sprintf("%s: %d ids but %d blocks", d.Name(), len(ids), len(blocks)))
		}
		for i, id := range ids {
			out.Assign[id] = blocks[i] // ids are globally disjoint
		}
	})
	if runErr != nil {
		return P{}, runErr
	}
	for i, b := range out.Assign {
		if b < 0 {
			return P{}, fmt.Errorf("%s: point %d left unassigned", d.Name(), i)
		}
	}
	return out, nil
}
