package partition

import (
	"math"
	"testing"

	"geographer/internal/geom"
)

func TestValidate(t *testing.T) {
	p := New(4, 2)
	p.Assign = []int32{0, 1, 0, 1}
	if err := p.Validate(true); err != nil {
		t.Fatal(err)
	}
	p.Assign[0] = 5
	if p.Validate(false) == nil {
		t.Error("invalid block id accepted")
	}
	p.Assign = []int32{0, 0, 0, 0}
	if p.Validate(true) == nil {
		t.Error("empty block accepted in strict mode")
	}
	if err := p.Validate(false); err != nil {
		t.Errorf("empty block rejected in lax mode: %v", err)
	}
	bad := P{K: 0}
	if bad.Validate(false) == nil {
		t.Error("k=0 accepted")
	}
}

func TestSizes(t *testing.T) {
	p := P{Assign: []int32{0, 2, 2, 1, 2}, K: 3}
	s := p.Sizes()
	if s[0] != 1 || s[1] != 1 || s[2] != 3 {
		t.Errorf("sizes = %v", s)
	}
}

func TestTargetsUniform(t *testing.T) {
	tg, err := Targets(100, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range tg {
		if v != 25 {
			t.Errorf("targets = %v", tg)
		}
	}
}

func TestTargetsHeterogeneous(t *testing.T) {
	tg, err := Targets(100, 2, []float64{0.75, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if tg[0] != 75 || tg[1] != 25 {
		t.Errorf("targets = %v", tg)
	}
	if _, err := Targets(100, 3, []float64{0.5, 0.5}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Targets(100, 2, []float64{0.9, 0.3}); err == nil {
		t.Error("bad sum accepted")
	}
	if _, err := Targets(100, 2, []float64{1.5, -0.5}); err == nil {
		t.Error("negative fraction accepted")
	}
}

func TestMaxLoadRatio(t *testing.T) {
	ps := geom.NewPointSet(2, 4)
	for i := 0; i < 4; i++ {
		ps.Append(geom.Point{float64(i), 0}, 1)
	}
	p := P{Assign: []int32{0, 0, 0, 1}, K: 2}
	tg, _ := Targets(4, 2, nil)
	r := MaxLoadRatio(ps, p, tg)
	if math.Abs(r-1.5) > 1e-12 {
		t.Errorf("ratio = %g, want 1.5", r)
	}
}
