// Package partition defines the common types shared by all partitioners:
// the block assignment vector, balance targets (including the
// heterogeneous block sizes of the paper's footnote 1), and validation.
package partition

import (
	"fmt"

	"geographer/internal/geom"
)

// P assigns each point a block id in [0, K).
type P struct {
	Assign []int32
	K      int
}

// New allocates an all-zero assignment.
func New(n, k int) P {
	return P{Assign: make([]int32, n), K: k}
}

// Validate checks that every assignment is a legal block id and, when
// strict, that no block is empty.
func (p P) Validate(strict bool) error {
	if p.K < 1 {
		return fmt.Errorf("partition: k=%d", p.K)
	}
	counts := make([]int64, p.K)
	for i, b := range p.Assign {
		if b < 0 || int(b) >= p.K {
			return fmt.Errorf("partition: point %d assigned to invalid block %d (k=%d)", i, b, p.K)
		}
		counts[b]++
	}
	if strict {
		for b, c := range counts {
			if c == 0 {
				return fmt.Errorf("partition: block %d is empty", b)
			}
		}
	}
	return nil
}

// Sizes returns the number of points per block.
func (p P) Sizes() []int64 {
	s := make([]int64, p.K)
	for _, b := range p.Assign {
		s[b]++
	}
	return s
}

// CheckFractions validates heterogeneous target fractions (paper
// footnote 1): length k, every fraction strictly positive and finite,
// sum within 1±0.001. It returns the sum so callers can normalize.
// A zero or negative fraction would silently skew the balance targets
// (its block can never meet a non-positive target), so it is an error,
// not a degenerate configuration.
func CheckFractions(fractions []float64, k int) (float64, error) {
	if len(fractions) != k {
		return 0, fmt.Errorf("partition: %d fractions for k=%d", len(fractions), k)
	}
	sum := 0.0
	for _, f := range fractions {
		if !(f > 0) || f > 1 {
			return 0, fmt.Errorf("partition: fraction %g outside (0, 1]", f)
		}
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		return 0, fmt.Errorf("partition: fractions sum to %g, want 1", sum)
	}
	return sum, nil
}

// Targets computes per-block target weights. With fractions == nil all
// blocks get totalWeight/k (the standard balance constraint); otherwise
// fractions must sum to ~1 and block b targets fractions[b]·totalWeight
// (heterogeneous architectures, paper footnote 1).
func Targets(totalWeight float64, k int, fractions []float64) ([]float64, error) {
	t := make([]float64, k)
	if fractions == nil {
		for b := range t {
			t[b] = totalWeight / float64(k)
		}
		return t, nil
	}
	sum, err := CheckFractions(fractions, k)
	if err != nil {
		return nil, err
	}
	for b := range t {
		t[b] = totalWeight * fractions[b] / sum
	}
	return t, nil
}

// MaxLoadRatio returns max_b weight(b)/target(b); balance requires this to
// be at most 1+ε.
func MaxLoadRatio(ps *geom.PointSet, p P, targets []float64) float64 {
	w := make([]float64, p.K)
	for i := 0; i < ps.Len(); i++ {
		w[p.Assign[i]] += ps.W(i)
	}
	worst := 0.0
	for b := 0; b < p.K; b++ {
		if targets[b] <= 0 {
			continue
		}
		if r := w[b] / targets[b]; r > worst {
			worst = r
		}
	}
	return worst
}
