package repart

// The retry driver: RepartitionWithRetry wraps one threshold-triggered
// warm step in checkpoint/rollback/backoff machinery, so a step that
// dies mid-collective (a rank panic, an injected fault, a cancellation)
// is rolled back to the state it started from and retried on a fresh
// world — converging, when an attempt finally completes, to the exact
// partition a fault-free step would have produced (the checkpoint
// restores every input the step reads, and warm steps are deterministic
// functions of those inputs).

import (
	"context"
	"errors"
	"fmt"
	"time"

	"geographer/internal/mpi"
	"geographer/internal/partition"
)

// RetryPolicy bounds the recovery loop of RepartitionWithRetry.
// The zero value is usable: 3 retries, 10ms base backoff doubling to a
// 1s cap, real sleeping.
type RetryPolicy struct {
	// MaxRetries is how many rollback-and-retry cycles follow a failed
	// first attempt (<=0 means 3).
	MaxRetries int
	// BaseBackoff is the pause before the first retry (<=0 means 10ms);
	// it doubles per retry up to MaxBackoff (<=0 means 1s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Sleep implements the backoff pause; tests substitute a recorder.
	// Nil means time.Sleep.
	Sleep func(time.Duration)
}

func (p RetryPolicy) normalized() RetryPolicy {
	if p.MaxRetries <= 0 {
		p.MaxRetries = 3
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 10 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = time.Second
	}
	if p.MaxBackoff < p.BaseBackoff {
		p.MaxBackoff = p.BaseBackoff
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	return p
}

// backoff returns the bounded exponential pause before retry `attempt`
// (0-based): Base·2^attempt capped at Max.
func (p RetryPolicy) backoff(attempt int) time.Duration {
	d := p.BaseBackoff
	for i := 0; i < attempt && d < p.MaxBackoff; i++ {
		d *= 2
	}
	if d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	return d
}

// RepartitionWithRetry is RepartitionIfAbove under fault tolerance: it
// checkpoints the session, runs the threshold-triggered warm step with
// every world execution cancellable through ctx, and — when the step
// aborts (a rank panic, an injected fault) — rolls the session back to
// the checkpoint, rebuilds the world through the factory installed with
// SetWorldFactory (mpi.NewWorld by default), waits out a bounded
// exponential backoff, and tries again, up to policy.MaxRetries times.
//
// Because the checkpoint restores every input the step reads and warm
// steps are deterministic, the partition a successful retry produces is
// bit-identical to what a fault-free step would have computed.
// Stats.Retries reports how many rollbacks were needed.
//
// Non-abort errors (invalid arguments, no installed partition) are
// returned immediately — retrying cannot fix semantics. A ctx
// cancellation is likewise terminal: the aborted attempt is not
// retried and the abort (wrapping the context's cause) is returned.
func (s *Session) RepartitionWithRetry(ctx context.Context, eps float64, policy RetryPolicy) (partition.P, Stats, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return partition.P{}, Stats{}, false, ErrClosed
	}
	if ctx == nil {
		ctx = context.Background()
	}
	policy = policy.normalized()

	ckpt, err := s.checkpointLocked()
	if err != nil {
		return partition.P{}, Stats{}, false, err
	}
	size := s.w.Size()
	factory := s.worldFactory
	if factory == nil {
		factory = mpi.NewWorld
	}

	retries := 0
	for {
		s.runCtx = ctx
		p, st, acted, err := s.repartitionIfAboveLocked(eps)
		s.runCtx = nil
		if err == nil {
			st.Retries = retries
			return p, st, acted, nil
		}
		if !errors.Is(err, mpi.ErrBroken) || ctx.Err() != nil || retries >= policy.MaxRetries {
			return partition.P{}, Stats{Retries: retries}, false, err
		}
		policy.Sleep(policy.backoff(retries))
		retries++
		// Roll back: decode the checkpoint into fresh state on a fresh
		// world (the aborted one is permanently poisoned, and the aborted
		// attempt may have left residents mid-update).
		restored, derr := decodeCheckpoint(ckpt)
		if derr != nil {
			return partition.P{}, Stats{Retries: retries}, false, fmt.Errorf("repart: rollback: %w", derr)
		}
		s.installLocked(factory(size), restored)
	}
}
