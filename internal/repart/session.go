package repart

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"geographer/internal/core"
	"geographer/internal/geom"
	"geographer/internal/metrics"
	"geographer/internal/mpi"
	"geographer/internal/partition"
)

// ErrClosed is returned by every Session method called after Close.
var ErrClosed = fmt.Errorf("repart: session is closed")

// Session is a long-lived partitioner for repeated repartitioning: the
// point set is scattered and ingested into per-rank resident SoA state
// (core.Resident) exactly once, and every subsequent Repartition call
// runs only the warm balanced k-means phase on the resident columns —
// no re-scatter, no SFC sort, no per-point allocations. Weight and
// coordinate deltas are applied in place with UpdateWeights and
// UpdateCoords.
//
// This is the streaming timestep shape the paper motivates geometric
// partitioners with (§1: a simulation repartitions "when the imbalance
// exceeds a threshold"): a T-step chain costs one ingest plus T warm
// k-means phases, where the one-shot Repartition chain pays the ingest
// every step.
//
// Determinism: a Session chain is bit-identical to the equivalent chain
// of one-shot Repartition calls (which are themselves implemented on
// top of Session) — warm steps reduce through internal/exact, so the
// output does not depend on rank layout, worker count, or whether the
// state was freshly ingested or resident (DESIGN.md, "Session
// invariants"; pinned by TestSessionMatchesOneShotChain).
//
// A Session serializes its own calls: concurrent use from several
// goroutines is memory-safe and each call observes a consistent state
// (in particular, a call racing Close gets a deterministic ErrClosed,
// never a partially-released resident). The simulated ranks inside one
// call still run concurrently; serialization is only across Session
// verbs.
type Session struct {
	mu sync.Mutex

	w   *mpi.World
	ps  *geom.PointSet
	k   int
	cfg core.Config

	res  []*core.Resident // per-rank resident state, indexed by rank
	prev []int32          // most recent partition (session-owned copy)

	// Pending-delta coalescing: UpdateWeights/UpdateCoords only record
	// the new values on s.ps; the per-rank resident columns are
	// refreshed lazily by flush() right before the next warm step. Any
	// number of updates between two steps therefore costs at most one
	// pass over the resident columns and one collective bounding-box
	// recompute.
	weightsDirty bool
	coordsDirty  bool

	// runCtx, when set, makes every world execution of the current verb
	// cancellable (RepartitionWithRetry installs it around each attempt).
	runCtx context.Context
	// worldFactory builds the replacement world of a retry rollback
	// (nil = mpi.NewWorld). Fault-injection drivers substitute a factory
	// that installs their FaultPlan on each fresh world.
	worldFactory func(size int) *mpi.World

	ingestSeconds float64
	lastInfo      core.Info
	closed        bool
}

// NewSession scatters ps over the simulated world w and ingests it into
// resident per-rank state. The Session takes ownership of both: w must
// not run other work between session calls, and the caller must not
// mutate ps afterwards (the facade clones caller slices before handing
// them over; UpdateWeights and UpdateCoords replace, never share, the
// stored slices).
//
// cfg follows the one-shot Repartition contract; cfg.WarmCenters must
// be unset — the session recovers centers from the previous partition
// itself on every warm step.
func NewSession(w *mpi.World, ps *geom.PointSet, k int, cfg core.Config) (*Session, error) {
	return NewSessionCtx(nil, w, ps, k, cfg)
}

// NewSessionCtx is NewSession under a context: cancelling ctx while the
// ingest runs aborts the world (the session is then unusable, like any
// broken world). A nil context behaves exactly like NewSession.
func NewSessionCtx(ctx context.Context, w *mpi.World, ps *geom.PointSet, k int, cfg core.Config) (*Session, error) {
	if err := ps.Validate(); err != nil {
		return nil, err
	}
	if ps.Len() == 0 {
		return nil, fmt.Errorf("repart: empty point set")
	}
	if len(cfg.WarmCenters) > 0 {
		return nil, fmt.Errorf("repart: cfg.WarmCenters is managed by the session; leave it unset")
	}
	if err := cfg.Validate(k); err != nil {
		return nil, err
	}
	s := &Session{
		w:      w,
		ps:     ps,
		k:      k,
		cfg:    cfg,
		res:    make([]*core.Resident, w.Size()),
		runCtx: ctx,
	}
	defer func() { s.runCtx = nil }()
	t0 := time.Now()
	if err := s.run(func(c *mpi.Comm) {
		s.res[c.Rank()] = core.Ingest(c, partition.Scatter(c, ps))
	}); err != nil {
		return nil, err
	}
	s.ingestSeconds = time.Since(t0).Seconds()
	return s, nil
}

// run executes f on the session's world, under the current verb's
// context when one is installed.
func (s *Session) run(f func(c *mpi.Comm)) error {
	if s.runCtx != nil {
		return s.w.RunCtx(s.runCtx, f)
	}
	return s.w.Run(f)
}

// SetWorldFactory installs the constructor RepartitionWithRetry uses to
// rebuild the simulated world after an abort (nil restores the default,
// mpi.NewWorld). A fault-injection harness passes a factory that
// attaches its mpi.FaultPlan to each fresh world, so scheduled faults
// keep firing — and transient ones keep disarming — across retries.
func (s *Session) SetWorldFactory(f func(size int) *mpi.World) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.worldFactory = f
}

// Len returns the number of points in the session's point set.
func (s *Session) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ps.Len()
}

// K returns the number of blocks the session partitions into.
func (s *Session) K() int { return s.k }

// IngestSeconds returns the wall time NewSession spent scattering and
// building the resident columns — the one-time cost every warm step
// amortizes (one-shot Repartition pays it on each call, reported there
// as Stats.IngestSeconds).
func (s *Session) IngestSeconds() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ingestSeconds
}

// LastInfo returns the k-means diagnostics of the most recent
// Partition or Repartition call.
func (s *Session) LastInfo() core.Info {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastInfo
}

// Blocks returns a copy of the most recent partition, or nil if no
// partition has been computed or installed yet.
func (s *Session) Blocks() []int32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.prev == nil {
		return nil
	}
	return append([]int32(nil), s.prev...)
}

// Partition computes a cold initial partition of the session's point
// set — the full pipeline including the SFC sort/redistribution
// bootstrap, bit-identical to a one-shot partition.Run with the same
// configuration — and installs it as the session's current partition.
func (s *Session) Partition() (partition.P, error) {
	return s.PartitionCtx(nil)
}

// PartitionCtx is Partition under a context: cancellation aborts the
// world mid-verb (mpi.ErrBroken). The serving layer threads each HTTP
// request's context here so a disconnected client cancels its verb. A
// nil context behaves exactly like Partition — the context never
// influences the computed partition, only whether it completes.
func (s *Session) PartitionCtx(ctx context.Context) (partition.P, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return partition.P{}, ErrClosed
	}
	restore := s.setRunCtxLocked(ctx)
	defer restore()
	bkm := core.New(s.cfg)
	p, err := partition.RunCtx(s.runCtx, s.w, s.ps, s.k, bkm)
	if err != nil {
		return partition.P{}, err
	}
	s.lastInfo = bkm.LastInfo()
	s.prev = append(s.prev[:0], p.Assign...)
	return p, nil
}

// setRunCtxLocked installs ctx as the current verb's run context (nil =
// leave the existing one in place) and returns the restorer the verb
// defers. Caller holds s.mu.
func (s *Session) setRunCtxLocked(ctx context.Context) func() {
	if ctx == nil {
		return func() {}
	}
	prev := s.runCtx
	s.runCtx = ctx
	return func() { s.runCtx = prev }
}

// SetPartition installs prev as the session's current partition without
// running the partitioner — the entry point for warm-starting from a
// partition computed elsewhere (a previous process, a checkpoint, a
// different tool). The slice is copied.
func (s *Session) SetPartition(prev []int32) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.setPartitionLocked(prev)
}

func (s *Session) setPartitionLocked(prev []int32) error {
	if s.closed {
		return ErrClosed
	}
	if err := metrics.ValidatePartition(prev, s.ps.Len(), s.k); err != nil {
		return fmt.Errorf("repart: invalid partition: %w", err)
	}
	s.prev = append(s.prev[:0], prev...)
	return nil
}

// Repartition runs one warm repartitioning step from the session's
// current partition and installs the result as the new current
// partition. A partition must exist first (Partition or SetPartition).
func (s *Session) Repartition() (partition.P, Stats, error) {
	return s.RepartitionCtx(nil)
}

// RepartitionCtx is Repartition under a context (see PartitionCtx).
func (s *Session) RepartitionCtx(ctx context.Context) (partition.P, Stats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return partition.P{}, Stats{}, ErrClosed
	}
	if s.prev == nil {
		return partition.P{}, Stats{}, fmt.Errorf("repart: no partition to warm-start from; call Partition or SetPartition first")
	}
	restore := s.setRunCtxLocked(ctx)
	defer restore()
	return s.repartitionFromLocked(s.prev)
}

// RepartitionFrom runs one warm repartitioning step seeded from an
// explicit previous assignment (migration is measured against it), and
// installs the result as the session's current partition. This is the
// primitive the one-shot Repartition driver and Session.Repartition
// share.
func (s *Session) RepartitionFrom(prev []int32) (partition.P, Stats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return partition.P{}, Stats{}, ErrClosed
	}
	return s.repartitionFromLocked(prev)
}

func (s *Session) repartitionFromLocked(prev []int32) (partition.P, Stats, error) {
	if err := s.flushLocked(); err != nil {
		return partition.P{}, Stats{}, err
	}
	centers, err := RecoverCenters(s.ps, prev, s.k)
	if err != nil {
		return partition.P{}, Stats{}, err
	}
	cfg := s.cfg
	cfg.WarmCenters = centers
	if err := cfg.Validate(s.k); err != nil {
		return partition.P{}, Stats{}, err
	}

	bkm := core.New(cfg)
	out := partition.New(s.ps.Len(), s.k)
	for i := range out.Assign {
		out.Assign[i] = -1
	}
	runErr := s.run(func(c *mpi.Comm) {
		ids, blocks, err := bkm.PartitionResident(c, s.res[c.Rank()], s.k)
		if err != nil {
			panic(fmt.Sprintf("%s: %v", bkm.Name(), err))
		}
		for i, id := range ids {
			out.Assign[id] = blocks[i] // ids are globally disjoint
		}
	})
	if runErr != nil {
		return partition.P{}, Stats{}, runErr
	}
	for i, b := range out.Assign {
		if b < 0 {
			return partition.P{}, Stats{}, fmt.Errorf("repart: point %d left unassigned", i)
		}
	}

	st := Stats{
		TotalWeight: s.ps.TotalWeight(),
		Centers:     centers,
		Info:        bkm.LastInfo(),
	}
	st.DistCalcs = st.Info.DistCalcs
	st.HamerlySkips = st.Info.HamerlySkips
	st.BoundaryFrac = st.Info.BoundaryFrac
	st.Incremental = st.Info.CarriedBounds
	if st.MigratedWeight, st.MigratedPoints, err = metrics.MigrationVolume(s.ps, prev, out.Assign); err != nil {
		return partition.P{}, Stats{}, err
	}
	s.lastInfo = st.Info
	s.prev = append(s.prev[:0], out.Assign...)
	return out, st, nil
}

// UpdateWeights replaces the point weights (nil = unit weights) without
// re-scattering. The call is validation plus one local copy; the
// per-rank resident weight columns are refreshed lazily before the next
// warm step, so several weight updates between two repartitions coalesce
// into a single resident pass. The next Repartition balances against
// the new weights.
func (s *Session) UpdateWeights(weights []float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if weights != nil && len(weights) != s.ps.Len() {
		return fmt.Errorf("repart: %d weights for %d points", len(weights), s.ps.Len())
	}
	if weights == nil {
		s.ps.Weight = nil
	} else {
		for i, w := range weights {
			if w < 0 {
				return fmt.Errorf("repart: negative weight %g at point %d", w, i)
			}
		}
		s.ps.Weight = append([]float64(nil), weights...)
	}
	s.weightsDirty = true
	return nil
}

// UpdateCoords replaces the point coordinates (flat, len = n·dim)
// without re-scattering. Like UpdateWeights the call only records the
// new values; the resident columns — and the collective bounding-box
// recompute the coordinates demand — are applied lazily before the next
// warm step, at most once regardless of how many updates queued. Point
// identity (and therefore the meaning of the current partition) is
// preserved — this models points that moved, not a new point set.
func (s *Session) UpdateCoords(coords []float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if len(coords) != s.ps.Len()*s.ps.Dim {
		return fmt.Errorf("repart: %d coordinates for %d points in %dD", len(coords), s.ps.Len(), s.ps.Dim)
	}
	s.ps = &geom.PointSet{
		Dim:    s.ps.Dim,
		Coords: append([]float64(nil), coords...),
		Weight: s.ps.Weight,
	}
	s.coordsDirty = true
	return nil
}

// flushLocked applies the pending weight/coordinate deltas to the
// per-rank resident state: one pass over the resident columns and —
// only when coordinates changed — one collective bounding-box recompute
// (which also drops the carried k-means bounds; moved points invalidate
// them). Weight-only deltas are communication-free and keep the carried
// bounds.
func (s *Session) flushLocked() error {
	if s.coordsDirty {
		err := s.run(func(c *mpi.Comm) {
			r := s.res[c.Rank()]
			r.SetCoordsGlobal(s.ps.Coords)
			if s.weightsDirty {
				r.SetWeightsGlobal(s.ps.Weight)
			}
			r.RecomputeBounds(c)
		})
		if err != nil {
			return err
		}
	} else if s.weightsDirty {
		for _, r := range s.res {
			r.SetWeightsGlobal(s.ps.Weight)
		}
	}
	s.weightsDirty, s.coordsDirty = false, false
	return nil
}

// Imbalance measures the imbalance of the session's current partition
// under the current (possibly just-updated) weights and target
// fractions: max_b weight(b)/target(b) − 1. Purely local — the session
// holds the global point set — and independent of any pending
// coordinate delta (coordinates don't enter block weights). Errors when
// no partition is installed.
func (s *Session) Imbalance() (float64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	return s.imbalanceLocked()
}

func (s *Session) imbalanceLocked() (float64, error) {
	if s.prev == nil {
		return 0, fmt.Errorf("repart: no partition to measure; call Partition or SetPartition first")
	}
	w := metrics.BlockWeights(s.ps, s.prev, s.k)
	total := 0.0
	for _, x := range w {
		total += x
	}
	targets, err := partition.Targets(total, s.k, s.cfg.TargetFractions)
	if err != nil {
		return 0, err
	}
	imb := 0.0
	for b, wb := range w {
		if targets[b] <= 0 {
			continue
		}
		if r := wb/targets[b] - 1; r > imb {
			imb = r
		}
	}
	return imb, nil
}

// RepartitionIfAbove is the paper's §1 trigger verbatim — repartition
// "when the imbalance exceeds a threshold": it measures the imbalance
// of the current partition under the current weights and runs a warm
// repartitioning step only when that exceeds eps, reporting whether it
// acted. When it skips, the pending weight/coordinate deltas stay
// queued (measuring costs no resident work at all) and the current
// partition remains installed; the measured imbalance is returned in
// Stats.PreImbalance either way.
func (s *Session) RepartitionIfAbove(eps float64) (partition.P, Stats, bool, error) {
	return s.RepartitionIfAboveCtx(nil, eps)
}

// RepartitionIfAboveCtx is RepartitionIfAbove under a context (see
// PartitionCtx).
func (s *Session) RepartitionIfAboveCtx(ctx context.Context, eps float64) (partition.P, Stats, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return partition.P{}, Stats{}, false, ErrClosed
	}
	restore := s.setRunCtxLocked(ctx)
	defer restore()
	return s.repartitionIfAboveLocked(eps)
}

func (s *Session) repartitionIfAboveLocked(eps float64) (partition.P, Stats, bool, error) {
	if s.prev == nil {
		return partition.P{}, Stats{}, false, fmt.Errorf("repart: no partition to warm-start from; call Partition or SetPartition first")
	}
	if eps < 0 || math.IsNaN(eps) {
		return partition.P{}, Stats{}, false, fmt.Errorf("repart: threshold eps=%g", eps)
	}
	imb, err := s.imbalanceLocked()
	if err != nil {
		return partition.P{}, Stats{}, false, err
	}
	if imb <= eps {
		return partition.P{}, Stats{PreImbalance: imb}, false, nil
	}
	p, st, err := s.repartitionFromLocked(s.prev)
	st.PreImbalance = imb
	return p, st, err == nil, err
}

// Close releases the resident state. Closing an already-closed session
// is a no-op. After Close, every mutating method (Partition,
// Repartition, RepartitionFrom, RepartitionIfAbove, SetPartition,
// UpdateWeights, UpdateCoords, Checkpoint, RepartitionWithRetry) and
// Imbalance return ErrClosed; the read-only accessors (Len, K,
// IngestSeconds, LastInfo, Blocks) keep answering from what remains.
// Close serializes against in-flight calls: it waits for the running
// verb to finish rather than releasing state out from under it.
func (s *Session) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	s.res = nil
	s.prev = nil
	return nil
}
