package repart

// Header-robustness tests for ReadCheckpointInfo: the serving layer
// sizes worlds from spilled checkpoints it did not produce, so the
// header decode must turn every malformed input — truncations at each
// field, flipped magic/version, absurd shape values — into a typed
// error, never a panic and never a nonsense CheckpointInfo.

import (
	"encoding/binary"
	"errors"
	"testing"

	"geographer/internal/core"
	"geographer/internal/geom"
	"geographer/internal/mesh"
	"geographer/internal/mpi"
)

// sessionHeaderLen is the byte length of the checkpoint header
// ReadCheckpointInfo consumes: magic, version, K, P, Dim (u32 each)
// plus N (u64).
const sessionHeaderLen = 5*4 + 8

// validCheckpoint builds one real checkpoint to mutate.
func validCheckpoint(t *testing.T) []byte {
	t.Helper()
	m := sessionTestMesh(t, 600)
	cfg := core.DefaultConfig()
	cfg.Seed = 1
	s := buildWarmSession(t, m, 4, 2, 1, cfg)
	defer s.Close()
	ckpt, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	return ckpt
}

func TestReadCheckpointInfoTruncations(t *testing.T) {
	ckpt := validCheckpoint(t)
	info, err := ReadCheckpointInfo(ckpt)
	if err != nil {
		t.Fatalf("valid checkpoint rejected: %v", err)
	}
	if info.K != 4 || info.P != 2 || info.N != 600 {
		t.Fatalf("header misread: %+v", info)
	}

	// Every prefix strictly shorter than the header must fail typed —
	// this walks through every field boundary (0, 4, 8, 12, 16, 20) and
	// every mid-field cut.
	for cut := 0; cut < sessionHeaderLen; cut++ {
		_, err := ReadCheckpointInfo(ckpt[:cut])
		if err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
		if !errors.Is(err, core.ErrCheckpointCorrupt) && !errors.Is(err, core.ErrCheckpointVersion) {
			t.Fatalf("truncation at %d: untyped error %v", cut, err)
		}
	}
	// The full header alone (payload stripped) is sufficient for the
	// header read.
	if _, err := ReadCheckpointInfo(ckpt[:sessionHeaderLen]); err != nil {
		t.Fatalf("bare header rejected: %v", err)
	}
}

func TestReadCheckpointInfoMutations(t *testing.T) {
	ckpt := validCheckpoint(t)
	mutate := func(f func(b []byte)) []byte {
		b := append([]byte(nil), ckpt...)
		f(b)
		return b
	}
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, core.ErrCheckpointCorrupt},
		{"bad magic", mutate(func(b []byte) { b[0] ^= 0xFF }), core.ErrCheckpointCorrupt},
		{"future version", mutate(func(b []byte) { binary.LittleEndian.PutUint32(b[4:], 99) }), core.ErrCheckpointVersion},
		{"zero k", mutate(func(b []byte) { binary.LittleEndian.PutUint32(b[8:], 0) }), core.ErrCheckpointCorrupt},
		{"zero p", mutate(func(b []byte) { binary.LittleEndian.PutUint32(b[12:], 0) }), core.ErrCheckpointCorrupt},
		{"absurd dim", mutate(func(b []byte) { binary.LittleEndian.PutUint32(b[16:], 1<<30) }), core.ErrCheckpointCorrupt},
		{"zero n", mutate(func(b []byte) { binary.LittleEndian.PutUint64(b[20:], 0) }), core.ErrCheckpointCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadCheckpointInfo(tc.data); !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
		})
	}
}

// FuzzReadCheckpointInfo: arbitrary bytes never panic the header read;
// failures are always one of the two typed sentinels, and successes
// report a shape the validation range allows.
func FuzzReadCheckpointInfo(f *testing.F) {
	m, err := mesh.GenRefinedTri(600, 42)
	if err != nil {
		f.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Seed = 1
	ps0 := &geom.PointSet{Dim: m.Points.Dim, Coords: m.Points.Coords, Weight: testWeights(m, 0)}
	s, err := NewSession(mpi.NewWorld(2), ps0.Clone(), 4, cfg)
	if err != nil {
		f.Fatal(err)
	}
	if _, err := s.Partition(); err != nil {
		f.Fatal(err)
	}
	ckpt, err := s.Checkpoint()
	s.Close()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(append([]byte(nil), ckpt...))
	for cut := 0; cut <= sessionHeaderLen; cut += 4 {
		f.Add(append([]byte(nil), ckpt[:cut]...))
	}
	f.Add(append(append([]byte(nil), ckpt...), 0xDE, 0xAD))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		info, err := ReadCheckpointInfo(data)
		if err != nil {
			if !errors.Is(err, core.ErrCheckpointCorrupt) && !errors.Is(err, core.ErrCheckpointVersion) {
				t.Fatalf("untyped error: %v", err)
			}
			return
		}
		if info.K < 1 || info.P < 1 || info.Dim < 1 || info.Dim > 4096 || info.N < 1 {
			t.Fatalf("accepted out-of-range header: %+v", info)
		}
	})
}
