package repart

import (
	"math"
	"testing"

	"geographer/internal/core"
	"geographer/internal/mpi"
)

// TestWarmRepartitionHighRankBitIdentical stretches the warm path's
// rank-layout invariance to the scale the soak experiment runs at: the
// partition computed by thousands of simulated ranks must be
// bit-identical to a two-rank reference. At p=4096 most ranks hold one
// or two points and many exact-reduction windows are empty, which is
// exactly the regime where a sparse-window or rendezvous-fold bug in
// the collectives would first show. p=4096 is skipped under -short; the
// always-on p=1024 case keeps the invariant pinned in quick runs.
func TestWarmRepartitionHighRankBitIdentical(t *testing.T) {
	const n, k = 6000, 16
	ps := randomPoints(n, 2, 11)
	prev := scratchPartition(t, ps, k, 4)
	for i := range ps.Weight {
		ps.Weight[i] *= 1 + 0.3*math.Sin(float64(i)*0.37)
	}

	cfg := core.DefaultConfig()
	ref, _, err := Repartition(mpi.NewWorld(2), ps, prev.Assign, k, cfg)
	if err != nil {
		t.Fatal(err)
	}

	procs := []int{1024}
	if !testing.Short() {
		procs = append(procs, 4096)
	}
	for _, p := range procs {
		got, st, err := Repartition(mpi.NewWorld(p), ps, prev.Assign, k, cfg)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if st.Info.SortSeconds != 0 {
			t.Errorf("p=%d: warm start ran the sort phase", p)
		}
		for i := range ref.Assign {
			if ref.Assign[i] != got.Assign[i] {
				t.Fatalf("p=%d: assignment diverges at point %d (%d vs %d)",
					p, i, ref.Assign[i], got.Assign[i])
			}
		}
	}
}

// TestSessionHighRankWarmSteps runs a short streaming session — carried
// bounds on — at p=1024 against a p=2 reference, step by step. This
// covers what the one-shot test above cannot: the incremental path's
// cross-step state (carried bounds, influence rescale, boundary
// worklists) interacting with the windowed exact reductions at a rank
// count where nearly every rank's touched-row window differs.
func TestSessionHighRankWarmSteps(t *testing.T) {
	const n, k, steps = 4000, 8, 3
	ps := randomPoints(n, 2, 17)
	prev := scratchPartition(t, ps, k, 4)
	cfg := core.DefaultConfig()

	// The session takes ownership of the point set it is handed and
	// replaces its weight slice on UpdateWeights, so each run gets a
	// clone and the weight schedule derives from a private baseline.
	baseW := append([]float64(nil), ps.Weight...)
	weightsAt := func(step int) []float64 {
		w := make([]float64, n)
		for i := range w {
			w[i] = baseW[i] * (1 + 0.3*math.Sin(float64(i)*0.37+float64(step)))
		}
		return w
	}

	run := func(p int) [][]int32 {
		sess, err := NewSession(mpi.NewWorld(p), ps.Clone(), k, cfg)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		defer sess.Close()
		if err := sess.SetPartition(prev.Assign); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		out := make([][]int32, steps)
		for s := 0; s < steps; s++ {
			if err := sess.UpdateWeights(weightsAt(s)); err != nil {
				t.Fatalf("p=%d step %d: %v", p, s, err)
			}
			part, _, err := sess.Repartition()
			if err != nil {
				t.Fatalf("p=%d step %d: %v", p, s, err)
			}
			out[s] = part.Assign
		}
		return out
	}

	ref := run(2)
	got := run(1024)
	for s := range ref {
		for i := range ref[s] {
			if ref[s][i] != got[s][i] {
				t.Fatalf("step %d: assignment diverges at point %d (%d vs %d)",
					s, i, ref[s][i], got[s][i])
			}
		}
	}
}
