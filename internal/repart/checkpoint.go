package repart

// Session checkpoint/restore: a serialized session captures the global
// point set (current coordinates and weights, including any deltas not
// yet flushed to the residents), the installed partition, and every
// rank's resident record — the carried incremental bounds included — so
// a restored session's next warm step is bit-identical to the step an
// uninterrupted session would have run (DESIGN.md, "Fault-tolerance
// invariants"). The configuration is NOT embedded: the caller passes
// the same core.Config to NewSessionFromCheckpoint, exactly as it did
// to NewSession (configs hold policy, checkpoints hold state).

import (
	"fmt"

	"geographer/internal/core"
	"geographer/internal/geom"
	"geographer/internal/mpi"
)

// SessionCheckpointVersion is the current session checkpoint format.
const SessionCheckpointVersion = 1

// sessionMagic guards the checkpoint header ("GEOS").
const sessionMagic = 0x47454F53

// CheckpointInfo summarizes a checkpoint header without decoding the
// payload — enough for a caller to build a matching world (P ranks)
// before calling NewSessionFromCheckpoint.
type CheckpointInfo struct {
	Version int
	K       int // number of blocks
	P       int // world size at checkpoint time
	Dim     int // coordinate dimension
	N       int // number of points
}

// ReadCheckpointInfo decodes just the header of a session checkpoint.
func ReadCheckpointInfo(data []byte) (CheckpointInfo, error) {
	d := core.NewSnapDecoder(data)
	info, err := readHeader(d)
	if err != nil {
		return CheckpointInfo{}, err
	}
	return info, nil
}

func readHeader(d *core.SnapDecoder) (CheckpointInfo, error) {
	if m := d.U32(); d.Err() == nil && m != sessionMagic {
		return CheckpointInfo{}, fmt.Errorf("%w: bad session magic %#x", core.ErrCheckpointCorrupt, m)
	}
	v := d.U32()
	if d.Err() == nil && v != SessionCheckpointVersion {
		return CheckpointInfo{}, fmt.Errorf("%w: session checkpoint v%d, want v%d", core.ErrCheckpointVersion, v, SessionCheckpointVersion)
	}
	info := CheckpointInfo{
		Version: int(v),
		K:       int(d.U32()),
		P:       int(d.U32()),
		Dim:     int(d.U32()),
		N:       int(d.U64()),
	}
	if err := d.Err(); err != nil {
		return CheckpointInfo{}, err
	}
	if info.K < 1 || info.P < 1 || info.Dim < 1 || info.Dim > 4096 || info.N < 1 {
		return CheckpointInfo{}, fmt.Errorf("%w: header k=%d p=%d dim=%d n=%d",
			core.ErrCheckpointCorrupt, info.K, info.P, info.Dim, info.N)
	}
	return info, nil
}

// Checkpoint serializes the session's complete restorable state. Purely
// local — no collectives, no mutation — so it can be taken between any
// two verbs, including while weight/coordinate deltas are pending (the
// pending flags travel with the data and the restored session flushes
// them exactly as this one would have).
func (s *Session) Checkpoint() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.checkpointLocked()
}

func (s *Session) checkpointLocked() ([]byte, error) {
	if s.closed {
		return nil, ErrClosed
	}
	e := core.NewSnapEncoder()
	e.U32(sessionMagic)
	e.U32(SessionCheckpointVersion)
	e.U32(uint32(s.k))
	e.U32(uint32(s.w.Size()))
	e.U32(uint32(s.ps.Dim))
	e.U64(uint64(s.ps.Len()))
	e.F64s(s.ps.Coords)
	e.Bool(s.ps.Weight != nil)
	if s.ps.Weight != nil {
		e.F64s(s.ps.Weight)
	}
	e.Bool(s.prev != nil)
	if s.prev != nil {
		e.I32s(s.prev)
	}
	e.Bool(s.weightsDirty)
	e.Bool(s.coordsDirty)
	for _, r := range s.res {
		r.Snapshot(e)
	}
	return e.Bytes(), nil
}

// decoded checkpoint payload, shared by NewSessionFromCheckpoint and
// the retry driver's rollback.
type ckptState struct {
	info         CheckpointInfo
	ps           *geom.PointSet
	prev         []int32
	weightsDirty bool
	coordsDirty  bool
	res          []*core.Resident
}

func decodeCheckpoint(data []byte) (*ckptState, error) {
	d := core.NewSnapDecoder(data)
	info, err := readHeader(d)
	if err != nil {
		return nil, err
	}
	st := &ckptState{info: info}
	coords := d.F64s()
	var weights []float64
	if d.Bool() {
		weights = d.F64s()
	}
	var prev []int32
	if d.Bool() {
		prev = d.I32s()
	}
	st.weightsDirty = d.Bool()
	st.coordsDirty = d.Bool()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if len(coords) != info.N*info.Dim {
		return nil, fmt.Errorf("%w: %d coordinates for n=%d dim=%d",
			core.ErrCheckpointCorrupt, len(coords), info.N, info.Dim)
	}
	if weights != nil && len(weights) != info.N {
		return nil, fmt.Errorf("%w: %d weights for %d points", core.ErrCheckpointCorrupt, len(weights), info.N)
	}
	if prev != nil {
		if len(prev) != info.N {
			return nil, fmt.Errorf("%w: partition of %d entries for %d points", core.ErrCheckpointCorrupt, len(prev), info.N)
		}
		for i, b := range prev {
			if b < 0 || int(b) >= info.K {
				return nil, fmt.Errorf("%w: block %d at point %d for k=%d", core.ErrCheckpointCorrupt, b, i, info.K)
			}
		}
	}
	st.ps = &geom.PointSet{Dim: info.Dim, Coords: coords, Weight: weights}
	st.prev = prev

	st.res = make([]*core.Resident, info.P)
	total := 0
	for r := range st.res {
		st.res[r], err = core.RestoreResident(d)
		if err != nil {
			return nil, fmt.Errorf("rank %d: %w", r, err)
		}
		if st.res[r].Dim() != info.Dim {
			return nil, fmt.Errorf("%w: rank %d resident dim %d, session dim %d",
				core.ErrCheckpointCorrupt, r, st.res[r].Dim(), info.Dim)
		}
		total += st.res[r].Len()
	}
	if total != info.N {
		return nil, fmt.Errorf("%w: residents hold %d points, header says %d", core.ErrCheckpointCorrupt, total, info.N)
	}
	if d.Len() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", core.ErrCheckpointCorrupt, d.Len())
	}
	return st, nil
}

// install replaces the session's restorable state with the decoded
// checkpoint. Caller holds s.mu; w must match the checkpoint's size.
func (s *Session) installLocked(w *mpi.World, st *ckptState) {
	s.w = w
	s.ps = st.ps
	s.k = st.info.K
	s.prev = st.prev
	s.weightsDirty = st.weightsDirty
	s.coordsDirty = st.coordsDirty
	s.res = st.res
}

// NewSessionFromCheckpoint rebuilds a session from Checkpoint bytes on
// the world w, which must have the checkpoint's rank count (use
// ReadCheckpointInfo to size it). cfg must be the configuration the
// checkpointed session ran with; with the same cfg, the restored
// session's next warm step is bit-identical to the step the original
// session would have run — including taking the incremental
// carried-bounds fast path, which travels in the per-rank records.
func NewSessionFromCheckpoint(w *mpi.World, data []byte, cfg core.Config) (*Session, error) {
	if len(cfg.WarmCenters) > 0 {
		return nil, fmt.Errorf("repart: cfg.WarmCenters is managed by the session; leave it unset")
	}
	st, err := decodeCheckpoint(data)
	if err != nil {
		return nil, fmt.Errorf("repart: restore: %w", err)
	}
	if err := cfg.Validate(st.info.K); err != nil {
		return nil, err
	}
	if w.Size() != st.info.P {
		return nil, fmt.Errorf("repart: restore onto %d ranks, checkpoint has %d (size the world from ReadCheckpointInfo)",
			w.Size(), st.info.P)
	}
	s := &Session{cfg: cfg}
	s.installLocked(w, st)
	return s, nil
}
