package repart

import (
	"math"
	"testing"

	"geographer/internal/core"
	"geographer/internal/geom"
	"geographer/internal/mesh"
	"geographer/internal/mpi"
	"geographer/internal/partition"
)

// BenchmarkRepartition measures one warm-start repartitioning step on
// the facade workload shape (refined 2D mesh, k=16, p=4) under a ±40%
// weight perturbation, next to BenchmarkScratchRepartition for the
// from-scratch comparison the warm start is meant to beat.
func BenchmarkRepartition(b *testing.B) {
	m, err := mesh.GenRefinedTri(20000, 42)
	if err != nil {
		b.Fatal(err)
	}
	const k, p = 16, 4
	cfg := core.DefaultConfig()
	cfg.Seed = 1
	prev, err := partition.Run(mpi.NewWorld(p), m.Points, k, core.New(cfg))
	if err != nil {
		b.Fatal(err)
	}
	ps := m.Points.Clone()
	ps.Weight = make([]float64, ps.Len())
	for i := range ps.Weight {
		x := ps.Coords[i*ps.Dim]
		ps.Weight[i] = 1 + 0.4*math.Sin(0.08*x+1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Repartition(mpi.NewWorld(p), ps, prev.Assign, k, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSessionSteps drives alternating-load warm steps on one session
// and reports the mean boundary fraction and per-step distance
// evaluations next to ns/op — the shape BenchmarkSessionRepartition and
// BenchmarkSessionRepartitionIncremental share.
func benchSessionSteps(b *testing.B, incremental bool) {
	m, err := mesh.GenRefinedTri(20000, 42)
	if err != nil {
		b.Fatal(err)
	}
	const k, p = 16, 4
	cfg := core.DefaultConfig()
	cfg.Seed = 1
	cfg.Incremental = incremental
	weightsAt := func(t int) []float64 {
		w := make([]float64, m.Points.Len())
		for i := range w {
			x := m.Points.Coords[i*m.Points.Dim]
			w[i] = 1 + 0.4*math.Sin(0.08*x+0.9*float64(t))
		}
		return w
	}
	sess, err := NewSession(mpi.NewWorld(p), &geom.PointSet{
		Dim: m.Points.Dim, Coords: m.Points.Coords, Weight: weightsAt(0),
	}, k, cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.Partition(); err != nil {
		b.Fatal(err)
	}
	// Two alternating load states keep every iteration a real
	// (deterministic) warm step instead of a converged no-op; a warm-up
	// step lets the incremental path start from carried bounds.
	wA, wB := weightsAt(1), weightsAt(2)
	if err := sess.UpdateWeights(wA); err != nil {
		b.Fatal(err)
	}
	if _, _, err := sess.Repartition(); err != nil {
		b.Fatal(err)
	}
	var boundary float64
	var dist int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := wB
		if i%2 == 1 {
			w = wA
		}
		if err := sess.UpdateWeights(w); err != nil {
			b.Fatal(err)
		}
		_, st, err := sess.Repartition()
		if err != nil {
			b.Fatal(err)
		}
		boundary += st.BoundaryFrac
		dist += st.DistCalcs
	}
	b.ReportMetric(boundary/float64(b.N), "boundary_frac")
	b.ReportMetric(float64(dist)/float64(b.N), "dist/op")
}

// BenchmarkSessionRepartition measures one warm streaming step on a
// long-lived Session with the cross-step bound carrying disabled — the
// bounds-reset warm path, the baseline the incremental variant below is
// measured against. Compare BenchmarkRepartition, which additionally
// pays scatter + ingest on every step, and BenchmarkScratchRepartition,
// which pays the full cold pipeline.
func BenchmarkSessionRepartition(b *testing.B) {
	benchSessionSteps(b, false)
}

// BenchmarkSessionRepartitionIncremental is the same warm streaming
// step with Config.Incremental on (the default): bounds carried across
// steps, first pass over the boundary worklist only. Reported
// boundary_frac is the mean fraction of points per step whose corrected
// bounds crossed; dist/op the mean distance evaluations per step.
func BenchmarkSessionRepartitionIncremental(b *testing.B) {
	benchSessionSteps(b, true)
}

// BenchmarkScratchRepartition is the from-scratch baseline for
// BenchmarkRepartition: a full Partition (SFC keys + sort +
// redistribution + cold k-means) on the identical perturbed input.
func BenchmarkScratchRepartition(b *testing.B) {
	m, err := mesh.GenRefinedTri(20000, 42)
	if err != nil {
		b.Fatal(err)
	}
	const k, p = 16, 4
	cfg := core.DefaultConfig()
	cfg.Seed = 1
	ps := m.Points.Clone()
	ps.Weight = make([]float64, ps.Len())
	for i := range ps.Weight {
		x := ps.Coords[i*ps.Dim]
		ps.Weight[i] = 1 + 0.4*math.Sin(0.08*x+1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := partition.Run(mpi.NewWorld(p), ps, k, core.New(cfg)); err != nil {
			b.Fatal(err)
		}
	}
}
