// Package repart implements warm-start repartitioning: re-running the
// balanced k-means of internal/core on a point set that already carries
// a block assignment, seeded from that assignment's centers instead of
// the space-filling-curve bootstrap.
//
// This is the dynamic-workload scenario the paper motivates geometric
// partitioners with (§1: the 2.5D climate simulation re-extends its
// mesh "during the simulation" as load evolves): a simulation
// repartitions repeatedly, and the previous partition's centers are a
// far better seed than a fresh SFC bootstrap — the k-means converges in
// few iterations, the expensive ingest phase (Hilbert keys, global
// sort, redistribution, §4.1) is skipped entirely, and because the new
// partition grows out of the old one, far fewer points change block.
// The weight of the points that do change block is the migration
// volume, the repartitioning cost measure of the literature (Buluç et
// al., arXiv 1311.3144 §5; Sasidharan, arXiv 2503.02185), reported here
// next to the usual cut/imbalance metrics.
package repart

import (
	"fmt"

	"geographer/internal/core"
	"geographer/internal/geom"
	"geographer/internal/metrics"
	"geographer/internal/mpi"
	"geographer/internal/partition"
)

// Stats reports what one Repartition call did.
type Stats struct {
	// MigratedWeight is the total weight of points whose block changed
	// relative to the previous assignment; MigratedPoints counts them.
	MigratedWeight float64
	MigratedPoints int
	// TotalWeight is the weight of the whole point set, so
	// MigratedWeight/TotalWeight is the migrated fraction.
	TotalWeight float64
	// Centers holds the seed centers recovered from the previous
	// assignment (diagnostics; flat, length k·dim).
	Centers []float64
	// Info carries the k-means diagnostics of the run.
	Info core.Info
	// IngestSeconds is the wall time spent scattering the points and
	// building the resident SoA columns before the warm k-means could
	// run. A one-shot Repartition pays it on every call; a Session pays
	// it once at construction (Session.IngestSeconds) and its warm steps
	// report 0 here.
	IngestSeconds float64

	// Observability of the incremental warm path (core.Config.
	// Incremental; duplicated out of Info so the facade and the stream
	// experiment read one flat surface). DistCalcs and HamerlySkips are
	// the step's global distance-evaluation and bound-skip counts;
	// Incremental reports whether this step reused the previous step's
	// carried bounds on every rank, and BoundaryFrac the fraction of
	// points its first assignment pass had to examine (1 when not
	// incremental).
	DistCalcs    int64
	HamerlySkips int64
	BoundaryFrac float64
	Incremental  bool

	// PreImbalance is the imbalance of the previous partition under the
	// current weights, measured before the step ran. Only
	// RepartitionIfAbove fills it (it is the quantity the eps threshold
	// is tested against); plain Repartition leaves it 0.
	PreImbalance float64

	// Retries counts the rollback-and-retry cycles RepartitionWithRetry
	// needed before this step succeeded (0 = first attempt worked; other
	// drivers always leave it 0).
	Retries int
}

// RecoverCenters computes the warm-start seed centers from a previous
// assignment: the weighted mean of each block's points. The pass runs
// in global index order, so the recovered centers are a pure function
// of the input — independent of rank and worker counts.
//
// Blocks that became degenerate keep deterministic fallbacks: a block
// whose points all have zero weight uses the unweighted mean, and an
// empty block is re-seeded at a block-specific position on the bounding
// box diagonal (distinct per block, so no two recovered centers
// coincide and tie-breaking stays order-independent).
func RecoverCenters(ps *geom.PointSet, prev []int32, k int) ([]float64, error) {
	n := ps.Len()
	if n == 0 {
		return nil, fmt.Errorf("repart: empty point set")
	}
	if err := metrics.ValidatePartition(prev, n, k); err != nil {
		return nil, fmt.Errorf("repart: invalid previous assignment: %w", err)
	}

	dim := ps.Dim
	wSum := make([]float64, k)
	count := make([]int64, k)
	wMean := make([]float64, k*dim) // Σ w·x per block
	uMean := make([]float64, k*dim) // Σ x per block (zero-weight fallback)
	bmin := make([]float64, dim)
	bmax := make([]float64, dim)
	geom.FlatBoxInit(bmin, bmax)
	for i := 0; i < n; i++ {
		b := int(prev[i])
		x := ps.Coords[i*dim : (i+1)*dim]
		w := ps.W(i)
		count[b]++
		wSum[b] += w
		base := b * dim
		for d := 0; d < dim; d++ {
			wMean[base+d] += w * x[d]
			uMean[base+d] += x[d]
			if x[d] < bmin[d] {
				bmin[d] = x[d]
			}
			if x[d] > bmax[d] {
				bmax[d] = x[d]
			}
		}
	}

	centers := make([]float64, k*dim)
	for b := 0; b < k; b++ {
		base := b * dim
		switch {
		case wSum[b] > 0:
			for d := 0; d < dim; d++ {
				centers[base+d] = wMean[base+d] / wSum[b]
			}
		case count[b] > 0:
			for d := 0; d < dim; d++ {
				centers[base+d] = uMean[base+d] / float64(count[b])
			}
		default:
			// Empty block: spread along the global bounding box diagonal
			// at a block-specific offset.
			t := (float64(b) + 0.5) / float64(k)
			for d := 0; d < dim; d++ {
				centers[base+d] = bmin[d] + t*(bmax[d]-bmin[d])
			}
		}
	}
	return centers, nil
}

// Repartition re-partitions ps into k blocks over world w, warm-started
// from prev: the seed centers are recovered from prev by RecoverCenters
// and the balanced k-means runs with cfg on the warm path of
// internal/core (no SFC sort/redistribution; exact, rank-layout-
// independent reductions). Any WarmCenters already present in cfg are
// replaced. The returned stats carry the migration volume against prev.
//
// This one-shot driver is a single-step Session: it ingests ps, runs
// one warm step from prev, and releases the resident state — so a
// chain of Repartition calls and a Session chain over the same inputs
// produce bit-identical partitions, and the only difference is that
// the Session pays the ingest once (compare Stats.IngestSeconds).
func Repartition(w *mpi.World, ps *geom.PointSet, prev []int32, k int, cfg core.Config) (partition.P, Stats, error) {
	cfg.WarmCenters = nil // the session recovers centers from prev itself
	s, err := NewSession(w, ps, k, cfg)
	if err != nil {
		return partition.P{}, Stats{}, err
	}
	defer s.Close()
	p, st, err := s.RepartitionFrom(prev)
	if err != nil {
		return partition.P{}, Stats{}, err
	}
	st.IngestSeconds = s.IngestSeconds()
	return p, st, nil
}
