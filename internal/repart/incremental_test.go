package repart

import (
	"fmt"
	"math"
	"testing"

	"geographer/internal/core"
	"geographer/internal/geom"
	"geographer/internal/mesh"
	"geographer/internal/mpi"
	"geographer/internal/partition"
)

// incrementalTestMesh returns the dim-specific differential workload.
func incrementalTestMesh(t *testing.T, dim int) *mesh.Mesh {
	t.Helper()
	var m *mesh.Mesh
	var err error
	if dim == 3 {
		m, err = mesh.GenDelaunay3D(1500, 42)
	} else {
		m, err = mesh.GenRefinedTri(2500, 42)
	}
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// chainStep is what one step of the differential chain records.
type chainStep struct {
	assign         []int32
	migratedWeight float64
	migratedPoints int
	incremental    bool
}

// runIncrementalChain drives one session through the shared scenario:
// cold partition, two perturbed-weight warm steps (the second is the
// first that can carry bounds), a coordinate drift (which must drop
// carried bounds), and a final perturbed-weight step (which may carry
// again).
func runIncrementalChain(t *testing.T, m *mesh.Mesh, p, workers int, incremental bool) []chainStep {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Seed = 1
	cfg.Workers = workers
	cfg.Incremental = incremental

	ps0 := &geom.PointSet{Dim: m.Points.Dim, Coords: m.Points.Coords, Weight: testWeights(m, 0)}
	sess, err := NewSession(mpi.NewWorld(p), ps0.Clone(), 8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	var out []chainStep
	initial, err := sess.Partition()
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, chainStep{assign: append([]int32(nil), initial.Assign...)})

	record := func(pp partition.P, st Stats) {
		out = append(out, chainStep{
			assign:         append([]int32(nil), pp.Assign...),
			migratedWeight: st.MigratedWeight,
			migratedPoints: st.MigratedPoints,
			incremental:    st.Incremental,
		})
	}

	for step := 1; step <= 2; step++ {
		if err := sess.UpdateWeights(testWeights(m, step)); err != nil {
			t.Fatal(err)
		}
		pp, st, err := sess.Repartition()
		if err != nil {
			t.Fatalf("warm step %d: %v", step, err)
		}
		record(pp, st)
	}

	// Points drift: carried bounds relate the old positions to the
	// centers and must be dropped.
	moved := append([]float64(nil), m.Points.Coords...)
	for i := range moved {
		moved[i] += 0.01 * math.Sin(float64(i))
	}
	if err := sess.UpdateCoords(moved); err != nil {
		t.Fatal(err)
	}
	pp, st, err := sess.Repartition()
	if err != nil {
		t.Fatalf("post-UpdateCoords step: %v", err)
	}
	if st.Incremental {
		t.Errorf("p=%d workers=%d incremental=%v: step after UpdateCoords reused carried bounds", p, workers, incremental)
	}
	record(pp, st)

	if err := sess.UpdateWeights(testWeights(m, 3)); err != nil {
		t.Fatal(err)
	}
	pp, st, err = sess.Repartition()
	if err != nil {
		t.Fatalf("final warm step: %v", err)
	}
	record(pp, st)
	return out
}

// TestIncrementalMatchesReset is the differential pin of the tentpole:
// across Processes x Workers x {2D, 3D}, the incremental warm chain
// (carried bounds, boundary-only first passes) must produce partitions
// and migration stats byte-identical to the bounds-reset chain of the
// same layout. (The chains start from a cold partition, which is
// rank-layout-dependent by design — see the ROADMAP's exact-cold-path
// item — so whole chains are only comparable within one layout; the
// warm determinism across layouts is pinned separately by
// TestWarmStartDeterminism.) The scenario includes an UpdateCoords
// step, which must invalidate the carried bounds, and a subsequent
// weight step, which must carry again.
func TestIncrementalMatchesReset(t *testing.T) {
	for _, dim := range []int{2, 3} {
		m := incrementalTestMesh(t, dim)
		for _, p := range []int{1, 3} {
			for _, workers := range []int{1, 2} {
				name := fmt.Sprintf("dim=%d/p=%d/workers=%d", dim, p, workers)
				t.Run(name, func(t *testing.T) {
					inc := runIncrementalChain(t, m, p, workers, true)
					reset := runIncrementalChain(t, m, p, workers, false)
					if len(inc) != len(reset) {
						t.Fatalf("chain lengths differ: %d vs %d", len(inc), len(reset))
					}
					carriedSteps := 0
					for s := range inc {
						for i := range inc[s].assign {
							if inc[s].assign[i] != reset[s].assign[i] {
								t.Fatalf("step %d diverged at point %d: incremental %d vs reset %d",
									s, i, inc[s].assign[i], reset[s].assign[i])
							}
						}
						if inc[s].migratedWeight != reset[s].migratedWeight || inc[s].migratedPoints != reset[s].migratedPoints {
							t.Fatalf("step %d migration stats diverged: (%g, %d) vs (%g, %d)", s,
								inc[s].migratedWeight, inc[s].migratedPoints,
								reset[s].migratedWeight, reset[s].migratedPoints)
						}
						if reset[s].incremental {
							t.Errorf("step %d of the reset chain reports the incremental fast path", s)
						}
						if inc[s].incremental {
							carriedSteps++
						}
					}
					// Warm step 2 and the post-coords weight step must have
					// carried (step indices 2 and 4 of the chain).
					if !inc[2].incremental {
						t.Error("second warm step did not carry bounds")
					}
					if !inc[4].incremental {
						t.Error("weight step after the coords-invalidated step did not carry bounds")
					}
					if carriedSteps != 2 {
						t.Errorf("%d carried steps, want exactly 2 (steps 2 and 4)", carriedSteps)
					}
				})
			}
		}
	}
}
