package repart

import (
	"errors"
	"math"
	"testing"

	"geographer/internal/core"
	"geographer/internal/geom"
	"geographer/internal/mesh"
	"geographer/internal/mpi"
	"geographer/internal/partition"
)

// sessionTestMesh builds a small refined mesh with strictly positive,
// spatially correlated weights at phase t (the stream experiment's
// perturbation shape).
func sessionTestMesh(t *testing.T, n int) *mesh.Mesh {
	t.Helper()
	m, err := mesh.GenRefinedTri(n, 42)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func testWeights(m *mesh.Mesh, t int) []float64 {
	ps := m.Points
	out := make([]float64, ps.Len())
	for i := range out {
		x := ps.Coords[i*ps.Dim]
		y := ps.Coords[i*ps.Dim+1]
		out[i] = ps.W(i) * (1 + 0.4*math.Sin(0.08*x+0.05*y+0.9*float64(t)))
	}
	return out
}

// TestSessionMatchesOneShotChain is the differential pin of the session
// subsystem: a T-step session chain (one ingest, warm steps on resident
// state with in-place weight updates) must produce bit-identical
// partitions — and identical migration stats — to the equivalent chain
// of one-shot Repartition calls that re-ingests every step.
func TestSessionMatchesOneShotChain(t *testing.T) {
	m := sessionTestMesh(t, 2500)
	const k, p, steps = 8, 4, 4
	cfg := core.DefaultConfig()
	cfg.Seed = 1

	ps0 := &geom.PointSet{Dim: m.Points.Dim, Coords: m.Points.Coords, Weight: testWeights(m, 0)}
	sess, err := NewSession(mpi.NewWorld(p), ps0.Clone(), k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	initSess, err := sess.Partition()
	if err != nil {
		t.Fatal(err)
	}

	// The session's cold partition must equal the one-shot cold path.
	initOne, err := partition.Run(mpi.NewWorld(p), ps0, k, core.New(cfg))
	if err != nil {
		t.Fatal(err)
	}
	for i := range initOne.Assign {
		if initSess.Assign[i] != initOne.Assign[i] {
			t.Fatalf("cold partition diverged at point %d: session %d vs one-shot %d", i, initSess.Assign[i], initOne.Assign[i])
		}
	}

	prev := initOne.Assign
	for step := 1; step <= steps; step++ {
		wt := testWeights(m, step)
		if err := sess.UpdateWeights(wt); err != nil {
			t.Fatal(err)
		}
		pSess, stSess, err := sess.Repartition()
		if err != nil {
			t.Fatalf("session step %d: %v", step, err)
		}
		if stSess.IngestSeconds != 0 {
			t.Errorf("step %d: session warm step reports ingest time %g, want 0 (ingest happens once at NewSession)", step, stSess.IngestSeconds)
		}

		ps := &geom.PointSet{Dim: m.Points.Dim, Coords: m.Points.Coords, Weight: wt}
		pOne, stOne, err := Repartition(mpi.NewWorld(p), ps, prev, k, cfg)
		if err != nil {
			t.Fatalf("one-shot step %d: %v", step, err)
		}
		for i := range pOne.Assign {
			if pSess.Assign[i] != pOne.Assign[i] {
				t.Fatalf("step %d diverged at point %d: session %d vs one-shot %d", step, i, pSess.Assign[i], pOne.Assign[i])
			}
		}
		if stSess.MigratedWeight != stOne.MigratedWeight || stSess.MigratedPoints != stOne.MigratedPoints {
			t.Fatalf("step %d stats diverged: session (%g, %d) vs one-shot (%g, %d)",
				step, stSess.MigratedWeight, stSess.MigratedPoints, stOne.MigratedWeight, stOne.MigratedPoints)
		}
		prev = pOne.Assign
	}
}

// TestSessionUpdateCoords pins coordinate deltas: after UpdateCoords
// the session's warm step must match a one-shot Repartition on the
// moved points.
func TestSessionUpdateCoords(t *testing.T) {
	m := sessionTestMesh(t, 1500)
	const k, p = 8, 4
	cfg := core.DefaultConfig()
	cfg.Seed = 1

	ps0 := &geom.PointSet{Dim: m.Points.Dim, Coords: m.Points.Coords, Weight: testWeights(m, 0)}
	sess, err := NewSession(mpi.NewWorld(p), ps0.Clone(), k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	initial, err := sess.Partition()
	if err != nil {
		t.Fatal(err)
	}

	// Drift every point a little (points moved, identity preserved).
	moved := append([]float64(nil), m.Points.Coords...)
	for i := range moved {
		moved[i] += 0.01 * math.Sin(float64(i))
	}
	if err := sess.UpdateCoords(moved); err != nil {
		t.Fatal(err)
	}
	pSess, _, err := sess.Repartition()
	if err != nil {
		t.Fatal(err)
	}

	psMoved := &geom.PointSet{Dim: m.Points.Dim, Coords: moved, Weight: ps0.Weight}
	pOne, _, err := Repartition(mpi.NewWorld(p), psMoved, initial.Assign, k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pOne.Assign {
		if pSess.Assign[i] != pOne.Assign[i] {
			t.Fatalf("after UpdateCoords, point %d: session %d vs one-shot %d", i, pSess.Assign[i], pOne.Assign[i])
		}
	}
}

// TestSessionLifecycle covers the error contract: repartitioning
// without a seed partition, bad delta shapes, and use after Close.
func TestSessionLifecycle(t *testing.T) {
	m := sessionTestMesh(t, 600)
	const k, p = 4, 2
	cfg := core.DefaultConfig()
	cfg.Seed = 1
	ps := &geom.PointSet{Dim: m.Points.Dim, Coords: m.Points.Coords}

	if _, err := NewSession(mpi.NewWorld(p), &geom.PointSet{Dim: 2}, k, cfg); err == nil {
		t.Error("NewSession accepted an empty point set")
	}
	warm := cfg
	warm.WarmCenters = make([]float64, k*ps.Dim)
	if _, err := NewSession(mpi.NewWorld(p), ps.Clone(), k, warm); err == nil {
		t.Error("NewSession accepted cfg.WarmCenters (session-managed)")
	}

	sess, err := NewSession(mpi.NewWorld(p), ps.Clone(), k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sess.Blocks() != nil {
		t.Error("Blocks() non-nil before any partition")
	}
	if _, _, err := sess.Repartition(); err == nil {
		t.Error("Repartition succeeded without a previous partition")
	}
	if err := sess.SetPartition(make([]int32, 3)); err == nil {
		t.Error("SetPartition accepted a wrong-length assignment")
	}
	if _, err := sess.Partition(); err != nil {
		t.Fatal(err)
	}
	if got := sess.Blocks(); len(got) != ps.Len() {
		t.Fatalf("Blocks() length %d, want %d", len(got), ps.Len())
	}

	if err := sess.UpdateWeights(make([]float64, 3)); err == nil {
		t.Error("UpdateWeights accepted a wrong-length vector")
	}
	if err := sess.UpdateWeights([]float64{}); err == nil {
		t.Error("UpdateWeights accepted an empty non-nil vector for a non-empty set")
	}
	bad := make([]float64, ps.Len())
	bad[7] = -1
	if err := sess.UpdateWeights(bad); err == nil {
		t.Error("UpdateWeights accepted a negative weight")
	}
	if err := sess.UpdateCoords(make([]float64, 3)); err == nil {
		t.Error("UpdateCoords accepted a wrong-length slice")
	}
	// A failed update must not corrupt the session: a warm step still runs.
	if _, _, err := sess.Repartition(); err != nil {
		t.Fatalf("Repartition after rejected updates: %v", err)
	}

	if err := sess.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := sess.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, _, err := sess.Repartition(); !errors.Is(err, ErrClosed) {
		t.Errorf("Repartition after Close: got %v, want ErrClosed", err)
	}
	if _, err := sess.Partition(); !errors.Is(err, ErrClosed) {
		t.Errorf("Partition after Close: got %v, want ErrClosed", err)
	}
	if err := sess.UpdateWeights(nil); !errors.Is(err, ErrClosed) {
		t.Errorf("UpdateWeights after Close: got %v, want ErrClosed", err)
	}
	if err := sess.UpdateCoords(make([]float64, ps.Len()*2)); !errors.Is(err, ErrClosed) {
		t.Errorf("UpdateCoords after Close: got %v, want ErrClosed", err)
	}
	if err := sess.SetPartition(make([]int32, ps.Len())); !errors.Is(err, ErrClosed) {
		t.Errorf("SetPartition after Close: got %v, want ErrClosed", err)
	}
	if sess.Blocks() != nil {
		t.Error("Blocks() non-nil after Close")
	}
}

// TestRepartitionIfAbove covers the imbalance-threshold trigger: skip
// below eps (partition untouched, deltas still pending), act above it
// (result identical to an unconditional Repartition over the same
// inputs), and reject invalid thresholds.
func TestRepartitionIfAbove(t *testing.T) {
	m := sessionTestMesh(t, 1500)
	const k, p = 8, 4
	cfg := core.DefaultConfig()
	cfg.Seed = 1
	newSess := func() *Session {
		t.Helper()
		ps := &geom.PointSet{Dim: m.Points.Dim, Coords: m.Points.Coords, Weight: testWeights(m, 0)}
		sess, err := NewSession(mpi.NewWorld(p), ps, k, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sess.Partition(); err != nil {
			t.Fatal(err)
		}
		return sess
	}

	sess := newSess()
	defer sess.Close()
	if _, _, _, err := sess.RepartitionIfAbove(-0.1); err == nil {
		t.Error("negative eps accepted")
	}
	if _, _, _, err := sess.RepartitionIfAbove(math.NaN()); err == nil {
		t.Error("NaN eps accepted")
	}

	// The fresh cold partition is within the configured epsilon, so a
	// loose threshold must skip — and leave the partition in place.
	before := sess.Blocks()
	_, st, acted, err := sess.RepartitionIfAbove(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if acted {
		t.Fatalf("repartitioned at imbalance %g despite eps=0.5", st.PreImbalance)
	}
	if st.PreImbalance <= 0 {
		t.Errorf("skip path did not report the measured imbalance (got %g)", st.PreImbalance)
	}
	after := sess.Blocks()
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("skipped step changed the installed partition")
		}
	}

	// Skew the weights until the old partition is badly imbalanced: the
	// trigger must fire and reproduce the unconditional step exactly.
	xmin, xmax := math.Inf(1), math.Inf(-1)
	for i := 0; i < m.Points.Len(); i++ {
		x := m.Points.Coords[i*m.Points.Dim]
		xmin = math.Min(xmin, x)
		xmax = math.Max(xmax, x)
	}
	skewed := make([]float64, m.Points.Len())
	for i := range skewed {
		x := m.Points.Coords[i*m.Points.Dim]
		skewed[i] = 1
		if x < xmin+(xmax-xmin)/4 {
			skewed[i] = 10 // one corner carries most of the load
		}
	}
	if err := sess.UpdateWeights(skewed); err != nil {
		t.Fatal(err)
	}
	imb, err := sess.Imbalance()
	if err != nil {
		t.Fatal(err)
	}
	if imb <= 0.1 {
		t.Fatalf("skewed weights produced imbalance %g, test needs > 0.1", imb)
	}
	pIf, stIf, acted, err := sess.RepartitionIfAbove(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !acted {
		t.Fatalf("did not repartition at imbalance %g > 0.1", stIf.PreImbalance)
	}
	if stIf.PreImbalance != imb {
		t.Errorf("PreImbalance %g != measured %g", stIf.PreImbalance, imb)
	}

	ref := newSess()
	defer ref.Close()
	if err := ref.UpdateWeights(skewed); err != nil {
		t.Fatal(err)
	}
	pRef, _, err := ref.Repartition()
	if err != nil {
		t.Fatal(err)
	}
	for i := range pRef.Assign {
		if pIf.Assign[i] != pRef.Assign[i] {
			t.Fatalf("threshold-triggered step diverged from unconditional step at point %d", i)
		}
	}
}

// TestSessionDeltaCoalescing pins the lazy delta application: any
// number of UpdateWeights/UpdateCoords calls between two steps must
// behave exactly like the last one applied eagerly — including a
// coordinate delta that sat pending across a skipped
// RepartitionIfAbove.
func TestSessionDeltaCoalescing(t *testing.T) {
	m := sessionTestMesh(t, 1500)
	const k, p = 8, 4
	cfg := core.DefaultConfig()
	cfg.Seed = 1
	ps0 := &geom.PointSet{Dim: m.Points.Dim, Coords: m.Points.Coords, Weight: testWeights(m, 0)}
	sess, err := NewSession(mpi.NewWorld(p), ps0.Clone(), k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	initial, err := sess.Partition()
	if err != nil {
		t.Fatal(err)
	}

	// Three queued weight updates and two queued coordinate updates; only
	// the last of each may matter.
	moved := append([]float64(nil), m.Points.Coords...)
	for i := range moved {
		moved[i] += 0.01 * math.Sin(float64(i))
	}
	for _, wt := range [][]float64{testWeights(m, 1), testWeights(m, 2), testWeights(m, 3)} {
		if err := sess.UpdateWeights(wt); err != nil {
			t.Fatal(err)
		}
	}
	if err := sess.UpdateCoords(m.Points.Coords); err != nil {
		t.Fatal(err)
	}
	if err := sess.UpdateCoords(moved); err != nil {
		t.Fatal(err)
	}
	// A skipped threshold step must not lose the pending deltas.
	if _, _, acted, err := sess.RepartitionIfAbove(1e9); err != nil || acted {
		t.Fatalf("expected skip, got acted=%v err=%v", acted, err)
	}
	pSess, _, err := sess.Repartition()
	if err != nil {
		t.Fatal(err)
	}

	psRef := &geom.PointSet{Dim: m.Points.Dim, Coords: moved, Weight: testWeights(m, 3)}
	pOne, _, err := Repartition(mpi.NewWorld(p), psRef, initial.Assign, k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pOne.Assign {
		if pSess.Assign[i] != pOne.Assign[i] {
			t.Fatalf("coalesced deltas diverged from eager application at point %d", i)
		}
	}
}

// TestSessionScratchResetExact pins the resident-state reset: running
// the same warm step (same previous assignment, same weights) over and
// over on one session must reproduce a bit-identical partition every
// time — the reused per-point scratch starts each run exactly like a
// fresh allocation would.
func TestSessionScratchResetExact(t *testing.T) {
	m := sessionTestMesh(t, 1200)
	const k, p = 8, 4
	cfg := core.DefaultConfig()
	cfg.Seed = 1
	ps := &geom.PointSet{Dim: m.Points.Dim, Coords: m.Points.Coords, Weight: testWeights(m, 0)}
	sess, err := NewSession(mpi.NewWorld(p), ps, k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	initial, err := sess.Partition()
	if err != nil {
		t.Fatal(err)
	}
	first, firstStats, err := sess.RepartitionFrom(initial.Assign)
	if err != nil {
		t.Fatal(err)
	}
	for repeat := 0; repeat < 3; repeat++ {
		next, st, err := sess.RepartitionFrom(initial.Assign)
		if err != nil {
			t.Fatal(err)
		}
		for i := range next.Assign {
			if next.Assign[i] != first.Assign[i] {
				t.Fatalf("repeat %d: partition changed at point %d under identical input", repeat, i)
			}
		}
		if st.MigratedWeight != firstStats.MigratedWeight || st.MigratedPoints != firstStats.MigratedPoints {
			t.Fatalf("repeat %d: migration stats changed under identical input", repeat)
		}
	}
}
