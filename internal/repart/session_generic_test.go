package repart

import (
	"math"
	"math/rand"
	"testing"

	"geographer/internal/core"
	"geographer/internal/geom"
	"geographer/internal/mpi"
)

// gaussianMixture builds an n-point d-dimensional Gaussian mixture around
// m well-separated centers — the feature-space workload of the highdim
// experiment, in miniature.
func gaussianMixture(n, dim, m int, seed int64) *geom.PointSet {
	rng := rand.New(rand.NewSource(seed))
	centers := make([]float64, m*dim)
	for i := range centers {
		centers[i] = rng.Float64() * 10
	}
	ps := &geom.PointSet{Dim: dim, Coords: make([]float64, n*dim)}
	for i := 0; i < n; i++ {
		c := centers[(i%m)*dim : (i%m+1)*dim]
		for d := 0; d < dim; d++ {
			ps.Coords[i*dim+d] = c[d] + rng.NormFloat64()
		}
	}
	return ps
}

func mixtureWeights(ps *geom.PointSet, t int) []float64 {
	out := make([]float64, ps.Len())
	for i := range out {
		x := ps.Coords[i*ps.Dim]
		y := ps.Coords[i*ps.Dim+ps.Dim-1]
		out[i] = 1 + 0.4*math.Sin(0.3*x+0.2*y+0.9*float64(t))
	}
	return out
}

// TestGenericDimSessionSteps pins the warm session chain in feature space
// (d = 8, beyond the spatial kernels): starting from a common previous
// partition, every Processes × Workers layout must produce bit-identical
// partitions at every step, the carried incremental bounds of steps ≥ 2
// included — and the incremental chain must match the bounds-reset
// (Incremental=false) chain exactly.
func TestGenericDimSessionSteps(t *testing.T) {
	const n, dim, k, steps = 3000, 8, 6, 3
	ps := gaussianMixture(n, dim, k, 7)
	ps.Weight = mixtureWeights(ps, 0)

	// A fixed, layout-independent starting partition.
	prev := make([]int32, n)
	for i := range prev {
		prev[i] = int32(i % k)
	}

	type chain struct {
		assigns [][]int32
		carried []bool
	}
	runChain := func(p, workers int, incremental bool) chain {
		cfg := core.DefaultConfig()
		cfg.Seed = 1
		cfg.Workers = workers
		cfg.Incremental = incremental
		sess, err := NewSession(mpi.NewWorld(p), ps.Clone(), k, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer sess.Close()
		var ch chain
		cur := prev
		for step := 0; step < steps; step++ {
			if step > 0 {
				if err := sess.UpdateWeights(mixtureWeights(ps, step)); err != nil {
					t.Fatal(err)
				}
			}
			part, _, err := sess.RepartitionFrom(cur)
			if err != nil {
				t.Fatalf("p=%d w=%d step %d: %v", p, workers, step, err)
			}
			cur = part.Assign
			ch.assigns = append(ch.assigns, cur)
			ch.carried = append(ch.carried, sess.LastInfo().CarriedBounds)
		}
		return ch
	}

	base := runChain(1, 1, true)
	for step, carried := range base.carried {
		if step >= 1 && !carried {
			t.Errorf("step %d: incremental chain did not carry bounds", step)
		}
	}

	for _, p := range []int{2, 3} {
		for _, workers := range []int{1, 2} {
			got := runChain(p, workers, true)
			for step := range base.assigns {
				for i := range base.assigns[step] {
					if got.assigns[step][i] != base.assigns[step][i] {
						t.Fatalf("p=%d workers=%d step %d: assignment diverged at point %d (%d vs %d)",
							p, workers, step, i, got.assigns[step][i], base.assigns[step][i])
					}
				}
			}
		}
	}

	// Carried bounds are pure acceleration: the bounds-reset chain must
	// produce the exact same partitions.
	reset := runChain(2, 2, false)
	for step := range base.assigns {
		for i := range base.assigns[step] {
			if reset.assigns[step][i] != base.assigns[step][i] {
				t.Fatalf("bounds-reset chain diverged at step %d point %d", step, i)
			}
		}
	}
}
