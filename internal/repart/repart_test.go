package repart

import (
	"math"
	"math/rand"
	"testing"

	"geographer/internal/core"
	"geographer/internal/geom"
	"geographer/internal/metrics"
	"geographer/internal/mpi"
	"geographer/internal/partition"
)

func randomPoints(n, dim int, seed int64) *geom.PointSet {
	rng := rand.New(rand.NewSource(seed))
	ps := &geom.PointSet{Dim: dim, Coords: make([]float64, n*dim), Weight: make([]float64, n)}
	for i := range ps.Coords {
		ps.Coords[i] = rng.Float64() * 100
	}
	for i := range ps.Weight {
		ps.Weight[i] = 0.5 + 2*rng.Float64()
	}
	return ps
}

func scratchPartition(t *testing.T, ps *geom.PointSet, k, p int) partition.P {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Seed = 1
	out, err := partition.Run(mpi.NewWorld(p), ps, k, core.New(cfg))
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestRecoverCenters(t *testing.T) {
	ps := &geom.PointSet{Dim: 2, Coords: []float64{
		0, 0, 2, 0, 1, 3, // block 0
		10, 10, 12, 10, // block 1
	}, Weight: []float64{1, 1, 2, 3, 1}}
	prev := []int32{0, 0, 0, 1, 1}
	cs, err := RecoverCenters(ps, prev, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Block 0: (0+2+2·1)/4, (0+0+2·3)/4 = (1, 1.5).
	if math.Abs(cs[0]-1) > 1e-12 || math.Abs(cs[1]-1.5) > 1e-12 {
		t.Errorf("block 0 center = %v", cs[0:2])
	}
	// Block 1: (3·10+12)/4, 10.
	if math.Abs(cs[2]-10.5) > 1e-12 || math.Abs(cs[3]-10) > 1e-12 {
		t.Errorf("block 1 center = %v", cs[2:4])
	}
	// Block 2 is empty: deterministic fallback inside the bounding box,
	// distinct from the others.
	if !ps.Bounds().Contains(geom.Point{cs[4], cs[5]}) {
		t.Errorf("empty-block center %v outside bounds", cs[4:6])
	}
	if (cs[4] == cs[0] && cs[5] == cs[1]) || (cs[4] == cs[2] && cs[5] == cs[3]) {
		t.Errorf("fallback center %v coincides", cs[4:6])
	}
}

func TestRecoverCentersZeroWeightBlock(t *testing.T) {
	ps := &geom.PointSet{Dim: 2, Coords: []float64{0, 0, 4, 4}, Weight: []float64{0, 0}}
	cs, err := RecoverCenters(ps, []int32{0, 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cs[0]-2) > 1e-12 || math.Abs(cs[1]-2) > 1e-12 {
		t.Errorf("zero-weight block center = %v, want (2,2)", cs[0:2])
	}
}

func TestRecoverCentersErrors(t *testing.T) {
	ps := randomPoints(10, 2, 1)
	if _, err := RecoverCenters(ps, make([]int32, 10), 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := RecoverCenters(ps, make([]int32, 9), 2); err == nil {
		t.Error("short prev accepted")
	}
	bad := make([]int32, 10)
	bad[7] = 5
	if _, err := RecoverCenters(ps, bad, 2); err == nil {
		t.Error("out-of-range block accepted")
	}
	bad[7] = -1
	if _, err := RecoverCenters(ps, bad, 2); err == nil {
		t.Error("negative block accepted")
	}
	if _, err := RecoverCenters(&geom.PointSet{Dim: 2}, nil, 2); err == nil {
		t.Error("empty point set accepted")
	}
}

// TestWarmStartDeterminism pins the warm path's central guarantee: the
// same input and the same previous assignment produce a bit-identical
// partition regardless of how many simulated ranks or kernel workers
// run it.
func TestWarmStartDeterminism(t *testing.T) {
	const n, k = 3000, 8
	ps := randomPoints(n, 2, 3)
	prev := scratchPartition(t, ps, k, 4)

	// Perturb the weights so the repartition has real work to do.
	for i := range ps.Weight {
		ps.Weight[i] *= 1 + 0.3*math.Sin(float64(i)*0.37)
	}

	cfg := core.DefaultConfig()
	var ref []int32
	for _, procs := range []int{1, 2, 3, 4, 7} {
		for _, workers := range []int{1, 2, 3} {
			c := cfg
			c.Workers = workers
			p, st, err := Repartition(mpi.NewWorld(procs), ps, prev.Assign, k, c)
			if err != nil {
				t.Fatalf("p=%d w=%d: %v", procs, workers, err)
			}
			if st.Info.SortSeconds != 0 {
				t.Errorf("p=%d w=%d: warm start ran the sort phase (%gs)", procs, workers, st.Info.SortSeconds)
			}
			if ref == nil {
				ref = p.Assign
				continue
			}
			for i := range ref {
				if ref[i] != p.Assign[i] {
					t.Fatalf("p=%d w=%d: assignment diverges at point %d (%d vs %d)",
						procs, workers, i, ref[i], p.Assign[i])
				}
			}
		}
	}
}

// TestWarmStartDeterminism3D covers the 3D kernel specialization.
func TestWarmStartDeterminism3D(t *testing.T) {
	const n, k = 2000, 6
	ps := randomPoints(n, 3, 5)
	prev := scratchPartition(t, ps, k, 4)
	cfg := core.DefaultConfig()
	var ref []int32
	for _, procs := range []int{1, 3, 5} {
		p, _, err := Repartition(mpi.NewWorld(procs), ps, prev.Assign, k, cfg)
		if err != nil {
			t.Fatalf("p=%d: %v", procs, err)
		}
		if ref == nil {
			ref = p.Assign
			continue
		}
		for i := range ref {
			if ref[i] != p.Assign[i] {
				t.Fatalf("p=%d: diverges at %d", procs, i)
			}
		}
	}
}

// TestWarmStartMigrationAndQuality: under a weight perturbation, the
// warm start must move far less weight than a fresh partition while
// staying balanced.
func TestWarmStartMigrationAndQuality(t *testing.T) {
	const n, k = 4000, 8
	ps := randomPoints(n, 2, 11)
	prev := scratchPartition(t, ps, k, 4)

	perturbed := ps.Clone()
	for i := range perturbed.Weight {
		x := perturbed.Coords[2*i]
		perturbed.Weight[i] *= 1 + 0.4*math.Sin(x*0.2+1)
	}

	cfg := core.DefaultConfig()
	cfg.Seed = 1
	cfg.Strict = true
	p, st, err := Repartition(mpi.NewWorld(4), perturbed, prev.Assign, k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(false); err != nil {
		t.Fatal(err)
	}
	if !st.Info.Balanced || st.Info.Imbalance > cfg.Epsilon+1e-9 {
		t.Errorf("warm start unbalanced: %+v", st.Info)
	}
	if st.MigratedPoints == 0 {
		t.Error("no migration at all under a 40% weight perturbation is implausible")
	}

	// Fresh partition of the perturbed set, migration vs the same prev.
	scratch, err := partition.Run(mpi.NewWorld(4), perturbed, k, core.New(cfg))
	if err != nil {
		t.Fatal(err)
	}
	scratchW, _, err := metrics.MigrationVolume(perturbed, prev.Assign, scratch.Assign)
	if err != nil {
		t.Fatal(err)
	}
	if st.MigratedWeight >= scratchW {
		t.Errorf("warm migration %.1f not below scratch %.1f", st.MigratedWeight, scratchW)
	}
	t.Logf("migration: warm %.1f vs scratch %.1f (of %.1f total), %d iterations",
		st.MigratedWeight, scratchW, st.TotalWeight, st.Info.Iterations)
}

// TestWarmStartIdentityStable: repartitioning with unchanged weights
// from a converged partition should barely move anything.
func TestWarmStartIdentityStable(t *testing.T) {
	const n, k = 3000, 8
	ps := randomPoints(n, 2, 21)
	prev := scratchPartition(t, ps, k, 4)

	cfg := core.DefaultConfig()
	cfg.Seed = 1
	_, st, err := Repartition(mpi.NewWorld(4), ps, prev.Assign, k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if frac := st.MigratedWeight / st.TotalWeight; frac > 0.10 {
		t.Errorf("unchanged input migrated %.1f%% of the weight", 100*frac)
	}
}

func TestRepartitionConfigErrors(t *testing.T) {
	ps := randomPoints(100, 2, 1)
	prev := make([]int32, 100)
	cfg := core.DefaultConfig()
	cfg.Epsilon = -0.01
	if _, _, err := Repartition(mpi.NewWorld(2), ps, prev, 2, cfg); err == nil {
		t.Error("negative epsilon accepted")
	}
	cfg = core.DefaultConfig()
	cfg.TargetFractions = []float64{0.9, -0.1}
	if _, _, err := Repartition(mpi.NewWorld(2), ps, prev, 2, cfg); err == nil {
		t.Error("negative fraction accepted")
	}
}
