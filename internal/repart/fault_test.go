package repart

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"geographer/internal/core"
	"geographer/internal/geom"
	"geographer/internal/mesh"
	"geographer/internal/mpi"
	"geographer/internal/partition"
)

// buildWarmSession builds a session, installs a cold partition, and runs
// `warm` weight-perturbed warm steps — the standard fixture state for
// checkpoint and retry tests. Two calls with the same arguments produce
// bit-identical sessions (fresh worlds, same seeds).
func buildWarmSession(t *testing.T, m *mesh.Mesh, k, p, warm int, cfg core.Config) *Session {
	t.Helper()
	ps0 := &geom.PointSet{Dim: m.Points.Dim, Coords: m.Points.Coords, Weight: testWeights(m, 0)}
	s, err := NewSession(mpi.NewWorld(p), ps0.Clone(), k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Partition(); err != nil {
		t.Fatal(err)
	}
	for step := 1; step <= warm; step++ {
		if err := s.UpdateWeights(testWeights(m, step)); err != nil {
			t.Fatal(err)
		}
		if _, _, err := s.Repartition(); err != nil {
			t.Fatalf("warm step %d: %v", step, err)
		}
	}
	return s
}

func assignEqual(t *testing.T, want, got partition.P, label string) {
	t.Helper()
	if len(want.Assign) != len(got.Assign) {
		t.Fatalf("%s: %d vs %d points", label, len(got.Assign), len(want.Assign))
	}
	for i := range want.Assign {
		if want.Assign[i] != got.Assign[i] {
			t.Fatalf("%s: diverged at point %d: %d vs %d", label, i, got.Assign[i], want.Assign[i])
		}
	}
}

// TestSessionCheckpointRoundTrip is the session-level restore contract:
// checkpoint a warm session, restore it onto a fresh world sized from
// ReadCheckpointInfo, and the restored session's next warm step is
// bit-identical to the step the uninterrupted session runs — including
// taking the incremental carried-bounds fast path.
func TestSessionCheckpointRoundTrip(t *testing.T) {
	m := sessionTestMesh(t, 2000)
	const k, p, warm = 8, 4, 2
	cfg := core.DefaultConfig()
	cfg.Seed = 1

	orig := buildWarmSession(t, m, k, p, warm, cfg)
	defer orig.Close()
	ckpt, err := orig.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	info, err := ReadCheckpointInfo(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != SessionCheckpointVersion || info.K != k || info.P != p ||
		info.Dim != m.Points.Dim || info.N != m.Points.Len() {
		t.Fatalf("header %+v, want v%d k=%d p=%d dim=%d n=%d",
			info, SessionCheckpointVersion, k, p, m.Points.Dim, m.Points.Len())
	}

	restored, err := NewSessionFromCheckpoint(mpi.NewWorld(info.P), ckpt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()

	// The installed partition travels with the checkpoint.
	ob, rb := orig.Blocks(), restored.Blocks()
	for i := range ob {
		if ob[i] != rb[i] {
			t.Fatalf("restored partition diverged at point %d: %d vs %d", i, rb[i], ob[i])
		}
	}

	wt := testWeights(m, warm+1)
	pWant, stWant, err := stepWith(orig, wt)
	if err != nil {
		t.Fatal(err)
	}
	pGot, stGot, err := stepWith(restored, wt)
	if err != nil {
		t.Fatal(err)
	}
	assignEqual(t, pWant, pGot, "restored chain")
	if !stGot.Incremental {
		t.Fatal("restored warm step did not take the carried-bounds fast path")
	}
	if stGot.MigratedWeight != stWant.MigratedWeight || stGot.MigratedPoints != stWant.MigratedPoints {
		t.Fatalf("migration stats diverged: restored (%g, %d) vs original (%g, %d)",
			stGot.MigratedWeight, stGot.MigratedPoints, stWant.MigratedWeight, stWant.MigratedPoints)
	}
}

func stepWith(s *Session, wt []float64) (partition.P, Stats, error) {
	if err := s.UpdateWeights(wt); err != nil {
		return partition.P{}, Stats{}, err
	}
	return s.Repartition()
}

// TestSessionCheckpointPendingDeltas: a checkpoint taken while weight
// and coordinate deltas are still queued (not yet flushed to the
// residents) restores them queued — the restored session's next step
// flushes and computes exactly what the original would have.
func TestSessionCheckpointPendingDeltas(t *testing.T) {
	m := sessionTestMesh(t, 1200)
	const k, p = 4, 2
	cfg := core.DefaultConfig()
	cfg.Seed = 1

	orig := buildWarmSession(t, m, k, p, 1, cfg)
	defer orig.Close()
	// Queue pending deltas: new weights and slightly drifted coordinates.
	if err := orig.UpdateWeights(testWeights(m, 5)); err != nil {
		t.Fatal(err)
	}
	moved := append([]float64(nil), m.Points.Coords...)
	for i := range moved {
		moved[i] += 0.001 * float64(i%7)
	}
	if err := orig.UpdateCoords(moved); err != nil {
		t.Fatal(err)
	}

	ckpt, err := orig.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := NewSessionFromCheckpoint(mpi.NewWorld(p), ckpt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()

	pWant, _, err := orig.Repartition()
	if err != nil {
		t.Fatal(err)
	}
	pGot, _, err := restored.Repartition()
	if err != nil {
		t.Fatal(err)
	}
	assignEqual(t, pWant, pGot, "pending-delta restore")
}

// TestSessionCheckpointErrors covers the rejection surface: corrupt and
// truncated blobs return the typed sentinels, a mismatched world size
// and a preset WarmCenters are refused, and a closed session cannot
// checkpoint.
func TestSessionCheckpointErrors(t *testing.T) {
	m := sessionTestMesh(t, 600)
	const k, p = 4, 2
	cfg := core.DefaultConfig()
	cfg.Seed = 1
	sess := buildWarmSession(t, m, k, p, 1, cfg)
	defer sess.Close()
	ckpt, err := sess.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	t.Run("wrong world size", func(t *testing.T) {
		if _, err := NewSessionFromCheckpoint(mpi.NewWorld(p+1), ckpt, cfg); err == nil {
			t.Fatal("restore onto wrong-size world succeeded")
		}
	})
	t.Run("warm centers preset", func(t *testing.T) {
		bad := cfg
		bad.WarmCenters = []float64{0, 0, 0}
		if _, err := NewSessionFromCheckpoint(mpi.NewWorld(p), ckpt, bad); err == nil {
			t.Fatal("restore with preset WarmCenters succeeded")
		}
	})
	t.Run("truncations", func(t *testing.T) {
		for cut := 0; cut < len(ckpt); cut += 97 {
			_, err := NewSessionFromCheckpoint(mpi.NewWorld(p), ckpt[:cut], cfg)
			if err == nil {
				t.Fatalf("truncation at %d restored successfully", cut)
			}
			if !errors.Is(err, core.ErrCheckpointCorrupt) && !errors.Is(err, core.ErrCheckpointVersion) {
				t.Fatalf("truncation at %d: untyped error %v", cut, err)
			}
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), ckpt...)
		bad[0] ^= 0xFF
		if _, err := ReadCheckpointInfo(bad); !errors.Is(err, core.ErrCheckpointCorrupt) {
			t.Fatalf("want ErrCheckpointCorrupt, got %v", err)
		}
	})
	t.Run("wrong version", func(t *testing.T) {
		bad := append([]byte(nil), ckpt...)
		bad[4] = 0xEE
		if _, err := ReadCheckpointInfo(bad); !errors.Is(err, core.ErrCheckpointVersion) {
			t.Fatalf("want ErrCheckpointVersion, got %v", err)
		}
	})
	t.Run("closed session", func(t *testing.T) {
		s2 := buildWarmSession(t, m, k, p, 0, cfg)
		s2.Close()
		if _, err := s2.Checkpoint(); !errors.Is(err, ErrClosed) {
			t.Fatalf("want ErrClosed, got %v", err)
		}
	})
}

// TestRepartitionWithRetryRecovers is the headline fault-tolerance
// claim: a session whose world keeps dying to scheduled transient
// faults rolls back to its checkpoint, retries on fresh worlds (built
// through SetWorldFactory, so the plan stays installed), and converges
// to the exact partition a fault-free session computes.
func TestRepartitionWithRetryRecovers(t *testing.T) {
	m := sessionTestMesh(t, 1500)
	const k, p = 8, 4
	cfg := core.DefaultConfig()
	cfg.Seed = 1
	prep := func(s *Session) {
		t.Helper()
		if err := s.UpdateWeights(testWeights(m, 9)); err != nil {
			t.Fatal(err)
		}
	}

	// Fault-free reference step.
	ref := buildWarmSession(t, m, k, p, 2, cfg)
	defer ref.Close()
	prep(ref)
	pWant, stWant, acted, err := ref.RepartitionIfAbove(0)
	if err != nil {
		t.Fatal(err)
	}
	if !acted {
		t.Fatal("reference step did not trigger; perturb the weights harder")
	}

	// Victim: identical chain, checkpointed, then restored onto a world
	// with a transient fault armed to fire twice (initial attempt + first
	// retry), disarming for the second retry.
	vic := buildWarmSession(t, m, k, p, 2, cfg)
	defer vic.Close()
	prep(vic)
	ckpt, err := vic.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	plan := mpi.NewFaultPlan(mpi.Fault{Rank: 1, Episode: 2, Kind: mpi.FaultTransient, Fires: 2})
	faulty := func(size int) *mpi.World {
		w := mpi.NewWorld(size)
		w.SetHooks(plan)
		return w
	}
	rest, err := NewSessionFromCheckpoint(faulty(p), ckpt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rest.Close()
	rest.SetWorldFactory(faulty)

	var sleeps []time.Duration
	pol := RetryPolicy{
		MaxRetries:  5,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  4 * time.Millisecond,
		Sleep:       func(d time.Duration) { sleeps = append(sleeps, d) },
	}
	pGot, st, acted, err := rest.RepartitionWithRetry(context.Background(), 0, pol)
	if err != nil {
		t.Fatalf("retry driver failed: %v", err)
	}
	if !acted {
		t.Fatal("retry driver did not act")
	}
	if st.Retries != 2 {
		t.Fatalf("Retries = %d, want 2", st.Retries)
	}
	if got := plan.Fired(); got != 2 {
		t.Fatalf("plan fired %d faults, want 2", got)
	}
	want := []time.Duration{time.Millisecond, 2 * time.Millisecond}
	if len(sleeps) != len(want) || sleeps[0] != want[0] || sleeps[1] != want[1] {
		t.Fatalf("backoff sleeps %v, want %v", sleeps, want)
	}
	assignEqual(t, pWant, pGot, "retried step vs fault-free")
	if st.MigratedWeight != stWant.MigratedWeight || st.MigratedPoints != stWant.MigratedPoints {
		t.Fatalf("migration stats diverged: retried (%g, %d) vs fault-free (%g, %d)",
			st.MigratedWeight, st.MigratedPoints, stWant.MigratedWeight, stWant.MigratedPoints)
	}
}

// TestRepartitionWithRetryExhausts: a permanent fault (FaultPanic fires
// on every world) burns through MaxRetries and surfaces the abort, with
// the faulting rank attributed.
func TestRepartitionWithRetryExhausts(t *testing.T) {
	m := sessionTestMesh(t, 800)
	const k, p = 4, 2
	cfg := core.DefaultConfig()
	cfg.Seed = 1
	sess := buildWarmSession(t, m, k, p, 1, cfg)
	defer sess.Close()
	if err := sess.UpdateWeights(testWeights(m, 9)); err != nil {
		t.Fatal(err)
	}
	ckpt, err := sess.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	plan := mpi.NewFaultPlan(mpi.Fault{Rank: 0, Episode: 1, Kind: mpi.FaultPanic})
	faulty := func(size int) *mpi.World {
		w := mpi.NewWorld(size)
		w.SetHooks(plan)
		return w
	}
	rest, err := NewSessionFromCheckpoint(faulty(p), ckpt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rest.Close()
	rest.SetWorldFactory(faulty)

	var sleeps []time.Duration
	pol := RetryPolicy{
		MaxRetries:  2,
		BaseBackoff: time.Millisecond,
		Sleep:       func(d time.Duration) { sleeps = append(sleeps, d) },
	}
	_, st, acted, err := rest.RepartitionWithRetry(context.Background(), 0, pol)
	if err == nil || acted {
		t.Fatalf("permanent fault succeeded (acted=%v)", acted)
	}
	if !errors.Is(err, mpi.ErrBroken) || !errors.Is(err, mpi.ErrInjected) {
		t.Fatalf("error %v does not wrap ErrBroken and ErrInjected", err)
	}
	var ae *mpi.AbortError
	if !errors.As(err, &ae) || ae.Rank != 0 {
		t.Fatalf("abort not attributed to rank 0: %v", err)
	}
	if st.Retries != 2 || len(sleeps) != 2 {
		t.Fatalf("Retries=%d sleeps=%v, want 2 retries", st.Retries, sleeps)
	}
	if got := plan.Fired(); got != 3 {
		t.Fatalf("plan fired %d faults, want 3 (initial + 2 retries)", got)
	}
}

// TestRepartitionWithRetryCtxCancelled: a cancelled context is terminal
// — the abort surfaces immediately, wrapping the cancellation cause,
// with no retries and no backoff sleeping.
func TestRepartitionWithRetryCtxCancelled(t *testing.T) {
	m := sessionTestMesh(t, 800)
	const k, p = 4, 2
	cfg := core.DefaultConfig()
	cfg.Seed = 1
	sess := buildWarmSession(t, m, k, p, 1, cfg)
	defer sess.Close()
	if err := sess.UpdateWeights(testWeights(m, 9)); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var sleeps []time.Duration
	pol := RetryPolicy{Sleep: func(d time.Duration) { sleeps = append(sleeps, d) }}
	_, st, acted, err := sess.RepartitionWithRetry(ctx, 0, pol)
	if err == nil || acted {
		t.Fatalf("cancelled context succeeded (acted=%v)", acted)
	}
	if !errors.Is(err, mpi.ErrBroken) || !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap ErrBroken and context.Canceled", err)
	}
	if st.Retries != 0 || len(sleeps) != 0 {
		t.Fatalf("cancelled context retried: Retries=%d sleeps=%v", st.Retries, sleeps)
	}
}

// TestSessionCloseRace is the satellite regression for concurrent
// misuse: goroutines hammer session verbs while another closes it. Under
// -race this must be clean, and every call must either succeed or return
// exactly ErrClosed — never a partial-state error or a torn read.
func TestSessionCloseRace(t *testing.T) {
	m := sessionTestMesh(t, 600)
	const k, p = 4, 2
	cfg := core.DefaultConfig()
	cfg.Seed = 1
	sess := buildWarmSession(t, m, k, p, 0, cfg)

	start := make(chan struct{})
	unexpected := make(chan error, 64)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < 6; i++ {
				var err error
				switch (g + i) % 4 {
				case 0:
					_, _, err = sess.Repartition()
				case 1:
					err = sess.UpdateWeights(testWeights(m, i))
				case 2:
					_, err = sess.Imbalance()
				case 3:
					_, err = sess.Checkpoint()
				}
				if err != nil && !errors.Is(err, ErrClosed) {
					unexpected <- err
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		if err := sess.Close(); err != nil {
			unexpected <- err
		}
	}()
	close(start)
	wg.Wait()
	close(unexpected)
	for err := range unexpected {
		t.Errorf("unexpected error during close race: %v", err)
	}

	// After the dust settles the session is closed for good.
	if _, _, err := sess.Repartition(); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close Repartition: %v, want ErrClosed", err)
	}
	if err := sess.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}
