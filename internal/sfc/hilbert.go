// Package sfc implements Hilbert space-filling curves in 2 and 3 dimensions.
//
// Geographer uses the Hilbert curve twice (paper §4.1): to globally sort
// and redistribute the input points so that each process holds a spatially
// compact chunk, and to place the initial k-means centers at equal
// distances along the curve (§4.5, Algorithm 2 line 7). The zoltanSFC /
// HSFC baseline partitioner (§3.1) cuts the same curve into k consecutive
// weight-balanced pieces.
//
// The index computation follows Skilling's transpose formulation
// ("Programming the Hilbert curve", 2004), which handles any dimension
// with one code path; we expose the 2D and 3D cases used by the paper.
package sfc

import (
	"geographer/internal/geom"
)

// Order2D is the default bits per dimension for 2D keys (62-bit keys).
const Order2D = 31

// Order3D is the default bits per dimension for 3D keys (63-bit keys).
const Order3D = 21

// axesToTranspose converts coordinates (in-place) into the "transposed"
// Hilbert index representation: afterwards x[i] holds every dim-th bit of
// the Hilbert index. bits is the curve order (bits per dimension).
func axesToTranspose(x *[3]uint32, bits uint, dim int) {
	m := uint32(1) << (bits - 1)
	// Inverse undo.
	for q := m; q > 1; q >>= 1 {
		p := q - 1
		for i := 0; i < dim; i++ {
			if x[i]&q != 0 {
				x[0] ^= p // invert low bits of x[0]
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
	// Gray encode.
	for i := 1; i < dim; i++ {
		x[i] ^= x[i-1]
	}
	var t uint32
	for q := m; q > 1; q >>= 1 {
		if x[dim-1]&q != 0 {
			t ^= q - 1
		}
	}
	for i := 0; i < dim; i++ {
		x[i] ^= t
	}
}

// transposeToAxes is the inverse of axesToTranspose.
func transposeToAxes(x *[3]uint32, bits uint, dim int) {
	n := uint32(2) << (bits - 1)
	// Gray decode by H ^ (H/2).
	t := x[dim-1] >> 1
	for i := dim - 1; i > 0; i-- {
		x[i] ^= x[i-1]
	}
	x[0] ^= t
	// Undo excess work.
	for q := uint32(2); q != n; q <<= 1 {
		p := q - 1
		for i := dim - 1; i >= 0; i-- {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
}

// interleave packs the transposed representation into a single index.
// Bit layout (MSB first): bit (bits-1) of x[0], bit (bits-1) of x[1], ...,
// down to bit 0 of x[dim-1]. The total must fit in 64 bits.
func interleave(x [3]uint32, bits uint, dim int) uint64 {
	var out uint64
	for b := int(bits) - 1; b >= 0; b-- {
		for i := 0; i < dim; i++ {
			out = out<<1 | uint64(x[i]>>uint(b)&1)
		}
	}
	return out
}

// deinterleave is the inverse of interleave.
func deinterleave(h uint64, bits uint, dim int) [3]uint32 {
	var x [3]uint32
	total := int(bits) * dim
	for pos := 0; pos < total; pos++ {
		bit := uint32(h >> uint(total-1-pos) & 1)
		axis := pos % dim
		x[axis] = x[axis]<<1 | bit
	}
	return x
}

// Index returns the Hilbert index of the integer cell coordinates c
// (each in [0, 2^bits)) on a curve of the given order and dimension.
func Index(c [3]uint32, bits uint, dim int) uint64 {
	x := c
	axesToTranspose(&x, bits, dim)
	return interleave(x, bits, dim)
}

// Coords inverts Index: it returns the cell coordinates of Hilbert index h.
func Coords(h uint64, bits uint, dim int) [3]uint32 {
	x := deinterleave(h, bits, dim)
	transposeToAxes(&x, bits, dim)
	return x
}

// Curve maps points inside a bounding box to Hilbert keys. It is the
// object handed to the distributed sort (paper §4.1) and to the HSFC
// baseline.
type Curve struct {
	box   geom.Box
	dim   int
	bits  uint
	scale [3]float64 // per-axis multiplier into cell space
}

// NewCurve returns a curve of the default order for the box's dimension.
// Degenerate box extents (zero width) are handled by mapping every
// coordinate of that axis to cell 0.
func NewCurve(box geom.Box, dim int) *Curve {
	bits := uint(Order2D)
	if dim == 3 {
		bits = Order3D
	}
	return NewCurveOrder(box, dim, bits)
}

// NewCurveOrder returns a curve with an explicit order (bits per
// dimension). Orders above 31 (2D) / 21 (3D) would overflow uint64 keys
// and are clamped.
func NewCurveOrder(box geom.Box, dim int, bits uint) *Curve {
	maxBits := uint(Order2D)
	if dim == 3 {
		maxBits = Order3D
	}
	if bits > maxBits {
		bits = maxBits
	}
	if bits < 1 {
		bits = 1
	}
	c := &Curve{box: box, dim: dim, bits: bits}
	cells := float64(uint64(1) << bits)
	for i := 0; i < dim; i++ {
		if side := box.Side(i); side > 0 {
			// Scale so box.Max maps just below the cell count.
			c.scale[i] = cells * (1 - 1e-12) / side
		}
	}
	return c
}

// Bits returns the curve order.
func (c *Curve) Bits() uint { return c.bits }

// Dim returns the curve dimension.
func (c *Curve) Dim() int { return c.dim }

// Cell returns the integer cell coordinates of p, clamped into the box.
func (c *Curve) Cell(p geom.Point) [3]uint32 {
	var cell [3]uint32
	maxCell := uint32(1)<<c.bits - 1
	for i := 0; i < c.dim; i++ {
		v := (p[i] - c.box.Min[i]) * c.scale[i]
		switch {
		case v <= 0 || v != v: // also catches NaN
			cell[i] = 0
		case v >= float64(maxCell):
			cell[i] = maxCell
		default:
			cell[i] = uint32(v)
		}
	}
	return cell
}

// Key returns the Hilbert index of point p.
func (c *Curve) Key(p geom.Point) uint64 {
	return Index(c.Cell(p), c.bits, c.dim)
}

// CellCenter returns the center point of the cell with Hilbert index h,
// useful for visualizing the curve and for tests.
func (c *Curve) CellCenter(h uint64) geom.Point {
	cell := Coords(h, c.bits, c.dim)
	var p geom.Point
	for i := 0; i < c.dim; i++ {
		if c.scale[i] > 0 {
			p[i] = c.box.Min[i] + (float64(cell[i])+0.5)/c.scale[i]
		} else {
			p[i] = c.box.Min[i]
		}
	}
	return p
}

// KeyPoints computes Hilbert keys for every point of ps in one pass. The
// flat AoS coordinates are transposed into SoA columns once and handed to
// the batch kernel (KeysCols); results are bit-identical to Key per point.
func (c *Curve) KeyPoints(ps *geom.PointSet) []uint64 {
	n := ps.Len()
	keys := make([]uint64, n)
	if c.dim != 2 && c.dim != 3 {
		for i := 0; i < n; i++ {
			keys[i] = c.Key(ps.At(i))
		}
		return keys
	}
	cols := geom.MakeCols(c.dim, n)
	for i := 0; i < n; i++ {
		cols.Set(i, ps.At(i))
	}
	c.KeysCols(&cols, keys)
	return keys
}
