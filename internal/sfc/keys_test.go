package sfc

import (
	"math"
	"math/rand"
	"testing"

	"geographer/internal/geom"
)

// fillCols builds a Cols store holding the given points.
func fillCols(dim int, pts []geom.Point) geom.Cols {
	cols := geom.MakeCols(dim, len(pts))
	for i, p := range pts {
		cols.Set(i, p)
	}
	return cols
}

// hostileBatch generates points exercising every Cell clamp branch for a
// box: interior points, points outside on each side, exactly-on-boundary
// points, NaN and ±Inf coordinates, and huge magnitudes.
func hostileBatch(rng *rand.Rand, box geom.Box, dim, n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		var p geom.Point
		for d := 0; d < dim; d++ {
			side := box.Side(d)
			switch rng.Intn(10) {
			case 0:
				p[d] = box.Min[d] - rng.Float64()*(1+math.Abs(side)) // below
			case 1:
				p[d] = box.Max[d] + rng.Float64()*(1+math.Abs(side)) // above
			case 2:
				p[d] = box.Min[d] // exact lower corner
			case 3:
				p[d] = box.Max[d] // exact upper corner
			case 4:
				p[d] = math.NaN()
			case 5:
				p[d] = math.Inf(1 - 2*rng.Intn(2))
			case 6:
				p[d] = (rng.Float64() - 0.5) * 1e18 // huge magnitude
			default:
				p[d] = box.Min[d] + rng.Float64()*side // interior
			}
		}
		pts[i] = p
	}
	return pts
}

// TestKeysColsMatchesKey pins the batch kernel bit-identical to the
// scalar Curve.Key over random boxes, degenerate (zero-extent) axes,
// NaN/Inf and out-of-box coordinates, both dimensions and several curve
// orders.
func TestKeysColsMatchesKey(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	boxes := func(dim int) []geom.Box {
		unit := geom.NewBox(geom.Point{}, geom.Point{1, 1, 1}, dim)
		shifted := geom.NewBox(geom.Point{-3.5, 100, -0.25}, geom.Point{2.5, 108, 7.75}, dim)
		tiny := geom.NewBox(geom.Point{1e-9, -1e-9, 0}, geom.Point{2e-9, 1e-9, 1e-12}, dim)
		degenX := geom.NewBox(geom.Point{5, 0, 0}, geom.Point{5, 1, 1}, dim)   // zero-extent axis 0
		degenAll := geom.NewBox(geom.Point{2, 2, 2}, geom.Point{2, 2, 2}, dim) // all axes degenerate
		inverted := geom.NewBox(geom.Point{1, 1, 1}, geom.Point{0, 0, 0}, dim) // negative sides
		huge := geom.NewBox(geom.Point{-1e15, -1e15, -1e15}, geom.Point{1e15, 1e15, 1e15}, dim)
		return []geom.Box{unit, shifted, tiny, degenX, degenAll, inverted, huge}
	}
	for _, dim := range []int{2, 3} {
		orders := []uint{1, 2, 3, 7, 16, Order3D, Order2D} // above-max orders are clamped by NewCurveOrder
		for _, box := range boxes(dim) {
			for _, bits := range orders {
				c := NewCurveOrder(box, dim, bits)
				pts := hostileBatch(rng, box, dim, 300)
				cols := fillCols(dim, pts)
				got := make([]uint64, len(pts))
				c.KeysCols(&cols, got)
				for i, p := range pts {
					if want := c.Key(p); got[i] != want {
						t.Fatalf("dim=%d bits=%d box=%v point %v: KeysCols %x, Key %x",
							dim, c.Bits(), box, p, got[i], want)
					}
				}
				// Every worker count must produce the identical array.
				for _, workers := range []int{2, 3, 16} {
					par := make([]uint64, len(pts))
					c.KeysColsParallel(&cols, par, workers, nil)
					for i := range par {
						if par[i] != got[i] {
							t.Fatalf("dim=%d bits=%d workers=%d: key %d differs", dim, c.Bits(), workers, i)
						}
					}
				}
			}
		}
	}
}

// TestKeysColsNilUnusedColumns checks a 2D store without a Z column works
// (the SoA redistribution only carries Dim columns).
func TestKeysColsNilUnusedColumns(t *testing.T) {
	c := NewCurve(geom.NewBox(geom.Point{}, geom.Point{1, 1}, 2), 2)
	cols := geom.Cols{Dim: 2, X: []float64{0.25, 0.75}, Y: []float64{0.5, 0.1}}
	got := make([]uint64, 2)
	c.KeysCols(&cols, got)
	for i := 0; i < 2; i++ {
		if want := c.Key(geom.Point{cols.X[i], cols.Y[i]}); got[i] != want {
			t.Fatalf("nil-Z store: key %d = %x, want %x", i, got[i], want)
		}
	}
}

// TestKeysColsLargeParallel crosses the chunk grid with worker counts on
// a size large enough to use every chunk.
func TestKeysColsLargeParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	box := geom.NewBox(geom.Point{}, geom.Point{1, 1, 1}, 3)
	c := NewCurve(box, 3)
	pts := hostileBatch(rng, box, 3, 20000)
	cols := fillCols(3, pts)
	want := make([]uint64, len(pts))
	c.KeysCols(&cols, want)
	for _, workers := range []int{1, 2, 4, 7, 16, 64} {
		got := make([]uint64, len(pts))
		c.KeysColsParallel(&cols, got, workers, nil)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: key %d differs", workers, i)
			}
		}
	}
}

// FuzzKeysColsMatchesKey fuzzes single points through the batch kernel
// against the scalar path across dimensions and orders.
func FuzzKeysColsMatchesKey(f *testing.F) {
	f.Add(0.5, 0.5, 0.5, 1.0, 1.0, 1.0, uint8(31), false)
	f.Add(-2.0, 1e300, math.NaN(), 0.0, 0.0, 5.0, uint8(21), true)
	f.Add(math.Inf(1), math.Inf(-1), 0.0, 1.0, 0.0, 1.0, uint8(1), true)
	f.Fuzz(func(t *testing.T, x, y, z, sx, sy, sz float64, bitsRaw uint8, threeD bool) {
		dim := 2
		if threeD {
			dim = 3
		}
		box := geom.NewBox(geom.Point{0, 0, 0}, geom.Point{sx, sy, sz}, dim)
		c := NewCurveOrder(box, dim, uint(bitsRaw%33)+1)
		p := geom.Point{x, y, z}
		if dim == 2 {
			p[2] = 0
		}
		cols := fillCols(dim, []geom.Point{p})
		out := make([]uint64, 1)
		c.KeysCols(&cols, out)
		if want := c.Key(p); out[0] != want {
			t.Fatalf("dim=%d bits=%d p=%v: batch %x scalar %x", dim, c.Bits(), p, out[0], want)
		}
	})
}

func benchmarkKeys(b *testing.B, dim int) {
	rng := rand.New(rand.NewSource(7))
	box := geom.NewBox(geom.Point{}, geom.Point{1, 1, 1}, dim)
	c := NewCurve(box, dim)
	const n = 20000
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	cols := fillCols(dim, pts)
	out := make([]uint64, n)
	b.Run("scalar", func(b *testing.B) {
		b.SetBytes(int64(n) * 8 * int64(dim))
		for i := 0; i < b.N; i++ {
			for j := range pts {
				out[j] = c.Key(pts[j])
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		b.SetBytes(int64(n) * 8 * int64(dim))
		for i := 0; i < b.N; i++ {
			c.KeysCols(&cols, out)
		}
	})
	b.Run("batch-parallel", func(b *testing.B) {
		b.SetBytes(int64(n) * 8 * int64(dim))
		for i := 0; i < b.N; i++ {
			c.KeysColsParallel(&cols, out, 4, nil)
		}
	})
}

// BenchmarkHilbertKeys2D tracks the 2D ingest key throughput.
func BenchmarkHilbertKeys2D(b *testing.B) { benchmarkKeys(b, 2) }

// BenchmarkHilbertKeys3D tracks the 3D ingest key throughput.
func BenchmarkHilbertKeys3D(b *testing.B) { benchmarkKeys(b, 3) }
