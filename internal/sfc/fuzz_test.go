package sfc

import "testing"

// FuzzIndexRoundTrip checks Index/Coords stay mutual inverses for any
// cell coordinates and curve order.
func FuzzIndexRoundTrip(f *testing.F) {
	f.Add(uint32(0), uint32(0), uint32(0), uint8(4), false)
	f.Add(uint32(123456), uint32(654321), uint32(111111), uint8(21), true)
	f.Fuzz(func(t *testing.T, x, y, z uint32, bitsRaw uint8, threeD bool) {
		dim := 2
		maxBits := uint(Order2D)
		if threeD {
			dim = 3
			maxBits = Order3D
		}
		bits := uint(bitsRaw)%maxBits + 1
		mask := uint32(1)<<bits - 1
		c := [3]uint32{x & mask, y & mask, 0}
		if threeD {
			c[2] = z & mask
		}
		h := Index(c, bits, dim)
		back := Coords(h, bits, dim)
		for d := 0; d < dim; d++ {
			if back[d] != c[d] {
				t.Fatalf("dim=%d bits=%d: %v -> %d -> %v", dim, bits, c, h, back)
			}
		}
	})
}
