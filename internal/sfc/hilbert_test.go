package sfc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"geographer/internal/geom"
)

// Index and Coords must be mutual inverses for every cell.
func TestRoundTripExhaustiveSmall(t *testing.T) {
	for _, dim := range []int{2, 3} {
		bits := uint(4)
		side := uint32(1) << bits
		seen := make(map[uint64]bool)
		var c [3]uint32
		var walk func(axis int)
		walk = func(axis int) {
			if axis == dim {
				h := Index(c, bits, dim)
				if seen[h] {
					t.Fatalf("dim %d: duplicate index %d for cell %v", dim, h, c)
				}
				seen[h] = true
				back := Coords(h, bits, dim)
				for i := 0; i < dim; i++ {
					if back[i] != c[i] {
						t.Fatalf("dim %d: roundtrip %v -> %d -> %v", dim, c, h, back)
					}
				}
				return
			}
			for v := uint32(0); v < side; v++ {
				c[axis] = v
				walk(axis + 1)
			}
		}
		walk(0)
		want := 1
		for i := 0; i < dim; i++ {
			want *= int(side)
		}
		if len(seen) != want {
			t.Fatalf("dim %d: %d distinct indices, want %d (bijectivity)", dim, len(seen), want)
		}
	}
}

// Consecutive Hilbert indices must map to face-adjacent cells (the curve
// is continuous); this is what gives the HSFC baseline its locality.
func TestContinuityExhaustive(t *testing.T) {
	for _, dim := range []int{2, 3} {
		bits := uint(4)
		total := uint64(1) << (bits * uint(dim))
		prev := Coords(0, bits, dim)
		for h := uint64(1); h < total; h++ {
			cur := Coords(h, bits, dim)
			manhattan := 0
			for i := 0; i < dim; i++ {
				d := int(cur[i]) - int(prev[i])
				if d < 0 {
					d = -d
				}
				manhattan += d
			}
			if manhattan != 1 {
				t.Fatalf("dim %d: indices %d,%d map to cells %v,%v (manhattan %d)",
					dim, h-1, h, prev, cur, manhattan)
			}
			prev = cur
		}
	}
}

func TestRoundTripPropertyHighOrder(t *testing.T) {
	f2 := func(a, b uint32) bool {
		mask := uint32(1)<<Order2D - 1
		c := [3]uint32{a & mask, b & mask, 0}
		h := Index(c, Order2D, 2)
		back := Coords(h, Order2D, 2)
		return back[0] == c[0] && back[1] == c[1]
	}
	if err := quick.Check(f2, nil); err != nil {
		t.Errorf("2D: %v", err)
	}
	f3 := func(a, b, cc uint32) bool {
		mask := uint32(1)<<Order3D - 1
		c := [3]uint32{a & mask, b & mask, cc & mask}
		h := Index(c, Order3D, 3)
		back := Coords(h, Order3D, 3)
		return back == c
	}
	if err := quick.Check(f3, nil); err != nil {
		t.Errorf("3D: %v", err)
	}
}

func TestCurveKeyClampsOutsidePoints(t *testing.T) {
	box := geom.NewBox(geom.Point{0, 0}, geom.Point{1, 1}, 2)
	c := NewCurve(box, 2)
	inside := c.Key(geom.Point{0.5, 0.5})
	_ = inside
	// Outside points must not panic and must map like the nearest corner.
	far := c.Key(geom.Point{100, -100})
	corner := c.Key(geom.Point{1, 0})
	if far != corner {
		t.Errorf("outside point key %d != clamped corner key %d", far, corner)
	}
}

func TestCurveDegenerateAxis(t *testing.T) {
	// Zero-height box: all y collapse to cell 0, keys still usable.
	box := geom.NewBox(geom.Point{0, 5}, geom.Point{1, 5}, 2)
	c := NewCurve(box, 2)
	k1 := c.Key(geom.Point{0.1, 5})
	k2 := c.Key(geom.Point{0.9, 5})
	if k1 == k2 {
		t.Error("degenerate axis should still distinguish x positions")
	}
}

func TestCurveLocality(t *testing.T) {
	// Statistical locality check: pairs of nearby points should have
	// closer keys (on average) than far pairs. This is the property the
	// paper relies on ("two points whose indices on the curve are close
	// are also often close in the original space", §3.1).
	rng := rand.New(rand.NewSource(7))
	box := geom.NewBox(geom.Point{0, 0, 0}, geom.Point{1, 1, 1}, 3)
	c := NewCurve(box, 3)
	var nearSum, farSum float64
	const trials = 3000
	for i := 0; i < trials; i++ {
		p := geom.Point{rng.Float64(), rng.Float64(), rng.Float64()}
		q := p
		for d := 0; d < 3; d++ {
			q[d] += (rng.Float64() - 0.5) * 0.01
		}
		r := geom.Point{rng.Float64(), rng.Float64(), rng.Float64()}
		kp, kq, kr := c.Key(p), c.Key(q), c.Key(r)
		nearSum += absDiff(kp, kq)
		farSum += absDiff(kp, kr)
	}
	if nearSum >= farSum/4 {
		t.Errorf("locality weak: near key distance %g vs far %g", nearSum/trials, farSum/trials)
	}
}

func absDiff(a, b uint64) float64 {
	if a > b {
		return float64(a - b)
	}
	return float64(b - a)
}

func TestCellCenterInverse(t *testing.T) {
	box := geom.NewBox(geom.Point{-2, 3}, geom.Point{4, 9}, 2)
	c := NewCurveOrder(box, 2, 10)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		p := geom.Point{-2 + 6*rng.Float64(), 3 + 6*rng.Float64()}
		h := c.Key(p)
		center := c.CellCenter(h)
		// The cell center must map back to the same key.
		if got := c.Key(center); got != h {
			t.Fatalf("CellCenter not in same cell: %v -> %d -> %v -> %d", p, h, center, got)
		}
	}
}

func TestOrderClamping(t *testing.T) {
	box := geom.NewBox(geom.Point{0, 0, 0}, geom.Point{1, 1, 1}, 3)
	c := NewCurveOrder(box, 3, 60) // silently clamped to Order3D
	if c.Bits() != Order3D {
		t.Errorf("bits = %d, want clamped %d", c.Bits(), Order3D)
	}
	c = NewCurveOrder(box, 3, 0)
	if c.Bits() != 1 {
		t.Errorf("bits = %d, want 1", c.Bits())
	}
	if c.Dim() != 3 {
		t.Errorf("dim = %d", c.Dim())
	}
}

func TestKeyPointsMatchesKey(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ps := geom.NewPointSet(2, 100)
	for i := 0; i < 100; i++ {
		ps.Append(geom.Point{rng.Float64(), rng.Float64()}, 1)
	}
	c := NewCurve(ps.Bounds(), 2)
	keys := c.KeyPoints(ps)
	for i := 0; i < ps.Len(); i++ {
		if keys[i] != c.Key(ps.At(i)) {
			t.Fatalf("KeyPoints[%d] mismatch", i)
		}
	}
}

func BenchmarkKey2D(b *testing.B) {
	box := geom.NewBox(geom.Point{0, 0}, geom.Point{1, 1}, 2)
	c := NewCurve(box, 2)
	p := geom.Point{0.637, 0.281}
	var s uint64
	for i := 0; i < b.N; i++ {
		s += c.Key(p)
	}
	_ = s
}

func BenchmarkKey3D(b *testing.B) {
	box := geom.NewBox(geom.Point{0, 0, 0}, geom.Point{1, 1, 1}, 3)
	c := NewCurve(box, 3)
	p := geom.Point{0.637, 0.281, 0.913}
	var s uint64
	for i := 0; i < b.N; i++ {
		s += c.Key(p)
	}
	_ = s
}
