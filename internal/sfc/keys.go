// Batch Hilbert key kernels over SoA columns.
//
// The ingest phase (paper §4.1) computes one Hilbert key per input point
// before the distributed sort. The scalar path — Cell → axesToTranspose →
// interleave — spends most of its time in the bit-serial interleave loop
// (bits·dim shift/or iterations per point, 62 for the default 2D order)
// and in per-point call overhead. The kernels below produce bit-identical
// keys from flat coordinate columns with
//
//   - the transpose loop specialized and branch-free for 2D/3D (the
//     conditional bit swaps become mask arithmetic, and the trailing
//     Gray-flip accumulation collapses to a suffix-parity computed in
//     five shift/xors), and
//   - the interleave replaced by table-free magic-mask bit spreading
//     (Morton-style: bit j of an axis word moves to bit j·dim in O(log
//     bits) shift/and steps).
//
// All operations are exact integer arithmetic, so the kernels are pinned
// bit-identical to Curve.Key by TestKeysColsMatchesKey (and fuzzed).
package sfc

import (
	"geographer/internal/geom"
	"geographer/internal/sched"
)

// spread2 spaces the low 32 bits of v apart: bit j moves to bit 2j.
func spread2(v uint64) uint64 {
	v &= 0xffffffff
	v = (v | v<<16) & 0x0000ffff0000ffff
	v = (v | v<<8) & 0x00ff00ff00ff00ff
	v = (v | v<<4) & 0x0f0f0f0f0f0f0f0f
	v = (v | v<<2) & 0x3333333333333333
	v = (v | v<<1) & 0x5555555555555555
	return v
}

// spread3 spaces the low 21 bits of v apart: bit j moves to bit 3j.
func spread3(v uint64) uint64 {
	v &= 0x1fffff
	v = (v | v<<32) & 0x001f00000000ffff
	v = (v | v<<16) & 0x001f0000ff0000ff
	v = (v | v<<8) & 0x100f00f00f00f00f
	v = (v | v<<4) & 0x10c30c30c30c30c3
	v = (v | v<<2) & 0x1249249249249249
	return v
}

// suffixParity returns a word whose bit j is the parity of v's bits
// strictly above j — exactly the Gray-flip accumulator t of
// axesToTranspose (t ^= q-1 for every set bit q>1 of the last axis).
func suffixParity(v uint32) uint32 {
	t := v >> 1
	t ^= t >> 1
	t ^= t >> 2
	t ^= t >> 4
	t ^= t >> 8
	t ^= t >> 16
	return t
}

// index2D is Index(c, bits, 2) with the transpose unrolled branch-free
// and the interleave replaced by bit spreading.
func index2D(x0, x1 uint32, bits uint) uint64 {
	for s := int(bits) - 1; s >= 1; s-- {
		q := uint32(1) << uint(s)
		p := q - 1
		// Axis 0: a set bit q inverts the low bits of x0 (the swap with
		// itself is a no-op on the other branch).
		x0 ^= p & -(x0 >> uint(s) & 1)
		// Axis 1: set bit ⇒ invert x0's low bits; clear bit ⇒ swap the
		// low bits of x0 and x1.
		m := -(x1 >> uint(s) & 1)
		t := (x0 ^ x1) & p &^ m
		x0 ^= (p & m) | t
		x1 ^= t
	}
	x1 ^= x0 // Gray encode
	t := suffixParity(x1)
	x0 ^= t
	x1 ^= t
	return spread2(uint64(x0))<<1 | spread2(uint64(x1))
}

// index3D is Index(c, bits, 3), branch-free (see index2D).
func index3D(x0, x1, x2 uint32, bits uint) uint64 {
	for s := int(bits) - 1; s >= 1; s-- {
		q := uint32(1) << uint(s)
		p := q - 1
		x0 ^= p & -(x0 >> uint(s) & 1)
		m1 := -(x1 >> uint(s) & 1)
		t1 := (x0 ^ x1) & p &^ m1
		x0 ^= (p & m1) | t1
		x1 ^= t1
		m2 := -(x2 >> uint(s) & 1)
		t2 := (x0 ^ x2) & p &^ m2
		x0 ^= (p & m2) | t2
		x2 ^= t2
	}
	x1 ^= x0 // Gray encode
	x2 ^= x1
	t := suffixParity(x2)
	x0 ^= t
	x1 ^= t
	x2 ^= t
	return spread3(uint64(x0))<<2 | spread3(uint64(x1))<<1 | spread3(uint64(x2))
}

// KeysCols computes the Hilbert key of every point in the SoA columns and
// writes them to out (len(out) = cols.Len()). Results are bit-identical
// to calling Key per point; only the Dim leading columns are read, so a
// 2D store may leave Z nil.
func (c *Curve) KeysCols(cols *geom.Cols, out []uint64) {
	c.keysRange(cols, out, 0, len(out))
}

// keysRange computes keys for the half-open index range [lo, hi).
func (c *Curve) keysRange(cols *geom.Cols, out []uint64, lo, hi int) {
	maxCellF := float64(uint32(1)<<c.bits - 1)
	maxCell := uint32(1)<<c.bits - 1
	switch c.dim {
	case 2:
		px, py := cols.X, cols.Y
		min0, min1 := c.box.Min[0], c.box.Min[1]
		s0, s1 := c.scale[0], c.scale[1]
		bits := c.bits
		for i := lo; i < hi; i++ {
			v0 := (px[i] - min0) * s0
			v1 := (py[i] - min1) * s1
			var c0, c1 uint32
			switch {
			case v0 <= 0 || v0 != v0: // also catches NaN
				c0 = 0
			case v0 >= maxCellF:
				c0 = maxCell
			default:
				c0 = uint32(v0)
			}
			switch {
			case v1 <= 0 || v1 != v1:
				c1 = 0
			case v1 >= maxCellF:
				c1 = maxCell
			default:
				c1 = uint32(v1)
			}
			out[i] = index2D(c0, c1, bits)
		}
	case 3:
		px, py, pz := cols.X, cols.Y, cols.Z
		min0, min1, min2 := c.box.Min[0], c.box.Min[1], c.box.Min[2]
		s0, s1, s2 := c.scale[0], c.scale[1], c.scale[2]
		bits := c.bits
		for i := lo; i < hi; i++ {
			v0 := (px[i] - min0) * s0
			v1 := (py[i] - min1) * s1
			v2 := (pz[i] - min2) * s2
			var c0, c1, c2 uint32
			switch {
			case v0 <= 0 || v0 != v0:
				c0 = 0
			case v0 >= maxCellF:
				c0 = maxCell
			default:
				c0 = uint32(v0)
			}
			switch {
			case v1 <= 0 || v1 != v1:
				c1 = 0
			case v1 >= maxCellF:
				c1 = maxCell
			default:
				c1 = uint32(v1)
			}
			switch {
			case v2 <= 0 || v2 != v2:
				c2 = 0
			case v2 >= maxCellF:
				c2 = maxCell
			default:
				c2 = uint32(v2)
			}
			out[i] = index3D(c0, c1, c2, bits)
		}
	default:
		// Unusual dimensions (1D) take the scalar path; only the leading
		// columns exist, so the point is assembled from them directly.
		for i := lo; i < hi; i++ {
			var p geom.Point
			p[0] = cols.X[i]
			if cols.Y != nil {
				p[1] = cols.Y[i]
			}
			if cols.Z != nil {
				p[2] = cols.Z[i]
			}
			out[i] = c.Key(p)
		}
	}
}

// KeysColsParallel is KeysCols with the shared machine-independent
// chunk grid (geom.ChunkGrid, the same grid the intra-rank assignment
// kernels split on) processed by up to `workers` concurrent workers —
// the caller plus helpers admitted against the given sched.Lease (nil
// draws on the process-default pool; ≤ 1 worker runs serially). Keys
// are pure per-point functions written to disjoint indices, so output
// is bit-identical for every worker count and token availability.
func (c *Curve) KeysColsParallel(cols *geom.Cols, out []uint64, workers int, lease *sched.Lease) {
	n := len(out)
	nc := geom.ChunkGrid(n)
	if nc == 1 {
		c.keysRange(cols, out, 0, n)
		return
	}
	chunk := (n + nc - 1) / nc
	lease.ForEach(workers, nc, func(s int) {
		lo := s * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		c.keysRange(cols, out, lo, hi)
	})
}
