package experiments

import (
	"fmt"
	"io"

	"geographer/internal/core"
	"geographer/internal/mesh"
	"geographer/internal/mpi"
	"geographer/internal/partition"
)

// PhaseRow is one phase-time breakdown of a Geographer run: where the
// wall clock goes between the ingest pipeline (Hilbert keys + global
// sort/redistribution, §4.1) and the balanced k-means itself. Perf PRs
// report their before/after against these rows so speedups are
// attributed to the phase that actually moved.
type PhaseRow struct {
	Graph   string
	N, K, P int

	SFCSeconds    float64 // batch Hilbert key computation
	SortSeconds   float64 // distributed sample sort + exact rebalance
	KMeansSeconds float64 // Algorithm 1/2 rounds
	TotalSeconds  float64
	IngestShare   float64 // (sfc+sort)/total
}

// phaseWorkloads lists the tracked ingest workloads: the facade workload
// (refined 2D mesh, n=20k, k=16, p=4 — BenchmarkPartitionFacade's shape)
// plus a 3D mesh so both key kernels and both exchange layouts stay
// measured. Sizes scale with sc.Table2N (20k at default scale).
func phaseWorkloads(sc Scale) []struct {
	kind string
	n, k int
} {
	return []struct {
		kind string
		n, k int
	}{
		{"refined", sc.Table2N, 16},
		{"tube3d", sc.Table2N * 3 / 4, 12},
	}
}

// Phases measures the ingest/sort vs k-means phase breakdown of
// Geographer on the tracked workloads (p = 4 simulated ranks, best of
// sc.Repeats runs — wall-clock minima are the stable perf signal).
func Phases(w io.Writer, sc Scale) ([]PhaseRow, error) {
	const p = 4
	repeats := sc.Repeats
	if repeats < 1 {
		repeats = 1
	}
	fmt.Fprintf(w, "Phase breakdown: ingest (sfc keys + sort/redistribute) vs k-means, p=%d, best of %d\n", p, repeats)
	fmt.Fprintf(w, "%-10s %8s %4s %10s %10s %10s %10s %8s\n",
		"graph", "n", "k", "sfc[s]", "sort[s]", "kmeans[s]", "total[s]", "ingest%")
	var out []PhaseRow
	for _, wl := range phaseWorkloads(sc) {
		var m *mesh.Mesh
		var err error
		switch wl.kind {
		case "refined":
			m, err = mesh.GenRefinedTri(wl.n, 42)
		case "tube3d":
			m, err = mesh.GenTube3D(wl.n, 42)
		default:
			err = fmt.Errorf("phases: unknown workload %q", wl.kind)
		}
		if err != nil {
			return nil, err
		}
		cfg := core.DefaultConfig()
		cfg.Seed = 1
		row := PhaseRow{Graph: wl.kind, N: m.N(), K: wl.k, P: p}
		for rep := 0; rep < repeats; rep++ {
			bkm := core.New(cfg)
			world := mpi.NewWorld(p)
			if _, err := partition.Run(world, m.Points, wl.k, bkm); err != nil {
				return nil, err
			}
			info := bkm.LastInfo()
			total := info.SFCSeconds + info.SortSeconds + info.KMeansSeconds
			if rep == 0 || total < row.TotalSeconds {
				row.SFCSeconds = info.SFCSeconds
				row.SortSeconds = info.SortSeconds
				row.KMeansSeconds = info.KMeansSeconds
				row.TotalSeconds = total
			}
		}
		if row.TotalSeconds > 0 {
			row.IngestShare = (row.SFCSeconds + row.SortSeconds) / row.TotalSeconds
		}
		out = append(out, row)
		fmt.Fprintf(w, "%-10s %8d %4d %10.4f %10.4f %10.4f %10.4f %7.1f%%\n",
			row.Graph, row.N, row.K, row.SFCSeconds, row.SortSeconds,
			row.KMeansSeconds, row.TotalSeconds, 100*row.IngestShare)
	}
	return out, nil
}
