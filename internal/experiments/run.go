package experiments

import (
	"fmt"
	"time"

	"geographer/internal/baselines"
	"geographer/internal/core"
	"geographer/internal/mesh"
	"geographer/internal/metrics"
	"geographer/internal/mpi"
	"geographer/internal/partition"
	"geographer/internal/spmv"
)

// phaseReporter is implemented by tools that expose per-phase wall times
// (core.BalancedKMeans); baselines report no phases.
type phaseReporter interface{ LastInfo() core.Info }

func baselinesMJ() partition.Distributed   { return baselines.MultiJagged() }
func baselinesRCB() partition.Distributed  { return baselines.RCB() }
func baselinesRIB() partition.Distributed  { return baselines.RIB() }
func baselinesHSFC() partition.Distributed { return baselines.HSFC{} }

// Row is one (graph, tool) measurement with the columns of the paper's
// Tables 1 and 2 plus the modeled parallel time used by the scaling
// figures.
type Row struct {
	Graph string
	N     int
	M     int64
	Tool  string
	K     int
	P     int

	Seconds      float64 // wall-clock partitioning time (all simulated ranks on this host)
	ModelSeconds float64 // α-β + op-cost modeled parallel time (scaling shape)

	// Phase wall times (tools exposing a core.Info only; zero otherwise):
	// ingest = SFC key computation + global sort/redistribution, then the
	// balanced k-means itself. BENCH_*.json entries should attribute
	// speedups to the phase that actually moved.
	SFCSeconds    float64
	SortSeconds   float64
	KMeansSeconds float64

	Cut        int64
	MaxComm    int64
	TotComm    int64
	HarmDiam   float64
	Imbalance  float64
	SpMVComm   float64 // modeled SpMV communication seconds per iteration
	SpMVWall   float64 // measured wall SpMV communication seconds per iteration
	Assignment partition.P
}

// RunOne partitions m into k blocks with the tool over p simulated ranks
// and evaluates all §2 metrics plus the SpMV benchmark.
func RunOne(m *mesh.Mesh, tool partition.Distributed, k, p, spmvIters, repeats int) (Row, error) {
	if repeats < 1 {
		repeats = 1
	}
	row := Row{Graph: m.Name, N: m.N(), M: m.G.M(), Tool: tool.Name(), K: k, P: p}

	var part partition.P
	for rep := 0; rep < repeats; rep++ {
		world := mpi.NewWorld(p)
		t0 := time.Now()
		var err error
		part, err = partition.Run(world, m.Points, k, tool)
		if err != nil {
			return row, fmt.Errorf("%s on %s: %w", tool.Name(), m.Name, err)
		}
		row.Seconds += time.Since(t0).Seconds()
		comp, comm := world.CostModel().ModeledTime(world.Stats())
		row.ModelSeconds += comp + comm
		if pr, ok := tool.(phaseReporter); ok {
			info := pr.LastInfo()
			row.SFCSeconds += info.SFCSeconds
			row.SortSeconds += info.SortSeconds
			row.KMeansSeconds += info.KMeansSeconds
		}
	}
	row.Seconds /= float64(repeats)
	row.ModelSeconds /= float64(repeats)
	row.SFCSeconds /= float64(repeats)
	row.SortSeconds /= float64(repeats)
	row.KMeansSeconds /= float64(repeats)
	row.Assignment = part

	rep, err := metrics.Evaluate(m.G, m.Points, part.Assign, k)
	if err != nil {
		return row, fmt.Errorf("evaluate %s on %s: %w", tool.Name(), m.Name, err)
	}
	row.Cut = rep.EdgeCut
	row.MaxComm = rep.MaxCommVol
	row.TotComm = rep.TotCommVol
	row.HarmDiam = rep.HarmDiam
	row.Imbalance = rep.Imbalance

	if spmvIters > 0 {
		res, err := spmv.Benchmark(m.G, part.Assign, k, spmvIters)
		if err != nil {
			return row, fmt.Errorf("spmv for %s on %s: %w", tool.Name(), m.Name, err)
		}
		row.SpMVComm = res.ModeledCommSeconds
		row.SpMVWall = res.CommSeconds
	}
	return row, nil
}

// RunInstance runs every tool in tools on one instance.
func RunInstance(in Instance, n, k, p, spmvIters, repeats int, tools []partition.Distributed) ([]Row, error) {
	m, err := in.Materialize(n)
	if err != nil {
		return nil, err
	}
	rows := make([]Row, 0, len(tools))
	for _, tool := range tools {
		row, err := RunOne(m, tool, k, p, spmvIters, repeats)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}
