package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteRowsCSV dumps measurement rows as CSV for external plotting.
func WriteRowsCSV(w io.Writer, rows []Row) error {
	cw := csv.NewWriter(w)
	header := []string{"graph", "n", "m", "tool", "k", "p", "wall_s", "modeled_s",
		"sfc_s", "sort_s", "kmeans_s",
		"cut", "max_comm", "tot_comm", "harm_diam", "imbalance", "spmv_comm_s", "spmv_wall_s"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Graph,
			strconv.Itoa(r.N),
			strconv.FormatInt(r.M, 10),
			r.Tool,
			strconv.Itoa(r.K),
			strconv.Itoa(r.P),
			fmtF(r.Seconds),
			fmtF(r.ModelSeconds),
			fmtF(r.SFCSeconds),
			fmtF(r.SortSeconds),
			fmtF(r.KMeansSeconds),
			strconv.FormatInt(r.Cut, 10),
			strconv.FormatInt(r.MaxComm, 10),
			strconv.FormatInt(r.TotComm, 10),
			fmtF(r.HarmDiam),
			fmtF(r.Imbalance),
			fmtF(r.SpMVComm),
			fmtF(r.SpMVWall),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WritePhaseRowsCSV dumps the ingest/k-means phase breakdown.
func WritePhaseRowsCSV(w io.Writer, rows []PhaseRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"graph", "n", "k", "p", "sfc_s", "sort_s", "kmeans_s", "total_s", "ingest_share"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{r.Graph, strconv.Itoa(r.N), strconv.Itoa(r.K), strconv.Itoa(r.P),
			fmtF(r.SFCSeconds), fmtF(r.SortSeconds), fmtF(r.KMeansSeconds),
			fmtF(r.TotalSeconds), fmtF(r.IngestShare)}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteRepartRowsCSV dumps the warm-start repartitioning timesteps.
func WriteRepartRowsCSV(w io.Writer, rows []RepartRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"graph", "step", "mode", "k", "p", "wall_s", "cut", "imbalance", "migrated_w", "migrated_frac"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{r.Graph, strconv.Itoa(r.Step), r.Mode, strconv.Itoa(r.K), strconv.Itoa(r.P),
			fmtF(r.Seconds), strconv.FormatInt(r.Cut, 10), fmtF(r.Imbalance),
			fmtF(r.MigratedWeight), fmtF(r.MigratedFrac)}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteStreamRowsCSV dumps the streaming-session timesteps (see
// docs/cli.md for the column reference).
func WriteStreamRowsCSV(w io.Writer, rows []StreamRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"graph", "step", "mode", "k", "p",
		"wall_s", "ingest_s", "kmeans_s", "cut", "imbalance", "migrated_w", "migrated_frac",
		"dist_calcs", "hamerly_skips", "boundary_frac", "incremental"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{r.Graph, strconv.Itoa(r.Step), r.Mode, strconv.Itoa(r.K), strconv.Itoa(r.P),
			fmtF(r.Seconds), fmtF(r.IngestSeconds), fmtF(r.KMeansSeconds),
			strconv.FormatInt(r.Cut, 10), fmtF(r.Imbalance),
			fmtF(r.MigratedWeight), fmtF(r.MigratedFrac),
			strconv.FormatInt(r.DistCalcs, 10), strconv.FormatInt(r.HamerlySkips, 10),
			fmtF(r.BoundaryFrac), strconv.FormatBool(r.Incremental)}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteChaosRowsCSV dumps the fault-injection timesteps (see
// docs/cli.md for the column reference).
func WriteChaosRowsCSV(w io.Writer, rows []ChaosRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"graph", "step", "k", "p",
		"retries", "fired_total", "identical", "pre_imbalance", "migrated_w",
		"dist_calcs", "wall_s", "ref_wall_s"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{r.Graph, strconv.Itoa(r.Step), strconv.Itoa(r.K), strconv.Itoa(r.P),
			strconv.Itoa(r.Retries), strconv.FormatInt(r.FiredTotal, 10),
			strconv.FormatBool(r.Identical), fmtF(r.PreImbalance), fmtF(r.MigratedWeight),
			strconv.FormatInt(r.DistCalcs, 10), fmtF(r.Seconds), fmtF(r.RefSeconds)}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteScalePointsCSV dumps scaling series (Figures 3a/3b).
func WriteScalePointsCSV(w io.Writer, pts []ScalePoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"tool", "p", "k", "n", "wall_s", "modeled_s"}); err != nil {
		return err
	}
	for _, pt := range pts {
		rec := []string{pt.Tool, strconv.Itoa(pt.P), strconv.Itoa(pt.K), strconv.Itoa(pt.N),
			fmtF(pt.Seconds), fmtF(pt.ModelSeconds)}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteRatiosCSV dumps Figure 2 class ratios.
func WriteRatiosCSV(w io.Writer, ratios []ClassRatios) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"class", "tool", "edge_cut", "max_comm", "tot_comm", "harm_diam", "time_comm", "instances"}); err != nil {
		return err
	}
	for _, r := range ratios {
		rec := []string{r.Class, r.Tool, fmtF(r.EdgeCut), fmtF(r.MaxComm), fmtF(r.TotComm),
			fmtF(r.HarmDiam), fmtF(r.TimeComm), strconv.Itoa(r.Instances)}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func fmtF(v float64) string { return fmt.Sprintf("%g", v) }
