package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestChaosQuick runs the fault-injection experiment at quick scale and
// checks the acceptance shape: at least 3 scheduled faults fire, every
// fired fault is recovered, and every step of the chaos chain is
// bit-identical to the fault-free chain.
func TestChaosQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	var buf bytes.Buffer
	rows, rep, err := Chaos(&buf, QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != chaosSchema {
		t.Fatalf("schema %q", rep.Schema)
	}
	if want := len(repartWorkloads(QuickScale())); len(rep.Cells) != want {
		t.Fatalf("%d cells, want %d", len(rep.Cells), want)
	}
	for _, c := range rep.Cells {
		if c.FaultsFired < 3 {
			t.Errorf("%s: only %d faults fired, want >= 3", c.Graph, c.FaultsFired)
		}
		if c.Recoveries != int(c.FaultsFired) {
			t.Errorf("%s: %d faults fired but %d recoveries", c.Graph, c.FaultsFired, c.Recoveries)
		}
		if !c.Identical {
			t.Errorf("%s: chaos chain diverged from the fault-free chain", c.Graph)
		}
		if c.Steps != chaosSteps || c.P != chaosP {
			t.Errorf("%s: cell config steps=%d p=%d", c.Graph, c.Steps, c.P)
		}
		if c.Cut <= 0 {
			t.Errorf("%s: cut %d after final step", c.Graph, c.Cut)
		}
	}
	for _, r := range rows {
		if !r.Identical {
			t.Errorf("%s step %d: partition not identical", r.Graph, r.Step)
		}
	}
	if !strings.Contains(buf.String(), "bit-identical to fault-free chain: true") {
		t.Error("missing summary line")
	}

	var csv bytes.Buffer
	if err := WriteChaosRowsCSV(&csv, rows); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(csv.String(), "\n"); lines != len(rows)+1 {
		t.Errorf("%d CSV lines for %d rows", lines, len(rows))
	}
}
