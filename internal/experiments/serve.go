package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"geographer/internal/core"
	"geographer/internal/geom"
	"geographer/internal/mesh"
	"geographer/internal/mpi"
	"geographer/internal/repart"
	"geographer/internal/sched"
	"geographer/internal/serve"
)

// Serving-experiment shape: serveTenants concurrent synthetic tenants,
// each a warm repartitioning chain of serveSteps steps, multiplexed
// through one serve.Registry whose worker pool is deliberately smaller
// than the tenants' aggregate demand (servePool workers shared across
// serveTenants × serveBudget leased). Every tenant is force-parked to
// checkpoint bytes once mid-chain — with a weight update already
// pending, the hard case — and restored on its next verb.
const (
	serveTenants = 8
	serveSteps   = 3
	servePool    = 4 // shared pool capacity
	serveBudget  = 2 // per-tenant leased worker budget
	serveK       = 8
	serveP       = 2 // simulated ranks per tenant
	// serveEvictStep is the chain step before whose repartition each
	// tenant is force-parked (after its weight update, so the pending
	// delta must survive the checkpoint round-trip).
	serveEvictStep = 2
)

// ServeRow is one tenant's chain summary: whether every step of its
// partition sequence came back bit-identical to the tenant's solo
// reference chain (same mesh, same weights, a private session with no
// registry, no pool contention, no eviction), and the deterministic
// work counter to pin the incremental fast path.
type ServeRow struct {
	Tenant string
	Graph  string
	N      int
	K, P   int

	// Identical: all chain steps (cold + warm) bit-identical to solo.
	Identical bool
	// DistCalcs sums the warm steps' distance evaluations; solo must
	// match exactly — eviction/restore may not knock a tenant off the
	// incremental path.
	DistCalcs     int64
	SoloDistCalcs int64

	Verbs   int
	WallSec float64
}

// ServeCell is the registry-wide summary of one serving run. The
// deterministic fields (IdenticalChains, Evictions, Restores,
// DistCalcs) are exact functions of the workload — tools/benchdiff
// fails on drift. Throughput and latency are machine- and
// scheduling-dependent, compared warn-only.
type ServeCell struct {
	Tenants int `json:"tenants"`
	N       int `json:"n"`
	K       int `json:"k"`
	P       int `json:"p"`
	Steps   int `json:"steps"`
	Pool    int `json:"pool"`
	Budget  int `json:"budget"`

	// IdenticalChains is the acceptance criterion: tenants whose whole
	// chain was bit-identical to their solo reference. Must equal
	// Tenants on a healthy run.
	IdenticalChains int `json:"identical_chains"`
	// Evictions/Restores count the forced mid-chain park/restore round
	// trips; one of each per tenant.
	Evictions int64 `json:"evictions"`
	Restores  int64 `json:"restores"`
	DistCalcs int64 `json:"dist_calcs"`

	Verbs       int     `json:"verbs"`
	WallSec     float64 `json:"wall_sec"`
	VerbsPerSec float64 `json:"verbs_per_sec"`
	P50Ms       float64 `json:"p50_ms"`
	P95Ms       float64 `json:"p95_ms"`
	P99Ms       float64 `json:"p99_ms"`
}

// ServeReport is the BENCH_serve.json document.
type ServeReport struct {
	Schema string      `json:"schema"`
	Cells  []ServeCell `json:"cells"`
}

// serveSchema versions the report; benchdiff refuses mismatched schemas.
const serveSchema = "geographer-serve/v1"

// serveMesh builds tenant id's point set: ids alternate between the two
// dynamic workload families, each on its own generator seed so no two
// tenants share geometry.
func serveMesh(id, n int) (*mesh.Mesh, string, error) {
	if id%2 == 0 {
		m, err := mesh.GenClimate(n, int64(42+id))
		return m, "climate", err
	}
	m, err := mesh.GenRefinedTri(n, int64(42+id))
	return m, "refined", err
}

// serveSoloChain runs tenant id's chain on a private session — no
// registry, no shared pool, no eviction — and returns the per-step
// assignments (index 0 = cold partition) plus the summed warm-step
// distance evaluations. This is the bit-identicality reference.
func serveSoloChain(m *mesh.Mesh, id int) ([][]int32, int64, error) {
	cfg := core.DefaultConfig()
	cfg.Seed = 1
	ps := &geom.PointSet{Dim: m.Points.Dim, Coords: m.Points.Coords, Weight: perturbedWeights(m, 7*id)}
	s, err := repart.NewSession(mpi.NewWorld(serveP), ps, serveK, cfg)
	if err != nil {
		return nil, 0, err
	}
	defer s.Close()

	chain := make([][]int32, 0, serveSteps+1)
	p, err := s.Partition()
	if err != nil {
		return nil, 0, err
	}
	chain = append(chain, append([]int32(nil), p.Assign...))
	var distCalcs int64
	for t := 1; t <= serveSteps; t++ {
		if err := s.UpdateWeights(perturbedWeights(m, 7*id+t)); err != nil {
			return nil, 0, err
		}
		p, st, acted, err := s.RepartitionIfAbove(0)
		if err != nil {
			return nil, 0, err
		}
		if !acted {
			return nil, 0, fmt.Errorf("solo tenant %d step %d did not act", id, t)
		}
		chain = append(chain, append([]int32(nil), p.Assign...))
		distCalcs += st.DistCalcs
	}
	return chain, distCalcs, nil
}

// sameAssign reports bit-identity of two assignment vectors.
func sameAssign(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// quantile returns the q-quantile of sorted (nearest-rank).
func quantile(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i].Seconds() * 1e3
}

// Serve runs the partitioning-as-a-service load experiment (DESIGN.md,
// "Multi-tenancy invariants"): serveTenants concurrent tenants drive
// warm repartitioning chains through one registry under a worker pool
// half their aggregate leased demand, each tenant is force-parked to
// checkpoint bytes once mid-chain (with a pending weight delta) and
// restored on next touch, and every step of every chain is compared
// bit-for-bit against that tenant's solo session. Shared scheduling
// must cost only time — never output: IdenticalChains == Tenants and
// per-tenant DistCalcs equal to solo are the invariants under test;
// throughput and latency quantiles are the price of sharing.
func Serve(w io.Writer, sc Scale) ([]ServeRow, ServeReport, error) {
	rep := ServeReport{Schema: serveSchema}
	n := sc.Table2N
	fmt.Fprintf(w, "Multi-tenant serving: %d tenants (n=%d k=%d p=%d each, %d warm steps), pool=%d workers, per-tenant budget=%d, forced evict+restore at step %d\n",
		serveTenants, n, serveK, serveP, serveSteps, servePool, serveBudget, serveEvictStep)

	// Solo references, computed serially up front so the concurrent
	// phase measures only registry traffic.
	type refChain struct {
		m         *mesh.Mesh
		kind      string
		chain     [][]int32
		distCalcs int64
	}
	refs := make([]refChain, serveTenants)
	for id := 0; id < serveTenants; id++ {
		m, kind, err := serveMesh(id, n)
		if err != nil {
			return nil, rep, err
		}
		chain, dc, err := serveSoloChain(m, id)
		if err != nil {
			return nil, rep, fmt.Errorf("solo reference %d: %w", id, err)
		}
		refs[id] = refChain{m: m, kind: kind, chain: chain, distCalcs: dc}
	}

	g := serve.NewRegistry(serve.Config{Pool: sched.NewPool(servePool)})
	defer g.Drain()

	rows := make([]ServeRow, serveTenants)
	lats := make([][]time.Duration, serveTenants)
	errs := make([]error, serveTenants)
	var wg sync.WaitGroup
	t0 := time.Now()
	for id := 0; id < serveTenants; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			ref := refs[id]
			name := fmt.Sprintf("tenant-%d", id)
			row := ServeRow{
				Tenant: name, Graph: ref.kind, N: ref.m.N(), K: serveK, P: serveP,
				Identical: true, SoloDistCalcs: ref.distCalcs,
			}
			start := time.Now()
			verb := func(op string, f func() error) bool {
				v0 := time.Now()
				err := f()
				lats[id] = append(lats[id], time.Since(v0))
				row.Verbs++
				if err != nil {
					errs[id] = fmt.Errorf("tenant %d %s: %w", id, op, err)
				}
				return err == nil
			}

			ps := &geom.PointSet{Dim: ref.m.Points.Dim, Coords: ref.m.Points.Coords, Weight: perturbedWeights(ref.m, 7*id)}
			if !verb("create", func() error {
				return g.Create(nil, name, ps, serve.TenantOptions{K: serveK, Processes: serveP, Workers: serveBudget})
			}) {
				return
			}
			ok := verb("partition", func() error {
				p, err := g.Partition(nil, name)
				if err == nil && !sameAssign(p.Assign, ref.chain[0]) {
					row.Identical = false
				}
				return err
			})
			for t := 1; ok && t <= serveSteps; t++ {
				wt := perturbedWeights(ref.m, 7*id+t)
				if ok = verb("weights", func() error { return g.UpdateWeights(name, wt) }); !ok {
					break
				}
				if t == serveEvictStep {
					// Park with the weight delta pending: the checkpoint must
					// carry it and the restored step must still be incremental.
					if ok = verb("evict", func() error { return g.Evict(name) }); !ok {
						break
					}
				}
				ok = verb("repartition", func() error {
					p, st, acted, err := g.RepartitionIfAbove(nil, name, 0)
					if err != nil {
						return err
					}
					if !acted {
						return fmt.Errorf("step %d did not act", t)
					}
					if !sameAssign(p.Assign, ref.chain[t]) {
						row.Identical = false
					}
					row.DistCalcs += st.DistCalcs
					return nil
				})
			}
			row.WallSec = time.Since(start).Seconds()
			rows[id] = row
		}(id)
	}
	wg.Wait()
	wall := time.Since(t0).Seconds()
	for _, err := range errs {
		if err != nil {
			return nil, rep, err
		}
	}
	st := g.Stats()

	cell := ServeCell{
		Tenants: serveTenants, N: n, K: serveK, P: serveP, Steps: serveSteps,
		Pool: servePool, Budget: serveBudget,
		Evictions: st.Evictions, Restores: st.Restores,
		WallSec: wall,
	}
	var all []time.Duration
	fmt.Fprintf(w, "%-10s %-8s %8s %6s %12s %12s %8s %6s\n",
		"tenant", "graph", "n", "verbs", "dist_calcs", "solo_dc", "wall[s]", "ident")
	for _, row := range rows {
		cell.Verbs += row.Verbs
		cell.DistCalcs += row.DistCalcs
		id := "yes"
		if row.Identical && row.DistCalcs == row.SoloDistCalcs {
			cell.IdenticalChains++
		} else {
			id = "NO"
		}
		fmt.Fprintf(w, "%-10s %-8s %8d %6d %12d %12d %8.4f %6s\n",
			row.Tenant, row.Graph, row.N, row.Verbs, row.DistCalcs, row.SoloDistCalcs, row.WallSec, id)
	}
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	if wall > 0 {
		cell.VerbsPerSec = float64(cell.Verbs) / wall
	}
	cell.P50Ms = quantile(all, 0.50)
	cell.P95Ms = quantile(all, 0.95)
	cell.P99Ms = quantile(all, 0.99)
	rep.Cells = append(rep.Cells, cell)

	fmt.Fprintf(w, "summary: %d/%d chains bit-identical to solo; %d evictions, %d restores; %d verbs in %.3fs (%.1f/s), latency p50=%.2fms p95=%.2fms p99=%.2fms\n",
		cell.IdenticalChains, cell.Tenants, cell.Evictions, cell.Restores,
		cell.Verbs, cell.WallSec, cell.VerbsPerSec, cell.P50Ms, cell.P95Ms, cell.P99Ms)
	return rows, rep, nil
}

// WriteServeJSON writes the report as indented JSON (the
// BENCH_serve.json format).
func WriteServeJSON(w io.Writer, rep ServeReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
