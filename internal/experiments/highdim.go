package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"time"

	"geographer/internal/core"
	"geographer/internal/geom"
	"geographer/internal/metrics"
	"geographer/internal/mpi"
	"geographer/internal/repart"
)

// HighdimConfig is one cell of the feature-space grid: a Gaussian-mixture
// clustering workload in Dim dimensions (beyond geom.MaxDim — the
// generic-dimension kernel path end to end: cold random init, warm
// incremental steps, all through the strided-column kernels).
type HighdimConfig struct {
	N     int `json:"n"`
	Dim   int `json:"dim"`
	M     int `json:"m"` // mixture components
	K     int `json:"k"`
	P     int `json:"p"`
	Steps int `json:"steps"`
}

// HighdimCell is the measurement of one cell. The deterministic fields
// (Collectives, CollectiveBytes, Barriers, DistCalcs, ChainCut,
// Imbalance) are exact functions of the cell config and must reproduce
// bit-for-bit run to run — tools/benchdiff fails on regressions there.
// Wall time and RSS are machine-dependent and compared warn-only.
type HighdimCell struct {
	HighdimConfig

	WallSec     float64 `json:"wall_sec"`
	IngestSec   float64 `json:"ingest_sec"`
	ColdSec     float64 `json:"cold_sec"` // cold partition (random init, generic kernels)
	StepSecMean float64 `json:"step_sec_mean"`
	PeakRSSMB   float64 `json:"peak_rss_mb"`

	Collectives     int64   `json:"collectives"`
	CollectiveBytes int64   `json:"collective_bytes"`
	Barriers        int64   `json:"barriers"`
	DistCalcs       int64   `json:"dist_calcs"` // cold + all warm steps
	ChainCut        int64   `json:"chain_cut"`  // cut over same-component chain edges, final step
	Imbalance       float64 `json:"imbalance"`  // after the final step
}

// HighdimReport is the BENCH_highdim.json document.
type HighdimReport struct {
	Schema string        `json:"schema"`
	Cells  []HighdimCell `json:"cells"`
}

// highdimSchema versions the report; benchdiff refuses mismatched schemas.
const highdimSchema = "geographer-highdim/v1"

// HighdimCells returns the grid for a scale: d ∈ {8, 16, 64} over the
// scale's point/rank counts, quick cells first (same convention as the
// soak — the committed default-scale BENCH_highdim.json then contains
// the quick cells CI's smoke runs diff against).
func HighdimCells(sc Scale) []HighdimConfig {
	cellsFor := func(s Scale) []HighdimConfig {
		out := make([]HighdimConfig, 0, 3)
		for _, dim := range []int{8, 16, 64} {
			out = append(out, HighdimConfig{
				N: s.HighdimN, Dim: dim, M: s.HighdimK, K: s.HighdimK,
				P: s.HighdimP, Steps: s.HighdimSteps,
			})
		}
		return out
	}
	cells := cellsFor(sc)
	if sc.HighdimN > QuickScale().HighdimN {
		cells = append(cellsFor(QuickScale()), cells...)
	}
	return cells
}

// highdimPoints generates the workload: an n-point Gaussian mixture of m
// components in dim dimensions (component centers uniform in [0, 10]^dim,
// unit noise), components assigned round-robin so the chain graph below
// is well defined. Deterministic in (n, dim, m) alone.
func highdimPoints(n, dim, m int) *geom.PointSet {
	rng := rand.New(rand.NewSource(int64(n)*131 + int64(dim)*17 + int64(m)))
	centers := make([]float64, m*dim)
	for i := range centers {
		centers[i] = rng.Float64() * 10
	}
	ps := &geom.PointSet{Dim: dim, Coords: make([]float64, n*dim), Weight: make([]float64, n)}
	for i := 0; i < n; i++ {
		c := centers[(i%m)*dim : (i%m+1)*dim]
		for d := 0; d < dim; d++ {
			ps.Coords[i*dim+d] = c[d] + rng.NormFloat64()
		}
	}
	for i := range ps.Weight {
		ps.Weight[i] = 0.5 + rng.Float64()
	}
	return ps
}

// highdimWeights is the per-step load wave (travelling over the point
// index, like the soak's).
func highdimWeights(base []float64, step int) []float64 {
	w := make([]float64, len(base))
	for i := range w {
		w[i] = base[i] * (1 + 0.3*math.Sin(float64(i)*0.41+float64(step)))
	}
	return w
}

// chainCut counts the cut edges of the mixture chain graph: point i is
// connected to i+m, the next point of its own component, so a clustering
// that keeps mixture components together has a small cut. The analog of
// the mesh experiments' edge cut for a workload with no mesh.
func chainCut(assign []int32, m int) int64 {
	var cut int64
	for i := 0; i+m < len(assign); i++ {
		if assign[i] != assign[i+m] {
			cut++
		}
	}
	return cut
}

// runHighdimCell runs one cell: session ingest, cold partition through
// the generic kernels (SFC bootstrap is unavailable beyond geom.MaxDim —
// the core forces sampled random init), then Steps warm incremental
// repartitions under the load wave.
func runHighdimCell(cfg HighdimConfig) (HighdimCell, error) {
	cell := HighdimCell{HighdimConfig: cfg}
	ps := highdimPoints(cfg.N, cfg.Dim, cfg.M)
	base := append([]float64(nil), ps.Weight...)

	ccfg := core.DefaultConfig()
	ccfg.Seed = 1
	w := mpi.NewWorld(cfg.P)
	t0 := time.Now()
	sess, err := repart.NewSession(w, ps, cfg.K, ccfg)
	if err != nil {
		return cell, err
	}
	defer sess.Close()
	cell.IngestSec = sess.IngestSeconds()

	tCold := time.Now()
	part, err := sess.Partition()
	if err != nil {
		return cell, fmt.Errorf("cold partition: %w", err)
	}
	cell.ColdSec = time.Since(tCold).Seconds()
	cell.DistCalcs += sess.LastInfo().DistCalcs

	assign := part.Assign
	stepStart := time.Now()
	for s := 0; s < cfg.Steps; s++ {
		if err := sess.UpdateWeights(highdimWeights(base, s)); err != nil {
			return cell, err
		}
		pt, st, err := sess.Repartition()
		if err != nil {
			return cell, fmt.Errorf("step %d: %w", s, err)
		}
		cell.DistCalcs += st.DistCalcs
		assign = pt.Assign
	}
	cell.StepSecMean = time.Since(stepStart).Seconds() / float64(cfg.Steps)

	for _, st := range w.Stats() {
		cell.Collectives += st.Collectives
		cell.CollectiveBytes += st.CollectiveBytes
		cell.Barriers += st.Barriers
	}
	cell.ChainCut = chainCut(assign, cfg.M)
	wt := highdimWeights(base, cfg.Steps-1)
	psW := &geom.PointSet{Dim: ps.Dim, Coords: ps.Coords, Weight: wt}
	cell.Imbalance = metrics.Imbalance(metrics.BlockWeights(psW, assign, cfg.K))
	cell.WallSec = time.Since(t0).Seconds()
	cell.PeakRSSMB = peakRSSMB()
	return cell, nil
}

// Highdim runs the feature-space grid (DESIGN.md, "Generic-dimension
// invariants"): balanced clustering of Gaussian mixtures at d ∈ {8, 16,
// 64}, recording chain cut, imbalance, distance evaluations, collective
// counts, and per-step wall time. The report is written as
// BENCH_highdim.json by cmd/runexp (-bench) and diffed against the
// committed snapshot by tools/benchdiff.
func Highdim(w io.Writer, sc Scale) (HighdimReport, error) {
	rep := HighdimReport{Schema: highdimSchema}
	fmt.Fprintf(w, "%-8s %4s %4s %4s %6s | %8s %8s %8s | %11s %10s %9s %9s\n",
		"n", "dim", "k", "p", "steps", "cold_s", "step_s", "wall_s", "dist_calcs", "chain_cut", "collect", "imbal")
	for _, cfg := range HighdimCells(sc) {
		cell, err := runHighdimCell(cfg)
		if err != nil {
			return rep, fmt.Errorf("highdim n=%d dim=%d k=%d p=%d: %w", cfg.N, cfg.Dim, cfg.K, cfg.P, err)
		}
		rep.Cells = append(rep.Cells, cell)
		fmt.Fprintf(w, "%-8d %4d %4d %4d %6d | %8.3f %8.3f %8.2f | %11d %10d %9d %9.4f\n",
			cell.N, cell.Dim, cell.K, cell.P, cell.Steps, cell.ColdSec, cell.StepSecMean, cell.WallSec,
			cell.DistCalcs, cell.ChainCut, cell.Collectives, cell.Imbalance)
	}
	return rep, nil
}

// WriteHighdimJSON writes the report as indented JSON (the
// BENCH_highdim.json format).
func WriteHighdimJSON(w io.Writer, rep HighdimReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
