package experiments

import (
	"io"
	"testing"
)

// TestDurableQuick runs the durability fence at quick scale and pins
// its deterministic invariants: every injury lands as a typed loss,
// torn and flipped spills are quarantined, every uninjured chain is
// bit-identical, and cold recovery resumes all parked tenants.
func TestDurableQuick(t *testing.T) {
	rep, err := Durable(io.Discard, QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 1 {
		t.Fatalf("cells = %d", len(rep.Cells))
	}
	c := rep.Cells[0]
	injured := c.InjectedTorn + c.InjectedFlip + c.InjectedDelete
	if injured != 3 {
		t.Errorf("injuries = %d, want 3", injured)
	}
	if c.LostTyped != injured {
		t.Errorf("lost_typed = %d, want %d (every injury must degrade to typed ErrTenantLost)", c.LostTyped, injured)
	}
	if c.Quarantined != c.InjectedTorn+c.InjectedFlip {
		t.Errorf("quarantined = %d, want %d (torn + flipped)", c.Quarantined, c.InjectedTorn+c.InjectedFlip)
	}
	if want := c.Tenants - injured; c.SurvivorChains != want {
		t.Errorf("survivor_chains = %d, want %d", c.SurvivorChains, want)
	}
	if c.Recovered != c.Tenants {
		t.Errorf("recovered = %d, want %d", c.Recovered, c.Tenants)
	}
	if c.RecoveredChains != c.Tenants {
		t.Errorf("recovered_chains = %d, want %d", c.RecoveredChains, c.Tenants)
	}
	if c.Parks != int64(2*c.Tenants) {
		t.Errorf("parks = %d, want %d", c.Parks, 2*c.Tenants)
	}
	if c.DistCalcs <= 0 {
		t.Errorf("dist_calcs = %d", c.DistCalcs)
	}
}
