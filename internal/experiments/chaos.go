package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"geographer/internal/core"
	"geographer/internal/geom"
	"geographer/internal/metrics"
	"geographer/internal/mpi"
	"geographer/internal/repart"
)

// chaosP is the rank count of the chaos chains (the fault schedule
// names ranks, so it is fixed rather than scaled).
const chaosP = 4

// chaosSteps is the number of perturbed warm steps each chain runs.
const chaosSteps = 5

// ChaosRow is one timestep of the chaos experiment: a warm
// repartitioning chain driven through Session.RepartitionWithRetry
// under a deterministic fault schedule, compared step by step against
// the identical fault-free chain.
type ChaosRow struct {
	Graph string
	Step  int
	K, P  int

	// Retries is how many rollback-and-retry cycles this step needed
	// (0 = no fault fired during it); FiredTotal is the cumulative
	// number of faults the schedule has fired up to and including this
	// step.
	Retries    int
	FiredTotal int64

	// Identical reports that this step's partition is bit-identical to
	// the fault-free chain's — the recovery guarantee under test.
	Identical bool

	PreImbalance   float64
	MigratedWeight float64
	DistCalcs      int64

	// Seconds is the chaos step's wall time (failed attempts, backoff,
	// rollback, and the successful attempt); RefSeconds is the fault-free
	// chain's time for the same step. The difference is the recovery
	// overhead, i.e. the wasted work.
	Seconds    float64
	RefSeconds float64
}

// ChaosCell is the per-workload summary of a chaos run. The
// deterministic fields (FaultsFired, Recoveries, Identical, DistCalcs,
// Cut, Imbalance) are exact functions of the workload and the fault
// schedule and must reproduce bit-for-bit run to run — tools/benchdiff
// fails on regressions there. The wall-clock fields are
// machine-dependent and compared warn-only.
type ChaosCell struct {
	Graph string `json:"graph"`
	N     int    `json:"n"`
	K     int    `json:"k"`
	P     int    `json:"p"`
	Steps int    `json:"steps"`

	FaultsScheduled int   `json:"faults_scheduled"`
	FaultsFired     int64 `json:"faults_fired"`
	// Recoveries sums the retry cycles across all steps; every fired
	// abort fault must be recovered, so Recoveries == FaultsFired on a
	// healthy run.
	Recoveries int   `json:"recoveries"`
	Delays     int64 `json:"delays"`
	// Identical is the acceptance criterion: every step of the chaos
	// chain produced a partition bit-identical to the fault-free chain.
	Identical bool  `json:"identical"`
	DistCalcs int64 `json:"dist_calcs"`
	Cut       int64 `json:"cut"`
	// Imbalance is measured after the final step.
	Imbalance float64 `json:"imbalance"`

	WallSec    float64 `json:"wall_sec"`     // chaos chain, all steps
	RefWallSec float64 `json:"ref_wall_sec"` // fault-free chain, all steps
	WastedSec  float64 `json:"wasted_sec"`   // WallSec - RefWallSec
}

// ChaosReport is the BENCH_chaos.json document.
type ChaosReport struct {
	Schema string      `json:"schema"`
	Cells  []ChaosCell `json:"cells"`
}

// chaosSchema versions the report; benchdiff refuses mismatched schemas.
const chaosSchema = "geographer-chaos/v1"

// chaosPlan is the fault schedule: four single-shot transient faults on
// distinct ranks at increasing collective episodes, plus one injected
// delay. Episodes count per rank per world and the schedule is explicit
// — no clock, no global randomness — so every run fails (and recovers)
// identically. Each transient abort kills the world at its first armed
// episode, the retry driver rolls back and rebuilds, and the rebuilt
// world walks into the next armed episode; four faults therefore cost
// four recoveries regardless of how the episodes fall across steps.
func chaosPlan() *mpi.FaultPlan {
	return mpi.NewFaultPlan(
		mpi.Fault{Rank: 1, Episode: 2, Kind: mpi.FaultTransient, Fires: 1},
		mpi.Fault{Rank: 2, Episode: 30, Kind: mpi.FaultTransient, Fires: 1},
		mpi.Fault{Rank: 3, Episode: 60, Kind: mpi.FaultTransient, Fires: 1},
		mpi.Fault{Rank: 0, Episode: 90, Kind: mpi.FaultTransient, Fires: 1},
		mpi.Fault{Rank: 1, Episode: 120, Kind: mpi.FaultDelay, Delay: time.Millisecond},
	)
}

// runChaosCell runs one workload: a fault-free reference chain and a
// chaos chain that starts from the same cold partition (transferred by
// checkpoint onto a fault-injected world) and steps through
// RepartitionWithRetry. Every step is compared bit-for-bit.
func runChaosCell(w io.Writer, kind string, n, k int) ([]ChaosRow, ChaosCell, error) {
	cell := ChaosCell{Graph: kind, K: k, P: chaosP, Steps: chaosSteps}
	m, err := repartMesh(kind, n)
	if err != nil {
		return nil, cell, err
	}
	cell.N = m.N()
	cfg := core.DefaultConfig()
	cfg.Seed = 1
	ps0 := &geom.PointSet{Dim: m.Points.Dim, Coords: m.Points.Coords, Weight: perturbedWeights(m, 0)}

	// Fault-free reference chain.
	ref, err := repart.NewSession(mpi.NewWorld(chaosP), ps0.Clone(), k, cfg)
	if err != nil {
		return nil, cell, err
	}
	defer ref.Close()
	if _, err := ref.Partition(); err != nil {
		return nil, cell, err
	}

	// Chaos chain: identical cold start on a clean world, then the state
	// moves by checkpoint onto a fault-injected world. The same factory
	// serves the retry driver's rollbacks, so the schedule stays armed
	// across world rebuilds and transient faults disarm exactly once.
	seed, err := repart.NewSession(mpi.NewWorld(chaosP), ps0.Clone(), k, cfg)
	if err != nil {
		return nil, cell, err
	}
	if _, err := seed.Partition(); err != nil {
		seed.Close()
		return nil, cell, err
	}
	ckpt, err := seed.Checkpoint()
	seed.Close()
	if err != nil {
		return nil, cell, err
	}
	plan := chaosPlan()
	cell.FaultsScheduled = 4 // abort faults; the delay does not abort
	factory := func(size int) *mpi.World {
		fw := mpi.NewWorld(size)
		fw.SetHooks(plan)
		return fw
	}
	vic, err := repart.NewSessionFromCheckpoint(factory(chaosP), ckpt, cfg)
	if err != nil {
		return nil, cell, err
	}
	defer vic.Close()
	vic.SetWorldFactory(factory)

	policy := repart.RetryPolicy{MaxRetries: 8, BaseBackoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond}
	fmt.Fprintf(w, "\n%-10s n=%d k=%d p=%d: %d abort faults scheduled over %d warm steps\n",
		kind, cell.N, k, chaosP, cell.FaultsScheduled, chaosSteps)
	fmt.Fprintf(w, "%4s %8s %8s %11s %12s %10s %10s %6s\n",
		"step", "retries", "fired", "pre_imbal", "migrated_w", "wall[s]", "ref[s]", "ident")

	var rows []ChaosRow
	cell.Identical = true
	var lastAssign []int32
	var lastWeights []float64
	for t := 1; t <= chaosSteps; t++ {
		wt := perturbedWeights(m, t)

		t0 := time.Now()
		if err := ref.UpdateWeights(wt); err != nil {
			return nil, cell, err
		}
		refP, _, refActed, err := ref.RepartitionIfAbove(0)
		if err != nil {
			return nil, cell, fmt.Errorf("reference step %d: %w", t, err)
		}
		refSecs := time.Since(t0).Seconds()

		t0 = time.Now()
		if err := vic.UpdateWeights(wt); err != nil {
			return nil, cell, err
		}
		chaosP2, st, acted, err := vic.RepartitionWithRetry(context.Background(), 0, policy)
		if err != nil {
			return nil, cell, fmt.Errorf("chaos step %d: %w", t, err)
		}
		chaosSecs := time.Since(t0).Seconds()
		if acted != refActed {
			return nil, cell, fmt.Errorf("chaos step %d: chains disagree on triggering (chaos %v, reference %v)", t, acted, refActed)
		}
		if !acted {
			continue // neither chain stepped; nothing to compare
		}

		identical := true
		for i := range refP.Assign {
			if chaosP2.Assign[i] != refP.Assign[i] {
				identical = false
				cell.Identical = false
				break
			}
		}
		row := ChaosRow{
			Graph: kind, Step: t, K: k, P: chaosP,
			Retries: st.Retries, FiredTotal: plan.Fired(),
			Identical:    identical,
			PreImbalance: st.PreImbalance, MigratedWeight: st.MigratedWeight,
			DistCalcs: st.DistCalcs,
			Seconds:   chaosSecs, RefSeconds: refSecs,
		}
		rows = append(rows, row)
		cell.Recoveries += st.Retries
		cell.DistCalcs += st.DistCalcs
		cell.WallSec += chaosSecs
		cell.RefWallSec += refSecs
		lastAssign, lastWeights = chaosP2.Assign, wt
		id := "yes"
		if !identical {
			id = "NO"
		}
		fmt.Fprintf(w, "%4d %8d %8d %11.4f %12.1f %10.4f %10.4f %6s\n",
			t, row.Retries, row.FiredTotal, row.PreImbalance, row.MigratedWeight, row.Seconds, row.RefSeconds, id)
	}
	cell.FaultsFired = plan.Fired()
	cell.Delays = plan.Delayed()
	cell.WastedSec = cell.WallSec - cell.RefWallSec

	if lastAssign != nil {
		ps := &geom.PointSet{Dim: m.Points.Dim, Coords: m.Points.Coords, Weight: lastWeights}
		rep, err := metrics.Evaluate(m.G, ps, lastAssign, k)
		if err != nil {
			return nil, cell, err
		}
		cell.Cut, cell.Imbalance = rep.EdgeCut, rep.Imbalance
	}
	fmt.Fprintf(w, "summary %s: %d/%d scheduled faults fired, %d recoveries, %d delay stalls; partitions bit-identical to fault-free chain: %v; wasted %.4fs of %.4fs total (fault-free chain: %.4fs)\n",
		kind, cell.FaultsFired, int64(cell.FaultsScheduled), cell.Recoveries, cell.Delays,
		cell.Identical, cell.WastedSec, cell.WallSec, cell.RefWallSec)
	return rows, cell, nil
}

// Chaos runs the fault-injection experiment (DESIGN.md,
// "Fault-tolerance invariants"): for each dynamic workload, a warm
// repartitioning chain is driven through the checkpoint-rollback retry
// driver while a deterministic fault schedule kills ranks
// mid-collective, and every step's partition is compared bit-for-bit
// against the identical fault-free chain. A healthy run recovers every
// fired fault (Recoveries == FaultsFired), never hangs, and stays
// bit-identical; the wasted wall time is the price of recovery.
func Chaos(w io.Writer, sc Scale) ([]ChaosRow, ChaosReport, error) {
	rep := ChaosReport{Schema: chaosSchema}
	fmt.Fprintf(w, "Fault-injected warm repartitioning (retry driver, checkpoint rollback) vs fault-free chain, %d steps, p=%d\n",
		chaosSteps, chaosP)
	var rows []ChaosRow
	for _, wl := range repartWorkloads(sc) {
		r, cell, err := runChaosCell(w, wl.kind, wl.n, wl.k)
		if err != nil {
			return nil, rep, fmt.Errorf("chaos %s: %w", wl.kind, err)
		}
		rows = append(rows, r...)
		rep.Cells = append(rep.Cells, cell)
	}
	return rows, rep, nil
}

// WriteChaosJSON writes the report as indented JSON (the
// BENCH_chaos.json format).
func WriteChaosJSON(w io.Writer, rep ChaosReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
