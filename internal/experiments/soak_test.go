package experiments

import (
	"bytes"
	"encoding/json"
	"io"
	"testing"
)

// tinySoakScale keeps the soak driver test fast while exercising more
// than one rank group of the tree barrier.
func tinySoakScale() Scale {
	sc := QuickScale()
	sc.SoakN = 2000
	sc.SoakK = 4
	sc.SoakMaxK = 8
	sc.SoakMaxP = 8
	sc.SoakSteps = 2
	return sc
}

func TestSoakCellsGrid(t *testing.T) {
	tiny := SoakCells(tinySoakScale())
	if len(tiny) != 3 {
		t.Fatalf("tiny grid has %d cells, want 3", len(tiny))
	}
	def := SoakCells(DefaultScale())
	if len(def) != 6 {
		t.Fatalf("default grid has %d cells, want quick + default = 6", len(def))
	}
	// The committed default-scale snapshot must contain the quick cells
	// so CI's quick runs have cells to diff against.
	quick := SoakCells(QuickScale())
	for i, q := range quick {
		if def[i] != q {
			t.Errorf("default grid cell %d = %+v, want quick cell %+v", i, def[i], q)
		}
	}
	for _, c := range def {
		if c.N <= 0 || c.K <= 0 || c.P <= 0 || c.Steps <= 0 || c.Dim != 3 {
			t.Errorf("malformed cell %+v", c)
		}
	}
}

// The soak's deterministic fields must reproduce exactly run to run —
// that is what lets tools/benchdiff treat them as regression fences.
func TestSoakDeterministicAndWellFormed(t *testing.T) {
	sc := tinySoakScale()
	a, err := Soak(io.Discard, sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Soak(io.Discard, sc)
	if err != nil {
		t.Fatal(err)
	}
	if a.Schema != soakSchema || len(a.Cells) != len(SoakCells(sc)) {
		t.Fatalf("report shape: schema %q, %d cells", a.Schema, len(a.Cells))
	}
	for i := range a.Cells {
		ca, cb := a.Cells[i], b.Cells[i]
		if ca.Collectives != cb.Collectives || ca.CollectiveBytes != cb.CollectiveBytes ||
			ca.Barriers != cb.Barriers || ca.DistCalcs != cb.DistCalcs ||
			ca.ModeledCommSec != cb.ModeledCommSec || ca.Imbalance != cb.Imbalance {
			t.Errorf("cell %d deterministic fields differ:\n%+v\n%+v", i, ca, cb)
		}
		// Barriers may legitimately be zero: the warm path's collectives
		// are single-crossing rendezvous folds, not bare barriers.
		if ca.Collectives <= 0 || ca.CollectiveBytes <= 0 ||
			ca.WallSec <= 0 || ca.StepSecMean <= 0 {
			t.Errorf("cell %d has empty counters: %+v", i, ca)
		}
	}

	var buf bytes.Buffer
	if err := WriteSoakJSON(&buf, a); err != nil {
		t.Fatal(err)
	}
	var back SoakReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if back.Schema != a.Schema || len(back.Cells) != len(a.Cells) {
		t.Errorf("round-trip changed shape")
	}
	if back.Cells[0].Collectives != a.Cells[0].Collectives {
		t.Errorf("round-trip changed counters")
	}
}
