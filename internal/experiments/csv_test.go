package experiments

import (
	"bytes"
	"encoding/csv"
	"math"
	"strings"
	"testing"
)

func TestWriteRowsCSV(t *testing.T) {
	rows := []Row{
		{Graph: "g1", N: 100, M: 300, Tool: "Geographer", K: 8, P: 4,
			Seconds: 0.5, ModelSeconds: 0.001, Cut: 42, MaxComm: 7, TotComm: 80,
			HarmDiam: 3.5, Imbalance: 0.02, SpMVComm: 1e-5, SpMVWall: 2e-5},
	}
	var buf bytes.Buffer
	if err := WriteRowsCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("%d records", len(recs))
	}
	if recs[1][0] != "g1" || recs[1][11] != "42" {
		t.Errorf("row: %v", recs[1])
	}
}

func TestWriteScalePointsCSV(t *testing.T) {
	var buf bytes.Buffer
	pts := []ScalePoint{{Tool: "Rcb", P: 8, K: 8, N: 1000, Seconds: 1, ModelSeconds: 0.01}}
	if err := WriteScalePointsCSV(&buf, pts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Rcb,8,8,1000") {
		t.Errorf("csv: %s", buf.String())
	}
}

func TestWriteRatiosCSV(t *testing.T) {
	var buf bytes.Buffer
	rs := []ClassRatios{{Class: "2D", Tool: "Hsfc", EdgeCut: 1.5, Instances: 10}}
	if err := WriteRatiosCSV(&buf, rs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "2D,Hsfc,1.5") {
		t.Errorf("csv: %s", buf.String())
	}
}

func TestFitTrendsRecoversPowerLaw(t *testing.T) {
	// Synthetic rows with time = 2e-9·n^1.5 must fit slope 1.5.
	var rows []Row
	for _, n := range []int{1000, 2000, 4000, 8000, 16000} {
		rows = append(rows, Row{Tool: "X", N: n, ModelSeconds: 2e-9 * math.Pow(float64(n), 1.5)})
	}
	fits := FitTrends(rows)
	if len(fits) != 1 {
		t.Fatalf("%d fits", len(fits))
	}
	if math.Abs(fits[0].Slope-1.5) > 1e-9 {
		t.Errorf("slope = %g, want 1.5", fits[0].Slope)
	}
	if fits[0].Points != 5 {
		t.Errorf("points = %d", fits[0].Points)
	}
}

func TestFitTrendsSkipsDegenerate(t *testing.T) {
	fits := FitTrends([]Row{{Tool: "X", N: 0, ModelSeconds: 1}, {Tool: "X", N: 10, ModelSeconds: 0}})
	if len(fits) != 0 {
		t.Errorf("degenerate rows produced fits: %v", fits)
	}
}
