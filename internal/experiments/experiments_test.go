package experiments

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestRegistryCoversAllClasses(t *testing.T) {
	reg := Registry()
	if len(reg) < 15 {
		t.Fatalf("registry has only %d instances", len(reg))
	}
	counts := map[string]int{}
	names := map[string]bool{}
	for _, in := range reg {
		counts[in.Class]++
		if names[in.Name] {
			t.Errorf("duplicate instance name %s", in.Name)
		}
		names[in.Name] = true
	}
	if counts[Class2D] < 8 || counts[ClassClimate] < 3 || counts[Class3D] < 4 {
		t.Errorf("class counts: %v", counts)
	}
	if len(ByClass(Class2D)) != counts[Class2D] {
		t.Error("ByClass filter wrong")
	}
}

func TestMaterializeCaching(t *testing.T) {
	in := Registry()[0]
	a, err := in.Materialize(1000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := in.Materialize(1000)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("cache miss for identical key")
	}
	c, err := in.Materialize(1200)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("different sizes must not share a mesh")
	}
}

func TestToolsLineup(t *testing.T) {
	tools := Tools()
	if len(tools) != 5 {
		t.Fatalf("%d tools", len(tools))
	}
	if tools[0].Name() != "Geographer" {
		t.Errorf("Tools() must lead with Geographer (fig2 baseline), got %s", tools[0].Name())
	}
	tt := TableTools()
	if len(tt) != 4 {
		t.Fatalf("%d table tools", len(tt))
	}
	for _, tool := range tt {
		if tool.Name() == "Rib" {
			t.Error("tables must omit RIB like the paper")
		}
	}
}

func TestRunOneProducesCompleteRow(t *testing.T) {
	sc := QuickScale()
	in := Registry()[0]
	m, err := in.Materialize(sc.Table2N)
	if err != nil {
		t.Fatal(err)
	}
	row, err := RunOne(m, TableTools()[0], 8, 4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if row.Cut <= 0 || row.TotComm <= 0 || row.MaxComm <= 0 {
		t.Errorf("degenerate metrics: %+v", row)
	}
	if row.Seconds <= 0 || row.ModelSeconds <= 0 {
		t.Errorf("no timing: %+v", row)
	}
	if row.SpMVComm <= 0 {
		t.Errorf("no SpMV time: %+v", row)
	}
	if row.Imbalance > 0.031 {
		t.Errorf("Geographer imbalance %.4f", row.Imbalance)
	}
	if row.HarmDiam <= 0 {
		t.Errorf("no diameter: %+v", row)
	}
}

func TestTable2Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	var buf bytes.Buffer
	rows, err := Table2(&buf, QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	wantRows := len(Registry()) * len(TableTools())
	if len(rows) != wantRows {
		t.Fatalf("%d rows, want %d", len(rows), wantRows)
	}
	out := buf.String()
	for _, tool := range []string{"Geographer", "Hsfc", "MultiJagged", "Rcb"} {
		if !strings.Contains(out, tool) {
			t.Errorf("output missing tool %s", tool)
		}
	}
	// Geographer rows must respect ε.
	for _, r := range rows {
		if r.Tool == "Geographer" && r.Imbalance > 0.031 {
			t.Errorf("%s: Geographer imbalance %.4f", r.Graph, r.Imbalance)
		}
	}
}

func TestFig2Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	var buf bytes.Buffer
	ratios, err := Fig2(&buf, QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	// 3 classes × 4 non-Geographer tools.
	if len(ratios) != 12 {
		t.Fatalf("%d ratio rows", len(ratios))
	}
	for _, cr := range ratios {
		if cr.TotComm <= 0 {
			t.Errorf("%s/%s: zero totComm ratio", cr.Class, cr.Tool)
		}
	}
}

func TestFig3aQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	var buf bytes.Buffer
	pts, err := Fig3a(&buf, QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("no scale points")
	}
	for _, pt := range pts {
		if pt.ModelSeconds <= 0 {
			t.Errorf("%s p=%d: no modeled time", pt.Tool, pt.P)
		}
	}
}

func TestFig3bQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	var buf bytes.Buffer
	pts, err := Fig3b(&buf, QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < len(Tools())*2 {
		t.Fatalf("only %d scale points", len(pts))
	}
}

func TestFig4Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	var buf bytes.Buffer
	rows, err := Fig4(&buf, QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Registry())*len(Tools()) {
		t.Fatalf("%d rows", len(rows))
	}
}

func TestFig1Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	dir := t.TempDir()
	paths, err := Fig1(dir, QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 5 {
		t.Fatalf("%d SVGs, want 5", len(paths))
	}
}

func TestComponentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	var buf bytes.Buffer
	shares, err := Components(&buf, QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	for _, cs := range shares {
		total := cs.SFCShare + cs.SortShare + cs.KMeansShare
		if total < 0.99 || total > 1.01 {
			t.Errorf("p=%d: shares sum to %g", cs.P, total)
		}
	}
}

func TestPhasesQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	var buf bytes.Buffer
	rows, err := Phases(&buf, QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d phase rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.TotalSeconds <= 0 {
			t.Errorf("%s: no time recorded", r.Graph)
		}
		if sum := r.SFCSeconds + r.SortSeconds + r.KMeansSeconds; sum != r.TotalSeconds {
			t.Errorf("%s: phases sum %g != total %g", r.Graph, sum, r.TotalSeconds)
		}
		if r.IngestShare < 0 || r.IngestShare > 1 {
			t.Errorf("%s: ingest share %g", r.Graph, r.IngestShare)
		}
	}
	var csvBuf bytes.Buffer
	if err := WritePhaseRowsCSV(&csvBuf, rows); err != nil {
		t.Fatal(err)
	}
}

// TestRunOnePhaseFields checks Geographer rows carry the phase
// breakdown while baseline rows stay zero.
func TestRunOnePhaseFields(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	in := Registry()[0]
	m, err := in.Materialize(1500)
	if err != nil {
		t.Fatal(err)
	}
	geo, err := RunOne(m, Tools()[0], 4, 2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if geo.SFCSeconds+geo.SortSeconds+geo.KMeansSeconds <= 0 {
		t.Error("Geographer row has no phase times")
	}
	rcb, err := RunOne(m, baselinesRCB(), 4, 2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rcb.SFCSeconds != 0 || rcb.SortSeconds != 0 || rcb.KMeansSeconds != 0 {
		t.Error("baseline row reports phase times")
	}
}

func TestAblationQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	var buf bytes.Buffer
	rows, err := Ablation(io.Discard, QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	_ = buf
	if len(rows) != 7 {
		t.Fatalf("%d ablation rows", len(rows))
	}
	var full, noBounds *AblationRow
	for i := range rows {
		switch rows[i].Config {
		case "full":
			full = &rows[i]
		case "no-bounds":
			noBounds = &rows[i]
		}
	}
	if full == nil || noBounds == nil {
		t.Fatal("missing configs")
	}
	if full.DistCalcs >= noBounds.DistCalcs {
		t.Errorf("Hamerly bounds saved nothing: %d vs %d", full.DistCalcs, noBounds.DistCalcs)
	}
}

func TestRepartQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	var buf bytes.Buffer
	rows, err := Repart(&buf, QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if want := len(repartWorkloads(QuickScale())) * repartSteps * 2; len(rows) != want {
		t.Fatalf("%d rows, want %d", len(rows), want)
	}
	// Acceptance: per workload, warm-start migration strictly below
	// from-scratch at comparable imbalance.
	mig := map[string]map[string]float64{}
	for _, r := range rows {
		if mig[r.Graph] == nil {
			mig[r.Graph] = map[string]float64{}
		}
		mig[r.Graph][r.Mode] += r.MigratedWeight
		if r.Imbalance > 0.25 {
			t.Errorf("%s step %d %s: imbalance %.3f", r.Graph, r.Step, r.Mode, r.Imbalance)
		}
		if r.Cut <= 0 {
			t.Errorf("%s step %d %s: cut %d", r.Graph, r.Step, r.Mode, r.Cut)
		}
	}
	for graph, byMode := range mig {
		if byMode["warm"] >= byMode["scratch"] {
			t.Errorf("%s: warm migration %.1f not below scratch %.1f",
				graph, byMode["warm"], byMode["scratch"])
		}
	}
	if !strings.Contains(buf.String(), "summary") {
		t.Error("missing summary line")
	}

	var csv bytes.Buffer
	if err := WriteRepartRowsCSV(&csv, rows); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(csv.String(), "\n"); lines != len(rows)+1 {
		t.Errorf("%d CSV lines for %d rows", lines, len(rows))
	}
}

func TestStreamQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	var buf bytes.Buffer
	rows, err := Stream(&buf, QuickScale())
	if err != nil {
		t.Fatal(err) // includes the driver's own bit-identicality check
	}
	// Per workload: one cold row plus (session, oneshot) per warm step.
	if want := len(repartWorkloads(QuickScale())) * (1 + streamSteps*2); len(rows) != want {
		t.Fatalf("%d rows, want %d", len(rows), want)
	}
	ingest := map[string]map[string]int{}
	for _, r := range rows {
		if ingest[r.Graph] == nil {
			ingest[r.Graph] = map[string]int{}
		}
		if r.IngestSeconds > 0 {
			ingest[r.Graph][r.Mode]++
		}
		if r.Mode == "session" && r.IngestSeconds != 0 {
			t.Errorf("%s step %d: session warm step reports ingest %g, want 0", r.Graph, r.Step, r.IngestSeconds)
		}
		if r.Cut <= 0 {
			t.Errorf("%s step %d %s: cut %d", r.Graph, r.Step, r.Mode, r.Cut)
		}
	}
	// The acceptance shape: in the session chain ingest appears once
	// (the cold step), not per step; the one-shot chain re-pays it.
	for graph, byMode := range ingest {
		if byMode["cold"] != 1 {
			t.Errorf("%s: ingest appears %d times in the session phase breakdown, want once", graph, byMode["cold"])
		}
		if byMode["session"] != 0 {
			t.Errorf("%s: session warm steps paid ingest %d times, want 0", graph, byMode["session"])
		}
	}
	if !strings.Contains(buf.String(), "partitions bit-identical") {
		t.Error("missing summary line")
	}

	var csv bytes.Buffer
	if err := WriteStreamRowsCSV(&csv, rows); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(csv.String(), "\n"); lines != len(rows)+1 {
		t.Errorf("%d CSV lines for %d rows", lines, len(rows))
	}
}

func TestNearestPow2(t *testing.T) {
	cases := map[int]int{0: 2, 1: 2, 2: 2, 3: 2, 5: 4, 6: 4 /* tie rounds down */, 7: 8, 8: 8, 11: 8, 13: 16, 100: 128}
	for in, want := range cases {
		if got := nearestPow2(in); got != want {
			t.Errorf("nearestPow2(%d) = %d, want %d", in, got, want)
		}
	}
}
