package experiments

import (
	"bytes"
	"testing"
)

// TestServeQuick runs the multi-tenant serving experiment at quick
// scale and checks its acceptance invariants: every tenant's chain
// bit-identical to its solo reference (assignments and distance
// evaluations), and one forced eviction + restore per tenant.
func TestServeQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	var buf bytes.Buffer
	rows, rep, err := Serve(&buf, QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != serveSchema {
		t.Fatalf("schema %q", rep.Schema)
	}
	if len(rep.Cells) != 1 {
		t.Fatalf("%d cells, want 1", len(rep.Cells))
	}
	c := rep.Cells[0]
	if c.Tenants != serveTenants || c.Steps != serveSteps || c.Pool != servePool || c.Budget != serveBudget {
		t.Fatalf("cell config: %+v", c)
	}
	if c.IdenticalChains != c.Tenants {
		t.Errorf("%d of %d chains diverged from solo", c.Tenants-c.IdenticalChains, c.Tenants)
	}
	if c.Evictions != serveTenants || c.Restores != serveTenants {
		t.Errorf("evictions=%d restores=%d, want %d each", c.Evictions, c.Restores, serveTenants)
	}
	if len(rows) != serveTenants {
		t.Fatalf("%d rows, want %d", len(rows), serveTenants)
	}
	for _, r := range rows {
		if !r.Identical {
			t.Errorf("%s: chain not bit-identical to solo", r.Tenant)
		}
		if r.DistCalcs != r.SoloDistCalcs {
			t.Errorf("%s: dist_calcs %d vs solo %d — eviction knocked it off the incremental path",
				r.Tenant, r.DistCalcs, r.SoloDistCalcs)
		}
		// create + cold partition + per step (weights, repartition) + one evict
		if want := 2 + 2*serveSteps + 1; r.Verbs != want {
			t.Errorf("%s: %d verbs, want %d", r.Tenant, r.Verbs, want)
		}
	}
	if c.Verbs != serveTenants*(3+2*serveSteps) {
		t.Errorf("cell verbs %d", c.Verbs)
	}
	if c.VerbsPerSec <= 0 || c.P50Ms < 0 || c.P99Ms < c.P50Ms {
		t.Errorf("degenerate throughput/latency: %+v", c)
	}
}
