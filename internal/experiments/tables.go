package experiments

import (
	"fmt"
	"io"
)

// Table2 reproduces the paper's Table 2: small and medium graphs at
// k = p = 64 (scaled). Columns: time, cut, maxCommVol, Σ commVol,
// diameter, timeSpMVComm. Best values per graph are marked with '*'.
func Table2(w io.Writer, sc Scale) ([]Row, error) {
	return runTable(w, sc, Registry(), sc.Table2N, sc.KTable2,
		"Table 2: small/medium graphs, k = p = "+fmt.Sprint(sc.KTable2))
}

// table1Instances returns the large-graph subset mirroring the paper's
// Table 1 (alyaTestCaseB, delaunay, fesom-jigsaw, refinedtrace).
func table1Instances() []Instance {
	want := map[string]bool{
		"alyaTestCaseB": true,
		"delaunay2d":    true,
		"fesom-jigsaw":  true,
		"hugetrace":     true, // stands in for refinedtrace-0000{6,7}
		"hugetric":      true,
	}
	var out []Instance
	for _, in := range Registry() {
		if want[in.Name] {
			out = append(out, in)
		}
	}
	return out
}

// Table1 reproduces the paper's Table 1: large graphs at k = p = 1024
// (scaled to sc.KTable1).
func Table1(w io.Writer, sc Scale) ([]Row, error) {
	return runTable(w, sc, table1Instances(), sc.Table1N, sc.KTable1,
		"Table 1: large graphs, k = p = "+fmt.Sprint(sc.KTable1))
}

func runTable(w io.Writer, sc Scale, instances []Instance, n, k int, title string) ([]Row, error) {
	var all []Row
	fmt.Fprintf(w, "%s (base n ≈ %d, per-instance size factors, %d repeat(s))\n", title, n, sc.Repeats)
	fmt.Fprintf(w, "%-16s %-12s %10s %10s %12s %12s %10s %14s\n",
		"graph", "tool", "time[s]", "cut", "maxCommVol", "ΣcommVol", "harmDiam", "spmvComm[s]")
	for _, in := range instances {
		rows, err := RunInstance(in, in.ScaledN(n), k, k, sc.SpMVIters, sc.Repeats, TableTools())
		if err != nil {
			return nil, err
		}
		best := bestMarks(rows)
		for i, r := range rows {
			fmt.Fprintf(w, "%-16s %-12s %10.3f %9d%s %11d%s %11d%s %9.1f%s %13.3g%s\n",
				name(in, i), r.Tool, r.Seconds,
				r.Cut, best.mark(i, 0), r.MaxComm, best.mark(i, 1),
				r.TotComm, best.mark(i, 2), r.HarmDiam, best.mark(i, 3),
				r.SpMVComm, best.mark(i, 4))
		}
		all = append(all, rows...)
	}
	return all, nil
}

func name(in Instance, i int) string {
	if i == 0 {
		return in.Name
	}
	return ""
}

// marks tracks which tool has the best (lowest) value per metric column.
type marks struct{ best [5]int }

func bestMarks(rows []Row) marks {
	var m marks
	vals := func(r Row) [5]float64 {
		return [5]float64{float64(r.Cut), float64(r.MaxComm), float64(r.TotComm), r.HarmDiam, r.SpMVComm}
	}
	for col := 0; col < 5; col++ {
		bi := 0
		for i := 1; i < len(rows); i++ {
			if vals(rows[i])[col] < vals(rows[bi])[col] {
				bi = i
			}
		}
		m.best[col] = bi
	}
	return m
}

func (m marks) mark(row, col int) string {
	if m.best[col] == row {
		return "*"
	}
	return " "
}
