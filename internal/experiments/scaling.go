package experiments

import (
	"fmt"
	"io"
	"time"

	"geographer/internal/core"
	"geographer/internal/mesh"
	"geographer/internal/mpi"
	"geographer/internal/partition"
)

// ScalePoint is one point of a scaling series.
type ScalePoint struct {
	Tool         string
	P, K, N      int
	Seconds      float64 // wall clock on this host (not a scaling signal)
	ModelSeconds float64 // modeled parallel time — the scaling shape
}

// Fig3a reproduces the weak-scaling experiment (Figure 3a): the
// DelaunayX series with p = k doubling from 4 up to sc.WeakMaxP while the
// local size stays at sc.PerRank points per process.
func Fig3a(w io.Writer, sc Scale) ([]ScalePoint, error) {
	var out []ScalePoint
	fmt.Fprintf(w, "Fig. 3a: weak scaling on the Delaunay series (%d points per process)\n", sc.PerRank)
	fmt.Fprintf(w, "%6s %10s  %-12s %12s %14s\n", "p=k", "n", "tool", "wall[s]", "modeled[s]")
	for p := 4; p <= sc.WeakMaxP; p *= 2 {
		n := p * sc.PerRank
		m, err := mesh.GenDelaunayUniform2D(n, 1000+int64(p))
		if err != nil {
			return nil, err
		}
		for _, tool := range Tools() {
			pt, err := scaleRun(m, tool, p, p)
			if err != nil {
				return nil, err
			}
			out = append(out, pt)
			fmt.Fprintf(w, "%6d %10d  %-12s %12.3f %14.4g\n", p, n, pt.Tool, pt.Seconds, pt.ModelSeconds)
		}
	}
	return out, nil
}

// Fig3b reproduces the strong-scaling experiment (Figure 3b): the largest
// Delaunay graph partitioned into k = p blocks for doubling k up to
// sc.StrongMaxK.
func Fig3b(w io.Writer, sc Scale) ([]ScalePoint, error) {
	var out []ScalePoint
	m, err := mesh.GenDelaunayUniform2D(sc.StrongN, 77)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "Fig. 3b: strong scaling on delaunay n=%d\n", sc.StrongN)
	fmt.Fprintf(w, "%6s  %-12s %12s %14s\n", "p=k", "tool", "wall[s]", "modeled[s]")
	for k := sc.StrongMaxK / 8; k <= sc.StrongMaxK; k *= 2 {
		if k < 2 {
			continue
		}
		for _, tool := range Tools() {
			pt, err := scaleRun(m, tool, k, k)
			if err != nil {
				return nil, err
			}
			out = append(out, pt)
			fmt.Fprintf(w, "%6d  %-12s %12.3f %14.4g\n", k, pt.Tool, pt.Seconds, pt.ModelSeconds)
		}
	}
	return out, nil
}

func scaleRun(m *mesh.Mesh, tool partition.Distributed, k, p int) (ScalePoint, error) {
	world := mpi.NewWorld(p)
	t0 := time.Now()
	if _, err := partition.Run(world, m.Points, k, tool); err != nil {
		return ScalePoint{}, err
	}
	wall := time.Since(t0).Seconds()
	comp, comm := world.CostModel().ModeledTime(world.Stats())
	return ScalePoint{Tool: tool.Name(), P: p, K: k, N: m.N(), Seconds: wall, ModelSeconds: comp + comm}, nil
}

// ComponentShare is the per-phase share of Geographer's running time
// (paper §5.3.2: Hilbert indexing, redistribution, k-means).
type ComponentShare struct {
	P, K          int
	SFCSeconds    float64
	SortSeconds   float64
	KMeansSeconds float64
	SFCShare      float64
	SortShare     float64
	KMeansShare   float64

	// Assignment-kernel throughput: distance evaluations performed and
	// their rate over the k-means phase — the number perf PRs report
	// against (the kernels are the dominant cost of that phase).
	DistCalcs int64
	MDistRate float64 // million distance evaluations per second
}

// Components reproduces the §5.3.2 breakdown at a small and a large
// process count.
func Components(w io.Writer, sc Scale) ([]ComponentShare, error) {
	var out []ComponentShare
	fmt.Fprintln(w, "Components of Geographer's running time (§5.3.2)")
	fmt.Fprintf(w, "%6s %6s %12s %12s %12s %8s %8s %8s %10s\n",
		"p", "k", "sfc[s]", "redist[s]", "kmeans[s]", "sfc%", "redist%", "kmeans%", "Mdist/s")
	for _, p := range []int{sc.WeakMaxP / 4, sc.WeakMaxP} {
		if p < 2 {
			continue
		}
		n := p * sc.PerRank
		m, err := mesh.GenDelaunayUniform2D(n, 2000+int64(p))
		if err != nil {
			return nil, err
		}
		cfg := core.DefaultConfig()
		cfg.Seed = 1
		bkm := core.New(cfg)
		world := mpi.NewWorld(p)
		if _, err := partition.Run(world, m.Points, p, bkm); err != nil {
			return nil, err
		}
		info := bkm.LastInfo()
		total := info.SFCSeconds + info.SortSeconds + info.KMeansSeconds
		if total <= 0 {
			total = 1
		}
		cs := ComponentShare{
			P: p, K: p,
			SFCSeconds: info.SFCSeconds, SortSeconds: info.SortSeconds, KMeansSeconds: info.KMeansSeconds,
			SFCShare:    info.SFCSeconds / total,
			SortShare:   info.SortSeconds / total,
			KMeansShare: info.KMeansSeconds / total,
			DistCalcs:   info.DistCalcs,
		}
		if info.KMeansSeconds > 0 {
			cs.MDistRate = float64(info.DistCalcs) / info.KMeansSeconds / 1e6
		}
		out = append(out, cs)
		fmt.Fprintf(w, "%6d %6d %12.4f %12.4f %12.4f %7.1f%% %7.1f%% %7.1f%% %10.1f\n",
			p, p, cs.SFCSeconds, cs.SortSeconds, cs.KMeansSeconds,
			100*cs.SFCShare, 100*cs.SortShare, 100*cs.KMeansShare, cs.MDistRate)
	}
	return out, nil
}

// AblationRow measures one configuration of the design-choice ablation.
type AblationRow struct {
	Config     string
	Seconds    float64
	Cut        int64
	TotComm    int64
	Imbalance  float64
	DistCalcs  int64
	Iterations int
}

// Ablation quantifies the §4 design choices: Hamerly bounds, bounding-box
// pruning, influence erosion, sampled initialization, and the SFC
// bootstrap, each switched off individually against the full
// configuration. (The paper motivates these choices; this experiment is
// our addition that measures them.)
func Ablation(w io.Writer, sc Scale) ([]AblationRow, error) {
	in := Registry()[0]
	m, err := in.Materialize(sc.Table2N)
	if err != nil {
		return nil, err
	}
	k := sc.KTable2
	p := 4

	base := core.DefaultConfig()
	base.Seed = 1
	configs := []struct {
		name string
		mod  func(c core.Config) core.Config
	}{
		{"full", func(c core.Config) core.Config { return c }},
		{"no-bounds", func(c core.Config) core.Config { c.Bounds = core.BoundsNone; return c }},
		{"elkan", func(c core.Config) core.Config { c.Bounds = core.BoundsElkan; return c }},
		{"no-bbox", func(c core.Config) core.Config { c.BBoxPruning = false; return c }},
		{"no-erosion", func(c core.Config) core.Config { c.Erosion = false; return c }},
		{"no-sampling", func(c core.Config) core.Config { c.SampledInit = false; return c }},
		{"random-init", func(c core.Config) core.Config { c.SFCBootstrap = false; return c }},
	}
	var out []AblationRow
	fmt.Fprintf(w, "Ablation on %s (n=%d, k=%d, p=%d)\n", m.Name, m.N(), k, p)
	fmt.Fprintf(w, "%-14s %10s %10s %12s %10s %12s %6s\n",
		"config", "time[s]", "cut", "ΣcommVol", "imbalance", "distCalcs", "iters")
	for _, cfgSpec := range configs {
		bkm := core.New(cfgSpec.mod(base))
		row, err := RunOne(m, bkm, k, p, 0, sc.Repeats)
		if err != nil {
			return nil, err
		}
		info := bkm.LastInfo()
		ar := AblationRow{
			Config: cfgSpec.name, Seconds: row.Seconds, Cut: row.Cut,
			TotComm: row.TotComm, Imbalance: row.Imbalance,
			DistCalcs: info.DistCalcs, Iterations: info.Iterations,
		}
		out = append(out, ar)
		fmt.Fprintf(w, "%-14s %10.3f %10d %12d %10.4f %12d %6d\n",
			ar.Config, ar.Seconds, ar.Cut, ar.TotComm, ar.Imbalance, ar.DistCalcs, ar.Iterations)
	}
	return out, nil
}
