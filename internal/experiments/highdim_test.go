package experiments

import (
	"bytes"
	"encoding/json"
	"io"
	"testing"
)

// tinyHighdimScale keeps the feature-space driver test fast while still
// running more than one rank and more than one warm step.
func tinyHighdimScale() Scale {
	sc := QuickScale()
	sc.HighdimN = 1500
	sc.HighdimK = 4
	sc.HighdimP = 2
	sc.HighdimSteps = 2
	return sc
}

func TestHighdimCellsGrid(t *testing.T) {
	tiny := HighdimCells(tinyHighdimScale())
	if len(tiny) != 3 {
		t.Fatalf("tiny grid has %d cells, want 3 (one per dimension)", len(tiny))
	}
	def := HighdimCells(DefaultScale())
	if len(def) != 6 {
		t.Fatalf("default grid has %d cells, want quick + default = 6", len(def))
	}
	// The committed default-scale snapshot must contain the quick cells
	// so CI's quick runs have cells to diff against.
	quick := HighdimCells(QuickScale())
	for i, q := range quick {
		if def[i] != q {
			t.Errorf("default grid cell %d = %+v, want quick cell %+v", i, def[i], q)
		}
	}
	wantDims := []int{8, 16, 64}
	for i, c := range def {
		if c.N <= 0 || c.K <= 0 || c.P <= 0 || c.Steps <= 0 || c.M != c.K {
			t.Errorf("malformed cell %+v", c)
		}
		if c.Dim != wantDims[i%3] {
			t.Errorf("cell %d dim = %d, want %d", i, c.Dim, wantDims[i%3])
		}
	}
}

// The highdim grid's deterministic fields must reproduce exactly run to
// run — that is what lets tools/benchdiff treat them as regression
// fences.
func TestHighdimDeterministicAndWellFormed(t *testing.T) {
	sc := tinyHighdimScale()
	a, err := Highdim(io.Discard, sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Highdim(io.Discard, sc)
	if err != nil {
		t.Fatal(err)
	}
	if a.Schema != highdimSchema || len(a.Cells) != len(HighdimCells(sc)) {
		t.Fatalf("report shape: schema %q, %d cells", a.Schema, len(a.Cells))
	}
	for i := range a.Cells {
		ca, cb := a.Cells[i], b.Cells[i]
		if ca.Collectives != cb.Collectives || ca.CollectiveBytes != cb.CollectiveBytes ||
			ca.Barriers != cb.Barriers || ca.DistCalcs != cb.DistCalcs ||
			ca.ChainCut != cb.ChainCut || ca.Imbalance != cb.Imbalance {
			t.Errorf("cell %d deterministic fields differ:\n%+v\n%+v", i, ca, cb)
		}
		if ca.Collectives <= 0 || ca.CollectiveBytes <= 0 || ca.DistCalcs <= 0 ||
			ca.WallSec <= 0 || ca.StepSecMean <= 0 {
			t.Errorf("cell %d has empty counters: %+v", i, ca)
		}
		if ca.Imbalance < 0 || ca.ChainCut < 0 {
			t.Errorf("cell %d has negative quality metrics: %+v", i, ca)
		}
	}

	var buf bytes.Buffer
	if err := WriteHighdimJSON(&buf, a); err != nil {
		t.Fatal(err)
	}
	var back HighdimReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if back.Schema != a.Schema || len(back.Cells) != len(a.Cells) {
		t.Errorf("round-trip changed shape")
	}
	if back.Cells[0].DistCalcs != a.Cells[0].DistCalcs {
		t.Errorf("round-trip changed counters")
	}
}
