// Package experiments reproduces the paper's evaluation (§5): the
// instance registry mirrors the benchmark meshes of §5.2.3 with synthetic
// analogs (see DESIGN.md for the mapping), and one driver per table and
// figure regenerates the corresponding rows/series at a configurable
// scale.
package experiments

import (
	"fmt"
	"sync"

	"geographer/internal/core"
	"geographer/internal/mesh"
	"geographer/internal/partition"
)

// Class labels mirror the three instance classes of Figure 2.
const (
	Class2D      = "2D"   // DIMACS-style 2D meshes
	ClassClimate = "2.5D" // climate meshes with node weights
	Class3D      = "3D"   // alya + 3D Delaunay analogs
)

// Instance is a generatable benchmark mesh. SizeFactor scales the
// requested n so the collection spans sizes like the paper's (e.g.
// alyaTestCaseB is ~3× alyaTestCaseA there).
type Instance struct {
	Name       string
	Class      string
	Gen        func(n int, seed int64) (*mesh.Mesh, error)
	Seed       int64
	SizeFactor float64
}

// Registry returns the analogs of the paper's §5.2.3 collection. The
// paper instance each analog stands in for is given in the name; the size
// factors mirror the relative sizes of the original instances.
func Registry() []Instance {
	return []Instance{
		// 2D DIMACS class.
		{Name: "hugetric", Class: Class2D, Gen: mesh.GenRefinedTri, Seed: 1, SizeFactor: 0.7},
		{Name: "hugetrace", Class: Class2D, Gen: mesh.GenRefinedTri, Seed: 2, SizeFactor: 1.6},
		{Name: "hugebubbles", Class: Class2D, Gen: mesh.GenBubbles, Seed: 3, SizeFactor: 2.1},
		{Name: "333SP", Class: Class2D, Gen: mesh.GenAirfoil, Seed: 4, SizeFactor: 0.37},
		{Name: "AS365", Class: Class2D, Gen: mesh.GenAirfoil, Seed: 5, SizeFactor: 0.38},
		{Name: "M6", Class: Class2D, Gen: mesh.GenAirfoil, Seed: 6, SizeFactor: 0.35},
		{Name: "NACA0015", Class: Class2D, Gen: mesh.GenAirfoil, Seed: 7, SizeFactor: 0.1},
		{Name: "NLR", Class: Class2D, Gen: mesh.GenAirfoil, Seed: 8, SizeFactor: 0.42},
		{Name: "rgg", Class: Class2D, Gen: func(n int, s int64) (*mesh.Mesh, error) { return mesh.GenRGG2D(n, s, 13) }, Seed: 9, SizeFactor: 1.0},
		{Name: "delaunay2d", Class: Class2D, Gen: mesh.GenDelaunayUniform2D, Seed: 10, SizeFactor: 1.7},
		// 2.5D climate class.
		{Name: "fesom-f2glo04", Class: ClassClimate, Gen: mesh.GenClimate, Seed: 11, SizeFactor: 0.6},
		{Name: "fesom-fron", Class: ClassClimate, Gen: mesh.GenClimate, Seed: 12, SizeFactor: 0.5},
		{Name: "fesom-jigsaw", Class: ClassClimate, Gen: mesh.GenClimate, Seed: 13, SizeFactor: 1.4},
		// 3D class.
		{Name: "alyaTestCaseA", Class: Class3D, Gen: mesh.GenTube3D, Seed: 14, SizeFactor: 1.0},
		{Name: "alyaTestCaseB", Class: Class3D, Gen: mesh.GenTube3D, Seed: 15, SizeFactor: 3.1},
		{Name: "delaunay3d", Class: Class3D, Gen: mesh.GenDelaunay3D, Seed: 16, SizeFactor: 0.8},
		{Name: "rdg-3d", Class: Class3D, Gen: mesh.GenDelaunay3D, Seed: 17, SizeFactor: 0.4},
	}
}

// ByClass filters the registry.
func ByClass(class string) []Instance {
	var out []Instance
	for _, in := range Registry() {
		if in.Class == class {
			out = append(out, in)
		}
	}
	return out
}

// ScaledN applies the instance's size factor to a base size (≥ 500 so
// tiny factors stay meaningful at quick scale).
func (in Instance) ScaledN(base int) int {
	if in.SizeFactor <= 0 {
		return base
	}
	n := int(float64(base) * in.SizeFactor)
	if n < 500 {
		n = 500
	}
	return n
}

// meshCache avoids regenerating identical meshes across experiments.
var meshCache sync.Map // key string -> *mesh.Mesh

// Materialize generates (or fetches from cache) the instance at size n.
func (in Instance) Materialize(n int) (*mesh.Mesh, error) {
	key := fmt.Sprintf("%s/%d/%d", in.Name, n, in.Seed)
	if v, ok := meshCache.Load(key); ok {
		return v.(*mesh.Mesh), nil
	}
	m, err := in.Gen(n, in.Seed)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", in.Name, err)
	}
	m.Name = in.Name
	meshCache.Store(key, m)
	return m, nil
}

// Scale controls experiment sizes; the defaults are the paper's setup
// shrunk ~1000× to laptop scale (see DESIGN.md substitutions).
type Scale struct {
	Table2N    int // vertices for Table 2 instances (paper: 1M–31M)
	Table1N    int // vertices for Table 1 instances (paper: 14M–2B)
	KTable2    int // paper: 64
	KTable1    int // paper: 1024
	PerRank    int // weak-scaling local size (paper: 250 000)
	WeakMaxP   int // largest p=k of the weak-scaling series (paper: 8192)
	StrongN    int // strong-scaling graph size (paper: 2B)
	StrongMaxK int // largest k of the strong-scaling series (paper: 16384)
	Fig1N      int // Figure 1 rendering size
	SpMVIters  int // SpMV averaging iterations (paper: 100)
	Repeats    int // repetitions per measurement (paper: 5)

	// Soak grid (runexp -exp soak): streaming sessions at up to SoakN
	// points over up to SoakMaxP simulated ranks with SoakK/SoakMaxK
	// blocks, SoakSteps warm repartition steps per cell.
	SoakN     int
	SoakK     int
	SoakMaxK  int
	SoakMaxP  int
	SoakSteps int

	// Highdim grid (runexp -exp highdim): Gaussian-mixture clustering in
	// feature space at d ∈ {8, 16, 64} — HighdimN points, HighdimK
	// blocks (= mixture components), HighdimP simulated ranks,
	// HighdimSteps warm steps per cell.
	HighdimN     int
	HighdimK     int
	HighdimP     int
	HighdimSteps int
}

// DefaultScale is used by cmd/runexp.
func DefaultScale() Scale {
	return Scale{
		Table2N:    20000,
		Table1N:    120000,
		KTable2:    64,
		KTable1:    256,
		PerRank:    4000,
		WeakMaxP:   64,
		StrongN:    150000,
		StrongMaxK: 256,
		Fig1N:      12000,
		SpMVIters:  20,
		Repeats:    1,
		SoakN:      2_000_000,
		SoakK:      256,
		SoakMaxK:   512,
		SoakMaxP:   4096,
		SoakSteps:  3,

		HighdimN:     60000,
		HighdimK:     16,
		HighdimP:     16,
		HighdimSteps: 3,
	}
}

// QuickScale keeps unit tests and smoke benches fast.
func QuickScale() Scale {
	return Scale{
		Table2N:    2500,
		Table1N:    6000,
		KTable2:    16,
		KTable1:    32,
		PerRank:    800,
		WeakMaxP:   8,
		StrongN:    5000,
		StrongMaxK: 32,
		Fig1N:      2000,
		SpMVIters:  3,
		Repeats:    1,
		SoakN:      50000,
		SoakK:      16,
		SoakMaxK:   32,
		SoakMaxP:   64,
		SoakSteps:  2,

		HighdimN:     6000,
		HighdimK:     8,
		HighdimP:     4,
		HighdimSteps: 2,
	}
}

// Tools returns the partitioners of the evaluation in the paper's
// presentation order: Geographer (geoKmeans) and the Zoltan competitors.
func Tools() []partition.Distributed {
	cfg := core.DefaultConfig()
	cfg.Seed = 1
	return []partition.Distributed{
		core.New(cfg),
		baselinesMJ(),
		baselinesRCB(),
		baselinesRIB(),
		baselinesHSFC(),
	}
}

// TableTools returns the four tools shown in Tables 1 and 2 (the paper
// omits RIB there).
func TableTools() []partition.Distributed {
	cfg := core.DefaultConfig()
	cfg.Seed = 1
	return []partition.Distributed{
		core.New(cfg),
		baselinesHSFC(),
		baselinesMJ(),
		baselinesRCB(),
	}
}
