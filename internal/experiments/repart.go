package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"geographer/internal/core"
	"geographer/internal/geom"
	"geographer/internal/mesh"
	"geographer/internal/metrics"
	"geographer/internal/mpi"
	"geographer/internal/partition"
	"geographer/internal/repart"
)

// RepartRow is one timestep measurement of the dynamic-load scenario:
// one row per (workload, timestep, mode), where mode is "warm"
// (repartitioning seeded from the previous partition) or "scratch" (a
// fresh Partition every step). Migration is measured against the
// mode's own previous partition — the one the simulated application
// would actually be holding its data in.
type RepartRow struct {
	Graph string
	Step  int
	Mode  string // "warm" | "scratch"
	K, P  int

	Seconds        float64 // wall-clock partitioning time of this step
	Cut            int64
	Imbalance      float64
	MigratedWeight float64
	MigratedFrac   float64 // MigratedWeight / total point weight
}

// repartSteps is the number of perturbed timesteps after the common
// initial partition.
const repartSteps = 5

// perturbedWeights models evolving simulation load at timestep t: the
// base weights drift under a smooth spatial wave (amplitude ±40%) whose
// phase advances with t — deterministic, strictly positive, and
// spatially correlated like real load evolution (a climate front or a
// refinement region moving through the mesh, paper §1).
func perturbedWeights(m *mesh.Mesh, t int) []float64 {
	ps := m.Points
	n := ps.Len()
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		x := ps.Coords[i*ps.Dim]
		y := ps.Coords[i*ps.Dim+1]
		wave := math.Sin(0.08*x + 0.05*y + 0.9*float64(t)) // spatial wave, phase moves per step
		out[i] = ps.W(i) * (1 + 0.4*wave)
	}
	return out
}

// repartWorkloads lists the dynamic-load scenarios: the 2.5D climate
// mesh (the paper's motivating repartitioning use case, with layer
// weights) and a refined 2D mesh (unit base weights).
func repartWorkloads(sc Scale) []struct {
	kind string
	n, k int
} {
	return []struct {
		kind string
		n, k int
	}{
		{"climate", sc.Table2N, 16},
		{"refined", sc.Table2N, 16},
	}
}

// Repart runs the warm-start repartitioning experiment: T timesteps of
// evolving node weights, partitioned once per step either by warm-start
// repartitioning (a long-lived repart.Session: previous centers, no SFC
// phase, resident state — ingest paid once) or from scratch (a full
// Partition per step). Both chains start from the same initial
// partition. Reported per step: wall time, edge cut, imbalance, and the
// migration volume against the chain's previous partition. The summary
// compares total migrated weight — the measure warm starts exist to
// minimize.
func Repart(w io.Writer, sc Scale) ([]RepartRow, error) {
	const p = 4
	var out []RepartRow
	fmt.Fprintf(w, "Warm-start repartitioning vs from-scratch over %d perturbed timesteps, p=%d\n", repartSteps, p)
	for _, wl := range repartWorkloads(sc) {
		m, err := repartMesh(wl.kind, wl.n)
		if err != nil {
			return nil, err
		}

		cfg := core.DefaultConfig()
		cfg.Seed = 1

		// Common initial partition at t=0 load, computed through the warm
		// chain's session (bit-identical to a one-shot partition.Run).
		// The timestep point sets share the mesh coordinates and differ
		// only in weights.
		ps0 := &geom.PointSet{Dim: m.Points.Dim, Coords: m.Points.Coords, Weight: perturbedWeights(m, 0)}
		sess, err := repart.NewSession(mpi.NewWorld(p), ps0, wl.k, cfg)
		if err != nil {
			return nil, err
		}
		defer sess.Close()
		initial, err := sess.Partition()
		if err != nil {
			return nil, err
		}

		fmt.Fprintf(w, "\n%-10s n=%d k=%d\n", wl.kind, m.N(), wl.k)
		fmt.Fprintf(w, "%4s %-8s %10s %8s %10s %12s %8s\n",
			"step", "mode", "wall[s]", "cut", "imbalance", "migrated_w", "mig%")

		totals := map[string]float64{}
		prev := map[string][]int32{"warm": initial.Assign, "scratch": initial.Assign}
		for t := 1; t <= repartSteps; t++ {
			wt := perturbedWeights(m, t)
			ps := &geom.PointSet{Dim: m.Points.Dim, Coords: m.Points.Coords, Weight: wt}
			for _, mode := range []string{"warm", "scratch"} {
				t0 := time.Now()
				var assign []int32
				switch mode {
				case "warm":
					// Delta application on the resident state, then one
					// warm k-means phase — no re-scatter, no re-ingest.
					if err := sess.UpdateWeights(wt); err != nil {
						return nil, fmt.Errorf("repart %s step %d: %w", wl.kind, t, err)
					}
					pw, _, err := sess.RepartitionFrom(prev[mode])
					if err != nil {
						return nil, fmt.Errorf("repart %s step %d: %w", wl.kind, t, err)
					}
					assign = pw.Assign
				case "scratch":
					pn, err := partition.Run(mpi.NewWorld(p), ps, wl.k, core.New(cfg))
					if err != nil {
						return nil, fmt.Errorf("scratch %s step %d: %w", wl.kind, t, err)
					}
					assign = pn.Assign
				}
				secs := time.Since(t0).Seconds()

				rep, err := metrics.Evaluate(m.G, ps, assign, wl.k)
				if err != nil {
					return nil, err
				}
				migW, _, err := metrics.MigrationVolume(ps, prev[mode], assign)
				if err != nil {
					return nil, err
				}
				row := RepartRow{
					Graph: wl.kind, Step: t, Mode: mode, K: wl.k, P: p,
					Seconds: secs, Cut: rep.EdgeCut, Imbalance: rep.Imbalance,
					MigratedWeight: migW,
				}
				if total := ps.TotalWeight(); total > 0 {
					row.MigratedFrac = migW / total
				}
				out = append(out, row)
				totals[mode+"_mig"] += migW
				totals[mode+"_sec"] += secs
				totals[mode+"_cut"] += float64(rep.EdgeCut)
				prev[mode] = assign
				fmt.Fprintf(w, "%4d %-8s %10.4f %8d %10.4f %12.1f %7.1f%%\n",
					t, mode, secs, rep.EdgeCut, rep.Imbalance, migW, 100*row.MigratedFrac)
			}
		}
		sess.Close() // release this workload's resident state before the next (defer covers error paths)
		fmt.Fprintf(w, "summary %s: migrated weight warm %.1f vs scratch %.1f (%.2fx less), time warm %.4fs vs scratch %.4fs, mean cut warm %.0f vs scratch %.0f\n",
			wl.kind, totals["warm_mig"], totals["scratch_mig"],
			safeRatio(totals["scratch_mig"], totals["warm_mig"]),
			totals["warm_sec"], totals["scratch_sec"],
			totals["warm_cut"]/repartSteps, totals["scratch_cut"]/repartSteps)
	}
	return out, nil
}

func safeRatio(a, b float64) float64 {
	if b == 0 {
		return math.Inf(1)
	}
	return a / b
}
