package experiments

import (
	"fmt"
	"io"
	"time"

	"geographer/internal/core"
	"geographer/internal/geom"
	"geographer/internal/mesh"
	"geographer/internal/metrics"
	"geographer/internal/mpi"
	"geographer/internal/repart"
)

// StreamRow is one timestep measurement of the streaming repartitioning
// experiment: a long-lived Session (one ingest, T warm k-means steps)
// against the chain of one-shot Repartition calls that re-ingests every
// step. Both chains produce bit-identical partitions (the driver
// verifies this), so cut/imbalance/migration agree and the comparison
// isolates the ingest amortization.
type StreamRow struct {
	Graph string
	// Step 0 is the common cold initial partition (mode "cold"); steps
	// 1..T are warm repartitioning steps under perturbed weights.
	Step int
	// Mode is "cold" (shared initial partition), "session" (resident
	// state, ingest paid once at construction), or "oneshot"
	// (repart.Repartition per step, ingest paid every step).
	Mode string
	K, P int

	// Seconds is the wall time of this step's partitioning call alone —
	// for session steps that excludes ingest by construction, because
	// the ingest happened once in NewSession (IngestSeconds of the
	// step-0 "session" accounting below).
	Seconds float64
	// IngestSeconds is the scatter + resident-column build time paid at
	// this step: the session pays it only at step 0, the one-shot chain
	// on every step.
	IngestSeconds float64
	// KMeansSeconds is the warm k-means phase of this step (rank 0).
	KMeansSeconds float64

	Cut            int64
	Imbalance      float64
	MigratedWeight float64
	MigratedFrac   float64 // MigratedWeight / total point weight

	// Incremental-path observability (core.Config.Incremental): the
	// step's global distance evaluations and Hamerly bound skips,
	// whether the step reused bounds carried from the previous warm
	// step on every rank, and the fraction of points its first
	// assignment pass examined. The session chain carries bounds from
	// its second warm step on; the one-shot chain re-ingests and always
	// reports Incremental=false — the delta in DistCalcs between the
	// two modes at equal partitions is the optimization, made visible.
	DistCalcs    int64
	HamerlySkips int64
	BoundaryFrac float64
	Incremental  bool
}

// streamSteps is the number of perturbed timesteps after the common
// initial partition (T of the acceptance scenario).
const streamSteps = 5

// Stream runs the streaming timestep driver: the dynamic-load workloads
// of the repart experiment (climate with layer weights, refined 2D),
// T = streamSteps perturbed-weight steps, partitioned by (a) one
// long-lived repart.Session — ingest once, then UpdateWeights +
// Repartition per step — and (b) the equivalent chain of one-shot
// Repartition calls, which re-scatters and re-ingests every step. The
// two chains are verified bit-identical step by step; the reported
// difference is pure cost: the session's per-step time excludes
// re-ingest, so ingest appears once (step 0) in its phase breakdown
// instead of once per step.
func Stream(w io.Writer, sc Scale) ([]StreamRow, error) {
	const p = 4
	var out []StreamRow
	fmt.Fprintf(w, "Streaming session vs per-step one-shot repartitioning over %d perturbed timesteps, p=%d\n", streamSteps, p)
	for _, wl := range repartWorkloads(sc) {
		m, err := repartMesh(wl.kind, wl.n)
		if err != nil {
			return nil, err
		}
		cfg := core.DefaultConfig()
		cfg.Seed = 1

		// The session ingests the coordinates once, at t=0 load.
		ps0 := &geom.PointSet{Dim: m.Points.Dim, Coords: m.Points.Coords, Weight: perturbedWeights(m, 0)}
		sess, err := repart.NewSession(mpi.NewWorld(p), ps0, wl.k, cfg)
		if err != nil {
			return nil, fmt.Errorf("stream %s: %w", wl.kind, err)
		}

		t0 := time.Now()
		initial, err := sess.Partition()
		if err != nil {
			sess.Close()
			return nil, fmt.Errorf("stream %s: %w", wl.kind, err)
		}
		coldSecs := time.Since(t0).Seconds()
		rep, err := metrics.Evaluate(m.G, ps0, initial.Assign, wl.k)
		if err != nil {
			sess.Close()
			return nil, err
		}
		coldInfo := sess.LastInfo()
		out = append(out, StreamRow{
			Graph: wl.kind, Step: 0, Mode: "cold", K: wl.k, P: p,
			Seconds: coldSecs, IngestSeconds: sess.IngestSeconds(),
			KMeansSeconds: coldInfo.KMeansSeconds,
			Cut:           rep.EdgeCut, Imbalance: rep.Imbalance,
			DistCalcs: coldInfo.DistCalcs, HamerlySkips: coldInfo.HamerlySkips,
			BoundaryFrac: 1,
		})

		fmt.Fprintf(w, "\n%-10s n=%d k=%d (cold init %.4fs, session ingest %.4fs — paid once)\n",
			wl.kind, m.N(), wl.k, coldSecs, sess.IngestSeconds())
		fmt.Fprintf(w, "%4s %-8s %10s %10s %10s %8s %10s %12s %8s %10s %6s %4s\n",
			"step", "mode", "wall[s]", "ingest[s]", "kmeans[s]", "cut", "imbalance", "migrated_w", "mig%", "dist", "bnd%", "inc")

		totals := map[string]float64{}
		prevOneshot := initial.Assign
		for t := 1; t <= streamSteps; t++ {
			wt := perturbedWeights(m, t)

			// Session step: apply the weight delta in place, warm k-means
			// on the resident columns.
			if err := sess.UpdateWeights(wt); err != nil {
				sess.Close()
				return nil, fmt.Errorf("stream %s step %d: %w", wl.kind, t, err)
			}
			t0 = time.Now()
			pw, stw, err := sess.Repartition()
			if err != nil {
				sess.Close()
				return nil, fmt.Errorf("stream %s step %d: %w", wl.kind, t, err)
			}
			sessSecs := time.Since(t0).Seconds()

			// One-shot step: the same warm step through repart.Repartition,
			// which scatters and ingests the whole point set again.
			ps := &geom.PointSet{Dim: m.Points.Dim, Coords: m.Points.Coords, Weight: wt}
			t0 = time.Now()
			po, sto, err := repart.Repartition(mpi.NewWorld(p), ps, prevOneshot, wl.k, cfg)
			if err != nil {
				sess.Close()
				return nil, fmt.Errorf("stream oneshot %s step %d: %w", wl.kind, t, err)
			}
			oneSecs := time.Since(t0).Seconds()

			// The chains must stay bit-identical (the differential test
			// pins this too; failing here means the session diverged).
			for i := range pw.Assign {
				if pw.Assign[i] != po.Assign[i] {
					sess.Close()
					return nil, fmt.Errorf("stream %s step %d: session and one-shot partitions diverged at point %d (%d vs %d)",
						wl.kind, t, i, pw.Assign[i], po.Assign[i])
				}
			}
			prevOneshot = po.Assign

			rep, err := metrics.Evaluate(m.G, ps, pw.Assign, wl.k)
			if err != nil {
				sess.Close()
				return nil, err
			}
			for _, mode := range []string{"session", "oneshot"} {
				row := StreamRow{
					Graph: wl.kind, Step: t, Mode: mode, K: wl.k, P: p,
					Cut: rep.EdgeCut, Imbalance: rep.Imbalance,
				}
				// Each chain reports its own stats (the partitions are
				// equal — the check above ran — but the cost counters are
				// exactly where the chains differ: the session's steps
				// turn incremental once bounds can be carried).
				st := stw
				if mode == "session" {
					row.Seconds, row.IngestSeconds, row.KMeansSeconds = sessSecs, 0, stw.Info.KMeansSeconds
				} else {
					st = sto
					row.Seconds, row.IngestSeconds, row.KMeansSeconds = oneSecs, sto.IngestSeconds, sto.Info.KMeansSeconds
				}
				row.MigratedWeight = st.MigratedWeight
				if st.TotalWeight > 0 {
					row.MigratedFrac = st.MigratedWeight / st.TotalWeight
				}
				row.DistCalcs = st.DistCalcs
				row.HamerlySkips = st.HamerlySkips
				row.BoundaryFrac = st.BoundaryFrac
				row.Incremental = st.Incremental
				out = append(out, row)
				totals[mode+"_sec"] += row.Seconds
				totals[mode+"_ing"] += row.IngestSeconds
				totals[mode+"_dist"] += float64(row.DistCalcs)
				totals[mode+"_km"] += row.KMeansSeconds
				inc := " "
				if row.Incremental {
					inc = "*"
				}
				fmt.Fprintf(w, "%4d %-8s %10.4f %10.4f %10.4f %8d %10.4f %12.1f %7.1f%% %10d %5.1f%% %4s\n",
					t, mode, row.Seconds, row.IngestSeconds, row.KMeansSeconds,
					row.Cut, row.Imbalance, row.MigratedWeight, 100*row.MigratedFrac,
					row.DistCalcs, 100*row.BoundaryFrac, inc)
			}
		}
		ingestOnce := sess.IngestSeconds()
		sess.Close()
		fmt.Fprintf(w, "summary %s: %d warm steps in %.4fs with the session vs %.4fs one-shot (%.2fx); ingest %.4fs once vs %.4fs re-paid across steps; dist calcs %.0f vs %.0f (%.2fx), warm k-means %.4fs vs %.4fs (%.2fx); partitions bit-identical\n",
			wl.kind, streamSteps, totals["session_sec"], totals["oneshot_sec"],
			safeRatio(totals["oneshot_sec"], totals["session_sec"]),
			ingestOnce, totals["oneshot_ing"],
			totals["session_dist"], totals["oneshot_dist"],
			safeRatio(totals["oneshot_dist"], totals["session_dist"]),
			totals["session_km"], totals["oneshot_km"],
			safeRatio(totals["oneshot_km"], totals["session_km"]))
	}
	return out, nil
}

// repartMesh materializes a dynamic-load workload mesh by kind (shared
// by the repart and stream experiments).
func repartMesh(kind string, n int) (*mesh.Mesh, error) {
	switch kind {
	case "climate":
		return mesh.GenClimate(n, 42)
	case "refined":
		return mesh.GenRefinedTri(n, 42)
	default:
		return nil, fmt.Errorf("experiments: unknown dynamic workload %q", kind)
	}
}
