package experiments

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"geographer/internal/core"
	"geographer/internal/geom"
	"geographer/internal/mpi"
	"geographer/internal/repart"
)

// SoakConfig is one cell of the soak grid: a streaming repartitioning
// session of Steps warm steps at paper-scale point and rank counts.
type SoakConfig struct {
	N     int `json:"n"`
	Dim   int `json:"dim"`
	K     int `json:"k"`
	P     int `json:"p"`
	Steps int `json:"steps"`
}

// SoakCell is the measurement of one soak cell. The deterministic
// fields (Collectives, CollectiveBytes, Barriers, DistCalcs,
// ModeledCommSec, Imbalance) are exact functions of the cell config and
// must reproduce bit-for-bit run to run — tools/benchdiff fails on
// regressions there. Wall time, RSS, and allocation counters are
// machine-dependent and compared warn-only.
type SoakCell struct {
	SoakConfig

	WallSec     float64 `json:"wall_sec"`   // whole cell: ingest + all steps
	IngestSec   float64 `json:"ingest_sec"` // NewSession (scatter + resident build)
	StepSecMean float64 `json:"step_sec_mean"`

	PeakRSSMB       float64 `json:"peak_rss_mb"`       // process VmHWM after the cell (cumulative)
	MallocsPerStep  float64 `json:"mallocs_per_step"`  // runtime.MemStats Mallocs delta / steps
	AllocMBPerStep  float64 `json:"alloc_mb_per_step"` // runtime.MemStats TotalAlloc delta / steps
	Collectives     int64   `json:"collectives"`       // summed over ranks, all steps
	CollectiveBytes int64   `json:"collective_bytes"`
	Barriers        int64   `json:"barriers"`
	DistCalcs       int64   `json:"dist_calcs"`       // summed over steps
	ModeledCommSec  float64 `json:"modeled_comm_sec"` // max over ranks, α-β model
	Imbalance       float64 `json:"imbalance"`        // after the final step
}

// SoakReport is the BENCH_soak.json document.
type SoakReport struct {
	Schema string     `json:"schema"`
	Cells  []SoakCell `json:"cells"`
}

// soakSchema versions the report; benchdiff refuses mismatched schemas.
const soakSchema = "geographer-soak/v1"

// SoakCells returns the grid for a scale: the quick cells always come
// first — they are cheap, and their presence in every report (including
// the committed default-scale BENCH_soak.json) gives CI's quick runs
// matching cells to diff against — followed, when sc is larger than
// quick scale, by the paper-scale cells (k up to SoakMaxK, p up to
// SoakMaxP, n = SoakN).
func SoakCells(sc Scale) []SoakConfig {
	cellsFor := func(s Scale) []SoakConfig {
		return []SoakConfig{
			{N: s.SoakN, Dim: 3, K: s.SoakK, P: s.SoakMaxP / 4, Steps: s.SoakSteps},
			{N: s.SoakN, Dim: 3, K: s.SoakK, P: s.SoakMaxP, Steps: s.SoakSteps},
			{N: s.SoakN, Dim: 3, K: s.SoakMaxK, P: s.SoakMaxP / 4, Steps: s.SoakSteps},
		}
	}
	cells := cellsFor(sc)
	if sc.SoakN > QuickScale().SoakN {
		cells = append(cellsFor(QuickScale()), cells...)
	}
	return cells
}

// soakPoints generates the soak workload: n uniform points in a unit
// cube (dim 3 exercises all coordinate columns) with unit-ish weights.
// Deterministic in n alone so every run and every scale reproduces the
// same cells bit-for-bit.
func soakPoints(n, dim int) *geom.PointSet {
	rng := rand.New(rand.NewSource(int64(n)*31 + int64(dim)))
	ps := &geom.PointSet{Dim: dim, Coords: make([]float64, n*dim), Weight: make([]float64, n)}
	for i := range ps.Coords {
		ps.Coords[i] = rng.Float64()
	}
	for i := range ps.Weight {
		ps.Weight[i] = 0.5 + rng.Float64()
	}
	return ps
}

// soakWeights is the per-step load perturbation: a travelling wave over
// the point index, so block weights shift every step and each warm step
// does real balancing work.
func soakWeights(base []float64, step int) []float64 {
	w := make([]float64, len(base))
	for i := range w {
		w[i] = base[i] * (1 + 0.3*math.Sin(float64(i)*0.37+float64(step)))
	}
	return w
}

// runSoakCell runs one cell: striped seed partition, one session, Steps
// warm repartitioning steps, counters read from the world after the
// final step.
func runSoakCell(cfg SoakConfig) (SoakCell, error) {
	cell := SoakCell{SoakConfig: cfg}
	ps := soakPoints(cfg.N, cfg.Dim)
	base := append([]float64(nil), ps.Weight...)

	// Spatial-slab seed partition (block = x-slab): recovered centers
	// spread across the domain, so the warm start converges like a real
	// repartition instead of degenerating into badly-seeded cold
	// k-means (index stripes of uniform points all have centroids at
	// the cube center), without paying the cold SFC-sort pipeline the
	// soak is not measuring.
	prev := make([]int32, cfg.N)
	for i := range prev {
		b := int32(ps.Coords[i*cfg.Dim] * float64(cfg.K))
		if b >= int32(cfg.K) {
			b = int32(cfg.K) - 1
		}
		prev[i] = b
	}

	ccfg := core.DefaultConfig()
	w := mpi.NewWorld(cfg.P)
	t0 := time.Now()
	sess, err := repart.NewSession(w, ps, cfg.K, ccfg)
	if err != nil {
		return cell, err
	}
	defer sess.Close()
	cell.IngestSec = sess.IngestSeconds()
	if err := sess.SetPartition(prev); err != nil {
		return cell, err
	}

	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	stepStart := time.Now()
	for s := 0; s < cfg.Steps; s++ {
		if err := sess.UpdateWeights(soakWeights(base, s)); err != nil {
			return cell, err
		}
		_, st, err := sess.Repartition()
		if err != nil {
			return cell, fmt.Errorf("step %d: %w", s, err)
		}
		cell.DistCalcs += st.DistCalcs
	}
	runtime.ReadMemStats(&ms1)
	cell.StepSecMean = time.Since(stepStart).Seconds() / float64(cfg.Steps)
	cell.MallocsPerStep = float64(ms1.Mallocs-ms0.Mallocs) / float64(cfg.Steps)
	cell.AllocMBPerStep = float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(cfg.Steps) / (1 << 20)

	for _, st := range w.Stats() {
		cell.Collectives += st.Collectives
		cell.CollectiveBytes += st.CollectiveBytes
		cell.Barriers += st.Barriers
		if st.ModeledCommSec > cell.ModeledCommSec {
			cell.ModeledCommSec = st.ModeledCommSec
		}
	}
	if cell.Imbalance, err = sess.Imbalance(); err != nil {
		return cell, err
	}
	cell.WallSec = time.Since(t0).Seconds()
	cell.PeakRSSMB = peakRSSMB()
	return cell, nil
}

// Soak runs the scaling soak (DESIGN.md, "Scaling invariants"): long
// streaming sessions at up to millions of points and thousands of
// simulated ranks, recording wall time, peak RSS, per-step allocation
// deltas, collective counts and bytes, and α-β modeled communication
// time per cell. The report is written as BENCH_soak.json by cmd/runexp
// (-bench) and diffed against the committed snapshot by
// tools/benchdiff.
func Soak(w io.Writer, sc Scale) (SoakReport, error) {
	rep := SoakReport{Schema: soakSchema}
	fmt.Fprintf(w, "%-9s %5s %5s %6s | %9s %9s %11s | %12s %14s %10s %9s\n",
		"n", "k", "p", "steps", "wall_s", "step_s", "peak_rss_mb", "collectives", "coll_bytes", "comm_s", "imbal")
	for _, cfg := range SoakCells(sc) {
		cell, err := runSoakCell(cfg)
		if err != nil {
			return rep, fmt.Errorf("soak n=%d k=%d p=%d: %w", cfg.N, cfg.K, cfg.P, err)
		}
		rep.Cells = append(rep.Cells, cell)
		fmt.Fprintf(w, "%-9d %5d %5d %6d | %9.2f %9.2f %11.0f | %12d %14d %10.3f %9.4f\n",
			cell.N, cell.K, cell.P, cell.Steps, cell.WallSec, cell.StepSecMean, cell.PeakRSSMB,
			cell.Collectives, cell.CollectiveBytes, cell.ModeledCommSec, cell.Imbalance)
	}
	return rep, nil
}

// WriteSoakJSON writes the report as indented JSON (the BENCH_soak.json
// format).
func WriteSoakJSON(w io.Writer, rep SoakReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// peakRSSMB reads the process peak resident set size (VmHWM) from
// /proc/self/status, in MiB. Returns 0 where unavailable (non-Linux).
// The value is a process-lifetime high-water mark, so within one run it
// is non-decreasing across cells — cells are ordered smallest first so
// the early readings are not masked by the large ones.
func peakRSSMB() float64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return 0
		}
		return kb / 1024
	}
	return 0
}
