package experiments

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"geographer/internal/geom"
	"geographer/internal/serve"
	"geographer/internal/store"
)

// Durability-fence shape: durableTenants tenants drive warm
// repartitioning chains through a registry spilling to a real disk
// store. Phase A parks every tenant mid-chain (pending weight delta on
// board) and then injures a subset of the spill files directly on disk
// — a torn write (truncation at a random offset), a bit-flip, a
// deletion — before the chains resume. Phase B parks a fresh set of
// tenants and abandons the registry without Drain (the kill -9 shape),
// then recovers a brand-new registry from the same directory. The
// chain/step/k/p geometry matches the serve experiment so the solo
// reference helpers are shared.
const (
	durableTenants = 6
	// durableInjured maps injured tenant id → injury kind. Even ids
	// survive; odd ids each get one of the three corruption modes.
	durableTorn   = 1
	durableFlip   = 3
	durableDelete = 5
)

// DurableCell is the whole fence summarized for BENCH_durable.json.
// Everything except wall time is an exact function of the workload and
// the injury schedule — tools/benchdiff fails on drift.
type DurableCell struct {
	Tenants int `json:"tenants"`
	N       int `json:"n"`
	K       int `json:"k"`
	P       int `json:"p"`
	Steps   int `json:"steps"`

	// Phase A (injury fence).
	Parks          int64 `json:"parks"`
	Restores       int64 `json:"restores"`
	InjectedTorn   int   `json:"injected_torn"`
	InjectedFlip   int   `json:"injected_flip"`
	InjectedDelete int   `json:"injected_delete"`
	// Quarantined counts .quarantine files after the fence: torn and
	// flipped spills are set aside; a deleted spill leaves nothing to
	// quarantine.
	Quarantined int `json:"quarantined"`
	// LostTyped counts injured tenants whose every post-injury verb
	// failed with the typed, sticky ErrTenantLost (and nothing else —
	// a panic or an untyped error fails the run outright).
	LostTyped int `json:"lost_typed"`
	// SurvivorChains counts uninjured tenants whose full chain stayed
	// bit-identical to solo with exactly solo's distance evaluations.
	SurvivorChains int `json:"survivor_chains"`

	// Phase B (crash recovery).
	Recovered       int `json:"recovered"`
	RecoveredChains int `json:"recovered_chains"`

	DistCalcs int64   `json:"dist_calcs"`
	WallSec   float64 `json:"wall_sec"`
}

// DurableReport is the BENCH_durable.json document.
type DurableReport struct {
	Schema string        `json:"schema"`
	Cells  []DurableCell `json:"cells"`
}

// durableSchema versions the report; benchdiff refuses mismatched schemas.
const durableSchema = "geographer-durable/v1"

// durableChain is one tenant's registry-side chain state while it is
// driven step by step against its solo reference.
type durableChain struct {
	name      string
	ref       [][]int32
	soloDC    int64
	identical bool
	distCalcs int64
}

// durableCreateAndWarm creates tenant id in g, runs the cold partition
// and warm step 1 against the solo reference, stages the step-2 weight
// update (so the park carries a pending-looking delta), and parks it.
func durableCreateAndWarm(g *serve.Registry, id, n int, c *durableChain) error {
	m, _, err := serveMesh(id, n)
	if err != nil {
		return err
	}
	ps := &geom.PointSet{Dim: m.Points.Dim, Coords: m.Points.Coords, Weight: perturbedWeights(m, 7*id)}
	if err := g.Create(nil, c.name, ps, serve.TenantOptions{K: serveK, Processes: serveP, Workers: serveBudget}); err != nil {
		return err
	}
	p, err := g.Partition(nil, c.name)
	if err != nil {
		return err
	}
	if !sameAssign(p.Assign, c.ref[0]) {
		c.identical = false
	}
	if err := g.UpdateWeights(c.name, perturbedWeights(m, 7*id+1)); err != nil {
		return err
	}
	if err := durableStep(g, c, 1); err != nil {
		return err
	}
	// Stage the next step's weights before parking: the spill must
	// carry them and the restored step must still be incremental.
	if err := g.UpdateWeights(c.name, perturbedWeights(m, 7*id+2)); err != nil {
		return err
	}
	return g.Evict(c.name)
}

// durableStep runs warm step t through the registry and checks it
// against the solo reference.
func durableStep(g *serve.Registry, c *durableChain, t int) error {
	p, st, acted, err := g.RepartitionIfAbove(nil, c.name, 0)
	if err != nil {
		return err
	}
	if !acted {
		return fmt.Errorf("%s step %d did not act", c.name, t)
	}
	if !sameAssign(p.Assign, c.ref[t]) {
		c.identical = false
	}
	c.distCalcs += st.DistCalcs
	return nil
}

// durableFinish drives the remaining warm steps (2..serveSteps) of a
// restored tenant, feeding each step's weights first. Step 2's weights
// were already staged before the park.
func durableFinish(g *serve.Registry, id int, n int, c *durableChain) error {
	m, _, err := serveMesh(id, n)
	if err != nil {
		return err
	}
	for t := 2; t <= serveSteps; t++ {
		if t > 2 {
			if err := g.UpdateWeights(c.name, perturbedWeights(m, 7*id+t)); err != nil {
				return err
			}
		}
		if err := durableStep(g, c, t); err != nil {
			return err
		}
	}
	return nil
}

// chainGood reports whether a finished chain met the bit-identicality
// bar: every step equal to solo and exactly solo's distance count.
func (c *durableChain) chainGood() bool {
	return c.identical && c.distCalcs == c.soloDC
}

// injure corrupts tenant id's spill file in place, returning a
// description of what it did.
func injure(disk *store.Disk, name string, id int, rng *rand.Rand) (string, error) {
	path := disk.Path(name)
	switch id {
	case durableTorn:
		fi, err := os.Stat(path)
		if err != nil {
			return "", err
		}
		off := 1 + rng.Intn(int(fi.Size())-1)
		return fmt.Sprintf("torn write (truncated to %d of %d bytes)", off, fi.Size()),
			os.Truncate(path, int64(off))
	case durableFlip:
		raw, err := os.ReadFile(path)
		if err != nil {
			return "", err
		}
		raw[rng.Intn(len(raw))] ^= 1 << rng.Intn(8)
		return "bit-flip", os.WriteFile(path, raw, 0o644)
	case durableDelete:
		return "deleted spill", os.Remove(path)
	}
	return "", fmt.Errorf("tenant %d has no injury", id)
}

// durableRefs builds the solo reference chains for all tenants.
func durableRefs(n int) ([]durableChain, error) {
	chains := make([]durableChain, durableTenants)
	for id := 0; id < durableTenants; id++ {
		m, _, err := serveMesh(id, n)
		if err != nil {
			return nil, err
		}
		ref, dc, err := serveSoloChain(m, id)
		if err != nil {
			return nil, fmt.Errorf("solo reference %d: %w", id, err)
		}
		chains[id] = durableChain{
			name: fmt.Sprintf("durable-%d", id), ref: ref, soloDC: dc, identical: true,
		}
	}
	return chains, nil
}

// Durable runs the durability chaos fence (DESIGN.md, "Durability
// invariants"): park/restore cycles through a real disk spill store
// under injected torn writes, bit-flips, and deleted spill files, then
// a registry abandoned without Drain and recovered cold from the
// directory. The claims under test: an injured tenant degrades to the
// sticky typed ErrTenantLost — never a crash, never wrong bytes — with
// its spill quarantined; every uninjured tenant's chain stays
// bit-identical to its solo reference with exactly solo's distance
// evaluations; and a recovered registry resumes every parked chain
// bit-identically.
func Durable(w io.Writer, sc Scale) (DurableReport, error) {
	rep := DurableReport{Schema: durableSchema}
	n := sc.Table2N
	cell := DurableCell{
		Tenants: durableTenants, N: n, K: serveK, P: serveP, Steps: serveSteps,
		InjectedTorn: 1, InjectedFlip: 1, InjectedDelete: 1,
	}
	fmt.Fprintf(w, "Durability fence: %d tenants (n=%d k=%d p=%d, %d warm steps), disk spills; injuries: tenant %d torn write, %d bit-flip, %d deleted\n",
		durableTenants, n, serveK, serveP, serveSteps, durableTorn, durableFlip, durableDelete)

	chains, err := durableRefs(n)
	if err != nil {
		return rep, err
	}
	t0 := time.Now()

	// ---- Phase A: injuries against parked spills ----
	dirA, err := os.MkdirTemp("", "geographer-durable-a-")
	if err != nil {
		return rep, err
	}
	defer os.RemoveAll(dirA)
	diskA, err := store.NewDisk(dirA)
	if err != nil {
		return rep, err
	}
	gA := serve.NewRegistry(serve.Config{Store: diskA})
	defer gA.Drain()

	for id := range chains {
		if err := durableCreateAndWarm(gA, id, n, &chains[id]); err != nil {
			return rep, fmt.Errorf("phase A tenant %d: %w", id, err)
		}
	}

	rng := rand.New(rand.NewSource(7))
	injured := map[int]bool{durableTorn: true, durableFlip: true, durableDelete: true}
	for id := range chains {
		if !injured[id] {
			continue
		}
		what, err := injure(diskA, chains[id].name, id, rng)
		if err != nil {
			return rep, fmt.Errorf("injuring tenant %d: %w", id, err)
		}
		fmt.Fprintf(w, "  injured %s: %s\n", chains[id].name, what)
	}

	for id := range chains {
		c := &chains[id]
		if injured[id] {
			// Every verb on an injured tenant must degrade to the typed,
			// sticky sentinel — verified twice to pin stickiness.
			_, _, _, err1 := gA.RepartitionIfAbove(nil, c.name, 0)
			_, err2 := gA.Checkpoint(c.name)
			if errors.Is(err1, serve.ErrTenantLost) && errors.Is(err2, serve.ErrTenantLost) {
				cell.LostTyped++
			} else {
				return rep, fmt.Errorf("injured tenant %d: want sticky ErrTenantLost, got %v then %v", id, err1, err2)
			}
			continue
		}
		if err := durableFinish(gA, id, n, c); err != nil {
			return rep, fmt.Errorf("phase A survivor %d: %w", id, err)
		}
		if c.chainGood() {
			cell.SurvivorChains++
		}
		cell.DistCalcs += c.distCalcs
	}
	qs, err := diskA.Quarantined()
	if err != nil {
		return rep, err
	}
	cell.Quarantined = len(qs)
	stA := gA.Stats()
	cell.Parks += stA.Evictions
	cell.Restores += stA.Restores
	fmt.Fprintf(w, "phase A: %d survivors bit-identical, %d injured tenants typed-lost, %d spills quarantined, registry healthy (lost=%d)\n",
		cell.SurvivorChains, cell.LostTyped, cell.Quarantined, stA.Lost)

	// ---- Phase B: abandon without Drain, recover cold ----
	dirB, err := os.MkdirTemp("", "geographer-durable-b-")
	if err != nil {
		return rep, err
	}
	defer os.RemoveAll(dirB)
	diskB, err := store.NewDisk(dirB)
	if err != nil {
		return rep, err
	}
	chainsB, err := durableRefs(n)
	if err != nil {
		return rep, err
	}
	gB1 := serve.NewRegistry(serve.Config{Store: diskB})
	for id := range chainsB {
		if err := durableCreateAndWarm(gB1, id, n, &chainsB[id]); err != nil {
			return rep, fmt.Errorf("phase B tenant %d: %w", id, err)
		}
	}
	stB1 := gB1.Stats()
	cell.Parks += stB1.Evictions
	cell.Restores += stB1.Restores
	// gB1 is abandoned here — no Drain, no cleanup. Everything it knew
	// is gone except the spill directory; that is the kill -9 contract.
	gB1 = nil
	_ = gB1

	gB2 := serve.NewRegistry(serve.Config{Store: diskB})
	defer gB2.Drain()
	recovered, err := gB2.Recover()
	if err != nil {
		return rep, err
	}
	cell.Recovered = recovered
	for id := range chainsB {
		c := &chainsB[id]
		if err := durableFinish(gB2, id, n, c); err != nil {
			return rep, fmt.Errorf("phase B recovered tenant %d: %w", id, err)
		}
		if c.chainGood() {
			cell.RecoveredChains++
		}
		cell.DistCalcs += c.distCalcs
	}
	stB2 := gB2.Stats()
	cell.Restores += stB2.Restores
	cell.WallSec = time.Since(t0).Seconds()
	rep.Cells = append(rep.Cells, cell)

	fmt.Fprintf(w, "phase B: recovered %d parked tenants cold, %d chains finished bit-identically\n",
		recovered, cell.RecoveredChains)
	fmt.Fprintf(w, "summary: parks=%d restores=%d quarantined=%d lost_typed=%d survivors=%d/%d recovered_chains=%d/%d dist_calcs=%d wall=%.3fs\n",
		cell.Parks, cell.Restores, cell.Quarantined, cell.LostTyped,
		cell.SurvivorChains, durableTenants-len(injured), cell.RecoveredChains, durableTenants,
		cell.DistCalcs, cell.WallSec)
	return rep, nil
}

// WriteDurableJSON writes the report as indented JSON (the
// BENCH_durable.json format).
func WriteDurableJSON(w io.Writer, rep DurableReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
