package experiments

import (
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"geographer/internal/metrics"
	"geographer/internal/viz"
)

// Fig1 reproduces Figure 1: a hugetric-style mesh partitioned into 8
// blocks by every tool, rendered to one SVG per tool in dir. It returns
// the written file paths.
func Fig1(dir string, sc Scale) ([]string, error) {
	in := Registry()[0] // hugetric analog
	m, err := in.Materialize(sc.Fig1N)
	if err != nil {
		return nil, err
	}
	var paths []string
	for _, tool := range Tools() {
		row, err := RunOne(m, tool, 8, 8, 0, 1)
		if err != nil {
			return nil, err
		}
		path := filepath.Join(dir, fmt.Sprintf("fig1-%s.svg", row.Tool))
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		err = viz.RenderMesh(f, m.Points, m.G.Neighbors, row.Assignment.Assign, 8, viz.DefaultOptions())
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, err
		}
		paths = append(paths, path)
	}
	return paths, nil
}

// ClassRatios holds Figure 2's aggregated tool-vs-Geographer ratios for
// one instance class: >1 means the tool is worse than Geographer on that
// metric.
type ClassRatios struct {
	Class     string
	Tool      string
	EdgeCut   float64
	MaxComm   float64
	TotComm   float64
	HarmDiam  float64
	TimeComm  float64
	Instances int
}

// Fig2 reproduces Figure 2: per instance class, the geometric mean (over
// instances) of each tool's metric ratio relative to Geographer.
func Fig2(w io.Writer, sc Scale) ([]ClassRatios, error) {
	var out []ClassRatios
	for _, class := range []string{Class2D, ClassClimate, Class3D} {
		instances := ByClass(class)
		// ratios[tool][metric] collects per-instance ratios.
		type acc struct{ cut, maxc, totc, diam, tcomm []float64 }
		ratios := map[string]*acc{}
		var toolOrder []string
		for _, in := range instances {
			rows, err := RunInstance(in, in.ScaledN(sc.Table2N), sc.KTable2, sc.KTable2, sc.SpMVIters, sc.Repeats, Tools())
			if err != nil {
				return nil, err
			}
			geo := rows[0] // Tools() leads with Geographer
			for _, r := range rows[1:] {
				a := ratios[r.Tool]
				if a == nil {
					a = &acc{}
					ratios[r.Tool] = a
					toolOrder = append(toolOrder, r.Tool)
				}
				a.cut = append(a.cut, ratio(float64(r.Cut), float64(geo.Cut)))
				a.maxc = append(a.maxc, ratio(float64(r.MaxComm), float64(geo.MaxComm)))
				a.totc = append(a.totc, ratio(float64(r.TotComm), float64(geo.TotComm)))
				a.diam = append(a.diam, ratio(r.HarmDiam, geo.HarmDiam))
				a.tcomm = append(a.tcomm, ratio(r.SpMVComm, geo.SpMVComm))
			}
		}
		fmt.Fprintf(w, "Fig. 2 (%s class, %d instances; ratios vs Geographer, geometric mean):\n", class, len(instances))
		fmt.Fprintf(w, "  %-14s %8s %11s %11s %10s %10s\n", "tool", "edgeCut", "maxCommVol", "totCommVol", "harmDiam", "timeComm")
		for _, tool := range toolOrder {
			a := ratios[tool]
			cr := ClassRatios{
				Class: class, Tool: tool,
				EdgeCut:   metrics.GeometricMean(a.cut),
				MaxComm:   metrics.GeometricMean(a.maxc),
				TotComm:   metrics.GeometricMean(a.totc),
				HarmDiam:  metrics.GeometricMean(a.diam),
				TimeComm:  metrics.GeometricMean(a.tcomm),
				Instances: len(instances),
			}
			out = append(out, cr)
			fmt.Fprintf(w, "  %-14s %8.3f %11.3f %11.3f %10.3f %10.3f\n",
				tool, cr.EdgeCut, cr.MaxComm, cr.TotComm, cr.HarmDiam, cr.TimeComm)
		}
	}
	return out, nil
}

func ratio(v, base float64) float64 {
	if base <= 0 || v <= 0 {
		return 0 // skipped by the geometric mean
	}
	return v / base
}

// Fig4 reproduces Figure 4: running time of every tool on every registry
// graph, with k = p chosen as the power of two bringing the local size
// closest to sc.PerRank points per block (the paper's 250 000).
func Fig4(w io.Writer, sc Scale) ([]Row, error) {
	var all []Row
	fmt.Fprintf(w, "Fig. 4: running times, target %d points per block (k = p = nearest power of 2)\n", sc.PerRank)
	fmt.Fprintf(w, "%-16s %8s %5s %-12s %12s %14s\n", "graph", "n", "k", "tool", "wall[s]", "modeled[s]")
	for _, in := range Registry() {
		m, err := in.Materialize(in.ScaledN(sc.Table2N))
		if err != nil {
			return nil, err
		}
		k := nearestPow2(m.N() / sc.PerRank)
		for _, tool := range Tools() {
			row, err := RunOne(m, tool, k, k, 0, sc.Repeats)
			if err != nil {
				return nil, err
			}
			all = append(all, row)
			fmt.Fprintf(w, "%-16s %8d %5d %-12s %12.3f %14.3g\n",
				row.Graph, row.N, k, row.Tool, row.Seconds, row.ModelSeconds)
		}
	}
	fmt.Fprintln(w, "least-squares trend fits, modeled time ≈ C·n^slope:")
	for _, tf := range FitTrends(all) {
		fmt.Fprintf(w, "  %-14s slope %.2f over %d graphs\n", tf.Tool, tf.Slope, tf.Points)
	}
	return all, nil
}

func nearestPow2(v int) int {
	if v < 2 {
		return 2
	}
	p := 2
	for p*2 <= v {
		p *= 2
	}
	// p <= v < 2p: pick the closer one.
	if v-p > 2*p-v {
		return 2 * p
	}
	return p
}

// TrendFit is a least-squares power-law fit time ≈ C·n^Slope (the fitted
// trend lines of the paper's Figure 4).
type TrendFit struct {
	Tool   string
	Slope  float64
	LogC   float64
	Points int
}

// FitTrends fits one power law per tool over (N, ModelSeconds).
func FitTrends(rows []Row) []TrendFit {
	byTool := map[string][][2]float64{}
	var order []string
	for _, r := range rows {
		if r.N <= 0 || r.ModelSeconds <= 0 {
			continue
		}
		if _, ok := byTool[r.Tool]; !ok {
			order = append(order, r.Tool)
		}
		byTool[r.Tool] = append(byTool[r.Tool], [2]float64{math.Log(float64(r.N)), math.Log(r.ModelSeconds)})
	}
	var out []TrendFit
	for _, tool := range order {
		pts := byTool[tool]
		if len(pts) < 2 {
			continue
		}
		var sx, sy, sxx, sxy float64
		for _, p := range pts {
			sx += p[0]
			sy += p[1]
			sxx += p[0] * p[0]
			sxy += p[0] * p[1]
		}
		n := float64(len(pts))
		den := n*sxx - sx*sx
		if den == 0 {
			continue
		}
		slope := (n*sxy - sx*sy) / den
		out = append(out, TrendFit{
			Tool:   tool,
			Slope:  slope,
			LogC:   (sy - slope*sx) / n,
			Points: len(pts),
		})
	}
	return out
}
