package seeding

import (
	"math/rand"
	"testing"

	"geographer/internal/geom"
)

// clustered returns points in g well-separated Gaussian clusters.
func clustered(n, g int, seed int64) *geom.PointSet {
	rng := rand.New(rand.NewSource(seed))
	centers := make([]geom.Point, g)
	for i := range centers {
		centers[i] = geom.Point{float64(i%4) * 10, float64(i/4) * 10}
	}
	ps := geom.NewPointSet(2, n)
	for i := 0; i < n; i++ {
		c := centers[i%g]
		ps.Append(geom.Point{c[0] + rng.NormFloat64()*0.5, c[1] + rng.NormFloat64()*0.5}, 1)
	}
	return ps
}

func TestSeedersReturnKCenters(t *testing.T) {
	ps := clustered(500, 5, 1)
	rng := rand.New(rand.NewSource(2))
	seeders := map[string]func() ([]geom.Point, error){
		"uniform":  func() ([]geom.Point, error) { return Uniform(ps, 8, rng) },
		"kmeans++": func() ([]geom.Point, error) { return KMeansPlusPlus(ps, 8, rng) },
		"afkmc2":   func() ([]geom.Point, error) { return AFKMC2(ps, 8, 50, rng) },
		"sfc":      func() ([]geom.Point, error) { return SFC(ps, 8) },
	}
	for name, f := range seeders {
		cs, err := f()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(cs) != 8 {
			t.Errorf("%s: %d centers", name, len(cs))
		}
	}
}

func TestSeedersRejectKGreaterN(t *testing.T) {
	ps := clustered(5, 2, 1)
	rng := rand.New(rand.NewSource(1))
	if _, err := Uniform(ps, 10, rng); err == nil {
		t.Error("uniform accepted k>n")
	}
	if _, err := KMeansPlusPlus(ps, 10, rng); err == nil {
		t.Error("kmeans++ accepted k>n")
	}
	if _, err := AFKMC2(ps, 10, 5, rng); err == nil {
		t.Error("afkmc2 accepted k>n")
	}
	if _, err := SFC(ps, 10); err == nil {
		t.Error("sfc accepted k>n")
	}
}

// On well-separated clusters, k-means++ must hit every cluster almost
// always, giving a far lower cost than the worst case; uniform seeding
// often collapses clusters. Compare averaged costs.
func TestKMeansPlusPlusBeatsUniform(t *testing.T) {
	ps := clustered(2000, 8, 3)
	rng := rand.New(rand.NewSource(4))
	var uniCost, ppCost float64
	const trials = 10
	for trial := 0; trial < trials; trial++ {
		u, err := Uniform(ps, 8, rng)
		if err != nil {
			t.Fatal(err)
		}
		uniCost += Cost(ps, u)
		p, err := KMeansPlusPlus(ps, 8, rng)
		if err != nil {
			t.Fatal(err)
		}
		ppCost += Cost(ps, p)
	}
	if ppCost >= uniCost {
		t.Errorf("kmeans++ cost %.1f not better than uniform %.1f", ppCost/trials, uniCost/trials)
	}
}

// AFK-MC² approximates k-means++: with a reasonable chain length its cost
// must be within a small factor of k-means++ on clustered data.
func TestAFKMC2ApproximatesKMeansPlusPlus(t *testing.T) {
	ps := clustered(2000, 8, 5)
	rng := rand.New(rand.NewSource(6))
	var pp, mc float64
	const trials = 8
	for trial := 0; trial < trials; trial++ {
		a, err := KMeansPlusPlus(ps, 8, rng)
		if err != nil {
			t.Fatal(err)
		}
		pp += Cost(ps, a)
		b, err := AFKMC2(ps, 8, 100, rng)
		if err != nil {
			t.Fatal(err)
		}
		mc += Cost(ps, b)
	}
	if mc > 5*pp {
		t.Errorf("afkmc2 cost %.1f vs kmeans++ %.1f (> 5x)", mc/trials, pp/trials)
	}
}

// SFC seeding must be competitive with k-means++ after a few Lloyd
// iterations — the basis of the paper's design decision (§3.3/§4.1).
func TestSFCSeedingCompetitiveAfterLloyd(t *testing.T) {
	ps := clustered(2000, 8, 7)
	rng := rand.New(rand.NewSource(8))
	s, err := SFC(ps, 8)
	if err != nil {
		t.Fatal(err)
	}
	p, err := KMeansPlusPlus(ps, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	sfcCost := Cost(ps, Lloyd(ps, s, 5))
	ppCost := Cost(ps, Lloyd(ps, p, 5))
	if sfcCost > 3*ppCost {
		t.Errorf("SFC-seeded Lloyd cost %.1f vs kmeans++ %.1f (> 3x)", sfcCost, ppCost)
	}
}

func TestLloydDecreasesCost(t *testing.T) {
	ps := clustered(1000, 4, 9)
	rng := rand.New(rand.NewSource(10))
	seeds, err := Uniform(ps, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	before := Cost(ps, seeds)
	after := Cost(ps, Lloyd(ps, seeds, 10))
	if after > before {
		t.Errorf("Lloyd increased cost: %.2f -> %.2f", before, after)
	}
}

func TestCostWeighted(t *testing.T) {
	ps := geom.NewPointSet(2, 2)
	ps.Append(geom.Point{0, 0}, 1)
	ps.Append(geom.Point{3, 0}, 2) // weight 2, distance 3 to center
	got := Cost(ps, []geom.Point{{0, 0}})
	if got != 18 {
		t.Errorf("cost = %g, want 18 (2·3²)", got)
	}
}

func BenchmarkKMeansPlusPlus(b *testing.B) {
	ps := clustered(20000, 16, 1)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KMeansPlusPlus(ps, 64, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAFKMC2(b *testing.B) {
	ps := clustered(20000, 16, 1)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AFKMC2(ps, 64, 200, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSFCSeeding(b *testing.B) {
	ps := clustered(20000, 16, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SFC(ps, 64); err != nil {
			b.Fatal(err)
		}
	}
}
