// Package seeding implements the k-means seeding strategies discussed in
// the paper's related work (§3.3) so their cost/quality trade-off against
// Geographer's space-filling-curve bootstrap can be measured:
//
//   - uniform random seeding ("erratic and arbitrarily bad results");
//   - k-means++ (Arthur & Vassilvitskii): D²-sampling, high quality but
//     "inherently sequential and the complexity of O(nk) ... too
//     expensive for our scenario";
//   - AFK-MC² (Bachem et al.): Markov-chain Monte-Carlo approximation of
//     k-means++ with an effective complexity of O(n + k·m²);
//   - SFC seeding: centers at equal distances along the Hilbert curve —
//     what Geographer actually uses (Algorithm 2, line 7).
//
// The package also provides the plain k-means cost and a few Lloyd
// iterations for shared-memory evaluation of a seeding.
package seeding

import (
	"fmt"
	"math/rand"
	"sort"

	"geographer/internal/dsort"
	"geographer/internal/geom"
	"geographer/internal/sfc"
)

// Uniform picks k distinct points uniformly at random.
func Uniform(ps *geom.PointSet, k int, rng *rand.Rand) ([]geom.Point, error) {
	n := ps.Len()
	if k > n {
		return nil, fmt.Errorf("seeding: k=%d > n=%d", k, n)
	}
	idx := rng.Perm(n)[:k]
	out := make([]geom.Point, k)
	for i, j := range idx {
		out[i] = ps.At(j)
	}
	return out, nil
}

// KMeansPlusPlus is D²-sampling: each next center is drawn with
// probability proportional to the squared distance to the nearest center
// chosen so far. Cost: k passes over all n points.
func KMeansPlusPlus(ps *geom.PointSet, k int, rng *rand.Rand) ([]geom.Point, error) {
	n := ps.Len()
	if k > n {
		return nil, fmt.Errorf("seeding: k=%d > n=%d", k, n)
	}
	centers := make([]geom.Point, 0, k)
	centers = append(centers, ps.At(rng.Intn(n)))
	d2 := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		d2[i] = geom.Dist2(ps.At(i), centers[0], ps.Dim)
		total += d2[i]
	}
	for len(centers) < k {
		var next int
		if total <= 0 {
			next = rng.Intn(n) // all points coincide with centers
		} else {
			target := rng.Float64() * total
			acc := 0.0
			next = n - 1
			for i := 0; i < n; i++ {
				acc += d2[i]
				if acc >= target {
					next = i
					break
				}
			}
		}
		c := ps.At(next)
		centers = append(centers, c)
		total = 0
		for i := 0; i < n; i++ {
			if d := geom.Dist2(ps.At(i), c, ps.Dim); d < d2[i] {
				d2[i] = d
			}
			total += d2[i]
		}
	}
	return centers, nil
}

// AFKMC2 is the assumption-free k-MC² seeding of Bachem et al.: one pass
// builds a proposal distribution from the first (uniform) center, then
// each further center is selected by a Metropolis-Hastings chain of
// length m over that proposal. Cost: O(n) preprocessing plus O(k·m)
// distance evaluations.
func AFKMC2(ps *geom.PointSet, k, m int, rng *rand.Rand) ([]geom.Point, error) {
	n := ps.Len()
	if k > n {
		return nil, fmt.Errorf("seeding: k=%d > n=%d", k, n)
	}
	if m < 1 {
		m = 1
	}
	centers := make([]geom.Point, 0, k)
	c0 := ps.At(rng.Intn(n))
	centers = append(centers, c0)

	// Proposal q(x) = ½·d²(x,c0)/Σd² + ½·1/n.
	q := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		q[i] = geom.Dist2(ps.At(i), c0, ps.Dim)
		total += q[i]
	}
	cum := make([]float64, n+1)
	for i := 0; i < n; i++ {
		p := 0.5 / float64(n)
		if total > 0 {
			p += 0.5 * q[i] / total
		} else {
			p += 0.5 / float64(n)
		}
		q[i] = p
		cum[i+1] = cum[i] + p
	}
	sample := func() int {
		target := rng.Float64() * cum[n]
		return sort.SearchFloat64s(cum[1:], target)
	}
	minD2 := func(x geom.Point) float64 {
		best := geom.Dist2(x, centers[0], ps.Dim)
		for _, c := range centers[1:] {
			if d := geom.Dist2(x, c, ps.Dim); d < best {
				best = d
			}
		}
		return best
	}

	for len(centers) < k {
		cur := sample()
		curD2 := minD2(ps.At(cur))
		for step := 1; step < m; step++ {
			cand := sample()
			candD2 := minD2(ps.At(cand))
			num := candD2 * q[cur]
			den := curD2 * q[cand]
			if den <= 0 || num/den >= rng.Float64() {
				cur, curD2 = cand, candD2
			}
		}
		centers = append(centers, ps.At(cur))
	}
	return centers, nil
}

// SFC places k centers at equal distances along the Hilbert curve over
// the point set (Geographer's bootstrap, Algorithm 2 line 7). Keys come
// from the batch kernel and the curve order from the stable radix
// permutation sort — identical (key, index) order to a comparison sort,
// without materializing per-point records.
func SFC(ps *geom.PointSet, k int) ([]geom.Point, error) {
	n := ps.Len()
	if k > n {
		return nil, fmt.Errorf("seeding: k=%d > n=%d", k, n)
	}
	curve := sfc.NewCurve(ps.Bounds(), ps.Dim)
	keys := curve.KeyPoints(ps)
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	// Stable on an identity permutation ⇒ ties break by point index,
	// matching the previous sort.Slice comparator exactly.
	dsort.SortPermByKeys(keys, order)
	out := make([]geom.Point, k)
	for i := 0; i < k; i++ {
		out[i] = ps.At(int(order[i*n/k+n/(2*k)]))
	}
	return out, nil
}

// Cost is the k-means objective: Σ_p w(p)·min_c dist²(p, c).
func Cost(ps *geom.PointSet, centers []geom.Point) float64 {
	total := 0.0
	for i := 0; i < ps.Len(); i++ {
		x := ps.At(i)
		best := geom.Dist2(x, centers[0], ps.Dim)
		for _, c := range centers[1:] {
			if d := geom.Dist2(x, c, ps.Dim); d < best {
				best = d
			}
		}
		total += ps.W(i) * best
	}
	return total
}

// Lloyd runs iters plain (unbalanced) Lloyd iterations from the given
// centers and returns the refined centers — used to compare how quickly
// different seedings converge.
func Lloyd(ps *geom.PointSet, centers []geom.Point, iters int) []geom.Point {
	k := len(centers)
	cur := append([]geom.Point(nil), centers...)
	n := ps.Len()
	for it := 0; it < iters; it++ {
		var sums []geom.Point = make([]geom.Point, k)
		ws := make([]float64, k)
		for i := 0; i < n; i++ {
			x := ps.At(i)
			best, bestC := geom.Dist2(x, cur[0], ps.Dim), 0
			for c := 1; c < k; c++ {
				if d := geom.Dist2(x, cur[c], ps.Dim); d < best {
					best, bestC = d, c
				}
			}
			w := ps.W(i)
			sums[bestC] = sums[bestC].Add(x.Scale(w))
			ws[bestC] += w
		}
		for c := 0; c < k; c++ {
			if ws[c] > 0 {
				cur[c] = sums[c].Scale(1 / ws[c])
			}
		}
	}
	return cur
}
