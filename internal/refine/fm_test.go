package refine

import (
	"math/rand"
	"testing"

	"geographer/internal/geom"
	"geographer/internal/graph"
	"geographer/internal/mesh"
	"geographer/internal/metrics"
)

func gridGraph(r, c int) (*graph.Graph, *geom.PointSet) {
	var edges [][2]int32
	ps := geom.NewPointSet(2, r*c)
	id := func(i, j int) int32 { return int32(i*c + j) }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			ps.Append(geom.Point{float64(j), float64(i)}, 1)
			if j+1 < c {
				edges = append(edges, [2]int32{id(i, j), id(i, j+1)})
			}
			if i+1 < r {
				edges = append(edges, [2]int32{id(i, j), id(i+1, j)})
			}
		}
	}
	return graph.FromEdges(r*c, edges), ps
}

func TestRefineImprovesNoisyPartition(t *testing.T) {
	g, ps := gridGraph(20, 20)
	// Vertical halves with 10% random noise.
	part := make([]int32, g.N)
	rng := rand.New(rand.NewSource(1))
	for v := 0; v < g.N; v++ {
		part[v] = int32((v % 20) / 10)
		if rng.Float64() < 0.1 {
			part[v] = 1 - part[v]
		}
	}
	before := metrics.EdgeCut(g, part)
	res, err := Refine(g, ps, part, 2, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	after := metrics.EdgeCut(g, part)
	if res.CutBefore != before || res.CutAfter != after {
		t.Errorf("reported cuts %d/%d vs measured %d/%d", res.CutBefore, res.CutAfter, before, after)
	}
	if after >= before {
		t.Errorf("no improvement: %d -> %d", before, after)
	}
	// Ideal vertical cut is 20; noisy start is far worse.
	if after > 2*20 {
		t.Errorf("refinement too weak: cut %d, ideal 20", after)
	}
	imb := metrics.Imbalance(metrics.BlockWeights(ps, part, 2))
	if imb > 0.031 {
		t.Errorf("refinement broke balance: %.4f", imb)
	}
}

func TestRefineNeverWorsens(t *testing.T) {
	m, err := mesh.GenDelaunayUniform2D(2000, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 5; trial++ {
		k := 2 + rng.Intn(6)
		part := make([]int32, m.N())
		for v := range part {
			part[v] = int32(v * k / m.N()) // index-contiguous: poor geometric quality
		}
		before := metrics.EdgeCut(m.G, part)
		res, err := Refine(m.G, m.Points, part, k, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if res.CutAfter > before {
			t.Errorf("trial %d: cut worsened %d -> %d", trial, before, res.CutAfter)
		}
		if err := validPartition(part, k); err != nil {
			t.Fatal(err)
		}
	}
}

func validPartition(part []int32, k int) error {
	for _, b := range part {
		if b < 0 || int(b) >= k {
			return errInvalid
		}
	}
	return nil
}

var errInvalid = &invalidErr{}

type invalidErr struct{}

func (*invalidErr) Error() string { return "invalid block id" }

func TestRefineRespectsBalanceOnWeighted(t *testing.T) {
	g, ps := gridGraph(10, 10)
	ps.Weight = make([]float64, 100)
	rng := rand.New(rand.NewSource(4))
	for i := range ps.Weight {
		ps.Weight[i] = 0.5 + 2*rng.Float64()
	}
	part := make([]int32, 100)
	for v := range part {
		part[v] = int32((v % 10) / 5)
	}
	// Rebalance start to ~even weights is not guaranteed; measure after.
	opts := DefaultOptions()
	opts.Epsilon = 0.10
	if _, err := Refine(g, ps, part, 2, opts); err != nil {
		t.Fatal(err)
	}
	w := metrics.BlockWeights(ps, part, 2)
	total := w[0] + w[1]
	for b, bw := range w {
		if bw > 1.101*total/2 {
			t.Errorf("block %d weight %.1f exceeds (1+ε)·avg %.1f", b, bw, 1.10*total/2)
		}
	}
}

func TestRefineErrors(t *testing.T) {
	g, ps := gridGraph(3, 3)
	if _, err := Refine(g, ps, []int32{0}, 2, DefaultOptions()); err == nil {
		t.Error("length mismatch accepted")
	}
	bad := make([]int32, g.N)
	bad[0] = 9
	if _, err := Refine(g, ps, bad, 2, DefaultOptions()); err == nil {
		t.Error("invalid block accepted")
	}
}

func TestRefineAlreadyOptimal(t *testing.T) {
	g, ps := gridGraph(8, 8)
	part := make([]int32, g.N)
	for v := 0; v < g.N; v++ {
		part[v] = int32((v % 8) / 4) // clean vertical halves: cut 8
	}
	res, err := Refine(g, ps, part, 2, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.CutAfter != res.CutBefore {
		t.Errorf("optimal partition changed: %d -> %d", res.CutBefore, res.CutAfter)
	}
}

func BenchmarkRefine(b *testing.B) {
	m, err := mesh.GenDelaunayUniform2D(20000, 5)
	if err != nil {
		b.Fatal(err)
	}
	base := make([]int32, m.N())
	for v := range base {
		base[v] = int32(v % 16)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		part := append([]int32(nil), base...)
		if _, err := Refine(m.G, m.Points, part, 16, DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}
