// Package refine implements a graph-based local refinement pass in the
// spirit of Fiduccia–Mattheyses. The paper notes (§2) that "a graph-based
// postprocessing, for example based on the Fiduccia-Mattheyses local
// refinement heuristic is easily possible, but outside the scope of this
// paper" — this package is that extension: it polishes a geometric
// partition by moving boundary vertices with positive edge-cut gain while
// keeping the ε balance constraint.
package refine

import (
	"container/heap"
	"fmt"

	"geographer/internal/geom"
	"geographer/internal/graph"
)

// Options controls the refinement.
type Options struct {
	Epsilon   float64 // balance slack kept during refinement (default 0.03)
	MaxPasses int     // passes over the boundary (default 3)
}

// DefaultOptions matches the paper's balance setting.
func DefaultOptions() Options { return Options{Epsilon: 0.03, MaxPasses: 3} }

// Result reports what the refinement achieved.
type Result struct {
	Passes    int
	Moves     int
	CutBefore int64
	CutAfter  int64
}

// move candidates are ordered by gain (max-heap).
type cand struct {
	v    int32
	to   int32
	gain int
}

type candHeap []cand

func (h candHeap) Len() int           { return len(h) }
func (h candHeap) Less(i, j int) bool { return h[i].gain > h[j].gain }
func (h candHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *candHeap) Push(x any)        { *h = append(*h, x.(cand)) }
func (h *candHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// Refine improves the edge cut of part in place. Vertices are moved one
// at a time, highest gain first, only when the move keeps every block
// within (1+ε) of its average weight. Gains are recomputed lazily (stale
// heap entries are validated on pop), which keeps the implementation
// simple and the passes strictly cut-monotone.
func Refine(g *graph.Graph, ps *geom.PointSet, part []int32, k int, opts Options) (Result, error) {
	if len(part) != g.N {
		return Result{}, fmt.Errorf("refine: partition length %d != n %d", len(part), g.N)
	}
	if opts.Epsilon <= 0 {
		opts.Epsilon = 0.03
	}
	if opts.MaxPasses <= 0 {
		opts.MaxPasses = 3
	}

	weights := make([]float64, k)
	total := 0.0
	for v := 0; v < g.N; v++ {
		b := part[v]
		if b < 0 || int(b) >= k {
			return Result{}, fmt.Errorf("refine: vertex %d in invalid block %d", v, b)
		}
		weights[b] += ps.W(v)
		total += ps.W(v)
	}
	maxLoad := (1 + opts.Epsilon) * total / float64(k)

	res := Result{CutBefore: cut(g, part)}

	// neighborBlocks(v) returns the count of v's edges into each adjacent
	// block, using a small epoch-stamped scratch.
	stamp := make([]int32, k)
	count := make([]int, k)
	for i := range stamp {
		stamp[i] = -1
	}
	epoch := int32(0)
	bestMove := func(v int32) (cand, bool) {
		epoch++
		own := part[v]
		ownEdges := 0
		var blocks []int32
		for _, u := range g.Neighbors(v) {
			b := part[u]
			if b == own {
				ownEdges++
				continue
			}
			if stamp[b] != epoch {
				stamp[b] = epoch
				count[b] = 0
				blocks = append(blocks, b)
			}
			count[b]++
		}
		best := cand{v: v, gain: 0}
		found := false
		for _, b := range blocks {
			gain := count[b] - ownEdges
			if gain > best.gain || (!found && gain > 0) {
				if weights[b]+ps.W(int(v)) <= maxLoad {
					best = cand{v: v, to: b, gain: gain}
					found = true
				}
			}
		}
		return best, found && best.gain > 0
	}

	for pass := 0; pass < opts.MaxPasses; pass++ {
		res.Passes++
		h := &candHeap{}
		for v := 0; v < g.N; v++ {
			if c, ok := bestMove(int32(v)); ok {
				heap.Push(h, c)
			}
		}
		moves := 0
		for h.Len() > 0 {
			c := heap.Pop(h).(cand)
			// Validate: the stored gain may be stale after nearby moves.
			fresh, ok := bestMove(c.v)
			if !ok {
				continue
			}
			if fresh.gain < c.gain {
				heap.Push(h, fresh) // re-queue with the corrected gain
				continue
			}
			// Apply the move.
			from := part[c.v]
			weights[from] -= ps.W(int(c.v))
			weights[fresh.to] += ps.W(int(c.v))
			part[c.v] = fresh.to
			moves++
			// Neighbors' gains changed; re-offer them.
			for _, u := range g.Neighbors(c.v) {
				if cu, ok := bestMove(u); ok {
					heap.Push(h, cu)
				}
			}
		}
		res.Moves += moves
		if moves == 0 {
			break
		}
	}
	res.CutAfter = cut(g, part)
	return res, nil
}

func cut(g *graph.Graph, part []int32) int64 {
	var c int64
	for v := 0; v < g.N; v++ {
		pv := part[v]
		for _, u := range g.Neighbors(int32(v)) {
			if int32(v) < u && part[u] != pv {
				c++
			}
		}
	}
	return c
}
