// Package store is the pluggable checkpoint store behind the serving
// layer's tenant spills: parked tenants live here as opaque checkpoint
// bytes plus a small metadata record, so tenant count is no longer
// bound by process RAM and — with the disk backend — tenant state
// survives the daemon process itself (DESIGN.md, "Durability
// invariants").
//
// Two backends implement Store. Memory keeps entries in a map (the
// pre-spill behavior; tests and the default registry use it). Disk
// writes one file per entry under a spill directory with an atomic
// temp-file + fsync + rename protocol and a CRC32-C checksum trailer
// (core.SealChecksum) over the whole frame, verified on every read;
// corrupt files are quarantined — renamed aside, never silently
// deleted, never able to crash a reader — and reads of them return a
// typed core.ErrCheckpointCorrupt.
package store

import (
	"errors"
	"sort"
	"sync"
)

// ErrNotFound marks a Get/Quarantine of a key with no stored entry.
// Matched with errors.Is.
var ErrNotFound = errors.New("store: no such checkpoint")

// Entry is one stored checkpoint as reported by List.
type Entry struct {
	// Key is the caller's name for the entry (the tenant name in the
	// serving layer).
	Key string
	// Meta is the caller-defined metadata record stored alongside the
	// payload (the serving layer keeps the tenant's shape and options
	// here so a restart can re-register the tenant without decoding the
	// checkpoint itself).
	Meta []byte
	// Size is the payload size in bytes.
	Size int64
}

// Store is a keyed checkpoint store. Implementations are safe for
// concurrent use. Get returns exactly the bytes Put stored — verified,
// for backends with an integrity layer — or ErrNotFound /
// core.ErrCheckpointCorrupt typed errors; it never panics on corrupt
// input.
type Store interface {
	// Put stores (data, meta) under key, replacing any previous entry
	// atomically: a reader never observes a half-written entry, even
	// across a crash mid-Put.
	Put(key string, data, meta []byte) error
	// Get returns the entry's payload and metadata. A missing key is
	// ErrNotFound; a corrupt entry is quarantined and returned as a
	// typed core.ErrCheckpointCorrupt.
	Get(key string) (data, meta []byte, err error)
	// Delete removes the entry. Deleting a missing key is a no-op.
	Delete(key string) error
	// Quarantine moves the entry aside so it is no longer listed or
	// readable, preserving the bytes for postmortem. Quarantining a
	// missing key returns ErrNotFound.
	Quarantine(key string) error
	// List enumerates the readable entries in key order. Backends with
	// an integrity layer verify each entry and quarantine corrupt ones
	// rather than returning them.
	List() ([]Entry, error)
}

// Memory is the in-process Store: entries live in a map and die with
// the process. This is the serving layer's pre-spill behavior, kept as
// the default backend and the fast path for tests.
type Memory struct {
	mu          sync.Mutex
	entries     map[string]memEntry
	quarantined map[string]memEntry
}

type memEntry struct {
	data, meta []byte
}

// NewMemory returns an empty in-memory store.
func NewMemory() *Memory {
	return &Memory{entries: make(map[string]memEntry), quarantined: make(map[string]memEntry)}
}

// Put stores copies of data and meta under key.
func (m *Memory) Put(key string, data, meta []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.entries[key] = memEntry{
		data: append([]byte(nil), data...),
		meta: append([]byte(nil), meta...),
	}
	return nil
}

// Get returns copies of the stored payload and metadata.
func (m *Memory) Get(key string) ([]byte, []byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[key]
	if !ok {
		return nil, nil, ErrNotFound
	}
	return append([]byte(nil), e.data...), append([]byte(nil), e.meta...), nil
}

// Delete removes the entry (missing keys are a no-op).
func (m *Memory) Delete(key string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.entries, key)
	return nil
}

// Quarantine moves the entry to the quarantine map.
func (m *Memory) Quarantine(key string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[key]
	if !ok {
		return ErrNotFound
	}
	delete(m.entries, key)
	m.quarantined[key] = e
	return nil
}

// Quarantined returns the quarantined keys, sorted.
func (m *Memory) Quarantined() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	keys := make([]string, 0, len(m.quarantined))
	for k := range m.quarantined {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// List enumerates entries in key order.
func (m *Memory) List() ([]Entry, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Entry, 0, len(m.entries))
	for k, e := range m.entries {
		out = append(out, Entry{Key: k, Meta: append([]byte(nil), e.meta...), Size: int64(len(e.data))})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}
