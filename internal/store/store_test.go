package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"geographer/internal/core"
)

// backends returns each Store implementation under a fresh state.
func backends(t *testing.T) map[string]Store {
	t.Helper()
	disk, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatalf("NewDisk: %v", err)
	}
	return map[string]Store{"memory": NewMemory(), "disk": disk}
}

func TestStoreRoundTrip(t *testing.T) {
	for name, s := range backends(t) {
		t.Run(name, func(t *testing.T) {
			data := []byte("checkpoint payload \x00\xff binary")
			meta := []byte(`{"k":8}`)
			if err := s.Put("tenant-a", data, meta); err != nil {
				t.Fatalf("Put: %v", err)
			}
			gotData, gotMeta, err := s.Get("tenant-a")
			if err != nil {
				t.Fatalf("Get: %v", err)
			}
			if !bytes.Equal(gotData, data) || !bytes.Equal(gotMeta, meta) {
				t.Fatalf("round trip mismatch: data %q meta %q", gotData, gotMeta)
			}

			// Replacement is total: the second Put wins outright.
			if err := s.Put("tenant-a", []byte("v2"), []byte("m2")); err != nil {
				t.Fatalf("Put v2: %v", err)
			}
			gotData, gotMeta, err = s.Get("tenant-a")
			if err != nil {
				t.Fatalf("Get v2: %v", err)
			}
			if string(gotData) != "v2" || string(gotMeta) != "m2" {
				t.Fatalf("replace mismatch: data %q meta %q", gotData, gotMeta)
			}

			// Empty payloads and metadata are legal.
			if err := s.Put("empty", nil, nil); err != nil {
				t.Fatalf("Put empty: %v", err)
			}
			gotData, gotMeta, err = s.Get("empty")
			if err != nil {
				t.Fatalf("Get empty: %v", err)
			}
			if len(gotData) != 0 || len(gotMeta) != 0 {
				t.Fatalf("empty entry came back non-empty: %q %q", gotData, gotMeta)
			}
		})
	}
}

func TestStoreMissing(t *testing.T) {
	for name, s := range backends(t) {
		t.Run(name, func(t *testing.T) {
			if _, _, err := s.Get("ghost"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Get missing: err = %v, want ErrNotFound", err)
			}
			if err := s.Delete("ghost"); err != nil {
				t.Fatalf("Delete missing should be a no-op: %v", err)
			}
			if err := s.Quarantine("ghost"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Quarantine missing: err = %v, want ErrNotFound", err)
			}
		})
	}
}

func TestStoreDelete(t *testing.T) {
	for name, s := range backends(t) {
		t.Run(name, func(t *testing.T) {
			if err := s.Put("x", []byte("d"), []byte("m")); err != nil {
				t.Fatal(err)
			}
			if err := s.Delete("x"); err != nil {
				t.Fatal(err)
			}
			if _, _, err := s.Get("x"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Get after Delete: err = %v, want ErrNotFound", err)
			}
		})
	}
}

func TestStoreList(t *testing.T) {
	for name, s := range backends(t) {
		t.Run(name, func(t *testing.T) {
			keys := []string{"zeta", "alpha", "mid"}
			for i, k := range keys {
				if err := s.Put(k, bytes.Repeat([]byte{byte(i)}, i+1), []byte(k+"-meta")); err != nil {
					t.Fatal(err)
				}
			}
			entries, err := s.List()
			if err != nil {
				t.Fatal(err)
			}
			want := []string{"alpha", "mid", "zeta"}
			if len(entries) != len(want) {
				t.Fatalf("List: %d entries, want %d", len(entries), len(want))
			}
			for i, e := range entries {
				if e.Key != want[i] {
					t.Fatalf("List order: got %q at %d, want %q", e.Key, i, want[i])
				}
				if string(e.Meta) != e.Key+"-meta" {
					t.Fatalf("List meta for %q: %q", e.Key, e.Meta)
				}
			}
		})
	}
}

func TestStoreQuarantine(t *testing.T) {
	for name, s := range backends(t) {
		t.Run(name, func(t *testing.T) {
			if err := s.Put("bad", []byte("d"), nil); err != nil {
				t.Fatal(err)
			}
			if err := s.Quarantine("bad"); err != nil {
				t.Fatal(err)
			}
			if _, _, err := s.Get("bad"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Get after Quarantine: err = %v, want ErrNotFound", err)
			}
			entries, err := s.List()
			if err != nil {
				t.Fatal(err)
			}
			if len(entries) != 0 {
				t.Fatalf("quarantined entry still listed: %v", entries)
			}
		})
	}
}

// TestDiskCorruption injects every corruption mode the durability fence
// exercises — torn write (truncation), bit flip, trailer strip — and
// asserts each one is a typed ErrCheckpointCorrupt plus a quarantine,
// never a crash or a garbage payload.
func TestDiskCorruption(t *testing.T) {
	payload := bytes.Repeat([]byte("geo-checkpoint-"), 64)
	cases := []struct {
		name    string
		corrupt func(t *testing.T, path string)
	}{
		{"torn-write", func(t *testing.T, path string) {
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, fi.Size()/2); err != nil {
				t.Fatal(err)
			}
		}},
		{"bit-flip", func(t *testing.T, path string) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			raw[len(raw)/3] ^= 0x40
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"trailer-stripped", func(t *testing.T, path string) {
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, fi.Size()-core.ChecksumTrailerSize); err != nil {
				t.Fatal(err)
			}
		}},
		{"emptied", func(t *testing.T, path string) {
			if err := os.Truncate(path, 0); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, err := NewDisk(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			if err := d.Put("victim", payload, []byte("meta")); err != nil {
				t.Fatal(err)
			}
			tc.corrupt(t, d.Path("victim"))
			_, _, err = d.Get("victim")
			if !errors.Is(err, core.ErrCheckpointCorrupt) {
				t.Fatalf("Get corrupt: err = %v, want ErrCheckpointCorrupt", err)
			}
			// Corrupt file is quarantined: gone from the live namespace,
			// preserved under the quarantine name.
			if _, _, err := d.Get("victim"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Get after quarantine: err = %v, want ErrNotFound", err)
			}
			q, err := d.Quarantined()
			if err != nil {
				t.Fatal(err)
			}
			if len(q) != 1 || q[0] != "victim" {
				t.Fatalf("Quarantined = %v, want [victim]", q)
			}
			if _, err := os.Stat(d.Path("victim") + ".quarantine"); err != nil {
				t.Fatalf("quarantine file missing: %v", err)
			}
		})
	}
}

// TestDiskListQuarantinesCorrupt pins the crash-recovery scan contract:
// List verifies every entry, returns only the intact ones, and moves
// corrupt ones aside instead of failing the whole scan.
func TestDiskListQuarantinesCorrupt(t *testing.T) {
	d, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"good-a", "bad", "good-b"} {
		if err := d.Put(k, []byte("payload-"+k), []byte("meta-"+k)); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.Truncate(d.Path("bad"), 5); err != nil {
		t.Fatal(err)
	}
	// Stray temp file from an interrupted Put must be ignored, not listed.
	if err := os.WriteFile(filepath.Join(d.Dir(), "stray.tmp-123"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	entries, err := d.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Key != "good-a" || entries[1].Key != "good-b" {
		t.Fatalf("List = %+v, want good-a,good-b", entries)
	}
	q, err := d.Quarantined()
	if err != nil {
		t.Fatal(err)
	}
	if len(q) != 1 || q[0] != "bad" {
		t.Fatalf("Quarantined = %v, want [bad]", q)
	}
}

// TestDiskKeyEscaping pins the injective filename mapping: hostile key
// bytes stay inside the spill directory and survive a List round trip.
func TestDiskKeyEscaping(t *testing.T) {
	d, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{
		"plain-key_09",
		"../escape/attempt",
		".hidden",
		"sp ace/and%percent",
		"unicode-é世",
	}
	for _, k := range keys {
		p := d.Path(k)
		if filepath.Dir(p) != d.Dir() {
			t.Fatalf("key %q escapes the spill dir: %q", k, p)
		}
		if base := filepath.Base(p); strings.ContainsAny(base[:len(base)-len(".ckpt")], "./ ") {
			t.Fatalf("key %q produced unsafe stem %q", k, base)
		}
		if err := d.Put(k, []byte("data:"+k), []byte("meta:"+k)); err != nil {
			t.Fatalf("Put %q: %v", k, err)
		}
	}
	entries, err := d.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(keys) {
		t.Fatalf("List: %d entries, want %d", len(entries), len(keys))
	}
	seen := map[string]bool{}
	for _, e := range entries {
		seen[e.Key] = true
		data, meta, err := d.Get(e.Key)
		if err != nil {
			t.Fatalf("Get %q: %v", e.Key, err)
		}
		if string(data) != "data:"+e.Key || string(meta) != "meta:"+e.Key {
			t.Fatalf("key %q: payload mismatch %q %q", e.Key, data, meta)
		}
	}
	for _, k := range keys {
		if !seen[k] {
			t.Fatalf("key %q lost in List round trip", k)
		}
	}
}

// TestDiskSurvivesReopen pins durability across a process boundary:
// a second Disk over the same directory sees everything the first wrote.
func TestDiskSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	d1, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := d1.Put("persisted", []byte("bytes"), []byte("meta")); err != nil {
		t.Fatal(err)
	}
	d2, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	data, meta, err := d2.Get("persisted")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "bytes" || string(meta) != "meta" {
		t.Fatalf("reopen mismatch: %q %q", data, meta)
	}
}

func TestKeyCodecInverse(t *testing.T) {
	for _, k := range []string{"", "abc", "a.b/c", "%", "%%", "%2F", "\x00\xff"} {
		enc := encodeKey(k)
		dec, err := decodeKey(enc)
		if err != nil {
			t.Fatalf("decodeKey(encodeKey(%q)) = err %v", k, err)
		}
		if dec != k {
			t.Fatalf("codec not inverse: %q -> %q -> %q", k, enc, dec)
		}
	}
	for _, bad := range []string{"%", "%2", "%ZZ"} {
		if _, err := decodeKey(bad); err == nil {
			t.Fatalf("decodeKey(%q) accepted malformed escape", bad)
		}
	}
}
