package store

// Disk backend: one sealed file per entry under a spill directory.
//
// File frame (all little-endian, then core.SealChecksum over the
// whole of it):
//
//	u32 magic "GEOD" | u32 version | u64 metaLen | meta | u64 dataLen | data | [checksum trailer]
//
// Durability protocol. Put writes the sealed frame to a temp file in
// the same directory, fsyncs it, renames it over the final name, and
// fsyncs the directory — so a crash at any instant leaves either the
// old entry or the new one, never a torn file under the live name (a
// torn temp file is ignored by List and overwritten by the next Put).
// Every read re-verifies the CRC32-C trailer; a file that fails — torn
// by an external writer, bit-flipped, truncated — is quarantined
// (renamed to <name>.quarantine, preserved for postmortem) and the
// read returns a typed core.ErrCheckpointCorrupt. Corruption is an
// error surface, never a panic.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"geographer/internal/core"
)

// spillMagic guards a spill frame ("GEOD").
const spillMagic = 0x47454F44

// spillVersion is the current spill frame format.
const spillVersion = 1

// spillExt and quarantineExt name the live and quarantined spill files.
const (
	spillExt      = ".ckpt"
	quarantineExt = ".ckpt.quarantine"
)

// Disk is the durable Store: one sealed, checksummed file per entry.
type Disk struct {
	dir string
}

// NewDisk opens (creating if needed) a disk store rooted at dir.
func NewDisk(dir string) (*Disk, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty spill directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Disk{dir: dir}, nil
}

// Dir returns the spill directory.
func (d *Disk) Dir() string { return d.dir }

// Path returns the file a key is (or would be) stored at. Exported so
// fault-injection harnesses can corrupt spills the way real storage
// would.
func (d *Disk) Path(key string) string {
	return filepath.Join(d.dir, encodeKey(key)+spillExt)
}

// quarantinePath is where Quarantine moves a corrupt entry.
func (d *Disk) quarantinePath(key string) string {
	return filepath.Join(d.dir, encodeKey(key)+quarantineExt)
}

// encodeKey maps an arbitrary key to a safe file stem: bytes outside
// [A-Za-z0-9_-] are percent-escaped (including '%' itself and '.', so
// no key can produce a dotfile, a path separator, or an ambiguous
// stem). The mapping is injective; decodeKey inverts it.
func encodeKey(key string) string {
	var b strings.Builder
	for i := 0; i < len(key); i++ {
		c := key[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '-' {
			b.WriteByte(c)
		} else {
			fmt.Fprintf(&b, "%%%02X", c)
		}
	}
	return b.String()
}

// decodeKey inverts encodeKey; malformed escapes report an error.
func decodeKey(stem string) (string, error) {
	var b strings.Builder
	for i := 0; i < len(stem); i++ {
		c := stem[i]
		if c != '%' {
			b.WriteByte(c)
			continue
		}
		if i+2 >= len(stem) {
			return "", fmt.Errorf("store: truncated escape in %q", stem)
		}
		var v byte
		if _, err := fmt.Sscanf(stem[i+1:i+3], "%02X", &v); err != nil {
			return "", fmt.Errorf("store: bad escape in %q", stem)
		}
		b.WriteByte(v)
		i += 2
	}
	return b.String(), nil
}

// encodeFrame builds the unsealed spill frame.
func encodeFrame(data, meta []byte) []byte {
	buf := make([]byte, 0, 24+len(meta)+len(data)+core.ChecksumTrailerSize)
	buf = binary.LittleEndian.AppendUint32(buf, spillMagic)
	buf = binary.LittleEndian.AppendUint32(buf, spillVersion)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(meta)))
	buf = append(buf, meta...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(data)))
	buf = append(buf, data...)
	return buf
}

// decodeFrame parses a verified (trailer-stripped) spill frame.
func decodeFrame(payload []byte) (data, meta []byte, err error) {
	corrupt := func(format string, args ...any) ([]byte, []byte, error) {
		return nil, nil, fmt.Errorf("%w: %s", core.ErrCheckpointCorrupt, fmt.Sprintf(format, args...))
	}
	if len(payload) < 16 {
		return corrupt("spill frame of %d bytes", len(payload))
	}
	if m := binary.LittleEndian.Uint32(payload); m != spillMagic {
		return corrupt("bad spill magic %#x", m)
	}
	if v := binary.LittleEndian.Uint32(payload[4:]); v != spillVersion {
		return nil, nil, fmt.Errorf("%w: spill frame v%d, want v%d", core.ErrCheckpointVersion, v, spillVersion)
	}
	rest := payload[8:]
	metaLen := binary.LittleEndian.Uint64(rest)
	rest = rest[8:]
	if metaLen > uint64(len(rest)) {
		return corrupt("meta length %d exceeds remaining %d bytes", metaLen, len(rest))
	}
	meta = rest[:metaLen]
	rest = rest[metaLen:]
	if len(rest) < 8 {
		return corrupt("truncated before data length")
	}
	dataLen := binary.LittleEndian.Uint64(rest)
	rest = rest[8:]
	if dataLen != uint64(len(rest)) {
		return corrupt("data length %d for %d remaining bytes", dataLen, len(rest))
	}
	return rest, meta, nil
}

// Put atomically replaces the entry: sealed frame → temp file → fsync →
// rename → directory fsync.
func (d *Disk) Put(key string, data, meta []byte) error {
	frame := core.SealChecksum(encodeFrame(data, meta))
	final := d.Path(key)
	tmp, err := os.CreateTemp(d.dir, encodeKey(key)+".tmp-*")
	if err != nil {
		return fmt.Errorf("store: put %s: %w", key, err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(frame); err != nil {
		tmp.Close()
		return fmt.Errorf("store: put %s: %w", key, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: put %s: fsync: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: put %s: %w", key, err)
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		return fmt.Errorf("store: put %s: %w", key, err)
	}
	return d.syncDir()
}

// syncDir fsyncs the spill directory so a completed rename survives a
// host crash. Best-effort on filesystems that reject directory fsync.
func (d *Disk) syncDir() error {
	df, err := os.Open(d.dir)
	if err != nil {
		return nil
	}
	defer df.Close()
	_ = df.Sync()
	return nil
}

// Get reads and verifies the entry. Corrupt files are quarantined and
// reported as typed core.ErrCheckpointCorrupt.
func (d *Disk) Get(key string) ([]byte, []byte, error) {
	raw, err := os.ReadFile(d.Path(key))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	if err != nil {
		return nil, nil, fmt.Errorf("store: get %s: %w", key, err)
	}
	data, meta, derr := d.verify(raw)
	if derr != nil {
		if qerr := d.Quarantine(key); qerr == nil {
			return nil, nil, fmt.Errorf("store: get %s (quarantined): %w", key, derr)
		}
		return nil, nil, fmt.Errorf("store: get %s: %w", key, derr)
	}
	return data, meta, nil
}

// verify checks the trailer and decodes the frame.
func (d *Disk) verify(raw []byte) (data, meta []byte, err error) {
	payload, err := core.VerifyChecksum(raw)
	if err != nil {
		return nil, nil, err
	}
	return decodeFrame(payload)
}

// Delete removes the entry (missing files are a no-op).
func (d *Disk) Delete(key string) error {
	err := os.Remove(d.Path(key))
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("store: delete %s: %w", key, err)
	}
	return d.syncDir()
}

// Quarantine renames the entry's file aside (<stem>.ckpt.quarantine),
// replacing any earlier quarantined copy of the same key.
func (d *Disk) Quarantine(key string) error {
	err := os.Rename(d.Path(key), d.quarantinePath(key))
	if errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	if err != nil {
		return fmt.Errorf("store: quarantine %s: %w", key, err)
	}
	return d.syncDir()
}

// Quarantined returns the keys of quarantined spills, sorted — the
// postmortem inventory.
func (d *Disk) Quarantined() ([]string, error) {
	names, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var keys []string
	for _, de := range names {
		stem, ok := strings.CutSuffix(de.Name(), quarantineExt)
		if !ok || de.IsDir() {
			continue
		}
		key, err := decodeKey(stem)
		if err != nil {
			continue
		}
		keys = append(keys, key)
	}
	sort.Strings(keys)
	return keys, nil
}

// List reads, verifies, and enumerates every live entry in key order —
// the crash-recovery scan. Corrupt entries are quarantined and skipped
// (the registry re-registers only tenants it can actually restore);
// stray temp files from an interrupted Put are ignored.
func (d *Disk) List() ([]Entry, error) {
	names, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var out []Entry
	for _, de := range names {
		name := de.Name()
		if de.IsDir() || strings.HasSuffix(name, quarantineExt) {
			continue
		}
		stem, ok := strings.CutSuffix(name, spillExt)
		if !ok {
			continue // temp file or foreign junk
		}
		key, err := decodeKey(stem)
		if err != nil {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(d.dir, name))
		if err != nil {
			continue
		}
		data, meta, derr := d.verify(raw)
		if derr != nil {
			_ = d.Quarantine(key)
			continue
		}
		out = append(out, Entry{Key: key, Meta: append([]byte(nil), meta...), Size: int64(len(data))})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}
