package graph

import (
	"math/rand"
	"testing"
)

// path returns a path graph 0-1-2-...-n-1.
func path(n int) *Graph {
	edges := make([][2]int32, 0, n-1)
	for i := 0; i < n-1; i++ {
		edges = append(edges, [2]int32{int32(i), int32(i + 1)})
	}
	return FromEdges(n, edges)
}

// grid returns an r×c grid graph.
func grid(r, c int) *Graph {
	var edges [][2]int32
	id := func(i, j int) int32 { return int32(i*c + j) }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if j+1 < c {
				edges = append(edges, [2]int32{id(i, j), id(i, j+1)})
			}
			if i+1 < r {
				edges = append(edges, [2]int32{id(i, j), id(i+1, j)})
			}
		}
	}
	return FromEdges(r*c, edges)
}

func TestFromEdgesBasics(t *testing.T) {
	g := FromEdges(4, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}})
	if g.N != 4 || g.M() != 5 {
		t.Fatalf("N=%d M=%d", g.N, g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Degree(0) != 3 || g.Degree(1) != 2 {
		t.Fatalf("degrees: %d %d", g.Degree(0), g.Degree(1))
	}
	if !g.HasEdge(0, 2) || g.HasEdge(1, 3) {
		t.Fatal("HasEdge wrong")
	}
	if g.MaxDegree() != 3 {
		t.Fatalf("MaxDegree = %d", g.MaxDegree())
	}
	if g.AvgDegree() != 2.5 {
		t.Fatalf("AvgDegree = %g", g.AvgDegree())
	}
}

func TestFromEdgesDedupAndSelfLoops(t *testing.T) {
	g := FromEdges(3, [][2]int32{{0, 1}, {1, 0}, {0, 1}, {2, 2}, {1, 2}})
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2 (dedup + self-loop drop)", g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFromEdgesEmpty(t *testing.T) {
	g := FromEdges(5, nil)
	if g.N != 5 || g.M() != 0 {
		t.Fatal("empty graph wrong")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	comp, k := Components(g)
	if k != 5 {
		t.Fatalf("%d components, want 5", k)
	}
	_ = comp
}

func TestBFSDistancesOnPath(t *testing.T) {
	g := path(10)
	bfs := NewBFS(g.N)
	far, ecc, visited := bfs.Run(g, 0, nil)
	if far != 9 || ecc != 9 || visited != 10 {
		t.Fatalf("far=%d ecc=%d visited=%d", far, ecc, visited)
	}
	for v := 0; v < 10; v++ {
		if bfs.Dist[v] != int32(v) {
			t.Fatalf("dist[%d] = %d", v, bfs.Dist[v])
		}
	}
	// From the middle.
	_, ecc, _ = bfs.Run(g, 5, nil)
	if ecc != 5 {
		t.Fatalf("ecc from middle = %d", ecc)
	}
}

func TestBFSRestricted(t *testing.T) {
	g := grid(4, 4)
	// Restrict to the first row: behaves like a path of length 3.
	allow := func(v int32) bool { return v < 4 }
	bfs := NewBFS(g.N)
	far, ecc, visited := bfs.Run(g, 0, allow)
	if ecc != 3 || visited != 4 || far != 3 {
		t.Fatalf("restricted: far=%d ecc=%d visited=%d", far, ecc, visited)
	}
	if bfs.Seen(5) {
		t.Fatal("visited disallowed vertex")
	}
}

func TestBFSEpochReuse(t *testing.T) {
	g := path(5)
	bfs := NewBFS(g.N)
	bfs.Run(g, 0, nil)
	if !bfs.Seen(4) {
		t.Fatal("first run should reach 4")
	}
	// Second run restricted to {0}: previous marks must not leak.
	_, _, visited := bfs.Run(g, 0, func(v int32) bool { return v == 0 })
	if visited != 1 || bfs.Seen(4) {
		t.Fatalf("epoch leak: visited=%d seen(4)=%v", visited, bfs.Seen(4))
	}
}

func TestComponents(t *testing.T) {
	// Two triangles and an isolated vertex.
	g := FromEdges(7, [][2]int32{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}})
	comp, k := Components(g)
	if k != 3 {
		t.Fatalf("%d components, want 3", k)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Fatal("triangle 1 split")
	}
	if comp[3] != comp[4] || comp[4] != comp[5] {
		t.Fatal("triangle 2 split")
	}
	if comp[6] == comp[0] || comp[6] == comp[3] {
		t.Fatal("isolated vertex merged")
	}
}

func TestGridDiameterViaDoubleSweep(t *testing.T) {
	g := grid(5, 9)
	bfs := NewBFS(g.N)
	far, _, _ := bfs.Run(g, 22, nil) // from center-ish
	_, ecc, _ := bfs.Run(g, far, nil)
	// True diameter of a 5x9 grid is (5-1)+(9-1) = 12; double sweep finds it.
	if ecc != 12 {
		t.Fatalf("double sweep ecc = %d, want 12", ecc)
	}
}

func TestValidateCatchesAsymmetry(t *testing.T) {
	g := &Graph{N: 2, Xadj: []int64{0, 1, 1}, Adj: []int32{1}}
	if g.Validate() == nil {
		t.Fatal("asymmetric graph passed validation")
	}
	g = &Graph{N: 2, Xadj: []int64{0, 1}, Adj: []int32{1}}
	if g.Validate() == nil {
		t.Fatal("short Xadj passed validation")
	}
	g = &Graph{N: 1, Xadj: []int64{0, 1}, Adj: []int32{5}}
	if g.Validate() == nil {
		t.Fatal("out-of-range neighbor passed validation")
	}
}

func TestRandomGraphInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(60)
		m := rng.Intn(3 * n)
		edges := make([][2]int32, m)
		for i := range edges {
			edges[i] = [2]int32{int32(rng.Intn(n)), int32(rng.Intn(n))}
		}
		g := FromEdges(n, edges)
		if err := g.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// BFS visit count equals component size of the start vertex.
		comp, _ := Components(g)
		bfs := NewBFS(g.N)
		start := int32(rng.Intn(n))
		_, _, visited := bfs.Run(g, start, nil)
		size := 0
		for v := 0; v < n; v++ {
			if comp[v] == comp[start] {
				size++
			}
		}
		if visited != size {
			t.Fatalf("trial %d: BFS visited %d, component size %d", trial, visited, size)
		}
	}
}

func BenchmarkBFSGrid(b *testing.B) {
	g := grid(300, 300)
	bfs := NewBFS(g.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bfs.Run(g, 0, nil)
	}
}

func BenchmarkFromEdges(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 10000
	edges := make([][2]int32, 3*n)
	for i := range edges {
		edges[i] = [2]int32{int32(rng.Intn(n)), int32(rng.Intn(n))}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FromEdges(n, edges)
	}
}
