package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: FromEdges always yields a valid symmetric CSR graph for
// arbitrary (including garbage-free but unordered, duplicated) edge lists.
func TestFromEdgesAlwaysValidProperty(t *testing.T) {
	f := func(raw []uint16, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		edges := make([][2]int32, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, [2]int32{int32(raw[i]) % int32(n), int32(raw[i+1]) % int32(n)})
		}
		g := FromEdges(n, edges)
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the number of directed adjacency entries is even and equals
// 2·M (handshake lemma), and degrees sum to it.
func TestHandshakeProperty(t *testing.T) {
	f := func(raw []uint16, nRaw uint8) bool {
		n := int(nRaw%50) + 2
		edges := make([][2]int32, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, [2]int32{int32(raw[i]) % int32(n), int32(raw[i+1]) % int32(n)})
		}
		g := FromEdges(n, edges)
		degSum := 0
		for v := 0; v < n; v++ {
			degSum += g.Degree(int32(v))
		}
		return int64(degSum) == 2*g.M() && degSum == len(g.Adj)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: BFS distances satisfy the 1-Lipschitz property along edges
// within the visited component.
func TestBFSLipschitzProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 50; trial++ {
		n := 5 + rng.Intn(80)
		edges := make([][2]int32, 2*n)
		for i := range edges {
			edges[i] = [2]int32{int32(rng.Intn(n)), int32(rng.Intn(n))}
		}
		g := FromEdges(n, edges)
		bfs := NewBFS(n)
		start := int32(rng.Intn(n))
		bfs.Run(g, start, nil)
		for v := 0; v < n; v++ {
			if !bfs.Seen(int32(v)) {
				continue
			}
			for _, u := range g.Neighbors(int32(v)) {
				if !bfs.Seen(u) {
					t.Fatalf("trial %d: neighbor %d of visited %d not visited", trial, u, v)
				}
				diff := bfs.Dist[v] - bfs.Dist[u]
				if diff < -1 || diff > 1 {
					t.Fatalf("trial %d: dist jump %d between neighbors %d,%d", trial, diff, v, u)
				}
			}
		}
	}
}

// Property: component labels are consistent with edges (endpoints share a
// component) and component count matches label range.
func TestComponentsConsistentProperty(t *testing.T) {
	f := func(raw []uint16, nRaw uint8) bool {
		n := int(nRaw%60) + 1
		edges := make([][2]int32, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, [2]int32{int32(raw[i]) % int32(n), int32(raw[i+1]) % int32(n)})
		}
		g := FromEdges(n, edges)
		comp, count := Components(g)
		seen := make(map[int32]bool)
		for v := 0; v < n; v++ {
			if comp[v] < 0 || int(comp[v]) >= count {
				return false
			}
			seen[comp[v]] = true
			for _, u := range g.Neighbors(int32(v)) {
				if comp[u] != comp[v] {
					return false
				}
			}
		}
		return len(seen) == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
