// Package graph provides the compressed sparse row (CSR) graph type used
// for meshes and their quality evaluation.
//
// Geographer itself partitions point sets; the *evaluation* (paper §2,
// §5.2.4) is graph-based: edge cut, communication volume, and block
// diameters are computed on the mesh graph, and the SpMV benchmark
// multiplies by its adjacency matrix. This package supplies that
// substrate: CSR storage, construction from edge lists, BFS with
// restriction (for per-block diameters), and connected components.
package graph

import (
	"fmt"
	"sort"
)

// Graph is an undirected graph in CSR form. Adjacency of vertex v is
// Adj[Xadj[v]:Xadj[v+1]], sorted ascending. Every undirected edge {u,v}
// appears twice (u→v and v→u).
type Graph struct {
	N    int
	Xadj []int64
	Adj  []int32
}

// M returns the number of undirected edges.
func (g *Graph) M() int64 { return int64(len(g.Adj)) / 2 }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int32) int {
	return int(g.Xadj[v+1] - g.Xadj[v])
}

// Neighbors returns the adjacency slice of v (do not modify).
func (g *Graph) Neighbors(v int32) []int32 {
	return g.Adj[g.Xadj[v]:g.Xadj[v+1]]
}

// MaxDegree returns the maximum vertex degree.
func (g *Graph) MaxDegree() int {
	best := 0
	for v := 0; v < g.N; v++ {
		if d := g.Degree(int32(v)); d > best {
			best = d
		}
	}
	return best
}

// AvgDegree returns the mean vertex degree.
func (g *Graph) AvgDegree() float64 {
	if g.N == 0 {
		return 0
	}
	return float64(len(g.Adj)) / float64(g.N)
}

// FromEdges builds a CSR graph with n vertices from an undirected edge
// list. Self-loops are dropped; duplicate edges are merged.
func FromEdges(n int, edges [][2]int32) *Graph {
	deg := make([]int64, n+1)
	for _, e := range edges {
		if e[0] == e[1] {
			continue
		}
		deg[e[0]+1]++
		deg[e[1]+1]++
	}
	for i := 0; i < n; i++ {
		deg[i+1] += deg[i]
	}
	adj := make([]int32, deg[n])
	pos := make([]int64, n)
	copy(pos, deg[:n])
	for _, e := range edges {
		if e[0] == e[1] {
			continue
		}
		adj[pos[e[0]]] = e[1]
		pos[e[0]]++
		adj[pos[e[1]]] = e[0]
		pos[e[1]]++
	}
	g := &Graph{N: n, Xadj: deg, Adj: adj}
	g.normalize()
	return g
}

// normalize sorts each adjacency list and removes duplicates, fixing up
// Xadj.
func (g *Graph) normalize() {
	out := g.Adj[:0]
	newX := make([]int64, g.N+1)
	for v := 0; v < g.N; v++ {
		lo, hi := g.Xadj[v], g.Xadj[v+1]
		nb := g.Adj[lo:hi]
		sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })
		start := len(out)
		for i, u := range nb {
			if i > 0 && nb[i-1] == u {
				continue
			}
			out = append(out, u)
		}
		newX[v] = int64(start)
	}
	newX[g.N] = int64(len(out))
	// Compact: shift to the beginning (adjacency lists were compacted into
	// the same backing array from the left).
	g.Adj = out
	g.Xadj = newX
}

// Validate checks CSR structural invariants: monotone Xadj, in-range
// sorted adjacency, no self-loops, symmetry.
func (g *Graph) Validate() error {
	if len(g.Xadj) != g.N+1 {
		return fmt.Errorf("graph: Xadj length %d for %d vertices", len(g.Xadj), g.N)
	}
	if g.Xadj[0] != 0 || g.Xadj[g.N] != int64(len(g.Adj)) {
		return fmt.Errorf("graph: bad Xadj bounds")
	}
	for v := 0; v < g.N; v++ {
		if g.Xadj[v] > g.Xadj[v+1] {
			return fmt.Errorf("graph: Xadj not monotone at %d", v)
		}
		nb := g.Neighbors(int32(v))
		for i, u := range nb {
			if u < 0 || int(u) >= g.N {
				return fmt.Errorf("graph: vertex %d has out-of-range neighbor %d", v, u)
			}
			if u == int32(v) {
				return fmt.Errorf("graph: self-loop at %d", v)
			}
			if i > 0 && nb[i-1] >= u {
				return fmt.Errorf("graph: adjacency of %d not sorted/unique", v)
			}
			if !g.HasEdge(u, int32(v)) {
				return fmt.Errorf("graph: edge %d->%d not symmetric", v, u)
			}
		}
	}
	return nil
}

// HasEdge reports whether {u,v} is an edge (binary search).
func (g *Graph) HasEdge(u, v int32) bool {
	nb := g.Neighbors(u)
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= v })
	return i < len(nb) && nb[i] == v
}

// BFS is a reusable breadth-first search workspace. The epoch trick avoids
// clearing the distance array between runs, which matters when computing
// per-block diameters over thousands of blocks.
type BFS struct {
	Dist  []int32
	mark  []uint32
	epoch uint32
	queue []int32
}

// NewBFS returns a workspace for graphs with up to n vertices.
func NewBFS(n int) *BFS {
	return &BFS{Dist: make([]int32, n), mark: make([]uint32, n), queue: make([]int32, 0, 1024)}
}

// Seen reports whether v was reached by the most recent Run.
func (b *BFS) Seen(v int32) bool { return b.mark[v] == b.epoch }

// Run performs a BFS from start over vertices for which allow returns true
// (allow == nil means all). It returns the farthest vertex found, its
// distance (eccentricity lower bound from start), and the number of
// visited vertices.
func (b *BFS) Run(g *Graph, start int32, allow func(int32) bool) (far int32, ecc int32, visited int) {
	b.epoch++
	if b.epoch == 0 { // wrapped: clear marks once
		for i := range b.mark {
			b.mark[i] = 0
		}
		b.epoch = 1
	}
	b.queue = b.queue[:0]
	b.queue = append(b.queue, start)
	b.mark[start] = b.epoch
	b.Dist[start] = 0
	far, ecc, visited = start, 0, 1
	for head := 0; head < len(b.queue); head++ {
		v := b.queue[head]
		dv := b.Dist[v]
		for _, u := range g.Neighbors(v) {
			if b.mark[u] == b.epoch {
				continue
			}
			if allow != nil && !allow(u) {
				continue
			}
			b.mark[u] = b.epoch
			b.Dist[u] = dv + 1
			if dv+1 > ecc {
				ecc, far = dv+1, u
			}
			b.queue = append(b.queue, u)
			visited++
		}
	}
	return far, ecc, visited
}

// Components labels connected components; the result maps each vertex to a
// component id in [0, #components).
func Components(g *Graph) (comp []int32, count int) {
	comp = make([]int32, g.N)
	for i := range comp {
		comp[i] = -1
	}
	queue := make([]int32, 0, 1024)
	for v := 0; v < g.N; v++ {
		if comp[v] >= 0 {
			continue
		}
		id := int32(count)
		comp[v] = id
		queue = append(queue[:0], int32(v))
		for head := 0; head < len(queue); head++ {
			x := queue[head]
			for _, u := range g.Neighbors(x) {
				if comp[u] < 0 {
					comp[u] = id
					queue = append(queue, u)
				}
			}
		}
		count++
	}
	return comp, count
}
