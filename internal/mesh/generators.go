package mesh

import (
	"fmt"
	"math"
	"math/rand"

	"geographer/internal/geom"
)

// The generators below produce synthetic analogs of the paper's instance
// classes (§5.2.3). Every generator is deterministic in (n, seed).
//
//	paper instance            analog here
//	--------------------------------------------------------------
//	delaunayX series          GenDelaunayUniform2D
//	hugetric / hugetrace      GenRefinedTri (refinement-front density)
//	hugebubbles               GenBubbles (rim-concentrated density)
//	333SP/AS365/M6/NACA/NLR   GenAirfoil (boundary-layer FEM grading)
//	rgg_n series              GenRGG2D
//	fesom 2.5D climate        GenClimate (masked ocean + layer weights)
//	3D Delaunay (Funke gen.)  GenDelaunay3D (uniform cube, kNN adjacency)
//	alyaTestCaseA/B           GenTube3D (branching respiratory tubes)

// GenDelaunayUniform2D triangulates n uniform random points in the unit
// square — the DelaunayX series used in the scaling experiments.
func GenDelaunayUniform2D(n int, seed int64) (*Mesh, error) {
	rng := rand.New(rand.NewSource(seed))
	ps := geom.NewPointSet(2, n)
	for i := 0; i < n; i++ {
		ps.Append(geom.Point{rng.Float64(), rng.Float64()}, 1)
	}
	g, err := Delaunay2D(ps)
	if err != nil {
		return nil, err
	}
	return &Mesh{Name: fmt.Sprintf("delaunay2d-%d", n), Points: ps, G: g}, nil
}

// samplePoints draws n points from a density mixture: with probability
// bg uniform over the box, otherwise a Gaussian around a random kernel
// center. This mimics adaptively refined meshes, whose vertex density
// concentrates where the numerical simulation refined.
func samplePoints(n int, rng *rand.Rand, bg float64, kernels []geom.Point, sigma []float64, lo, hi geom.Point) *geom.PointSet {
	ps := geom.NewPointSet(2, n)
	for len(ps.Coords)/2 < n {
		var p geom.Point
		if rng.Float64() < bg || len(kernels) == 0 {
			p = geom.Point{lo[0] + rng.Float64()*(hi[0]-lo[0]), lo[1] + rng.Float64()*(hi[1]-lo[1])}
		} else {
			k := rng.Intn(len(kernels))
			p = geom.Point{
				kernels[k][0] + rng.NormFloat64()*sigma[k],
				kernels[k][1] + rng.NormFloat64()*sigma[k],
			}
			if p[0] < lo[0] || p[0] > hi[0] || p[1] < lo[1] || p[1] > hi[1] {
				continue
			}
		}
		ps.Append(p, 1)
	}
	return ps
}

// GenRefinedTri produces a hugetric/hugetrace-style adaptively refined
// triangle mesh: vertex density follows "refinement fronts" laid out as
// random walks across the domain.
func GenRefinedTri(n int, seed int64) (*Mesh, error) {
	rng := rand.New(rand.NewSource(seed))
	var kernels []geom.Point
	var sigma []float64
	walks := 3 + rng.Intn(3)
	for w := 0; w < walks; w++ {
		x, y := rng.Float64(), rng.Float64()
		dir := rng.Float64() * 2 * math.Pi
		steps := 15 + rng.Intn(15)
		for s := 0; s < steps; s++ {
			kernels = append(kernels, geom.Point{x, y})
			sigma = append(sigma, 0.015+0.02*rng.Float64())
			dir += rng.NormFloat64() * 0.4
			x += 0.04 * math.Cos(dir)
			y += 0.04 * math.Sin(dir)
			if x < 0 || x > 1 || y < 0 || y > 1 {
				dir += math.Pi / 2
				x = clamp(x, 0, 1)
				y = clamp(y, 0, 1)
			}
		}
	}
	ps := samplePoints(n, rng, 0.35, kernels, sigma, geom.Point{0, 0}, geom.Point{1, 1})
	g, err := Delaunay2D(ps)
	if err != nil {
		return nil, err
	}
	return &Mesh{Name: fmt.Sprintf("refinedtri-%d", n), Points: ps, G: g}, nil
}

// GenBubbles produces a hugebubbles-style mesh: density concentrated on
// the rims of random circles ("bubbles") plus a uniform background.
func GenBubbles(n int, seed int64) (*Mesh, error) {
	rng := rand.New(rand.NewSource(seed))
	type bubble struct {
		cx, cy, r float64
	}
	bubbles := make([]bubble, 4+rng.Intn(4))
	for i := range bubbles {
		bubbles[i] = bubble{0.15 + 0.7*rng.Float64(), 0.15 + 0.7*rng.Float64(), 0.05 + 0.15*rng.Float64()}
	}
	ps := geom.NewPointSet(2, n)
	for ps.Len() < n {
		if rng.Float64() < 0.3 {
			ps.Append(geom.Point{rng.Float64(), rng.Float64()}, 1)
			continue
		}
		b := bubbles[rng.Intn(len(bubbles))]
		ang := rng.Float64() * 2 * math.Pi
		rad := b.r + rng.NormFloat64()*0.01
		p := geom.Point{b.cx + rad*math.Cos(ang), b.cy + rad*math.Sin(ang)}
		if p[0] < 0 || p[0] > 1 || p[1] < 0 || p[1] > 1 {
			continue
		}
		ps.Append(p, 1)
	}
	g, err := Delaunay2D(ps)
	if err != nil {
		return nil, err
	}
	return &Mesh{Name: fmt.Sprintf("bubbles-%d", n), Points: ps, G: g}, nil
}

// naca0012Thickness returns the half-thickness of a NACA0012 airfoil at
// chord position x ∈ [0,1].
func naca0012Thickness(x float64) float64 {
	const t = 0.12
	return 5 * t * (0.2969*math.Sqrt(x) - 0.1260*x - 0.3516*x*x + 0.2843*x*x*x - 0.1015*x*x*x*x)
}

// GenAirfoil produces an FEM-style mesh in the class of the paper's
// 333SP/AS365/M6/NACA0015/NLR instances: a boundary-layer point grading
// around a NACA0012 profile inside a far-field box, with the airfoil body
// cut out.
func GenAirfoil(n int, seed int64) (*Mesh, error) {
	rng := rand.New(rand.NewSource(seed))
	lo := geom.Point{-0.8, -0.8}
	hi := geom.Point{1.8, 0.8}
	insideBody := func(p geom.Point) bool {
		if p[0] <= 0 || p[0] >= 1 {
			return false
		}
		return math.Abs(p[1]) < naca0012Thickness(p[0])
	}
	ps := geom.NewPointSet(2, n)
	for ps.Len() < n {
		var p geom.Point
		if rng.Float64() < 0.25 {
			p = geom.Point{lo[0] + rng.Float64()*(hi[0]-lo[0]), lo[1] + rng.Float64()*(hi[1]-lo[1])}
		} else {
			// Boundary layer: a point on the profile offset along the normal
			// with exponentially decaying distance.
			x := rng.Float64()
			side := 1.0
			if rng.Intn(2) == 0 {
				side = -1
			}
			off := rng.ExpFloat64() * 0.06
			p = geom.Point{x + rng.NormFloat64()*0.02, side * (naca0012Thickness(x) + off)}
		}
		if p[0] < lo[0] || p[0] > hi[0] || p[1] < lo[1] || p[1] > hi[1] || insideBody(p) {
			continue
		}
		ps.Append(p, 1)
	}
	g, err := Delaunay2D(ps)
	if err != nil {
		return nil, err
	}
	return &Mesh{Name: fmt.Sprintf("airfoil-%d", n), Points: ps, G: g}, nil
}

// GenRGG2D produces a random geometric graph with the given expected
// average degree (the DIMACS rgg_n series; degree ≈ 13 there).
func GenRGG2D(n int, seed int64, avgDeg float64) (*Mesh, error) {
	rng := rand.New(rand.NewSource(seed))
	ps := geom.NewPointSet(2, n)
	for i := 0; i < n; i++ {
		ps.Append(geom.Point{rng.Float64(), rng.Float64()}, 1)
	}
	g, err := RadiusGraph(ps, RGGRadiusForDegree(n, 2, avgDeg))
	if err != nil {
		return nil, err
	}
	m := &Mesh{Name: fmt.Sprintf("rgg2d-%d", n), Points: ps, G: g}
	// RGGs at this degree are connected w.h.p. but not surely; keep the
	// giant component like the DIMACS preprocessing does.
	return LargestComponent(m), nil
}

// GenClimate produces a fesom-style 2.5D climate mesh: an ocean domain
// with continent-shaped holes, Delaunay triangulated, long hole-spanning
// edges removed, node weights set to a synthetic number of vertical ocean
// layers (deep ocean heavy, coastal shelf light) — the 2.5D partitioning
// problem from the paper's introduction.
func GenClimate(n int, seed int64) (*Mesh, error) {
	rng := rand.New(rand.NewSource(seed))
	type ellipse struct {
		cx, cy, rx, ry, rot float64
	}
	continents := make([]ellipse, 3+rng.Intn(3))
	for i := range continents {
		continents[i] = ellipse{
			cx: 0.2 + 1.6*rng.Float64(), cy: 0.15 + 0.7*rng.Float64(),
			rx: 0.08 + 0.22*rng.Float64(), ry: 0.05 + 0.15*rng.Float64(),
			rot: rng.Float64() * math.Pi,
		}
	}
	// landDist < 0 inside a continent; otherwise approximate normalized
	// distance to the nearest continent.
	landDist := func(p geom.Point) float64 {
		best := math.Inf(1)
		for _, e := range continents {
			dx, dy := p[0]-e.cx, p[1]-e.cy
			c, s := math.Cos(e.rot), math.Sin(e.rot)
			u, v := (dx*c+dy*s)/e.rx, (-dx*s+dy*c)/e.ry
			d := math.Sqrt(u*u+v*v) - 1
			if d < best {
				best = d
			}
		}
		return best
	}
	ps := geom.NewPointSet(2, n)
	ps.Weight = make([]float64, 0, n)
	for ps.Len() < n {
		p := geom.Point{2 * rng.Float64(), rng.Float64()}
		d := landDist(p)
		if d <= 0 {
			continue // on land
		}
		// Vertical layers: 5 on the shelf up to ~64 in the open ocean.
		depth := math.Min(1, d/0.4)
		layers := 5 + math.Floor(59*depth) + float64(rng.Intn(3))
		ps.Append(p, layers)
	}
	g, err := Delaunay2D(ps)
	if err != nil {
		return nil, err
	}
	m := &Mesh{Name: fmt.Sprintf("climate-%d", n), Points: ps, G: g}
	m = FilterLongEdges(m, 4)
	m = LargestComponent(m)
	m.Name = fmt.Sprintf("climate-%d", n)
	return m, nil
}

// GenDelaunay3D produces the 3D Delaunay analog: n uniform points in the
// unit cube with symmetric kNN adjacency (k=10 → mean degree ≈ 14, the
// degree of a 3D Delaunay triangulation; see DESIGN.md substitution).
func GenDelaunay3D(n int, seed int64) (*Mesh, error) {
	rng := rand.New(rand.NewSource(seed))
	ps := geom.NewPointSet(3, n)
	for i := 0; i < n; i++ {
		ps.Append(geom.Point{rng.Float64(), rng.Float64(), rng.Float64()}, 1)
	}
	g, err := KNNGraph(ps, 10)
	if err != nil {
		return nil, err
	}
	return &Mesh{Name: fmt.Sprintf("delaunay3d-%d", n), Points: ps, G: g}, nil
}

// GenTube3D produces an alya-style mesh (the PRACE respiratory-system
// test cases): points sampled around a branching tube skeleton in 3D,
// connected by symmetric kNN adjacency.
func GenTube3D(n int, seed int64) (*Mesh, error) {
	rng := rand.New(rand.NewSource(seed))
	type segment struct {
		a, b   geom.Point
		radius float64
	}
	var segs []segment
	var grow func(from geom.Point, dir geom.Point, length, radius float64, depth int)
	grow = func(from geom.Point, dir geom.Point, length, radius float64, depth int) {
		to := from.Add(dir.Scale(length))
		segs = append(segs, segment{from, to, radius})
		if depth == 0 {
			return
		}
		for b := 0; b < 2; b++ {
			nd := geom.Point{
				dir[0] + rng.NormFloat64()*0.6,
				dir[1] + rng.NormFloat64()*0.6,
				dir[2] + rng.NormFloat64()*0.3,
			}
			norm := math.Sqrt(nd.Dot(nd, 3))
			if norm == 0 {
				continue
			}
			grow(to, nd.Scale(1/norm), length*0.75, radius*0.7, depth-1)
		}
	}
	grow(geom.Point{0.5, 0.5, 1.0}, geom.Point{0, 0, -1}, 0.3, 0.05, 5)

	totalLen := 0.0
	for _, s := range segs {
		totalLen += geom.Dist(s.a, s.b, 3)
	}
	ps := geom.NewPointSet(3, n)
	for ps.Len() < n {
		// Pick a segment weighted by length.
		pick := rng.Float64() * totalLen
		var seg segment
		for _, s := range segs {
			l := geom.Dist(s.a, s.b, 3)
			if pick <= l {
				seg = s
				break
			}
			pick -= l
		}
		if seg.radius == 0 {
			seg = segs[len(segs)-1]
		}
		t := rng.Float64()
		p := seg.a.Add(seg.b.Sub(seg.a).Scale(t))
		for d := 0; d < 3; d++ {
			p[d] += rng.NormFloat64() * seg.radius
		}
		ps.Append(p, 1)
	}
	g, err := KNNGraph(ps, 10)
	if err != nil {
		return nil, err
	}
	m := &Mesh{Name: fmt.Sprintf("tube3d-%d", n), Points: ps, G: g}
	return LargestComponent(m), nil
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
