package mesh

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestMETISRoundTrip(t *testing.T) {
	for _, gen := range []genFunc{GenDelaunayUniform2D, GenClimate, GenDelaunay3D} {
		m, err := gen(600, 21)
		if err != nil {
			t.Fatal(err)
		}
		var gbuf bytes.Buffer
		if err := WriteMETIS(&gbuf, m); err != nil {
			t.Fatal(err)
		}
		g, vwgt, err := ReadMETIS(&gbuf)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if g.N != m.G.N || g.M() != m.G.M() {
			t.Fatalf("%s: n/m mismatch: %d/%d vs %d/%d", m.Name, g.N, g.M(), m.G.N, m.G.M())
		}
		if (vwgt == nil) != (m.Points.Weight == nil) {
			t.Fatalf("%s: weight presence lost", m.Name)
		}
		for v := 0; v < g.N; v++ {
			a, b := g.Neighbors(int32(v)), m.G.Neighbors(int32(v))
			if len(a) != len(b) {
				t.Fatalf("%s: vertex %d adjacency differs", m.Name, v)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%s: vertex %d adjacency differs at %d", m.Name, v, i)
				}
			}
		}
	}
}

func TestMETISParsesReferenceFile(t *testing.T) {
	// The example from the METIS manual: 7 vertices, 11 edges.
	input := `% example graph
7 11
5 3 2
1 3 4
5 4 2 1
2 3 6 7
1 3 6
5 4 7
6 4
`
	g, vwgt, err := ReadMETIS(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if vwgt != nil {
		t.Error("unweighted file produced weights")
	}
	if g.N != 7 || g.M() != 11 {
		t.Fatalf("n=%d m=%d, want 7/11", g.N, g.M())
	}
	if !g.HasEdge(0, 4) || !g.HasEdge(3, 6) {
		t.Error("missing expected edges")
	}
}

func TestMETISVertexWeights(t *testing.T) {
	input := "3 2 010\n4 2\n1 1 3\n2 2\n"
	g, vwgt, err := ReadMETIS(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 3 || g.M() != 2 {
		t.Fatalf("n=%d m=%d", g.N, g.M())
	}
	if vwgt == nil || vwgt[0] != 4 || vwgt[1] != 1 || vwgt[2] != 2 {
		t.Fatalf("vwgt = %v", vwgt)
	}
}

func TestMETISEdgeWeightsDropped(t *testing.T) {
	input := "2 1 001\n2 9\n1 9\n"
	g, _, err := ReadMETIS(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 1 || !g.HasEdge(0, 1) {
		t.Fatal("edge-weighted graph parsed wrong")
	}
}

func TestMETISErrors(t *testing.T) {
	cases := []string{
		"",                       // empty
		"x y\n",                  // bad header
		"2 1 100\n2\n1\n",        // vertex sizes unsupported
		"2 1\n3\n1\n",            // out-of-range neighbor
		"2 1 010\n\n1\n",         // missing weight
		"3 1 001\n2\n1 5 3\n2 5", // dangling edge weight token
	}
	for i, in := range cases {
		if _, _, err := ReadMETIS(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: error expected", i)
		}
	}
}

func TestXYZRoundTrip(t *testing.T) {
	m, err := GenDelaunay3D(200, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteXYZ(&buf, m.Points); err != nil {
		t.Fatal(err)
	}
	ps, err := ReadXYZ(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Dim != 3 || ps.Len() != m.N() {
		t.Fatalf("dim=%d n=%d", ps.Dim, ps.Len())
	}
	for i := 0; i < ps.Len(); i++ {
		a, b := ps.At(i), m.Points.At(i)
		for d := 0; d < 3; d++ {
			if a[d] != b[d] {
				t.Fatalf("point %d coordinate %d: %g vs %g", i, d, a[d], b[d])
			}
		}
	}
}

func TestXYZErrors(t *testing.T) {
	if _, err := ReadXYZ(strings.NewReader("")); err == nil {
		t.Error("empty xyz accepted")
	}
	if _, err := ReadXYZ(strings.NewReader("1 2 3 4\n")); err == nil {
		t.Error("4D xyz accepted")
	}
	if _, err := ReadXYZ(strings.NewReader("1 2\n3\n")); err == nil {
		t.Error("ragged xyz accepted")
	}
	if _, err := ReadXYZ(strings.NewReader("1 banana\n")); err == nil {
		t.Error("non-numeric xyz accepted")
	}
}

func TestMETISFilesRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m, err := GenClimate(800, 5)
	if err != nil {
		t.Fatal(err)
	}
	prefix := filepath.Join(dir, "ocean")
	if err := WriteMETISFiles(prefix, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMETISFiles(prefix+".graph", prefix+".xyz")
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != m.N() || back.G.M() != m.G.M() {
		t.Fatalf("roundtrip: %s vs %s", back, m)
	}
	if back.Points.Weight == nil {
		t.Fatal("weights lost")
	}
}
