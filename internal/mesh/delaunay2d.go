// Package mesh builds the simulation meshes used in the paper's
// evaluation (§5.2.3): Delaunay triangulations of random point sets,
// adaptively refined 2D meshes, airfoil-style FEM meshes, random geometric
// graphs, 2.5D climate meshes with node weights, and 3D meshes.
//
// The 2D triangulator below is a from-scratch Bowyer–Watson implementation
// with Hilbert-order insertion and a remembering walk for point location,
// giving near-linear construction on the graded point sets the generators
// produce.
package mesh

import (
	"fmt"
	"sort"

	"geographer/internal/geom"
	"geographer/internal/graph"
	"geographer/internal/sfc"
)

// orient2d returns twice the signed area of triangle (a,b,c):
// positive if CCW, negative if CW, ~0 if collinear.
func orient2d(ax, ay, bx, by, cx, cy float64) float64 {
	return (bx-ax)*(cy-ay) - (by-ay)*(cx-ax)
}

// incircle returns a positive value if p lies strictly inside the
// circumcircle of the CCW triangle (a,b,c).
func incircle(ax, ay, bx, by, cx, cy, px, py float64) float64 {
	adx, ady := ax-px, ay-py
	bdx, bdy := bx-px, by-py
	cdx, cdy := cx-px, cy-py
	ad := adx*adx + ady*ady
	bd := bdx*bdx + bdy*bdy
	cd := cdx*cdx + cdy*cdy
	return adx*(bdy*cd-bd*cdy) - ady*(bdx*cd-bd*cdx) + ad*(bdx*cdy-bdy*cdx)
}

// dtri is one triangle of the incremental triangulation. Vertices are CCW;
// nbr[i] is the triangle across the edge opposite v[i], i.e. the edge
// (v[i+1], v[i+2]); -1 means no neighbor (outer boundary).
type dtri struct {
	v    [3]int32
	nbr  [3]int32
	dead bool
}

// delaunay2D computes the Delaunay triangulation of the given 2D points
// and returns the edge graph (super-triangle artifacts removed).
func delaunay2D(ps *geom.PointSet) (*graph.Graph, error) {
	n := ps.Len()
	if n < 2 {
		return graph.FromEdges(n, nil), nil
	}
	box := ps.Bounds()

	// Coordinates, with three super-triangle vertices appended.
	px := make([]float64, n+3)
	py := make([]float64, n+3)
	for i := 0; i < n; i++ {
		p := ps.At(i)
		px[i], py[i] = p[0], p[1]
	}
	cx, cy := box.Center()[0], box.Center()[1]
	span := box.Diagonal()
	if span == 0 {
		span = 1
	}
	big := 64 * span
	px[n], py[n] = cx-big, cy-big
	px[n+1], py[n+1] = cx+big, cy-big
	px[n+2], py[n+2] = cx, cy+big

	d := &delaunayState{px: px, py: py, super: int32(n)}
	d.tris = append(d.tris, dtri{
		v:   [3]int32{int32(n), int32(n + 1), int32(n + 2)},
		nbr: [3]int32{-1, -1, -1},
	})

	// Insert points in Hilbert order for walk locality.
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	curve := sfc.NewCurveOrder(box, 2, 16)
	keys := make([]uint64, n)
	for i := 0; i < n; i++ {
		keys[i] = curve.Key(ps.At(i))
	}
	sort.Slice(order, func(i, j int) bool { return keys[order[i]] < keys[order[j]] })

	for _, ip := range order {
		if err := d.insert(ip); err != nil {
			return nil, err
		}
	}

	// Extract edges not incident to super-triangle vertices.
	edges := make([][2]int32, 0, 3*n)
	for ti := range d.tris {
		t := &d.tris[ti]
		if t.dead {
			continue
		}
		for i := 0; i < 3; i++ {
			a, b := t.v[i], t.v[(i+1)%3]
			if a >= int32(n) || b >= int32(n) {
				continue
			}
			if a < b { // each undirected edge once
				edges = append(edges, [2]int32{a, b})
			}
		}
	}
	return graph.FromEdges(n, edges), nil
}

type delaunayState struct {
	px, py []float64
	tris   []dtri
	free   []int32
	super  int32 // first super vertex index
	last   int32 // walk start

	// scratch buffers reused across insertions
	cavity   []int32
	inCavity map[int32]bool
	startMap map[int32]int32
	endMap   map[int32]int32
}

func (d *delaunayState) alloc(t dtri) int32 {
	if k := len(d.free); k > 0 {
		idx := d.free[k-1]
		d.free = d.free[:k-1]
		d.tris[idx] = t
		return idx
	}
	d.tris = append(d.tris, t)
	return int32(len(d.tris) - 1)
}

// locate returns a triangle containing point ip, using a remembering walk
// from the last created triangle with a linear-scan fallback.
func (d *delaunayState) locate(ip int32) (int32, error) {
	x, y := d.px[ip], d.py[ip]
	t := d.last
	if t < 0 || int(t) >= len(d.tris) || d.tris[t].dead {
		t = d.anyAlive()
	}
	maxSteps := 4*len(d.tris) + 64
	prev := int32(-1)
	for step := 0; step < maxSteps; step++ {
		tr := &d.tris[t]
		next := int32(-1)
		for i := 0; i < 3; i++ {
			a, b := tr.v[(i+1)%3], tr.v[(i+2)%3]
			if tr.nbr[i] == prev && prev != -1 {
				continue // don't immediately walk back
			}
			if orient2d(d.px[a], d.py[a], d.px[b], d.py[b], x, y) < 0 {
				next = tr.nbr[i]
				break
			}
		}
		if next == -1 {
			// Check all edges (including the one toward prev) before
			// declaring containment.
			inside := true
			for i := 0; i < 3; i++ {
				a, b := tr.v[(i+1)%3], tr.v[(i+2)%3]
				if orient2d(d.px[a], d.py[a], d.px[b], d.py[b], x, y) < 0 {
					inside = false
					next = tr.nbr[i]
					break
				}
			}
			if inside {
				return t, nil
			}
		}
		if next == -1 {
			break // walked off the hull: numerical trouble
		}
		prev, t = t, next
	}
	// Fallback: exhaustive scan.
	for ti := range d.tris {
		tr := &d.tris[ti]
		if tr.dead {
			continue
		}
		ok := true
		for i := 0; i < 3 && ok; i++ {
			a, b := tr.v[(i+1)%3], tr.v[(i+2)%3]
			if orient2d(d.px[a], d.py[a], d.px[b], d.py[b], x, y) < 0 {
				ok = false
			}
		}
		if ok {
			return int32(ti), nil
		}
	}
	return -1, fmt.Errorf("mesh: point %d not located in any triangle", ip)
}

func (d *delaunayState) anyAlive() int32 {
	for ti := range d.tris {
		if !d.tris[ti].dead {
			return int32(ti)
		}
	}
	return 0
}

// insert adds point ip via Bowyer–Watson: find the cavity of triangles
// whose circumcircle contains ip, remove it, and re-triangulate its star
// polygon around ip.
func (d *delaunayState) insert(ip int32) error {
	t0, err := d.locate(ip)
	if err != nil {
		return err
	}
	x, y := d.px[ip], d.py[ip]

	if d.inCavity == nil {
		d.inCavity = make(map[int32]bool, 16)
		d.startMap = make(map[int32]int32, 16)
		d.endMap = make(map[int32]int32, 16)
	}
	cavity := d.cavity[:0]
	inCavity := d.inCavity
	clear(inCavity)

	// BFS over triangles whose circumcircle contains ip.
	cavity = append(cavity, t0)
	inCavity[t0] = true
	for head := 0; head < len(cavity); head++ {
		tr := &d.tris[cavity[head]]
		for i := 0; i < 3; i++ {
			nb := tr.nbr[i]
			if nb < 0 || inCavity[nb] {
				continue
			}
			nt := &d.tris[nb]
			a, b, c := nt.v[0], nt.v[1], nt.v[2]
			if incircle(d.px[a], d.py[a], d.px[b], d.py[b], d.px[c], d.py[c], x, y) > 0 {
				inCavity[nb] = true
				cavity = append(cavity, nb)
			}
		}
	}

	// Collect boundary edges (a,b) with their outside triangles.
	type bedge struct {
		a, b    int32
		outside int32
	}
	var boundary []bedge
	for _, ti := range cavity {
		tr := &d.tris[ti]
		for i := 0; i < 3; i++ {
			nb := tr.nbr[i]
			if nb >= 0 && inCavity[nb] {
				continue
			}
			boundary = append(boundary, bedge{a: tr.v[(i+1)%3], b: tr.v[(i+2)%3], outside: nb})
		}
	}
	if len(boundary) < 3 {
		return fmt.Errorf("mesh: degenerate cavity (%d boundary edges) at point %d", len(boundary), ip)
	}

	// Kill cavity triangles.
	for _, ti := range cavity {
		d.tris[ti].dead = true
		d.free = append(d.free, ti)
	}

	// Create one new triangle per boundary edge: (ip, a, b) is CCW because
	// the boundary winds CCW around the cavity and ip lies inside it.
	startMap, endMap := d.startMap, d.endMap
	clear(startMap)
	clear(endMap)
	newTris := make([]int32, len(boundary))
	for i, e := range boundary {
		nt := d.alloc(dtri{v: [3]int32{ip, e.a, e.b}, nbr: [3]int32{e.outside, -1, -1}})
		newTris[i] = nt
		startMap[e.a] = nt
		endMap[e.b] = nt
		// Fix the outside triangle's back-pointer.
		if e.outside >= 0 {
			ot := &d.tris[e.outside]
			for j := 0; j < 3; j++ {
				oa, ob := ot.v[(j+1)%3], ot.v[(j+2)%3]
				if oa == e.b && ob == e.a {
					ot.nbr[j] = nt
				}
			}
		}
	}
	// Stitch new triangles to each other:
	// triangle (ip, a, b): edge opposite v[1]=a is (b, ip) -> shared with
	// the triangle whose boundary edge starts at b; edge opposite v[2]=b
	// is (ip, a) -> shared with the triangle whose boundary edge ends at a.
	for i, e := range boundary {
		nt := &d.tris[newTris[i]]
		nxt, ok := startMap[e.b]
		if !ok {
			return fmt.Errorf("mesh: broken cavity boundary at vertex %d", e.b)
		}
		nt.nbr[1] = nxt
		prv, ok := endMap[e.a]
		if !ok {
			return fmt.Errorf("mesh: broken cavity boundary at vertex %d", e.a)
		}
		nt.nbr[2] = prv
	}
	d.last = newTris[0]
	d.cavity = cavity[:0]
	return nil
}

// Delaunay2D triangulates the 2D points of ps and returns the edge graph.
func Delaunay2D(ps *geom.PointSet) (*graph.Graph, error) {
	if ps.Dim != 2 {
		return nil, fmt.Errorf("mesh: Delaunay2D needs dim 2, got %d", ps.Dim)
	}
	return delaunay2D(ps)
}
