package mesh

import (
	"testing"

	"geographer/internal/geom"
	"geographer/internal/graph"
)

// tinySurface builds a 3-vertex weighted path: weights 2, 3, 1.
func tinySurface() *Mesh {
	ps := geom.NewPointSet(2, 3)
	ps.Weight = []float64{2, 3, 1}
	ps.Append(geom.Point{0, 0}, 2)
	ps.Append(geom.Point{1, 0}, 3)
	ps.Append(geom.Point{2, 0}, 1)
	ps.Weight = []float64{2, 3, 1}
	g := graph.FromEdges(3, [][2]int32{{0, 1}, {1, 2}})
	return &Mesh{Name: "tiny", Points: ps, G: g}
}

func TestExtrude25DStructure(t *testing.T) {
	s := tinySurface()
	m3, err := Extrude25D(s, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// 2 + 3 + 1 = 6 vertices.
	if m3.N() != 6 {
		t.Fatalf("n = %d, want 6", m3.N())
	}
	if err := m3.Validate(); err != nil {
		t.Fatal(err)
	}
	// Edges: vertical 1 + 2 + 0 = 3; horizontal: v0-v1 share 2 layers,
	// v1-v2 share 1 layer => 3. Total 6.
	if m3.G.M() != 6 {
		t.Fatalf("m = %d, want 6", m3.G.M())
	}
	// Column 0 layers: indices 0,1; column 1: 2,3,4; column 2: 5.
	if !m3.G.HasEdge(0, 1) || !m3.G.HasEdge(2, 3) || !m3.G.HasEdge(3, 4) {
		t.Error("vertical edges missing")
	}
	if !m3.G.HasEdge(0, 2) || !m3.G.HasEdge(1, 3) || !m3.G.HasEdge(2, 5) {
		t.Error("horizontal layer edges missing")
	}
	if m3.G.HasEdge(1, 5) {
		t.Error("layer-1 edge to a 1-layer column must not exist")
	}
}

func TestExtrude25DErrors(t *testing.T) {
	s := tinySurface()
	s.Points.Weight = nil
	if _, err := Extrude25D(s, 0.1); err == nil {
		t.Error("unweighted surface accepted")
	}
	ps3 := geom.NewPointSet(3, 1)
	ps3.Append(geom.Point{0, 0, 0}, 1)
	bad := &Mesh{Name: "x", Points: ps3, G: graph.FromEdges(1, nil)}
	if _, err := Extrude25D(bad, 0.1); err == nil {
		t.Error("3D surface accepted")
	}
}

func TestLiftPartitionPreservesColumnLoads(t *testing.T) {
	s, err := GenClimate(2000, 31)
	if err != nil {
		t.Fatal(err)
	}
	m3, err := Extrude25D(s, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	// Total 3D vertices = total surface weight (floored).
	wantN := 0
	for v := 0; v < s.N(); v++ {
		wantN += int(s.Points.Weight[v])
	}
	if m3.N() != wantN {
		t.Fatalf("extruded n = %d, want %d", m3.N(), wantN)
	}

	// A 2-block surface partition lifts to a 3D partition whose block
	// sizes equal the weighted surface block sizes — the exact 2.5D
	// equivalence the paper relies on.
	part2d := make([]int32, s.N())
	for v := range part2d {
		if s.Points.At(v)[0] > 1.0 {
			part2d[v] = 1
		}
	}
	part3d, err := LiftPartition(s, part2d)
	if err != nil {
		t.Fatal(err)
	}
	var w2 [2]float64
	for v := 0; v < s.N(); v++ {
		w2[part2d[v]] += float64(int(s.Points.Weight[v]))
	}
	var n3 [2]int
	for _, b := range part3d {
		n3[b]++
	}
	for b := 0; b < 2; b++ {
		if float64(n3[b]) != w2[b] {
			t.Errorf("block %d: 3D size %d != weighted 2D size %.0f", b, n3[b], w2[b])
		}
	}
}

func TestLiftPartitionErrors(t *testing.T) {
	s := tinySurface()
	if _, err := LiftPartition(s, []int32{0}); err == nil {
		t.Error("short partition accepted")
	}
}
