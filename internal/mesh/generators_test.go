package mesh

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"

	"geographer/internal/geom"
)

type genFunc func(n int, seed int64) (*Mesh, error)

func allGenerators() map[string]genFunc {
	return map[string]genFunc{
		"delaunay2d": GenDelaunayUniform2D,
		"refinedtri": GenRefinedTri,
		"bubbles":    GenBubbles,
		"airfoil":    GenAirfoil,
		"rgg2d":      func(n int, seed int64) (*Mesh, error) { return GenRGG2D(n, seed, 13) },
		"climate":    GenClimate,
		"delaunay3d": GenDelaunay3D,
		"tube3d":     GenTube3D,
	}
}

func TestGeneratorsProduceValidMeshes(t *testing.T) {
	for name, gen := range allGenerators() {
		t.Run(name, func(t *testing.T) {
			m, err := gen(2000, 7)
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Validate(); err != nil {
				t.Fatal(err)
			}
			// Generators may trim (largest component); stay in the ballpark.
			if m.N() < 1500 || m.N() > 2000 {
				t.Errorf("n = %d, want ~2000", m.N())
			}
			if m.G.M() < int64(m.N()) {
				t.Errorf("implausibly sparse: %d edges for %d vertices", m.G.M(), m.N())
			}
			lc := LargestComponent(m)
			if lc.N() != m.N() {
				t.Errorf("mesh not connected: %d of %d in largest component", lc.N(), m.N())
			}
			if m.String() == "" {
				t.Error("empty String()")
			}
		})
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	for name, gen := range allGenerators() {
		a, err := gen(500, 3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := gen(500, 3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if a.N() != b.N() || a.G.M() != b.G.M() {
			t.Errorf("%s: not deterministic (n %d vs %d, m %d vs %d)", name, a.N(), b.N(), a.G.M(), b.G.M())
			continue
		}
		for i := range a.Points.Coords {
			if a.Points.Coords[i] != b.Points.Coords[i] {
				t.Errorf("%s: coordinates differ at %d", name, i)
				break
			}
		}
	}
}

func TestClimateWeights(t *testing.T) {
	m, err := GenClimate(3000, 11)
	if err != nil {
		t.Fatal(err)
	}
	if m.Points.Weight == nil {
		t.Fatal("climate mesh must be weighted")
	}
	minW, maxW := m.Points.W(0), m.Points.W(0)
	for i := 0; i < m.N(); i++ {
		w := m.Points.W(i)
		if w < minW {
			minW = w
		}
		if w > maxW {
			maxW = w
		}
	}
	if minW < 1 || maxW > 70 {
		t.Errorf("layer weights out of range: [%g, %g]", minW, maxW)
	}
	if maxW/minW < 3 {
		t.Errorf("weights not heterogeneous enough: [%g, %g]", minW, maxW)
	}
}

func TestDelaunay3DDegree(t *testing.T) {
	m, err := GenDelaunay3D(3000, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Symmetric kNN with k=10 should land near 3D-Delaunay mean degree ~14.
	if d := m.G.AvgDegree(); d < 10 || d > 18 {
		t.Errorf("avg degree %g, want ~10-18 (3D Delaunay-like)", d)
	}
}

func TestRGGDegree(t *testing.T) {
	m, err := GenRGG2D(5000, 5, 13)
	if err != nil {
		t.Fatal(err)
	}
	if d := m.G.AvgDegree(); d < 9 || d > 17 {
		t.Errorf("avg degree %g, want ~13", d)
	}
}

func TestKNNGraphExactOnSmallSet(t *testing.T) {
	// 5 collinear points: 2-NN of each are its closest two.
	ps := geom.NewPointSet(2, 5)
	for i := 0; i < 5; i++ {
		ps.Append(geom.Point{float64(i), 0}, 1)
	}
	g, err := KNNGraph(ps, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Point 0's 2-NN: 1,2. Point 2's: 1,3. Symmetric closure adds more.
	if !g.HasEdge(0, 1) || !g.HasEdge(0, 2) {
		t.Errorf("missing kNN edges from 0: %v", g.Neighbors(0))
	}
	if g.HasEdge(0, 4) {
		t.Error("0-4 should not be an edge")
	}
}

func TestKNNGraphEdgeCases(t *testing.T) {
	ps := geom.NewPointSet(2, 0)
	g, err := KNNGraph(ps, 3)
	if err != nil || g.N != 0 {
		t.Fatalf("empty: %v %v", g, err)
	}
	ps.Append(geom.Point{0, 0}, 1)
	g, err = KNNGraph(ps, 3)
	if err != nil || g.N != 1 || g.M() != 0 {
		t.Fatalf("single point: %v %v", g, err)
	}
}

func TestRadiusGraphExact(t *testing.T) {
	ps := geom.NewPointSet(2, 4)
	ps.Append(geom.Point{0, 0}, 1)
	ps.Append(geom.Point{0.5, 0}, 1)
	ps.Append(geom.Point{1.2, 0}, 1)
	ps.Append(geom.Point{5, 5}, 1)
	g, err := RadiusGraph(ps, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) {
		t.Error("missing radius edges")
	}
	if g.HasEdge(0, 2) || g.Degree(3) != 0 {
		t.Error("spurious radius edges")
	}
	if _, err := RadiusGraph(ps, -1); err == nil {
		t.Error("negative radius should error")
	}
}

func TestFilterLongEdges(t *testing.T) {
	// A tight cluster (10 short pairwise edges) plus one far-away point
	// (5 long edges): the median edge is short, so a 3× median threshold
	// must cut exactly the outlier's edges.
	ps := geom.NewPointSet(2, 6)
	cluster := []geom.Point{{0, 0}, {1, 0}, {0, 1}, {1, 1}, {0.5, 0.5}}
	for _, p := range cluster {
		ps.Append(p, 1)
	}
	outlier := 5
	ps.Append(geom.Point{50, 50}, 1)
	g, err := RadiusGraph(ps, 100) // complete graph
	if err != nil {
		t.Fatal(err)
	}
	m := &Mesh{Name: "t", Points: ps, G: g}
	filtered := FilterLongEdges(m, 3)
	if filtered.G.Degree(int32(outlier)) != 0 {
		t.Errorf("long edges to outlier survived: deg=%d", filtered.G.Degree(int32(outlier)))
	}
	if !filtered.G.HasEdge(0, 1) || !filtered.G.HasEdge(0, 4) {
		t.Error("short cluster edges removed")
	}
}

func TestMeshIORoundTrip(t *testing.T) {
	for _, gen := range []genFunc{GenDelaunayUniform2D, GenClimate, GenDelaunay3D} {
		m, err := gen(800, 13)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, m); err != nil {
			t.Fatal(err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if back.Name != m.Name || back.N() != m.N() || back.G.M() != m.G.M() {
			t.Fatalf("roundtrip mismatch: %s vs %s", back, m)
		}
		for i := range m.Points.Coords {
			if back.Points.Coords[i] != m.Points.Coords[i] {
				t.Fatal("coords corrupted")
			}
		}
		if (m.Points.Weight == nil) != (back.Points.Weight == nil) {
			t.Fatal("weight presence lost")
		}
	}
}

func TestMeshIOFiles(t *testing.T) {
	dir := t.TempDir()
	m, err := GenDelaunayUniform2D(200, 3)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "test.ggm")
	if err := WriteFile(path, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != m.N() {
		t.Fatal("file roundtrip mismatch")
	}
	if _, err := ReadFile(filepath.Join(dir, "missing.ggm")); err == nil {
		t.Error("missing file should error")
	}
}

func TestMeshIOBadMagic(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("NOPE1234567890"))); err == nil {
		t.Error("bad magic should error")
	}
}

func TestEdgeLengthStats(t *testing.T) {
	m, err := GenDelaunayUniform2D(500, 2)
	if err != nil {
		t.Fatal(err)
	}
	min, med, max := EdgeLengthStats(m)
	if !(min > 0 && min <= med && med <= max) {
		t.Errorf("stats disordered: %g %g %g", min, med, max)
	}
}

func BenchmarkGenRefinedTri10k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := GenRefinedTri(10000, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKNNGraph3D10k(b *testing.B) {
	ps := randomPoints3D(10000, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KNNGraph(ps, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func randomPoints3D(n int, seed int64) *geom.PointSet {
	rng := rand.New(rand.NewSource(seed))
	ps := geom.NewPointSet(3, n)
	for i := 0; i < n; i++ {
		ps.Append(geom.Point{rng.Float64(), rng.Float64(), rng.Float64()}, 1)
	}
	return ps
}
