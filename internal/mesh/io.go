package mesh

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"geographer/internal/geom"
	"geographer/internal/graph"
)

// Binary mesh format ("GGM1"): a compact serialization so generated
// meshes can be produced once with cmd/genmesh and reused across
// experiment runs.
//
//	magic   [4]byte  "GGM1"
//	dim     uint8
//	flags   uint8    bit 0: has weights
//	nameLen uint16   followed by name bytes
//	n       int64    vertices
//	adjLen  int64    length of Adj
//	coords  n*dim float64
//	weights n float64 (if flag set)
//	xadj    (n+1) int64
//	adj     adjLen int32
var meshMagic = [4]byte{'G', 'G', 'M', '1'}

// Write serializes m.
func Write(w io.Writer, m *Mesh) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(meshMagic[:]); err != nil {
		return err
	}
	var flags uint8
	if m.Points.Weight != nil {
		flags |= 1
	}
	name := []byte(m.Name)
	if len(name) > 65535 {
		name = name[:65535]
	}
	hdr := []any{uint8(m.Points.Dim), flags, uint16(len(name))}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	if _, err := bw.Write(name); err != nil {
		return err
	}
	n := int64(m.Points.Len())
	if err := binary.Write(bw, binary.LittleEndian, n); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, int64(len(m.G.Adj))); err != nil {
		return err
	}
	for _, blk := range []any{m.Points.Coords, m.Points.Weight, m.G.Xadj, m.G.Adj} {
		if blk == nil {
			continue
		}
		if w, ok := blk.([]float64); ok && w == nil {
			continue
		}
		if err := binary.Write(bw, binary.LittleEndian, blk); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read deserializes a mesh written by Write.
func Read(r io.Reader) (*Mesh, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, err
	}
	if magic != meshMagic {
		return nil, fmt.Errorf("mesh: bad magic %q", magic)
	}
	var dim, flags uint8
	var nameLen uint16
	if err := binary.Read(br, binary.LittleEndian, &dim); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &flags); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
		return nil, err
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	var n, adjLen int64
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &adjLen); err != nil {
		return nil, err
	}
	if dim < 1 || dim > geom.MaxDim || n < 0 || adjLen < 0 {
		return nil, fmt.Errorf("mesh: corrupt header (dim=%d n=%d adjLen=%d)", dim, n, adjLen)
	}
	ps := &geom.PointSet{Dim: int(dim), Coords: make([]float64, n*int64(dim))}
	if err := binary.Read(br, binary.LittleEndian, ps.Coords); err != nil {
		return nil, err
	}
	if flags&1 != 0 {
		ps.Weight = make([]float64, n)
		if err := binary.Read(br, binary.LittleEndian, ps.Weight); err != nil {
			return nil, err
		}
	}
	g := &graph.Graph{N: int(n), Xadj: make([]int64, n+1), Adj: make([]int32, adjLen)}
	if err := binary.Read(br, binary.LittleEndian, g.Xadj); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, g.Adj); err != nil {
		return nil, err
	}
	m := &Mesh{Name: string(name), Points: ps, G: g}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("mesh: corrupt file: %w", err)
	}
	return m, nil
}

// WriteFile writes m to path.
func WriteFile(path string, m *Mesh) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := Write(f, m); err != nil {
		return err
	}
	return f.Close()
}

// ReadFile reads a mesh from path.
func ReadFile(path string) (*Mesh, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
