package mesh

import (
	"math/rand"
	"testing"

	"geographer/internal/geom"
)

func randomPoints2D(n int, seed int64) *geom.PointSet {
	rng := rand.New(rand.NewSource(seed))
	ps := geom.NewPointSet(2, n)
	for i := 0; i < n; i++ {
		ps.Append(geom.Point{rng.Float64(), rng.Float64()}, 1)
	}
	return ps
}

// bruteDelaunayEdges computes Delaunay edges by the O(n⁴) definition: a
// triangle (i,j,k) is Delaunay iff no other point lies inside its
// circumcircle; its three edges are Delaunay edges.
func bruteDelaunayEdges(ps *geom.PointSet) map[[2]int32]bool {
	n := ps.Len()
	edges := make(map[[2]int32]bool)
	addEdge := func(a, b int32) {
		if a > b {
			a, b = b, a
		}
		edges[[2]int32{a, b}] = true
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			for k := j + 1; k < n; k++ {
				a, b, c := ps.At(i), ps.At(j), ps.At(k)
				// Orient CCW.
				if orient2d(a[0], a[1], b[0], b[1], c[0], c[1]) < 0 {
					b, c = c, b
				}
				empty := true
				for l := 0; l < n && empty; l++ {
					if l == i || l == j || l == k {
						continue
					}
					p := ps.At(l)
					if incircle(a[0], a[1], b[0], b[1], c[0], c[1], p[0], p[1]) > 0 {
						empty = false
					}
				}
				if empty {
					addEdge(int32(i), int32(j))
					addEdge(int32(j), int32(k))
					addEdge(int32(i), int32(k))
				}
			}
		}
	}
	return edges
}

func TestDelaunayMatchesBruteForce(t *testing.T) {
	for _, n := range []int{4, 8, 16, 32} {
		for seed := int64(0); seed < 3; seed++ {
			ps := randomPoints2D(n, 100+seed)
			g, err := Delaunay2D(ps)
			if err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
			want := bruteDelaunayEdges(ps)
			got := make(map[[2]int32]bool)
			for v := 0; v < g.N; v++ {
				for _, u := range g.Neighbors(int32(v)) {
					if int32(v) < u {
						got[[2]int32{int32(v), u}] = true
					}
				}
			}
			for e := range want {
				if !got[e] {
					t.Errorf("n=%d seed=%d: missing Delaunay edge %v", n, seed, e)
				}
			}
			// The incremental algorithm may keep a few extra hull-adjacent
			// edges due to the finite super-triangle; interior edges must
			// agree exactly, so bound the surplus.
			if len(got) > len(want)+n/4+2 {
				t.Errorf("n=%d seed=%d: %d edges vs brute-force %d", n, seed, len(got), len(want))
			}
		}
	}
}

func TestDelaunayStructuralInvariants(t *testing.T) {
	for _, n := range []int{100, 1000, 5000} {
		ps := randomPoints2D(n, int64(n))
		g, err := Delaunay2D(ps)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// Planarity: m <= 3n - 6.
		if g.M() > int64(3*n-6) {
			t.Errorf("n=%d: %d edges violates planarity bound %d", n, g.M(), 3*n-6)
		}
		// A Delaunay triangulation of a point set in general position is
		// connected and has at least the hull edges; expect close to 3n.
		if g.M() < int64(2*n) {
			t.Errorf("n=%d: only %d edges, implausibly sparse", n, g.M())
		}
		m := &Mesh{Name: "t", Points: ps, G: g}
		lc := LargestComponent(m)
		if lc.N() != n {
			t.Errorf("n=%d: triangulation disconnected (%d in largest component)", n, lc.N())
		}
	}
}

func TestDelaunayDegeneracies(t *testing.T) {
	// Fewer than 3 points.
	for n := 0; n <= 2; n++ {
		ps := randomPoints2D(n, 1)
		g, err := Delaunay2D(ps)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if g.N != n {
			t.Fatalf("n=%d: wrong vertex count %d", n, g.N)
		}
	}
	// Cocircular points (square grid) with jitter: must not fail.
	ps := geom.NewPointSet(2, 0)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			ps.Append(geom.Point{
				float64(i) + rng.Float64()*1e-6,
				float64(j) + rng.Float64()*1e-6,
			}, 1)
		}
	}
	g, err := Delaunay2D(ps)
	if err != nil {
		t.Fatalf("jittered grid: %v", err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDelaunayWrongDim(t *testing.T) {
	ps := geom.NewPointSet(3, 1)
	ps.Append(geom.Point{1, 2, 3}, 1)
	if _, err := Delaunay2D(ps); err == nil {
		t.Fatal("expected dimension error")
	}
}

func BenchmarkDelaunay2D(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		ps := randomPoints2D(n, 42)
		b.Run(sizeName(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Delaunay2D(ps); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func sizeName(n int) string {
	switch {
	case n >= 1000000:
		return itoa(n/1000000) + "M"
	case n >= 1000:
		return itoa(n/1000) + "k"
	default:
		return itoa(n)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
