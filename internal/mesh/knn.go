package mesh

import (
	"fmt"
	"math"
	"sort"

	"geographer/internal/geom"
	"geographer/internal/graph"
)

// cellGrid buckets points into a uniform grid for neighborhood queries.
// It is the acceleration structure behind both the kNN graphs (3D meshes;
// DESIGN.md substitution for 3D Delaunay) and the radius graphs (the
// DIMACS rgg instances).
type cellGrid struct {
	ps     *geom.PointSet
	dim    int
	origin geom.Point
	side   float64
	nCells [3]int
	start  []int32 // CSR over flattened cells
	items  []int32
}

func newCellGrid(ps *geom.PointSet, side float64) *cellGrid {
	box := ps.Bounds()
	// Cap the total cell count at O(n): degenerate extents (collinear
	// points) or overly small requested sides would otherwise explode the
	// ring searches.
	maxTotal := 4*ps.Len() + 64
	for {
		total := 1
		for d := 0; d < ps.Dim; d++ {
			total *= int(box.Side(d)/side) + 1
			if total > maxTotal {
				break
			}
		}
		if total <= maxTotal {
			break
		}
		side *= math.Pow(float64(total)/float64(maxTotal), 1/float64(ps.Dim)) * 1.0001
	}
	g := &cellGrid{ps: ps, dim: ps.Dim, origin: box.Min, side: side}
	total := 1
	for d := 0; d < g.dim; d++ {
		c := int(box.Side(d)/side) + 1
		g.nCells[d] = c
		total *= c
	}
	for d := g.dim; d < 3; d++ {
		g.nCells[d] = 1
	}
	n := ps.Len()
	counts := make([]int32, total+1)
	cellOf := make([]int32, n)
	for i := 0; i < n; i++ {
		cellOf[i] = int32(g.flatten(g.cellOf(ps.At(i))))
		counts[cellOf[i]+1]++
	}
	for i := 0; i < total; i++ {
		counts[i+1] += counts[i]
	}
	g.start = counts
	g.items = make([]int32, n)
	pos := make([]int32, total)
	for i := 0; i < n; i++ {
		c := cellOf[i]
		g.items[g.start[c]+pos[c]] = int32(i)
		pos[c]++
	}
	return g
}

func (g *cellGrid) cellOf(p geom.Point) [3]int {
	var c [3]int
	for d := 0; d < g.dim; d++ {
		v := int((p[d] - g.origin[d]) / g.side)
		if v < 0 {
			v = 0
		}
		if v >= g.nCells[d] {
			v = g.nCells[d] - 1
		}
		c[d] = v
	}
	return c
}

func (g *cellGrid) flatten(c [3]int) int {
	return (c[2]*g.nCells[1]+c[1])*g.nCells[0] + c[0]
}

// cellItems returns the point indices in cell c.
func (g *cellGrid) cellItems(c [3]int) []int32 {
	f := g.flatten(c)
	return g.items[g.start[f]:g.start[f+1]]
}

// forRing calls fn for every cell at Chebyshev distance exactly r from
// center (r == 0 is the center cell), skipping cells outside the grid.
// Only the shell is enumerated — O(r^(dim-1)) work, not O(r^dim) — which
// matters when sparse regions force large rings.
func (g *cellGrid) forRing(center [3]int, r int, fn func(c [3]int)) {
	visit := func(dx, dy, dz int) {
		c := [3]int{center[0] + dx, center[1] + dy, center[2] + dz}
		for d := 0; d < g.dim; d++ {
			if c[d] < 0 || c[d] >= g.nCells[d] {
				return
			}
		}
		fn(c)
	}
	if r == 0 {
		visit(0, 0, 0)
		return
	}
	if g.dim == 2 {
		for dx := -r; dx <= r; dx++ {
			visit(dx, -r, 0)
			visit(dx, r, 0)
		}
		for dy := -r + 1; dy <= r-1; dy++ {
			visit(-r, dy, 0)
			visit(r, dy, 0)
		}
		return
	}
	// 3D: two full z-faces plus the four side bands.
	for dx := -r; dx <= r; dx++ {
		for dy := -r; dy <= r; dy++ {
			visit(dx, dy, -r)
			visit(dx, dy, r)
		}
	}
	for dz := -r + 1; dz <= r-1; dz++ {
		for dx := -r; dx <= r; dx++ {
			visit(dx, -r, dz)
			visit(dx, r, dz)
		}
		for dy := -r + 1; dy <= r-1; dy++ {
			visit(-r, dy, dz)
			visit(r, dy, dz)
		}
	}
}

func max3(a, b, c int) int {
	if b > a {
		a = b
	}
	if c > a {
		a = c
	}
	return a
}

// KNNGraph connects each point to its k nearest neighbors (symmetric
// closure). With k ≈ 10 in 3D the resulting mean degree ≈ 13–15 matches
// 3D Delaunay triangulations, the paper's 3D instance class.
func KNNGraph(ps *geom.PointSet, k int) (*graph.Graph, error) {
	n := ps.Len()
	if n == 0 {
		return graph.FromEdges(0, nil), nil
	}
	if k >= n {
		k = n - 1
	}
	if k < 1 {
		return graph.FromEdges(n, nil), nil
	}
	box := ps.Bounds()
	vol := 1.0
	for d := 0; d < ps.Dim; d++ {
		s := box.Side(d)
		if s <= 0 {
			s = 1e-9
		}
		vol *= s
	}
	// Aim for ~2k points per 3^dim neighborhood.
	side := math.Pow(vol*float64(2*k)/float64(n), 1/float64(ps.Dim)) / 2
	if side <= 0 || math.IsNaN(side) {
		side = 1e-9
	}
	g := newCellGrid(ps, side)

	maxRing := max3(g.nCells[0], g.nCells[1], g.nCells[2])
	type cand struct {
		idx   int32
		dist2 float64
	}
	edges := make([][2]int32, 0, n*k)
	best := make([]cand, 0, k+1)
	for i := 0; i < n; i++ {
		p := ps.At(i)
		center := g.cellOf(p)
		best = best[:0]
		worst := math.Inf(1)
		for r := 0; r <= maxRing; r++ {
			// Any point in a cell at Chebyshev ring r+1 is at least r·side
			// away; stop once the kth best beats that bound.
			if len(best) == k && float64(r-1)*side > math.Sqrt(worst) {
				break
			}
			g.forRing(center, r, func(c [3]int) {
				for _, j := range g.cellItems(c) {
					if int(j) == i {
						continue
					}
					d2 := geom.Dist2(p, ps.At(int(j)), ps.Dim)
					if len(best) < k {
						best = append(best, cand{j, d2})
						if len(best) == k {
							sort.Slice(best, func(a, b int) bool { return best[a].dist2 < best[b].dist2 })
							worst = best[k-1].dist2
						}
					} else if d2 < worst {
						// Replace current worst, keep sorted by insertion.
						pos := sort.Search(k, func(a int) bool { return best[a].dist2 > d2 })
						copy(best[pos+1:], best[pos:k-1])
						best[pos] = cand{j, d2}
						worst = best[k-1].dist2
					}
				}
			})
		}
		for _, c := range best {
			if int32(i) < c.idx {
				edges = append(edges, [2]int32{int32(i), c.idx})
			} else {
				edges = append(edges, [2]int32{c.idx, int32(i)})
			}
		}
	}
	return graph.FromEdges(n, edges), nil
}

// RadiusGraph connects all pairs within Euclidean distance radius (the
// random geometric graph construction of the DIMACS rgg instances).
func RadiusGraph(ps *geom.PointSet, radius float64) (*graph.Graph, error) {
	n := ps.Len()
	if n == 0 {
		return graph.FromEdges(0, nil), nil
	}
	if radius <= 0 {
		return nil, fmt.Errorf("mesh: radius %g must be positive", radius)
	}
	g := newCellGrid(ps, radius)
	r2 := radius * radius
	var edges [][2]int32
	for i := 0; i < n; i++ {
		p := ps.At(i)
		center := g.cellOf(p)
		for r := 0; r <= 1; r++ {
			g.forRing(center, r, func(c [3]int) {
				for _, j := range g.cellItems(c) {
					if j <= int32(i) {
						continue
					}
					if geom.Dist2(p, ps.At(int(j)), ps.Dim) <= r2 {
						edges = append(edges, [2]int32{int32(i), j})
					}
				}
			})
		}
	}
	return graph.FromEdges(n, edges), nil
}

// RGGRadiusForDegree returns the radius giving expected average degree deg
// for n uniform points in the unit square / cube.
func RGGRadiusForDegree(n int, dim int, deg float64) float64 {
	if dim == 2 {
		// E[deg] = n·π·r²
		return math.Sqrt(deg / (float64(n) * math.Pi))
	}
	// E[deg] = n·(4/3)π·r³
	return math.Cbrt(deg * 3 / (4 * math.Pi * float64(n)))
}
