package mesh

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"geographer/internal/geom"
	"geographer/internal/graph"
)

// METIS graph format support. The DIMACS challenge instances the paper
// evaluates on ship in this format; supporting it makes the repository
// interoperable with ParMetis/Zoltan tool chains. Coordinates travel in
// the companion ".xyz" format (one whitespace-separated coordinate line
// per vertex), as used by KaHIP and Geographer's original implementation.
//
// Graph file layout:
//
//	% comment lines
//	n m [fmt]          fmt: 3 digits "abc" — a: vertex sizes (unsupported),
//	                   b: vertex weights, c: edge weights (parsed, dropped)
//	<one line per vertex: [vwgt] neighbor1 neighbor2 ...>  (1-indexed)

// WriteMETIS serializes the mesh graph (with vertex weights when present)
// in METIS format.
func WriteMETIS(w io.Writer, m *Mesh) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%% %s, written by geographer\n", m.Name)
	format := "000"
	if m.Points.Weight != nil {
		format = "010"
	}
	fmt.Fprintf(bw, "%d %d %s\n", m.G.N, m.G.M(), format)
	for v := 0; v < m.G.N; v++ {
		first := true
		if m.Points.Weight != nil {
			// METIS vertex weights are integers.
			fmt.Fprintf(bw, "%d", int64(m.Points.Weight[v]+0.5))
			first = false
		}
		for _, u := range m.G.Neighbors(int32(v)) {
			if !first {
				fmt.Fprint(bw, " ")
			}
			fmt.Fprint(bw, u+1)
			first = false
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// ReadMETIS parses a METIS graph file, returning the graph and the vertex
// weights (nil when the file has none). Edge weights are parsed and
// dropped (this repository's metrics are unweighted, like the paper's).
func ReadMETIS(r io.Reader) (*graph.Graph, []float64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)
	line, err := nextDataLine(sc)
	if err != nil {
		return nil, nil, fmt.Errorf("metis: missing header: %w", err)
	}
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return nil, nil, fmt.Errorf("metis: bad header %q", line)
	}
	n, err := strconv.Atoi(fields[0])
	if err != nil || n < 0 {
		return nil, nil, fmt.Errorf("metis: bad vertex count %q", fields[0])
	}
	mEdges, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil || mEdges < 0 {
		return nil, nil, fmt.Errorf("metis: bad edge count %q", fields[1])
	}
	hasVWgt, hasEWgt := false, false
	if len(fields) >= 3 {
		f := fields[2]
		if len(f) > 3 {
			return nil, nil, fmt.Errorf("metis: bad format field %q", f)
		}
		for len(f) < 3 {
			f = "0" + f
		}
		if f[0] != '0' {
			return nil, nil, fmt.Errorf("metis: vertex sizes (fmt %q) unsupported", fields[2])
		}
		hasVWgt = f[1] != '0'
		hasEWgt = f[2] != '0'
	}

	var vwgt []float64
	if hasVWgt {
		vwgt = make([]float64, n)
	}
	edges := make([][2]int32, 0, mEdges)
	for v := 0; v < n; v++ {
		line, err := nextDataLine(sc)
		if err != nil {
			return nil, nil, fmt.Errorf("metis: vertex %d: %w", v+1, err)
		}
		fs := strings.Fields(line)
		i := 0
		if hasVWgt {
			if len(fs) == 0 {
				return nil, nil, fmt.Errorf("metis: vertex %d: missing weight", v+1)
			}
			w, err := strconv.ParseFloat(fs[0], 64)
			if err != nil || w < 0 {
				return nil, nil, fmt.Errorf("metis: vertex %d: bad weight %q", v+1, fs[0])
			}
			vwgt[v] = w
			i = 1
		}
		for ; i < len(fs); i++ {
			u, err := strconv.Atoi(fs[i])
			if err != nil || u < 1 || u > n {
				return nil, nil, fmt.Errorf("metis: vertex %d: bad neighbor %q", v+1, fs[i])
			}
			if hasEWgt {
				i++ // skip the edge weight token
				if i >= len(fs) {
					return nil, nil, fmt.Errorf("metis: vertex %d: dangling edge weight", v+1)
				}
			}
			if int32(u-1) > int32(v) { // each edge once; symmetry restored by FromEdges
				edges = append(edges, [2]int32{int32(v), int32(u - 1)})
			} else {
				edges = append(edges, [2]int32{int32(u - 1), int32(v)})
			}
		}
	}
	g := graph.FromEdges(n, edges)
	if g.M() != mEdges {
		// Not fatal: some writers count self-loops or duplicates
		// differently; report only gross mismatches.
		if g.M() < mEdges/2 || g.M() > 2*mEdges {
			return nil, nil, fmt.Errorf("metis: header claims %d edges, file has %d", mEdges, g.M())
		}
	}
	return g, vwgt, nil
}

func nextDataLine(sc *bufio.Scanner) (string, error) {
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		return line, nil
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", io.ErrUnexpectedEOF
}

// WriteXYZ writes one coordinate line per vertex.
func WriteXYZ(w io.Writer, ps *geom.PointSet) error {
	bw := bufio.NewWriter(w)
	n := ps.Len()
	for i := 0; i < n; i++ {
		p := ps.At(i)
		for d := 0; d < ps.Dim; d++ {
			if d > 0 {
				fmt.Fprint(bw, " ")
			}
			fmt.Fprintf(bw, "%g", p[d])
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// ReadXYZ parses coordinate lines; the dimension is inferred from the
// first line (2 or 3 columns).
func ReadXYZ(r io.Reader) (*geom.PointSet, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)
	var ps *geom.PointSet
	lineNo := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		lineNo++
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		fs := strings.Fields(line)
		if ps == nil {
			if len(fs) < 2 || len(fs) > 3 {
				return nil, fmt.Errorf("xyz: line %d: %d coordinates (want 2 or 3)", lineNo, len(fs))
			}
			ps = geom.NewPointSet(len(fs), 1024)
		}
		if len(fs) != ps.Dim {
			return nil, fmt.Errorf("xyz: line %d: %d coordinates, expected %d", lineNo, len(fs), ps.Dim)
		}
		var p geom.Point
		for d := 0; d < ps.Dim; d++ {
			v, err := strconv.ParseFloat(fs[d], 64)
			if err != nil {
				return nil, fmt.Errorf("xyz: line %d: %w", lineNo, err)
			}
			p[d] = v
		}
		ps.Append(p, 1)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if ps == nil {
		return nil, fmt.Errorf("xyz: empty file")
	}
	return ps, nil
}

// WriteMETISFiles writes mesh.graph (METIS) and mesh.xyz next to each
// other with the given path prefix.
func WriteMETISFiles(prefix string, m *Mesh) error {
	gf, err := os.Create(prefix + ".graph")
	if err != nil {
		return err
	}
	defer gf.Close()
	if err := WriteMETIS(gf, m); err != nil {
		return err
	}
	if err := gf.Close(); err != nil {
		return err
	}
	xf, err := os.Create(prefix + ".xyz")
	if err != nil {
		return err
	}
	defer xf.Close()
	if err := WriteXYZ(xf, m.Points); err != nil {
		return err
	}
	return xf.Close()
}

// ReadMETISFiles loads a mesh from a METIS graph file plus a coordinate
// file.
func ReadMETISFiles(graphPath, xyzPath string) (*Mesh, error) {
	gf, err := os.Open(graphPath)
	if err != nil {
		return nil, err
	}
	defer gf.Close()
	g, vwgt, err := ReadMETIS(gf)
	if err != nil {
		return nil, err
	}
	xf, err := os.Open(xyzPath)
	if err != nil {
		return nil, err
	}
	defer xf.Close()
	ps, err := ReadXYZ(xf)
	if err != nil {
		return nil, err
	}
	if ps.Len() != g.N {
		return nil, fmt.Errorf("metis: %d coordinates for %d vertices", ps.Len(), g.N)
	}
	ps.Weight = vwgt
	m := &Mesh{Name: strings.TrimSuffix(graphPath, ".graph"), Points: ps, G: g}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}
