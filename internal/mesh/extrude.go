package mesh

import (
	"fmt"
	"math"

	"geographer/internal/geom"
	"geographer/internal/graph"
)

// Extrude25D materializes the paper's 2.5D story (§1): climate meshes are
// "partitioned in 2D and then extended to a 3D mesh during the simulation
// using topography information", where the vertex weight of the 2D mesh
// is the number of 3D grid points below it.
//
// Given a weighted 2D surface mesh (weight = layer count, e.g. from
// GenClimate), Extrude25D builds that 3D mesh explicitly: vertex (v, l)
// exists for every surface vertex v and layer l < weight(v); vertical
// edges connect consecutive layers of one column; horizontal edges connect
// (u, l)-(v, l) whenever {u,v} is a surface edge and both columns reach
// layer l. The result lets experiments check that partitioning the
// weighted 2D mesh is equivalent in load terms to partitioning the full
// 3D mesh column-wise.
func Extrude25D(surface *Mesh, layerHeight float64) (*Mesh, error) {
	if surface.Points.Dim != 2 {
		return nil, fmt.Errorf("mesh: Extrude25D needs a 2D mesh, got dim %d", surface.Points.Dim)
	}
	if surface.Points.Weight == nil {
		return nil, fmt.Errorf("mesh: Extrude25D needs layer weights")
	}
	if layerHeight <= 0 {
		layerHeight = 0.01
	}
	n2 := surface.N()
	layers := make([]int, n2)
	total := 0
	for v := 0; v < n2; v++ {
		l := int(math.Max(1, math.Floor(surface.Points.Weight[v])))
		layers[v] = l
		total += l
	}

	// Column base index per surface vertex.
	base := make([]int, n2+1)
	for v := 0; v < n2; v++ {
		base[v+1] = base[v] + layers[v]
	}

	ps := geom.NewPointSet(3, total)
	for v := 0; v < n2; v++ {
		p := surface.Points.At(v)
		for l := 0; l < layers[v]; l++ {
			ps.Append(geom.Point{p[0], p[1], -float64(l) * layerHeight}, 1)
		}
	}

	var edges [][2]int32
	for v := 0; v < n2; v++ {
		// Vertical column edges.
		for l := 0; l+1 < layers[v]; l++ {
			edges = append(edges, [2]int32{int32(base[v] + l), int32(base[v] + l + 1)})
		}
		// Horizontal edges per shared layer.
		for _, u := range surface.G.Neighbors(int32(v)) {
			if u <= int32(v) {
				continue
			}
			shared := layers[v]
			if lu := layers[u]; lu < shared {
				shared = lu
			}
			for l := 0; l < shared; l++ {
				edges = append(edges, [2]int32{int32(base[v] + l), int32(base[int(u)] + l)})
			}
		}
	}
	g := graph.FromEdges(total, edges)
	return &Mesh{Name: surface.Name + "-3d", Points: ps, G: g}, nil
}

// ColumnOf returns, for an extruded mesh built from `surface`, the mapping
// from 3D vertex index to its surface column, so a 2D partition can be
// lifted to the 3D mesh (each column inherits its surface block).
func ColumnOf(surface *Mesh) ([]int32, error) {
	if surface.Points.Weight == nil {
		return nil, fmt.Errorf("mesh: ColumnOf needs layer weights")
	}
	var out []int32
	for v := 0; v < surface.N(); v++ {
		l := int(math.Max(1, math.Floor(surface.Points.Weight[v])))
		for i := 0; i < l; i++ {
			out = append(out, int32(v))
		}
	}
	return out, nil
}

// LiftPartition lifts a surface partition to the extruded 3D mesh
// (column-wise assignment, the way climate codes apply 2D partitions).
func LiftPartition(surface *Mesh, part2d []int32) ([]int32, error) {
	if len(part2d) != surface.N() {
		return nil, fmt.Errorf("mesh: partition length %d != surface n %d", len(part2d), surface.N())
	}
	cols, err := ColumnOf(surface)
	if err != nil {
		return nil, err
	}
	out := make([]int32, len(cols))
	for i, c := range cols {
		out[i] = part2d[c]
	}
	return out, nil
}
