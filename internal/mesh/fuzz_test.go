package mesh

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadMETIS checks the METIS parser never panics and that anything it
// accepts is a structurally valid graph.
func FuzzReadMETIS(f *testing.F) {
	f.Add("7 11\n5 3 2\n1 3 4\n5 4 2 1\n2 3 6 7\n1 3 6\n5 4 7\n6 4\n")
	f.Add("3 2 010\n4 2\n1 1 3\n2 2\n")
	f.Add("2 1 001\n2 9\n1 9\n")
	f.Add("% comment\n1 0\n\n")
	f.Add("0 0\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, vwgt, err := ReadMETIS(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted invalid graph: %v", err)
		}
		if vwgt != nil && len(vwgt) != g.N {
			t.Fatalf("weights length %d for %d vertices", len(vwgt), g.N)
		}
	})
}

// FuzzMeshBinaryRead checks the binary reader rejects corrupt input
// without panicking and never accepts a structurally broken mesh.
func FuzzMeshBinaryRead(f *testing.F) {
	m, err := GenDelaunayUniform2D(60, 1)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("GGM1 garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		back, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := back.Validate(); err != nil {
			t.Fatalf("accepted invalid mesh: %v", err)
		}
	})
}

// FuzzReadXYZ checks the coordinate parser.
func FuzzReadXYZ(f *testing.F) {
	f.Add("1 2\n3 4\n")
	f.Add("1 2 3\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		ps, err := ReadXYZ(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := ps.Validate(); err != nil {
			t.Fatalf("accepted invalid point set: %v", err)
		}
	})
}
