package mesh

import (
	"fmt"
	"math"
	"sort"

	"geographer/internal/geom"
	"geographer/internal/graph"
)

// Mesh couples a weighted point set with its adjacency graph. This is the
// common input of all experiments: partitioners consume the points (and
// weights, for 2.5D meshes), the evaluation metrics consume the graph.
type Mesh struct {
	Name   string
	Points *geom.PointSet
	G      *graph.Graph
}

// N returns the number of vertices.
func (m *Mesh) N() int { return m.Points.Len() }

// Validate checks that points and graph agree and both are well-formed.
func (m *Mesh) Validate() error {
	if err := m.Points.Validate(); err != nil {
		return fmt.Errorf("mesh %s: %w", m.Name, err)
	}
	if m.G.N != m.Points.Len() {
		return fmt.Errorf("mesh %s: %d vertices vs %d points", m.Name, m.G.N, m.Points.Len())
	}
	if err := m.G.Validate(); err != nil {
		return fmt.Errorf("mesh %s: %w", m.Name, err)
	}
	return nil
}

// String summarizes the mesh.
func (m *Mesh) String() string {
	return fmt.Sprintf("%s: n=%d m=%d dim=%d avgdeg=%.1f",
		m.Name, m.N(), m.G.M(), m.Points.Dim, m.G.AvgDegree())
}

// LargestComponent returns the sub-mesh induced by the largest connected
// component (vertex ids are compacted). Ocean meshes become disconnected
// when continents are cut out; the paper's climate graphs are the
// connected ocean part.
func LargestComponent(m *Mesh) *Mesh {
	comp, count := graph.Components(m.G)
	if count <= 1 {
		return m
	}
	sizes := make([]int, count)
	for _, c := range comp {
		sizes[c]++
	}
	best := 0
	for c, s := range sizes {
		if s > sizes[best] {
			best = c
		}
	}
	keep := make([]int, 0, sizes[best])
	remap := make([]int32, m.G.N)
	for v := 0; v < m.G.N; v++ {
		if comp[v] == int32(best) {
			remap[v] = int32(len(keep))
			keep = append(keep, v)
		} else {
			remap[v] = -1
		}
	}
	var edges [][2]int32
	for _, v := range keep {
		for _, u := range m.G.Neighbors(int32(v)) {
			if remap[u] >= 0 && remap[v] < remap[u] {
				edges = append(edges, [2]int32{remap[v], remap[u]})
			}
		}
	}
	return &Mesh{
		Name:   m.Name,
		Points: m.Points.Subset(keep),
		G:      graph.FromEdges(len(keep), edges),
	}
}

// FilterLongEdges removes edges longer than factor × the median edge
// length. Delaunay triangulations of masked domains (ocean meshes) span
// the holes with long edges; dropping them restores the coastline.
func FilterLongEdges(m *Mesh, factor float64) *Mesh {
	type edge struct {
		u, v int32
		len2 float64
	}
	var edges []edge
	for v := 0; v < m.G.N; v++ {
		for _, u := range m.G.Neighbors(int32(v)) {
			if int32(v) < u {
				d := geom.Dist2(m.Points.At(v), m.Points.At(int(u)), m.Points.Dim)
				edges = append(edges, edge{int32(v), u, d})
			}
		}
	}
	if len(edges) == 0 {
		return m
	}
	lens := make([]float64, len(edges))
	for i, e := range edges {
		lens[i] = e.len2
	}
	sort.Float64s(lens)
	cut := lens[len(lens)/2] * factor * factor
	keep := make([][2]int32, 0, len(edges))
	for _, e := range edges {
		if e.len2 <= cut {
			keep = append(keep, [2]int32{e.u, e.v})
		}
	}
	return &Mesh{Name: m.Name, Points: m.Points, G: graph.FromEdges(m.G.N, keep)}
}

// EdgeLengthStats returns min/median/max Euclidean edge lengths.
func EdgeLengthStats(m *Mesh) (min, median, max float64) {
	var lens []float64
	for v := 0; v < m.G.N; v++ {
		for _, u := range m.G.Neighbors(int32(v)) {
			if int32(v) < u {
				lens = append(lens, geom.Dist(m.Points.At(v), m.Points.At(int(u)), m.Points.Dim))
			}
		}
	}
	if len(lens) == 0 {
		return 0, 0, 0
	}
	sort.Float64s(lens)
	return lens[0], lens[len(lens)/2], lens[len(lens)-1]
}

// boundingBoxDiag is a convenience used by generators for scale-dependent
// thresholds.
func boundingBoxDiag(ps *geom.PointSet) float64 {
	d := ps.Bounds().Diagonal()
	if d == 0 || math.IsInf(d, 0) || math.IsNaN(d) {
		return 1
	}
	return d
}
