package serve

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"geographer/internal/core"
	"geographer/internal/geom"
	"geographer/internal/mesh"
	"geographer/internal/mpi"
	"geographer/internal/partition"
	"geographer/internal/repart"
	"geographer/internal/sched"
)

// tenantMesh builds a distinct small workload per tenant id.
func tenantMesh(t *testing.T, n int, id int64) *mesh.Mesh {
	t.Helper()
	m, err := mesh.GenRefinedTri(n, 40+id)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// phaseWeights is the stream experiments' spatially correlated load wave
// at phase step.
func phaseWeights(m *mesh.Mesh, step int) []float64 {
	ps := m.Points
	out := make([]float64, ps.Len())
	for i := range out {
		x := ps.Coords[i*ps.Dim]
		y := ps.Coords[i*ps.Dim+1]
		out[i] = ps.W(i) * (1 + 0.4*math.Sin(0.08*x+0.05*y+0.9*float64(step)))
	}
	return out
}

// mixtureTenant builds a d-dimensional Gaussian-mixture tenant — the
// feature-space workload (d > geom.MaxDim) served through the same
// registry verbs as the spatial mesh tenants.
func mixtureTenant(n, dim, m int, seed int64) *geom.PointSet {
	rng := rand.New(rand.NewSource(seed))
	centers := make([]float64, m*dim)
	for i := range centers {
		centers[i] = rng.Float64() * 10
	}
	ps := &geom.PointSet{Dim: dim, Coords: make([]float64, n*dim)}
	for i := 0; i < n; i++ {
		c := centers[(i%m)*dim : (i%m+1)*dim]
		for d := 0; d < dim; d++ {
			ps.Coords[i*dim+d] = c[d] + rng.NormFloat64()
		}
	}
	return ps
}

// featureWeights is the load wave of the feature-space tenants.
func featureWeights(ps *geom.PointSet, step int) []float64 {
	out := make([]float64, ps.Len())
	for i := range out {
		x := ps.Coords[i*ps.Dim]
		y := ps.Coords[i*ps.Dim+ps.Dim-1]
		out[i] = 1 + 0.4*math.Sin(0.3*x+0.2*y+0.9*float64(step))
	}
	return out
}

// soloChain runs the reference chain outside the registry: cold
// partition, then steps warm repartitions under the phase weights.
// Returns each step's assignment (index 0 = cold) and the per-step
// stats (index 0 zero-valued).
func soloChain(t *testing.T, m *mesh.Mesh, k, p, steps int) ([][]int32, []repart.Stats) {
	t.Helper()
	return soloChainPts(t, m.Points, func(step int) []float64 { return phaseWeights(m, step) }, k, p, steps)
}

// soloChainPts is soloChain over a bare point set with an arbitrary
// per-step weight wave (any dimension).
func soloChainPts(t *testing.T, base *geom.PointSet, weightsAt func(int) []float64, k, p, steps int) ([][]int32, []repart.Stats) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Seed = 1
	ps := &geom.PointSet{Dim: base.Dim, Coords: base.Coords, Weight: weightsAt(0)}
	s, err := repart.NewSession(mpi.NewWorld(p), ps.Clone(), k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	chain := make([][]int32, 0, steps+1)
	stats := make([]repart.Stats, 1, steps+1)
	p0, err := s.Partition()
	if err != nil {
		t.Fatal(err)
	}
	chain = append(chain, append([]int32(nil), p0.Assign...))
	for step := 1; step <= steps; step++ {
		if err := s.UpdateWeights(weightsAt(step)); err != nil {
			t.Fatal(err)
		}
		pt, st, _, err := s.RepartitionIfAbove(0)
		if err != nil {
			t.Fatalf("solo step %d: %v", step, err)
		}
		chain = append(chain, append([]int32(nil), pt.Assign...))
		stats = append(stats, st)
	}
	return chain, stats
}

func assertSameAssign(t *testing.T, label string, got, want []int32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d assignments, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: assignment differs at point %d (%d vs %d)", label, i, got[i], want[i])
		}
	}
}

// TestRegistryChainMatchesSolo: a tenant's chain through the registry —
// under a constrained worker budget — is bit-identical to the plain
// session chain, and the worker budget (1 vs full) changes nothing.
func TestRegistryChainMatchesSolo(t *testing.T) {
	const n, k, p, steps = 1500, 8, 2, 3
	m := tenantMesh(t, n, 0)
	ref, refStats := soloChain(t, m, k, p, steps)

	for _, workers := range []int{0, 1, 3} {
		g := NewRegistry(Config{})
		ps := &geom.PointSet{Dim: m.Points.Dim, Coords: m.Points.Coords, Weight: phaseWeights(m, 0)}
		if err := g.Create(nil, "sim", ps, TenantOptions{K: k, Processes: p, Workers: workers}); err != nil {
			t.Fatal(err)
		}
		p0, err := g.Partition(nil, "sim")
		if err != nil {
			t.Fatal(err)
		}
		assertSameAssign(t, fmt.Sprintf("workers=%d cold", workers), p0.Assign, ref[0])
		for step := 1; step <= steps; step++ {
			if err := g.UpdateWeights("sim", phaseWeights(m, step)); err != nil {
				t.Fatal(err)
			}
			pt, st, acted, err := g.RepartitionIfAbove(nil, "sim", 0)
			if err != nil {
				t.Fatalf("workers=%d step %d: %v", workers, step, err)
			}
			if !acted {
				t.Fatalf("workers=%d step %d: did not act", workers, step)
			}
			assertSameAssign(t, fmt.Sprintf("workers=%d step %d", workers, step), pt.Assign, ref[step])
			if st.DistCalcs != refStats[step].DistCalcs {
				t.Fatalf("workers=%d step %d: %d distance calcs, solo %d",
					workers, step, st.DistCalcs, refStats[step].DistCalcs)
			}
		}
		g.Drain()
	}
}

// TestEvictionRoundTrip force-evicts mid-chain — with carried
// incremental bounds resident and a weight delta pending — restores on
// the next touch, and pins the next warm step bit-identical to the
// never-evicted chain, still on the incremental fast path. Runs once on
// a spatial mesh tenant (d=2) and once on a feature-space tenant (d=8,
// through the generic kernels and the dimension-strided checkpoint
// codec).
func TestEvictionRoundTrip(t *testing.T) {
	t.Run("mesh-d2", func(t *testing.T) {
		m := tenantMesh(t, 1500, 1)
		runEvictionRoundTrip(t, m.Points, func(step int) []float64 { return phaseWeights(m, step) }, 8, 2, 3)
	})
	t.Run("feature-d8", func(t *testing.T) {
		ps := mixtureTenant(1200, 8, 6, 11)
		runEvictionRoundTrip(t, ps, func(step int) []float64 { return featureWeights(ps, step) }, 6, 2, 3)
	})
}

func runEvictionRoundTrip(t *testing.T, base *geom.PointSet, weightsAt func(int) []float64, k, p, steps int) {
	ref, refStats := soloChainPts(t, base, weightsAt, k, p, steps)
	if !refStats[steps].Incremental {
		t.Fatalf("reference chain's final step did not carry bounds; test needs the incremental path")
	}

	g := NewRegistry(Config{})
	ps := &geom.PointSet{Dim: base.Dim, Coords: base.Coords, Weight: weightsAt(0)}
	if err := g.Create(nil, "sim", ps, TenantOptions{K: k, Processes: p}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Partition(nil, "sim"); err != nil {
		t.Fatal(err)
	}
	// Two warm steps so the carried Hamerly bounds are resident.
	for step := 1; step < steps; step++ {
		if err := g.UpdateWeights("sim", weightsAt(step)); err != nil {
			t.Fatal(err)
		}
		if _, st, _, err := g.RepartitionIfAbove(nil, "sim", 0); err != nil {
			t.Fatal(err)
		} else if step > 1 && !st.Incremental {
			t.Fatalf("step %d not incremental before eviction", step)
		}
	}

	// Queue a weight delta, then park the tenant: the pending flag and
	// the carried bounds must travel through the checkpoint.
	if err := g.UpdateWeights("sim", weightsAt(steps)); err != nil {
		t.Fatal(err)
	}
	if err := g.Evict("sim"); err != nil {
		t.Fatal(err)
	}
	if st := g.Stats(); st.Parked != 1 || st.Evictions != 1 || st.Resident != 0 {
		t.Fatalf("after evict: %+v", st)
	}
	if err := g.Evict("sim"); err != nil { // idempotent
		t.Fatal(err)
	}

	// Next touch restores and must reproduce the never-evicted step —
	// same bits, same distance-evaluation count, still incremental.
	pt, st, acted, err := g.RepartitionIfAbove(nil, "sim", 0)
	if err != nil || !acted {
		t.Fatalf("post-restore step: acted=%v err=%v", acted, err)
	}
	assertSameAssign(t, "post-restore step", pt.Assign, ref[steps])
	if !st.Incremental {
		t.Fatal("post-restore step fell off the incremental fast path")
	}
	if st.DistCalcs != refStats[steps].DistCalcs {
		t.Fatalf("post-restore step: %d distance calcs, never-evicted chain %d", st.DistCalcs, refStats[steps].DistCalcs)
	}
	if rs := g.Stats(); rs.Restores != 1 || rs.Resident != 1 {
		t.Fatalf("after restore: %+v", rs)
	}
}

// retryAdmission retries fn while it reports ErrAdmission — the
// registry's "try again later" signal, raised when every resident
// tenant is mid-verb and none can be evicted right now. Real clients
// see it as HTTP 429.
func retryAdmission(t *testing.T, label string, fn func() error) error {
	t.Helper()
	for attempt := 0; ; attempt++ {
		err := fn()
		if !errors.Is(err, ErrAdmission) {
			return err
		}
		if attempt > 100000 {
			return fmt.Errorf("%s: still rejected after %d attempts: %w", label, attempt, err)
		}
		runtime.Gosched()
	}
}

// TestRegistryRace drives 8 tenants concurrently through
// Create/Partition/UpdateWeights/RepartitionIfAbove/Checkpoint/Delete
// while a chaos goroutine force-evicts, sweeps, and lists — under a
// resident budget that holds only about half the tenants, so
// admission-pressure eviction and restore-on-touch fire constantly.
// Every tenant's chain must stay bit-identical to its solo reference.
func TestRegistryRace(t *testing.T) {
	const tenants, n, k, p, steps = 8, 900, 6, 2, 3

	meshes := make([]*mesh.Mesh, tenants)
	refs := make([][][]int32, tenants)
	for id := range meshes {
		meshes[id] = tenantMesh(t, n, int64(id))
		refs[id], _ = soloChain(t, meshes[id], k, p, steps)
	}

	budget := 4 * residentBytesEstimate(n, 2, k, p)
	g := NewRegistry(Config{
		Pool:             sched.NewPool(4),
		MaxResidentBytes: budget,
	})

	done := make(chan struct{})
	var chaos sync.WaitGroup
	chaos.Add(1)
	go func() {
		defer chaos.Done()
		i := 0
		for {
			select {
			case <-done:
				return
			default:
			}
			_ = g.Evict(fmt.Sprintf("tenant-%d", i%tenants))
			g.Sweep(50)
			g.List()
			g.Stats()
			i++
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, tenants)
	for id := 0; id < tenants; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			name := fmt.Sprintf("tenant-%d", id)
			m := meshes[id]
			ps := &geom.PointSet{Dim: m.Points.Dim, Coords: m.Points.Coords, Weight: phaseWeights(m, 0)}
			if err := retryAdmission(t, name, func() error {
				return g.Create(nil, name, ps, TenantOptions{K: k, Processes: p, Workers: 2})
			}); err != nil {
				errs <- fmt.Errorf("%s create: %w", name, err)
				return
			}
			var p0 partition.P
			if err := retryAdmission(t, name, func() error {
				var err error
				p0, err = g.Partition(nil, name)
				return err
			}); err != nil {
				errs <- fmt.Errorf("%s cold: %w", name, err)
				return
			}
			for i := range p0.Assign {
				if p0.Assign[i] != refs[id][0][i] {
					errs <- fmt.Errorf("%s cold: differs at %d", name, i)
					return
				}
			}
			for step := 1; step <= steps; step++ {
				if err := retryAdmission(t, name, func() error {
					return g.UpdateWeights(name, phaseWeights(m, step))
				}); err != nil {
					errs <- fmt.Errorf("%s step %d weights: %w", name, step, err)
					return
				}
				var pt partition.P
				var acted bool
				if err := retryAdmission(t, name, func() error {
					var err error
					pt, _, acted, err = g.RepartitionIfAbove(nil, name, 0)
					return err
				}); err != nil || !acted {
					errs <- fmt.Errorf("%s step %d: acted=%v err=%w", name, step, acted, err)
					return
				}
				for i := range pt.Assign {
					if pt.Assign[i] != refs[id][step][i] {
						errs <- fmt.Errorf("%s step %d: differs at %d", name, step, i)
						return
					}
				}
			}
			if err := retryAdmission(t, name, func() error {
				_, err := g.Checkpoint(name)
				return err
			}); err != nil {
				errs <- fmt.Errorf("%s checkpoint: %w", name, err)
				return
			}
			if err := g.Delete(name); err != nil {
				errs <- fmt.Errorf("%s delete: %w", name, err)
			}
		}(id)
	}
	wg.Wait()
	close(done)
	chaos.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if st := g.Stats(); st.Tenants != 0 {
		t.Fatalf("tenants left after deletes: %+v", st)
	}
}

// TestAdmissionControl: a budget holding one tenant evicts LRU on the
// second Create; touching the parked tenant restores it (evicting the
// other); a budget too small for anyone rejects with ErrAdmission, as
// does the tenant-count cap.
func TestAdmissionControl(t *testing.T) {
	const n, k, p = 900, 6, 2
	mA, mB := tenantMesh(t, n, 2), tenantMesh(t, n, 3)
	one := residentBytesEstimate(mA.Points.Len(), 2, k, p)

	g := NewRegistry(Config{MaxResidentBytes: one + one/2})
	psA := &geom.PointSet{Dim: mA.Points.Dim, Coords: mA.Points.Coords, Weight: phaseWeights(mA, 0)}
	psB := &geom.PointSet{Dim: mB.Points.Dim, Coords: mB.Points.Coords, Weight: phaseWeights(mB, 0)}
	if err := g.Create(nil, "a", psA, TenantOptions{K: k, Processes: p}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Partition(nil, "a"); err != nil {
		t.Fatal(err)
	}
	if err := g.Create(nil, "b", psB, TenantOptions{K: k, Processes: p}); err != nil {
		t.Fatalf("second create should evict, got %v", err)
	}
	st := g.Stats()
	if st.Evictions != 1 || st.Resident != 1 || st.Parked != 1 {
		t.Fatalf("after pressure create: %+v", st)
	}

	// Touching a restores it (and must not lose its partition).
	imb, err := g.Imbalance("a")
	if err != nil {
		t.Fatalf("imbalance of restored tenant: %v", err)
	}
	if math.IsNaN(imb) || imb < 0 {
		t.Fatalf("imbalance %g", imb)
	}
	if st := g.Stats(); st.Restores != 1 || st.Evictions != 2 {
		t.Fatalf("after restore-on-touch: %+v", st)
	}

	// A budget below a single tenant admits nobody.
	tiny := NewRegistry(Config{MaxResidentBytes: one / 2})
	if err := tiny.Create(nil, "x", psA, TenantOptions{K: k, Processes: p}); !errors.Is(err, ErrAdmission) {
		t.Fatalf("tiny budget: %v", err)
	}
	if st := tiny.Stats(); st.Tenants != 0 || st.ResidentBytes != 0 {
		t.Fatalf("tiny registry leaked accounting: %+v", st)
	}

	// Tenant-count cap.
	capped := NewRegistry(Config{MaxTenants: 1})
	if err := capped.Create(nil, "a", psA, TenantOptions{K: k, Processes: p}); err != nil {
		t.Fatal(err)
	}
	if err := capped.Create(nil, "b", psB, TenantOptions{K: k, Processes: p}); !errors.Is(err, ErrAdmission) {
		t.Fatalf("count cap: %v", err)
	}
}

// TestRegistryErrors pins the typed error surface.
func TestRegistryErrors(t *testing.T) {
	const n, k, p = 600, 4, 2
	m := tenantMesh(t, n, 4)
	ps := &geom.PointSet{Dim: m.Points.Dim, Coords: m.Points.Coords, Weight: phaseWeights(m, 0)}

	g := NewRegistry(Config{})
	if _, err := g.Partition(nil, "ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing tenant: %v", err)
	}
	if err := g.Evict("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("evict missing: %v", err)
	}
	if err := g.Delete("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("delete missing: %v", err)
	}
	if err := g.Create(nil, "sim", ps, TenantOptions{K: k, Processes: p}); err != nil {
		t.Fatal(err)
	}
	if err := g.Create(nil, "sim", ps, TenantOptions{K: k, Processes: p}); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create: %v", err)
	}
	if err := g.Create(nil, "", ps, TenantOptions{K: k, Processes: p}); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := g.Create(nil, "bad", ps, TenantOptions{K: 0, Processes: p}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if err := g.Create(nil, "bad", ps, TenantOptions{K: k, Workers: -1}); err == nil {
		t.Fatal("negative workers accepted")
	}
	if _, _, err := g.Repartition(nil, "sim"); err == nil {
		t.Fatal("warm step without a partition accepted")
	}

	g.Drain()
	if _, err := g.Partition(nil, "sim"); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain verb: %v", err)
	}
	if err := g.Create(nil, "late", ps, TenantOptions{K: k}); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain create: %v", err)
	}
	g.Drain() // idempotent
	if st := g.Stats(); st.Tenants != 0 || st.ResidentBytes != 0 || !st.Draining {
		t.Fatalf("post-drain stats: %+v", st)
	}
}

// TestSweepParksIdleTenants: a tenant untouched for maxIdle verbs is
// parked by Sweep; an active one stays resident.
func TestSweepParksIdleTenants(t *testing.T) {
	const n, k, p = 600, 4, 2
	m := tenantMesh(t, n, 5)
	ps := &geom.PointSet{Dim: m.Points.Dim, Coords: m.Points.Coords, Weight: phaseWeights(m, 0)}
	g := NewRegistry(Config{})
	if err := g.Create(nil, "idle", ps, TenantOptions{K: k, Processes: p}); err != nil {
		t.Fatal(err)
	}
	if err := g.Create(nil, "busy", ps, TenantOptions{K: k, Processes: p}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Partition(nil, "idle"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := g.Partition(nil, "busy"); err != nil {
			t.Fatal(err)
		}
	}
	if parked := g.Sweep(5); parked != 1 {
		t.Fatalf("sweep parked %d tenants, want 1 (the idle one)", parked)
	}
	infos := g.List()
	for _, ti := range infos {
		wantResident := ti.Name == "busy"
		if ti.Resident != wantResident {
			t.Fatalf("tenant %s resident=%v after sweep", ti.Name, ti.Resident)
		}
	}
}
