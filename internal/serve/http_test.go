package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"geographer/internal/repart"
)

// httpDo runs one request against the handler and decodes the JSON
// response into out (skipped when out is nil).
func httpDo(t *testing.T, h http.Handler, method, path string, body any, wantStatus int, out any) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req := httptest.NewRequest(method, path, &buf)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != wantStatus {
		t.Fatalf("%s %s: status %d (body %s), want %d", method, path, rec.Code, rec.Body.String(), wantStatus)
	}
	if out != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: decode response %q: %v", method, path, rec.Body.String(), err)
		}
	}
}

// TestHTTPLifecycle drives a full tenant lifecycle over the HTTP API
// and pins the chain bit-identical to the solo session reference.
func TestHTTPLifecycle(t *testing.T) {
	const n, k, p, steps = 1200, 6, 2, 2
	m := tenantMesh(t, n, 7)
	ref, _ := soloChain(t, m, k, p, steps)

	g := NewRegistry(Config{})
	h := NewHandler(g)

	create := createRequest{
		Name: "sim", Dim: m.Points.Dim, Coords: m.Points.Coords,
		Weights: phaseWeights(m, 0), K: k, Processes: p,
	}
	httpDo(t, h, "POST", "/v1/tenants", create, http.StatusCreated, nil)

	var cold stepResponse
	httpDo(t, h, "POST", "/v1/tenants/sim/partition", nil, http.StatusOK, &cold)
	assertSameAssign(t, "http cold", cold.Assign, ref[0])

	for step := 1; step <= steps; step++ {
		httpDo(t, h, "POST", "/v1/tenants/sim/weights",
			map[string]any{"weights": phaseWeights(m, step)}, http.StatusOK, nil)
		var resp stepResponse
		httpDo(t, h, "POST", "/v1/tenants/sim/repartition",
			map[string]float64{"eps": 0}, http.StatusOK, &resp)
		if !resp.Acted {
			t.Fatalf("http step %d did not act", step)
		}
		assertSameAssign(t, fmt.Sprintf("http step %d", step), resp.Assign, ref[step])
	}

	// Skip branch: a huge threshold reports without stepping.
	var skip stepResponse
	httpDo(t, h, "POST", "/v1/tenants/sim/repartition",
		map[string]float64{"eps": 1e9}, http.StatusOK, &skip)
	if skip.Acted || skip.Assign != nil {
		t.Fatalf("threshold skip acted: %+v", skip)
	}

	var imb map[string]float64
	httpDo(t, h, "GET", "/v1/tenants/sim/imbalance", nil, http.StatusOK, &imb)
	var assign map[string][]int32
	httpDo(t, h, "GET", "/v1/tenants/sim/assign", nil, http.StatusOK, &assign)
	assertSameAssign(t, "http assign", assign["assign"], ref[steps])

	// Checkpoint round-trips through the public restore path.
	req := httptest.NewRequest("GET", "/v1/tenants/sim/checkpoint", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || rec.Header().Get("Content-Type") != "application/octet-stream" {
		t.Fatalf("checkpoint: status %d type %s", rec.Code, rec.Header().Get("Content-Type"))
	}
	if info, err := repart.ReadCheckpointInfo(rec.Body.Bytes()); err != nil || info.N != m.Points.Len() {
		t.Fatalf("checkpoint header: %+v err=%v", info, err)
	}

	httpDo(t, h, "POST", "/v1/tenants/sim/evict", nil, http.StatusOK, nil)
	var infos []TenantInfo
	httpDo(t, h, "GET", "/v1/tenants", nil, http.StatusOK, &infos)
	if len(infos) != 1 || infos[0].Resident {
		t.Fatalf("after evict: %+v", infos)
	}
	var ti TenantInfo
	httpDo(t, h, "GET", "/v1/tenants/sim", nil, http.StatusOK, &ti)
	if ti.Name != "sim" || ti.Evicted != 1 {
		t.Fatalf("tenant info: %+v", ti)
	}

	// Restore-on-touch through HTTP: imbalance works on a parked tenant.
	httpDo(t, h, "GET", "/v1/tenants/sim/imbalance", nil, http.StatusOK, &imb)
	var st RegistryStats
	httpDo(t, h, "GET", "/v1/stats", nil, http.StatusOK, &st)
	if st.Restores != 1 || st.Resident != 1 {
		t.Fatalf("stats after restore: %+v", st)
	}

	httpDo(t, h, "DELETE", "/v1/tenants/sim", nil, http.StatusOK, nil)
	httpDo(t, h, "GET", "/v1/tenants/sim", nil, http.StatusNotFound, nil)
}

// TestHTTPErrorMapping pins each typed error to its status code.
func TestHTTPErrorMapping(t *testing.T) {
	const n, k, p = 600, 4, 2
	m := tenantMesh(t, n, 8)

	g := NewRegistry(Config{MaxTenants: 1})
	h := NewHandler(g)

	// 404: unknown tenant.
	httpDo(t, h, "POST", "/v1/tenants/ghost/partition", nil, http.StatusNotFound, nil)
	// 400: validation (k missing).
	httpDo(t, h, "POST", "/v1/tenants",
		createRequest{Name: "bad", Dim: m.Points.Dim, Coords: m.Points.Coords},
		http.StatusBadRequest, nil)
	// 400: malformed body.
	req := httptest.NewRequest("POST", "/v1/tenants", bytes.NewBufferString("{"))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed body: %d", rec.Code)
	}

	create := createRequest{Name: "sim", Dim: m.Points.Dim, Coords: m.Points.Coords, K: k, Processes: p}
	httpDo(t, h, "POST", "/v1/tenants", create, http.StatusCreated, nil)
	// 409: duplicate name.
	httpDo(t, h, "POST", "/v1/tenants", create, http.StatusConflict, nil)
	// 429: tenant cap.
	other := create
	other.Name = "sim2"
	httpDo(t, h, "POST", "/v1/tenants", other, http.StatusTooManyRequests, nil)
	// 400: warm step before any partition exists.
	httpDo(t, h, "POST", "/v1/tenants/sim/repartition", map[string]float64{"eps": 0}, http.StatusBadRequest, nil)
	// 400: wrong weight count.
	httpDo(t, h, "POST", "/v1/tenants/sim/weights", map[string]any{"weights": []float64{1}}, http.StatusBadRequest, nil)

	// 503: draining.
	g.Drain()
	httpDo(t, h, "POST", "/v1/tenants/sim/partition", nil, http.StatusServiceUnavailable, nil)
	httpDo(t, h, "POST", "/v1/tenants", other, http.StatusServiceUnavailable, nil)
}
