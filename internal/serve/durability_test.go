package serve

// Durability tests: the registry over a disk store. Corruption of
// spilled checkpoints must degrade to a typed per-tenant ErrTenantLost
// (quarantine, never a crash, registry healthy), and a daemon restart —
// new registry over the same spill directory, Recover — must resume
// every parked chain bit-identically, distance-evaluation counts
// included.

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"testing"

	"geographer/internal/geom"
	"geographer/internal/store"
)

// diskRegistry returns a registry spilling to a fresh temp directory.
func diskRegistry(t *testing.T, cfg Config) (*Registry, *store.Disk) {
	t.Helper()
	disk, err := store.NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg.Store = disk
	return NewRegistry(cfg), disk
}

// parkTenant creates a tenant, runs its cold partition, and evicts it —
// leaving one spill file on disk.
func parkTenant(t *testing.T, g *Registry, name string, base *geom.PointSet, k, p int) {
	t.Helper()
	if err := g.Create(nil, name, base, TenantOptions{K: k, Processes: p}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Partition(nil, name); err != nil {
		t.Fatal(err)
	}
	if err := g.Evict(name); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptSpillQuarantine drives every injury mode through the
// restore path: a torn spill (truncated file), a bit-flipped file, a
// deleted file, and a spill whose storage frame verifies but whose
// checkpoint payload no longer decodes. Each must yield ErrTenantLost
// for that tenant only — sticky, quarantined where there are bytes to
// quarantine — while a healthy tenant in the same registry keeps
// serving, and Delete + re-Create gives the name a clean slate.
func TestCorruptSpillQuarantine(t *testing.T) {
	const k, p = 4, 2
	m := tenantMesh(t, 800, 3)
	base := &geom.PointSet{Dim: m.Points.Dim, Coords: m.Points.Coords, Weight: phaseWeights(m, 0)}

	injuries := []struct {
		name       string
		quarantine bool // leaves a quarantined file behind
		injure     func(t *testing.T, g *Registry, disk *store.Disk, name string)
	}{
		{"torn-write", true, func(t *testing.T, g *Registry, disk *store.Disk, name string) {
			path := disk.Path(name)
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, fi.Size()/3); err != nil {
				t.Fatal(err)
			}
		}},
		{"bit-flip", true, func(t *testing.T, g *Registry, disk *store.Disk, name string) {
			path := disk.Path(name)
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			raw[len(raw)/2] ^= 0x01
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"deleted", false, func(t *testing.T, g *Registry, disk *store.Disk, name string) {
			if err := os.Remove(disk.Path(name)); err != nil {
				t.Fatal(err)
			}
		}},
		{"resealed-garbage", true, func(t *testing.T, g *Registry, disk *store.Disk, name string) {
			// Mutate the checkpoint payload (its magic word) and re-seal
			// it through the store, so the CRC passes and the failure
			// surfaces in the session decode — the deeper quarantine path.
			data, meta, err := disk.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			data[0] ^= 0xFF
			if err := disk.Put(name, data, meta); err != nil {
				t.Fatal(err)
			}
		}},
	}

	for _, inj := range injuries {
		t.Run(inj.name, func(t *testing.T) {
			g, disk := diskRegistry(t, Config{})
			parkTenant(t, g, "victim", base, k, p)
			parkTenant(t, g, "healthy", base, k, p)
			inj.injure(t, g, disk, "victim")

			// Touching the injured tenant is a typed loss, not a crash.
			if _, err := g.Blocks("victim"); !errors.Is(err, ErrTenantLost) {
				t.Fatalf("touch after %s: err = %v, want ErrTenantLost", inj.name, err)
			}
			// Sticky: every further verb answers the same.
			if _, _, _, err := g.RepartitionIfAbove(nil, "victim", 0); !errors.Is(err, ErrTenantLost) {
				t.Fatalf("second touch: err = %v, want ErrTenantLost", err)
			}
			if _, err := g.Checkpoint("victim"); !errors.Is(err, ErrTenantLost) {
				t.Fatalf("checkpoint of lost tenant: err = %v, want ErrTenantLost", err)
			}

			if inj.quarantine {
				q, err := disk.Quarantined()
				if err != nil {
					t.Fatal(err)
				}
				if len(q) != 1 || q[0] != "victim" {
					t.Fatalf("Quarantined = %v, want [victim]", q)
				}
			}
			if st := g.Stats(); st.Lost != 1 {
				t.Fatalf("Stats.Lost = %d, want 1", st.Lost)
			}
			for _, ti := range g.List() {
				if ti.Name == "victim" && !ti.Lost {
					t.Fatal("List does not flag the victim lost")
				}
				if ti.Name == "healthy" && ti.Lost {
					t.Fatal("List flags the healthy tenant lost")
				}
			}

			// The rest of the registry is unharmed: the healthy tenant
			// restores from its own spill and serves.
			if _, err := g.Blocks("healthy"); err != nil {
				t.Fatalf("healthy tenant after %s: %v", inj.name, err)
			}

			// Delete clears the name; a re-Create starts fresh.
			if err := g.Delete("victim"); err != nil {
				t.Fatal(err)
			}
			if err := g.Create(nil, "victim", base, TenantOptions{K: k, Processes: p}); err != nil {
				t.Fatalf("re-create after loss: %v", err)
			}
			if _, err := g.Partition(nil, "victim"); err != nil {
				t.Fatalf("re-created tenant: %v", err)
			}
		})
	}
}

// TestMutatedSpillNeverCrashes is the registry-level corruption
// differential: a few hundred random byte mutations of a real spilled
// checkpoint, each registered through Recover and driven through
// ensureResident. Every outcome must be either a clean restore (a
// mutation can land in slack bytes) or a typed ErrTenantLost — never a
// panic, and the registry must stay serviceable throughout.
func TestMutatedSpillNeverCrashes(t *testing.T) {
	const k, p = 4, 2
	m := tenantMesh(t, 600, 5)
	base := &geom.PointSet{Dim: m.Points.Dim, Coords: m.Points.Coords, Weight: phaseWeights(m, 0)}

	// One real spill to harvest bytes and metadata from.
	seedRegistry, seedDisk := diskRegistry(t, Config{})
	parkTenant(t, seedRegistry, "seed", base, k, p)
	ckpt, meta, err := seedDisk.Get("seed")
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		mutated := append([]byte(nil), ckpt...)
		for flips := 1 + rng.Intn(3); flips > 0; flips-- {
			mutated[rng.Intn(len(mutated))] ^= byte(1 + rng.Intn(255))
		}
		disk, err := store.NewDisk(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		if err := disk.Put("mut", mutated, meta); err != nil {
			t.Fatal(err)
		}
		g := NewRegistry(Config{Store: disk})
		if n, err := g.Recover(); err != nil || n != 1 {
			t.Fatalf("trial %d: Recover = %d, %v", trial, n, err)
		}
		_, err = g.Blocks("mut")
		if err != nil && !errors.Is(err, ErrTenantLost) {
			t.Fatalf("trial %d: untyped error %v", trial, err)
		}
		// The registry is still alive either way.
		if st := g.Stats(); st.Tenants != 1 {
			t.Fatalf("trial %d: registry unhealthy: %+v", trial, st)
		}
	}
}

// TestDaemonRestartRoundTrip is the crash-recovery differential: drive
// tenant chains partway, park everything, abandon the registry without
// Drain (the kill -9 shape — nothing graceful runs), build a new
// registry over the same spill directory, Recover, and finish the
// chains. Every step after the "restart" must be bit-identical to the
// never-evicted solo chain with equal DistCalcs — including the carried
// incremental bounds and a weight delta left pending across the crash.
func TestDaemonRestartRoundTrip(t *testing.T) {
	const n, k, p, steps, restartAfter = 1200, 6, 2, 4, 2
	type tenantCase struct {
		name string
		base *geom.PointSet
		wAt  func(int) []float64
	}
	m := tenantMesh(t, n, 7)
	feat := mixtureTenant(900, 8, 5, 23)
	cases := []tenantCase{
		{"mesh", m.Points, func(step int) []float64 { return phaseWeights(m, step) }},
		{"feature", feat, func(step int) []float64 { return featureWeights(feat, step) }},
	}

	refs := make(map[string][][]int32)
	soloSt := make(map[string][]int64)
	for _, tc := range cases {
		chain, stats := soloChainPts(t, tc.base, tc.wAt, k, p, steps)
		refs[tc.name] = chain
		dc := make([]int64, len(stats))
		for i, st := range stats {
			dc[i] = st.DistCalcs
		}
		soloSt[tc.name] = dc
	}

	dir := t.TempDir()
	disk, err := store.NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	g1 := NewRegistry(Config{Store: disk})
	for _, tc := range cases {
		ps := &geom.PointSet{Dim: tc.base.Dim, Coords: tc.base.Coords, Weight: tc.wAt(0)}
		if err := g1.Create(nil, tc.name, ps, TenantOptions{K: k, Processes: p}); err != nil {
			t.Fatal(err)
		}
		p0, err := g1.Partition(nil, tc.name)
		if err != nil {
			t.Fatal(err)
		}
		assertSameAssign(t, tc.name+" cold", p0.Assign, refs[tc.name][0])
		for step := 1; step <= restartAfter; step++ {
			if err := g1.UpdateWeights(tc.name, tc.wAt(step)); err != nil {
				t.Fatal(err)
			}
			pt, _, acted, err := g1.RepartitionIfAbove(nil, tc.name, 0)
			if err != nil || !acted {
				t.Fatalf("%s pre-restart step %d: acted=%v err=%v", tc.name, step, acted, err)
			}
			assertSameAssign(t, fmt.Sprintf("%s pre-restart step %d", tc.name, step), pt.Assign, refs[tc.name][step])
		}
		// Leave the next weight delta pending, then park: both must
		// survive the crash inside the spill.
		if err := g1.UpdateWeights(tc.name, tc.wAt(restartAfter+1)); err != nil {
			t.Fatal(err)
		}
		if err := g1.Evict(tc.name); err != nil {
			t.Fatal(err)
		}
	}
	// kill -9: no Drain, no Delete — g1 is simply abandoned.
	g1 = nil

	g2 := NewRegistry(Config{Store: disk})
	recovered, err := g2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if recovered != len(cases) {
		t.Fatalf("Recover registered %d tenants, want %d", recovered, len(cases))
	}
	for _, tc := range cases {
		for step := restartAfter + 1; step <= steps; step++ {
			if step > restartAfter+1 {
				// The pending delta for restartAfter+1 crossed the crash;
				// later steps update normally.
				if err := g2.UpdateWeights(tc.name, tc.wAt(step)); err != nil {
					t.Fatal(err)
				}
			}
			pt, st, acted, err := g2.RepartitionIfAbove(nil, tc.name, 0)
			if err != nil || !acted {
				t.Fatalf("%s post-restart step %d: acted=%v err=%v", tc.name, step, acted, err)
			}
			assertSameAssign(t, fmt.Sprintf("%s post-restart step %d", tc.name, step), pt.Assign, refs[tc.name][step])
			if st.DistCalcs != soloSt[tc.name][step] {
				t.Fatalf("%s post-restart step %d: %d distance calcs, solo %d",
					tc.name, step, st.DistCalcs, soloSt[tc.name][step])
			}
			if step == restartAfter+1 && !st.Incremental {
				t.Fatalf("%s first post-restart step fell off the incremental fast path", tc.name)
			}
		}
	}
	if st := g2.Stats(); st.Restores != int64(len(cases)) || st.Lost != 0 {
		t.Fatalf("post-restart stats: %+v", st)
	}
}

// TestDrainParksDurably: a graceful shutdown (Drain) spills every
// resident tenant, and a successor registry over the same store picks
// them all up.
func TestDrainParksDurably(t *testing.T) {
	const k, p = 4, 2
	m := tenantMesh(t, 700, 9)
	base := &geom.PointSet{Dim: m.Points.Dim, Coords: m.Points.Coords, Weight: phaseWeights(m, 0)}

	dir := t.TempDir()
	disk, err := store.NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	g1 := NewRegistry(Config{Store: disk})
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("t%d", i)
		if err := g1.Create(nil, name, base, TenantOptions{K: k, Processes: p}); err != nil {
			t.Fatal(err)
		}
		if _, err := g1.Partition(nil, name); err != nil {
			t.Fatal(err)
		}
	}
	want := make(map[string][]int32)
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("t%d", i)
		b, err := g1.Blocks(name)
		if err != nil {
			t.Fatal(err)
		}
		want[name] = b
	}
	if parked := g1.Drain(); parked != 3 {
		t.Fatalf("Drain parked %d tenants, want 3", parked)
	}

	g2 := NewRegistry(Config{Store: disk})
	if n, err := g2.Recover(); err != nil || n != 3 {
		t.Fatalf("Recover = %d, %v; want 3", n, err)
	}
	for name, w := range want {
		b, err := g2.Blocks(name)
		if err != nil {
			t.Fatal(err)
		}
		assertSameAssign(t, "drain round trip "+name, b, w)
	}
}
