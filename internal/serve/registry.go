// Package serve is the multi-tenant session registry behind the
// partitioning service (cmd/geographerd): named long-lived
// repart.Sessions — one per tenant — sharing one process under a
// bounded worker pool (internal/sched), a resident-memory budget with
// admission control, and LRU eviction that parks cold tenants as
// checkpoint bytes (repart.Session.Checkpoint) and restores them
// bit-identically on next touch (DESIGN.md, "Multi-tenancy
// invariants").
//
// Concurrency model. The registry mutex guards only the tenant map and
// the shared accounting (resident bytes, the LRU clock, eviction
// counters); each tenant has its own mutex serializing its session
// verbs. Lock order is tenant → registry, and a tenant lock is only
// ever taken non-blocking (TryLock) while the registry lock is held —
// the eviction scan — so verbs on distinct tenants run concurrently
// and the registry cannot deadlock: a busy tenant is simply not a
// victim this round.
package serve

import (
	"fmt"
	"sort"
	"sync"

	"geographer/internal/core"
	"geographer/internal/geom"
	"geographer/internal/mpi"
	"geographer/internal/partition"
	"geographer/internal/repart"
	"geographer/internal/sched"
)

// Typed registry errors; the HTTP layer maps each to a distinct status
// code.
var (
	// ErrNotFound: the named tenant does not exist (or was deleted).
	ErrNotFound = fmt.Errorf("serve: no such tenant")
	// ErrExists: Create on a name already in the registry.
	ErrExists = fmt.Errorf("serve: tenant already exists")
	// ErrAdmission: admitting the tenant would exceed the registry's
	// resident-memory or tenant-count budget and no idle victim could
	// be evicted to make room. The request may succeed later.
	ErrAdmission = fmt.Errorf("serve: admission rejected: resident budget exhausted")
	// ErrDraining: the registry is shutting down; no new verbs.
	ErrDraining = fmt.Errorf("serve: registry is draining")
)

// Config sizes a Registry.
type Config struct {
	// Pool is the process worker pool tenants lease their kernel
	// helper budgets from; nil uses sched.Default() (GOMAXPROCS).
	Pool *sched.Pool

	// MaxResidentBytes caps the estimated resident footprint of all
	// non-parked tenants; 0 means unlimited. When a Create or a restore
	// of a parked tenant would exceed it, least-recently-used idle
	// tenants are evicted to checkpoint bytes until the newcomer fits —
	// or ErrAdmission if nothing evictable remains.
	MaxResidentBytes int64

	// MaxTenants caps the total tenant count (resident + parked);
	// 0 means unlimited. Unlike the byte budget this is not relieved
	// by eviction — parked tenants still hold their checkpoint — so
	// exceeding it fails Create with ErrAdmission.
	MaxTenants int
}

// TenantOptions configures one tenant's session at Create time.
type TenantOptions struct {
	// K is the number of blocks (required, ≥ 1).
	K int
	// Processes is the simulated rank count (default 4).
	Processes int
	// Workers is the tenant's leased worker budget: the maximum
	// intra-rank kernel parallelism this tenant may reach across all
	// its ranks together. 0 leases the pool's full capacity (a solo
	// tenant behaves exactly like a plain session); 1 forces serial
	// kernels. The budget is execution policy only — it never changes
	// partition output.
	Workers int
	// Epsilon is the balance constraint ε (default 0.03).
	Epsilon float64
	// Seed drives the sampled initialization (default 1).
	Seed int64
}

// config builds the tenant's core configuration (without the lease,
// which Create attaches after admission).
func (o TenantOptions) config() (core.Config, int, error) {
	cfg := core.DefaultConfig()
	if o.Epsilon != 0 {
		cfg.Epsilon = o.Epsilon
	}
	cfg.Seed = o.Seed
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	p := o.Processes
	if p == 0 {
		p = 4
	}
	if p < 1 {
		return cfg, 0, fmt.Errorf("serve: processes=%d", p)
	}
	if o.Workers < 0 {
		return cfg, 0, fmt.Errorf("serve: workers=%d", o.Workers)
	}
	if err := cfg.Validate(o.K); err != nil {
		return cfg, 0, err
	}
	return cfg, p, nil
}

// tenant is one named session slot: either resident (sess != nil) or
// parked as checkpoint bytes (parked != nil). Its mutex serializes the
// tenant's verbs; restore-on-touch happens under it.
type tenant struct {
	mu sync.Mutex

	name string
	k, p int
	cfg  core.Config

	sess   *repart.Session
	parked []byte

	n, dim int
	bytes  int64 // estimated resident footprint (residentBytesEstimate)

	// Guarded by the registry mutex, not t.mu: the LRU stamp and the
	// residency flag the eviction scan reads without taking t.mu
	// (resident mirrors sess != nil; every transition holds both
	// mutexes or happens before the tenant is published).
	lastUsed int64
	resident bool

	steps, evictions, restores int64
	deleted                    bool
}

// Registry is the tenant registry. All methods are safe for concurrent
// use; verbs on distinct tenants run concurrently.
type Registry struct {
	mu  sync.Mutex
	cfg Config

	pool    *sched.Pool
	tenants map[string]*tenant

	clock         int64 // logical LRU clock, bumped per verb
	residentBytes int64
	evictions     int64
	restores      int64
	draining      bool
}

// NewRegistry returns an empty registry under cfg's budgets.
func NewRegistry(cfg Config) *Registry {
	pool := cfg.Pool
	if pool == nil {
		pool = sched.Default()
	}
	return &Registry{cfg: cfg, pool: pool, tenants: make(map[string]*tenant)}
}

// residentBytesEstimate approximates a tenant's resident footprint: the
// session-held global point set and partition, the per-rank SoA columns
// with their per-point kernel state (assignment, Hamerly bounds, raw
// shadow, ids — distributed, so ~1× n in total), and the replicated
// per-rank center tables. A deterministic function of the tenant shape,
// so admission decisions reproduce run to run.
func residentBytesEstimate(n, dim, k, p int) int64 {
	global := int64(n) * int64(dim*8+8+4)
	resident := int64(n) * int64(dim*8+8+8+4+3*8)
	tables := int64(p) * int64(k) * int64((dim+1)*32+64)
	return global + resident + tables
}

// Create admits a new tenant and ingests its point set into a resident
// session. The point set is cloned; the caller may reuse its slices.
func (g *Registry) Create(name string, ps *geom.PointSet, opts TenantOptions) error {
	if name == "" {
		return fmt.Errorf("serve: empty tenant name")
	}
	if err := ps.Validate(); err != nil {
		return err
	}
	cfg, p, err := opts.config()
	if err != nil {
		return err
	}

	t := &tenant{
		name: name, k: opts.K, p: p, cfg: cfg,
		n: ps.Len(), dim: ps.Dim,
		bytes: residentBytesEstimate(ps.Len(), ps.Dim, opts.K, p),
	}
	// Reserve the name before the (slow) ingest so concurrent Creates
	// of the same name see ErrExists, and hold t.mu across the ingest
	// so concurrent verbs on the half-built tenant queue behind it.
	t.mu.Lock()
	defer t.mu.Unlock()
	g.mu.Lock()
	if g.draining {
		g.mu.Unlock()
		return ErrDraining
	}
	if _, ok := g.tenants[name]; ok {
		g.mu.Unlock()
		return ErrExists
	}
	if g.cfg.MaxTenants > 0 && len(g.tenants) >= g.cfg.MaxTenants {
		g.mu.Unlock()
		return fmt.Errorf("%w (%d tenants, cap %d)", ErrAdmission, len(g.tenants), g.cfg.MaxTenants)
	}
	g.clock++
	t.lastUsed = g.clock
	g.tenants[name] = t
	g.mu.Unlock()

	abort := func(err error) error {
		g.mu.Lock()
		delete(g.tenants, name)
		g.mu.Unlock()
		t.deleted = true
		return err
	}
	if err := g.admit(t); err != nil {
		return abort(err)
	}
	cfg.Lease = g.pool.Lease(opts.Workers)
	t.cfg = cfg
	sess, err := repart.NewSession(mpi.NewWorld(p), ps.Clone(), opts.K, cfg)
	if err != nil {
		g.unadmit(t)
		return abort(err)
	}
	t.sess = sess
	g.mu.Lock()
	t.resident = true
	g.mu.Unlock()
	return nil
}

// admit charges t.bytes against the resident budget, evicting
// least-recently-used idle tenants as needed. Caller holds t.mu (or is
// initializing t); never blocks on another tenant's mutex.
func (g *Registry) admit(t *tenant) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	for g.cfg.MaxResidentBytes > 0 && g.residentBytes+t.bytes > g.cfg.MaxResidentBytes {
		v := g.victimLocked(t)
		if v == nil {
			return fmt.Errorf("%w (%d resident + %d new > cap %d, no evictable tenant)",
				ErrAdmission, g.residentBytes, t.bytes, g.cfg.MaxResidentBytes)
		}
		err := g.evictLocked(v)
		v.mu.Unlock()
		if err != nil {
			return err
		}
	}
	g.residentBytes += t.bytes
	return nil
}

// unadmit returns t's charge after a failed build/restore.
func (g *Registry) unadmit(t *tenant) {
	g.mu.Lock()
	g.residentBytes -= t.bytes
	g.mu.Unlock()
}

// victimLocked picks the least-recently-used resident tenant whose
// mutex can be taken without blocking, excluding t. Caller holds g.mu;
// on success the victim's mutex is held.
func (g *Registry) victimLocked(t *tenant) *tenant {
	var best *tenant
	for _, c := range g.tenants {
		if c == t || !c.resident {
			continue
		}
		if best == nil || c.lastUsed < best.lastUsed {
			best = c
		}
	}
	for best != nil {
		if best.mu.TryLock() {
			if best.sess != nil && !best.deleted {
				return best
			}
			best.mu.Unlock()
		}
		// Busy (or raced away): try the next-oldest resident tenant.
		next := (*tenant)(nil)
		for _, c := range g.tenants {
			if c == t || !c.resident || c.lastUsed <= best.lastUsed {
				continue
			}
			if next == nil || c.lastUsed < next.lastUsed {
				next = c
			}
		}
		best = next
	}
	return nil
}

// evictLocked parks a resident tenant as checkpoint bytes and releases
// its session. Caller holds g.mu and v.mu.
func (g *Registry) evictLocked(v *tenant) error {
	data, err := v.sess.Checkpoint()
	if err != nil {
		return fmt.Errorf("serve: evict %s: %w", v.name, err)
	}
	v.sess.Close()
	v.sess = nil
	v.resident = false
	v.parked = data
	v.evictions++
	g.evictions++
	g.residentBytes -= v.bytes
	return nil
}

// lookup finds a tenant and stamps its LRU clock.
func (g *Registry) lookup(name string, touch bool) (*tenant, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.draining {
		return nil, ErrDraining
	}
	t, ok := g.tenants[name]
	if !ok {
		return nil, ErrNotFound
	}
	if touch {
		g.clock++
		t.lastUsed = g.clock
	}
	return t, nil
}

// ensureResident restores a parked tenant (admission included). Caller
// holds t.mu.
func (g *Registry) ensureResident(t *tenant) error {
	if t.deleted {
		return ErrNotFound
	}
	if t.sess != nil {
		return nil
	}
	if err := g.admit(t); err != nil {
		return err
	}
	sess, err := repart.NewSessionFromCheckpoint(mpi.NewWorld(t.p), t.parked, t.cfg)
	if err != nil {
		g.unadmit(t)
		return fmt.Errorf("serve: restore %s: %w", t.name, err)
	}
	t.sess = sess
	t.parked = nil
	t.restores++
	g.mu.Lock()
	t.resident = true
	g.restores++
	g.mu.Unlock()
	return nil
}

// withTenant runs fn on the (restored-if-parked) tenant's session,
// under the tenant mutex.
func (g *Registry) withTenant(name string, fn func(t *tenant) error) error {
	t, err := g.lookup(name, true)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := g.ensureResident(t); err != nil {
		return err
	}
	return fn(t)
}

// Partition computes the tenant's cold initial partition and returns
// the assignment.
func (g *Registry) Partition(name string) (partition.P, error) {
	var p partition.P
	err := g.withTenant(name, func(t *tenant) error {
		var err error
		p, err = t.sess.Partition()
		if err == nil {
			t.steps++
		}
		return err
	})
	return p, err
}

// Repartition runs one warm repartitioning step.
func (g *Registry) Repartition(name string) (partition.P, repart.Stats, error) {
	var p partition.P
	var st repart.Stats
	err := g.withTenant(name, func(t *tenant) error {
		var err error
		p, st, err = t.sess.Repartition()
		if err == nil {
			t.steps++
		}
		return err
	})
	return p, st, err
}

// RepartitionIfAbove runs a warm step only when the current imbalance
// exceeds eps, reporting whether it acted.
func (g *Registry) RepartitionIfAbove(name string, eps float64) (partition.P, repart.Stats, bool, error) {
	var p partition.P
	var st repart.Stats
	var acted bool
	err := g.withTenant(name, func(t *tenant) error {
		var err error
		p, st, acted, err = t.sess.RepartitionIfAbove(eps)
		if err == nil && acted {
			t.steps++
		}
		return err
	})
	return p, st, acted, err
}

// UpdateWeights replaces the tenant's point weights (nil = unit).
func (g *Registry) UpdateWeights(name string, weights []float64) error {
	return g.withTenant(name, func(t *tenant) error {
		return t.sess.UpdateWeights(weights)
	})
}

// UpdateCoords replaces the tenant's point coordinates (flat, n·dim).
func (g *Registry) UpdateCoords(name string, coords []float64) error {
	return g.withTenant(name, func(t *tenant) error {
		return t.sess.UpdateCoords(coords)
	})
}

// Imbalance measures the tenant's current imbalance.
func (g *Registry) Imbalance(name string) (float64, error) {
	var imb float64
	err := g.withTenant(name, func(t *tenant) error {
		var err error
		imb, err = t.sess.Imbalance()
		return err
	})
	return imb, err
}

// Blocks returns the tenant's current partition (nil if none yet).
func (g *Registry) Blocks(name string) ([]int32, error) {
	var b []int32
	err := g.withTenant(name, func(t *tenant) error {
		b = t.sess.Blocks()
		return nil
	})
	return b, err
}

// Checkpoint serializes the tenant's session. A parked tenant answers
// from its stored bytes without being restored.
func (g *Registry) Checkpoint(name string) ([]byte, error) {
	t, err := g.lookup(name, true)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.deleted {
		return nil, ErrNotFound
	}
	if t.sess == nil {
		return append([]byte(nil), t.parked...), nil
	}
	return t.sess.Checkpoint()
}

// Evict force-parks a tenant as checkpoint bytes, releasing its
// resident state. Evicting a parked tenant is a no-op. Eviction does
// not refresh the tenant's LRU stamp.
func (g *Registry) Evict(name string) error {
	t, err := g.lookup(name, false)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.deleted {
		return ErrNotFound
	}
	if t.sess == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.evictLocked(t)
}

// Sweep parks every resident tenant whose last touch is at least
// maxIdle verbs old on the registry's logical clock — the idle-eviction
// policy a server loop runs periodically. Returns how many tenants it
// parked. Busy tenants are skipped, never blocked on.
func (g *Registry) Sweep(maxIdle int64) int {
	if maxIdle < 1 {
		maxIdle = 1
	}
	g.mu.Lock()
	var idle []*tenant
	for _, t := range g.tenants {
		if t.resident && g.clock-t.lastUsed >= maxIdle {
			idle = append(idle, t)
		}
	}
	g.mu.Unlock()

	parked := 0
	for _, t := range idle {
		if !t.mu.TryLock() {
			continue // busy = not idle after all
		}
		g.mu.Lock()
		if t.sess != nil && !t.deleted && g.clock-t.lastUsed >= maxIdle {
			if err := g.evictLocked(t); err == nil {
				parked++
			}
		}
		g.mu.Unlock()
		t.mu.Unlock()
	}
	return parked
}

// Delete removes a tenant and releases its state (resident or parked).
// Blocks until the tenant's in-flight verb (if any) completes.
func (g *Registry) Delete(name string) error {
	g.mu.Lock()
	if g.draining {
		g.mu.Unlock()
		return ErrDraining
	}
	t, ok := g.tenants[name]
	if !ok {
		g.mu.Unlock()
		return ErrNotFound
	}
	delete(g.tenants, name)
	g.mu.Unlock()

	t.mu.Lock()
	defer t.mu.Unlock()
	t.deleted = true
	t.parked = nil
	if t.sess != nil {
		t.sess.Close()
		t.sess = nil
		g.mu.Lock()
		t.resident = false
		g.residentBytes -= t.bytes
		g.mu.Unlock()
	}
	return nil
}

// TenantInfo is one row of List.
type TenantInfo struct {
	Name     string `json:"name"`
	K        int    `json:"k"`
	P        int    `json:"p"`
	N        int    `json:"n"`
	Dim      int    `json:"dim"`
	Workers  int    `json:"workers"`
	Resident bool   `json:"resident"`
	Bytes    int64  `json:"bytes"`
	Steps    int64  `json:"steps"`
	Evicted  int64  `json:"evictions"`
	Restored int64  `json:"restores"`
}

// List returns all tenants, sorted by name. Purely observational: no
// LRU touch, no restore; counters of a busy tenant are read as of its
// last completed verb.
func (g *Registry) List() []TenantInfo {
	g.mu.Lock()
	ts := make([]*tenant, 0, len(g.tenants))
	for _, t := range g.tenants {
		ts = append(ts, t)
	}
	g.mu.Unlock()
	sort.Slice(ts, func(i, j int) bool { return ts[i].name < ts[j].name })
	out := make([]TenantInfo, 0, len(ts))
	for _, t := range ts {
		t.mu.Lock()
		out = append(out, TenantInfo{
			Name: t.name, K: t.k, P: t.p, N: t.n, Dim: t.dim,
			Workers:  t.cfg.Lease.Budget(),
			Resident: t.sess != nil, Bytes: t.bytes, Steps: t.steps,
			Evicted: t.evictions, Restored: t.restores,
		})
		t.mu.Unlock()
	}
	return out
}

// RegistryStats is the shared-accounting snapshot of Stats.
type RegistryStats struct {
	Tenants       int   `json:"tenants"`
	Resident      int   `json:"resident"`
	Parked        int   `json:"parked"`
	ResidentBytes int64 `json:"resident_bytes"`
	Evictions     int64 `json:"evictions"`
	Restores      int64 `json:"restores"`
	WorkerBudget  int   `json:"worker_budget"`
	Draining      bool  `json:"draining"`
}

// Stats snapshots the registry's shared accounting.
func (g *Registry) Stats() RegistryStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	st := RegistryStats{
		Tenants:       len(g.tenants),
		ResidentBytes: g.residentBytes,
		Evictions:     g.evictions,
		Restores:      g.restores,
		WorkerBudget:  g.pool.Capacity(),
		Draining:      g.draining,
	}
	for _, t := range g.tenants {
		if t.resident {
			st.Resident++
		} else {
			st.Parked++
		}
	}
	return st
}

// Drain rejects all further verbs (ErrDraining), waits for every
// in-flight verb to complete, and releases all tenant state — the
// graceful-shutdown half the HTTP server calls after it stops
// accepting connections. Idempotent.
func (g *Registry) Drain() {
	g.mu.Lock()
	if g.draining {
		g.mu.Unlock()
		return
	}
	g.draining = true
	ts := make([]*tenant, 0, len(g.tenants))
	for _, t := range g.tenants {
		ts = append(ts, t)
	}
	g.mu.Unlock()

	for _, t := range ts {
		t.mu.Lock() // waits out the in-flight verb
		t.deleted = true
		t.parked = nil
		if t.sess != nil {
			t.sess.Close()
			t.sess = nil
			g.mu.Lock()
			t.resident = false
			g.residentBytes -= t.bytes
			g.mu.Unlock()
		}
		t.mu.Unlock()
	}
	g.mu.Lock()
	clear(g.tenants)
	g.mu.Unlock()
}
