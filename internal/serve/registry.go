// Package serve is the multi-tenant session registry behind the
// partitioning service (cmd/geographerd): named long-lived
// repart.Sessions — one per tenant — sharing one process under a
// bounded worker pool (internal/sched), a resident-memory budget with
// admission control, and LRU eviction that parks cold tenants as
// checkpoint bytes (repart.Session.Checkpoint) and restores them
// bit-identically on next touch (DESIGN.md, "Multi-tenancy
// invariants").
//
// Concurrency model. The registry mutex guards only the tenant map and
// the shared accounting (resident bytes, the LRU clock, eviction
// counters); each tenant has its own mutex serializing its session
// verbs. Lock order is tenant → registry, and a tenant lock is only
// ever taken non-blocking (TryLock) while the registry lock is held —
// the eviction scan — so verbs on distinct tenants run concurrently
// and the registry cannot deadlock: a busy tenant is simply not a
// victim this round.
//
// Durability model. Parked tenants live in a pluggable checkpoint store
// (internal/store), not in process memory: eviction writes the
// checkpoint through Config.Store, restore-on-touch reads it back, and
// with the disk backend the spill outlives the daemon — Recover scans
// the store at startup and re-registers every surviving tenant, so a
// kill -9 between verbs loses nothing that was parked. The spill is
// kept (not consumed) on restore and deleted only when the first
// mutating verb lands, so an on-store spill is always current: crash
// recovery can never resurrect stale state. A corrupt or missing spill
// marks the tenant lost — a sticky, typed ErrTenantLost (HTTP 410) for
// that tenant only; the registry itself never crashes on bad bytes
// (DESIGN.md, "Durability invariants").
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"

	"geographer/internal/core"
	"geographer/internal/geom"
	"geographer/internal/mpi"
	"geographer/internal/partition"
	"geographer/internal/repart"
	"geographer/internal/sched"
	"geographer/internal/store"
)

// Typed registry errors; the HTTP layer maps each to a distinct status
// code.
var (
	// ErrNotFound: the named tenant does not exist (or was deleted).
	ErrNotFound = fmt.Errorf("serve: no such tenant")
	// ErrExists: Create on a name already in the registry.
	ErrExists = fmt.Errorf("serve: tenant already exists")
	// ErrAdmission: admitting the tenant would exceed the registry's
	// resident-memory or tenant-count budget and no idle victim could
	// be evicted to make room. The request may succeed later.
	ErrAdmission = fmt.Errorf("serve: admission rejected: resident budget exhausted")
	// ErrDraining: the registry is shutting down; no new verbs.
	ErrDraining = fmt.Errorf("serve: registry is draining")
	// ErrTenantLost: the tenant's only copy of state — its spilled
	// checkpoint — is corrupt or missing (quarantined by the store), or
	// its world broke with no current spill to restore from. Sticky for
	// the tenant until it is Deleted; the registry stays healthy.
	ErrTenantLost = fmt.Errorf("serve: tenant state lost")
)

// Config sizes a Registry.
type Config struct {
	// Pool is the process worker pool tenants lease their kernel
	// helper budgets from; nil uses sched.Default() (GOMAXPROCS).
	Pool *sched.Pool

	// MaxResidentBytes caps the estimated resident footprint of all
	// non-parked tenants; 0 means unlimited. When a Create or a restore
	// of a parked tenant would exceed it, least-recently-used idle
	// tenants are evicted to checkpoint bytes until the newcomer fits —
	// or ErrAdmission if nothing evictable remains.
	MaxResidentBytes int64

	// MaxTenants caps the total tenant count (resident + parked);
	// 0 means unlimited. Unlike the byte budget this is not relieved
	// by eviction — parked tenants still hold their checkpoint — so
	// exceeding it fails Create with ErrAdmission.
	MaxTenants int

	// Store holds parked tenants' checkpoints. nil uses an in-process
	// store.Memory (the pre-spill behavior: parked state dies with the
	// process); a store.Disk makes parked tenants durable across daemon
	// restarts and crashes (see Recover).
	Store store.Store
}

// TenantOptions configures one tenant's session at Create time.
type TenantOptions struct {
	// K is the number of blocks (required, ≥ 1).
	K int
	// Processes is the simulated rank count (default 4).
	Processes int
	// Workers is the tenant's leased worker budget: the maximum
	// intra-rank kernel parallelism this tenant may reach across all
	// its ranks together. 0 leases the pool's full capacity (a solo
	// tenant behaves exactly like a plain session); 1 forces serial
	// kernels. The budget is execution policy only — it never changes
	// partition output.
	Workers int
	// Epsilon is the balance constraint ε (default 0.03).
	Epsilon float64
	// Seed drives the sampled initialization (default 1).
	Seed int64
}

// config builds the tenant's core configuration (without the lease,
// which Create attaches after admission).
func (o TenantOptions) config() (core.Config, int, error) {
	cfg := core.DefaultConfig()
	if o.Epsilon != 0 {
		cfg.Epsilon = o.Epsilon
	}
	cfg.Seed = o.Seed
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	p := o.Processes
	if p == 0 {
		p = 4
	}
	if p < 1 {
		return cfg, 0, fmt.Errorf("serve: processes=%d", p)
	}
	if o.Workers < 0 {
		return cfg, 0, fmt.Errorf("serve: workers=%d", o.Workers)
	}
	if err := cfg.Validate(o.K); err != nil {
		return cfg, 0, err
	}
	return cfg, p, nil
}

// tenant is one named session slot: either resident (sess != nil) or
// parked as checkpoint bytes in the registry's store (spilled). Its
// mutex serializes the tenant's verbs; restore-on-touch happens under
// it.
type tenant struct {
	mu sync.Mutex

	name    string
	k, p    int
	workers int // the Create-time lease request, preserved for Recover
	cfg     core.Config

	sess *repart.Session
	// spilled: the store holds a current checkpoint for this tenant.
	// True from eviction until the first mutating verb after restore
	// invalidates it (the spill is then deleted, never left stale).
	spilled bool
	// lost: the tenant's state is unrecoverable — spill corrupt/missing
	// or world broken with no spill. Sticky until Delete.
	lost bool

	n, dim int
	bytes  int64 // estimated resident footprint (residentBytesEstimate)

	// Guarded by the registry mutex, not t.mu: the LRU stamp and the
	// residency flag the eviction scan reads without taking t.mu
	// (resident mirrors sess != nil; every transition holds both
	// mutexes or happens before the tenant is published).
	lastUsed int64
	resident bool

	steps, evictions, restores int64
	deleted                    bool
}

// spillMeta is the JSON metadata record stored beside each spilled
// checkpoint — everything Recover needs to re-register the tenant
// (configuration is policy and is NOT inside the checkpoint payload,
// so it travels here).
type spillMeta struct {
	K       int     `json:"k"`
	P       int     `json:"p"`
	Workers int     `json:"workers"`
	Epsilon float64 `json:"epsilon"`
	Seed    int64   `json:"seed"`
	N       int     `json:"n"`
	Dim     int     `json:"dim"`
	Steps   int64   `json:"steps"`
}

// spillMetaJSON builds t's metadata record. Caller holds t.mu.
func (t *tenant) spillMetaJSON() []byte {
	m := spillMeta{
		K: t.k, P: t.p, Workers: t.workers,
		Epsilon: t.cfg.Epsilon, Seed: t.cfg.Seed,
		N: t.n, Dim: t.dim, Steps: t.steps,
	}
	b, err := json.Marshal(m)
	if err != nil {
		// spillMeta is a struct of scalars; Marshal cannot fail.
		panic(err)
	}
	return b
}

// Registry is the tenant registry. All methods are safe for concurrent
// use; verbs on distinct tenants run concurrently.
type Registry struct {
	mu  sync.Mutex
	cfg Config

	pool    *sched.Pool
	store   store.Store
	tenants map[string]*tenant

	clock         int64 // logical LRU clock, bumped per verb
	residentBytes int64
	evictions     int64
	restores      int64
	lostCount     int64
	draining      bool
}

// NewRegistry returns an empty registry under cfg's budgets.
func NewRegistry(cfg Config) *Registry {
	pool := cfg.Pool
	if pool == nil {
		pool = sched.Default()
	}
	st := cfg.Store
	if st == nil {
		st = store.NewMemory()
	}
	return &Registry{cfg: cfg, pool: pool, store: st, tenants: make(map[string]*tenant)}
}

// residentBytesEstimate approximates a tenant's resident footprint: the
// session-held global point set and partition, the per-rank SoA columns
// with their per-point kernel state (assignment, Hamerly bounds, raw
// shadow, ids — distributed, so ~1× n in total), and the replicated
// per-rank center tables. A deterministic function of the tenant shape,
// so admission decisions reproduce run to run.
func residentBytesEstimate(n, dim, k, p int) int64 {
	global := int64(n) * int64(dim*8+8+4)
	resident := int64(n) * int64(dim*8+8+8+4+3*8)
	tables := int64(p) * int64(k) * int64((dim+1)*32+64)
	return global + resident + tables
}

// Create admits a new tenant and ingests its point set into a resident
// session. The point set is cloned; the caller may reuse its slices.
// Cancelling ctx mid-ingest aborts the build and the tenant is not
// registered (nil ctx = not cancellable).
func (g *Registry) Create(ctx context.Context, name string, ps *geom.PointSet, opts TenantOptions) error {
	if name == "" {
		return fmt.Errorf("serve: empty tenant name")
	}
	if err := ps.Validate(); err != nil {
		return err
	}
	cfg, p, err := opts.config()
	if err != nil {
		return err
	}

	t := &tenant{
		name: name, k: opts.K, p: p, workers: opts.Workers, cfg: cfg,
		n: ps.Len(), dim: ps.Dim,
		bytes: residentBytesEstimate(ps.Len(), ps.Dim, opts.K, p),
	}
	// Reserve the name before the (slow) ingest so concurrent Creates
	// of the same name see ErrExists, and hold t.mu across the ingest
	// so concurrent verbs on the half-built tenant queue behind it.
	t.mu.Lock()
	defer t.mu.Unlock()
	g.mu.Lock()
	if g.draining {
		g.mu.Unlock()
		return ErrDraining
	}
	if _, ok := g.tenants[name]; ok {
		g.mu.Unlock()
		return ErrExists
	}
	if g.cfg.MaxTenants > 0 && len(g.tenants) >= g.cfg.MaxTenants {
		g.mu.Unlock()
		return fmt.Errorf("%w (%d tenants, cap %d)", ErrAdmission, len(g.tenants), g.cfg.MaxTenants)
	}
	g.clock++
	t.lastUsed = g.clock
	g.tenants[name] = t
	g.mu.Unlock()

	abort := func(err error) error {
		g.mu.Lock()
		delete(g.tenants, name)
		g.mu.Unlock()
		t.deleted = true
		return err
	}
	if err := g.admit(t); err != nil {
		return abort(err)
	}
	cfg.Lease = g.pool.Lease(opts.Workers)
	t.cfg = cfg
	sess, err := repart.NewSessionCtx(ctx, mpi.NewWorld(p), ps.Clone(), opts.K, cfg)
	if err != nil {
		g.unadmit(t)
		return abort(err)
	}
	t.sess = sess
	g.mu.Lock()
	t.resident = true
	g.mu.Unlock()
	return nil
}

// admit charges t.bytes against the resident budget, evicting
// least-recently-used idle tenants as needed. Caller holds t.mu (or is
// initializing t); never blocks on another tenant's mutex.
func (g *Registry) admit(t *tenant) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	for g.cfg.MaxResidentBytes > 0 && g.residentBytes+t.bytes > g.cfg.MaxResidentBytes {
		v := g.victimLocked(t)
		if v == nil {
			return fmt.Errorf("%w (%d resident + %d new > cap %d, no evictable tenant)",
				ErrAdmission, g.residentBytes, t.bytes, g.cfg.MaxResidentBytes)
		}
		err := g.evictLocked(v)
		v.mu.Unlock()
		if err != nil {
			return err
		}
	}
	g.residentBytes += t.bytes
	return nil
}

// unadmit returns t's charge after a failed build/restore.
func (g *Registry) unadmit(t *tenant) {
	g.mu.Lock()
	g.residentBytes -= t.bytes
	g.mu.Unlock()
}

// victimLocked picks the least-recently-used resident tenant whose
// mutex can be taken without blocking, excluding t. Caller holds g.mu;
// on success the victim's mutex is held.
func (g *Registry) victimLocked(t *tenant) *tenant {
	var best *tenant
	for _, c := range g.tenants {
		if c == t || !c.resident {
			continue
		}
		if best == nil || c.lastUsed < best.lastUsed {
			best = c
		}
	}
	for best != nil {
		if best.mu.TryLock() {
			if best.sess != nil && !best.deleted {
				return best
			}
			best.mu.Unlock()
		}
		// Busy (or raced away): try the next-oldest resident tenant.
		next := (*tenant)(nil)
		for _, c := range g.tenants {
			if c == t || !c.resident || c.lastUsed <= best.lastUsed {
				continue
			}
			if next == nil || c.lastUsed < next.lastUsed {
				next = c
			}
		}
		best = next
	}
	return nil
}

// evictLocked parks a resident tenant: its checkpoint is written
// through the registry's store (spill), then the session is released.
// If the spill write fails the tenant stays resident — never release
// state whose only copy didn't land. Caller holds g.mu and v.mu.
func (g *Registry) evictLocked(v *tenant) error {
	data, err := v.sess.Checkpoint()
	if err != nil {
		return fmt.Errorf("serve: evict %s: %w", v.name, err)
	}
	if err := g.store.Put(v.name, data, v.spillMetaJSON()); err != nil {
		return fmt.Errorf("serve: spill %s: %w", v.name, err)
	}
	v.sess.Close()
	v.sess = nil
	v.resident = false
	v.spilled = true
	v.evictions++
	g.evictions++
	g.residentBytes -= v.bytes
	return nil
}

// lookup finds a tenant and stamps its LRU clock.
func (g *Registry) lookup(name string, touch bool) (*tenant, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.draining {
		return nil, ErrDraining
	}
	t, ok := g.tenants[name]
	if !ok {
		return nil, ErrNotFound
	}
	if touch {
		g.clock++
		t.lastUsed = g.clock
	}
	return t, nil
}

// markLost flags t unrecoverable. Caller holds t.mu.
func (g *Registry) markLost(t *tenant) {
	g.mu.Lock()
	if !t.lost {
		t.lost = true
		g.lostCount++
	}
	g.mu.Unlock()
}

// ensureResident restores a parked tenant from its spill (admission
// included). A corrupt spill has already been quarantined by the store
// when Get reports it; a checkpoint that passes the store's integrity
// check but fails the session decode is quarantined here. Either way —
// and for a missing spill — the tenant is marked lost and the error is
// a typed ErrTenantLost; the registry itself stays healthy. Caller
// holds t.mu.
func (g *Registry) ensureResident(t *tenant) error {
	if t.deleted {
		return ErrNotFound
	}
	if t.lost {
		return fmt.Errorf("%w: %s", ErrTenantLost, t.name)
	}
	if t.sess != nil {
		return nil
	}
	if err := g.admit(t); err != nil {
		return err
	}
	data, _, err := g.store.Get(t.name)
	if err != nil {
		g.unadmit(t)
		g.markLost(t)
		return fmt.Errorf("%w: %s: spill unreadable: %v", ErrTenantLost, t.name, err)
	}
	sess, err := repart.NewSessionFromCheckpoint(mpi.NewWorld(t.p), data, t.cfg)
	if err != nil {
		g.unadmit(t)
		_ = g.store.Quarantine(t.name)
		g.markLost(t)
		return fmt.Errorf("%w: %s: spill undecodable (quarantined): %v", ErrTenantLost, t.name, err)
	}
	// The spill stays in the store (t.spilled stays true): it is still
	// the current state until a mutating verb lands, so a crash right
	// after this restore loses nothing.
	t.sess = sess
	t.restores++
	g.mu.Lock()
	t.resident = true
	g.restores++
	g.mu.Unlock()
	return nil
}

// handleBroken releases the session of a tenant whose world broke
// mid-verb (rank panic, injected fault, or a cancelled request context
// aborting the run): the resident state is unusable. With a current
// spill the tenant simply re-parks — the next touch restores the
// pre-verb state, the retry semantics RepartitionWithRetry gives a
// single session. Without one, the only copy is gone: lost. Caller
// holds t.mu.
func (g *Registry) handleBroken(t *tenant) {
	if t.sess == nil {
		return
	}
	t.sess.Close()
	t.sess = nil
	g.mu.Lock()
	t.resident = false
	g.residentBytes -= t.bytes
	g.mu.Unlock()
	if !t.spilled {
		g.markLost(t)
	}
}

// withTenant runs fn on the (restored-if-parked) tenant's session,
// under the tenant mutex. fn reports whether it mutated session state;
// a successful mutation invalidates the tenant's spill (the store copy
// is deleted so crash recovery can never resurrect the pre-mutation
// state), and a world-breaking failure re-parks or loses the tenant
// (see handleBroken).
func (g *Registry) withTenant(name string, fn func(t *tenant) (mutated bool, err error)) error {
	t, err := g.lookup(name, true)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := g.ensureResident(t); err != nil {
		return err
	}
	mutated, err := fn(t)
	if err != nil {
		if errors.Is(err, mpi.ErrBroken) {
			g.handleBroken(t)
		}
		return err
	}
	if mutated && t.spilled {
		if derr := g.store.Delete(t.name); derr == nil {
			t.spilled = false
		}
	}
	return nil
}

// Partition computes the tenant's cold initial partition and returns
// the assignment. Cancelling ctx aborts the verb mid-run (nil = not
// cancellable); the context never influences the computed partition.
func (g *Registry) Partition(ctx context.Context, name string) (partition.P, error) {
	var p partition.P
	err := g.withTenant(name, func(t *tenant) (bool, error) {
		var err error
		p, err = t.sess.PartitionCtx(ctx)
		if err == nil {
			t.steps++
		}
		return err == nil, err
	})
	return p, err
}

// Repartition runs one warm repartitioning step.
func (g *Registry) Repartition(ctx context.Context, name string) (partition.P, repart.Stats, error) {
	var p partition.P
	var st repart.Stats
	err := g.withTenant(name, func(t *tenant) (bool, error) {
		var err error
		p, st, err = t.sess.RepartitionCtx(ctx)
		if err == nil {
			t.steps++
		}
		return err == nil, err
	})
	return p, st, err
}

// RepartitionIfAbove runs a warm step only when the current imbalance
// exceeds eps, reporting whether it acted.
func (g *Registry) RepartitionIfAbove(ctx context.Context, name string, eps float64) (partition.P, repart.Stats, bool, error) {
	var p partition.P
	var st repart.Stats
	var acted bool
	err := g.withTenant(name, func(t *tenant) (bool, error) {
		var err error
		p, st, acted, err = t.sess.RepartitionIfAboveCtx(ctx, eps)
		if err == nil && acted {
			t.steps++
		}
		return err == nil && acted, err
	})
	return p, st, acted, err
}

// UpdateWeights replaces the tenant's point weights (nil = unit).
func (g *Registry) UpdateWeights(name string, weights []float64) error {
	return g.withTenant(name, func(t *tenant) (bool, error) {
		err := t.sess.UpdateWeights(weights)
		return err == nil, err
	})
}

// UpdateCoords replaces the tenant's point coordinates (flat, n·dim).
func (g *Registry) UpdateCoords(name string, coords []float64) error {
	return g.withTenant(name, func(t *tenant) (bool, error) {
		err := t.sess.UpdateCoords(coords)
		return err == nil, err
	})
}

// Imbalance measures the tenant's current imbalance.
func (g *Registry) Imbalance(name string) (float64, error) {
	var imb float64
	err := g.withTenant(name, func(t *tenant) (bool, error) {
		var err error
		imb, err = t.sess.Imbalance()
		return false, err
	})
	return imb, err
}

// Blocks returns the tenant's current partition (nil if none yet).
func (g *Registry) Blocks(name string) ([]int32, error) {
	var b []int32
	err := g.withTenant(name, func(t *tenant) (bool, error) {
		b = t.sess.Blocks()
		return false, nil
	})
	return b, err
}

// Checkpoint serializes the tenant's session. A parked tenant answers
// from its spilled bytes without being restored (the spill is verified
// by the store; a corrupt one marks the tenant lost, exactly as a
// restore would).
func (g *Registry) Checkpoint(name string) ([]byte, error) {
	t, err := g.lookup(name, true)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.deleted {
		return nil, ErrNotFound
	}
	if t.lost {
		return nil, fmt.Errorf("%w: %s", ErrTenantLost, t.name)
	}
	if t.sess == nil {
		data, _, err := g.store.Get(t.name)
		if err != nil {
			g.markLost(t)
			return nil, fmt.Errorf("%w: %s: spill unreadable: %v", ErrTenantLost, t.name, err)
		}
		return data, nil
	}
	return t.sess.Checkpoint()
}

// Evict force-parks a tenant as checkpoint bytes, releasing its
// resident state. Evicting a parked tenant is a no-op. Eviction does
// not refresh the tenant's LRU stamp.
func (g *Registry) Evict(name string) error {
	t, err := g.lookup(name, false)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.deleted {
		return ErrNotFound
	}
	if t.sess == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.evictLocked(t)
}

// Sweep parks every resident tenant whose last touch is at least
// maxIdle verbs old on the registry's logical clock — the idle-eviction
// policy a server loop runs periodically. Returns how many tenants it
// parked. Busy tenants are skipped, never blocked on.
func (g *Registry) Sweep(maxIdle int64) int {
	if maxIdle < 1 {
		maxIdle = 1
	}
	g.mu.Lock()
	var idle []*tenant
	for _, t := range g.tenants {
		if t.resident && g.clock-t.lastUsed >= maxIdle {
			idle = append(idle, t)
		}
	}
	g.mu.Unlock()

	parked := 0
	for _, t := range idle {
		if !t.mu.TryLock() {
			continue // busy = not idle after all
		}
		g.mu.Lock()
		if t.sess != nil && !t.deleted && g.clock-t.lastUsed >= maxIdle {
			if err := g.evictLocked(t); err == nil {
				parked++
			}
		}
		g.mu.Unlock()
		t.mu.Unlock()
	}
	return parked
}

// Delete removes a tenant and releases its state (resident or parked).
// Blocks until the tenant's in-flight verb (if any) completes.
func (g *Registry) Delete(name string) error {
	g.mu.Lock()
	if g.draining {
		g.mu.Unlock()
		return ErrDraining
	}
	t, ok := g.tenants[name]
	if !ok {
		g.mu.Unlock()
		return ErrNotFound
	}
	delete(g.tenants, name)
	g.mu.Unlock()

	t.mu.Lock()
	defer t.mu.Unlock()
	t.deleted = true
	if t.spilled {
		_ = g.store.Delete(t.name)
		t.spilled = false
	}
	if t.sess != nil {
		t.sess.Close()
		t.sess = nil
		g.mu.Lock()
		t.resident = false
		g.residentBytes -= t.bytes
		g.mu.Unlock()
	}
	return nil
}

// TenantInfo is one row of List.
type TenantInfo struct {
	Name     string `json:"name"`
	K        int    `json:"k"`
	P        int    `json:"p"`
	N        int    `json:"n"`
	Dim      int    `json:"dim"`
	Workers  int    `json:"workers"`
	Resident bool   `json:"resident"`
	Spilled  bool   `json:"spilled"`
	Lost     bool   `json:"lost"`
	Bytes    int64  `json:"bytes"`
	Steps    int64  `json:"steps"`
	Evicted  int64  `json:"evictions"`
	Restored int64  `json:"restores"`
}

// List returns all tenants, sorted by name. Purely observational: no
// LRU touch, no restore; counters of a busy tenant are read as of its
// last completed verb.
func (g *Registry) List() []TenantInfo {
	g.mu.Lock()
	ts := make([]*tenant, 0, len(g.tenants))
	for _, t := range g.tenants {
		ts = append(ts, t)
	}
	g.mu.Unlock()
	sort.Slice(ts, func(i, j int) bool { return ts[i].name < ts[j].name })
	out := make([]TenantInfo, 0, len(ts))
	for _, t := range ts {
		t.mu.Lock()
		out = append(out, TenantInfo{
			Name: t.name, K: t.k, P: t.p, N: t.n, Dim: t.dim,
			Workers:  t.cfg.Lease.Budget(),
			Resident: t.sess != nil, Spilled: t.spilled, Lost: t.lost,
			Bytes: t.bytes, Steps: t.steps,
			Evicted: t.evictions, Restored: t.restores,
		})
		t.mu.Unlock()
	}
	return out
}

// RegistryStats is the shared-accounting snapshot of Stats.
type RegistryStats struct {
	Tenants       int   `json:"tenants"`
	Resident      int   `json:"resident"`
	Parked        int   `json:"parked"`
	Lost          int64 `json:"lost"`
	ResidentBytes int64 `json:"resident_bytes"`
	Evictions     int64 `json:"evictions"`
	Restores      int64 `json:"restores"`
	WorkerBudget  int   `json:"worker_budget"`
	Draining      bool  `json:"draining"`
}

// Stats snapshots the registry's shared accounting.
func (g *Registry) Stats() RegistryStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	st := RegistryStats{
		Tenants:       len(g.tenants),
		Lost:          g.lostCount,
		ResidentBytes: g.residentBytes,
		Evictions:     g.evictions,
		Restores:      g.restores,
		WorkerBudget:  g.pool.Capacity(),
		Draining:      g.draining,
	}
	for _, t := range g.tenants {
		if t.resident {
			st.Resident++
		} else {
			st.Parked++
		}
	}
	return st
}

// Drain rejects all further verbs (ErrDraining), waits for every
// in-flight verb to complete, parks every resident tenant's state to
// the store (best-effort — a tenant whose checkpoint or spill write
// fails is released without one), and releases all sessions — the
// graceful-shutdown half the HTTP server calls after it stops
// accepting connections. With a disk store the spills survive the
// process: the next daemon's Recover re-registers them. Returns how
// many tenants it parked. Idempotent (later calls park nothing).
func (g *Registry) Drain() int {
	g.mu.Lock()
	if g.draining {
		g.mu.Unlock()
		return 0
	}
	g.draining = true
	ts := make([]*tenant, 0, len(g.tenants))
	for _, t := range g.tenants {
		ts = append(ts, t)
	}
	g.mu.Unlock()

	parked := 0
	for _, t := range ts {
		t.mu.Lock() // waits out the in-flight verb
		if t.sess != nil && !t.deleted {
			if data, err := t.sess.Checkpoint(); err == nil {
				if g.store.Put(t.name, data, t.spillMetaJSON()) == nil {
					t.spilled = true
					parked++
				}
			}
			t.sess.Close()
			t.sess = nil
			g.mu.Lock()
			t.resident = false
			g.residentBytes -= t.bytes
			g.mu.Unlock()
		}
		t.deleted = true
		t.mu.Unlock()
	}
	g.mu.Lock()
	clear(g.tenants)
	g.mu.Unlock()
	return parked
}

// Recover scans the registry's store and registers a parked tenant for
// every surviving spill — the crash-recovery half cmd/geographerd runs
// at startup over its -spill-dir. Each recovered tenant is registered
// cold (parked, LRU-oldest) and restores on first touch; its session
// configuration is rebuilt from the spill's metadata record exactly as
// Create built it, so the restored chain is bit-identical to the one
// the dead process was running. Spills the store quarantines during
// the scan, spills with undecodable metadata, and names already
// registered are skipped. Returns how many tenants were registered.
func (g *Registry) Recover() (int, error) {
	entries, err := g.store.List()
	if err != nil {
		return 0, fmt.Errorf("serve: recover: %w", err)
	}
	n := 0
	for _, e := range entries {
		var m spillMeta
		if err := json.Unmarshal(e.Meta, &m); err != nil {
			continue
		}
		cfg, p, err := TenantOptions{
			K: m.K, Processes: m.P, Workers: m.Workers,
			Epsilon: m.Epsilon, Seed: m.Seed,
		}.config()
		if err != nil || p != m.P || m.N < 1 || m.Dim < 1 {
			continue
		}
		cfg.Lease = g.pool.Lease(m.Workers)
		t := &tenant{
			name: e.Key, k: m.K, p: p, workers: m.Workers, cfg: cfg,
			n: m.N, dim: m.Dim,
			bytes:   residentBytesEstimate(m.N, m.Dim, m.K, p),
			spilled: true,
			steps:   m.Steps,
		}
		g.mu.Lock()
		if g.draining {
			g.mu.Unlock()
			return n, ErrDraining
		}
		if _, ok := g.tenants[e.Key]; ok {
			g.mu.Unlock()
			continue
		}
		g.tenants[e.Key] = t
		g.mu.Unlock()
		n++
	}
	return n, nil
}
