package serve

// HTTP front end over the registry verbs: JSON in/out, one route per
// Session verb, typed registry and session errors mapped to distinct
// status codes (see errStatus). cmd/geographerd mounts this handler;
// it stays in internal/serve so the mapping is testable with
// httptest and the daemon binary is wiring only.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"geographer/internal/geom"
	"geographer/internal/mpi"
	"geographer/internal/repart"
)

// createRequest is the POST /v1/tenants body.
type createRequest struct {
	Name string `json:"name"`
	// Dim and Coords define the point set (flat, n·dim). Weights are
	// optional (nil = unit weights).
	Dim     int       `json:"dim"`
	Coords  []float64 `json:"coords"`
	Weights []float64 `json:"weights,omitempty"`

	K         int     `json:"k"`
	Processes int     `json:"processes,omitempty"`
	Workers   int     `json:"workers,omitempty"`
	Epsilon   float64 `json:"epsilon,omitempty"`
	Seed      int64   `json:"seed,omitempty"`
}

// stepResponse is the JSON shape of partition/repartition responses.
type stepResponse struct {
	Acted  bool    `json:"acted"`
	Assign []int32 `json:"assign,omitempty"`

	PreImbalance   float64 `json:"pre_imbalance,omitempty"`
	Imbalance      float64 `json:"imbalance"`
	MigratedWeight float64 `json:"migrated_weight,omitempty"`
	MigratedPoints int     `json:"migrated_points,omitempty"`
	DistCalcs      int64   `json:"dist_calcs,omitempty"`
	Incremental    bool    `json:"incremental,omitempty"`
	BoundaryFrac   float64 `json:"boundary_frac,omitempty"`
}

// errStatus maps the typed error surface to HTTP status codes. Every
// distinct failure mode the ISSUE names gets its own code: a missing
// tenant is 404, a duplicate create 409, admission rejection 429 (the
// request may succeed once a tenant goes idle), a draining registry
// 503 (shutting down — retry elsewhere), lost tenant state — corrupt
// or missing spill, quarantined — 410 (gone for good; Delete and
// re-Create), a closed session 410 likewise, a broken simulated world
// 500, and anything else — validation — 400.
func errStatus(err error) int {
	switch {
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrExists):
		return http.StatusConflict
	case errors.Is(err, ErrAdmission):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrTenantLost):
		return http.StatusGone
	case errors.Is(err, repart.ErrClosed):
		return http.StatusGone
	case errors.Is(err, mpi.ErrBroken):
		return http.StatusInternalServerError
	default:
		return http.StatusBadRequest
	}
}

func writeErr(w http.ResponseWriter, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(errStatus(err))
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// maxBodyBytes bounds request bodies (coordinates dominate; 1<<28 is
// ~16M points in 2D).
const maxBodyBytes = 1 << 28

func readJSON(w http.ResponseWriter, r *http.Request, v any) error {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		return fmt.Errorf("serve: read body: %w", err)
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("serve: decode body: %w", err)
	}
	return nil
}

// NewHandler returns the HTTP API over the registry:
//
//	POST   /v1/tenants                     create a tenant (ingest)
//	GET    /v1/tenants                     list tenants
//	GET    /v1/stats                       registry accounting
//	GET    /v1/tenants/{name}             tenant info
//	DELETE /v1/tenants/{name}             delete tenant
//	POST   /v1/tenants/{name}/partition    cold initial partition
//	POST   /v1/tenants/{name}/repartition  warm step; body {"eps": x}
//	                                       runs only above imbalance x
//	POST   /v1/tenants/{name}/weights      replace weights
//	POST   /v1/tenants/{name}/coords       replace coordinates
//	GET    /v1/tenants/{name}/imbalance    measure current imbalance
//	GET    /v1/tenants/{name}/assign       current partition
//	GET    /v1/tenants/{name}/checkpoint   checkpoint bytes (octet-stream)
//	POST   /v1/tenants/{name}/evict        force-park to checkpoint bytes
func NewHandler(g *Registry) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /v1/tenants", func(w http.ResponseWriter, r *http.Request) {
		var req createRequest
		if err := readJSON(w, r, &req); err != nil {
			writeErr(w, err)
			return
		}
		ps := &geom.PointSet{Dim: req.Dim, Coords: req.Coords, Weight: req.Weights}
		err := g.Create(r.Context(), req.Name, ps, TenantOptions{
			K: req.K, Processes: req.Processes, Workers: req.Workers,
			Epsilon: req.Epsilon, Seed: req.Seed,
		})
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, map[string]string{"name": req.Name})
	})

	mux.HandleFunc("GET /v1/tenants", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, g.List())
	})

	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, g.Stats())
	})

	mux.HandleFunc("GET /v1/tenants/{name}", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		for _, ti := range g.List() {
			if ti.Name == name {
				writeJSON(w, http.StatusOK, ti)
				return
			}
		}
		writeErr(w, ErrNotFound)
	})

	mux.HandleFunc("DELETE /v1/tenants/{name}", func(w http.ResponseWriter, r *http.Request) {
		if err := g.Delete(r.PathValue("name")); err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"deleted": true})
	})

	mux.HandleFunc("POST /v1/tenants/{name}/partition", func(w http.ResponseWriter, r *http.Request) {
		p, err := g.Partition(r.Context(), r.PathValue("name"))
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, stepResponse{Acted: true, Assign: p.Assign})
	})

	mux.HandleFunc("POST /v1/tenants/{name}/repartition", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Eps float64 `json:"eps"`
		}
		if err := readJSON(w, r, &req); err != nil {
			writeErr(w, err)
			return
		}
		p, st, acted, err := g.RepartitionIfAbove(r.Context(), r.PathValue("name"), req.Eps)
		if err != nil {
			writeErr(w, err)
			return
		}
		resp := stepResponse{
			Acted:        acted,
			PreImbalance: st.PreImbalance,
			Imbalance:    st.Info.Imbalance,
		}
		if acted {
			resp.Assign = p.Assign
			resp.MigratedWeight = st.MigratedWeight
			resp.MigratedPoints = st.MigratedPoints
			resp.DistCalcs = st.DistCalcs
			resp.Incremental = st.Incremental
			resp.BoundaryFrac = st.BoundaryFrac
		} else {
			resp.Imbalance = st.PreImbalance
		}
		writeJSON(w, http.StatusOK, resp)
	})

	mux.HandleFunc("POST /v1/tenants/{name}/weights", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Weights []float64 `json:"weights"`
		}
		if err := readJSON(w, r, &req); err != nil {
			writeErr(w, err)
			return
		}
		if err := g.UpdateWeights(r.PathValue("name"), req.Weights); err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})

	mux.HandleFunc("POST /v1/tenants/{name}/coords", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Coords []float64 `json:"coords"`
		}
		if err := readJSON(w, r, &req); err != nil {
			writeErr(w, err)
			return
		}
		if err := g.UpdateCoords(r.PathValue("name"), req.Coords); err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})

	mux.HandleFunc("GET /v1/tenants/{name}/imbalance", func(w http.ResponseWriter, r *http.Request) {
		imb, err := g.Imbalance(r.PathValue("name"))
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]float64{"imbalance": imb})
	})

	mux.HandleFunc("GET /v1/tenants/{name}/assign", func(w http.ResponseWriter, r *http.Request) {
		b, err := g.Blocks(r.PathValue("name"))
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string][]int32{"assign": b})
	})

	mux.HandleFunc("GET /v1/tenants/{name}/checkpoint", func(w http.ResponseWriter, r *http.Request) {
		data, err := g.Checkpoint(r.PathValue("name"))
		if err != nil {
			writeErr(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(data)
	})

	mux.HandleFunc("POST /v1/tenants/{name}/evict", func(w http.ResponseWriter, r *http.Request) {
		if err := g.Evict(r.PathValue("name")); err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]bool{"parked": true})
	})

	return mux
}
