package core

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"geographer/internal/dsort"
	"geographer/internal/exact"
	"geographer/internal/geom"
	"geographer/internal/mpi"
	"geographer/internal/partition"
	"geographer/internal/sched"
	"geographer/internal/sfc"
)

// BalancedKMeans is the Geographer partitioner. It implements
// partition.Distributed; one value may be used for several Partition
// calls (the Info of the most recent call is retained).
type BalancedKMeans struct {
	Cfg Config

	mu   sync.Mutex
	info Info
}

// New returns a partitioner with the given configuration.
func New(cfg Config) *BalancedKMeans { return &BalancedKMeans{Cfg: cfg} }

// Name implements partition.Distributed.
func (b *BalancedKMeans) Name() string { return "Geographer" }

// LastInfo returns diagnostics of the most recent Partition call
// (aggregated over ranks).
func (b *BalancedKMeans) LastInfo() Info {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.info
}

// state is the per-rank working set of Algorithm 1/2.
type state struct {
	c   *mpi.Comm
	cfg Config
	dim int
	k   int

	// Local points (possibly redistributed by the SFC sort), stored as
	// SoA columns so the batch kernels can stream them.
	X   geom.Cols
	W   []float64
	IDs []int64

	perm    []int32 // random order for the sampled initialization
	allIdx  []int32 // identity order, used once the sample covers everything
	nSample int     // currently active prefix of perm

	A      []int32 // assignment per local point (-1 = unassigned)
	ub, lb []float64
	lbk    []float64 // Elkan mode: raw-distance lower bounds, len n·k

	centers   []float64 // k flat center rows, stride dim
	influence []float64
	targets   []float64 // per-block global target weights

	// Per-round kernel tables (squared effective-distance space).
	orderedCenters []int32
	distToBB2      []float64
	localW         []float64
	invInf2        []float64
	centerCols     geom.Cols

	// Hoisted outer-loop scratch, allocated once per Partition call.
	oldInfluence []float64
	newCenters   []float64 // k flat rows, stride dim
	deltas       []float64
	centVec      []float64 // computeCenters reduction buffer, k·(dim+1)
	perCenter    []float64 // per-center shift scratch, len k

	// Pending influence rescale of the distance bounds: instead of an
	// eager O(n) pass after every influence change, the per-center
	// ratios wait here and the next kernel pass applies them at each
	// point visit (every sampled point is visited exactly once per
	// round, so each ratio is consumed exactly once — bit-identical to
	// the eager pass). applyPendingBounds materializes eagerly on the
	// rare paths where no kernel pass follows before bounds are read.
	pendUbRatio []float64
	pendLbRatio float64
	pendScaled  bool

	// Intra-rank sharding: the sample is split on a fixed chunk grid
	// (kernelChunks, a function of the sample size only); up to
	// `workers` concurrent workers — the caller plus helpers leased
	// from the shared pool (internal/sched) — process the chunks when
	// spare cores exist beyond the simulated world size. One kernel
	// value per chunk.
	workers int
	lease   *sched.Lease
	shards  []geom.AssignKernel

	diag float64 // global bounding-box diagonal

	// anySampling is published by assignAndBalance (it rides in the
	// balance collective): whether any rank's sample is still growing.
	anySampling bool

	globalN int64 // global point count, fixed at init

	// Warm-start repartitioning (cfg.WarmCenters): global float sums are
	// taken through order-independent exact accumulators so the output
	// does not depend on how points are grouped into ranks or kernel
	// chunks (see DESIGN.md, "Repartitioning invariants").
	warm   bool
	totalW float64 // exact global point weight
	// The accumulator banks are limb-major (exact.RowSums): their
	// backing arrays double as the reduction wire, and only the touched
	// exponent-row window rides the collective (mpi.AllreduceSumSparse),
	// which is what keeps per-rank exact scratch and per-round collective
	// bytes flat as k and p grow (DESIGN.md, "Scaling invariants").
	exactW   *exact.RowSums // per-block weight accumulators, k sums
	exactC   *exact.RowSums // center accumulators, k·(dim+1) sums
	exactTot *exact.RowSums // global weight accumulator, 1 sum

	// Small reusable collective buffers of the steady-state path: the
	// diagnostics counter reduction of finish and the fused bounding-box
	// fold (mins and negated maxs in one vector, see reduceBounds).
	ctrBuf []int64
	boxBuf []float64

	// Flat per-round sample bounding box (any dimension), len dim each.
	bbMin, bbMax []float64

	// Cross-run bound carrying (cfg.Incremental, warm resident path; see
	// warm.go and DESIGN.md, "Incremental bound invariants"). The stored
	// A/ub/lb/lbk stay valid between PartitionResident calls relative to
	// boundCenters (the centers of the run's most recent kernel pass)
	// and the final influence values; the next warm run corrects them by
	// the per-center drift instead of resetting to "unknown".
	boundCenters []float64  // flat k·dim centers the stored bounds are valid against
	carryValid   bool       // a previous warm run left reusable bounds
	carryBounds  BoundsKind // bounds mode that produced them
	carryK       int        // k that produced them
	worklist     []int32    // boundary points of an incremental first pass
	useWorklist  bool       // consume worklist on the next kernel pass

	// Raw-space shadow of the Hamerly lower bound (trackRaw runs): the
	// influence-free min distance to any non-assigned center. Influence
	// rescales cannot touch it, so it converts losslessly across runs
	// (effective bounds lose the whole influence spread) and floors the
	// balance loop's compounding lb decay (geom.AssignKernel.RawLb).
	rlb      []float64
	trackRaw bool    // maintain rlb this run (warm+incremental+Hamerly)
	rawLbInv float64 // per-round conservative 1/max-influence for the floor

	// Center-center pruning tables of the raw pass (k×k, rebuilt once
	// per assignAndBalance call — centers are fixed across its balance
	// rounds): ccOrder rows list centers ascending by raw distance from
	// the row's center, ccDist the matching (conservatively deflated)
	// distances (geom.AssignKernel.CCOrder/CCDist).
	ccOrder []int32
	ccDist  []float64

	info Info
}

// Partition implements partition.Distributed: Algorithm 2 of the paper.
func (b *BalancedKMeans) Partition(c *mpi.Comm, pts *partition.Local, k int) ([]int64, []int32, error) {
	if k < 1 {
		return nil, nil, fmt.Errorf("core: k=%d", k)
	}
	cfg := b.Cfg.normalized()
	if err := cfg.Validate(k); err != nil {
		return nil, nil, err
	}
	if len(cfg.WarmCenters) > 0 {
		// Warm-start repartitioning: the §4.1 ingest pipeline is skipped
		// entirely (see Ingest/runResident in session.go — the same code
		// the long-lived session API reuses across timesteps; here the
		// resident state lives for a single call). The one-time column
		// build is attributed to the SFC phase slot for the one-shot
		// caller's phase breakdown.
		r := Ingest(c, pts)
		ids, blocks, err := b.runResident(c, r, k, cfg)
		if err == nil && c.Rank() == 0 {
			b.mu.Lock()
			b.info.SFCSeconds = r.IngestSeconds()
			b.mu.Unlock()
		}
		return ids, blocks, err
	}
	if pts.Dim > geom.MaxDim {
		// The Hilbert curve exists only for spatial dimensions; feature-
		// space inputs always ingest by id order (the warm path skips the
		// bootstrap entirely anyway) and stay on the SoA pipeline.
		cfg.SFCBootstrap = false
	}
	st := &state{c: c, cfg: cfg, dim: pts.Dim, k: k}

	// ---- Phase 1: space-filling curve keys (§4.1). -----------------------
	// The SoA fast path fills flat dsort columns straight from the input
	// and computes keys through the batch kernel; the retained Item
	// reference path (per-point Curve.Key, sort.Slice-based sort) is
	// selected by the test-only ingestReference hook so the differential
	// test can pin both pipelines bit-identical end-to-end.
	tStart := time.Now()
	bmin, bmax := globalBounds(c, pts)
	st.diag = geom.FlatBoxDiagonal(bmin, bmax)
	if st.diag == 0 {
		st.diag = 1
	}
	var cols *dsort.Cols
	var items []dsort.Item
	if ingestReference && pts.Dim <= geom.MaxDim {
		items = make([]dsort.Item, pts.Len())
		if cfg.SFCBootstrap {
			curve := sfc.NewCurve(boxFromFlat(bmin, bmax, pts.Dim), pts.Dim)
			for i := range items {
				items[i] = dsort.Item{Key: curve.Key(pts.At(i)), ID: pts.IDs[i], W: pts.Weight(i), X: pts.At(i)}
			}
			c.AddOps(int64(len(items)))
		} else {
			for i := range items {
				items[i] = dsort.Item{Key: uint64(pts.IDs[i]), ID: pts.IDs[i], W: pts.Weight(i), X: pts.At(i)}
			}
		}
	} else {
		cols = dsort.NewCols(st.dim, pts.Len())
		for d := 0; d < st.dim; d++ {
			col := cols.C[d]
			for i := range col {
				col[i] = pts.Coords[i*st.dim+d]
			}
		}
		for i := range cols.IDs {
			cols.IDs[i] = pts.IDs[i]
			cols.W[i] = pts.Weight(i)
		}
		if cfg.SFCBootstrap {
			curve := sfc.NewCurve(boxFromFlat(bmin, bmax, pts.Dim), pts.Dim)
			gv := cols.GeomView()
			curve.KeysColsParallel(&gv, cols.Keys, resolveWorkers(cfg, c.Size()), cfg.Lease)
			c.AddOps(int64(cols.Len()))
		} else {
			for i := range cols.Keys {
				cols.Keys[i] = uint64(pts.IDs[i])
			}
		}
	}
	st.info.SFCSeconds = time.Since(tStart).Seconds()

	// ---- Phase 2: global sort + redistribution (Algorithm 2, l. 4–6). ----
	tSort := time.Now()
	if items != nil {
		if cfg.SFCBootstrap {
			items = dsort.SampleSort(c, items)
			items = dsort.Rebalance(c, items)
		}
		st.X = geom.MakeCols(st.dim, len(items))
		st.W = make([]float64, len(items))
		st.IDs = make([]int64, len(items))
		for i, it := range items {
			st.X.Set(i, it.X)
			st.W[i], st.IDs[i] = it.W, it.ID
		}
	} else {
		if cfg.SFCBootstrap {
			cols = dsort.SampleSortCols(c, cols)
			cols = dsort.RebalanceCols(c, cols)
		}
		// The k-means phase adopts the sorted columns in place: absent
		// axes get zero columns (Geom), nothing is copied back through
		// []dsort.Item.
		st.X = cols.Geom()
		st.W = cols.W
		st.IDs = cols.IDs
	}
	st.info.SortSeconds = time.Since(tSort).Seconds()

	// ---- Phase 3: balanced k-means (Algorithm 2, l. 7–19). ---------------
	return b.finish(st)
}

// finish runs the k-means phase on an ingested state and aggregates the
// per-rank diagnostics (rank 0 keeps the result).
func (b *BalancedKMeans) finish(st *state) ([]int64, []int32, error) {
	tKM := time.Now()
	if err := st.initCentersAndTargets(); err != nil {
		return nil, nil, err
	}
	st.run()
	st.info.KMeansSeconds = time.Since(tKM).Seconds()

	// Non-carried runs assign every point fresh in their first pass, so
	// the whole local set is "boundary" by definition.
	if !st.info.CarriedBounds {
		st.info.BoundaryPoints = int64(st.X.Len())
	}
	counters := st.ctrBuf
	counters[0], counters[1], counters[2] = st.info.DistCalcs, st.info.HamerlySkips, st.info.BBoxBreaks
	counters[3], counters[4], counters[5] = st.info.Visits, st.info.BoundaryPoints, boolTo64(st.info.CarriedBounds)
	mpi.AllreduceSumInto(st.c, counters, counters)
	st.info.DistCalcs, st.info.HamerlySkips, st.info.BBoxBreaks = counters[0], counters[1], counters[2]
	st.info.Visits, st.info.BoundaryPoints = counters[3], counters[4]
	// The incremental fast path "was taken" only if every rank reused
	// its carried bounds (per-rank fallbacks never change the output,
	// but a mixed step is not the fast path).
	st.info.CarriedBounds = counters[5] == int64(st.c.Size())
	if st.globalN > 0 {
		st.info.BoundaryFrac = float64(st.info.BoundaryPoints) / float64(st.globalN)
	}
	if st.c.Rank() == 0 {
		b.mu.Lock()
		b.info = st.info
		b.mu.Unlock()
	}
	return st.IDs, st.A, nil
}

// globalBounds computes the flat bounding box of the distributed point
// set (any dimension).
func globalBounds(c *mpi.Comm, pts *partition.Local) (bmin, bmax []float64) {
	buf := localBoundsInit(nil, pts.Dim)
	n := pts.Len()
	for i := 0; i < n; i++ {
		foldBounds(buf, pts.Coord(i), pts.Dim)
	}
	bmin = make([]float64, pts.Dim)
	bmax = make([]float64, pts.Dim)
	reduceBounds(c, pts.Dim, buf, bmin, bmax)
	return bmin, bmax
}

// boxFromFlat packs a flat spatial bounding box into a geom.Box (the
// space-filling-curve bootstrap needs one; dim ≤ geom.MaxDim only).
func boxFromFlat(bmin, bmax []float64, dim int) geom.Box {
	box := geom.Box{Dim: dim}
	copy(box.Min[:dim], bmin)
	copy(box.Max[:dim], bmax)
	return box
}

// localBoundsInit prepares the fold buffer of a bounds pass: dim mins
// followed by dim *negated* maxs, all starting at +Inf, so the whole box
// reduces with a single AllreduceMin (max x = -min(-x), including the
// IEEE zero-sign tie-breaks). Reuses buf when it is large enough —
// the resident path passes a persistent buffer and stays allocation-free.
func localBoundsInit(buf []float64, dim int) []float64 {
	if cap(buf) < 2*dim {
		buf = make([]float64, 2*dim)
	}
	buf = buf[:2*dim]
	for d := range buf {
		buf[d] = math.Inf(1)
	}
	return buf
}

// foldBounds folds one flat coordinate vector into a localBoundsInit
// buffer.
func foldBounds(buf []float64, x []float64, dim int) {
	for d := 0; d < dim; d++ {
		buf[d] = math.Min(buf[d], x[d])
		buf[dim+d] = math.Min(buf[dim+d], -x[d])
	}
}

// reduceBounds is the collective half of a global bounding-box
// computation, shared by globalBounds and Resident.RecomputeBounds so
// the two can never drift apart (bit-identical boxes are part of the
// session invariants): one element-wise min Allreduce over the packed
// mins/negated-maxs buffer (in place), unpacked into the caller's flat
// min/max slices (len dim each).
func reduceBounds(c *mpi.Comm, dim int, buf, bmin, bmax []float64) {
	mpi.AllreduceMinInto(c, buf, buf)
	for d := 0; d < dim; d++ {
		bmin[d] = buf[d]
		bmax[d] = -buf[dim+d]
	}
}

// resolveWorkers decides how many intra-rank kernel shards to use: spare
// hardware parallelism beyond the one-goroutine-per-rank of the simulated
// world is handed to the assignment kernels. cfg.Workers > 0 forces a
// count (1 = serial), 0 divides the leased worker budget (the process
// default pool when cfg.Lease is nil — GOMAXPROCS — or the tenant's
// slice of it under internal/serve) evenly across the simulated ranks.
// The division can round to 0 at high worldSize; the result is always
// validated back to ≥ 1 — a rank is never left without its inline
// worker.
func resolveWorkers(cfg Config, worldSize int) int {
	w := cfg.Workers
	if w <= 0 && worldSize > 0 {
		w = cfg.Lease.Budget() / worldSize
	}
	if w < 1 {
		w = 1
	}
	if w > maxKernelShards {
		w = maxKernelShards
	}
	return w
}

// maxKernelShards caps the shard fan-out at the shared chunk grid's
// maximum (geom.MaxKernelChunks): more workers than chunks would idle.
const maxKernelShards = geom.MaxKernelChunks

// initCentersAndTargets places the k initial centers — at equal
// distances along the sorted point order (Algorithm 2, line 7: C[i] =
// sortedPoints[i·n/k + n/2k]), or straight from cfg.WarmCenters on the
// warm-start path — and computes per-block target weights.
func (st *state) initCentersAndTargets() error {
	// Scratch first: every reduction below can then run through the
	// persistent buffers, so a steady-state warm call allocates nothing.
	st.trackRaw = st.warm && st.cfg.Incremental && st.cfg.Bounds == BoundsHamerly
	st.ensureScratch()

	n := mpi.ReduceScalarSum(st.c, int64(st.X.Len()))
	if n == 0 {
		return fmt.Errorf("core: empty global point set")
	}
	st.globalN = n

	var totalW float64
	if st.warm {
		st.centers = append(st.centers[:0], st.cfg.WarmCenters...)
		totalW = st.exactTotalW()
	} else if st.dim > geom.MaxDim {
		// Feature-space seeding: the same shared-seed random global
		// indices as the spatial ablation path, gathered through a flat
		// k·dim vector instead of the Point-typed seed structs. Every
		// vector entry is written by exactly one rank (or stays zero),
		// so the sum reduction is exact (0 + x == x) and the seeds are
		// independent of the rank layout.
		start := mpi.ExscanSum(st.c, int64(st.X.Len()))
		seedVec := st.centVec[:st.k*st.dim]
		clear(seedVec)
		rng := rand.New(rand.NewSource(st.cfg.Seed + 1))
		for i := 0; i < st.k; i++ {
			gi := int64(rng.Uint64() % uint64(n))
			if gi >= start && gi < start+int64(st.X.Len()) {
				st.X.AtVec(int(gi-start), seedVec[i*st.dim:(i+1)*st.dim])
			}
		}
		copy(st.centers, mpi.AllreduceSum(st.c, seedVec))
		if st.cfg.Deterministic {
			totalW = st.exactTotalW()
		} else {
			localW := 0.0
			for _, w := range st.W {
				localW += w
			}
			totalW = mpi.ReduceScalarSum(st.c, localW)
		}
	} else {
		start := mpi.ExscanSum(st.c, int64(st.X.Len()))

		type seed struct {
			Idx int32
			X   geom.Point
		}
		var mine []seed
		if st.cfg.SFCBootstrap {
			for i := 0; i < st.k; i++ {
				gi := int64(i)*n/int64(st.k) + n/(2*int64(st.k))
				if gi >= start && gi < start+int64(st.X.Len()) {
					mine = append(mine, seed{Idx: int32(i), X: st.X.At(int(gi - start))})
				}
			}
		} else {
			// Ablation mode: uniform random global indices, chosen identically
			// on every rank from the shared seed.
			rng := rand.New(rand.NewSource(st.cfg.Seed + 1))
			for i := 0; i < st.k; i++ {
				gi := int64(rng.Uint64() % uint64(n))
				if gi >= start && gi < start+int64(st.X.Len()) {
					mine = append(mine, seed{Idx: int32(i), X: st.X.At(int(gi - start))})
				}
			}
		}
		all := mpi.AllgatherFlat(st.c, mine)
		if len(all) != st.k {
			return fmt.Errorf("core: gathered %d centers, want %d", len(all), st.k)
		}
		for _, s := range all {
			copy(st.centers[int(s.Idx)*st.dim:], s.X[:st.dim])
		}
		if st.cfg.Deterministic {
			totalW = st.exactTotalW()
		} else {
			localW := 0.0
			for _, w := range st.W {
				localW += w
			}
			totalW = mpi.ReduceScalarSum(st.c, localW)
		}
	}

	targets, err := partition.Targets(totalW, st.k, st.cfg.TargetFractions)
	if err != nil {
		return err
	}
	st.targets = targets

	if st.carryOK() {
		st.prepareCarried()
	} else {
		st.resetRun()
	}
	return nil
}

// ensureScratch allocates every per-point and per-cluster buffer whose
// size does not match the current problem. On the one-shot paths the
// state is fresh and everything is allocated here, exactly once per
// Partition call — balance rounds and outer iterations must not
// allocate. On the resident path (session API) the buffers already fit
// and this is a no-op, which is the point: a warm timestep performs no
// per-point allocations at all.
func (st *state) ensureScratch() {
	n := st.X.Len()
	// The carried buffers (A/ub/lb here, influence/boundCenters below)
	// are keyed separately from their sibling scratch: a checkpoint
	// restore repopulates only the carried buffers, and the siblings
	// must still be allocated on the first run after the restore.
	if len(st.A) != n {
		st.A = make([]int32, n)
		st.ub = make([]float64, n)
		st.lb = make([]float64, n)
		st.carryValid = false // fresh per-point buffers carry nothing
	}
	if len(st.perm) != n {
		st.perm = make([]int32, n)
		st.allIdx = make([]int32, n)
	}
	if cap(st.worklist) < n {
		st.worklist = make([]int32, 0, n)
	}
	if st.cfg.Bounds == BoundsElkan {
		if len(st.lbk) != n*st.k {
			st.lbk = make([]float64, n*st.k) // zero = trivially valid
		}
	} else {
		st.lbk = nil
	}
	if st.trackRaw && len(st.rlb) != n {
		st.rlb = make([]float64, n) // zero = trivially valid
	}
	if st.trackRaw && len(st.ccDist) != st.k*st.k {
		st.ccDist = make([]float64, st.k*st.k)
		st.ccOrder = make([]int32, st.k*st.k)
	}
	if len(st.influence) != st.k {
		st.influence = make([]float64, st.k)
	}
	if len(st.boundCenters) != st.k*st.dim {
		st.boundCenters = make([]float64, st.k*st.dim)
	}
	if len(st.centers) != st.k*st.dim {
		st.centers = make([]float64, st.k*st.dim)
	}
	if len(st.orderedCenters) != st.k {
		st.orderedCenters = make([]int32, st.k)
		st.distToBB2 = make([]float64, st.k)
		st.invInf2 = make([]float64, st.k)
		st.centerCols = geom.MakeCols(st.dim, st.k)
		st.oldInfluence = make([]float64, st.k)
		st.deltas = make([]float64, st.k)
		st.perCenter = make([]float64, st.k)
		st.pendUbRatio = make([]float64, st.k)
	}
	if len(st.localW) != st.k+2 {
		st.localW = make([]float64, st.k+2) // +2: sample weight and sampling flag ride along
	}
	if len(st.newCenters) != st.k*st.dim {
		st.newCenters = make([]float64, st.k*st.dim)
	}
	if len(st.bbMin) != st.dim {
		st.bbMin = make([]float64, st.dim)
		st.bbMax = make([]float64, st.dim)
	}
	if len(st.centVec) != st.k*(st.dim+1) {
		st.centVec = make([]float64, st.k*(st.dim+1))
	}
	if nc := kernelChunks(n); len(st.shards) != nc || (nc > 0 && len(st.shards[0].LocalW) != st.k) {
		st.shards = make([]geom.AssignKernel, nc)
		for s := range st.shards {
			st.shards[s].LocalW = make([]float64, st.k)
		}
	}
	st.workers = resolveWorkers(st.cfg, st.c.Size())
	st.lease = st.cfg.Lease
	if len(st.ctrBuf) != 6 {
		st.ctrBuf = make([]int64, 6)
	}
	if len(st.boxBuf) != 2*st.dim {
		st.boxBuf = make([]float64, 2*st.dim)
	}
	if st.warm || st.cfg.Deterministic {
		if st.exactW == nil || st.exactW.Len() != st.k {
			st.exactW = exact.NewRowSums(st.k)
		}
		if st.exactC == nil || st.exactC.Len() != st.k*(st.dim+1) {
			st.exactC = exact.NewRowSums(st.k * (st.dim + 1))
		}
		if st.exactTot == nil {
			st.exactTot = exact.NewRowSums(1)
		}
	}
}

// resetRun reinitializes the per-run values of all scratch buffers —
// the write pattern a fresh allocation plus the old inline loops
// produced, so a reused resident state starts a run in a state
// bit-identical to a freshly built one: assignments unassigned, upper
// bounds infinite, lower bounds trivially valid, influences 1, the
// sample covering everything (warm) or shuffled and truncated (cold).
func (st *state) resetRun() {
	for i := range st.influence {
		st.influence[i] = 1
	}
	for i := range st.A {
		st.A[i] = -1
		st.ub[i] = math.Inf(1)
		st.lb[i] = 0
	}
	if st.lbk != nil {
		clear(st.lbk)
	}
	if st.rlb != nil {
		clear(st.rlb)
	}
	for i := range st.perm {
		st.perm[i] = int32(i)
		st.allIdx[i] = int32(i)
	}
	st.nSample = st.X.Len()
	st.pendScaled = false
	st.anySampling = false
	st.useWorklist = false
	if !st.warm {
		// The sampled bootstrap exists to move bad initial centers
		// cheaply; warm starts begin near-converged, so the warm path
		// always runs on the full (linearly iterated) point set — also a
		// determinism requirement, since the shuffle is rank-seeded.
		rng := rand.New(rand.NewSource(st.cfg.Seed + int64(st.c.Rank())*65537 + 7))
		rng.Shuffle(len(st.perm), func(i, j int) { st.perm[i], st.perm[j] = st.perm[j], st.perm[i] })
		if st.cfg.SampledInit && st.X.Len() > 100 {
			st.nSample = 100
		}
	}
}

// run is the main loop of Algorithm 2.
func (st *state) run() {
	threshold := st.cfg.DeltaThreshold * st.diag

	for iter := 0; iter < st.cfg.MaxIter; iter++ {
		st.info.Iterations++
		sampling := st.nSample < st.X.Len()

		// Sampling is a local decision but must stay collectively
		// consistent; ranks may have different local sizes, so they agree
		// on whether anyone is still sampling inside the balance
		// collective (st.anySampling).
		balanced := st.assignAndBalance()

		// New centers: weighted mean of assigned sample points
		// (Algorithm 2, l. 12–13) — one global vector sum.
		moved := st.computeCenters(st.newCenters)

		maxDelta := 0.0
		for b := 0; b < st.k; b++ {
			st.deltas[b] = geom.DistVec(st.centerRow(b), st.newCenters[b*st.dim:(b+1)*st.dim])
			if st.deltas[b] > maxDelta {
				maxDelta = st.deltas[b]
			}
		}

		if !st.anySampling && balanced && maxDelta < threshold {
			copy(st.centers, st.newCenters)
			break
		}

		// Adapt the distance bounds for the upcoming movement
		// (Eqs. (4)–(5), signs corrected; see DESIGN.md). The per-center
		// effective shifts are precomputed so the per-point loops stay
		// division-free.
		switch st.cfg.Bounds {
		case BoundsHamerly:
			maxShift := 0.0
			for b := 0; b < st.k; b++ {
				st.perCenter[b] = st.deltas[b] / st.influence[b]
				if st.perCenter[b] > maxShift {
					maxShift = st.perCenter[b]
				}
			}
			switch {
			case st.nSample == st.X.Len() && st.trackRaw:
				// The raw shadow shrinks by the maximum *raw* movement
				// (influences don't touch raw space), padded so rounding
				// can only loosen it.
				rawShift := maxDelta * (1 + boundSlack)
				for i := range st.A {
					if a := st.A[i]; a >= 0 {
						st.ub[i] += st.perCenter[a]
						st.lb[i] -= maxShift
						st.rlb[i] -= rawShift
					}
				}
			case st.nSample == st.X.Len():
				for i := range st.A {
					if a := st.A[i]; a >= 0 {
						st.ub[i] += st.perCenter[a]
						st.lb[i] -= maxShift
					}
				}
			default:
				// Sampled bootstrap is cold-only; trackRaw never holds here.
				for _, i := range st.perm[:st.nSample] {
					if a := st.A[i]; a >= 0 {
						st.ub[i] += st.perCenter[a]
						st.lb[i] -= maxShift
					}
				}
			}
		case BoundsElkan:
			// Raw-distance bounds shrink by each center's own movement;
			// the upper bound (effective space) grows like Hamerly's.
			for b := 0; b < st.k; b++ {
				st.perCenter[b] = st.deltas[b] / st.influence[b]
			}
			for _, i := range st.sampleIdx() {
				base := int(i) * st.k
				for b := 0; b < st.k; b++ {
					if st.deltas[b] > 0 {
						st.lbk[base+b] -= st.deltas[b]
					}
				}
				if a := st.A[i]; a >= 0 {
					st.ub[i] += st.perCenter[a]
				}
			}
		}

		// The additive updates above re-validate every stored bound
		// against the moved centers; record that for cross-run carrying
		// (the convergence break above leaves boundCenters at the last
		// kernel pass's centers, which is exactly what its bounds are
		// valid for — the final sub-threshold movement is part of the
		// next run's drift correction).
		copy(st.boundCenters, st.newCenters)

		// Influence erosion after movement (Eqs. (2)–(3)): centers that
		// moved far regress their influence toward 1.
		if st.cfg.Erosion && moved {
			copy(st.oldInfluence, st.influence)
			beta := meanNearestCenterDistance(st.centers, st.k, st.dim)

			if beta > 0 {
				for b := 0; b < st.k; b++ {
					alpha := 2/(1+math.Exp(-st.deltas[b]/beta)) - 1
					st.influence[b] = math.Exp((1 - alpha) * math.Log(st.influence[b]))
				}
				st.scaleBoundsForInfluence(st.oldInfluence)
			}
		}

		copy(st.centers, st.newCenters)

		// Grow the sample (§4.5: "After each round with center movement,
		// the sample size is doubled").
		if sampling {
			st.nSample *= 2
			if st.nSample > st.X.Len() {
				st.nSample = st.X.Len()
			}
		}
	}

	// Every point must be assigned: points outside the final sample only
	// exist if MaxIter ran out during sampling; assign them now.
	if st.nSample < st.X.Len() {
		st.nSample = st.X.Len()
		st.assignAndBalance()
	}
	for i := range st.A {
		if st.A[i] < 0 {
			st.A[i] = st.nearestCenter(i)
		}
	}

	if st.cfg.Strict && !st.info.Balanced {
		st.strictFinish()
	}

	// Leave the bounds reusable for the next warm run on this state.
	st.recordCarry()
}

// sampleIdx returns the indices of the active sample. Once the sample
// covers every local point, the identity order replaces the shuffled
// permutation: the index *set* is identical, but linear iteration streams
// the SoA columns and the bound arrays sequentially instead of in random
// order, which is where the per-point passes spend their time. Per-point
// updates are order-independent; weight accumulators only change their
// (deterministic) floating-point summation order.
func (st *state) sampleIdx() []int32 {
	if st.nSample == st.X.Len() {
		return st.allIdx
	}
	return st.perm[:st.nSample]
}

func boolTo64(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// nearestCenter returns the cluster with minimal effective distance to
// local point i. Squared effective distances decide the argmin — x² is
// monotone — so no square root is taken.
func (st *state) nearestCenter(i int) int32 {
	best, bestV := int32(0), math.Inf(1)
	for b := 0; b < st.k; b++ {
		inf := st.influence[b]
		v := st.pointCenterDist2(i, b) / (inf * inf)
		if v < bestV {
			best, bestV = int32(b), v
		}
	}
	st.info.DistCalcs += int64(st.k)
	return best
}

// centerRow returns center b of the flat centers buffer.
func (st *state) centerRow(b int) []float64 {
	return st.centers[b*st.dim : (b+1)*st.dim]
}

// pointCenterDist2 returns the squared raw distance between local point
// i and center b, bit-identical to the kernels' arithmetic at any
// dimension (Dist2 switch at d ≤ geom.MaxDim, colsDist2 order above).
func (st *state) pointCenterDist2(i, b int) float64 {
	if st.dim <= geom.MaxDim {
		var c geom.Point
		copy(c[:st.dim], st.centerRow(b))
		return geom.Dist2(st.X.At(i), c, st.dim)
	}
	s := 0.0
	row := st.centerRow(b)
	for d, col := range st.X.Col {
		t := col[i] - row[d]
		s += t * t
	}
	return s
}

// computeCenters sets out[b] to the weighted mean of the points assigned
// to b (keeping the old center for empty clusters) and reports whether any
// center is based on at least one point.
func (st *state) computeCenters(out []float64) bool {
	if st.warm || st.cfg.Deterministic {
		return st.computeCentersExact(out)
	}
	vec := st.centVec
	clear(vec)
	px, py, pz := st.X.X, st.X.Y, st.X.Z
	full := st.nSample == st.X.Len()
	switch {
	case st.dim == 2 && full:
		for i := range st.A {
			a := st.A[i]
			if a < 0 {
				continue
			}
			base := int(a) * 3
			w := st.W[i]
			vec[base] += w * px[i]
			vec[base+1] += w * py[i]
			vec[base+2] += w
		}
	case st.dim == 2:
		for _, i := range st.perm[:st.nSample] {
			a := st.A[i]
			if a < 0 {
				continue
			}
			base := int(a) * 3
			w := st.W[i]
			vec[base] += w * px[i]
			vec[base+1] += w * py[i]
			vec[base+2] += w
		}
	case st.dim == 3 && full:
		for i := range st.A {
			a := st.A[i]
			if a < 0 {
				continue
			}
			base := int(a) * 4
			w := st.W[i]
			vec[base] += w * px[i]
			vec[base+1] += w * py[i]
			vec[base+2] += w * pz[i]
			vec[base+3] += w
		}
	case st.dim == 3:
		for _, i := range st.perm[:st.nSample] {
			a := st.A[i]
			if a < 0 {
				continue
			}
			base := int(a) * 4
			w := st.W[i]
			vec[base] += w * px[i]
			vec[base+1] += w * py[i]
			vec[base+2] += w * pz[i]
			vec[base+3] += w
		}
	default:
		cols := st.X.Col
		for _, i := range st.sampleIdx() {
			a := st.A[i]
			if a < 0 {
				continue
			}
			base := int(a) * (st.dim + 1)
			w := st.W[i]
			for d, col := range cols {
				vec[base+d] += w * col[i]
			}
			vec[base+st.dim] += w
		}
	}
	st.c.AddOps(int64(st.nSample))
	vec = mpi.AllreduceSum(st.c, vec)
	any := false
	for b := 0; b < st.k; b++ {
		base := b * (st.dim + 1)
		obase := b * st.dim
		w := vec[base+st.dim]
		if w <= 0 {
			copy(out[obase:obase+st.dim], st.centerRow(b))
			continue
		}
		any = true
		for d := 0; d < st.dim; d++ {
			out[obase+d] = vec[base+d] / w
		}
	}
	return any
}

// meanNearestCenterDistance approximates the paper's β(C) ("average
// cluster diameter") by the mean nearest-neighbor distance among centers.
func meanNearestCenterDistance(centers []float64, k, dim int) float64 {
	if k < 2 {
		return 0
	}
	sum := 0.0
	for i := 0; i < k; i++ {
		best := math.Inf(1)
		ri := centers[i*dim : (i+1)*dim]
		for j := 0; j < k; j++ {
			if i == j {
				continue
			}
			if d := geom.Dist2Vec(ri, centers[j*dim:(j+1)*dim]); d < best {
				best = d
			}
		}
		sum += math.Sqrt(best)
	}
	return sum / float64(k)
}

// scaleBoundsForInfluence records the bound rescale that influence
// changes demand: effective distances to cluster b scale by old(b)/new(b),
// so ub scales by the own cluster's ratio and the Hamerly lb by the
// global minimum ratio (conservative). Elkan's per-center bounds live in
// raw-distance space and are untouched by influence. The ratios are
// left pending for the next kernel pass to apply per visited point; see
// the pendUbRatio field for why that is exact.
func (st *state) scaleBoundsForInfluence(oldInfluence []float64) {
	if st.cfg.Bounds == BoundsNone {
		return
	}
	st.applyPendingBounds() // defensive: never stack two pending scales
	minRatio := math.Inf(1)
	for b := 0; b < st.k; b++ {
		r := oldInfluence[b] / st.influence[b]
		st.pendUbRatio[b] = r
		if r < minRatio {
			minRatio = r
		}
	}
	st.pendLbRatio = minRatio
	st.pendScaled = true
}

// applyPendingBounds materializes a pending influence rescale with one
// pass over the sampled bounds. Needed only when bounds are read before
// the next kernel pass (the additive Eq. (4)–(5) updates, or a balance
// loop that exhausted its rounds).
func (st *state) applyPendingBounds() {
	if !st.pendScaled {
		return
	}
	st.pendScaled = false
	hamerly := st.cfg.Bounds == BoundsHamerly
	ratio, lbRatio := st.pendUbRatio, st.pendLbRatio
	if st.nSample == st.X.Len() {
		for i := range st.A {
			if a := st.A[i]; a >= 0 {
				st.ub[i] *= ratio[a]
				if hamerly {
					st.lb[i] *= lbRatio
				}
			}
		}
		return
	}
	for _, i := range st.perm[:st.nSample] {
		if a := st.A[i]; a >= 0 {
			st.ub[i] *= ratio[a]
			if hamerly {
				st.lb[i] *= lbRatio
			}
		}
	}
}

// strictFinish runs balance-only rounds with a growing influence cap until
// the ε constraint holds (Strict mode; an extension over the paper, which
// relies on enough regular iterations).
func (st *state) strictFinish() {
	saved := st.cfg.InfluenceCap
	for round := 0; round < 300 && !st.info.Balanced; round++ {
		if round > 100 {
			st.cfg.InfluenceCap = 0.25
		}
		st.assignAndBalance()
	}
	st.cfg.InfluenceCap = saved
}
