package core

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"geographer/internal/dsort"
	"geographer/internal/geom"
	"geographer/internal/mpi"
	"geographer/internal/partition"
	"geographer/internal/sfc"
)

// BalancedKMeans is the Geographer partitioner. It implements
// partition.Distributed; one value may be used for several Partition
// calls (the Info of the most recent call is retained).
type BalancedKMeans struct {
	Cfg Config

	mu   sync.Mutex
	info Info
}

// New returns a partitioner with the given configuration.
func New(cfg Config) *BalancedKMeans { return &BalancedKMeans{Cfg: cfg} }

// Name implements partition.Distributed.
func (b *BalancedKMeans) Name() string { return "Geographer" }

// LastInfo returns diagnostics of the most recent Partition call
// (aggregated over ranks).
func (b *BalancedKMeans) LastInfo() Info {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.info
}

// state is the per-rank working set of Algorithm 1/2.
type state struct {
	c   *mpi.Comm
	cfg Config
	dim int
	k   int

	// Local points (possibly redistributed by the SFC sort).
	X   []geom.Point
	W   []float64
	IDs []int64

	perm    []int32 // random order for the sampled initialization
	nSample int     // currently active prefix of perm

	A      []int32 // assignment per local point (-1 = unassigned)
	ub, lb []float64
	lbk    []float64 // Elkan mode: raw-distance lower bounds, len n·k

	centers   []geom.Point
	influence []float64
	targets   []float64 // per-block global target weights

	// Scratch reused across rounds.
	orderedCenters []int32
	distToBB       []float64
	localW         []float64

	diag float64 // global bounding-box diagonal

	info Info
}

// Partition implements partition.Distributed: Algorithm 2 of the paper.
func (b *BalancedKMeans) Partition(c *mpi.Comm, pts *partition.Local, k int) ([]int64, []int32, error) {
	if k < 1 {
		return nil, nil, fmt.Errorf("core: k=%d", k)
	}
	cfg := b.Cfg
	if cfg.MaxIter == 0 { // zero-value safety
		cfg = DefaultConfig()
	}
	if cfg.TargetFractions != nil && len(cfg.TargetFractions) != k {
		return nil, nil, fmt.Errorf("core: %d target fractions for k=%d", len(cfg.TargetFractions), k)
	}
	st := &state{c: c, cfg: cfg, dim: pts.Dim, k: k}

	// ---- Phase 1: space-filling curve keys (§4.1). -----------------------
	tStart := time.Now()
	box := globalBounds(c, pts)
	st.diag = box.Diagonal()
	if st.diag == 0 {
		st.diag = 1
	}
	var items []dsort.Item
	if cfg.SFCBootstrap {
		curve := sfc.NewCurve(box, pts.Dim)
		items = make([]dsort.Item, pts.Len())
		for i := range items {
			items[i] = dsort.Item{Key: curve.Key(pts.X[i]), ID: pts.IDs[i], W: pts.Weight(i), X: pts.X[i]}
		}
		c.AddOps(int64(len(items)))
	} else {
		items = make([]dsort.Item, pts.Len())
		for i := range items {
			items[i] = dsort.Item{Key: uint64(pts.IDs[i]), ID: pts.IDs[i], W: pts.Weight(i), X: pts.X[i]}
		}
	}
	st.info.SFCSeconds = time.Since(tStart).Seconds()

	// ---- Phase 2: global sort + redistribution (Algorithm 2, l. 4–6). ----
	tSort := time.Now()
	if cfg.SFCBootstrap {
		items = dsort.SampleSort(c, items)
		items = dsort.Rebalance(c, items)
	}
	st.X = make([]geom.Point, len(items))
	st.W = make([]float64, len(items))
	st.IDs = make([]int64, len(items))
	for i, it := range items {
		st.X[i], st.W[i], st.IDs[i] = it.X, it.W, it.ID
	}
	st.info.SortSeconds = time.Since(tSort).Seconds()

	// ---- Phase 3: balanced k-means (Algorithm 2, l. 7–19). ---------------
	tKM := time.Now()
	if err := st.initCentersAndTargets(); err != nil {
		return nil, nil, err
	}
	st.run()
	st.info.KMeansSeconds = time.Since(tKM).Seconds()

	// Aggregate diagnostics (rank 0 keeps the result).
	st.info.DistCalcs = mpi.ReduceScalarSum(c, st.info.DistCalcs)
	st.info.HamerlySkips = mpi.ReduceScalarSum(c, st.info.HamerlySkips)
	st.info.BBoxBreaks = mpi.ReduceScalarSum(c, st.info.BBoxBreaks)
	if c.Rank() == 0 {
		b.mu.Lock()
		b.info = st.info
		b.mu.Unlock()
	}
	return st.IDs, st.A, nil
}

// globalBounds computes the bounding box of the distributed point set.
func globalBounds(c *mpi.Comm, pts *partition.Local) geom.Box {
	dim := pts.Dim
	mins := make([]float64, dim)
	maxs := make([]float64, dim)
	for d := 0; d < dim; d++ {
		mins[d] = math.Inf(1)
		maxs[d] = math.Inf(-1)
	}
	for _, x := range pts.X {
		for d := 0; d < dim; d++ {
			mins[d] = math.Min(mins[d], x[d])
			maxs[d] = math.Max(maxs[d], x[d])
		}
	}
	mins = mpi.AllreduceMin(c, mins)
	maxs = mpi.AllreduceMax(c, maxs)
	box := geom.Box{Dim: dim}
	for d := 0; d < dim; d++ {
		box.Min[d] = mins[d]
		box.Max[d] = maxs[d]
	}
	return box
}

// initCentersAndTargets places the k initial centers at equal distances
// along the sorted point order (Algorithm 2, line 7: C[i] =
// sortedPoints[i·n/k + n/2k]) and computes per-block target weights.
func (st *state) initCentersAndTargets() error {
	n := mpi.ReduceScalarSum(st.c, int64(len(st.X)))
	if n == 0 {
		return fmt.Errorf("core: empty global point set")
	}
	start := mpi.ExscanSum(st.c, int64(len(st.X)))

	type seed struct {
		Idx int32
		X   geom.Point
	}
	var mine []seed
	if st.cfg.SFCBootstrap {
		for i := 0; i < st.k; i++ {
			gi := int64(i)*n/int64(st.k) + n/(2*int64(st.k))
			if gi >= start && gi < start+int64(len(st.X)) {
				mine = append(mine, seed{Idx: int32(i), X: st.X[gi-start]})
			}
		}
	} else {
		// Ablation mode: uniform random global indices, chosen identically
		// on every rank from the shared seed.
		rng := rand.New(rand.NewSource(st.cfg.Seed + 1))
		for i := 0; i < st.k; i++ {
			gi := int64(rng.Uint64() % uint64(n))
			if gi >= start && gi < start+int64(len(st.X)) {
				mine = append(mine, seed{Idx: int32(i), X: st.X[gi-start]})
			}
		}
	}
	all := mpi.AllgatherFlat(st.c, mine)
	if len(all) != st.k {
		return fmt.Errorf("core: gathered %d centers, want %d", len(all), st.k)
	}
	st.centers = make([]geom.Point, st.k)
	for _, s := range all {
		st.centers[s.Idx] = s.X
	}

	localW := 0.0
	for _, w := range st.W {
		localW += w
	}
	totalW := mpi.ReduceScalarSum(st.c, localW)
	st.targets = make([]float64, st.k)
	for b := 0; b < st.k; b++ {
		if st.cfg.TargetFractions != nil {
			st.targets[b] = totalW * st.cfg.TargetFractions[b]
		} else {
			st.targets[b] = totalW / float64(st.k)
		}
	}

	st.influence = make([]float64, st.k)
	for i := range st.influence {
		st.influence[i] = 1
	}
	st.A = make([]int32, len(st.X))
	st.ub = make([]float64, len(st.X))
	st.lb = make([]float64, len(st.X))
	for i := range st.A {
		st.A[i] = -1
		st.ub[i] = math.Inf(1)
	}
	if st.cfg.Bounds == BoundsElkan {
		st.lbk = make([]float64, len(st.X)*st.k) // zero = trivially valid
	}
	st.perm = make([]int32, len(st.X))
	for i := range st.perm {
		st.perm[i] = int32(i)
	}
	rng := rand.New(rand.NewSource(st.cfg.Seed + int64(st.c.Rank())*65537 + 7))
	rng.Shuffle(len(st.perm), func(i, j int) { st.perm[i], st.perm[j] = st.perm[j], st.perm[i] })

	st.nSample = len(st.X)
	if st.cfg.SampledInit && len(st.X) > 100 {
		st.nSample = 100
	}
	st.orderedCenters = make([]int32, st.k)
	st.distToBB = make([]float64, st.k)
	st.localW = make([]float64, st.k)
	return nil
}

// run is the main loop of Algorithm 2.
func (st *state) run() {
	threshold := st.cfg.DeltaThreshold * st.diag
	oldInfluence := make([]float64, st.k)
	newCenters := make([]geom.Point, st.k)
	deltas := make([]float64, st.k)

	for iter := 0; iter < st.cfg.MaxIter; iter++ {
		st.info.Iterations++
		sampling := st.nSample < len(st.X)
		// Sampling is a local decision but must stay collectively
		// consistent; ranks may have different local sizes, so agree on
		// whether anyone is still sampling.
		anySampling := mpi.ReduceScalarMax(st.c, boolTo64(sampling)) == 1

		balanced := st.assignAndBalance()

		// New centers: weighted mean of assigned sample points
		// (Algorithm 2, l. 12–13) — one global vector sum.
		moved := st.computeCenters(newCenters)

		maxDelta := 0.0
		for b := 0; b < st.k; b++ {
			deltas[b] = geom.Dist(st.centers[b], newCenters[b], st.dim)
			if deltas[b] > maxDelta {
				maxDelta = deltas[b]
			}
		}

		if !anySampling && balanced && maxDelta < threshold {
			copy(st.centers, newCenters)
			break
		}

		// Adapt the distance bounds for the upcoming movement
		// (Eqs. (4)–(5), signs corrected; see DESIGN.md).
		switch st.cfg.Bounds {
		case BoundsHamerly:
			maxShift := 0.0
			for b := 0; b < st.k; b++ {
				if s := deltas[b] / st.influence[b]; s > maxShift {
					maxShift = s
				}
			}
			for _, i := range st.perm[:st.nSample] {
				if a := st.A[i]; a >= 0 {
					st.ub[i] += deltas[a] / st.influence[a]
					st.lb[i] -= maxShift
				}
			}
		case BoundsElkan:
			// Raw-distance bounds shrink by each center's own movement;
			// the upper bound (effective space) grows like Hamerly's.
			for _, i := range st.perm[:st.nSample] {
				base := int(i) * st.k
				for b := 0; b < st.k; b++ {
					if deltas[b] > 0 {
						st.lbk[base+b] -= deltas[b]
					}
				}
				if a := st.A[i]; a >= 0 {
					st.ub[i] += deltas[a] / st.influence[a]
				}
			}
		}

		// Influence erosion after movement (Eqs. (2)–(3)): centers that
		// moved far regress their influence toward 1.
		if st.cfg.Erosion && moved {
			copy(oldInfluence, st.influence)
			beta := meanNearestCenterDistance(st.centers, st.k, st.dim)
			if beta > 0 {
				for b := 0; b < st.k; b++ {
					alpha := 2/(1+math.Exp(-deltas[b]/beta)) - 1
					st.influence[b] = math.Exp((1 - alpha) * math.Log(st.influence[b]))
				}
				st.scaleBoundsForInfluence(oldInfluence)
			}
		}

		copy(st.centers, newCenters)

		// Grow the sample (§4.5: "After each round with center movement,
		// the sample size is doubled").
		if sampling {
			st.nSample *= 2
			if st.nSample > len(st.X) {
				st.nSample = len(st.X)
			}
		}
	}

	// Every point must be assigned: points outside the final sample only
	// exist if MaxIter ran out during sampling; assign them now.
	if st.nSample < len(st.X) {
		st.nSample = len(st.X)
		st.assignAndBalance()
	}
	for i := range st.A {
		if st.A[i] < 0 {
			st.A[i] = st.nearestCenter(st.X[i])
		}
	}

	if st.cfg.Strict && !st.info.Balanced {
		st.strictFinish()
	}
}

func boolTo64(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// nearestCenter returns the cluster with minimal effective distance to x.
func (st *state) nearestCenter(x geom.Point) int32 {
	best, bestV := int32(0), math.Inf(1)
	for b := 0; b < st.k; b++ {
		v := geom.Dist(x, st.centers[b], st.dim) / st.influence[b]
		if v < bestV {
			best, bestV = int32(b), v
		}
	}
	st.info.DistCalcs += int64(st.k)
	return best
}

// computeCenters sets out[b] to the weighted mean of the points assigned
// to b (keeping the old center for empty clusters) and reports whether any
// center is based on at least one point.
func (st *state) computeCenters(out []geom.Point) bool {
	vec := make([]float64, st.k*(st.dim+1))
	for _, i := range st.perm[:st.nSample] {
		a := st.A[i]
		if a < 0 {
			continue
		}
		base := int(a) * (st.dim + 1)
		for d := 0; d < st.dim; d++ {
			vec[base+d] += st.W[i] * st.X[i][d]
		}
		vec[base+st.dim] += st.W[i]
	}
	st.c.AddOps(int64(st.nSample))
	vec = mpi.AllreduceSum(st.c, vec)
	any := false
	for b := 0; b < st.k; b++ {
		base := b * (st.dim + 1)
		w := vec[base+st.dim]
		if w <= 0 {
			out[b] = st.centers[b]
			continue
		}
		any = true
		var p geom.Point
		for d := 0; d < st.dim; d++ {
			p[d] = vec[base+d] / w
		}
		out[b] = p
	}
	return any
}

// meanNearestCenterDistance approximates the paper's β(C) ("average
// cluster diameter") by the mean nearest-neighbor distance among centers.
func meanNearestCenterDistance(centers []geom.Point, k, dim int) float64 {
	if k < 2 {
		return 0
	}
	sum := 0.0
	for i := 0; i < k; i++ {
		best := math.Inf(1)
		for j := 0; j < k; j++ {
			if i == j {
				continue
			}
			if d := geom.Dist2(centers[i], centers[j], dim); d < best {
				best = d
			}
		}
		sum += math.Sqrt(best)
	}
	return sum / float64(k)
}

// scaleBoundsForInfluence rescales the distance bounds after influence
// values changed: effective distances to cluster b scale by
// old(b)/new(b), so ub scales by the own cluster's ratio and the Hamerly
// lb by the global minimum ratio (conservative). Elkan's per-center
// bounds live in raw-distance space and are untouched by influence.
func (st *state) scaleBoundsForInfluence(oldInfluence []float64) {
	if st.cfg.Bounds == BoundsNone {
		return
	}
	minRatio := math.Inf(1)
	for b := 0; b < st.k; b++ {
		r := oldInfluence[b] / st.influence[b]
		if r < minRatio {
			minRatio = r
		}
	}
	hamerly := st.cfg.Bounds == BoundsHamerly
	for _, i := range st.perm[:st.nSample] {
		if a := st.A[i]; a >= 0 {
			st.ub[i] *= oldInfluence[a] / st.influence[a]
			if hamerly {
				st.lb[i] *= minRatio
			}
		}
	}
}

// strictFinish runs balance-only rounds with a growing influence cap until
// the ε constraint holds (Strict mode; an extension over the paper, which
// relies on enough regular iterations).
func (st *state) strictFinish() {
	saved := st.cfg.InfluenceCap
	for round := 0; round < 300 && !st.info.Balanced; round++ {
		if round > 100 {
			st.cfg.InfluenceCap = 0.25
		}
		st.assignAndBalance()
	}
	st.cfg.InfluenceCap = saved
}
