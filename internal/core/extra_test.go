package core

import (
	"math"
	"math/rand"
	"testing"

	"geographer/internal/geom"
	"geographer/internal/metrics"
	"geographer/internal/mpi"
	"geographer/internal/partition"
)

// Heterogeneous two-cluster data: without erosion, influence values tuned
// for the dense region travel with centers into the sparse region and can
// produce pathological intermediate assignments. Erosion must never hurt
// final balance.
func TestErosionOnHeterogeneousDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ps := geom.NewPointSet(2, 6000)
	for i := 0; i < 6000; i++ {
		if i%3 == 0 { // sparse wide background
			ps.Append(geom.Point{rng.Float64() * 10, rng.Float64() * 10}, 1)
		} else { // dense clump
			ps.Append(geom.Point{rng.Float64() * 0.5, rng.Float64() * 0.5}, 1)
		}
	}
	for _, erosion := range []bool{true, false} {
		cfg := DefaultConfig()
		cfg.Erosion = erosion
		cfg.Strict = true
		part, _ := runPartition(t, ps, 12, 2, cfg)
		imb := metrics.Imbalance(metrics.BlockWeights(ps, part.Assign, 12))
		if imb > cfg.Epsilon+1e-9 {
			t.Errorf("erosion=%v: imbalance %.4f", erosion, imb)
		}
	}
}

func TestElkanOnWeighted3D(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ps := geom.NewPointSet(3, 3000)
	ps.Weight = make([]float64, 0, 3000)
	for i := 0; i < 3000; i++ {
		ps.Append(geom.Point{rng.Float64(), rng.Float64(), rng.Float64()}, 0.5+rng.Float64())
	}
	cfg := DefaultConfig()
	cfg.Bounds = BoundsElkan
	part, bkm := runPartition(t, ps, 10, 3, cfg)
	imb := metrics.Imbalance(metrics.BlockWeights(ps, part.Assign, 10))
	if imb > 0.031 {
		t.Errorf("imbalance %.4f", imb)
	}
	if bkm.LastInfo().HamerlySkips == 0 {
		t.Error("Elkan bounds never skipped a center")
	}
}

// A rank with zero points must not break any collective path, including
// strict mode and Elkan bounds.
func TestEmptyRanks(t *testing.T) {
	ps := uniformPoints(9, 2, 7) // 9 points over 6 ranks: some ranks get 1, some 2
	for _, bounds := range []BoundsKind{BoundsHamerly, BoundsElkan, BoundsNone} {
		cfg := DefaultConfig()
		cfg.Bounds = bounds
		cfg.Strict = true
		part, _ := runPartition(t, ps, 3, 6, cfg)
		if err := part.Validate(false); err != nil {
			t.Fatalf("bounds=%s: %v", bounds, err)
		}
	}
}

// Duplicate points (all identical): every distance ties; the algorithm
// must terminate and produce a valid partition (balance is impossible to
// measure geometrically but assignment must not diverge).
func TestAllIdenticalPoints(t *testing.T) {
	ps := geom.NewPointSet(2, 200)
	for i := 0; i < 200; i++ {
		ps.Append(geom.Point{0.5, 0.5}, 1)
	}
	cfg := DefaultConfig()
	cfg.MaxIter = 10
	part, _ := runPartition(t, ps, 4, 2, cfg)
	if err := part.Validate(false); err != nil {
		t.Fatal(err)
	}
}

func TestCollinearPoints(t *testing.T) {
	// All points on a line: degenerate boxes, zero-width dimensions.
	ps := geom.NewPointSet(2, 1000)
	for i := 0; i < 1000; i++ {
		ps.Append(geom.Point{float64(i) / 1000, 0.25}, 1)
	}
	part, _ := runPartition(t, ps, 8, 2, DefaultConfig())
	imb := metrics.Imbalance(metrics.BlockWeights(ps, part.Assign, 8))
	if imb > 0.05 {
		t.Errorf("collinear imbalance %.4f", imb)
	}
	// Blocks should be contiguous ranges on the line (compact 1D cells).
	seen := map[int32]bool{}
	last := int32(-1)
	for i := 0; i < 1000; i++ {
		b := part.Assign[i]
		if b != last {
			if seen[b] {
				t.Errorf("block %d appears in two separate runs along the line", b)
				break
			}
			seen[b] = true
			last = b
		}
	}
}

func TestSkipRateInfo(t *testing.T) {
	ps := uniformPoints(5000, 2, 8)
	_, bkm := runPartition(t, ps, 16, 2, DefaultConfig())
	info := bkm.LastInfo()
	if rate := info.SkipRate(); rate <= 0 || rate >= 1 {
		t.Errorf("skip rate %g out of (0,1)", rate)
	}
	if (Info{}).SkipRate() != 0 {
		t.Error("zero Info should have zero skip rate")
	}
	if info.Visits <= 0 {
		t.Error("no point visits recorded")
	}
}

func TestZeroValueConfigIsUsable(t *testing.T) {
	// New(Config{}) must not hang or crash: Partition substitutes the
	// defaults when MaxIter is zero.
	bkm := New(Config{})
	w := mpi.NewWorld(2)
	ps := uniformPoints(500, 2, 9)
	part, err := partition.Run(w, ps, 4, bkm)
	if err != nil {
		t.Fatal(err)
	}
	if err := part.Validate(false); err != nil {
		t.Fatal(err)
	}
}

func TestManyBlocksFewPointsPerBlock(t *testing.T) {
	// k=128 over 2560 points: 20 points per block; stresses the influence
	// adaptation with small counts.
	ps := uniformPoints(2560, 2, 10)
	cfg := DefaultConfig()
	cfg.Strict = true
	part, _ := runPartition(t, ps, 128, 4, cfg)
	imb := metrics.Imbalance(metrics.BlockWeights(ps, part.Assign, 128))
	// With 20 points per block, one point is 5% — ε=3% is unreachable;
	// strict mode must still terminate. Accept one-point granularity.
	if imb > 0.051 {
		t.Errorf("imbalance %.4f beyond one-point granularity", imb)
	}
}

// Paper §4.5: "In our experiments with ε ∈ {0.03, 0.05}, balance was
// always achieved when allowing a sufficient number of balance and
// movement iterations." Check both epsilons across mesh-like inputs.
func TestBalanceAlwaysAchievedPaperEpsilons(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	inputs := map[string]*geom.PointSet{
		"uniform": uniformPoints(4000, 2, 12),
	}
	// Graded density (refined-mesh-like).
	graded := geom.NewPointSet(2, 4000)
	for i := 0; i < 4000; i++ {
		if i%2 == 0 {
			graded.Append(geom.Point{rng.Float64(), rng.Float64()}, 1)
		} else {
			graded.Append(geom.Point{0.3 + rng.NormFloat64()*0.05, 0.7 + rng.NormFloat64()*0.05}, 1)
		}
	}
	inputs["graded"] = graded
	for name, ps := range inputs {
		for _, eps := range []float64{0.03, 0.05} {
			cfg := DefaultConfig()
			cfg.Epsilon = eps
			part, bkm := runPartition(t, ps, 16, 2, cfg)
			imb := metrics.Imbalance(metrics.BlockWeights(ps, part.Assign, 16))
			if imb > eps+1e-9 {
				t.Errorf("%s ε=%.2f: imbalance %.4f (info %+v)", name, eps, imb, bkm.LastInfo())
			}
		}
	}
}

func TestConvergenceMonotonicity(t *testing.T) {
	// More iterations must never worsen the k-means objective: compare
	// cost of 3-iteration vs default runs.
	ps := uniformPoints(3000, 2, 11)
	cost := func(maxIter int) float64 {
		cfg := DefaultConfig()
		cfg.MaxIter = maxIter
		bkm := New(cfg)
		w := mpi.NewWorld(2)
		part, err := partition.Run(w, ps, 8, bkm)
		if err != nil {
			t.Fatal(err)
		}
		// Objective: sum of squared distance to block centroid.
		var cx [8]geom.Point
		var cw [8]float64
		for i := 0; i < ps.Len(); i++ {
			b := part.Assign[i]
			cx[b] = cx[b].Add(ps.At(i))
			cw[b]++
		}
		for b := range cx {
			if cw[b] > 0 {
				cx[b] = cx[b].Scale(1 / cw[b])
			}
		}
		total := 0.0
		for i := 0; i < ps.Len(); i++ {
			total += geom.Dist2(ps.At(i), cx[part.Assign[i]], 2)
		}
		return total
	}
	early := cost(3)
	full := cost(60)
	if full > early*1.05 {
		t.Errorf("longer run worsened objective: %.3f -> %.3f", early, full)
	}
	if math.IsNaN(early) || math.IsNaN(full) {
		t.Fatal("NaN objective")
	}
}
