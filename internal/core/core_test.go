package core

import (
	"math"
	"math/rand"
	"testing"

	"geographer/internal/geom"
	"geographer/internal/metrics"
	"geographer/internal/mpi"
	"geographer/internal/partition"
)

func uniformPoints(n, dim int, seed int64) *geom.PointSet {
	rng := rand.New(rand.NewSource(seed))
	ps := geom.NewPointSet(dim, n)
	for i := 0; i < n; i++ {
		var p geom.Point
		for d := 0; d < dim; d++ {
			p[d] = rng.Float64()
		}
		ps.Append(p, 1)
	}
	return ps
}

func runPartition(t *testing.T, ps *geom.PointSet, k, p int, cfg Config) (partition.P, *BalancedKMeans) {
	t.Helper()
	bkm := New(cfg)
	w := mpi.NewWorld(p)
	part, err := partition.Run(w, ps, k, bkm)
	if err != nil {
		t.Fatalf("k=%d p=%d: %v", k, p, err)
	}
	if err := part.Validate(false); err != nil {
		t.Fatalf("k=%d p=%d: %v", k, p, err)
	}
	return part, bkm
}

func TestBalancedPartitionUniform(t *testing.T) {
	for _, dim := range []int{2, 3} {
		for _, k := range []int{4, 16} {
			for _, p := range []int{1, 2, 4} {
				ps := uniformPoints(4000, dim, 11)
				part, bkm := runPartition(t, ps, k, p, DefaultConfig())
				imb := metrics.Imbalance(metrics.BlockWeights(ps, part.Assign, k))
				if imb > 0.031 {
					t.Errorf("dim=%d k=%d p=%d: imbalance %.4f > ε", dim, k, p, imb)
				}
				info := bkm.LastInfo()
				if !info.Balanced {
					t.Errorf("dim=%d k=%d p=%d: not balanced (imb %.4f)", dim, k, p, info.Imbalance)
				}
				if info.Iterations < 1 {
					t.Errorf("no iterations recorded")
				}
			}
		}
	}
}

func TestWeightedBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ps := geom.NewPointSet(2, 5000)
	ps.Weight = make([]float64, 0, 5000)
	for i := 0; i < 5000; i++ {
		ps.Append(geom.Point{rng.Float64(), rng.Float64()}, 0.2+5*rng.Float64())
	}
	part, _ := runPartition(t, ps, 8, 3, DefaultConfig())
	imb := metrics.Imbalance(metrics.BlockWeights(ps, part.Assign, 8))
	if imb > 0.031 {
		t.Errorf("weighted imbalance %.4f", imb)
	}
}

func TestHeterogeneousTargets(t *testing.T) {
	// Footnote 1: non-uniform block sizes.
	cfg := DefaultConfig()
	cfg.TargetFractions = []float64{0.5, 0.25, 0.125, 0.125}
	ps := uniformPoints(4000, 2, 17)
	part, _ := runPartition(t, ps, 4, 2, cfg)
	w := metrics.BlockWeights(ps, part.Assign, 4)
	total := w[0] + w[1] + w[2] + w[3]
	for b, frac := range cfg.TargetFractions {
		got := w[b] / total
		if math.Abs(got-frac) > frac*0.05 {
			t.Errorf("block %d holds %.3f of weight, want %.3f±5%%", b, got, frac)
		}
	}
}

func TestTargetFractionsLengthError(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TargetFractions = []float64{0.5, 0.5}
	bkm := New(cfg)
	w := mpi.NewWorld(1)
	_, err := partition.Run(w, uniformPoints(100, 2, 1), 4, bkm)
	if err == nil {
		t.Fatal("expected error for mismatched fractions")
	}
}

// The geometric optimizations must be pure accelerations: turning them
// off must give the exact same partition.
func TestOptimizationsPreserveResult(t *testing.T) {
	ps := uniformPoints(3000, 2, 23)
	base := DefaultConfig()

	ref, refB := runPartition(t, ps, 12, 2, base)
	refInfo := refB.LastInfo()

	noBounds := base
	noBounds.Bounds = BoundsNone
	gotH, _ := runPartition(t, ps, 12, 2, noBounds)
	for i := range ref.Assign {
		if ref.Assign[i] != gotH.Assign[i] {
			t.Fatalf("Hamerly bounds changed the result at point %d", i)
		}
	}

	elkan := base
	elkan.Bounds = BoundsElkan
	gotE, elkanB := runPartition(t, ps, 12, 2, elkan)
	for i := range ref.Assign {
		if ref.Assign[i] != gotE.Assign[i] {
			t.Fatalf("Elkan bounds changed the result at point %d", i)
		}
	}

	noBBox := base
	noBBox.BBoxPruning = false
	gotB, _ := runPartition(t, ps, 12, 2, noBBox)
	for i := range ref.Assign {
		if ref.Assign[i] != gotB.Assign[i] {
			t.Fatalf("BBox pruning changed the result at point %d", i)
		}
	}

	// And they must actually save distance computations.
	if refInfo.HamerlySkips == 0 {
		t.Error("Hamerly bounds never skipped a point")
	}
	noneCfg := base
	noneCfg.Bounds = BoundsNone
	noneCfg.BBoxPruning = false
	_, noneB := runPartition(t, ps, 12, 2, noneCfg)
	if refInfo.DistCalcs >= noneB.LastInfo().DistCalcs {
		t.Errorf("optimizations did not reduce distance calcs: %d vs %d",
			refInfo.DistCalcs, noneB.LastInfo().DistCalcs)
	}
	if elkanB.LastInfo().DistCalcs >= noneB.LastInfo().DistCalcs {
		t.Errorf("Elkan bounds did not reduce distance calcs: %d vs %d",
			elkanB.LastInfo().DistCalcs, noneB.LastInfo().DistCalcs)
	}
}

// warmCentersFrom recovers warm-start seed centers (weighted block
// means) from an assignment — the test-local equivalent of
// repart.RecoverCenters for non-degenerate partitions.
func warmCentersFrom(ps *geom.PointSet, assign []int32, k int) []float64 {
	sum := make([]float64, k*ps.Dim)
	wsum := make([]float64, k)
	for i := 0; i < ps.Len(); i++ {
		b := int(assign[i])
		x := ps.Coords[i*ps.Dim : (i+1)*ps.Dim]
		w := ps.W(i)
		for d := 0; d < ps.Dim; d++ {
			sum[b*ps.Dim+d] += w * x[d]
		}
		wsum[b] += w
	}
	for b := 0; b < k; b++ {
		for d := 0; d < ps.Dim; d++ {
			sum[b*ps.Dim+d] /= wsum[b]
		}
	}
	return sum
}

func TestHamerlySkipRate(t *testing.T) {
	// Paper §4.3: "the innermost loop can be skipped in about 80% of the
	// cases". SkipRate is the per-run measurement of exactly that —
	// bound-resolved point visits over all visits.
	ps := uniformPoints(8000, 2, 31)
	part, bkm := runPartition(t, ps, 16, 2, DefaultConfig())
	info := bkm.LastInfo()
	if info.Visits <= 0 {
		t.Fatalf("no point visits recorded: %+v", info)
	}
	if rate := info.SkipRate(); rate < 0.75 {
		t.Errorf("cold skip rate %.3f below the paper's ~80%% (skips %d / visits %d)",
			rate, info.HamerlySkips, info.Visits)
	}

	// Cross-step carried bounds: two warm runs on one Resident. The
	// first must reset (nothing to carry), the second must take the
	// incremental fast path, touch only a small boundary fraction, cut
	// the distance evaluations at least 2x, and skip even more visits.
	const k, p = 16, 2
	w := mpi.NewWorld(p)
	res := make([]*Resident, p)
	if err := w.Run(func(c *mpi.Comm) {
		res[c.Rank()] = Ingest(c, partition.Scatter(c, ps))
	}); err != nil {
		t.Fatal(err)
	}
	prev := part.Assign
	step := func() Info {
		t.Helper()
		cfg := DefaultConfig()
		cfg.WarmCenters = warmCentersFrom(ps, prev, k)
		wb := New(cfg)
		out := make([]int32, ps.Len())
		if err := w.Run(func(c *mpi.Comm) {
			ids, blocks, err := wb.PartitionResident(c, res[c.Rank()], k)
			if err != nil {
				panic(err)
			}
			for i, id := range ids {
				out[id] = blocks[i]
			}
		}); err != nil {
			t.Fatal(err)
		}
		prev = out
		return wb.LastInfo()
	}
	first := step()
	if first.CarriedBounds {
		t.Error("first warm run on a fresh Resident reports carried bounds")
	}
	second := step()
	if !second.CarriedBounds {
		t.Fatalf("second warm run did not carry bounds: %+v", second)
	}
	if second.BoundaryFrac <= 0 || second.BoundaryFrac > 0.5 {
		t.Errorf("carried boundary fraction %.3f outside (0, 0.5]", second.BoundaryFrac)
	}
	if second.DistCalcs*2 > first.DistCalcs {
		t.Errorf("carried bounds cut dist calcs only %d -> %d, want >= 2x", first.DistCalcs, second.DistCalcs)
	}
	if rate := second.SkipRate(); rate < 0.8 {
		t.Errorf("carried skip rate %.3f below the paper's ~80%%", rate)
	}
}

func TestDeterminism(t *testing.T) {
	ps := uniformPoints(2000, 2, 41)
	a, _ := runPartition(t, ps, 8, 3, DefaultConfig())
	b, _ := runPartition(t, ps, 8, 3, DefaultConfig())
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatalf("non-deterministic at point %d", i)
		}
	}
}

func TestKIndependentOfP(t *testing.T) {
	// "the number of blocks ... is completely independent from the number
	// of parallel processes" (§4.5): k=10 must work for any p.
	ps := uniformPoints(1500, 2, 43)
	for _, p := range []int{1, 2, 5, 8} {
		part, _ := runPartition(t, ps, 10, p, DefaultConfig())
		imb := metrics.Imbalance(metrics.BlockWeights(ps, part.Assign, 10))
		if imb > 0.031 {
			t.Errorf("p=%d: imbalance %.4f", p, imb)
		}
	}
}

func TestEdgeCases(t *testing.T) {
	ps := uniformPoints(300, 2, 47)
	// k = 1.
	part, _ := runPartition(t, ps, 1, 2, DefaultConfig())
	for _, b := range part.Assign {
		if b != 0 {
			t.Fatal("k=1 must assign everything to block 0")
		}
	}
	// More ranks than points on some ranks.
	tiny := uniformPoints(5, 2, 48)
	part, _ = runPartition(t, tiny, 2, 4, DefaultConfig())
	if err := part.Validate(false); err != nil {
		t.Fatal(err)
	}
	// k close to n.
	part, _ = runPartition(t, uniformPoints(64, 2, 49), 32, 2, DefaultConfig())
	if err := part.Validate(false); err != nil {
		t.Fatal(err)
	}
}

func TestStrictModeOnSkewedWeights(t *testing.T) {
	// Adversarial: almost all weight concentrated in one corner cluster.
	rng := rand.New(rand.NewSource(53))
	ps := geom.NewPointSet(2, 4000)
	ps.Weight = make([]float64, 0, 4000)
	for i := 0; i < 4000; i++ {
		if i%4 == 0 {
			ps.Append(geom.Point{rng.Float64() * 0.1, rng.Float64() * 0.1}, 10)
		} else {
			ps.Append(geom.Point{rng.Float64(), rng.Float64()}, 0.5)
		}
	}
	cfg := DefaultConfig()
	cfg.Strict = true
	part, bkm := runPartition(t, ps, 8, 2, cfg)
	imb := metrics.Imbalance(metrics.BlockWeights(ps, part.Assign, 8))
	if imb > cfg.Epsilon+1e-9 {
		t.Errorf("strict mode missed ε: imbalance %.4f (info: %+v)", imb, bkm.LastInfo())
	}
}

func TestSFCBootstrapAblation(t *testing.T) {
	// Random init must still produce a valid (if worse) partition.
	cfg := DefaultConfig()
	cfg.SFCBootstrap = false
	cfg.Strict = true
	ps := uniformPoints(2000, 2, 59)
	part, _ := runPartition(t, ps, 8, 2, cfg)
	imb := metrics.Imbalance(metrics.BlockWeights(ps, part.Assign, 8))
	if imb > cfg.Epsilon+1e-9 {
		t.Errorf("random-init imbalance %.4f", imb)
	}
}

func TestSampledInitOffStillWorks(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SampledInit = false
	ps := uniformPoints(2000, 2, 61)
	part, _ := runPartition(t, ps, 8, 2, cfg)
	imb := metrics.Imbalance(metrics.BlockWeights(ps, part.Assign, 8))
	if imb > 0.031 {
		t.Errorf("imbalance %.4f", imb)
	}
}

func TestClusterCompactness(t *testing.T) {
	// k-means blocks should be compact: mean block bbox area ≈ domain/k,
	// clearly below a strip partition's.
	ps := uniformPoints(6000, 2, 67)
	k := 9
	part, _ := runPartition(t, ps, k, 2, DefaultConfig())
	boxes := make([]geom.Box, k)
	for b := range boxes {
		boxes[b] = geom.EmptyBox(2)
	}
	for i := 0; i < ps.Len(); i++ {
		boxes[part.Assign[i]].Extend(ps.At(i))
	}
	meanArea := 0.0
	for _, bx := range boxes {
		meanArea += bx.Side(0) * bx.Side(1)
	}
	meanArea /= float64(k)
	if meanArea > 3.0/float64(k) {
		t.Errorf("blocks not compact: mean bbox area %.3f (domain/k = %.3f)", meanArea, 1.0/float64(k))
	}
}

func TestInfoPhases(t *testing.T) {
	ps := uniformPoints(1000, 2, 71)
	_, bkm := runPartition(t, ps, 4, 2, DefaultConfig())
	info := bkm.LastInfo()
	if info.SFCSeconds < 0 || info.SortSeconds < 0 || info.KMeansSeconds <= 0 {
		t.Errorf("phase timers: %+v", info)
	}
	if info.BalanceRounds < info.Iterations {
		t.Errorf("balance rounds %d < iterations %d", info.BalanceRounds, info.Iterations)
	}
}

func TestMeanNearestCenterDistance(t *testing.T) {
	centers := []float64{0, 0, 1, 0, 5, 0}
	got := meanNearestCenterDistance(centers, 3, 2)
	want := (1.0 + 1.0 + 4.0) / 3
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("β = %g, want %g", got, want)
	}
	if meanNearestCenterDistance(centers[:2], 1, 2) != 0 {
		t.Error("single center should give 0")
	}
}

func TestInvalidK(t *testing.T) {
	bkm := New(DefaultConfig())
	w := mpi.NewWorld(1)
	if _, err := partition.Run(w, uniformPoints(10, 2, 1), 0, bkm); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func BenchmarkBalancedKMeans(b *testing.B) {
	ps := uniformPoints(50000, 2, 42)
	for i := 0; i < b.N; i++ {
		bkm := New(DefaultConfig())
		w := mpi.NewWorld(4)
		if _, err := partition.Run(w, ps, 16, bkm); err != nil {
			b.Fatal(err)
		}
	}
}
