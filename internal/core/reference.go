package core

import (
	"math"

	"geographer/internal/geom"
)

// ingestReference routes Partition's ingest phase (§4.1 keys + global
// sort + redistribution) down the retained AoS Item reference path —
// per-point sfc.Curve.Key, sort.Slice-based dsort.SampleSort/Rebalance —
// instead of the SoA fast path (batch key kernel, radix sort, flat
// exchanges, p-way merge). Test-only: the differential ingest test flips
// it to demand bit-identical final partitions from both pipelines.
var ingestReference = false

// refDist2 is the reference pipelines' point-center distance: Point
// construction plus geom.Dist2 at spatial dimensions (the arithmetic the
// kernels' specialized bodies mirror), a left-to-right column walk —
// the same association order — beyond geom.MaxDim.
func refDist2(kr *geom.AssignKernel, dim int, i, bc int32) float64 {
	if dim <= geom.MaxDim {
		x := geom.Point{kr.PX[i], kr.PY[i], kr.PZ[i]}
		c := geom.Point{kr.CX[bc], kr.CY[bc], kr.CZ[bc]}
		return geom.Dist2(x, c, dim)
	}
	s := 0.0
	for d, col := range kr.CC {
		t := kr.PC[d][i] - col[bc]
		s += t * t
	}
	return s
}

// referenceAssign is the retained scalar reference of the batch
// assignment kernels: a straight-line, per-point transcription of
// Algorithm 1's inner loop in squared effective-distance space. It is
// the executable specification the SoA kernels in internal/geom are
// differentially tested against (kernel_equiv_test.go demands
// bit-identical A/ub/lb/lbk), and it is deliberately written with the
// same arithmetic shapes — dist²·invInf², bounds compared before
// squaring is applied to possibly-negative Elkan entries — so that any
// divergence is a kernel bug, not a rounding artifact.
func referenceAssign(dim int, kr *geom.AssignKernel, idx []int32, hamerly, elkan bool) {
	if elkan {
		referenceElkan(dim, kr, idx)
		return
	}
	for _, i := range idx {
		if hamerly && kr.A[i] >= 0 {
			// Apply any pending influence rescale before the skip test,
			// and persist the corrected bounds when the point is skipped
			// (a recomputation overwrites them anyway).
			u, l := kr.Ub[i], kr.Lb[i]
			if kr.UbScale != nil {
				u *= kr.UbScale[kr.A[i]]
				l *= kr.LbScale
			}
			if u < l {
				if kr.UbScale != nil {
					kr.Ub[i] = u
					kr.Lb[i] = l
				}
				kr.Skips++
				kr.LocalW[kr.A[i]] += kr.W[i]
				continue
			}
		}
		best2, second2 := math.Inf(1), math.Inf(1)
		bestC := int32(0)
		for _, bc := range kr.Order {
			if kr.Prune && kr.DistBB2[bc] > second2 {
				kr.Breaks++
				break
			}
			d2 := refDist2(kr, dim, i, bc) * kr.InvInf2[bc]
			kr.DistCalcs++
			if d2 < best2 {
				second2 = best2
				best2 = d2
				bestC = bc
			} else if d2 < second2 {
				second2 = d2
			}
		}
		kr.A[i] = bestC
		kr.Ub[i] = math.Sqrt(best2)
		kr.Lb[i] = math.Sqrt(second2)
		kr.LocalW[bestC] += kr.W[i]
	}
}

// referenceAssignRaw is the scalar reference of RunBoundedRaw (the warm
// incremental Hamerly pass): skip against max(effective Lb, raw floor
// RawLb·RawLbInv) with the winner stored back, a center-anchored scan
// with the triangle-inequality break for assigned points (full scan in
// pruning order otherwise), and the raw second-minimum tracked into
// RawLb.
func referenceAssignRaw(dim int, kr *geom.AssignKernel, idx []int32) {
	invMaxInf2 := kr.RawLbInv * kr.RawLbInv
	for _, i := range idx {
		cur := kr.A[i]
		if cur >= 0 {
			u, l := kr.Ub[i], kr.Lb[i]
			if kr.UbScale != nil {
				u *= kr.UbScale[cur]
				l *= kr.LbScale
			}
			if lr := kr.RawLb[i] * kr.RawLbInv; lr > l {
				l = lr
			}
			if u < l {
				kr.Ub[i] = u
				kr.Lb[i] = l
				kr.Skips++
				kr.LocalW[cur] += kr.W[i]
				continue
			}
		}
		best2, second2 := math.Inf(1), math.Inf(1)
		r1, r2 := math.Inf(1), math.Inf(1)
		r1id := int32(-1)
		bestC := int32(0)
		rawFloor2 := math.Inf(1)
		track := func(bc int32) {
			raw2 := refDist2(kr, dim, i, bc)
			d2 := raw2 * kr.InvInf2[bc]
			kr.DistCalcs++
			if raw2 < r1 {
				r2 = r1
				r1 = raw2
				r1id = bc
			} else if raw2 < r2 {
				r2 = raw2
			}
			if d2 < best2 {
				second2 = best2
				best2 = d2
				bestC = bc
			} else if d2 < second2 {
				second2 = d2
			}
		}
		if cur >= 0 {
			row := int(cur) * kr.K
			rawA2 := refDist2(kr, dim, i, cur)
			kr.DistCalcs++
			rub := math.Sqrt(rawA2)
			r1, r1id = rawA2, cur
			best2 = rawA2 * kr.InvInf2[cur]
			bestC = cur
			for j := 1; j < kr.K; j++ {
				lr := kr.CCDist[row+j] - rub
				if lr > 0 && lr*lr*invMaxInf2 > second2 {
					kr.Breaks++
					rawFloor2 = lr * lr
					break
				}
				track(kr.CCOrder[row+j])
			}
		} else {
			for _, bc := range kr.Order {
				track(bc)
			}
		}
		kr.A[i] = bestC
		kr.Ub[i] = math.Sqrt(best2)
		kr.Lb[i] = math.Sqrt(second2)
		rl := r1
		if r1id == bestC {
			rl = r2
		}
		if rawFloor2 < rl {
			rl = rawFloor2
		}
		kr.RawLb[i] = math.Sqrt(rl)
		kr.LocalW[bestC] += kr.W[i]
	}
}

func referenceElkan(dim int, kr *geom.AssignKernel, idx []int32) {
	for _, i := range idx {
		best2 := math.Inf(1)
		bestC := int32(0)
		row := int(i) * kr.K
		if a := kr.A[i]; a >= 0 {
			raw2 := refDist2(kr, dim, i, a)
			kr.DistCalcs++
			kr.Lbk[row+int(a)] = math.Sqrt(raw2)
			best2 = raw2 * kr.InvInf2[a]
			bestC = a
		}
		for _, bc := range kr.Order {
			if bc == kr.A[i] {
				continue
			}
			if kr.Prune && kr.DistBB2[bc] > best2 {
				kr.Breaks++
				break
			}
			if l := kr.Lbk[row+int(bc)]; l > 0 && l*l*kr.InvInf2[bc] >= best2 {
				kr.Skips++
				continue
			}
			raw2 := refDist2(kr, dim, i, bc)
			kr.DistCalcs++
			kr.Lbk[row+int(bc)] = math.Sqrt(raw2)
			if d2 := raw2 * kr.InvInf2[bc]; d2 < best2 {
				best2 = d2
				bestC = bc
			}
		}
		kr.A[i] = bestC
		kr.Ub[i] = math.Sqrt(best2)
		kr.LocalW[bestC] += kr.W[i]
	}
}
