package core

import (
	"fmt"
	"math/rand"
	"testing"

	"geographer/internal/geom"
	"geographer/internal/mpi"
	"geographer/internal/partition"
)

// flatRandomPoints builds a weighted point set of any dimension (the
// uniformPoints helper goes through geom.Point and is capped at MaxDim).
func flatRandomPoints(n, dim int, seed int64) *geom.PointSet {
	rng := rand.New(rand.NewSource(seed))
	ps := &geom.PointSet{
		Dim:    dim,
		Coords: make([]float64, n*dim),
		Weight: make([]float64, n),
	}
	for i := range ps.Coords {
		ps.Coords[i] = rng.Float64() * 8
	}
	for i := range ps.Weight {
		ps.Weight[i] = 0.5 + rng.Float64()
	}
	return ps
}

// TestDeterministicColdPartition pins Config.Deterministic: the cold
// (non-warm) path must produce bit-identical partitions across every
// rank × worker layout, in the spatial regime (d=2, SFC bootstrap on)
// and the feature-space regime (d=16, sampled-free random init) alike —
// sampled init is forced off and every float reduction runs through the
// order-independent exact accumulators.
func TestDeterministicColdPartition(t *testing.T) {
	for _, tc := range []struct{ n, dim, k int }{
		{4000, 2, 8},
		{1500, 16, 6},
	} {
		t.Run(fmt.Sprintf("dim=%d", tc.dim), func(t *testing.T) {
			ps := flatRandomPoints(tc.n, tc.dim, int64(50+tc.dim))
			cfg := DefaultConfig()
			cfg.Deterministic = true
			cfg.Seed = 3

			run := func(p, workers int) []int32 {
				c := cfg
				c.Workers = workers
				part, err := partition.Run(mpi.NewWorld(p), ps, tc.k, New(c))
				if err != nil {
					t.Fatalf("p=%d workers=%d: %v", p, workers, err)
				}
				if err := part.Validate(false); err != nil {
					t.Fatalf("p=%d workers=%d: %v", p, workers, err)
				}
				return part.Assign
			}

			base := run(1, 1)
			for _, p := range []int{2, 3} {
				for _, workers := range []int{1, 2} {
					got := run(p, workers)
					for i := range base {
						if got[i] != base[i] {
							t.Fatalf("p=%d workers=%d: assignment diverged at point %d (%d vs %d)",
								p, workers, i, got[i], base[i])
						}
					}
				}
			}
		})
	}
}
