package core

import (
	"math"
	"sort"

	"geographer/internal/geom"
	"geographer/internal/mpi"
)

// assignAndBalance is Algorithm 1 of the paper: repeatedly assign every
// (sampled) local point to the cluster with the smallest *effective*
// distance dist(p,c)/influence(c), then adapt the influence values until
// the blocks are balanced or MaxBalanceIter rounds are spent. Returns
// whether the ε constraint was met.
func (st *state) assignAndBalance() bool {
	sample := st.perm[:st.nSample]

	// Line 1: bounding box around the local (sampled) points.
	bb := geom.EmptyBox(st.dim)
	localSampleW := 0.0
	for _, i := range sample {
		bb.Extend(st.X[i])
		localSampleW += st.W[i]
	}

	// Scale global targets to the current global sample weight.
	sampleW := mpi.ReduceScalarSum(st.c, localSampleW)
	totalTarget := 0.0
	for _, t := range st.targets {
		totalTarget += t
	}
	scale := 1.0
	if totalTarget > 0 {
		scale = sampleW / totalTarget
	}

	oldInfluence := make([]float64, st.k)
	balanced := false

	for round := 0; round < st.cfg.MaxBalanceIter; round++ {
		st.info.BalanceRounds++

		// Lines 2–6: effective distance of every center to the local box,
		// centers sorted ascending (sound pruning order; see DESIGN.md on
		// the paper's maxDist typo).
		for b := 0; b < st.k; b++ {
			st.orderedCenters[b] = int32(b)
			if bb.Empty() {
				st.distToBB[b] = 0
			} else {
				st.distToBB[b] = bb.MinDist(st.centers[b]) / st.influence[b]
			}
			st.localW[b] = 0
		}
		if st.cfg.BBoxPruning {
			sort.Slice(st.orderedCenters, func(a, b int) bool {
				ca, cb := st.orderedCenters[a], st.orderedCenters[b]
				if st.distToBB[ca] != st.distToBB[cb] {
					return st.distToBB[ca] < st.distToBB[cb]
				}
				return ca < cb
			})
		}

		// Lines 8–30: assignment loop.
		var distCalcs, skips, breaks int64
		switch st.cfg.Bounds {
		case BoundsElkan:
			// Elkan-style: one raw-distance lower bound per (point,
			// center); a center whose bound (after influence division)
			// cannot beat the current best is skipped without a distance
			// evaluation (§3.3).
			for _, i := range sample {
				x := st.X[i]
				best := math.Inf(1)
				bestC := int32(0)
				if a := st.A[i]; a >= 0 {
					raw := geom.Dist(x, st.centers[a], st.dim)
					distCalcs++
					st.lbk[int(i)*st.k+int(a)] = raw
					best = raw / st.influence[a]
					bestC = a
				}
				base := int(i) * st.k
				for _, bc := range st.orderedCenters {
					if bc == st.A[i] {
						continue
					}
					if st.cfg.BBoxPruning && st.distToBB[bc] > best {
						breaks++
						break
					}
					if st.lbk[base+int(bc)]/st.influence[bc] >= best {
						skips++
						continue
					}
					raw := geom.Dist(x, st.centers[bc], st.dim)
					distCalcs++
					st.lbk[base+int(bc)] = raw
					if d := raw / st.influence[bc]; d < best {
						best = d
						bestC = bc
					}
				}
				st.A[i] = bestC
				st.ub[i] = best
				st.localW[bestC] += st.W[i]
			}
		default:
			hamerly := st.cfg.Bounds == BoundsHamerly
			for _, i := range sample {
				if hamerly && st.A[i] >= 0 && st.ub[i] < st.lb[i] {
					skips++ // line 10: assignment cannot have changed
				} else {
					x := st.X[i]
					best, second := math.Inf(1), math.Inf(1)
					bestC := int32(0)
					for _, bc := range st.orderedCenters {
						if st.cfg.BBoxPruning && st.distToBB[bc] > second {
							breaks++ // line 16: no remaining center can win
							break
						}
						d := geom.Dist(x, st.centers[bc], st.dim) / st.influence[bc]
						distCalcs++
						if d < best {
							second = best
							best = d
							bestC = bc
						} else if d < second {
							second = d
						}
					}
					st.A[i] = bestC
					st.ub[i] = best   // line 26
					st.lb[i] = second // line 27
				}
				st.localW[st.A[i]] += st.W[i] // line 29
			}
		}
		st.info.DistCalcs += distCalcs
		st.info.HamerlySkips += skips
		st.info.BBoxBreaks += breaks
		st.c.AddOps(distCalcs + int64(len(sample)))

		// Line 31: the only communication of the balance routine.
		globalW := mpi.AllreduceSum(st.c, st.localW)

		// Line 32: balanced?
		imb := 0.0
		for b := 0; b < st.k; b++ {
			target := st.targets[b] * scale
			if target <= 0 {
				continue
			}
			if r := globalW[b]/target - 1; r > imb {
				imb = r
			}
		}
		st.info.Imbalance = imb
		if imb <= st.cfg.Epsilon {
			balanced = true
			break
		}

		// Lines 35–37: adapt influence values (Eq. (1), direction
		// corrected, capped at ±InfluenceCap per round; see DESIGN.md).
		copy(oldInfluence, st.influence)
		lo, hi := 1-st.cfg.InfluenceCap, 1+st.cfg.InfluenceCap
		for b := 0; b < st.k; b++ {
			target := st.targets[b] * scale
			if target <= 0 {
				continue
			}
			gamma := globalW[b] / target // current/target
			var factor float64
			if gamma <= 0 {
				factor = hi // empty block: grow as fast as allowed
			} else {
				factor = math.Pow(gamma, -1/float64(st.dim))
				if factor < lo {
					factor = lo
				}
				if factor > hi {
					factor = hi
				}
			}
			st.influence[b] *= factor
			if st.influence[b] < 1e-10 {
				st.influence[b] = 1e-10
			}
			if st.influence[b] > 1e10 {
				st.influence[b] = 1e10
			}
		}

		// Lines 38–39: bounds must follow the influence change.
		st.scaleBoundsForInfluence(oldInfluence)
	}

	st.info.Balanced = balanced
	return balanced
}
