package core

import (
	"math"

	"geographer/internal/geom"
	"geographer/internal/mpi"
)

// assignAndBalance is Algorithm 1 of the paper: repeatedly assign every
// (sampled) local point to the cluster with the smallest *effective*
// distance dist(p,c)/influence(c), then adapt the influence values until
// the blocks are balanced or MaxBalanceIter rounds are spent. Returns
// whether the ε constraint was met.
//
// The assignment itself runs through the squared-space batch kernels of
// internal/geom: all per-(point,center) comparisons happen on
// dist²·invInfluence², so the O(n·k) inner loop is free of sqrt and
// division (see DESIGN.md, "Performance notes").
func (st *state) assignAndBalance() bool {
	sample := st.sampleIdx()

	// The passes below (re)validate the stored bounds against the
	// current centers; remember them for cross-run carrying (warm.go).
	copy(st.boundCenters, st.centers)

	// Line 1: bounding box around the local (sampled) points, held flat
	// so any dimension fits (identical arithmetic at d ≤ geom.MaxDim).
	var localSampleW float64
	if st.dim <= geom.MaxDim {
		var bb geom.Box
		bb, localSampleW = geom.SampleBoxW(st.dim, st.X.X, st.X.Y, st.X.Z, st.W, sample)
		copy(st.bbMin, bb.Min[:st.dim])
		copy(st.bbMax, bb.Max[:st.dim])
	} else {
		localSampleW = geom.SampleBoxWND(st.X.Col, st.W, sample, st.bbMin, st.bbMax)
	}
	bbEmpty := geom.FlatBoxEmpty(st.bbMin, st.bbMax)

	// The global sample weight (to scale the block targets) and the
	// "anyone still sampling?" flag ride along in the per-round weight
	// collective (slots k and k+1 of localW) instead of costing two
	// collectives of their own; on the simulated runtime every collective
	// is three barrier crossings, which dominates the phase at high rank
	// counts. Summing the 0/1 sampling flags and testing > 0 is the
	// boolean max.
	totalTarget := 0.0
	for _, t := range st.targets {
		totalTarget += t
	}
	sampling := boolTo64(st.nSample < st.X.Len())
	scale := 1.0

	// Center-center pruning tables for the raw pass: centers are fixed
	// across the balance rounds below, so one build serves them all.
	if st.trackRaw {
		st.buildCCTables()
	}

	balanced := false

	for round := 0; round < st.cfg.MaxBalanceIter; round++ {
		st.info.BalanceRounds++

		// Lines 2–6: per-round center tables — reciprocal influences, SoA
		// center columns, and the squared effective distance of every
		// center to the local box, centers sorted ascending (sound
		// pruning order; see DESIGN.md on the paper's maxDist typo).
		maxInf := 0.0
		for b := 0; b < st.k; b++ {
			inv := 1 / st.influence[b]
			st.invInf2[b] = inv * inv
			if st.influence[b] > maxInf {
				maxInf = st.influence[b]
			}
			row := st.centerRow(b)
			st.centerCols.SetVec(b, row)
			st.orderedCenters[b] = int32(b)
			if bbEmpty {
				st.distToBB2[b] = 0
			} else {
				st.distToBB2[b] = geom.FlatBoxMinDist2(st.bbMin, st.bbMax, row) * st.invInf2[b]
			}
			st.localW[b] = 0
		}
		if st.trackRaw {
			// Effective distances are at least raw/maxInf, so the raw
			// shadow floors the skip test at rlb/maxInf — conservatively
			// rounded so the division can only loosen it.
			st.rawLbInv = (1 / maxInf) * (1 - boundSlack)
		}
		if st.cfg.BBoxPruning {
			sortCentersByDist(st.orderedCenters, st.distToBB2)
		}

		// Lines 8–30: assignment loop, dispatched to the batch kernels.
		// An incremental warm step's first pass runs over the boundary
		// worklist alone (prepareCarried proved every interior point's
		// corrected bounds, so omitting them is the same Hamerly skip the
		// full pass would take — counted as such, so the diagnostics are
		// identical across the worklist and full-pass modes).
		idx := sample
		var omitted int64
		if st.useWorklist {
			idx = st.worklist
			omitted = int64(len(sample) - len(idx))
			st.useWorklist = false
		}
		distCalcs, skips, breaks := st.runAssignKernels(idx)
		st.info.DistCalcs += distCalcs
		st.info.HamerlySkips += skips + omitted
		st.info.BBoxBreaks += breaks
		st.info.Visits += int64(len(sample))
		st.c.AddOps(distCalcs + int64(len(idx)))

		// Line 31: the only communication of the balance routine. The
		// warm path reduces exact accumulators instead of the kernel's
		// chunk-merged partials, and needs no sampling piggyback: the
		// sample is always the full set, whose exact weight was fixed at
		// init.
		var globalW []float64
		if st.warm || st.cfg.Deterministic {
			// The deterministic cold path shares the warm reductions: the
			// sample is always the full set there too (SampledInit is
			// forced off), so its exact weight was fixed at init.
			globalW = st.exactBlockWeights()
			if totalTarget > 0 {
				scale = st.totalW / totalTarget
			}
			st.anySampling = false
		} else {
			st.localW[st.k] = localSampleW
			st.localW[st.k+1] = float64(sampling)
			globalW = mpi.AllreduceSum(st.c, st.localW)
			if totalTarget > 0 {
				scale = globalW[st.k] / totalTarget
			}
			st.anySampling = globalW[st.k+1] > 0
		}

		// Line 32: balanced?
		imb := 0.0
		for b := 0; b < st.k; b++ {
			target := st.targets[b] * scale
			if target <= 0 {
				continue
			}
			if r := globalW[b]/target - 1; r > imb {
				imb = r
			}
		}
		st.info.Imbalance = imb
		if imb <= st.cfg.Epsilon {
			balanced = true
			break
		}

		// Lines 35–37: adapt influence values (Eq. (1), direction
		// corrected, capped at ±InfluenceCap per round; see DESIGN.md).
		copy(st.oldInfluence, st.influence)
		lo, hi := 1-st.cfg.InfluenceCap, 1+st.cfg.InfluenceCap
		for b := 0; b < st.k; b++ {
			target := st.targets[b] * scale
			if target <= 0 {
				continue
			}
			gamma := globalW[b] / target // current/target
			var factor float64
			if gamma <= 0 {
				factor = hi // empty block: grow as fast as allowed
			} else {
				factor = math.Pow(gamma, -1/float64(st.dim))
				if factor < lo {
					factor = lo
				}
				if factor > hi {
					factor = hi
				}
			}
			st.influence[b] *= factor
			if st.influence[b] < 1e-10 {
				st.influence[b] = 1e-10
			}
			if st.influence[b] > 1e10 {
				st.influence[b] = 1e10
			}
		}

		// Lines 38–39: bounds must follow the influence change; the
		// rescale is left pending for the next round's kernel pass.
		st.scaleBoundsForInfluence(st.oldInfluence)
	}

	// A pending rescale survives only the exhausted-unbalanced exit;
	// materialize it so the additive Eq. (4)–(5) updates (and the next
	// caller) read correctly scaled bounds.
	st.applyPendingBounds()

	st.info.Balanced = balanced
	return balanced
}

// sortCentersByDist orders the center ids ascending by (dist2[id], id).
// An insertion sort beats sort.Slice here: k is small, the sort runs
// once per balance round, and the reflection-based swapper plus closure
// of sort.Slice showed up in profiles of the k-means phase.
func sortCentersByDist(ids []int32, dist2 []float64) {
	for i := 1; i < len(ids); i++ {
		id := ids[i]
		d := dist2[id]
		j := i - 1
		for j >= 0 && (dist2[ids[j]] > d || (dist2[ids[j]] == d && ids[j] > id)) {
			ids[j+1] = ids[j]
			j--
		}
		ids[j+1] = id
	}
}

// kernelChunks returns the accumulation grid for a sample of n points:
// the machine-independent grid shared with the other batch kernels
// (geom.ChunkGrid), so the per-chunk weight partials always merge in
// the same floating-point order and partition output stays bit-identical
// across machines and worker settings (see DESIGN.md).
func kernelChunks(n int) int { return geom.ChunkGrid(n) }

// runAssignKernels executes one assignment pass over the sample through
// the squared-space batch kernels. The sample is split on the fixed
// chunk grid of kernelChunks; the intra-rank worker pool processes
// chunks concurrently when it has more than one worker. Per-point
// outputs (A, ub, lb, lbk) are written to disjoint indices; per-chunk
// weight accumulators and counters are merged in chunk order afterwards,
// so the pass is deterministic — independent of the worker count — and
// the balance routine still issues exactly one collective per round.
func (st *state) runAssignKernels(sample []int32) (distCalcs, skips, breaks int64) {
	hamerly := st.cfg.Bounds == BoundsHamerly
	elkan := st.cfg.Bounds == BoundsElkan

	nc := kernelChunks(len(sample))
	chunk := (len(sample) + nc - 1) / nc

	// Shared kernel template: every chunk sees the same tables and
	// per-point slices, but keeps private LocalW and counters.
	template := geom.AssignKernel{
		PX: st.X.X, PY: st.X.Y, PZ: st.X.Z, W: st.W,
		CX: st.centerCols.X, CY: st.centerCols.Y, CZ: st.centerCols.Z,
		PC: st.X.Col, CC: st.centerCols.Col,
		InvInf2: st.invInf2,
		Order:   st.orderedCenters, DistBB2: st.distToBB2, Prune: st.cfg.BBoxPruning,
		K: st.k,
		A: st.A, Ub: st.ub, Lb: st.lb, Lbk: st.lbk,
	}
	if st.trackRaw {
		template.RawLb = st.rlb
		template.RawLbInv = st.rawLbInv
		template.CCOrder = st.ccOrder
		template.CCDist = st.ccDist
	}
	if st.pendScaled {
		template.UbScale = st.pendUbRatio
		template.LbScale = st.pendLbRatio
	}
	for s := 0; s < nc; s++ {
		kr := &st.shards[s]
		localW := kr.LocalW
		*kr = template
		kr.LocalW = localW
		clear(kr.LocalW)
	}

	chunkSlice := func(s int) []int32 {
		lo := s * chunk
		hi := lo + chunk
		if hi > len(sample) {
			hi = len(sample)
		}
		return sample[lo:hi]
	}

	// The fan-out itself goes through the leased worker budget
	// (internal/sched): the rank goroutine always runs chunks inline,
	// helpers join only while both the tenant's lease and the process
	// pool have spare tokens. Token droughts shrink the worker set,
	// never the chunk grid, so output is unaffected.
	st.lease.ForEach(st.workers, nc, func(s int) {
		st.runOneKernel(&st.shards[s], chunkSlice(s), hamerly, elkan)
	})

	// The pass visited every sampled point, so a pending influence
	// rescale has been applied (Hamerly) or overwritten by fresh bounds
	// (Elkan, which never reads ub between rescale and rewrite).
	st.pendScaled = false

	// Merge in chunk order: the summation order is a function of the
	// sample size alone, never of how many workers ran the chunks.
	for s := 0; s < nc; s++ {
		kr := &st.shards[s]
		for b := 0; b < st.k; b++ {
			st.localW[b] += kr.LocalW[b]
		}
		distCalcs += kr.DistCalcs
		skips += kr.Skips
		breaks += kr.Breaks
	}
	return distCalcs, skips, breaks
}

// forceGenericKernels routes every kernel dispatch through the
// generic-dimension bodies regardless of st.dim. Test-only: the
// differential kernel tests flip it to pin the generic bodies
// bit-identical to the specialized 2D/3D ones on the same scenarios.
var forceGenericKernels = false

func (st *state) runOneKernel(kr *geom.AssignKernel, idx []int32, hamerly, elkan bool) {
	if forceGenericKernels {
		switch {
		case elkan:
			kr.RunElkanGeneric(idx)
		case hamerly && kr.RawLb != nil:
			kr.RunBoundedRawGeneric(idx)
		default:
			kr.RunBoundedGeneric(idx, hamerly)
		}
		return
	}
	switch {
	case elkan:
		kr.RunElkan(st.dim, idx)
	case hamerly && kr.RawLb != nil:
		kr.RunBoundedRaw(st.dim, idx)
	default:
		kr.RunBounded(st.dim, idx, hamerly)
	}
}
