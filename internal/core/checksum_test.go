package core

import (
	"bytes"
	"errors"
	"testing"
)

func TestChecksumSealVerifyRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{
		nil,
		{},
		{0x00},
		[]byte("checkpoint payload"),
		bytes.Repeat([]byte{0xAB, 0x00, 0xFF}, 1000),
	} {
		sealed := SealChecksum(append([]byte(nil), payload...))
		if len(sealed) != len(payload)+ChecksumTrailerSize {
			t.Fatalf("sealed %d bytes for %d payload", len(sealed), len(payload))
		}
		got, err := VerifyChecksum(sealed)
		if err != nil {
			t.Fatalf("VerifyChecksum: %v", err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("verified payload differs: %x vs %x", got, payload)
		}
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	payload := bytes.Repeat([]byte("geographer"), 100)
	sealed := SealChecksum(append([]byte(nil), payload...))

	// Every single-bit flip anywhere in the frame — payload, magic, or
	// CRC — must be caught (CRC32-C detects all single-bit errors; the
	// trailer fields are compared directly).
	for i := 0; i < len(sealed); i += 13 {
		for bit := 0; bit < 8; bit++ {
			bad := append([]byte(nil), sealed...)
			bad[i] ^= 1 << bit
			if _, err := VerifyChecksum(bad); !errors.Is(err, ErrCheckpointCorrupt) {
				t.Fatalf("bit flip at %d.%d: err = %v, want ErrCheckpointCorrupt", i, bit, err)
			}
		}
	}

	// Every truncation moves or removes the trailer.
	for cut := 0; cut < len(sealed); cut += 7 {
		if _, err := VerifyChecksum(sealed[:cut]); !errors.Is(err, ErrCheckpointCorrupt) {
			t.Fatalf("truncation at %d: err = %v, want ErrCheckpointCorrupt", cut, err)
		}
	}

	// Trailing garbage shifts the trailer window off the real one.
	grown := append(append([]byte(nil), sealed...), 0x00)
	if _, err := VerifyChecksum(grown); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("trailing garbage: err = %v, want ErrCheckpointCorrupt", err)
	}
}

func TestChecksumShortInputs(t *testing.T) {
	for n := 0; n < ChecksumTrailerSize; n++ {
		if _, err := VerifyChecksum(make([]byte, n)); !errors.Is(err, ErrCheckpointCorrupt) {
			t.Fatalf("%d-byte input: err = %v, want ErrCheckpointCorrupt", n, err)
		}
	}
}
