package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"geographer/internal/geom"
)

// rawScenario extends a kernelScenario with the warm incremental state the
// raw-shadow Hamerly pass needs: raw lower bounds, the raw skip floor, and
// the k×k center-to-center anchored-scan tables.
func rawScenario(t testing.TB, dim, n, k int, seed int64) (*state, []int32) {
	st, sample := kernelScenario(t, dim, n, k, BoundsHamerly, false, seed)
	rng := rand.New(rand.NewSource(seed + 1000))
	st.trackRaw = true
	st.rlb = make([]float64, st.X.Len())
	for i := range st.rlb {
		st.rlb[i] = rng.Float64() * 0.5
	}
	maxInf := 0.0
	for _, f := range st.influence {
		if f > maxInf {
			maxInf = f
		}
	}
	st.rawLbInv = (1 / maxInf) * (1 - boundSlack)
	st.perCenter = make([]float64, st.k)
	st.ccDist = make([]float64, st.k*st.k)
	st.ccOrder = make([]int32, st.k*st.k)
	st.buildCCTables()
	return st, sample
}

type kernelRun struct {
	a          []int32
	ub, lb     []float64
	lbk, rlb   []float64
	localW     []float64
	dc, sk, br int64
}

func captureRun(st *state, dc, sk, br int64) kernelRun {
	r := kernelRun{dc: dc, sk: sk, br: br}
	r.a, r.ub, r.lb, r.lbk, r.localW = cloneSlices(st)
	r.rlb = append([]float64(nil), st.rlb...)
	return r
}

func compareRuns(t *testing.T, label string, got, want kernelRun) {
	t.Helper()
	for i := range got.a {
		if got.a[i] != want.a[i] {
			t.Fatalf("%s: A[%d] = %d, want %d", label, i, got.a[i], want.a[i])
		}
	}
	for _, s := range []struct {
		name     string
		got, ref []float64
	}{
		{"ub", got.ub, want.ub}, {"lb", got.lb, want.lb},
		{"lbk", got.lbk, want.lbk}, {"rlb", got.rlb, want.rlb},
		{"localW", got.localW, want.localW},
	} {
		if i := bitsEqual(s.got, s.ref); i >= 0 {
			t.Fatalf("%s: %s[%d] = %x, want %x", label, s.name, i, s.got[i], s.ref[i])
		}
	}
	if got.dc != want.dc || got.sk != want.sk || got.br != want.br {
		t.Fatalf("%s: counters (%d,%d,%d), want (%d,%d,%d)",
			label, got.dc, got.sk, got.br, want.dc, want.sk, want.br)
	}
}

// runKernels resets the state to the captured starting slices, configures
// the shard array, and runs one assignment pass with the given worker
// count, optionally forcing the generic (any-dimension) kernel bodies.
func runKernels(st *state, sample []int32, start kernelRun, pend bool, workers int, generic bool) kernelRun {
	restoreSlices(st, start.a, start.ub, start.lb, start.lbk, start.localW)
	if st.rlb != nil {
		copy(st.rlb, start.rlb)
	}
	st.pendScaled = pend
	st.workers = workers
	nc := kernelChunks(len(sample))
	st.shards = make([]geom.AssignKernel, nc)
	for s := range st.shards {
		st.shards[s].LocalW = make([]float64, st.k)
	}
	if generic {
		forceGenericKernels = true
		defer func() { forceGenericKernels = false }()
	}
	dc, sk, br := st.runAssignKernels(sample)
	return captureRun(st, dc, sk, br)
}

// referenceRun drives the scalar reference path chunk by chunk on the same
// fixed grid as production, merging weight partials in chunk order.
func referenceRun(st *state, sample []int32, pend bool, bounds BoundsKind, raw bool) kernelRun {
	ref := geom.AssignKernel{
		PX: st.X.X, PY: st.X.Y, PZ: st.X.Z, W: st.W,
		CX: st.centerCols.X, CY: st.centerCols.Y, CZ: st.centerCols.Z,
		PC: st.X.Col, CC: st.centerCols.Col,
		InvInf2: st.invInf2,
		Order:   st.orderedCenters, DistBB2: st.distToBB2, Prune: st.cfg.BBoxPruning,
		K: st.k,
		A: st.A, Ub: st.ub, Lb: st.lb, Lbk: st.lbk,
		LocalW: make([]float64, st.k),
	}
	if raw {
		ref.RawLb = st.rlb
		ref.RawLbInv = st.rawLbInv
		ref.CCOrder = st.ccOrder
		ref.CCDist = st.ccDist
		ref.DistBB2 = nil
		ref.Prune = false
	}
	if pend {
		ref.UbScale = st.pendUbRatio
		ref.LbScale = st.pendLbRatio
	}
	refLW := make([]float64, st.k)
	nc := kernelChunks(len(sample))
	chunk := (len(sample) + nc - 1) / nc
	for s := 0; s < nc; s++ {
		lo := s * chunk
		hi := lo + chunk
		if hi > len(sample) {
			hi = len(sample)
		}
		clear(ref.LocalW)
		if raw {
			referenceAssignRaw(st.dim, &ref, sample[lo:hi])
		} else {
			referenceAssign(st.dim, &ref, sample[lo:hi], bounds == BoundsHamerly, bounds == BoundsElkan)
		}
		for b := 0; b < st.k; b++ {
			refLW[b] += ref.LocalW[b]
		}
	}
	r := captureRun(st, ref.DistCalcs, ref.Skips, ref.Breaks)
	copy(r.localW, refLW)
	return r
}

// TestGenericKernelMatchesSpecialized pins the generic (strided-column)
// kernel bodies bit-identical to the specialized 2D/3D kernels at the
// dimensions where both paths exist: same assignments, same bounds, same
// local weights, same counters — the generic path is the same algorithm,
// only the distance expression is a loop.
func TestGenericKernelMatchesSpecialized(t *testing.T) {
	for _, dim := range []int{2, 3} {
		for _, bounds := range []BoundsKind{BoundsHamerly, BoundsElkan, BoundsNone} {
			for _, prune := range []bool{true, false} {
				name := fmt.Sprintf("dim=%d/%s/prune=%v", dim, bounds, prune)
				t.Run(name, func(t *testing.T) {
					for seed := int64(0); seed < 4; seed++ {
						st, sample := kernelScenario(t, dim, 1500, 11, bounds, prune, 400+seed)
						pend := st.pendScaled
						start := captureRun(st, 0, 0, 0)
						spec := runKernels(st, sample, start, pend, 1, false)
						gen := runKernels(st, sample, start, pend, 1, true)
						compareRuns(t, "serial", gen, spec)
						gen3 := runKernels(st, sample, start, pend, 3, true)
						compareRuns(t, "sharded", gen3, spec)
					}
				})
			}
		}
	}
	t.Run("raw", func(t *testing.T) {
		for _, dim := range []int{2, 3} {
			for seed := int64(0); seed < 4; seed++ {
				st, sample := rawScenario(t, dim, 1500, 11, 500+seed)
				pend := st.pendScaled
				start := captureRun(st, 0, 0, 0)
				spec := runKernels(st, sample, start, pend, 1, false)
				gen := runKernels(st, sample, start, pend, 1, true)
				compareRuns(t, fmt.Sprintf("dim=%d", dim), gen, spec)
			}
		}
	})
}

// TestGenericKernelMatchesReference is the high-dimension differential
// lattice: at d > geom.MaxDim (where only the generic kernels exist) the
// batch kernels must stay bit-identical to the scalar reference path
// across bounds modes, pruning, and worker counts.
func TestGenericKernelMatchesReference(t *testing.T) {
	dims := []int{4, 8, 16, 64}
	for _, dim := range dims {
		n := 1200
		if dim >= 16 {
			n = 400 // keep the O(n·k·d) reference pass cheap
		}
		for _, bounds := range []BoundsKind{BoundsHamerly, BoundsElkan, BoundsNone} {
			for _, prune := range []bool{true, false} {
				name := fmt.Sprintf("dim=%d/%s/prune=%v", dim, bounds, prune)
				t.Run(name, func(t *testing.T) {
					for seed := int64(0); seed < 2; seed++ {
						st, sample := kernelScenario(t, dim, n, 9, bounds, prune, 600+seed)
						pend := st.pendScaled
						start := captureRun(st, 0, 0, 0)
						ref := referenceRun(st, sample, pend, bounds, false)
						serial := runKernels(st, sample, start, pend, 1, false)
						compareRuns(t, "serial", serial, ref)
						sharded := runKernels(st, sample, start, pend, 3, false)
						compareRuns(t, "sharded", sharded, ref)
					}
				})
			}
		}
	}
	t.Run("raw", func(t *testing.T) {
		for _, dim := range dims {
			n := 1200
			if dim >= 16 {
				n = 400
			}
			for seed := int64(0); seed < 2; seed++ {
				st, sample := rawScenario(t, dim, n, 9, 700+seed)
				pend := st.pendScaled
				start := captureRun(st, 0, 0, 0)
				ref := referenceRun(st, sample, pend, BoundsHamerly, true)
				for _, workers := range []int{1, 3} {
					got := runKernels(st, sample, start, pend, workers, false)
					compareRuns(t, fmt.Sprintf("dim=%d/workers=%d", dim, workers), got, ref)
				}
			}
		}
	})
}

// TestGenericDist2MatchesSpecialized pins the elementwise accumulation
// order of the generic distance loop to the specialized expressions: the
// bit-level foundation the kernel equivalences above rest on.
func TestGenericDist2MatchesSpecialized(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 2000; trial++ {
		dim := 2 + trial%2
		var p, q geom.Point
		a := make([]float64, dim)
		b := make([]float64, dim)
		for d := 0; d < dim; d++ {
			v, w := rng.NormFloat64()*1e3, rng.NormFloat64()*1e3
			p[d], q[d] = v, w
			a[d], b[d] = v, w
		}
		want := geom.Dist2(p, q, dim)
		got := geom.Dist2Vec(a, b)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("dim=%d: Dist2Vec %x, Dist2 %x", dim, got, want)
		}
	}
}
