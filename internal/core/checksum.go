package core

// Checksum trailer for checkpoint frames spilled to untrusted storage.
// A sealed frame is the payload followed by an 8-byte trailer: a magic
// word ("GEOK") and the CRC32-C (Castagnoli) of the payload. The
// trailer turns silent storage corruption — torn writes, bit rot,
// truncation — into a typed ErrCheckpointCorrupt at read time instead
// of a garbage decode: CRC32-C detects all single-bit errors and all
// burst errors up to 32 bits, and the length asymmetry (any truncation
// moves the trailer) catches torn writes of every size.
//
// The trailer is storage framing, not part of the snapshot codec
// itself: in-memory checkpoints (Session.Checkpoint bytes handed
// straight back to NewSessionFromCheckpoint) never carry it; the disk
// spill store (internal/store) seals on write and verifies-and-strips
// on read.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// checksumMagic guards the trailer ("GEOK").
const checksumMagic = 0x47454F4B

// ChecksumTrailerSize is the byte cost of SealChecksum.
const ChecksumTrailerSize = 8

// castagnoli is the CRC32-C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SealChecksum appends the checksum trailer to payload and returns the
// sealed frame (may share payload's backing array, like append).
func SealChecksum(payload []byte) []byte {
	crc := crc32.Checksum(payload, castagnoli)
	out := binary.LittleEndian.AppendUint32(payload, checksumMagic)
	return binary.LittleEndian.AppendUint32(out, crc)
}

// VerifyChecksum checks a sealed frame's trailer and returns the
// payload with the trailer stripped (a sub-slice of data, not a copy).
// A missing trailer, wrong magic, or CRC mismatch returns a typed
// ErrCheckpointCorrupt.
func VerifyChecksum(data []byte) ([]byte, error) {
	if len(data) < ChecksumTrailerSize {
		return nil, fmt.Errorf("%w: %d bytes, no room for the checksum trailer", ErrCheckpointCorrupt, len(data))
	}
	payload := data[:len(data)-ChecksumTrailerSize]
	trailer := data[len(data)-ChecksumTrailerSize:]
	if m := binary.LittleEndian.Uint32(trailer); m != checksumMagic {
		return nil, fmt.Errorf("%w: bad checksum trailer magic %#x", ErrCheckpointCorrupt, m)
	}
	want := binary.LittleEndian.Uint32(trailer[4:])
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, fmt.Errorf("%w: CRC32-C mismatch: stored %#x, computed %#x", ErrCheckpointCorrupt, want, got)
	}
	return payload, nil
}
