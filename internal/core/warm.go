package core

// This file holds the exact (order-independent) reductions of the
// warm-start repartitioning path (cfg.WarmCenters): the ingest pipeline
// of §4.1 is skipped entirely — see Ingest/PartitionResident in
// session.go for the state lifetime — and every global float reduction
// runs through internal/exact, which makes the output bit-identical
// across rank and worker counts (DESIGN.md, "Repartitioning
// invariants").

import (
	"geographer/internal/exact"
	"geographer/internal/geom"
	"geographer/internal/mpi"
)

// exactBlockWeights returns the global per-block sample weights of the
// current assignment through the exact accumulators: one O(n) local
// pass in index order, one integer AllreduceSum (keeping the balance
// routine at a single collective per round), one rounding per block at
// the end. Any grouping of points into ranks or chunks produces the
// same limbs, hence the same float64 weights everywhere. The kernel's
// chunk-merged st.localW partials are ignored on this path — their
// summation order depends on the rank layout.
func (st *state) exactBlockWeights() []float64 {
	for b := range st.exactW {
		st.exactW[b].Reset()
	}
	for i, a := range st.A {
		if a >= 0 {
			st.exactW[a].Add(st.W[i])
		}
	}
	wire := st.exactWire[:st.k*exact.WireLen]
	for b := 0; b < st.k; b++ {
		st.exactW[b].EncodeTo(wire[b*exact.WireLen:])
	}
	wire = mpi.AllreduceSum(st.c, wire)
	out := st.localW[:st.k]
	for b := range out {
		out[b] = exact.DecodeFloat64(wire[b*exact.WireLen:])
	}
	return out
}

// computeCentersExact is computeCenters for the warm path: the weighted
// coordinate sums go through exact accumulators and one integer
// reduction, so the new centers are bit-identical regardless of the
// rank layout. The per-term fl(w·x) rounding is a deterministic
// function of each point alone; only the summation order had to be
// neutralized.
func (st *state) computeCentersExact(out []geom.Point) bool {
	stride := st.dim + 1
	for i := range st.exactC {
		st.exactC[i].Reset()
	}
	px, py, pz := st.X.X, st.X.Y, st.X.Z
	for i, a := range st.A {
		if a < 0 {
			continue
		}
		base := int(a) * stride
		w := st.W[i]
		st.exactC[base].Add(w * px[i])
		if st.dim >= 2 {
			st.exactC[base+1].Add(w * py[i])
		}
		if st.dim >= 3 {
			st.exactC[base+2].Add(w * pz[i])
		}
		st.exactC[base+st.dim].Add(w)
	}
	st.c.AddOps(int64(st.X.Len()))

	wire := st.exactWire[:len(st.exactC)*exact.WireLen]
	for i := range st.exactC {
		st.exactC[i].EncodeTo(wire[i*exact.WireLen:])
	}
	wire = mpi.AllreduceSum(st.c, wire)

	any := false
	for b := 0; b < st.k; b++ {
		base := b * stride
		w := exact.DecodeFloat64(wire[(base+st.dim)*exact.WireLen:])
		if w <= 0 {
			out[b] = st.centers[b]
			continue
		}
		any = true
		var p geom.Point
		for d := 0; d < st.dim; d++ {
			p[d] = exact.DecodeFloat64(wire[(base+d)*exact.WireLen:]) / w
		}
		out[b] = p
	}
	return any
}
