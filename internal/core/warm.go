package core

// This file holds the exact (order-independent) reductions of the
// warm-start repartitioning path (cfg.WarmCenters): the ingest pipeline
// of §4.1 is skipped entirely — see Ingest/PartitionResident in
// session.go for the state lifetime — and every global float reduction
// runs through internal/exact, which makes the output bit-identical
// across rank and worker counts (DESIGN.md, "Repartitioning
// invariants").

import (
	"geographer/internal/exact"
	"geographer/internal/geom"
	"geographer/internal/mpi"
)

// boundSlack inflates the cross-run drift corrections by a few ulps so
// that the handful of float64 roundings in prepareCarried can only ever
// *loosen* a bound, never tighten it below its true value. A loose
// bound costs one redundant recompute; a too-tight one would let a skip
// keep a stale assignment and break the bit-identicality contract.
const boundSlack = 4e-16

// carryOK reports whether the previous warm run's per-point state can
// seed this run incrementally. All checks are rank-local; a rank that
// falls back to resetRun while others carry produces the same output
// (carried bounds are conservative, so skipped points keep assignments
// a fresh argmin would recompute identically).
func (st *state) carryOK() bool {
	ok := st.warm && st.cfg.Incremental && st.carryValid &&
		st.carryBounds == st.cfg.Bounds && st.cfg.Bounds != BoundsNone &&
		st.carryK == st.k && len(st.boundCenters) == st.k*st.dim
	if ok && st.cfg.Bounds == BoundsHamerly && len(st.rlb) != len(st.A) {
		return false // raw shadow missing: nothing sound to carry
	}
	return ok
}

// prepareCarried is resetRun for an incremental warm run: instead of
// resetting assignments and bounds to "unknown", the values left by the
// previous warm run are corrected for everything that changed between
// the runs — each center's drift from the position the bounds were
// valid against (boundCenters) to this run's warm seed (st.centers),
// and the influence rescale from the previous run's final influences
// back to the fresh all-ones (the eager materialization of the same
// per-center ratios scaleBoundsForInfluence leaves pending within a
// run; here the pass doubles as the boundary-worklist build, so the
// lazy form has nothing left to fuse into). The inequalities (DESIGN.md,
// "Incremental bound invariants"):
//
//	ub' = ub·inf_prev[a] + ‖c_a − c'_a‖     ((near-)exact raw distance + drift)
//	lb' = rlb − max_b ‖c_b − c'_b‖          (raw shadow: no influence loss)
//	lbk'[b] = lbk[b] − ‖c_b − c'_b‖         (Elkan, raw-distance space)
//
// In Hamerly mode the pass also collects the boundary points — those
// whose corrected bounds cross (ub' ≥ lb') and therefore need a fresh
// argmin — into st.worklist; when their fraction stays under
// cfg.BoundaryFraction, the first kernel pass runs over the worklist
// alone and never gathers interior points at all.
func (st *state) prepareCarried() {
	// Per-run values that reset exactly as in resetRun. Influences are
	// read by the correction loops below and reset at the end.
	for i := range st.perm {
		st.perm[i] = int32(i)
		st.allIdx[i] = int32(i)
	}
	st.nSample = st.X.Len()
	st.pendScaled = false
	st.anySampling = false
	st.useWorklist = false

	maxDrift := 0.0
	for b := 0; b < st.k; b++ {
		d := geom.DistVec(st.boundCenters[b*st.dim:(b+1)*st.dim], st.centerRow(b)) * (1 + boundSlack)
		st.perCenter[b] = d
		if d > maxDrift {
			maxDrift = d
		}
	}

	switch st.cfg.Bounds {
	case BoundsHamerly:
		st.worklist = st.worklist[:0]
		for i := range st.A {
			a := st.A[i]
			if a < 0 {
				// Never happens after a completed warm run; kept so a
				// stray unassigned point is recomputed, not trusted.
				st.worklist = append(st.worklist, int32(i))
				continue
			}
			// ub·inf_prev[a] is the (near-)exact raw distance to the
			// assigned center; the raw shadow needs no influence term at
			// all — that losslessness is why it exists.
			u := (st.ub[i]*st.influence[a] + st.perCenter[a]) * (1 + boundSlack)
			l := st.rlb[i] - maxDrift
			if l > 0 {
				l *= 1 - boundSlack
			}
			st.ub[i] = u
			st.lb[i] = l // influences are all 1: effective = raw
			st.rlb[i] = l
			if !(u < l) {
				st.worklist = append(st.worklist, int32(i))
			}
		}
		st.info.BoundaryPoints = int64(len(st.worklist))
		frac := 1.0
		if n := len(st.A); n > 0 {
			frac = float64(len(st.worklist)) / float64(n)
		}
		st.useWorklist = frac <= st.cfg.BoundaryFraction
	case BoundsElkan:
		// Elkan's per-center bounds live in raw-distance space and every
		// point is visited each pass anyway (the current center's
		// distance is always recomputed), so there is no worklist mode —
		// the carried lbk skip per-candidate distance evaluations
		// instead.
		for i := range st.A {
			if a := st.A[i]; a >= 0 {
				st.ub[i] = (st.ub[i]*st.influence[a] + st.perCenter[a]) * (1 + boundSlack)
			}
			base := i * st.k
			for b := 0; b < st.k; b++ {
				l := st.lbk[base+b] - st.perCenter[b]
				if l > 0 {
					l *= 1 - boundSlack
				}
				st.lbk[base+b] = l
			}
		}
		st.info.BoundaryPoints = int64(st.X.Len())
	}
	st.info.CarriedBounds = true

	for b := range st.influence {
		st.influence[b] = 1
	}
}

// buildCCTables fills the center-center pruning tables of the raw pass:
// for every center a, the other centers in ascending raw distance from
// it (a itself pinned first) plus the matching distances, deflated by
// boundSlack so the kernels' triangle bound (ccDist − rawdist(p,c_a))
// stays below its true value under rounding. Centers are fixed across
// the balance rounds of one assignAndBalance call, so this runs once
// per call — k² distances against the thousands of point-center
// evaluations the anchored breaks save.
func (st *state) buildCCTables() {
	k := st.k
	tmp := st.perCenter // per-center scratch; consumers recompute it later
	for a := 0; a < k; a++ {
		row := st.ccOrder[a*k : a*k+k]
		ra := st.centerRow(a)
		for b := 0; b < k; b++ {
			tmp[b] = geom.DistVec(ra, st.centerRow(b))
			row[b] = int32(b)
		}
		row[0], row[a] = row[a], row[0]
		sortCentersByDist(row[1:], tmp)
		for j, id := range row {
			st.ccDist[a*k+j] = tmp[id] * (1 - boundSlack)
		}
	}
}

// recordCarry snapshots, at the end of a warm run, everything the next
// warm run on this state needs to reuse the stored bounds: the validity
// reference (boundCenters already tracks the centers of the most recent
// kernel pass; st.influence holds the final influence values and is
// only reset after prepareCarried reads it), the bounds mode, and k. A
// pending influence rescale is materialized first so the stored ub/lb
// are what the next run's corrections expect.
func (st *state) recordCarry() {
	st.carryValid = false
	if !st.warm || !st.cfg.Incremental || st.cfg.Bounds == BoundsNone {
		return
	}
	st.applyPendingBounds()
	st.carryBounds = st.cfg.Bounds
	st.carryK = st.k
	st.carryValid = true
}

// exactBlockWeights returns the global per-block sample weights of the
// current assignment through the exact accumulator bank: one O(n) local
// pass in index order, one windowed integer reduction (keeping the
// balance routine at a single collective per round), one rounding per
// block at the end. Any grouping of points into ranks or chunks
// produces the same limbs, hence the same float64 weights everywhere.
// The bank's backing array is the wire — no encode copies — and only
// the touched exponent-row window is exchanged and folded, in place, so
// the per-round collective allocates nothing and moves ~10× fewer bytes
// than a dense k·WireLen reduction. The kernel's chunk-merged st.localW
// partials are ignored on this path — their summation order depends on
// the rank layout.
func (st *state) exactBlockWeights() []float64 {
	st.exactW.Reset()
	for i, a := range st.A {
		if a >= 0 {
			st.exactW.Add(int(a), st.W[i])
		}
	}
	off, seg := st.exactW.Wire()
	lo, ln := mpi.AllreduceSumSparse(st.c, exact.WireLen*st.k, off, seg, st.exactW.Backing())
	st.exactW.SetWindow(lo, ln)
	out := st.localW[:st.k]
	for b := range out {
		out[b] = st.exactW.Float64(b)
	}
	return out
}

// computeCentersExact is computeCenters for the warm and deterministic
// paths: the weighted coordinate sums go through exact accumulators and
// one integer reduction, so the new centers are bit-identical
// regardless of the rank layout. The per-term fl(w·x) rounding is a
// deterministic function of each point alone; only the summation order
// had to be neutralized. Both callers run on the full point set
// (warm never samples; Deterministic forces SampledInit off), so the
// linear index-order pass is the whole sample.
func (st *state) computeCentersExact(out []float64) bool {
	stride := st.dim + 1
	st.exactC.Reset()
	cols := st.X.Col
	for i, a := range st.A {
		if a < 0 {
			continue
		}
		base := int(a) * stride
		w := st.W[i]
		for d, col := range cols {
			st.exactC.Add(base+d, w*col[i])
		}
		st.exactC.Add(base+st.dim, w)
	}
	st.c.AddOps(int64(st.X.Len()))

	m := st.k * stride
	off, seg := st.exactC.Wire()
	lo, ln := mpi.AllreduceSumSparse(st.c, exact.WireLen*m, off, seg, st.exactC.Backing())
	st.exactC.SetWindow(lo, ln)

	any := false
	for b := 0; b < st.k; b++ {
		base := b * stride
		obase := b * st.dim
		w := st.exactC.Float64(base + st.dim)
		if w <= 0 {
			copy(out[obase:obase+st.dim], st.centerRow(b))
			continue
		}
		any = true
		for d := 0; d < st.dim; d++ {
			out[obase+d] = st.exactC.Float64(base+d) / w
		}
	}
	return any
}

// exactTotalW computes the exact global point weight through the
// single-row accumulator bank and stores it on the state: the reduction
// is over integer limbs, so the value (and everything derived from it —
// targets, the balance scale) is independent of the rank layout. Used
// by every warm run and by cold runs under cfg.Deterministic.
func (st *state) exactTotalW() float64 {
	st.exactTot.Reset()
	for _, w := range st.W {
		st.exactTot.Add(0, w)
	}
	off, seg := st.exactTot.Wire()
	lo, ln := mpi.AllreduceSumSparse(st.c, exact.WireLen, off, seg, st.exactTot.Backing())
	st.exactTot.SetWindow(lo, ln)
	st.totalW = st.exactTot.Float64(0)
	return st.totalW
}
