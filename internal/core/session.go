package core

import (
	"fmt"
	"time"

	"geographer/internal/geom"
	"geographer/internal/mpi"
	"geographer/internal/partition"
)

// Resident is one rank's long-lived partitioner state: the ingested SoA
// point columns (coordinates, weights, global ids) plus all per-point
// and per-cluster k-means scratch, kept alive across warm Partition
// calls. It is the per-rank building block of the session API
// (internal/repart.Session and the geographer.Session facade): a
// streaming driver ingests once with Ingest, then runs
// BalancedKMeans.PartitionResident once per timestep, updating weights
// or coordinates in place between steps instead of re-scattering the
// whole point set.
//
// A Resident belongs to exactly one rank of one world; it must not be
// shared between ranks. Reusing it across consecutive World.Run calls
// is safe: Run establishes the necessary happens-before edges.
type Resident struct {
	dim        int
	bmin, bmax []float64 // flat global bounding box, len dim each

	// st owns the resident columns (X, W, IDs) and every reusable
	// k-means buffer. PartitionResident re-binds the per-call fields
	// (comm, config, k) and resets — or, on the incremental path
	// (Config.Incremental), drift-corrects and reuses — the per-run
	// values; buffer allocations survive between calls.
	st state

	ingestSeconds float64
}

// Ingest builds the resident state from this rank's scattered points:
// one collective bounding-box reduction plus one copy of the local
// points into SoA columns. This is the only per-point-set cost of a
// session; every subsequent warm partition reuses the columns.
func Ingest(c *mpi.Comm, pts *partition.Local) *Resident {
	t0 := time.Now()
	bmin, bmax := globalBounds(c, pts)
	r := &Resident{dim: pts.Dim, bmin: bmin, bmax: bmax}
	st := &r.st
	st.X = geom.MakeCols(pts.Dim, pts.Len())
	st.W = make([]float64, pts.Len())
	st.IDs = make([]int64, pts.Len())
	n := pts.Len()
	for i := 0; i < n; i++ {
		st.X.SetVec(i, pts.Coord(i))
		st.W[i] = pts.Weight(i)
		st.IDs[i] = pts.IDs[i]
	}
	r.ingestSeconds = time.Since(t0).Seconds()
	return r
}

// Len returns the number of resident local points.
func (r *Resident) Len() int { return r.st.X.Len() }

// Dim returns the coordinate dimension.
func (r *Resident) Dim() int { return r.dim }

// IngestSeconds returns the wall time Ingest spent building this rank's
// resident columns (the one-time cost a session amortizes).
func (r *Resident) IngestSeconds() float64 { return r.ingestSeconds }

// SetWeightsGlobal replaces the resident weight column from a global
// weight vector indexed by point id (nil means unit weights). Purely
// local — no communication — so a session applies a weight delta
// without re-scattering coordinates. The warm path recomputes every
// global weight reduction exactly each call, so no derived state needs
// invalidation; in particular the carried distance bounds survive —
// weights influence balance targets, never distances.
func (r *Resident) SetWeightsGlobal(w []float64) {
	st := &r.st
	if w == nil {
		for i := range st.W {
			st.W[i] = 1
		}
		return
	}
	for i, id := range st.IDs {
		st.W[i] = w[id]
	}
}

// SetCoordsGlobal replaces the resident coordinate columns from a flat
// global coordinate slice (stride Dim, indexed by point id). Callers
// must follow with RecomputeBounds on every rank — the cached global
// bounding box (and the center-movement threshold derived from its
// diagonal) is a function of the coordinates. Carried k-means bounds
// are dropped: they relate the *old* point positions to the centers,
// and per-point displacements are unbounded (see DESIGN.md,
// "Incremental bound invariants"), so the next warm run resets.
func (r *Resident) SetCoordsGlobal(coords []float64) {
	st := &r.st
	st.carryValid = false
	for i, id := range st.IDs {
		st.X.SetVec(i, coords[int(id)*r.dim:(int(id)+1)*r.dim])
	}
}

// RecomputeBounds refreshes the cached global bounding box from the
// resident columns. Collective: every rank of the world must call it.
// The reduction is min/max, so the result is bit-identical to the box
// the one-shot warm path computes, regardless of the rank layout.
func (r *Resident) RecomputeBounds(c *mpi.Comm) {
	st := &r.st
	// Reuses the state's persistent fold buffer when a partition call
	// has sized it (before the first call it is grown here, once).
	st.boxBuf = localBoundsInit(st.boxBuf, r.dim)
	n := st.X.Len()
	if len(r.bmin) != r.dim {
		r.bmin = make([]float64, r.dim)
		r.bmax = make([]float64, r.dim)
	}
	vec := make([]float64, r.dim)
	for i := 0; i < n; i++ {
		st.X.AtVec(i, vec)
		foldBounds(st.boxBuf, vec, r.dim)
	}
	reduceBounds(c, r.dim, st.boxBuf, r.bmin, r.bmax)
}

// PartitionResident is Partition for resident state: the warm-start
// balanced k-means (b.Cfg.WarmCenters, length k, is required) runs
// directly on r's columns — no scatter, no SFC sort, no redistribution,
// and no per-point allocations after the first call on a given
// Resident. The output contract matches Partition: (ids, blocks) pairs
// for this rank's points, bit-identical across rank and worker counts
// (see DESIGN.md, "Repartitioning invariants" and "Session
// invariants").
func (b *BalancedKMeans) PartitionResident(c *mpi.Comm, r *Resident, k int) ([]int64, []int32, error) {
	if k < 1 {
		return nil, nil, fmt.Errorf("core: k=%d", k)
	}
	cfg := b.Cfg.normalized()
	if err := cfg.Validate(k); err != nil {
		return nil, nil, err
	}
	if len(cfg.WarmCenters) != k*r.dim {
		return nil, nil, fmt.Errorf("core: resident partitioning is warm-start only: %d warm center coordinates for k=%d, dim=%d", len(cfg.WarmCenters), k, r.dim)
	}
	return b.runResident(c, r, k, cfg)
}

// runResident binds the per-call fields of the resident state and runs
// the k-means phase. The ingest phase time is zero by construction —
// ingest happened in Ingest, once, and is reported by IngestSeconds.
func (b *BalancedKMeans) runResident(c *mpi.Comm, r *Resident, k int, cfg Config) ([]int64, []int32, error) {
	st := &r.st
	st.c, st.cfg, st.k, st.dim = c, cfg, k, r.dim
	st.warm = true
	st.info = Info{}
	st.diag = geom.FlatBoxDiagonal(r.bmin, r.bmax)
	if st.diag == 0 {
		st.diag = 1
	}
	return b.finish(st)
}
