package core

import (
	"math/rand"
	"testing"

	"geographer/internal/geom"
	"geographer/internal/mpi"
	"geographer/internal/partition"
)

// runWithIngest executes one Partition over a fresh world with the
// ingest path selected by ref, returning the global assignment.
func runWithIngest(t *testing.T, ps *geom.PointSet, k, p int, cfg Config, ref bool) partition.P {
	t.Helper()
	saved := ingestReference
	ingestReference = ref
	defer func() { ingestReference = saved }()
	part, _ := runPartition(t, ps, k, p, cfg)
	return part
}

// TestIngestMatchesReference is the end-to-end differential test of the
// SoA ingest rewrite: batch Hilbert keys + radix sample sort + flat SoA
// redistribution must yield the bit-identical final partition as the
// retained Item reference path (per-point keys, sort.Slice, AoS
// exchange), across rank counts, worker counts and both dimensions.
func TestIngestMatchesReference(t *testing.T) {
	for _, dim := range []int{2, 3} {
		for _, p := range []int{1, 3, 4} {
			for _, workers := range []int{1, 3} {
				ps := uniformPoints(3000, dim, 21)
				cfg := DefaultConfig()
				cfg.Seed = 5
				cfg.Workers = workers
				want := runWithIngest(t, ps, 8, p, cfg, true)
				got := runWithIngest(t, ps, 8, p, cfg, false)
				for i := range want.Assign {
					if got.Assign[i] != want.Assign[i] {
						t.Fatalf("dim=%d p=%d workers=%d: point %d assigned %d (SoA) vs %d (reference)",
							dim, p, workers, i, got.Assign[i], want.Assign[i])
					}
				}
			}
		}
	}
}

// TestIngestMatchesReferenceWeighted repeats the differential on
// non-unit weights and a non-power-of-two rank count.
func TestIngestMatchesReferenceWeighted(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ps := geom.NewPointSet(2, 4000)
	ps.Weight = make([]float64, 0, 4000)
	for i := 0; i < 4000; i++ {
		ps.Append(geom.Point{rng.Float64(), rng.Float64()}, 0.1+3*rng.Float64())
	}
	cfg := DefaultConfig()
	cfg.Seed = 2
	want := runWithIngest(t, ps, 6, 3, cfg, true)
	got := runWithIngest(t, ps, 6, 3, cfg, false)
	for i := range want.Assign {
		if got.Assign[i] != want.Assign[i] {
			t.Fatalf("weighted: point %d assigned %d (SoA) vs %d (reference)", i, got.Assign[i], want.Assign[i])
		}
	}
}

// TestIngestMatchesReferenceNoBootstrap covers the ablation mode (no SFC
// sort): the SoA path must still feed identical columns to phase 3.
func TestIngestMatchesReferenceNoBootstrap(t *testing.T) {
	ps := uniformPoints(2000, 3, 33)
	cfg := DefaultConfig()
	cfg.SFCBootstrap = false
	cfg.Seed = 4
	want := runWithIngest(t, ps, 5, 4, cfg, true)
	got := runWithIngest(t, ps, 5, 4, cfg, false)
	for i := range want.Assign {
		if got.Assign[i] != want.Assign[i] {
			t.Fatalf("no-bootstrap: point %d assigned %d (SoA) vs %d (reference)", i, got.Assign[i], want.Assign[i])
		}
	}
}

// TestIngestEmptyRank keeps the SoA pipeline sound when some ranks start
// with zero points (more ranks than needed for a tiny input).
func TestIngestEmptyRank(t *testing.T) {
	ps := uniformPoints(7, 2, 1)
	part, _ := runPartition(t, ps, 2, 5, DefaultConfig())
	if err := part.Validate(false); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkIngestPhase measures the ingest phases (key computation +
// global sort + redistribution) through a full Partition on the facade
// workload shape (n=20k, p=4), comparing the SoA fast path with the
// Item reference.
func BenchmarkIngestPhase(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	ps := geom.NewPointSet(2, 20000)
	for i := 0; i < 20000; i++ {
		ps.Append(geom.Point{rng.Float64(), rng.Float64()}, 1)
	}
	for _, ref := range []bool{false, true} {
		name := "soa"
		if ref {
			name = "reference"
		}
		b.Run(name, func(b *testing.B) {
			saved := ingestReference
			ingestReference = ref
			defer func() { ingestReference = saved }()
			cfg := DefaultConfig()
			cfg.MaxIter = 1 // ingest dominates; keep the k-means tail short
			var ingest float64
			for i := 0; i < b.N; i++ {
				bkm := New(cfg)
				w := mpi.NewWorld(4)
				if _, err := partition.Run(w, ps, 16, bkm); err != nil {
					b.Fatal(err)
				}
				info := bkm.LastInfo()
				ingest += info.SFCSeconds + info.SortSeconds
			}
			b.ReportMetric(ingest/float64(b.N)*1e3, "ingest-ms/op")
		})
	}
}
