package core

import (
	"testing"

	"geographer/internal/geom"
	"geographer/internal/mpi"
	"geographer/internal/partition"
)

// benchAssignKernel measures one full assignment pass (no prior bounds,
// every point recomputed) of the squared-space batch kernel — the raw
// O(n·k) hot loop future perf PRs report against.
func benchAssignKernel(b *testing.B, dim int) {
	const n, k = 100_000, 16
	st, sample := kernelScenario(b, dim, n, k, BoundsNone, true, 7)
	st.workers = 1
	st.shards = make([]geom.AssignKernel, kernelChunks(n))
	for s := range st.shards {
		st.shards[s].LocalW = make([]float64, k)
	}
	for i := range st.A {
		st.A[i] = -1
	}
	b.SetBytes(int64(n * dim * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clear(st.localW)
		st.runAssignKernels(sample)
	}
}

func BenchmarkAssignKernel2D(b *testing.B) { benchAssignKernel(b, 2) }
func BenchmarkAssignKernel3D(b *testing.B) { benchAssignKernel(b, 3) }

// The generic (strided-column) kernels beyond geom.MaxDim — the
// feature-space hot loop of the highdim experiment.
func BenchmarkAssignKernel8D(b *testing.B)  { benchAssignKernel(b, 8) }
func BenchmarkAssignKernel16D(b *testing.B) { benchAssignKernel(b, 16) }

// BenchmarkAssignBoundsModes runs the full partition pipeline per bounds
// mode, so bound-maintenance overhead and skip savings are both visible.
func BenchmarkAssignBoundsModes(b *testing.B) {
	ps := uniformPoints(20_000, 2, 42)
	for _, bounds := range []BoundsKind{BoundsHamerly, BoundsElkan, BoundsNone} {
		b.Run(string(bounds), func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.Bounds = bounds
			for i := 0; i < b.N; i++ {
				bkm := New(cfg)
				w := mpi.NewWorld(4)
				if _, err := partition.Run(w, ps, 16, bkm); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
