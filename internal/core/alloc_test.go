package core

import (
	"math"
	"testing"

	"geographer/internal/mpi"
	"geographer/internal/partition"
)

// warmStepAllocs measures the per-step heap allocations of a
// steady-state warm session: resident columns ingested once, weights
// updated in place, PartitionResident called repeatedly. Two warm-up
// steps first grow every reusable buffer (and seed the carried bounds),
// so the measured step is the shape the soak experiment runs millions
// of points through.
func warmStepAllocs(t *testing.T, n int) float64 {
	t.Helper()
	const k, p = 8, 4
	ps := uniformPoints(n, 2, 23)
	prev, _ := runPartition(t, ps, k, p, DefaultConfig())
	w := mpi.NewWorld(p)
	res := make([]*Resident, p)
	if err := w.Run(func(c *mpi.Comm) {
		res[c.Rank()] = Ingest(c, partition.Scatter(c, ps))
	}); err != nil {
		t.Fatal(err)
	}

	// Two alternating weight states keep every step a real warm run
	// instead of a converged no-op; out is reused across steps.
	wA := make([]float64, n)
	wB := make([]float64, n)
	for i := range wA {
		wA[i] = 1 + 0.3*math.Sin(float64(i)*0.37)
		wB[i] = 1 + 0.3*math.Sin(float64(i)*0.37+1)
	}
	assign := append([]int32(nil), prev.Assign...)
	out := make([]int32, n)
	step := 0
	body := func() {
		wt := wA
		if step%2 == 1 {
			wt = wB
		}
		step++
		cfg := DefaultConfig()
		cfg.WarmCenters = warmCentersFrom(ps, assign, k)
		bkm := New(cfg)
		for _, r := range res {
			r.SetWeightsGlobal(wt)
		}
		if err := w.Run(func(c *mpi.Comm) {
			ids, blocks, err := bkm.PartitionResident(c, res[c.Rank()], k)
			if err != nil {
				panic(err)
			}
			for i, id := range ids {
				out[id] = blocks[i]
			}
		}); err != nil {
			t.Fatal(err)
		}
		copy(assign, out)
	}
	body()
	body()
	return testing.AllocsPerRun(5, body)
}

// TestWarmStepAllocsIndependentOfN pins the resident warm path's memory
// contract at the step level: after warm-up, a step's heap allocations
// must not scale with the point count. What remains per step is
// n-independent — the world's p goroutines, the warm-center recovery
// (k-sized), and the exact-decode scratch (k·(dim+2) sums per round) —
// so an 8× larger point set must not cost meaningfully more allocations.
// A per-point or per-collective leak anywhere on the warm path (kernel
// scratch, exact banks, collective deposits) fails the ratio check.
func TestWarmStepAllocsIndependentOfN(t *testing.T) {
	small := warmStepAllocs(t, 3000)
	big := warmStepAllocs(t, 24000)
	t.Logf("warm step allocs: n=3000 → %.0f, n=24000 → %.0f", small, big)
	if big > 3*small+512 {
		t.Errorf("warm step allocations scale with n: %.0f at n=3000 vs %.0f at n=24000", small, big)
	}
}

// TestResidentWarmStepReusesOutputBuffers double-checks the documented
// PartitionResident contract that the returned slices are the state's
// reused buffers, not fresh per-call allocations.
func TestResidentWarmStepReusesOutputBuffers(t *testing.T) {
	const n, k, p = 1000, 4, 2
	ps := uniformPoints(n, 2, 29)
	prev, _ := runPartition(t, ps, k, p, DefaultConfig())
	w := mpi.NewWorld(p)
	res := make([]*Resident, p)
	if err := w.Run(func(c *mpi.Comm) {
		res[c.Rank()] = Ingest(c, partition.Scatter(c, ps))
	}); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.WarmCenters = warmCentersFrom(ps, prev.Assign, k)
	bkm := New(cfg)
	ptr := make([]*int32, p)
	for round := 0; round < 2; round++ {
		if err := w.Run(func(c *mpi.Comm) {
			_, blocks, err := bkm.PartitionResident(c, res[c.Rank()], k)
			if err != nil {
				panic(err)
			}
			if round == 0 {
				ptr[c.Rank()] = &blocks[0]
			} else if ptr[c.Rank()] != &blocks[0] {
				panic("warm step reallocated its output buffer")
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
}
