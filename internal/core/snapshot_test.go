package core

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"testing"

	"geographer/internal/geom"
	"geographer/internal/mpi"
	"geographer/internal/partition"
)

// snapPoints picks the snapshot tests' workload for a dimension: the
// mesh-like uniform generator in the spatial regime, the flat generator
// beyond geom.MaxDim.
func snapPoints(n, dim int) *geom.PointSet {
	if dim <= geom.MaxDim {
		return uniformPoints(n, dim, 101)
	}
	return flatRandomPoints(n, dim, 101)
}

// buildWarmResidents builds p residents with live carried bounds: cold
// partition, ingest, then `steps` warm incremental steps with a weight
// perturbation per step so the carry machinery has real work.
func buildWarmResidents(t testing.TB, n, dim, k, p, steps int, cfg Config) ([]*Resident, []int32, *BalancedKMeans) {
	t.Helper()
	ps := snapPoints(n, dim)
	bkm0 := New(cfg)
	w0 := mpi.NewWorld(p)
	prev, err := partition.Run(w0, ps, k, bkm0)
	if err != nil {
		t.Fatalf("cold partition: %v", err)
	}
	w := mpi.NewWorld(p)
	res := make([]*Resident, p)
	if err := w.Run(func(c *mpi.Comm) {
		res[c.Rank()] = Ingest(c, partition.Scatter(c, ps))
	}); err != nil {
		t.Fatal(err)
	}
	assign := append([]int32(nil), prev.Assign...)
	var bkm *BalancedKMeans
	for s := 0; s < steps; s++ {
		wt := make([]float64, n)
		for i := range wt {
			wt[i] = 1 + 0.3*math.Sin(float64(i)*0.37+float64(s))
		}
		for _, r := range res {
			r.SetWeightsGlobal(wt)
		}
		c2 := cfg
		c2.WarmCenters = warmCentersFrom(ps, assign, k)
		bkm = New(c2)
		out := make([]int32, n)
		if err := w.Run(func(c *mpi.Comm) {
			ids, blocks, err := bkm.PartitionResident(c, res[c.Rank()], k)
			if err != nil {
				panic(err)
			}
			for i, id := range ids {
				out[id] = blocks[i]
			}
		}); err != nil {
			t.Fatal(err)
		}
		assign = out
	}
	return res, assign, bkm
}

// warmStepOn runs one more warm step on the given residents and returns
// the global assignment.
func warmStepOn(t *testing.T, res []*Resident, assign []int32, n, dim, k int, cfg Config) []int32 {
	t.Helper()
	p := len(res)
	ps := snapPoints(n, dim)
	wt := make([]float64, n)
	for i := range wt {
		wt[i] = 1 + 0.3*math.Sin(float64(i)*0.37+99)
	}
	for _, r := range res {
		r.SetWeightsGlobal(wt)
	}
	c2 := cfg
	c2.WarmCenters = warmCentersFrom(ps, assign, k)
	bkm := New(c2)
	out := make([]int32, n)
	w := mpi.NewWorld(p)
	if err := w.Run(func(c *mpi.Comm) {
		ids, blocks, err := bkm.PartitionResident(c, res[c.Rank()], k)
		if err != nil {
			panic(err)
		}
		for i, id := range ids {
			out[id] = blocks[i]
		}
	}); err != nil {
		t.Fatal(err)
	}
	if !bkm.LastInfo().CarriedBounds {
		t.Fatal("warm step did not take the incremental carried path")
	}
	return out
}

// TestSnapshotRoundTripBitIdentical is the restore contract: snapshot →
// restore yields residents whose encoding is byte-identical to the
// original's, and whose next warm incremental step produces the exact
// same partition as continuing on the originals — including taking the
// carried-bounds fast path, not a silent reset.
func TestSnapshotRoundTripBitIdentical(t *testing.T) {
	const n, k, p = 3000, 8, 4
	for _, dim := range []int{2, 8} {
		for _, bounds := range []BoundsKind{BoundsHamerly, BoundsElkan} {
			t.Run(fmt.Sprintf("dim=%d/%s", dim, bounds), func(t *testing.T) {
				cfg := DefaultConfig()
				cfg.Seed = 1
				cfg.Bounds = bounds
				res, assign, _ := buildWarmResidents(t, n, dim, k, p, 2, cfg)

				// Encode every rank, restore into fresh residents.
				restored := make([]*Resident, p)
				for r := range res {
					enc := NewSnapEncoder()
					res[r].Snapshot(enc)
					blob := append([]byte(nil), enc.Bytes()...)
					got, err := RestoreResident(NewSnapDecoder(blob))
					if err != nil {
						t.Fatalf("rank %d: restore: %v", r, err)
					}
					re := NewSnapEncoder()
					got.Snapshot(re)
					if !bytes.Equal(blob, re.Bytes()) {
						t.Fatalf("rank %d: re-encode differs from original encode", r)
					}
					restored[r] = got
				}

				want := warmStepOn(t, res, assign, n, dim, k, cfg)
				got := warmStepOn(t, restored, assign, n, dim, k, cfg)
				for i := range want {
					if want[i] != got[i] {
						t.Fatalf("restored chain diverged at point %d: %d vs %d", i, got[i], want[i])
					}
				}
			})
		}
	}
}

// TestSnapshotWithoutCarryRestores covers the cold side: a resident
// that never ran (no carried bounds) round-trips and partitions.
func TestSnapshotWithoutCarryRestores(t *testing.T) {
	const n, k, p = 1000, 4, 2
	ps := uniformPoints(n, 3, 7)
	prev, _ := runPartition(t, ps, k, p, DefaultConfig())
	w := mpi.NewWorld(p)
	res := make([]*Resident, p)
	if err := w.Run(func(c *mpi.Comm) {
		res[c.Rank()] = Ingest(c, partition.Scatter(c, ps))
	}); err != nil {
		t.Fatal(err)
	}
	restored := make([]*Resident, p)
	for r := range res {
		enc := NewSnapEncoder()
		res[r].Snapshot(enc)
		got, err := RestoreResident(NewSnapDecoder(enc.Bytes()))
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
		if got.Len() != res[r].Len() || got.Dim() != res[r].Dim() {
			t.Fatalf("rank %d: restored %d points dim %d", r, got.Len(), got.Dim())
		}
		restored[r] = got
	}
	cfg := DefaultConfig()
	cfg.WarmCenters = warmCentersFrom(ps, prev.Assign, k)
	bkm := New(cfg)
	out := make([]int32, n)
	w2 := mpi.NewWorld(p)
	if err := w2.Run(func(c *mpi.Comm) {
		ids, blocks, err := bkm.PartitionResident(c, restored[c.Rank()], k)
		if err != nil {
			panic(err)
		}
		for i, id := range ids {
			out[id] = blocks[i]
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotDecodeErrors: corrupted, truncated, and wrong-version
// inputs return the typed sentinels and never panic.
func TestSnapshotDecodeErrors(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 1
	res, _, _ := buildWarmResidents(t, 600, 2, 4, 2, 2, cfg)
	enc := NewSnapEncoder()
	res[0].Snapshot(enc)
	valid := enc.Bytes()

	t.Run("truncations", func(t *testing.T) {
		for cut := 0; cut < len(valid); cut += 7 {
			if _, err := RestoreResident(NewSnapDecoder(valid[:cut])); err == nil {
				t.Fatalf("truncation at %d decoded successfully", cut)
			} else if !errors.Is(err, ErrCheckpointCorrupt) && !errors.Is(err, ErrCheckpointVersion) {
				t.Fatalf("truncation at %d: untyped error %v", cut, err)
			}
		}
	})
	t.Run("wrong version", func(t *testing.T) {
		bad := append([]byte(nil), valid...)
		bad[4] = 0xEE // version field, little-endian low byte
		_, err := RestoreResident(NewSnapDecoder(bad))
		if !errors.Is(err, ErrCheckpointVersion) {
			t.Fatalf("want ErrCheckpointVersion, got %v", err)
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), valid...)
		bad[0] ^= 0xFF
		_, err := RestoreResident(NewSnapDecoder(bad))
		if !errors.Is(err, ErrCheckpointCorrupt) {
			t.Fatalf("want ErrCheckpointCorrupt, got %v", err)
		}
	})
	t.Run("huge length prefix", func(t *testing.T) {
		// A corrupted slice length must be rejected by the remaining-bytes
		// guard, not drive a giant allocation.
		bad := append([]byte(nil), valid...)
		for i := 12; i < 20; i++ {
			bad[i] = 0xFF
		}
		_, err := RestoreResident(NewSnapDecoder(bad))
		if !errors.Is(err, ErrCheckpointCorrupt) {
			t.Fatalf("want ErrCheckpointCorrupt, got %v", err)
		}
	})
}

// residentFieldOffsets replays a valid resident record field by field
// through the public decoder and returns the byte offset after each
// field — the exact truncation points that leave a stream cut between
// two fields rather than mid-varint-nowhere. Mirrors the read sequence
// of RestoreResident.
func residentFieldOffsets(tb testing.TB, blob []byte) []int {
	tb.Helper()
	d := NewSnapDecoder(blob)
	var offs []int
	mark := func() {
		if d.Err() != nil {
			tb.Fatalf("replay of a valid record errored at offset %d: %v", len(blob)-d.Len(), d.Err())
		}
		offs = append(offs, len(blob)-d.Len())
	}
	d.U32() // magic
	mark()
	d.U32() // version
	mark()
	dim := int(d.U32())
	mark()
	d.F64s() // box min
	mark()
	d.F64s() // box max
	mark()
	n := int(d.U64())
	mark()
	for di := 0; di < dim; di++ {
		d.F64s() // coordinate column
		mark()
	}
	d.F64s() // weights
	mark()
	d.I64s() // ids
	mark()
	carry := d.Bool()
	mark()
	if carry {
		d.Str() // bounds kind
		mark()
		d.U32() // carried k
		mark()
		d.I32s() // assignment
		mark()
		d.F64s() // upper bounds
		mark()
		d.F64s() // lower bounds
		mark()
		if d.Bool() { // raw shadow present
			d.F64s()
		}
		mark()
		if d.Bool() { // per-center Elkan bounds present
			d.F64s()
		}
		mark()
		d.F64s() // influence
		mark()
		d.F64s() // centers
		mark()
	}
	_ = n
	return offs
}

// FuzzSnapshotRoundTrip: arbitrary bytes never panic the decoder, and
// anything that decodes successfully re-encodes to a stream that decodes
// to the same bytes again (decode∘encode is the identity on the image of
// encode). The seed corpus covers every field boundary: a valid record
// truncated after each field, and a valid record with trailing garbage —
// the torn-write and overwrite shapes the disk spill store must turn
// into typed errors.
func FuzzSnapshotRoundTrip(f *testing.F) {
	cfg := DefaultConfig()
	cfg.Seed = 1
	for _, dim := range []int{2, 8} {
		res, _, _ := buildWarmResidents(f, 200, dim, 4, 2, 2, cfg)
		for _, r := range res {
			enc := NewSnapEncoder()
			r.Snapshot(enc)
			blob := append([]byte(nil), enc.Bytes()...)
			f.Add(blob)
			for _, off := range residentFieldOffsets(f, blob) {
				f.Add(append([]byte(nil), blob[:off]...))
			}
			f.Add(append(append([]byte(nil), blob...), 0xDE, 0xAD, 0xBE, 0xEF))
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0x52, 0x4F, 0x45, 0x47})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := RestoreResident(NewSnapDecoder(data))
		if err != nil {
			if !errors.Is(err, ErrCheckpointCorrupt) && !errors.Is(err, ErrCheckpointVersion) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		enc := NewSnapEncoder()
		r.Snapshot(enc)
		first := append([]byte(nil), enc.Bytes()...)
		r2, err := RestoreResident(NewSnapDecoder(first))
		if err != nil {
			t.Fatalf("re-decode of a valid encode failed: %v", err)
		}
		enc2 := NewSnapEncoder()
		r2.Snapshot(enc2)
		if !bytes.Equal(first, enc2.Bytes()) {
			t.Fatal("encode∘decode not stable")
		}
	})
}
