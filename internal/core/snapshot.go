package core

// Checkpoint/restore for resident session state: a versioned,
// self-describing binary codec over the SoA point columns and the
// cross-run carried k-means state, so a long-lived session can be
// persisted and resumed with its next warm step bit-identical to an
// uninterrupted chain (DESIGN.md, "Fault-tolerance invariants").
//
// Float64 values travel as their IEEE bit patterns (math.Float64bits),
// never through any textual or rounding conversion, which is what makes
// restore exact. Every decode is length-guarded and returns a typed
// error on corrupt, truncated, or wrong-version input — never a panic —
// so checkpoints can be read from untrusted storage.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"geographer/internal/geom"
)

// ErrCheckpointCorrupt marks checkpoint bytes that do not decode:
// truncated input, impossible lengths, bad magic, internal
// inconsistencies. Matched with errors.Is.
var ErrCheckpointCorrupt = errors.New("core: corrupt checkpoint")

// ErrCheckpointVersion marks a checkpoint whose (valid) header carries a
// version this build does not speak.
var ErrCheckpointVersion = errors.New("core: unsupported checkpoint version")

// ResidentSnapshotVersion is the current resident record format. v2
// generalized the record to arbitrary dimensions: the bounding box and
// the carried bound centers are dim-strided, and the coordinate columns
// are written as dim length-prefixed slices instead of a fixed X/Y/Z
// triple.
const ResidentSnapshotVersion = 2

// maxSnapshotDim bounds the dimension field of a resident record: far
// above any real feature space, low enough that a corrupted header
// cannot drive huge allocations.
const maxSnapshotDim = 4096

// residentMagic guards each resident record ("GEOR").
const residentMagic = 0x47454F52

// ---------------------------------------------------------------------
// Primitive codec. SnapEncoder appends little-endian fields to a byte
// slice; SnapDecoder is its sticky-error inverse — after the first
// failure every read returns zero values and Err() reports the cause,
// so record decoders can run straight-line and check once.

// SnapEncoder builds a checkpoint byte stream.
type SnapEncoder struct{ buf []byte }

// NewSnapEncoder returns an empty encoder.
func NewSnapEncoder() *SnapEncoder { return &SnapEncoder{} }

// Bytes returns the encoded stream (owned by the encoder).
func (e *SnapEncoder) Bytes() []byte { return e.buf }

// U32 appends one uint32.
func (e *SnapEncoder) U32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

// U64 appends one uint64.
func (e *SnapEncoder) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// Bool appends one flag byte.
func (e *SnapEncoder) Bool(b bool) {
	if b {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// F64s appends a length-prefixed float64 slice as raw IEEE bits.
func (e *SnapEncoder) F64s(v []float64) {
	e.U64(uint64(len(v)))
	for _, x := range v {
		e.U64(math.Float64bits(x))
	}
}

// Str appends a length-prefixed string.
func (e *SnapEncoder) Str(s string) {
	e.U64(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// I64s appends a length-prefixed int64 slice.
func (e *SnapEncoder) I64s(v []int64) {
	e.U64(uint64(len(v)))
	for _, x := range v {
		e.U64(uint64(x))
	}
}

// I32s appends a length-prefixed int32 slice.
func (e *SnapEncoder) I32s(v []int32) {
	e.U64(uint64(len(v)))
	for _, x := range v {
		e.U32(uint32(x))
	}
}

// SnapDecoder reads a checkpoint byte stream.
type SnapDecoder struct {
	data []byte
	err  error
}

// NewSnapDecoder wraps data for decoding (the slice is not copied).
func NewSnapDecoder(data []byte) *SnapDecoder { return &SnapDecoder{data: data} }

// Err returns the first decode failure, or nil.
func (d *SnapDecoder) Err() error { return d.err }

// Len returns the number of unread bytes.
func (d *SnapDecoder) Len() int { return len(d.data) }

// fail records the sticky error (first failure wins).
func (d *SnapDecoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s", ErrCheckpointCorrupt, fmt.Sprintf(format, args...))
	}
}

func (d *SnapDecoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.data) < n {
		d.fail("truncated: need %d bytes, have %d", n, len(d.data))
		return nil
	}
	b := d.data[:n]
	d.data = d.data[n:]
	return b
}

// U32 reads one uint32.
func (d *SnapDecoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads one uint64.
func (d *SnapDecoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// Bool reads one flag byte (any nonzero value other than 1 is corrupt).
func (d *SnapDecoder) Bool() bool {
	b := d.take(1)
	if b == nil {
		return false
	}
	if b[0] > 1 {
		d.fail("flag byte %d", b[0])
		return false
	}
	return b[0] == 1
}

// sliceLen validates a length prefix against the bytes actually left:
// the guard that keeps a corrupted length from driving a huge
// allocation. elemSize is the wire size of one element.
func (d *SnapDecoder) sliceLen(elemSize int) int {
	n := d.U64()
	if d.err != nil {
		return 0
	}
	if n > uint64(len(d.data)/elemSize) {
		d.fail("slice length %d exceeds remaining %d bytes", n, len(d.data))
		return 0
	}
	return int(n)
}

// F64s reads a length-prefixed float64 slice.
func (d *SnapDecoder) F64s() []float64 {
	n := d.sliceLen(8)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(d.U64())
	}
	return out
}

// Str reads a length-prefixed string.
func (d *SnapDecoder) Str() string {
	n := d.sliceLen(1)
	if d.err != nil || n == 0 {
		return ""
	}
	return string(d.take(n))
}

// I64s reads a length-prefixed int64 slice.
func (d *SnapDecoder) I64s() []int64 {
	n := d.sliceLen(8)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(d.U64())
	}
	return out
}

// I32s reads a length-prefixed int32 slice.
func (d *SnapDecoder) I32s() []int32 {
	n := d.sliceLen(4)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(d.U32())
	}
	return out
}

// ---------------------------------------------------------------------
// Resident record.

// Snapshot appends this rank's complete resident record to the encoder:
// the SoA columns (coordinates, weights, global ids), the bounding box,
// and — when a previous warm run left them — the carried incremental
// bounds (assignment, ub/lb, the raw shadow, Elkan's per-center bounds,
// final influences, and the centers the bounds are valid against).
// Purely local: no communication, no mutation of the resident.
func (r *Resident) Snapshot(e *SnapEncoder) {
	st := &r.st
	n := st.X.Len()
	e.U32(residentMagic)
	e.U32(ResidentSnapshotVersion)
	e.U32(uint32(r.dim))
	e.F64s(r.bmin)
	e.F64s(r.bmax)
	e.U64(uint64(n))
	for d := 0; d < r.dim; d++ {
		e.F64s(st.X.Col[d])
	}
	e.F64s(st.W)
	e.I64s(st.IDs)

	carry := st.carryValid && len(st.A) == n && len(st.boundCenters) == st.carryK*r.dim
	e.Bool(carry)
	if !carry {
		return
	}
	e.Str(string(st.carryBounds))
	e.U32(uint32(st.carryK))
	e.I32s(st.A)
	e.F64s(st.ub)
	e.F64s(st.lb)
	e.Bool(st.rlb != nil)
	if st.rlb != nil {
		e.F64s(st.rlb)
	}
	e.Bool(st.lbk != nil)
	if st.lbk != nil {
		e.F64s(st.lbk)
	}
	e.F64s(st.influence)
	e.F64s(st.boundCenters)
}

// RestoreResident decodes one resident record. The returned Resident is
// ready for PartitionResident on a world of any size whose rank layout
// matches the one that produced the record (the session layer pairs
// records with ranks). All slices are freshly allocated — the decoder's
// input may be discarded or reused afterwards.
func RestoreResident(d *SnapDecoder) (*Resident, error) {
	if m := d.U32(); d.Err() == nil && m != residentMagic {
		return nil, fmt.Errorf("%w: bad resident magic %#x", ErrCheckpointCorrupt, m)
	}
	if v := d.U32(); d.Err() == nil && v != ResidentSnapshotVersion {
		return nil, fmt.Errorf("%w: resident record v%d, want v%d", ErrCheckpointVersion, v, ResidentSnapshotVersion)
	}
	dim := int(d.U32())
	if d.Err() == nil && (dim < 1 || dim > maxSnapshotDim) {
		return nil, fmt.Errorf("%w: dim %d", ErrCheckpointCorrupt, dim)
	}
	boxMin := d.F64s()
	boxMax := d.F64s()
	n64 := d.U64()
	if d.Err() != nil {
		return nil, d.Err()
	}
	if len(boxMin) != dim || len(boxMax) != dim {
		return nil, fmt.Errorf("%w: box of %d/%d coordinates for dim %d", ErrCheckpointCorrupt, len(boxMin), len(boxMax), dim)
	}
	if n64 > uint64(d.Len()/8) {
		return nil, fmt.Errorf("%w: point count %d exceeds record size", ErrCheckpointCorrupt, n64)
	}
	n := int(n64)

	r := &Resident{dim: dim, bmin: boxMin, bmax: boxMax}
	st := &r.st

	// Rebuild the columns through MakeCols so the single-backing-array
	// layout (and its cache behavior) matches a fresh ingest.
	st.X = geom.MakeCols(dim, n)
	for di := 0; di < dim; di++ {
		col := d.F64s()
		if d.Err() == nil && len(col) != n {
			return nil, fmt.Errorf("%w: column %d holds %d values for %d points", ErrCheckpointCorrupt, di, len(col), n)
		}
		copy(st.X.Col[di], col)
	}
	st.W = d.F64s()
	st.IDs = d.I64s()
	carry := d.Bool()
	if d.Err() != nil {
		return nil, d.Err()
	}
	if len(st.W) != n || len(st.IDs) != n {
		return nil, fmt.Errorf("%w: weight/id lengths %d/%d for %d points",
			ErrCheckpointCorrupt, len(st.W), len(st.IDs), n)
	}

	if !carry {
		return r, nil
	}
	st.carryBounds = BoundsKind(d.Str())
	st.carryK = int(d.U32())
	st.A = d.I32s()
	st.ub = d.F64s()
	st.lb = d.F64s()
	if d.Bool() {
		st.rlb = d.F64s()
	}
	if d.Bool() {
		st.lbk = d.F64s()
	}
	st.influence = d.F64s()
	ctr := d.F64s()
	if d.Err() != nil {
		return nil, d.Err()
	}
	k := st.carryK
	switch st.carryBounds {
	case BoundsHamerly, BoundsElkan, BoundsNone:
	default:
		return nil, fmt.Errorf("%w: carried bounds kind %q", ErrCheckpointCorrupt, st.carryBounds)
	}
	if k < 1 {
		return nil, fmt.Errorf("%w: carried k=%d", ErrCheckpointCorrupt, k)
	}
	if len(st.A) != n || len(st.ub) != n || len(st.lb) != n {
		return nil, fmt.Errorf("%w: carried per-point lengths %d/%d/%d for %d points",
			ErrCheckpointCorrupt, len(st.A), len(st.ub), len(st.lb), n)
	}
	if st.rlb != nil && len(st.rlb) != n {
		return nil, fmt.Errorf("%w: raw shadow of %d values for %d points", ErrCheckpointCorrupt, len(st.rlb), n)
	}
	if st.lbk != nil && len(st.lbk) != n*k {
		return nil, fmt.Errorf("%w: %d Elkan bounds for n=%d k=%d", ErrCheckpointCorrupt, len(st.lbk), n, k)
	}
	if len(st.influence) != k || len(ctr) != k*dim {
		return nil, fmt.Errorf("%w: %d influences / %d center coordinates for k=%d, dim=%d",
			ErrCheckpointCorrupt, len(st.influence), len(ctr), k, dim)
	}
	for i, a := range st.A {
		if a < -1 || int(a) >= k {
			return nil, fmt.Errorf("%w: assignment %d at point %d for k=%d", ErrCheckpointCorrupt, a, i, k)
		}
	}
	st.boundCenters = ctr
	st.carryValid = true
	return r, nil
}
