// Package core implements the paper's contribution: weighted balanced
// k-means for mesh partitioning (§4), the algorithm behind Geographer.
//
// The implementation follows Algorithms 1 and 2 of the paper:
//
//   - bootstrap: global sort and redistribution of the points by their
//     Hilbert space-filling curve index (§4.1), initial centers placed at
//     equal distances along the curve (Algorithm 2, line 7);
//   - balancing: per-cluster influence values dividing the distance in
//     the assignment step (weighted Voronoi diagrams, §4.2), adapted by
//     Eq. (1) with a ±5% cap per step, plus the sigmoid influence erosion
//     of Eqs. (2)–(3) after center movements;
//   - geometric optimizations: Hamerly-style distance bounds carried in
//     effective-distance space (§4.3, Eqs. (4)–(5) with the signs
//     corrected, see DESIGN.md), and pruning of far clusters against the
//     bounding box of the process-local points (§4.4);
//   - sampled initialization: the first rounds run on a doubling random
//     sample of the local points (§4.5, "random initialization").
//
// Everything runs SPMD over the simulated MPI runtime; cluster centers
// and influence values are replicated, points are distributed (§4.1).
package core

import (
	"fmt"

	"geographer/internal/partition"
	"geographer/internal/sched"
)

// Config collects the tuning parameters of balanced k-means. The zero
// value is not useful; start from DefaultConfig.
type Config struct {
	// Epsilon is the maximum allowed imbalance ε: every block's weight
	// must be at most (1+ε)·target. The paper evaluates ε ∈ {0.03, 0.05}.
	Epsilon float64

	// MaxIter bounds the outer center-movement iterations (Algorithm 2).
	MaxIter int

	// MaxBalanceIter bounds the influence-adaptation rounds between two
	// center movements (Algorithm 1; "a tuning parameter", §4.2).
	MaxBalanceIter int

	// DeltaThreshold stops the outer loop once the maximum center
	// movement falls below DeltaThreshold × (global bounding box
	// diagonal).
	DeltaThreshold float64

	// InfluenceCap limits the relative influence change per balance round
	// ("we restrict the maximum influence change in one step to 5%").
	InfluenceCap float64

	// Erosion enables the sigmoid influence erosion after center movement
	// (Eqs. (2)–(3)); disable only for ablation studies.
	Erosion bool

	// Bounds selects the distance-bound acceleration (§4.3 / §3.3):
	// BoundsHamerly (the paper's choice: one upper + one lower bound per
	// point), BoundsElkan (k lower bounds per point: fewer distance
	// evaluations, O(n·k) memory — the alternative the paper rejects for
	// its memory cost at large k), or BoundsNone.
	Bounds BoundsKind

	// BBoxPruning enables the bounding-box cluster pruning of §4.4.
	BBoxPruning bool

	// SampledInit enables the doubling-sample initialization rounds.
	SampledInit bool

	// SFCBootstrap enables the space-filling-curve sort/redistribution and
	// curve-spaced initial centers. When false, points stay in input
	// distribution and initial centers are drawn uniformly at random — the
	// configuration the paper argues against; kept for ablations.
	SFCBootstrap bool

	// TargetFractions optionally gives non-uniform per-block target
	// weights (paper footnote 1); nil means uniform.
	TargetFractions []float64

	// Strict makes ε a hard guarantee: after convergence, extra
	// balance-only rounds (with a growing influence cap) run until the
	// partition fits ε. Off by default, matching the paper's setup where
	// balance "was always achieved" with enough iterations.
	Strict bool

	// Workers sets the intra-rank shard count of the assignment kernels:
	// when the host has more cores than the simulated world has ranks,
	// each rank splits its sample across this many concurrent kernel
	// shards (merged before the one collective per balance round, so the
	// paper's communication structure is unchanged). 0 picks
	// Lease.Budget()/worldSize automatically (floored at 1); 1 forces
	// the serial kernel.
	Workers int

	// Lease is the worker budget the intra-rank fan-outs (assignment
	// kernel shards, batch Hilbert keys) draw helper tokens from. Nil
	// selects a full-capacity lease on the process-wide default pool
	// (sched.Default, sized to GOMAXPROCS) — the single-tenant
	// behavior. A multi-tenant host (internal/serve) gives every
	// session its own lease so concurrent sessions cannot oversubscribe
	// the machine; the lease is execution policy, not problem state —
	// it never affects output (DESIGN.md, "Multi-tenancy invariants")
	// and is not part of checkpoints.
	Lease *sched.Lease

	// Seed drives the sampled-initialization permutations and random
	// center placement in non-SFC mode.
	Seed int64

	// Incremental enables cross-run bound carrying on the warm resident
	// path (PartitionResident): the per-point assignments and
	// Hamerly/Elkan distance bounds left by the previous warm run on the
	// same Resident are corrected by the per-center drift (plus the
	// influence rescale back to 1) instead of being reset to "unknown",
	// so the first assignment pass of a warm step touches only the
	// points whose corrected bounds cross — the boundary points — rather
	// than all n. Pure acceleration: output is bit-identical to the
	// bounds-reset path (see DESIGN.md, "Incremental bound invariants").
	// Carried bounds are dropped automatically whenever they could be
	// stale (coordinate updates, k or bounds-mode changes, first run).
	Incremental bool

	// BoundaryFraction caps the boundary-worklist mode of an incremental
	// warm step: when more than this fraction of the local points are
	// boundary points, the first pass falls back to streaming the full
	// point set (the corrected bounds still skip interior points
	// point-by-point; only the compact-worklist gather is skipped). 0
	// disables the worklist mode, never the bound carrying itself.
	BoundaryFraction float64

	// WarmCenters, when non-nil, seeds the k cluster centers directly
	// instead of placing them along the space-filling curve — the
	// warm-start repartitioning entry point (internal/repart): the SFC
	// sort/redistribution bootstrap and the curve-spaced placement of
	// Algorithm 2, lines 4–7 are skipped (points stay in their input
	// distribution), sampled initialization is disabled, and all global
	// weight/center reductions run through the order-independent exact
	// accumulator of internal/exact, making the output bit-identical
	// across rank and worker counts (see DESIGN.md, "Repartitioning
	// invariants"). Stored flat (stride = the input's dimension);
	// length must be k·dim.
	WarmCenters []float64

	// Deterministic makes the cold (non-warm) path's output independent
	// of the rank and worker layout: sampled initialization is forced
	// off (its shuffle is rank-seeded) and every global float reduction
	// — total weight, per-block weights, center sums — runs through the
	// order-independent exact accumulators of internal/exact, exactly as
	// the warm path always does. Costs the sampled bootstrap's speedup
	// on bad initial centers plus the accumulator passes; output is
	// bit-identical across Processes × Workers.
	Deterministic bool
}

// BoundsKind selects the distance-bound strategy of the assignment loop.
type BoundsKind string

// The supported bound strategies.
const (
	BoundsHamerly BoundsKind = "hamerly" // paper §4.3 (default)
	BoundsElkan   BoundsKind = "elkan"   // per-center lower bounds (§3.3)
	BoundsNone    BoundsKind = "none"    // plain Lloyd assignment
)

// Validate checks the parts of a configuration whose violation would
// otherwise fail silently or crash mid-run: a negative ε makes the
// balance check `imb <= Epsilon` unsatisfiable (every k-means iteration
// would burn all MaxBalanceIter rounds for nothing), ill-formed target
// fractions skew the balance targets, and a WarmCenters slice of the
// wrong length would seed garbage centers.
func (cfg Config) Validate(k int) error {
	if k < 1 {
		return fmt.Errorf("core: k=%d", k)
	}
	if cfg.Epsilon < 0 {
		return fmt.Errorf("core: Epsilon=%g is negative (the imbalance bound can never be met)", cfg.Epsilon)
	}
	if cfg.TargetFractions != nil {
		if _, err := partition.CheckFractions(cfg.TargetFractions, k); err != nil {
			return err
		}
	}
	if cfg.WarmCenters != nil && (len(cfg.WarmCenters)%k != 0 || len(cfg.WarmCenters) == 0) {
		return fmt.Errorf("core: %d warm center coordinates not divisible by k=%d", len(cfg.WarmCenters), k)
	}
	return nil
}

// normalized fills the tuning knobs of a zero-value configuration from
// DefaultConfig: the caller did not start from DefaultConfig (MaxIter
// is zero), so the knobs take their defaults — but everything that
// defines the caller's problem (constraints, seeds, warm centers) is
// kept rather than silently reset. The all-on feature booleans
// (Erosion, BBoxPruning, SampledInit, SFCBootstrap) cannot be
// distinguished from unset here and take their defaults; callers that
// ablate them must set MaxIter explicitly.
func (cfg Config) normalized() Config {
	if cfg.MaxIter != 0 {
		if cfg.Deterministic {
			cfg.SampledInit = false
		}
		return cfg
	}
	def := DefaultConfig()
	if cfg.Epsilon != 0 {
		def.Epsilon = cfg.Epsilon
	}
	if cfg.Workers != 0 {
		def.Workers = cfg.Workers
	}
	def.Lease = cfg.Lease
	if cfg.Bounds != "" {
		def.Bounds = cfg.Bounds
	}
	def.Seed = cfg.Seed
	def.Strict = cfg.Strict
	def.TargetFractions = cfg.TargetFractions
	def.WarmCenters = cfg.WarmCenters
	def.Deterministic = cfg.Deterministic
	if def.Deterministic {
		def.SampledInit = false
	}
	return def
}

// DefaultBoundaryFraction is the boundary-worklist fallback threshold of
// DefaultConfig: beyond it the sparse gather loses its locality edge
// over streaming the full columns, and the corrected bounds already
// skip interior points point-by-point on the full pass.
const DefaultBoundaryFraction = 0.6

// DefaultConfig returns the configuration used in the paper's experiments
// (ε = 3%, all optimizations on).
func DefaultConfig() Config {
	return Config{
		Epsilon:        0.03,
		MaxIter:        60,
		MaxBalanceIter: 20,
		DeltaThreshold: 2e-3,
		InfluenceCap:   0.05,
		Erosion:        true,
		Bounds:         BoundsHamerly,
		BBoxPruning:    true,
		SampledInit:    true,
		SFCBootstrap:   true,

		Incremental:      true,
		BoundaryFraction: DefaultBoundaryFraction,
	}
}

// Info reports what happened during one Partition call: phase wall times
// (for the paper's §5.3.2 component breakdown), iteration counts, and the
// effectiveness counters of the geometric optimizations.
type Info struct {
	Iterations    int     // outer (center movement) iterations
	BalanceRounds int     // total inner balance rounds
	Balanced      bool    // final imbalance ≤ ε
	Imbalance     float64 // achieved imbalance

	// Phase wall-clock seconds, measured on rank 0 (§5.3.2: "initial
	// partition with a Hilbert curve, the redistribution of coordinates
	// ... and finally the balanced k-means itself").
	SFCSeconds    float64
	SortSeconds   float64
	KMeansSeconds float64

	// Optimization effectiveness (the paper reports ~80% of inner loops
	// skipped by the distance bounds, §4.3).
	DistCalcs    int64 // full point-center distance evaluations
	HamerlySkips int64 // points whose inner loop was skipped entirely
	BBoxBreaks   int64 // inner loops cut short by the bounding-box order
	Visits       int64 // point visits of the assignment passes (skipped or not)

	// Incremental warm repartitioning (Config.Incremental; session
	// steps after the first warm one).
	CarriedBounds  bool    // every rank reused the previous warm run's bounds
	BoundaryPoints int64   // points the first pass had to examine (global)
	BoundaryFrac   float64 // BoundaryPoints / global n
}

// SkipRate returns the fraction of point visits resolved by the Hamerly
// bounds alone — the per-run counterpart of the paper's §4.3 "innermost
// loop can be skipped in about 80% of the cases". Points an incremental
// worklist pass never gathers count as skipped visits, so the rate is
// comparable across the worklist and full-pass modes.
func (in Info) SkipRate() float64 {
	if in.Visits == 0 {
		return 0
	}
	return float64(in.HamerlySkips) / float64(in.Visits)
}
