package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"geographer/internal/geom"
	"geographer/internal/metrics"
	"geographer/internal/mpi"
	"geographer/internal/partition"
)

// kernelScenario builds a state holding one ready-to-run assignment round
// over random weighted points: random centers and influences, a computed
// bounding-box pruning order, and randomized prior bounds so every branch
// of the kernels (skip, prune-break, recompute) is exercised.
func kernelScenario(t testing.TB, dim, n, k int, bounds BoundsKind, prune bool, seed int64) (*state, []int32) {
	rng := rand.New(rand.NewSource(seed))
	st := &state{dim: dim, k: k}
	st.cfg.Bounds = bounds
	st.cfg.BBoxPruning = prune

	st.X = geom.MakeCols(dim, n)
	st.W = make([]float64, n)
	vec := make([]float64, dim)
	for i := 0; i < n; i++ {
		for d := range vec {
			vec[d] = rng.Float64()
		}
		st.X.SetVec(i, vec)
		st.W[i] = 0.2 + 2*rng.Float64()
	}

	st.centers = make([]float64, k*dim)
	st.influence = make([]float64, k)
	st.centerCols = geom.MakeCols(dim, k)
	st.invInf2 = make([]float64, k)
	st.orderedCenters = make([]int32, k)
	st.distToBB2 = make([]float64, k)
	st.localW = make([]float64, k)
	for b := 0; b < k; b++ {
		row := st.centers[b*dim : (b+1)*dim]
		for d := range row {
			row[d] = rng.Float64()
		}
		st.centerCols.SetVec(b, row)
		st.influence[b] = 0.5 + 1.5*rng.Float64()
		inv := 1 / st.influence[b]
		st.invInf2[b] = inv * inv
		st.orderedCenters[b] = int32(b)
	}

	sample := make([]int32, n)
	for i := range sample {
		sample[i] = int32(i)
	}
	rng.Shuffle(n, func(i, j int) { sample[i], sample[j] = sample[j], sample[i] })

	bmin := make([]float64, dim)
	bmax := make([]float64, dim)
	if dim <= geom.MaxDim {
		bb, _ := geom.SampleBoxW(dim, st.X.X, st.X.Y, st.X.Z, st.W, sample)
		copy(bmin, bb.Min[:dim])
		copy(bmax, bb.Max[:dim])
	} else {
		geom.SampleBoxWND(st.X.Col, st.W, sample, bmin, bmax)
	}
	for b := 0; b < k; b++ {
		st.distToBB2[b] = geom.FlatBoxMinDist2(bmin, bmax, st.centers[b*dim:(b+1)*dim]) * st.invInf2[b]
	}
	if prune {
		for i := 1; i < k; i++ { // insertion sort by (distToBB2, id)
			for j := i; j > 0; j-- {
				a, b := st.orderedCenters[j-1], st.orderedCenters[j]
				if st.distToBB2[a] < st.distToBB2[b] ||
					(st.distToBB2[a] == st.distToBB2[b] && a < b) {
					break
				}
				st.orderedCenters[j-1], st.orderedCenters[j] = b, a
			}
		}
	}

	st.A = make([]int32, n)
	st.ub = make([]float64, n)
	st.lb = make([]float64, n)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.3 {
			st.A[i] = -1
			st.ub[i] = math.Inf(1)
		} else {
			st.A[i] = int32(rng.Intn(k))
			st.ub[i] = rng.Float64()
			st.lb[i] = rng.Float64() // ~half the points satisfy ub < lb
		}
	}
	if bounds == BoundsElkan {
		st.lbk = make([]float64, n*k)
		for i := range st.lbk {
			st.lbk[i] = rng.Float64() - 0.1 // some non-positive entries
		}
	}

	// Odd seeds carry a pending influence rescale into the pass.
	st.pendUbRatio = make([]float64, k)
	st.pendLbRatio = math.Inf(1)
	for b := range st.pendUbRatio {
		st.pendUbRatio[b] = 0.9 + 0.2*rng.Float64()
		if st.pendUbRatio[b] < st.pendLbRatio {
			st.pendLbRatio = st.pendUbRatio[b]
		}
	}
	st.pendScaled = seed%2 == 1
	return st, sample
}

func cloneSlices(st *state) (a []int32, ub, lb, lbk, localW []float64) {
	a = append([]int32(nil), st.A...)
	ub = append([]float64(nil), st.ub...)
	lb = append([]float64(nil), st.lb...)
	lbk = append([]float64(nil), st.lbk...)
	localW = append([]float64(nil), st.localW...)
	return
}

func restoreSlices(st *state, a []int32, ub, lb, lbk, localW []float64) {
	copy(st.A, a)
	copy(st.ub, ub)
	copy(st.lb, lb)
	copy(st.lbk, lbk)
	copy(st.localW, localW)
	for i := range st.localW {
		st.localW[i] = 0
	}
}

func bitsEqual(a, b []float64) int {
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return i
		}
	}
	return -1
}

// TestKernelMatchesReference is the differential property test pinning
// the tentpole: across dimensions, bounds modes and pruning settings, the
// SoA batch kernels must produce bit-identical per-point state (A, ub,
// lb, lbk), bit-identical local block weights, and identical counters to
// the retained scalar reference path.
func TestKernelMatchesReference(t *testing.T) {
	for _, dim := range []int{2, 3} {
		for _, bounds := range []BoundsKind{BoundsHamerly, BoundsElkan, BoundsNone} {
			for _, prune := range []bool{true, false} {
				name := fmt.Sprintf("dim=%d/%s/prune=%v", dim, bounds, prune)
				t.Run(name, func(t *testing.T) {
					for seed := int64(0); seed < 4; seed++ {
						st, sample := kernelScenario(t, dim, 2000, 13, bounds, prune, 100+seed)
						pend := st.pendScaled
						a0, ub0, lb0, lbk0, lw0 := cloneSlices(st)

						// Reference pass, chunk by chunk on the same fixed
						// grid as production, merging weight partials in
						// chunk order.
						ref := geom.AssignKernel{
							PX: st.X.X, PY: st.X.Y, PZ: st.X.Z, W: st.W,
							CX: st.centerCols.X, CY: st.centerCols.Y, CZ: st.centerCols.Z,
							PC: st.X.Col, CC: st.centerCols.Col,
							InvInf2: st.invInf2,
							Order:   st.orderedCenters, DistBB2: st.distToBB2, Prune: prune,
							K: st.k,
							A: st.A, Ub: st.ub, Lb: st.lb, Lbk: st.lbk,
							LocalW: make([]float64, st.k),
						}
						if pend {
							ref.UbScale = st.pendUbRatio
							ref.LbScale = st.pendLbRatio
						}
						refLW := make([]float64, st.k)
						nc := kernelChunks(len(sample))
						chunk := (len(sample) + nc - 1) / nc
						for s := 0; s < nc; s++ {
							lo := s * chunk
							hi := lo + chunk
							if hi > len(sample) {
								hi = len(sample)
							}
							clear(ref.LocalW)
							referenceAssign(dim, &ref, sample[lo:hi], bounds == BoundsHamerly, bounds == BoundsElkan)
							for b := 0; b < st.k; b++ {
								refLW[b] += ref.LocalW[b]
							}
						}
						refA, refUb, refLb, refLbk, _ := cloneSlices(st)

						// Serial kernel pass over the same starting state.
						restoreSlices(st, a0, ub0, lb0, lbk0, lw0)
						st.pendScaled = pend
						st.workers = 1
						st.shards = make([]geom.AssignKernel, nc)
						for s := range st.shards {
							st.shards[s].LocalW = make([]float64, st.k)
						}
						dc, sk, br := st.runAssignKernels(sample)

						for i := range st.A {
							if st.A[i] != refA[i] {
								t.Fatalf("serial: A[%d] = %d, reference %d", i, st.A[i], refA[i])
							}
						}
						if i := bitsEqual(st.ub, refUb); i >= 0 {
							t.Fatalf("serial: ub[%d] = %x, reference %x", i, st.ub[i], refUb[i])
						}
						if i := bitsEqual(st.lb, refLb); i >= 0 {
							t.Fatalf("serial: lb[%d] = %x, reference %x", i, st.lb[i], refLb[i])
						}
						if i := bitsEqual(st.lbk, refLbk); i >= 0 {
							t.Fatalf("serial: lbk[%d] = %x, reference %x", i, st.lbk[i], refLbk[i])
						}
						if i := bitsEqual(st.localW, refLW); i >= 0 {
							t.Fatalf("serial: localW[%d] = %x, reference %x", i, st.localW[i], refLW[i])
						}
						if dc != ref.DistCalcs || sk != ref.Skips || br != ref.Breaks {
							t.Fatalf("serial counters (%d,%d,%d), reference (%d,%d,%d)",
								dc, sk, br, ref.DistCalcs, ref.Skips, ref.Breaks)
						}

						// Sharded kernel pass: chunks accumulate on the same
						// fixed grid regardless of worker count, so even
						// localW must stay bit-identical.
						restoreSlices(st, a0, ub0, lb0, lbk0, lw0)
						st.pendScaled = pend
						st.workers = 3
						st.shards = make([]geom.AssignKernel, nc)
						for s := range st.shards {
							st.shards[s].LocalW = make([]float64, st.k)
						}
						dc2, sk2, br2 := st.runAssignKernels(sample)
						for i := range st.A {
							if st.A[i] != refA[i] {
								t.Fatalf("sharded: A[%d] = %d, reference %d", i, st.A[i], refA[i])
							}
						}
						if i := bitsEqual(st.ub, refUb); i >= 0 {
							t.Fatalf("sharded: ub[%d] differs", i)
						}
						if i := bitsEqual(st.lb, refLb); i >= 0 {
							t.Fatalf("sharded: lb[%d] differs", i)
						}
						if i := bitsEqual(st.lbk, refLbk); i >= 0 {
							t.Fatalf("sharded: lbk[%d] differs", i)
						}
						if dc2 != dc || sk2 != sk || br2 != br {
							t.Fatalf("sharded counters (%d,%d,%d) != serial (%d,%d,%d)", dc2, sk2, br2, dc, sk, br)
						}
						if i := bitsEqual(st.localW, refLW); i >= 0 {
							t.Fatalf("sharded localW[%d] = %x, reference %x", i, st.localW[i], refLW[i])
						}
					}
				})
			}
		}
	}
}

// TestRawKernelMatchesReference pins the warm incremental Hamerly pass
// (RunBoundedRaw: raw shadow bound maintenance, raw skip floor,
// center-anchored scans with the triangle break) bit-identical to its
// scalar reference, for the serial and the sharded dispatch.
func TestRawKernelMatchesReference(t *testing.T) {
	for _, dim := range []int{2, 3} {
		t.Run(fmt.Sprintf("dim=%d", dim), func(t *testing.T) {
			for seed := int64(0); seed < 4; seed++ {
				st, sample := kernelScenario(t, dim, 2000, 13, BoundsHamerly, false, 200+seed)
				rng := rand.New(rand.NewSource(300 + seed))
				st.trackRaw = true
				st.rlb = make([]float64, st.X.Len())
				for i := range st.rlb {
					st.rlb[i] = rng.Float64() * 0.5
				}
				maxInf := 0.0
				for _, f := range st.influence {
					if f > maxInf {
						maxInf = f
					}
				}
				st.rawLbInv = (1 / maxInf) * (1 - boundSlack)
				st.perCenter = make([]float64, st.k)
				st.ccDist = make([]float64, st.k*st.k)
				st.ccOrder = make([]int32, st.k*st.k)
				st.buildCCTables()
				pend := st.pendScaled
				a0, ub0, lb0, lbk0, lw0 := cloneSlices(st)
				rlb0 := append([]float64(nil), st.rlb...)

				ref := geom.AssignKernel{
					PX: st.X.X, PY: st.X.Y, PZ: st.X.Z, W: st.W,
					CX: st.centerCols.X, CY: st.centerCols.Y, CZ: st.centerCols.Z,
					PC: st.X.Col, CC: st.centerCols.Col,
					InvInf2: st.invInf2,
					Order:   st.orderedCenters,
					K:       st.k,
					A:       st.A, Ub: st.ub, Lb: st.lb,
					RawLb: st.rlb, RawLbInv: st.rawLbInv,
					CCOrder: st.ccOrder, CCDist: st.ccDist,
					LocalW: make([]float64, st.k),
				}
				if pend {
					ref.UbScale = st.pendUbRatio
					ref.LbScale = st.pendLbRatio
				}
				refLW := make([]float64, st.k)
				nc := kernelChunks(len(sample))
				chunk := (len(sample) + nc - 1) / nc
				for s := 0; s < nc; s++ {
					lo := s * chunk
					hi := lo + chunk
					if hi > len(sample) {
						hi = len(sample)
					}
					clear(ref.LocalW)
					referenceAssignRaw(dim, &ref, sample[lo:hi])
					for b := 0; b < st.k; b++ {
						refLW[b] += ref.LocalW[b]
					}
				}
				refA, refUb, refLb, _, _ := cloneSlices(st)
				refRlb := append([]float64(nil), st.rlb...)

				for _, workers := range []int{1, 3} {
					restoreSlices(st, a0, ub0, lb0, lbk0, lw0)
					copy(st.rlb, rlb0)
					st.pendScaled = pend
					st.workers = workers
					st.shards = make([]geom.AssignKernel, nc)
					for s := range st.shards {
						st.shards[s].LocalW = make([]float64, st.k)
					}
					dc, sk, br := st.runAssignKernels(sample)
					for i := range st.A {
						if st.A[i] != refA[i] {
							t.Fatalf("workers=%d: A[%d] = %d, reference %d", workers, i, st.A[i], refA[i])
						}
					}
					if i := bitsEqual(st.ub, refUb); i >= 0 {
						t.Fatalf("workers=%d: ub[%d] = %x, reference %x", workers, i, st.ub[i], refUb[i])
					}
					if i := bitsEqual(st.lb, refLb); i >= 0 {
						t.Fatalf("workers=%d: lb[%d] = %x, reference %x", workers, i, st.lb[i], refLb[i])
					}
					if i := bitsEqual(st.rlb, refRlb); i >= 0 {
						t.Fatalf("workers=%d: rlb[%d] = %x, reference %x", workers, i, st.rlb[i], refRlb[i])
					}
					if i := bitsEqual(st.localW, refLW); i >= 0 {
						t.Fatalf("workers=%d: localW[%d] = %x, reference %x", workers, i, st.localW[i], refLW[i])
					}
					if dc != ref.DistCalcs || sk != ref.Skips || br != ref.Breaks {
						t.Fatalf("workers=%d counters (%d,%d,%d), reference (%d,%d,%d)",
							workers, dc, sk, br, ref.DistCalcs, ref.Skips, ref.Breaks)
					}
				}
			}
		})
	}
}

// TestShardedPartitionValid runs the full pipeline with a forced worker
// pool and checks that sharding preserves balance, validity, and
// fixed-worker-count determinism.
func TestShardedPartitionValid(t *testing.T) {
	ps := uniformPoints(4000, 2, 91)
	cfg := DefaultConfig()
	cfg.Workers = 3

	run := func() partition.P {
		bkm := New(cfg)
		w := mpi.NewWorld(2)
		part, err := partition.Run(w, ps, 8, bkm)
		if err != nil {
			t.Fatal(err)
		}
		if err := part.Validate(false); err != nil {
			t.Fatal(err)
		}
		return part
	}
	a := run()
	imb := metrics.Imbalance(metrics.BlockWeights(ps, a.Assign, 8))
	if imb > 0.031 {
		t.Errorf("sharded imbalance %.4f > ε", imb)
	}
	b := run()
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatalf("sharded run not deterministic at point %d", i)
		}
	}

	// The accumulation grid is independent of the worker count, so the
	// serial run must produce the exact same partition.
	cfg.Workers = 1
	bkm := New(cfg)
	w := mpi.NewWorld(2)
	part, err := partition.Run(w, ps, 8, bkm)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assign {
		if a.Assign[i] != part.Assign[i] {
			t.Fatalf("workers=3 and workers=1 disagree at point %d", i)
		}
	}
}
