package mpi

import (
	"context"
	"errors"
	"fmt"
)

// AbortError is the typed failure every rank of a broken world observes:
// collectives entered (or already waited in) after the abort panic with
// the same *AbortError value, Run returns it, and any goroutine blocked
// in Send/Recv is released with it. It satisfies errors.Is(err,
// ErrBroken) so pre-existing sentinel checks keep working, and Unwrap
// exposes the root cause (the panic value of the failing rank, the
// context error of a cancellation, or an injected fault wrapping
// ErrInjected).
type AbortError struct {
	// Rank is the simulated rank whose failure broke the world, or -1
	// when the abort came from outside SPMD code (World.Abort, a
	// cancelled RunCtx context).
	Rank int
	// Cause is the underlying failure.
	Cause error
}

// Error implements error.
func (e *AbortError) Error() string {
	if e.Rank < 0 {
		return fmt.Sprintf("mpi: world aborted: %v", e.Cause)
	}
	return fmt.Sprintf("mpi: world aborted by rank %d: %v", e.Rank, e.Cause)
}

// Unwrap exposes the root cause to errors.Is/As chains.
func (e *AbortError) Unwrap() error { return e.Cause }

// Is reports ErrBroken as a match: an aborted world is a broken world,
// and callers that only care about "did the runtime die" keep their
// errors.Is(err, mpi.ErrBroken) checks.
func (e *AbortError) Is(target error) bool { return target == ErrBroken }

// asError converts an arbitrary panic value into an error, preserving
// error values (and therefore their Is/As chains) as-is.
func asError(rec any) error {
	if err, ok := rec.(error); ok {
		return err
	}
	return fmt.Errorf("%v", rec)
}

// Abort breaks the world from outside its SPMD code: every rank parked
// in a collective (or arriving at one later) panics with an *AbortError
// whose Rank is -1, Run returns that error, and blocked Send/Recv calls
// are released. Aborting an already-broken world is a no-op (the first
// cause wins). This is the cancellation entry point a driving goroutine
// uses to stop a runaway phase; RunCtx wires it to a context.
func (w *World) Abort(cause error) {
	if cause == nil {
		cause = errors.New("mpi: aborted")
	}
	w.breakWorld(&AbortError{Rank: -1, Cause: cause}, true)
}

// Err returns the abort error of a broken world (nil while healthy).
func (w *World) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// RunCtx is Run under a context: if ctx is cancelled while ranks are
// executing, the world is aborted — every rank unwinds out of its next
// (or current) collective with an *AbortError wrapping the context's
// cause — and RunCtx returns that error. A context that is already
// cancelled aborts before any rank body runs.
func (w *World) RunCtx(ctx context.Context, f func(c *Comm)) error {
	if err := ctx.Err(); err != nil {
		w.Abort(context.Cause(ctx))
		return w.Err()
	}
	finished := make(chan struct{})
	watcher := make(chan struct{})
	go func() {
		defer close(watcher)
		select {
		case <-ctx.Done():
			w.Abort(context.Cause(ctx))
		case <-finished:
		}
	}()
	err := w.Run(f)
	close(finished)
	<-watcher
	return err
}

// ---------------------------------------------------------------------
// Runtime hooks: the interception points a transport implementation (or
// the fault injector) attaches to. The in-process runtime calls them at
// the same places a TCP/shared-memory transport would surface real
// failures — on entry to every collective — so failure-handling code
// written against these hooks carries over unchanged.

// Hooks intercepts runtime events on behalf of a transport or a fault
// injector. Implementations must be safe for concurrent use by all
// ranks.
type Hooks interface {
	// BeforeCollective runs each time a rank enters a collective
	// operation or a bare barrier. episode is that rank's entry count
	// (0-based, monotone per rank per world). Returning a non-nil error
	// fails the rank at that point exactly like a rank panic: the world
	// aborts and every peer observes an *AbortError whose cause is the
	// returned error.
	BeforeCollective(rank int, episode int64) error
}

// SetHooks installs h as the world's runtime hooks (nil removes them).
// Must be called before Run. The zero-alloc collective contract is
// unaffected: with no hooks installed the per-collective cost is one nil
// check, and the hook path allocates only on failure.
func (w *World) SetHooks(h Hooks) {
	w.hooks = h
	if h != nil && len(w.episodes) != w.size {
		w.episodes = make([]int64, w.size)
	}
}

// hook dispatches the BeforeCollective hook for one rank. A hook error
// unwinds the rank with the error as panic value; Run's recover turns it
// into this rank's *AbortError, so an injected fault is attributed to
// the rank it was scheduled on.
func (w *World) hook(rank int) {
	if w.hooks == nil {
		return
	}
	ep := w.episodes[rank]
	w.episodes[rank] = ep + 1
	if err := w.hooks.BeforeCollective(rank, ep); err != nil {
		panic(err)
	}
}
