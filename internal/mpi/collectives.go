package mpi

import "unsafe"

// Number constrains element types usable in reductions and scans.
type Number interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 |
		~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64 |
		~float32 | ~float64
}

// sizeOf returns the in-memory element size of T, used only for traffic
// statistics (a proxy for wire size).
func sizeOf[T any]() int64 {
	var z T
	return int64(unsafe.Sizeof(z))
}

// collectiveEnter records stats for a collective where this rank
// contributes `bytes` bytes, then synchronizes. The matching
// collectiveExit synchronizes again so exchange slots can be reused.
func (c *Comm) collectiveEnter(bytes int64) {
	st := &c.w.stats[c.rank]
	st.Collectives++
	st.CollectiveBytes += bytes
	st.ModeledCommSec += c.w.model.CollectiveTime(c.w.size, bytes)
	c.w.bar.wait()
}

func (c *Comm) collectiveExit() {
	c.w.bar.wait()
}

// allreduce is the shared skeleton: all ranks deposit their contribution,
// rank 0 folds them in rank order (so float results are bit-identical on
// every rank and across runs), publishes the result, and every rank takes
// a private copy. Total work is O(p·len) rather than the O(p²·len) of
// everyone-reduces-everything, which matters for the simulated worlds with
// hundreds of ranks used in the scaling experiments.
//
// Unlike the other collectives, allreduce costs a single barrier
// crossing: every rank deposits its slot and enters the barrier, the
// last arriver folds all contributions (at the rendezvous, where every
// deposit is visible) and publishes the result, and each rank returns a
// private copy on release. No exit barrier is needed either: the next
// collective's result publication happens at *its* rendezvous, which
// requires every rank here to have finished copying first; slot
// redeposits are only read at that same rendezvous. The balance loop of
// the k-means core issues one reduction per round, so barrier crossings
// are the phase's floor at high rank counts.
func allreduce[T Number](c *Comm, in []T, fold func(acc, v T) T) []T {
	w := c.w
	w.slots[c.rank] = in
	st := &w.stats[c.rank]
	st.Collectives++
	st.CollectiveBytes += int64(len(in)) * sizeOf[T]()
	st.ModeledCommSec += w.model.CollectiveTime(w.size, int64(len(in))*sizeOf[T]())
	w.bar.waitWith(func() {
		res := make([]T, len(in))
		copy(res, w.slots[0].([]T)) // fold in rank order: bit-identical everywhere
		for r := 1; r < w.size; r++ {
			contrib := w.slots[r].([]T)
			for i, v := range contrib {
				res[i] = fold(res[i], v)
			}
		}
		w.result = res
	})
	src := w.result.([]T)
	out := make([]T, len(src))
	copy(out, src)
	return out
}

// AllreduceSum returns, on every rank, the element-wise sum of `in` across
// all ranks. All ranks must pass equal-length slices. The reduction order
// is rank 0..p-1, so results are bit-identical everywhere.
func AllreduceSum[T Number](c *Comm, in []T) []T {
	return allreduce(c, in, func(acc, v T) T { return acc + v })
}

// AllreduceMax returns the element-wise maximum across ranks.
func AllreduceMax[T Number](c *Comm, in []T) []T {
	return allreduce(c, in, func(acc, v T) T {
		if v > acc {
			return v
		}
		return acc
	})
}

// AllreduceMin returns the element-wise minimum across ranks.
func AllreduceMin[T Number](c *Comm, in []T) []T {
	return allreduce(c, in, func(acc, v T) T {
		if v < acc {
			return v
		}
		return acc
	})
}

// Allgather returns, on every rank, a fresh slice [rank] -> contribution.
// Contributions may have different lengths (allgatherv semantics).
func Allgather[T any](c *Comm, in []T) [][]T {
	c.w.slots[c.rank] = in
	c.collectiveEnter(int64(len(in)) * sizeOf[T]())
	out := make([][]T, c.w.size)
	for r := 0; r < c.w.size; r++ {
		contrib := c.w.slots[r].([]T)
		cp := make([]T, len(contrib))
		copy(cp, contrib)
		out[r] = cp
	}
	c.collectiveExit()
	return out
}

// AllgatherFlat concatenates all contributions in rank order.
func AllgatherFlat[T any](c *Comm, in []T) []T {
	c.w.slots[c.rank] = in
	c.collectiveEnter(int64(len(in)) * sizeOf[T]())
	total := 0
	for r := 0; r < c.w.size; r++ {
		total += len(c.w.slots[r].([]T))
	}
	out := make([]T, 0, total)
	for r := 0; r < c.w.size; r++ {
		out = append(out, c.w.slots[r].([]T)...)
	}
	c.collectiveExit()
	return out
}

// AllgatherScalar gathers one value per rank.
func AllgatherScalar[T any](c *Comm, v T) []T {
	vs := [1]T{v}
	c.w.slots[c.rank] = vs[:]
	c.collectiveEnter(sizeOf[T]())
	out := make([]T, c.w.size)
	for r := 0; r < c.w.size; r++ {
		out[r] = c.w.slots[r].([]T)[0]
	}
	c.collectiveExit()
	return out
}

// Alltoall performs a personalized all-to-all: send[dst] goes to rank dst;
// the result's [src] entry is what rank src sent here. Slice lengths may
// vary per pair (alltoallv semantics). Received data is copied, so senders
// may reuse their buffers immediately after return.
func Alltoall[T any](c *Comm, send [][]T) [][]T {
	if len(send) != c.w.size {
		panic("mpi: Alltoall send slice must have one entry per rank")
	}
	var bytes int64
	es := sizeOf[T]()
	for dst, s := range send {
		if dst != c.rank {
			bytes += int64(len(s)) * es
		}
	}
	c.w.slots[c.rank] = send
	c.collectiveEnter(bytes)
	out := make([][]T, c.w.size)
	for r := 0; r < c.w.size; r++ {
		chunk := c.w.slots[r].([][]T)[c.rank]
		cp := make([]T, len(chunk))
		copy(cp, chunk)
		out[r] = cp
	}
	c.collectiveExit()
	return out
}

// flatSend is the contribution slot of AlltoallFlat: one flat buffer
// holding contiguous per-destination segments plus their lengths.
type flatSend[T any] struct {
	data   []T
	counts []int
}

// AlltoallFlat performs a personalized all-to-all over a flat buffer:
// send must be the concatenation of one contiguous segment per
// destination rank (segment lengths in sendCounts, rank order; they must
// sum to len(send)). It returns the segments received from all ranks
// concatenated in rank order plus the per-source lengths.
//
// Unlike Alltoall, the caller passes no [][]T, and traffic statistics
// count exactly the off-rank elements of this buffer, so the modeled
// wire size follows the real payload. This is the single-column
// variant (and the cross-check oracle of the AlltoallCols tests);
// multi-column record batches like the SoA redistribution of
// internal/dsort use AlltoallCols to pay one collective for all
// columns.
func AlltoallFlat[T any](c *Comm, send []T, sendCounts []int) ([]T, []int) {
	if len(sendCounts) != c.w.size {
		panic("mpi: AlltoallFlat needs one send count per rank")
	}
	es := sizeOf[T]()
	var bytes int64
	total := 0
	for dst, cnt := range sendCounts {
		if cnt < 0 {
			panic("mpi: AlltoallFlat negative send count")
		}
		total += cnt
		if dst != c.rank {
			bytes += int64(cnt) * es
		}
	}
	if total != len(send) {
		panic("mpi: AlltoallFlat send counts do not sum to the buffer length")
	}
	c.w.slots[c.rank] = flatSend[T]{data: send, counts: sendCounts}
	c.collectiveEnter(bytes)
	recvCounts := make([]int, c.w.size)
	total = 0
	for r := 0; r < c.w.size; r++ {
		recvCounts[r] = c.w.slots[r].(flatSend[T]).counts[c.rank]
		total += recvCounts[r]
	}
	out := make([]T, 0, total)
	for r := 0; r < c.w.size; r++ {
		fs := c.w.slots[r].(flatSend[T])
		off := 0
		for d := 0; d < c.rank; d++ {
			off += fs.counts[d]
		}
		out = append(out, fs.data[off:off+fs.counts[c.rank]]...)
	}
	c.collectiveExit()
	return out, recvCounts
}

// colsSend is the contribution slot of AlltoallCols.
type colsSend struct {
	u64    []uint64
	i64    []int64
	f64    [][]float64
	counts []int
}

// AlltoallCols exchanges one record batch stored as parallel flat
// columns — one []uint64, one []int64, and any number of []float64
// columns, all segmented by the same sendCounts — in a *single*
// collective. This is the SoA redistribution primitive of
// internal/dsort: compared with one AlltoallFlat per column it performs
// one barrier enter/exit pair instead of 3+dim, so collective counts
// and modeled latency match the single personalized all-to-all of the
// reference Item path, while the accounted bytes still follow the real
// per-dimension wire size (8·(2+len(f64)) bytes per off-rank record).
// Received segments are concatenated in rank order; the returned counts
// give the per-source run lengths.
func AlltoallCols(c *Comm, u64 []uint64, i64 []int64, f64 [][]float64, sendCounts []int) ([]uint64, []int64, [][]float64, []int) {
	if len(sendCounts) != c.w.size {
		panic("mpi: AlltoallCols needs one send count per rank")
	}
	total := 0
	var off int64
	for dst, cnt := range sendCounts {
		if cnt < 0 {
			panic("mpi: AlltoallCols negative send count")
		}
		total += cnt
		if dst != c.rank {
			off += int64(cnt)
		}
	}
	if total != len(u64) || total != len(i64) {
		panic("mpi: AlltoallCols send counts do not sum to the column length")
	}
	for _, col := range f64 {
		if len(col) != total {
			panic("mpi: AlltoallCols ragged float column")
		}
	}
	bytes := off * int64(8*(2+len(f64)))
	c.w.slots[c.rank] = colsSend{u64: u64, i64: i64, f64: f64, counts: sendCounts}
	c.collectiveEnter(bytes)
	recvCounts := make([]int, c.w.size)
	total = 0
	for r := 0; r < c.w.size; r++ {
		recvCounts[r] = c.w.slots[r].(colsSend).counts[c.rank]
		total += recvCounts[r]
	}
	outU := make([]uint64, 0, total)
	outI := make([]int64, 0, total)
	outF := make([][]float64, len(f64))
	for d := range outF {
		outF[d] = make([]float64, 0, total)
	}
	for r := 0; r < c.w.size; r++ {
		cs := c.w.slots[r].(colsSend)
		lo := 0
		for d := 0; d < c.rank; d++ {
			lo += cs.counts[d]
		}
		hi := lo + cs.counts[c.rank]
		outU = append(outU, cs.u64[lo:hi]...)
		outI = append(outI, cs.i64[lo:hi]...)
		for d := range outF {
			outF[d] = append(outF[d], cs.f64[d][lo:hi]...)
		}
	}
	c.collectiveExit()
	return outU, outI, outF, recvCounts
}

// Bcast distributes root's slice to every rank; non-root ranks receive a
// fresh copy and ignore their own `in`.
func Bcast[T any](c *Comm, root int, in []T) []T {
	if c.rank == root {
		c.w.slots[c.rank] = in
	} else {
		c.w.slots[c.rank] = []T(nil)
	}
	var bytes int64
	if c.rank == root {
		bytes = int64(len(in)) * sizeOf[T]()
	}
	c.collectiveEnter(bytes)
	src := c.w.slots[root].([]T)
	var out []T
	if c.rank == root {
		out = in
	} else {
		out = make([]T, len(src))
		copy(out, src)
	}
	c.collectiveExit()
	return out
}

// ExscanSum returns the exclusive prefix sum of v over ranks: rank r gets
// v_0 + ... + v_{r-1}; rank 0 gets zero. Used to convert local counts into
// global offsets (e.g. global point positions after the distributed sort).
func ExscanSum[T Number](c *Comm, v T) T {
	vs := [1]T{v}
	c.w.slots[c.rank] = vs[:]
	c.collectiveEnter(sizeOf[T]())
	var sum T
	for r := 0; r < c.rank; r++ {
		sum += c.w.slots[r].([]T)[0]
	}
	c.collectiveExit()
	return sum
}

// ReduceScalarSum returns the total of v over all ranks (on every rank).
func ReduceScalarSum[T Number](c *Comm, v T) T {
	vs := [1]T{v}
	c.w.slots[c.rank] = vs[:]
	c.collectiveEnter(sizeOf[T]())
	var sum T
	for r := 0; r < c.w.size; r++ {
		sum += c.w.slots[r].([]T)[0]
	}
	c.collectiveExit()
	return sum
}

// ReduceScalarMax returns the maximum of v over all ranks (on every rank).
func ReduceScalarMax[T Number](c *Comm, v T) T {
	vs := [1]T{v}
	c.w.slots[c.rank] = vs[:]
	c.collectiveEnter(sizeOf[T]())
	best := c.w.slots[0].([]T)[0]
	for r := 1; r < c.w.size; r++ {
		if x := c.w.slots[r].([]T)[0]; x > best {
			best = x
		}
	}
	c.collectiveExit()
	return best
}
