package mpi

import "unsafe"

// Number constrains element types usable in reductions and scans. Every
// member is at most 8 bytes, which the scalar collectives exploit to
// exchange values through a pre-allocated uint64 array instead of boxing
// them into interfaces (see putScalar).
type Number interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 |
		~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64 |
		~float32 | ~float64
}

// sizeOf returns the in-memory element size of T, used only for traffic
// statistics (a proxy for wire size).
func sizeOf[T any]() int64 {
	var z T
	return int64(unsafe.Sizeof(z))
}

// ---------------------------------------------------------------------
// Deposit and result plumbing.
//
// The zero-alloc collective contract (DESIGN.md, "Scaling invariants"):
// the collectives used on the warm repartition path — AllreduceSumInto /
// MinInto / MaxInto, AllreduceSumSparse, ExscanSum, ReduceScalarSum/Max,
// Barrier — perform no per-call heap allocation in steady state. Three
// mechanisms make that hold:
//
//   - slice contributions are deposited as slotHdr (pointer+len) instead
//     of being boxed into `any`, which would heap-allocate a slice
//     header per call;
//   - scalar contributions are type-punned through the world's uint64
//     arrays (every Number fits in 8 aligned bytes);
//   - rendezvous folds write into buffers owned by the world (resBufs,
//     scan, resOffs), grown once and reused forever after.
//
// The reuse of rendezvous buffers is safe under the single-crossing
// discipline: a buffer published at one rendezvous is only rewritten at
// the *next* rendezvous, which cannot run until every rank has re-entered
// the barrier — i.e. has finished reading the previous result.

func depositSlice[T any](w *World, rank int, s []T) {
	w.hdrs[rank] = slotHdr{ptr: unsafe.Pointer(unsafe.SliceData(s)), len: len(s)}
}

func slotSlice[T any](w *World, r int) []T {
	h := w.hdrs[r]
	if h.ptr == nil {
		return nil
	}
	return unsafe.Slice((*T)(h.ptr), h.len)
}

// resultBuf returns a length-n []T for a rendezvous fold to fill,
// reusing the world's previously grown buffer of this element type, and
// publishes it through resHdr. Must only be called inside a rendezvous
// action (single goroutine, deposits visible).
func resultBuf[T any](w *World, n int) []T {
	for i, b := range w.resBufs {
		if s, ok := b.([]T); ok {
			if cap(s) < n {
				s = make([]T, n)
				w.resBufs[i] = s
			}
			s = s[:n]
			w.resHdr = slotHdr{ptr: unsafe.Pointer(unsafe.SliceData(s)), len: n}
			return s
		}
	}
	s := make([]T, n)
	w.resBufs = append(w.resBufs, s)
	w.resHdr = slotHdr{ptr: unsafe.Pointer(unsafe.SliceData(s)), len: n}
	return s
}

// resultSlice reads back the buffer published by the last rendezvous.
func resultSlice[T any](w *World) []T {
	if w.resHdr.ptr == nil {
		return nil
	}
	return unsafe.Slice((*T)(w.resHdr.ptr), w.resHdr.len)
}

// putScalar / getScalar move one Number through a uint64 cell without
// boxing. Valid because every Number is ≤ 8 bytes and the cells are
// 8-byte aligned; writer and reader agree on T per collective call.
func putScalar[T Number](arr []uint64, i int, v T) {
	*(*T)(unsafe.Pointer(&arr[i])) = v
}

func getScalar[T Number](arr []uint64, i int) T {
	return *(*T)(unsafe.Pointer(&arr[i]))
}

// collectiveStats records one collective contributing `bytes` from this
// rank.
func (c *Comm) collectiveStats(bytes int64) {
	c.w.hook(c.rank) // fault-injection / transport hook (nil check when unused)
	st := &c.w.stats[c.rank]
	st.Collectives++
	st.CollectiveBytes += bytes
	st.ModeledCommSec += c.w.model.CollectiveTime(c.w.size, bytes)
}

// ---------------------------------------------------------------------
// Reductions.

// allreduce is the shared skeleton: all ranks deposit their contribution
// and enter the barrier; the last arriver folds all contributions in
// rank order (so float results are bit-identical on every rank and
// across runs) into a world-owned buffer; each rank copies the result on
// release. Total fold work is O(p·len) rather than the O(p²·len) of
// everyone-reduces-everything.
//
// This costs a single barrier crossing. No exit barrier is needed: the
// next collective's rendezvous — the only point where deposits and the
// result buffer are touched again — requires every rank here to have
// finished copying first. The balance loop of the k-means core issues
// one reduction per round, so barrier crossings are the phase's floor at
// high rank counts.
//
// out, when non-nil, receives the result (len(out) ≥ len(in)) and is
// returned; out == in is allowed (the fold has consumed every deposit
// before any rank copies). A nil out allocates.
func allreduce[T Number](c *Comm, in, out []T, fold func(acc, v T) T) []T {
	w := c.w
	depositSlice(w, c.rank, in)
	c.collectiveStats(int64(len(in)) * sizeOf[T]())
	n := len(in)
	w.barWaitWith(c.rank, func() {
		res := resultBuf[T](w, n)
		copy(res, slotSlice[T](w, 0))
		for r := 1; r < w.size; r++ {
			contrib := slotSlice[T](w, r)
			for i, v := range contrib {
				res[i] = fold(res[i], v)
			}
		}
	})
	if out == nil {
		out = make([]T, n)
	}
	copy(out[:n], resultSlice[T](w))
	return out[:n]
}

func foldSum[T Number](acc, v T) T { return acc + v }

func foldMax[T Number](acc, v T) T {
	if v > acc {
		return v
	}
	return acc
}

func foldMin[T Number](acc, v T) T {
	if v < acc {
		return v
	}
	return acc
}

// AllreduceSum returns, on every rank, the element-wise sum of `in` across
// all ranks. All ranks must pass equal-length slices. The reduction order
// is rank 0..p-1, so results are bit-identical everywhere.
func AllreduceSum[T Number](c *Comm, in []T) []T {
	return allreduce(c, in, nil, foldSum[T])
}

// AllreduceSumInto is AllreduceSum writing into out (len(out) ≥ len(in));
// out == in reduces in place. Allocation-free in steady state.
func AllreduceSumInto[T Number](c *Comm, in, out []T) []T {
	return allreduce(c, in, out, foldSum[T])
}

// AllreduceMax returns the element-wise maximum across ranks.
func AllreduceMax[T Number](c *Comm, in []T) []T {
	return allreduce(c, in, nil, foldMax[T])
}

// AllreduceMaxInto is AllreduceMax writing into out; out == in allowed.
func AllreduceMaxInto[T Number](c *Comm, in, out []T) []T {
	return allreduce(c, in, out, foldMax[T])
}

// AllreduceMin returns the element-wise minimum across ranks.
func AllreduceMin[T Number](c *Comm, in []T) []T {
	return allreduce(c, in, nil, foldMin[T])
}

// AllreduceMinInto is AllreduceMin writing into out; out == in allowed.
func AllreduceMinInto[T Number](c *Comm, in, out []T) []T {
	return allreduce(c, in, out, foldMin[T])
}

// AllreduceSumSparse sums conceptual length-n vectors that are zero
// outside each rank's window: this rank contributes seg at offset off
// (off+len(seg) ≤ n). The union window's sum is written into
// out[lo:lo+length] and (lo, length) returned; out entries outside that
// window are left untouched and must be treated as zero by the caller.
// len(out) must be ≥ n. seg may alias out (in-place update of a resident
// vector).
//
// This is the wire format of the exact-accumulator reductions on the
// warm path: real data touches a handful of limb rows out of 66, so the
// fold and the copies shrink ~10× versus a dense AllreduceSum while the
// result stays bit-identical (integer limb addition is associative).
// Traffic statistics count only the window actually sent. Single
// crossing, allocation-free in steady state.
func AllreduceSumSparse[T Number](c *Comm, n, off int, seg, out []T) (int, int) {
	if off < 0 || off+len(seg) > n {
		panic("mpi: AllreduceSumSparse window out of range")
	}
	if len(out) < n {
		panic("mpi: AllreduceSumSparse out shorter than n")
	}
	w := c.w
	depositSlice(w, c.rank, seg)
	w.scalB[c.rank] = uint64(off)
	c.collectiveStats(int64(len(seg)) * sizeOf[T]())
	w.barWaitWith(c.rank, func() {
		lo, hi := n, 0
		for r := 0; r < w.size; r++ {
			l := w.hdrs[r].len
			if l == 0 {
				continue
			}
			o := int(w.scalB[r])
			if o < lo {
				lo = o
			}
			if o+l > hi {
				hi = o + l
			}
		}
		if hi <= lo {
			lo, hi = 0, 0
		}
		res := resultBuf[T](w, hi-lo)
		clear(res)
		for r := 0; r < w.size; r++ {
			seg := slotSlice[T](w, r)
			o := int(w.scalB[r]) - lo
			for i, v := range seg {
				res[o+i] += v
			}
		}
		w.resOff, w.resLen = lo, hi-lo
	})
	lo, length := w.resOff, w.resLen
	copy(out[lo:lo+length], resultSlice[T](w))
	return lo, length
}

// ---------------------------------------------------------------------
// Gathers.

// Allgather returns, on every rank, a fresh slice [rank] -> contribution.
// Contributions may have different lengths (allgatherv semantics).
func Allgather[T any](c *Comm, in []T) [][]T {
	w := c.w
	depositSlice(w, c.rank, in)
	c.collectiveStats(int64(len(in)) * sizeOf[T]())
	w.barWait(c.rank)
	out := make([][]T, w.size)
	for r := 0; r < w.size; r++ {
		contrib := slotSlice[T](w, r)
		cp := make([]T, len(contrib))
		copy(cp, contrib)
		out[r] = cp
	}
	w.barWait(c.rank) // senders' buffers stay live until everyone copied
	return out
}

// AllgatherFlat concatenates all contributions in rank order.
func AllgatherFlat[T any](c *Comm, in []T) []T {
	return AllgatherFlatInto(c, in, nil)
}

// AllgatherFlatInto is AllgatherFlat writing into out when cap(out)
// suffices (the possibly regrown slice is returned). The concatenation
// offsets are computed once at the rendezvous — O(p) total instead of
// O(p) per rank — and each rank then copies the segments in parallel.
// Two crossings: contributions are read from the senders' live buffers,
// so an exit barrier keeps them pinned until everyone has copied.
func AllgatherFlatInto[T any](c *Comm, in, out []T) []T {
	w := c.w
	depositSlice(w, c.rank, in)
	c.collectiveStats(int64(len(in)) * sizeOf[T]())
	w.barWaitWith(c.rank, func() {
		if cap(w.resOffs) < w.size+1 {
			w.resOffs = make([]int, w.size+1)
		}
		offs := w.resOffs[:w.size+1]
		total := 0
		for r := 0; r < w.size; r++ {
			offs[r] = total
			total += w.hdrs[r].len
		}
		offs[w.size] = total
	})
	offs := w.resOffs[:w.size+1]
	total := offs[w.size]
	if cap(out) < total {
		out = make([]T, total)
	}
	out = out[:total]
	for r := 0; r < w.size; r++ {
		copy(out[offs[r]:offs[r+1]], slotSlice[T](w, r))
	}
	w.barWait(c.rank)
	return out
}

// AllgatherScalar gathers one value per rank. Single crossing: the
// rendezvous copies the p values into a world buffer, from which every
// rank takes its private copy.
func AllgatherScalar[T any](c *Comm, v T) []T {
	w := c.w
	vs := [1]T{v}
	depositSlice(w, c.rank, vs[:])
	c.collectiveStats(sizeOf[T]())
	w.barWaitWith(c.rank, func() {
		res := resultBuf[T](w, w.size)
		for r := 0; r < w.size; r++ {
			res[r] = slotSlice[T](w, r)[0]
		}
	})
	out := make([]T, w.size)
	copy(out, resultSlice[T](w))
	return out
}

// ---------------------------------------------------------------------
// Personalized all-to-alls.

// Alltoall performs a personalized all-to-all: send[dst] goes to rank dst;
// the result's [src] entry is what rank src sent here. Slice lengths may
// vary per pair (alltoallv semantics). Received data is copied, so senders
// may reuse their buffers immediately after return.
func Alltoall[T any](c *Comm, send [][]T) [][]T {
	w := c.w
	if len(send) != w.size {
		panic("mpi: Alltoall send slice must have one entry per rank")
	}
	var bytes int64
	es := sizeOf[T]()
	for dst, s := range send {
		if dst != c.rank {
			bytes += int64(len(s)) * es
		}
	}
	depositSlice(w, c.rank, send)
	c.collectiveStats(bytes)
	w.barWait(c.rank)
	out := make([][]T, w.size)
	for r := 0; r < w.size; r++ {
		chunk := slotSlice[[]T](w, r)[c.rank]
		cp := make([]T, len(chunk))
		copy(cp, chunk)
		out[r] = cp
	}
	w.barWait(c.rank)
	return out
}

// flatSend is the contribution slot of AlltoallFlat: one flat buffer
// holding contiguous per-destination segments, their lengths, and their
// exclusive prefix offsets. The sender computes offs once — previously
// every receiver re-scanned every sender's counts, an O(p²)-per-rank
// (O(p³) aggregate) cost that dominated high-p redistribution.
type flatSend[T any] struct {
	data   []T
	counts []int
	offs   []int
}

// AlltoallFlat performs a personalized all-to-all over a flat buffer:
// send must be the concatenation of one contiguous segment per
// destination rank (segment lengths in sendCounts, rank order; they must
// sum to len(send)). It returns the segments received from all ranks
// concatenated in rank order plus the per-source lengths.
//
// Unlike Alltoall, the caller passes no [][]T, and traffic statistics
// count exactly the off-rank elements of this buffer, so the modeled
// wire size follows the real payload. This is the single-column
// variant (and the cross-check oracle of the AlltoallCols tests);
// multi-column record batches like the SoA redistribution of
// internal/dsort use AlltoallCols to pay one collective for all
// columns.
func AlltoallFlat[T any](c *Comm, send []T, sendCounts []int) ([]T, []int) {
	w := c.w
	if len(sendCounts) != w.size {
		panic("mpi: AlltoallFlat needs one send count per rank")
	}
	es := sizeOf[T]()
	var bytes int64
	offs := make([]int, w.size+1)
	for dst, cnt := range sendCounts {
		if cnt < 0 {
			panic("mpi: AlltoallFlat negative send count")
		}
		offs[dst+1] = offs[dst] + cnt
		if dst != c.rank {
			bytes += int64(cnt) * es
		}
	}
	if offs[w.size] != len(send) {
		panic("mpi: AlltoallFlat send counts do not sum to the buffer length")
	}
	w.slots[c.rank] = flatSend[T]{data: send, counts: sendCounts, offs: offs}
	c.collectiveStats(bytes)
	w.barWait(c.rank)
	recvCounts := make([]int, w.size)
	total := 0
	for r := 0; r < w.size; r++ {
		recvCounts[r] = w.slots[r].(flatSend[T]).counts[c.rank]
		total += recvCounts[r]
	}
	out := make([]T, 0, total)
	for r := 0; r < w.size; r++ {
		fs := w.slots[r].(flatSend[T])
		lo := fs.offs[c.rank]
		out = append(out, fs.data[lo:lo+fs.counts[c.rank]]...)
	}
	w.barWait(c.rank)
	return out, recvCounts
}

// colsSend is the contribution slot of AlltoallCols; offs as in flatSend.
type colsSend struct {
	u64    []uint64
	i64    []int64
	f64    [][]float64
	counts []int
	offs   []int
}

// AlltoallCols exchanges one record batch stored as parallel flat
// columns — one []uint64, one []int64, and any number of []float64
// columns, all segmented by the same sendCounts — in a *single*
// collective. This is the SoA redistribution primitive of
// internal/dsort: compared with one AlltoallFlat per column it performs
// one barrier enter/exit pair instead of 3+dim, so collective counts
// and modeled latency match the single personalized all-to-all of the
// reference Item path, while the accounted bytes still follow the real
// per-dimension wire size (8·(2+len(f64)) bytes per off-rank record).
// Received segments are concatenated in rank order; the returned counts
// give the per-source run lengths.
func AlltoallCols(c *Comm, u64 []uint64, i64 []int64, f64 [][]float64, sendCounts []int) ([]uint64, []int64, [][]float64, []int) {
	w := c.w
	if len(sendCounts) != w.size {
		panic("mpi: AlltoallCols needs one send count per rank")
	}
	var offRank int64
	offs := make([]int, w.size+1)
	for dst, cnt := range sendCounts {
		if cnt < 0 {
			panic("mpi: AlltoallCols negative send count")
		}
		offs[dst+1] = offs[dst] + cnt
		if dst != c.rank {
			offRank += int64(cnt)
		}
	}
	total := offs[w.size]
	if total != len(u64) || total != len(i64) {
		panic("mpi: AlltoallCols send counts do not sum to the column length")
	}
	for _, col := range f64 {
		if len(col) != total {
			panic("mpi: AlltoallCols ragged float column")
		}
	}
	w.slots[c.rank] = colsSend{u64: u64, i64: i64, f64: f64, counts: sendCounts, offs: offs}
	c.collectiveStats(offRank * int64(8*(2+len(f64))))
	w.barWait(c.rank)
	recvCounts := make([]int, w.size)
	total = 0
	for r := 0; r < w.size; r++ {
		recvCounts[r] = w.slots[r].(colsSend).counts[c.rank]
		total += recvCounts[r]
	}
	outU := make([]uint64, 0, total)
	outI := make([]int64, 0, total)
	outF := make([][]float64, len(f64))
	for d := range outF {
		outF[d] = make([]float64, 0, total)
	}
	for r := 0; r < w.size; r++ {
		cs := w.slots[r].(colsSend)
		lo := cs.offs[c.rank]
		hi := lo + cs.counts[c.rank]
		outU = append(outU, cs.u64[lo:hi]...)
		outI = append(outI, cs.i64[lo:hi]...)
		for d := range outF {
			outF[d] = append(outF[d], cs.f64[d][lo:hi]...)
		}
	}
	w.barWait(c.rank)
	return outU, outI, outF, recvCounts
}

// ---------------------------------------------------------------------
// Broadcast and scalar scans/reductions.

// Bcast distributes root's slice to every rank; non-root ranks receive a
// fresh copy and ignore their own `in`. Two crossings: non-root ranks
// copy from root's live buffer between them.
func Bcast[T any](c *Comm, root int, in []T) []T {
	w := c.w
	var bytes int64
	if c.rank == root {
		depositSlice(w, c.rank, in)
		bytes = int64(len(in)) * sizeOf[T]()
	}
	c.collectiveStats(bytes)
	w.barWait(c.rank)
	var out []T
	if c.rank == root {
		out = in
	} else {
		src := slotSlice[T](w, root)
		out = make([]T, len(src))
		copy(out, src)
	}
	w.barWait(c.rank)
	return out
}

// ExscanSum returns the exclusive prefix sum of v over ranks: rank r gets
// v_0 + ... + v_{r-1}; rank 0 gets zero. Used to convert local counts into
// global offsets (e.g. global point positions after the distributed sort).
// The rendezvous computes the whole prefix array in one O(p) pass —
// previously every rank re-scanned the ranks below it, O(p²) aggregate.
// Single crossing, allocation-free.
func ExscanSum[T Number](c *Comm, v T) T {
	w := c.w
	putScalar(w.scal, c.rank, v)
	c.collectiveStats(sizeOf[T]())
	w.barWaitWith(c.rank, func() {
		var acc T
		for r := 0; r < w.size; r++ {
			x := getScalar[T](w.scal, r)
			putScalar(w.scan, r, acc)
			acc += x
		}
	})
	return getScalar[T](w.scan, c.rank)
}

// ReduceScalarSum returns the total of v over all ranks (on every rank).
// Single crossing, allocation-free.
func ReduceScalarSum[T Number](c *Comm, v T) T {
	w := c.w
	putScalar(w.scal, c.rank, v)
	c.collectiveStats(sizeOf[T]())
	w.barWaitWith(c.rank, func() {
		acc := getScalar[T](w.scal, 0)
		for r := 1; r < w.size; r++ {
			acc += getScalar[T](w.scal, r)
		}
		*(*T)(unsafe.Pointer(&w.scalRes)) = acc
	})
	return *(*T)(unsafe.Pointer(&w.scalRes))
}

// ReduceScalarMax returns the maximum of v over all ranks (on every rank).
// Single crossing, allocation-free.
func ReduceScalarMax[T Number](c *Comm, v T) T {
	w := c.w
	putScalar(w.scal, c.rank, v)
	c.collectiveStats(sizeOf[T]())
	w.barWaitWith(c.rank, func() {
		best := getScalar[T](w.scal, 0)
		for r := 1; r < w.size; r++ {
			if x := getScalar[T](w.scal, r); x > best {
				best = x
			}
		}
		*(*T)(unsafe.Pointer(&w.scalRes)) = best
	})
	return *(*T)(unsafe.Pointer(&w.scalRes))
}
