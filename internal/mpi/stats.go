package mpi

// Stats accumulates per-rank communication and work counters. Ranks update
// their own entry without synchronization; read the aggregate only after
// Run returns (or inside a Barrier-delimited region).
type Stats struct {
	MsgsSent        int64   // point-to-point messages sent
	BytesSent       int64   // point-to-point payload bytes sent
	Barriers        int64   // barrier entries
	Collectives     int64   // collective operations (excluding bare barriers)
	CollectiveBytes int64   // bytes contributed to collectives
	Ops             int64   // algorithm-defined work units (e.g. distance evaluations)
	ModeledCommSec  float64 // α-β modeled communication time, seconds
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.MsgsSent += other.MsgsSent
	s.BytesSent += other.BytesSent
	s.Barriers += other.Barriers
	s.Collectives += other.Collectives
	s.CollectiveBytes += other.CollectiveBytes
	s.Ops += other.Ops
	s.ModeledCommSec += other.ModeledCommSec
}

// AddOps records n units of rank-local work (used by the cost model to
// estimate the parallel computation time as max over ranks).
func (c *Comm) AddOps(n int64) { c.w.stats[c.rank].Ops += n }

// CostModel is a simple α-β (latency–bandwidth) communication model plus a
// per-work-unit compute cost. It converts the traffic counters into a
// modeled parallel execution time whose *shape* over p matches what the
// paper measured on SuperMUC (§5.3.2); absolute values depend on the
// constants and are not calibrated to that machine.
type CostModel struct {
	AlphaSec     float64 // latency per message / per collective round
	BetaBytesSec float64 // bandwidth in bytes per second
	OpSec        float64 // seconds per work unit (distance evaluation etc.)
}

// DefaultCostModel returns constants loosely inspired by a fat-tree HPC
// interconnect (2 µs latency, 2 GB/s per-link effective bandwidth) and a
// 2 ns work unit.
func DefaultCostModel() CostModel {
	return CostModel{AlphaSec: 2e-6, BetaBytesSec: 2e9, OpSec: 2e-9}
}

// CollectiveLatency returns the latency of one tree-structured collective
// over p ranks: α·⌈log2 p⌉.
func (m CostModel) CollectiveLatency(p int) float64 {
	rounds := 0
	for v := p - 1; v > 0; v >>= 1 {
		rounds++
	}
	return m.AlphaSec * float64(rounds)
}

// CollectiveTime returns the modeled time for a collective where each rank
// contributes `bytes` bytes: tree latency plus bandwidth term.
func (m CostModel) CollectiveTime(p int, bytes int64) float64 {
	return m.CollectiveLatency(p) + float64(bytes)/m.BetaBytesSec
}

// P2PTime returns the modeled time of one point-to-point message.
func (m CostModel) P2PTime(bytes int64) float64 {
	return m.AlphaSec + float64(bytes)/m.BetaBytesSec
}

// ModeledTime summarizes a finished Run: computation is the maximum Ops
// over ranks times OpSec; communication is the maximum modeled
// communication time over ranks. The two maxima are summed — a slight
// overestimate (bulk-synchronous worst case), consistent across all
// partitioners compared in the experiments.
func (m CostModel) ModeledTime(stats []Stats) (compSec, commSec float64) {
	var maxOps int64
	for _, s := range stats {
		if s.Ops > maxOps {
			maxOps = s.Ops
		}
		if s.ModeledCommSec > commSec {
			commSec = s.ModeledCommSec
		}
	}
	return float64(maxOps) * m.OpSec, commSec
}
