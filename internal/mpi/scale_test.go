package mpi

import (
	"fmt"
	"math/rand"
	"testing"
)

// ---------------------------------------------------------------------
// High-rank-count stress: the collective contracts must hold unchanged
// at the thousands-of-ranks scale the soak harness runs at, not just at
// the single-digit worldSizes of the unit tests.

func stressRanks(t *testing.T) []int {
	ps := []int{1024}
	if !testing.Short() {
		ps = append(ps, 4096)
	}
	return ps
}

func TestHighRankScalarCollectives(t *testing.T) {
	for _, p := range stressRanks(t) {
		w := NewWorld(p)
		err := w.Run(func(c *Comm) {
			r := int64(c.Rank())
			if got, want := ExscanSum(c, r+1), r*(r+1)/2; got != want {
				t.Errorf("p=%d rank %d: exscan = %d, want %d", p, r, got, want)
			}
			if got, want := ReduceScalarSum(c, r+1), int64(p)*int64(p+1)/2; got != want {
				t.Errorf("p=%d rank %d: sum = %d, want %d", p, r, got, want)
			}
			if got, want := ReduceScalarMax(c, float64(r)), float64(p-1); got != want {
				t.Errorf("p=%d rank %d: max = %g, want %g", p, r, got, want)
			}
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestHighRankAllreduceInto(t *testing.T) {
	for _, p := range stressRanks(t) {
		w := NewWorld(p)
		err := w.Run(func(c *Comm) {
			const n = 8
			v := make([]int64, n)
			for j := range v {
				v[j] = int64(c.Rank() + j)
			}
			// In place: v doubles as input and output.
			AllreduceSumInto(c, v, v)
			for j := range v {
				want := int64(p)*int64(p-1)/2 + int64(p)*int64(j)
				if v[j] != want {
					t.Errorf("p=%d rank %d: sum[%d] = %d, want %d", p, c.Rank(), j, v[j], want)
				}
			}
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestHighRankGatherAndAlltoall(t *testing.T) {
	for _, p := range stressRanks(t) {
		if p > 1024 {
			continue // quadratic aggregate payload; 1024 is plenty here
		}
		w := NewWorld(p)
		err := w.Run(func(c *Comm) {
			// Variable-length gather: rank r contributes r%3 elements.
			in := make([]int32, c.Rank()%3)
			for i := range in {
				in[i] = int32(c.Rank()*10 + i)
			}
			out := make([]int32, 0, p)
			out = AllgatherFlatInto(c, in, out)
			off := 0
			for r := 0; r < p; r++ {
				for i := 0; i < r%3; i++ {
					if out[off] != int32(r*10+i) {
						t.Fatalf("p=%d rank %d: gather[%d] = %d", p, c.Rank(), off, out[off])
					}
					off++
				}
			}
			if off != len(out) {
				t.Fatalf("p=%d rank %d: gather len %d, want %d", p, c.Rank(), len(out), off)
			}
			// Sparse all-to-all: one element to each ring neighbour.
			counts := make([]int, p)
			next, prev := (c.Rank()+1)%p, (c.Rank()+p-1)%p
			counts[next], counts[prev] = 1, 1
			send := make([]int, 0, 2)
			for dst := 0; dst < p; dst++ {
				for j := 0; j < counts[dst]; j++ {
					send = append(send, c.Rank()*10+dst)
				}
			}
			recv, recvCounts := AlltoallFlat(c, send, counts)
			if p == 1 {
				return // self-loop degenerates; counts logic covers p>1
			}
			if recvCounts[next] != 1 || recvCounts[prev] != 1 {
				t.Fatalf("p=%d rank %d: recvCounts next=%d prev=%d", p, c.Rank(), recvCounts[next], recvCounts[prev])
			}
			for i, src := range []int{prev, next} {
				_ = i
				want := src*10 + c.Rank()
				found := false
				for _, v := range recv {
					if v == want {
						found = true
					}
				}
				if !found {
					t.Fatalf("p=%d rank %d: missing element from %d", p, c.Rank(), src)
				}
			}
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

// TestAllreduceSumSparse checks the windowed reduction against a dense
// AllreduceSum reference, with overlapping windows, empty segments, and
// in-place (seg aliases out) updates.
func TestAllreduceSumSparse(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 7, 64} {
		w := NewWorld(p)
		n := 4*p + 9
		err := w.Run(func(c *Comm) {
			rng := rand.New(rand.NewSource(int64(c.Rank()*7 + 1)))
			// Overlapping windows: rank r covers [2r, 2r+5); rank 1 (if
			// present) contributes an empty segment.
			off, segLen := 2*c.Rank(), 5
			if c.Rank() == 1 {
				segLen = 0
			}
			dense := make([]float64, n)
			out := make([]float64, n)
			seg := out[off : off+segLen] // in place: seg aliases out
			for i := range seg {
				v := rng.Float64()
				seg[i] = v
				dense[off+i] = v
			}
			want := AllreduceSum(c, dense)
			lo, length := AllreduceSumSparse(c, n, off, seg, out)
			for i := 0; i < n; i++ {
				got := 0.0
				if i >= lo && i < lo+length {
					got = out[i]
				}
				if got != want[i] {
					t.Errorf("p=%d rank %d: sparse[%d] = %g, want %g", p, c.Rank(), i, got, want[i])
				}
			}
			// The published window must cover every nonzero of the result.
			for i, v := range want {
				if v != 0 && (i < lo || i >= lo+length) {
					t.Errorf("p=%d rank %d: nonzero %d outside window [%d,%d)", p, c.Rank(), i, lo, lo+length)
				}
			}
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestAllreduceSumSparseHighP(t *testing.T) {
	for _, p := range stressRanks(t) {
		w := NewWorld(p)
		n := 2*p + 2 // last window is [2(p-1), 2(p-1)+4)
		err := w.Run(func(c *Comm) {
			out := make([]float64, n)
			seg := []float64{1, 1, 1, 1}
			off := c.Rank() * 2 // window [2r, 2r+4): overlaps both neighbours
			copy(out[off:], seg)
			lo, length := AllreduceSumSparse(c, n, off, out[off:off+4], out)
			for i := lo; i < lo+length; i++ {
				// Element i is covered by ranks r with 2r ≤ i < 2r+4.
				want := 0.0
				for r := (i - 3 + 1) / 2; r <= i/2; r++ {
					if r >= 0 && r < p && i >= 2*r && i < 2*r+4 {
						want++
					}
				}
				if out[i] != want {
					t.Fatalf("p=%d rank %d: sparse[%d] = %g, want %g", p, c.Rank(), i, out[i], want)
				}
			}
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

// ---------------------------------------------------------------------
// Tree vs central barrier: identical results, bit for bit, on the
// rank-order float folds; many mixed episodes for the race detector.

func TestTreeVsCentralBitIdentical(t *testing.T) {
	const p, n = 64, 33
	run := func(bar barrier) ([]float64, []float64) {
		w := newWorldWithBarrier(p, bar)
		sums := make([]float64, n)
		scans := make([]float64, p)
		if err := w.Run(func(c *Comm) {
			rng := rand.New(rand.NewSource(int64(c.Rank() + 1)))
			in := make([]float64, n)
			for i := range in {
				in[i] = (rng.Float64() - 0.5) * 1e9
			}
			out := AllreduceSum(c, in)
			if c.Rank() == 0 {
				copy(sums, out)
			}
			scans[c.Rank()] = ExscanSum(c, rng.Float64()*1e-7)
		}); err != nil {
			t.Fatal(err)
		}
		return sums, scans
	}
	treeSums, treeScans := run(newTreeBarrier(p))
	centSums, centScans := run(newCentralBarrier(p))
	for i := range treeSums {
		if treeSums[i] != centSums[i] {
			t.Errorf("sum[%d]: tree %x != central %x", i, treeSums[i], centSums[i])
		}
	}
	for i := range treeScans {
		if treeScans[i] != centScans[i] {
			t.Errorf("scan[%d]: tree %x != central %x", i, treeScans[i], centScans[i])
		}
	}
}

func TestBarrierManyEpisodes(t *testing.T) {
	// An odd, non-square world size exercises the ragged last group of
	// the tree; hundreds of episodes catch cross-episode races (run
	// under -race in CI).
	const p, episodes = 37, 300
	w := NewWorld(p)
	err := w.Run(func(c *Comm) {
		v := make([]int64, 3)
		for e := 0; e < episodes; e++ {
			c.Barrier()
			for j := range v {
				v[j] = int64(c.Rank() + e + j)
			}
			AllreduceSumInto(c, v, v)
			for j := range v {
				want := int64(p)*int64(p-1)/2 + int64(p)*int64(e+j)
				if v[j] != want {
					t.Errorf("episode %d rank %d: sum[%d] = %d, want %d", e, c.Rank(), j, v[j], want)
					return
				}
			}
			if got := ReduceScalarMax(c, int64(c.Rank())); got != p-1 {
				t.Errorf("episode %d rank %d: max = %d", e, c.Rank(), got)
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// ---------------------------------------------------------------------
// Zero-alloc contract: the warm-path collectives must not allocate per
// call in steady state. Measured, not asserted: a full Run of many
// mixed collectives should cost only the Run's own goroutine spawns.

func TestWarmCollectivesZeroAlloc(t *testing.T) {
	const p, iters = 8, 200
	w := NewWorld(p)
	n := 64
	vin := make([][]float64, p)
	vout := make([][]float64, p)
	sout := make([][]float64, p)
	for r := 0; r < p; r++ {
		vin[r] = make([]float64, 16)
		vout[r] = make([]float64, 16)
		sout[r] = make([]float64, n)
	}
	body := func() {
		if err := w.Run(func(c *Comm) {
			r := c.Rank()
			for i := 0; i < iters; i++ {
				AllreduceSumInto(c, vin[r], vout[r])
				AllreduceMinInto(c, vin[r], vout[r])
				off := (r * 7) % (n - 8)
				AllreduceSumSparse(c, n, off, sout[r][off:off+8], sout[r])
				ExscanSum(c, int64(r))
				ReduceScalarSum(c, float64(r))
				ReduceScalarMax(c, int64(r))
				c.Barrier()
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	body() // warm up: grow the world's rendezvous buffers once
	allocs := testing.AllocsPerRun(3, body)
	// Each run issues iters·7·p ≈ 11k collective calls; a single
	// per-call allocation anywhere would add thousands. The budget
	// covers only Run's goroutine spawns and test scaffolding.
	if allocs > 500 {
		t.Errorf("steady-state run allocated %.0f objects; warm collectives must not allocate per call", allocs)
	}
}

// ---------------------------------------------------------------------
// Benchmarks: tree vs central barrier at increasing rank counts. The
// tree's advantage is lock convoying, so it grows with p (and with real
// core counts; CI hosts with one core understate it).

func benchWorld(p int, central bool) *World {
	var bar barrier
	if central {
		bar = newCentralBarrier(p)
	}
	return newWorldWithBarrier(p, bar)
}

func BenchmarkBarrier(b *testing.B) {
	for _, p := range []int{8, 256, 1024, 4096} {
		for _, central := range []bool{false, true} {
			name := fmt.Sprintf("tree/p=%d", p)
			if central {
				name = fmt.Sprintf("central/p=%d", p)
			}
			b.Run(name, func(b *testing.B) {
				w := benchWorld(p, central)
				b.ResetTimer()
				if err := w.Run(func(c *Comm) {
					for i := 0; i < b.N; i++ {
						c.Barrier()
					}
				}); err != nil {
					b.Fatal(err)
				}
			})
		}
	}
}

func BenchmarkAllreduceHighP(b *testing.B) {
	for _, p := range []int{1024, 4096} {
		for _, central := range []bool{false, true} {
			name := fmt.Sprintf("tree/p=%d", p)
			if central {
				name = fmt.Sprintf("central/p=%d", p)
			}
			b.Run(name, func(b *testing.B) {
				w := benchWorld(p, central)
				bufs := make([][]float64, p)
				for r := range bufs {
					bufs[r] = make([]float64, 64)
				}
				b.ResetTimer()
				if err := w.Run(func(c *Comm) {
					v := bufs[c.Rank()]
					for i := 0; i < b.N; i++ {
						AllreduceSumInto(c, v, v)
					}
				}); err != nil {
					b.Fatal(err)
				}
			})
		}
	}
}
