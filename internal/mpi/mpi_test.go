package mpi

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
)

var worldSizes = []int{1, 2, 3, 4, 7}

func TestBarrierOrdering(t *testing.T) {
	for _, p := range worldSizes {
		w := NewWorld(p)
		var phase int32
		err := w.Run(func(c *Comm) {
			// All ranks must observe phase 0 before any rank moves on.
			if atomic.LoadInt32(&phase) != 0 {
				t.Errorf("p=%d rank %d: phase advanced early", p, c.Rank())
			}
			c.Barrier()
			if c.Rank() == 0 {
				atomic.StoreInt32(&phase, 1)
			}
			c.Barrier()
			if atomic.LoadInt32(&phase) != 1 {
				t.Errorf("p=%d rank %d: write before barrier not visible", p, c.Rank())
			}
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestAllreduceSum(t *testing.T) {
	for _, p := range worldSizes {
		w := NewWorld(p)
		err := w.Run(func(c *Comm) {
			in := []int64{int64(c.Rank()), 1, int64(c.Rank() * c.Rank())}
			out := AllreduceSum(c, in)
			wantA := int64(p * (p - 1) / 2)
			var wantC int64
			for r := 0; r < p; r++ {
				wantC += int64(r * r)
			}
			if out[0] != wantA || out[1] != int64(p) || out[2] != wantC {
				t.Errorf("p=%d rank %d: got %v", p, c.Rank(), out)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestAllreduceSumDeterministicFloats(t *testing.T) {
	// Summation order must be identical on every rank so that replicated
	// state (cluster centers, influence values) stays bit-identical.
	p := 5
	w := NewWorld(p)
	results := make([]float64, p)
	err := w.Run(func(c *Comm) {
		rng := rand.New(rand.NewSource(int64(c.Rank() + 1)))
		in := []float64{rng.Float64() * 1e-7, rng.Float64() * 1e9}
		out := AllreduceSum(c, in)
		results[c.Rank()] = out[0] + out[1]
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < p; r++ {
		if results[r] != results[0] {
			t.Fatalf("rank %d result %g differs from rank 0 %g", r, results[r], results[0])
		}
	}
}

func TestAllreduceMaxMin(t *testing.T) {
	p := 4
	w := NewWorld(p)
	err := w.Run(func(c *Comm) {
		in := []float64{float64(c.Rank()), -float64(c.Rank())}
		mx := AllreduceMax(c, in)
		mn := AllreduceMin(c, in)
		if mx[0] != 3 || mx[1] != 0 {
			t.Errorf("max: %v", mx)
		}
		if mn[0] != 0 || mn[1] != -3 {
			t.Errorf("min: %v", mn)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgatherVariableLengths(t *testing.T) {
	p := 4
	w := NewWorld(p)
	err := w.Run(func(c *Comm) {
		in := make([]int32, c.Rank()) // rank r contributes r elements
		for i := range in {
			in[i] = int32(c.Rank()*100 + i)
		}
		out := Allgather(c, in)
		for r := 0; r < p; r++ {
			if len(out[r]) != r {
				t.Errorf("rank %d: out[%d] len %d", c.Rank(), r, len(out[r]))
			}
			for i, v := range out[r] {
				if v != int32(r*100+i) {
					t.Errorf("rank %d: out[%d][%d] = %d", c.Rank(), r, i, v)
				}
			}
		}
		flat := AllgatherFlat(c, in)
		if len(flat) != p*(p-1)/2 {
			t.Errorf("flat len %d", len(flat))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgatherScalarAndReduceScalar(t *testing.T) {
	p := 3
	w := NewWorld(p)
	err := w.Run(func(c *Comm) {
		vs := AllgatherScalar(c, c.Rank()*10)
		for r := 0; r < p; r++ {
			if vs[r] != r*10 {
				t.Errorf("AllgatherScalar[%d] = %d", r, vs[r])
			}
		}
		if s := ReduceScalarSum(c, int64(c.Rank()+1)); s != 6 {
			t.Errorf("ReduceScalarSum = %d", s)
		}
		if m := ReduceScalarMax(c, float64(c.Rank())); m != 2 {
			t.Errorf("ReduceScalarMax = %g", m)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoall(t *testing.T) {
	for _, p := range worldSizes {
		w := NewWorld(p)
		err := w.Run(func(c *Comm) {
			send := make([][]int, p)
			for dst := 0; dst < p; dst++ {
				send[dst] = []int{c.Rank()*1000 + dst}
			}
			recv := Alltoall(c, send)
			for src := 0; src < p; src++ {
				want := src*1000 + c.Rank()
				if len(recv[src]) != 1 || recv[src][0] != want {
					t.Errorf("p=%d rank %d: recv[%d] = %v, want [%d]", p, c.Rank(), src, recv[src], want)
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestAlltoallFlat cross-checks the flat-buffer all-to-all against the
// sliced Alltoall on ragged per-pair loads (including empty segments).
func TestAlltoallFlat(t *testing.T) {
	for _, p := range worldSizes {
		w := NewWorld(p)
		err := w.Run(func(c *Comm) {
			// Segment for dst has (rank+dst)%3 elements rank*1000+dst.
			send := make([][]int, p)
			var flat []int
			counts := make([]int, p)
			for dst := 0; dst < p; dst++ {
				n := (c.Rank() + dst) % 3
				counts[dst] = n
				for j := 0; j < n; j++ {
					send[dst] = append(send[dst], c.Rank()*1000+dst)
					flat = append(flat, c.Rank()*1000+dst)
				}
			}
			wantChunks := Alltoall(c, send)
			got, gotCounts := AlltoallFlat(c, flat, counts)
			var want []int
			for src := 0; src < p; src++ {
				if gotCounts[src] != len(wantChunks[src]) {
					t.Errorf("p=%d rank %d: recvCounts[%d] = %d, want %d",
						p, c.Rank(), src, gotCounts[src], len(wantChunks[src]))
				}
				want = append(want, wantChunks[src]...)
			}
			if len(got) != len(want) {
				t.Fatalf("p=%d rank %d: %d elements, want %d", p, c.Rank(), len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Errorf("p=%d rank %d: element %d = %d, want %d", p, c.Rank(), i, got[i], want[i])
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestAlltoallFlatTrafficBytes pins the stats contract: only off-rank
// elements count, at the element's in-memory size.
func TestAlltoallFlatTrafficBytes(t *testing.T) {
	p := 3
	w := NewWorld(p)
	err := w.Run(func(c *Comm) {
		// Every rank sends 2 float64 to each rank (incl. itself).
		flat := make([]float64, 2*p)
		counts := []int{2, 2, 2}
		AlltoallFlat(c, flat, counts)
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, st := range w.Stats() {
		want := int64(2*(p-1)) * 8
		if st.CollectiveBytes != want {
			t.Errorf("rank %d: CollectiveBytes = %d, want %d", r, st.CollectiveBytes, want)
		}
	}
}

// TestAlltoallCols cross-checks the single-collective multi-column
// exchange against per-column AlltoallFlat calls, and pins its stats:
// one collective, WireBytes-style byte accounting.
func TestAlltoallCols(t *testing.T) {
	for _, p := range worldSizes {
		w := NewWorld(p)
		err := w.Run(func(c *Comm) {
			counts := make([]int, p)
			total := 0
			for dst := 0; dst < p; dst++ {
				counts[dst] = (c.Rank() + 2*dst) % 3
				total += counts[dst]
			}
			u64 := make([]uint64, total)
			i64 := make([]int64, total)
			f0 := make([]float64, total)
			f1 := make([]float64, total)
			for i := 0; i < total; i++ {
				u64[i] = uint64(c.Rank()*1000 + i)
				i64[i] = int64(-c.Rank()*1000 - i)
				f0[i] = float64(c.Rank()) + float64(i)/100
				f1[i] = -f0[i]
			}
			gotU, gotI, gotF, gotCounts := AlltoallCols(c, u64, i64, [][]float64{f0, f1}, counts)
			wantU, wantCounts := AlltoallFlat(c, u64, counts)
			wantI, _ := AlltoallFlat(c, i64, counts)
			wantF0, _ := AlltoallFlat(c, f0, counts)
			wantF1, _ := AlltoallFlat(c, f1, counts)
			for r := range wantCounts {
				if gotCounts[r] != wantCounts[r] {
					t.Errorf("p=%d rank %d: counts[%d] = %d, want %d", p, c.Rank(), r, gotCounts[r], wantCounts[r])
				}
			}
			for i := range wantU {
				if gotU[i] != wantU[i] || gotI[i] != wantI[i] || gotF[0][i] != wantF0[i] || gotF[1][i] != wantF1[i] {
					t.Errorf("p=%d rank %d: record %d differs", p, c.Rank(), i)
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestAlltoallColsSingleCollective pins the latency contract: the whole
// multi-column exchange costs one collective, not one per column.
func TestAlltoallColsSingleCollective(t *testing.T) {
	p := 3
	w := NewWorld(p)
	if err := w.Run(func(c *Comm) {
		counts := []int{1, 1, 1}
		AlltoallCols(c, make([]uint64, 3), make([]int64, 3),
			[][]float64{make([]float64, 3), make([]float64, 3), make([]float64, 3)}, counts)
	}); err != nil {
		t.Fatal(err)
	}
	for r, st := range w.Stats() {
		if st.Collectives != 1 {
			t.Errorf("rank %d: %d collectives, want 1", r, st.Collectives)
		}
		// 2 off-rank records × (8+8+3·8) bytes.
		if want := int64(2 * (8 + 8 + 3*8)); st.CollectiveBytes != want {
			t.Errorf("rank %d: %d bytes, want %d", r, st.CollectiveBytes, want)
		}
	}
}

func TestAlltoallFlatBadCountsPanics(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) {
		AlltoallFlat(c, []int{1, 2, 3}, []int{1, 1}) // counts sum 2 ≠ len 3
	})
	if err == nil {
		t.Fatal("mismatched counts did not break the world")
	}
}

func TestAlltoallCopiesData(t *testing.T) {
	p := 2
	w := NewWorld(p)
	err := w.Run(func(c *Comm) {
		send := [][]int{{c.Rank()}, {c.Rank()}}
		recv := Alltoall(c, send)
		send[0][0] = -99 // mutate after return; receivers must not see it
		send[1][0] = -99
		c.Barrier()
		other := 1 - c.Rank()
		if recv[other][0] != other {
			t.Errorf("rank %d: received data aliased sender buffer", c.Rank())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcast(t *testing.T) {
	p := 5
	w := NewWorld(p)
	err := w.Run(func(c *Comm) {
		var in []float64
		if c.Rank() == 2 {
			in = []float64{3.14, 2.71}
		}
		out := Bcast(c, 2, in)
		if len(out) != 2 || out[0] != 3.14 || out[1] != 2.71 {
			t.Errorf("rank %d: Bcast got %v", c.Rank(), out)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExscanSum(t *testing.T) {
	p := 6
	w := NewWorld(p)
	err := w.Run(func(c *Comm) {
		got := ExscanSum(c, int64(c.Rank()+1)) // contributions 1..p
		want := int64(c.Rank() * (c.Rank() + 1) / 2)
		if got != want {
			t.Errorf("rank %d: exscan = %d, want %d", c.Rank(), got, want)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecv(t *testing.T) {
	p := 4
	w := NewWorld(p)
	err := w.Run(func(c *Comm) {
		// Ring: send to (r+1) mod p, receive from (r-1+p) mod p.
		next := (c.Rank() + 1) % p
		prev := (c.Rank() + p - 1) % p
		c.Send(next, c.Rank()*7, 8)
		got := c.Recv(prev).(int)
		if got != prev*7 {
			t.Errorf("rank %d: got %d want %d", c.Rank(), got, prev*7)
		}
		// Program order per pair: two messages arrive in send order.
		c.Send(next, "first", 5)
		c.Send(next, "second", 6)
		if a := c.Recv(prev).(string); a != "first" {
			t.Errorf("rank %d: order violated, got %q", c.Rank(), a)
		}
		if b := c.Recv(prev).(string); b != "second" {
			t.Errorf("rank %d: order violated, got %q", c.Rank(), b)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStatsAccumulation(t *testing.T) {
	p := 3
	w := NewWorld(p)
	err := w.Run(func(c *Comm) {
		AllreduceSum(c, []float64{1, 2})
		c.Barrier()
		c.AddOps(42)
		if c.Rank() == 0 {
			c.Send(1, []byte{1, 2, 3}, 3)
		}
		if c.Rank() == 1 {
			c.Recv(0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st[0].Collectives != 1 || st[0].CollectiveBytes != 16 {
		t.Errorf("rank 0 collectives: %+v", st[0])
	}
	if st[0].Barriers != 1 {
		t.Errorf("rank 0 barriers: %d", st[0].Barriers)
	}
	if st[0].MsgsSent != 1 || st[0].BytesSent != 3 {
		t.Errorf("rank 0 p2p: %+v", st[0])
	}
	if st[1].MsgsSent != 0 {
		t.Errorf("rank 1 sent nothing but MsgsSent=%d", st[1].MsgsSent)
	}
	for r := 0; r < p; r++ {
		if st[r].ModeledCommSec <= 0 {
			t.Errorf("rank %d: no modeled time", r)
		}
	}
	if st[0].Ops != 42 {
		t.Errorf("Ops = %d", st[0].Ops)
	}

	var total Stats
	for _, s := range st {
		total.Add(s)
	}
	if total.Collectives != int64(p) {
		t.Errorf("total collectives %d", total.Collectives)
	}

	w.ResetStats()
	for _, s := range w.Stats() {
		if s != (Stats{}) {
			t.Errorf("ResetStats left %+v", s)
		}
	}
}

func TestCostModel(t *testing.T) {
	m := DefaultCostModel()
	if m.CollectiveLatency(1) != 0 {
		t.Errorf("latency p=1 should be 0, got %g", m.CollectiveLatency(1))
	}
	if m.CollectiveLatency(2) != m.AlphaSec {
		t.Errorf("latency p=2 = %g", m.CollectiveLatency(2))
	}
	if m.CollectiveLatency(1024) != 10*m.AlphaSec {
		t.Errorf("latency p=1024 = %g", m.CollectiveLatency(1024))
	}
	if got := m.P2PTime(2e9); got <= 1.0 {
		t.Errorf("P2PTime(2GB) = %g, want > 1s", got)
	}
	comp, comm := m.ModeledTime([]Stats{{Ops: 100}, {Ops: 500, ModeledCommSec: 0.5}})
	if comp != 500*m.OpSec || comm != 0.5 {
		t.Errorf("ModeledTime = %g, %g", comp, comm)
	}
}

func TestPanicBreaksWorld(t *testing.T) {
	p := 3
	w := NewWorld(p)
	err := w.Run(func(c *Comm) {
		if c.Rank() == 1 {
			panic("deliberate failure")
		}
		// Other ranks block in a barrier and must be released.
		c.Barrier()
		c.Barrier()
	})
	if err == nil {
		t.Fatal("expected error from panicked rank")
	}
	if !strings.Contains(err.Error(), "deliberate failure") && !strings.Contains(err.Error(), "broken") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestWorldSizeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewWorld(0) should panic")
		}
	}()
	NewWorld(0)
}

func TestAlltoallWrongSizePanics(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) {
		Alltoall(c, [][]int{{1}}) // wrong length
	})
	if err == nil {
		t.Fatal("expected panic->error for wrong Alltoall shape")
	}
}

func BenchmarkAllreduce64(b *testing.B) {
	w := NewWorld(8)
	in := make([]float64, 64)
	b.ResetTimer()
	if err := w.Run(func(c *Comm) {
		for i := 0; i < b.N; i++ {
			AllreduceSum(c, in)
		}
	}); err != nil {
		b.Fatal(err)
	}
}

// A panicking rendezvous action (waitWith fn) must break the barrier:
// waiting ranks get ErrBroken instead of returning with a stale result.
// Every rank passes the same fn (as the collectives do); exactly one —
// the last arriver — runs it and propagates its panic, and the rest are
// released with ErrBroken. Both barrier implementations must agree, at
// small p and at the p=64 / p=1024 scales where the tree barrier has
// real leaf groups and a contended root.
func TestBarrierRendezvousPanicBreaks(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func(int) barrier
	}{
		{"tree", func(p int) barrier { return newTreeBarrier(p) }},
		{"central", func(p int) barrier { return newCentralBarrier(p) }},
	} {
		for _, p := range []int{3, 64, 1024} {
			t.Run(fmt.Sprintf("%s/p=%d", tc.name, p), func(t *testing.T) {
				b := tc.mk(p)
				res := make(chan any, p)
				for r := 0; r < p; r++ {
					go func(rank int) {
						defer func() { res <- recover() }()
						b.waitWith(rank, func() { panic("fold boom") })
					}(r)
				}
				var booms, broken int
				for i := 0; i < p; i++ {
					switch v := <-res; v {
					case "fold boom":
						booms++
					case ErrBroken:
						broken++
					default:
						t.Fatalf("unexpected recover value %v", v)
					}
				}
				if booms != 1 || broken != p-1 {
					t.Fatalf("booms=%d broken=%d, want 1 and %d", booms, broken, p-1)
				}
			})
		}
	}
}

// A rank that dies while its peers are inside AlltoallCols must release
// them with the abort: the multi-column exchange parks every peer in a
// single rendezvous crossing, and the poison has to reach both ranks
// already waiting and ranks that arrive later. Covered over both barrier
// implementations at p=64 and p=1024.
func TestPanicDuringAlltoallColsBreaks(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func(int) barrier
	}{
		{"tree", func(p int) barrier { return newTreeBarrier(p) }},
		{"central", func(p int) barrier { return newCentralBarrier(p) }},
	} {
		for _, p := range []int{64, 1024} {
			t.Run(fmt.Sprintf("%s/p=%d", tc.name, p), func(t *testing.T) {
				w := newWorldWithBarrier(p, tc.mk(p))
				victim := p / 2
				var released atomic.Int64
				err := w.Run(func(c *Comm) {
					defer func() {
						if rec := recover(); rec != nil {
							released.Add(1)
							panic(rec)
						}
					}()
					if c.Rank() == victim {
						panic("alltoall victim")
					}
					counts := make([]int, p)
					for dst := range counts {
						counts[dst] = 1
					}
					AlltoallCols(c, make([]uint64, p), make([]int64, p),
						[][]float64{make([]float64, p)}, counts)
				})
				var ae *AbortError
				if !errors.As(err, &ae) {
					t.Fatalf("Run returned %T (%v), want *AbortError", err, err)
				}
				if ae.Rank != victim {
					t.Errorf("abort attributed to rank %d, want %d", ae.Rank, victim)
				}
				if !errors.Is(err, ErrBroken) {
					t.Error("AbortError must match ErrBroken under errors.Is")
				}
				if got := released.Load(); got != int64(p) {
					t.Errorf("%d ranks unwound with a panic, want all %d", got, p)
				}
			})
		}
	}
}
