// Package mpi provides a simulated distributed-memory runtime with
// MPI-like semantics, built on goroutines and channels.
//
// The paper's Geographer runs on real MPI with up to 16 384 processes
// (§5.2.1). This package substitutes that substrate: a World spawns one
// goroutine per simulated rank; each rank owns private data and all
// sharing happens through explicit collectives (Barrier, Allreduce,
// Allgather, Alltoall, Bcast, Exscan) and point-to-point messages, exactly
// mirroring the communication structure of the paper's implementation.
//
// Every rank accumulates traffic statistics (bytes, message and collective
// counts) and an α-β (latency–bandwidth) modeled communication time, so
// experiments can report the *scaling shape* of an algorithm even though
// the goroutines run on a small host (see DESIGN.md, substitutions).
//
// The runtime is engineered for thousands of simulated ranks on one host
// (DESIGN.md, "Scaling invariants"): ranks synchronize through a
// two-level combining-tree barrier instead of one central mutex, most
// collectives fold their result once at the barrier rendezvous in a
// single crossing, and the hot collectives have caller-buffer (*Into)
// variants that perform no per-call heap allocation.
//
// Usage requires the usual SPMD discipline: all ranks must invoke the same
// sequence of collective operations. Violations deadlock, like real MPI.
package mpi

import (
	"errors"
	"fmt"
	"sync"
	"unsafe"
)

// ErrBroken is the sentinel for a dead world: a rank panicked, a hook
// failed, or the world was aborted. Blocked ranks are released with a
// *AbortError, which matches ErrBroken under errors.Is; the bare
// sentinel is only ever the panic value on interior paths that have no
// cause to attach yet.
var ErrBroken = errors.New("mpi: world broken by rank panic")

// message is a point-to-point payload with its element count for stats.
type message struct {
	data  any
	bytes int64
}

// slotHdr is a typed-slice deposit without interface boxing: storing a
// []T into an `any` slot heap-allocates a three-word header on every
// collective call, which the zero-alloc collective contract forbids.
// The header keeps the element pointer (GC-scanned, so the backing array
// stays alive) and length; deposit and read sites agree on T because
// they belong to the same collective call.
type slotHdr struct {
	ptr unsafe.Pointer
	len int
}

// World is a group of simulated ranks. Create with NewWorld, execute SPMD
// code with Run. A World can be reused for several consecutive Run calls
// (e.g. one per experiment phase); statistics accumulate until Reset.
type World struct {
	size int
	// Exactly one of tbar/cbar is non-nil. The barrier is deliberately
	// NOT held as an interface on the wait path: an interface method
	// call would leak the rendezvous closure to the heap (escape
	// analysis marks a param leaking if any path leaks it), costing one
	// allocation per collective. Direct calls on concrete types let the
	// compiler stack-allocate every waitWith closure.
	tbar  *treeBarrier
	cbar  *centralBarrier
	stats []Stats
	model CostModel

	// Collective exchange state. slots carries structured contributions
	// (Alltoall's [][]T, the flat-send descriptors); hdrs carries flat
	// []T contributions without boxing; scal/scalB carry one scalar (or
	// two packed words) per rank for the scalar collectives, type-punned
	// through uint64 so depositing allocates nothing.
	slots []any
	hdrs  []slotHdr
	scal  []uint64
	scalB []uint64

	// Rendezvous-published results. resHdr points at the buffer the
	// rendezvous fold produced (one of resBufs, reused across calls);
	// scan holds per-rank scalar results (prefix sums); resOff/resLen
	// describe the occupied window of a sparse reduction; resOffs holds
	// gather offsets. All are written only at a barrier rendezvous and
	// read only between that rendezvous and the next one, which is the
	// single-crossing reuse discipline documented on allreduce.
	result  any
	resHdr  slotHdr
	scan    []uint64
	scalRes uint64
	resOff  int
	resLen  int
	resOffs []int
	resBufs []any

	mailMu sync.Mutex
	mail   map[int64]chan message // lazily created: key dst*size+src

	// Fault-tolerance state (abort.go/fault.go): optional runtime hooks
	// with their per-rank collective-entry counters, and the abort
	// broadcast channel that releases blocked Send/Recv calls.
	hooks    Hooks
	episodes []int64
	done     chan struct{}

	mu         sync.Mutex
	broken     bool
	err        error
	errPrimary bool // err carries a root cause, not a release panic
}

// NewWorld creates a world with the given number of ranks (>= 1).
func NewWorld(size int) *World {
	return newWorldWithBarrier(size, nil)
}

// newWorldWithBarrier lets benchmarks substitute the barrier
// implementation (nil picks the default combining tree).
func newWorldWithBarrier(size int, bar barrier) *World {
	if size < 1 {
		panic(fmt.Sprintf("mpi: invalid world size %d", size))
	}
	if bar == nil {
		bar = newTreeBarrier(size)
	}
	w := &World{
		size:  size,
		slots: make([]any, size),
		hdrs:  make([]slotHdr, size),
		scal:  make([]uint64, size),
		scalB: make([]uint64, size),
		scan:  make([]uint64, size),
		mail:  make(map[int64]chan message),
		stats: make([]Stats, size),
		model: DefaultCostModel(),
		done:  make(chan struct{}),
	}
	switch b := bar.(type) {
	case *treeBarrier:
		w.tbar = b
	case *centralBarrier:
		w.cbar = b
	default:
		panic("mpi: unknown barrier implementation")
	}
	return w
}

// mailbox returns (creating on demand) the channel from src to dst.
// Lazy creation keeps large worlds cheap: most algorithms here use only
// collectives, never point-to-point.
func (w *World) mailbox(dst, src int) chan message {
	key := int64(dst)*int64(w.size) + int64(src)
	w.mailMu.Lock()
	ch, ok := w.mail[key]
	if !ok {
		ch = make(chan message, 64)
		w.mail[key] = ch
	}
	w.mailMu.Unlock()
	return ch
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// SetCostModel replaces the communication cost model (before Run).
func (w *World) SetCostModel(m CostModel) { w.model = m }

// CostModel returns the active cost model.
func (w *World) CostModel() CostModel { return w.model }

// Run executes f once per rank, concurrently, and waits for all ranks to
// finish. If any rank panics (or a hook fails, or the world is aborted),
// the world is broken: remaining ranks are released from collectives and
// point-to-point calls with an *AbortError panic, no rank goroutine is
// left behind, and the abort of the root-cause rank is returned. A
// broken world stays broken — later Run calls fail immediately with the
// same error; recovery means building a fresh World (typically from a
// checkpoint, see internal/repart).
func (w *World) Run(f func(c *Comm)) error {
	var wg sync.WaitGroup
	for r := 0; r < w.size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				rec := recover()
				if rec == nil {
					return
				}
				// A rank released from a poisoned barrier or mailbox
				// re-panics the abort it was handed; that is a secondary
				// effect, not a root cause — it must never displace the
				// failing rank's own error.
				switch e := rec.(type) {
				case *AbortError:
					w.breakWorld(e, false)
				case error:
					if errors.Is(e, ErrBroken) {
						w.breakWorld(&AbortError{Rank: rank, Cause: e}, false)
					} else {
						w.breakWorld(&AbortError{Rank: rank, Cause: e}, true)
					}
				default:
					w.breakWorld(&AbortError{Rank: rank, Cause: asError(rec)}, true)
				}
			}()
			f(&Comm{w: w, rank: rank})
		}(r)
	}
	wg.Wait()
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// breakWorld poisons the world with err. primary marks a root cause
// (rank panic, hook failure, external Abort) as opposed to the re-panic
// of a released waiter; the first primary cause wins, and a secondary
// error only ever fills an empty slot. All rank goroutines finish before
// Run reads w.err, and root-cause recovers run before their goroutine
// exits, so the returned error is always the primary cause when one
// exists.
func (w *World) breakWorld(err *AbortError, primary bool) {
	w.mu.Lock()
	if !w.broken {
		w.broken = true
		close(w.done) // releases blocked Send/Recv on every rank
	}
	if w.err == nil || (primary && !w.errPrimary) {
		w.err, w.errPrimary = err, primary
	}
	cause := w.err
	w.mu.Unlock()
	w.barBrk(cause)
}

// Stats returns a copy of the per-rank statistics.
func (w *World) Stats() []Stats {
	out := make([]Stats, w.size)
	copy(out, w.stats)
	return out
}

// ResetStats zeroes all per-rank statistics.
func (w *World) ResetStats() {
	for i := range w.stats {
		w.stats[i] = Stats{}
	}
}

// Comm is a per-rank handle; the only way ranks interact with the world.
// Comm values are created by Run and must not be shared between ranks.
type Comm struct {
	w    *World
	rank int
}

// Rank returns this rank's id in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.w.size }

// Stats returns a pointer to this rank's statistics (rank-private).
func (c *Comm) Stats() *Stats { return &c.w.stats[c.rank] }

// Barrier blocks until all ranks reach it. It establishes a
// happens-before edge between everything written before the barrier on
// any rank and everything read after it on every rank.
func (c *Comm) Barrier() {
	c.w.hook(c.rank)
	st := &c.w.stats[c.rank]
	st.Barriers++
	st.ModeledCommSec += c.w.model.CollectiveLatency(c.w.size)
	c.w.barWait(c.rank)
}

// barWait / barWaitWith dispatch to the concrete barrier (see the tbar
// field comment: keeping this call direct is the linchpin of the
// zero-alloc collective contract).
func (w *World) barWait(rank int) {
	if w.tbar != nil {
		w.tbar.wait(rank)
	} else {
		w.cbar.wait(rank)
	}
}

func (w *World) barWaitWith(rank int, fn func()) {
	if w.tbar != nil {
		w.tbar.waitWith(rank, fn)
	} else {
		w.cbar.waitWith(rank, fn)
	}
}

func (w *World) barBrk(cause error) {
	if w.tbar != nil {
		w.tbar.brk(cause)
	} else {
		w.cbar.brk(cause)
	}
}

// barrier is the rank-synchronization primitive of a World. waitWith is
// wait with a rendezvous action: the last rank to arrive runs fn —
// with every other rank's pre-arrival writes visible, and its own
// writes visible to every rank on release — before anyone proceeds.
// Collectives use it to fold contributions in a single barrier crossing
// instead of a deposit barrier followed by a publish barrier. brk
// poisons the barrier: all waiters (and all later arrivers) are released
// with a panic carrying cause — the world's *AbortError — or the bare
// ErrBroken sentinel when no cause was recorded yet.
type barrier interface {
	wait(rank int)
	waitWith(rank int, fn func())
	brk(cause error)
}

// ---------------------------------------------------------------------
// Combining-tree barrier (default).
//
// A central sense-reversing barrier serializes all p ranks on one mutex:
// p lock acquisitions to arrive and p more as the broadcast wakes every
// waiter through the same lock — the dominant cost of a collective once
// p reaches the thousands. The tree barrier splits ranks into √p groups
// of √p: ranks arrive at their group node (contending only with their
// group), the last arriver of each group proceeds to the root node
// (contending only with the other group representatives), and the last
// arriver at the root runs the rendezvous action and releases the tree —
// root first, then each representative releases its own group, so
// wake-ups fan out through independent locks instead of convoying on
// one. Max contention per lock drops from p to ~√p (64 at p=4096).

// bnode is one node of the tree: a counter guarded by its own lock,
// with a generation number for sense reversal.
type bnode struct {
	mu     sync.Mutex
	cond   *sync.Cond
	expect int
	count  int
	gen    uint64
	broken bool
	cause  error // abort delivered to waiters; nil = bare ErrBroken
	// Pad to a cache line so leaf nodes don't false-share.
	_ [24]byte
}

// brokenPanic converts a node's recorded cause into the panic value a
// released waiter unwinds with. Call with the cause read under the
// node's lock.
func brokenPanic(cause error) {
	if cause == nil {
		panic(ErrBroken)
	}
	panic(cause)
}

type treeBarrier struct {
	size   int
	shift  uint // rank >> shift = leaf index (group size is a power of two)
	leaves []bnode
	root   bnode
}

func newTreeBarrier(size int) *treeBarrier {
	// Group size ⌈√size⌉ rounded to a power of two: balances arrival
	// contention (group size) against root contention (group count) and
	// makes the rank→leaf mapping a shift.
	g, shift := 1, uint(0)
	for g*g < size {
		g <<= 1
		shift++
	}
	ng := (size + g - 1) / g
	b := &treeBarrier{size: size, shift: shift, leaves: make([]bnode, ng)}
	for i := range b.leaves {
		n := size - i*g
		if n > g {
			n = g
		}
		b.leaves[i].expect = n
		b.leaves[i].cond = sync.NewCond(&b.leaves[i].mu)
	}
	b.root.expect = ng
	b.root.cond = sync.NewCond(&b.root.mu)
	return b
}

func (b *treeBarrier) wait(rank int) { b.waitWith(rank, nil) }

func (b *treeBarrier) waitWith(rank int, fn func()) {
	leaf := &b.leaves[rank>>b.shift]
	leaf.mu.Lock()
	if leaf.broken {
		cause := leaf.cause
		leaf.mu.Unlock()
		brokenPanic(cause)
	}
	gen := leaf.gen
	leaf.count++
	if leaf.count < leaf.expect {
		// Not the group's last arriver: wait for the representative to
		// release this group. No rank of this group can arrive for the
		// *next* episode until that release, so resetting count below
		// cannot race with new arrivals.
		for gen == leaf.gen && !leaf.broken {
			leaf.cond.Wait()
		}
		broken, cause := leaf.broken, leaf.cause
		leaf.mu.Unlock()
		if broken {
			brokenPanic(cause)
		}
		return
	}
	leaf.count = 0
	leaf.mu.Unlock()

	// Group representative: arrive at the root.
	r := &b.root
	r.mu.Lock()
	if r.broken {
		cause := r.cause
		r.mu.Unlock()
		brokenPanic(cause)
	}
	rgen := r.gen
	r.count++
	if r.count == r.expect {
		if fn != nil {
			// A panicking fn must break the barrier, not complete it:
			// waiters are released down their broken path (they panic
			// the abort instead of returning with a stale result), and
			// the original panic propagates to Run's recover, which
			// records it as the world's root cause.
			func() {
				defer func() {
					if rec := recover(); rec != nil {
						r.broken = true
						r.count = 0
						r.cond.Broadcast()
						r.mu.Unlock()
						b.brkLeaves(nil)
						panic(rec)
					}
				}()
				fn()
			}()
		}
		r.count = 0
		r.gen++
		r.cond.Broadcast()
		r.mu.Unlock()
	} else {
		for rgen == r.gen && !r.broken {
			r.cond.Wait()
		}
		broken, cause := r.broken, r.cause
		r.mu.Unlock()
		if broken {
			// This group's waiters are released by brk/brkLeaves, which
			// marked every node.
			brokenPanic(cause)
		}
	}

	// Release the group. The lock chain root→leaf makes the rendezvous
	// action's writes visible to every group member on wake-up.
	leaf.mu.Lock()
	leaf.gen++
	leaf.cond.Broadcast()
	leaf.mu.Unlock()
}

func (b *treeBarrier) brk(cause error) {
	b.root.mu.Lock()
	b.root.broken = true
	if b.root.cause == nil {
		b.root.cause = cause
	}
	b.root.cond.Broadcast()
	b.root.mu.Unlock()
	b.brkLeaves(cause)
}

func (b *treeBarrier) brkLeaves(cause error) {
	for i := range b.leaves {
		l := &b.leaves[i]
		l.mu.Lock()
		l.broken = true
		if l.cause == nil {
			l.cause = cause
		}
		l.cond.Broadcast()
		l.mu.Unlock()
	}
}

// ---------------------------------------------------------------------
// Central sense-reversing barrier: the pre-tree implementation, retained
// as the reference for the barrier differential tests and the
// tree-vs-central benchmarks (BenchmarkBarrier, BenchmarkAllreduceHighP).

type centralBarrier struct {
	mu     sync.Mutex
	cond   *sync.Cond
	size   int
	count  int
	gen    uint64
	broken bool
	cause  error // abort delivered to waiters; nil = bare ErrBroken
}

func newCentralBarrier(size int) *centralBarrier {
	b := &centralBarrier{size: size}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *centralBarrier) wait(rank int) { b.waitWith(rank, nil) }

func (b *centralBarrier) waitWith(rank int, fn func()) {
	b.mu.Lock()
	if b.broken {
		cause := b.cause
		b.mu.Unlock()
		brokenPanic(cause)
	}
	gen := b.gen
	b.count++
	if b.count == b.size {
		if fn != nil {
			func() {
				defer func() {
					if r := recover(); r != nil {
						b.broken = true
						b.cond.Broadcast()
						b.mu.Unlock()
						panic(r)
					}
				}()
				fn()
			}()
		}
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for gen == b.gen && !b.broken {
		b.cond.Wait()
	}
	broken, cause := b.broken, b.cause
	b.mu.Unlock()
	if broken {
		brokenPanic(cause)
	}
}

// brk releases all waiting ranks with a panic.
func (b *centralBarrier) brk(cause error) {
	b.mu.Lock()
	b.broken = true
	if b.cause == nil {
		b.cause = cause
	}
	b.cond.Broadcast()
	b.mu.Unlock()
}

// abortCause returns the error a released rank unwinds with: the world's
// recorded *AbortError, or bare ErrBroken when the break raced ahead of
// the error being recorded.
func (w *World) abortCause() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	return ErrBroken
}

// Send delivers data to rank dst. elemBytes should approximate the wire
// size of the payload; it only affects statistics, not semantics. Send
// blocks when the destination mailbox (64 messages deep) is full; a
// blocked Send is released with an abort panic when the world breaks.
func (c *Comm) Send(dst int, data any, bytes int64) {
	st := &c.w.stats[c.rank]
	st.MsgsSent++
	st.BytesSent += bytes
	st.ModeledCommSec += c.w.model.P2PTime(bytes)
	select {
	case c.w.mailbox(dst, c.rank) <- message{data: data, bytes: bytes}:
	case <-c.w.done:
		panic(c.w.abortCause())
	}
}

// Recv receives the next message from rank src (program order per pair).
// A blocked Recv is released with an abort panic when the world breaks.
func (c *Comm) Recv(src int) any {
	select {
	case m := <-c.w.mailbox(c.rank, src):
		return m.data
	case <-c.w.done:
		panic(c.w.abortCause())
	}
}
