// Package mpi provides a simulated distributed-memory runtime with
// MPI-like semantics, built on goroutines and channels.
//
// The paper's Geographer runs on real MPI with up to 16 384 processes
// (§5.2.1). This package substitutes that substrate: a World spawns one
// goroutine per simulated rank; each rank owns private data and all
// sharing happens through explicit collectives (Barrier, Allreduce,
// Allgather, Alltoall, Bcast, Exscan) and point-to-point messages, exactly
// mirroring the communication structure of the paper's implementation.
//
// Every rank accumulates traffic statistics (bytes, message and collective
// counts) and an α-β (latency–bandwidth) modeled communication time, so
// experiments can report the *scaling shape* of an algorithm even though
// the goroutines run on a small host (see DESIGN.md, substitutions).
//
// Usage requires the usual SPMD discipline: all ranks must invoke the same
// sequence of collective operations. Violations deadlock, like real MPI.
package mpi

import (
	"errors"
	"fmt"
	"sync"
)

// ErrBroken is returned by Run when a rank panicked; other ranks blocked
// in collectives are released (and themselves panic with this error).
var ErrBroken = errors.New("mpi: world broken by rank panic")

// message is a point-to-point payload with its element count for stats.
type message struct {
	data  any
	bytes int64
}

// World is a group of simulated ranks. Create with NewWorld, execute SPMD
// code with Run. A World can be reused for several consecutive Run calls
// (e.g. one per experiment phase); statistics accumulate until Reset.
type World struct {
	size   int
	bar    *barrier
	slots  []any // collective contribution slots, one per rank
	result any   // reduction result published by rank 0
	stats  []Stats
	model  CostModel

	mailMu sync.Mutex
	mail   map[int64]chan message // lazily created: key dst*size+src

	mu     sync.Mutex
	broken bool
	err    error
}

// NewWorld creates a world with the given number of ranks (>= 1).
func NewWorld(size int) *World {
	if size < 1 {
		panic(fmt.Sprintf("mpi: invalid world size %d", size))
	}
	w := &World{
		size:  size,
		slots: make([]any, size),
		mail:  make(map[int64]chan message),
		stats: make([]Stats, size),
		model: DefaultCostModel(),
	}
	w.bar = newBarrier(size)
	return w
}

// mailbox returns (creating on demand) the channel from src to dst.
// Lazy creation keeps large worlds cheap: most algorithms here use only
// collectives, never point-to-point.
func (w *World) mailbox(dst, src int) chan message {
	key := int64(dst)*int64(w.size) + int64(src)
	w.mailMu.Lock()
	ch, ok := w.mail[key]
	if !ok {
		ch = make(chan message, 64)
		w.mail[key] = ch
	}
	w.mailMu.Unlock()
	return ch
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// SetCostModel replaces the communication cost model (before Run).
func (w *World) SetCostModel(m CostModel) { w.model = m }

// CostModel returns the active cost model.
func (w *World) CostModel() CostModel { return w.model }

// Run executes f once per rank, concurrently, and waits for all ranks to
// finish. If any rank panics, the world is broken, remaining ranks are
// released from collectives, and the first panic is returned as an error.
func (w *World) Run(f func(c *Comm)) error {
	var wg sync.WaitGroup
	for r := 0; r < w.size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					w.breakWorld(fmt.Errorf("mpi: rank %d panicked: %v", rank, rec))
				}
			}()
			f(&Comm{w: w, rank: rank})
		}(r)
	}
	wg.Wait()
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

func (w *World) breakWorld(err error) {
	w.mu.Lock()
	if !w.broken {
		w.broken = true
		w.err = err
	}
	w.mu.Unlock()
	w.bar.brk()
}

// Stats returns a copy of the per-rank statistics.
func (w *World) Stats() []Stats {
	out := make([]Stats, w.size)
	copy(out, w.stats)
	return out
}

// ResetStats zeroes all per-rank statistics.
func (w *World) ResetStats() {
	for i := range w.stats {
		w.stats[i] = Stats{}
	}
}

// Comm is a per-rank handle; the only way ranks interact with the world.
// Comm values are created by Run and must not be shared between ranks.
type Comm struct {
	w    *World
	rank int
}

// Rank returns this rank's id in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.w.size }

// Stats returns a pointer to this rank's statistics (rank-private).
func (c *Comm) Stats() *Stats { return &c.w.stats[c.rank] }

// Barrier blocks until all ranks reach it. It establishes a
// happens-before edge between everything written before the barrier on
// any rank and everything read after it on every rank.
func (c *Comm) Barrier() {
	st := &c.w.stats[c.rank]
	st.Barriers++
	st.ModeledCommSec += c.w.model.CollectiveLatency(c.w.size)
	c.w.bar.wait()
}

// barrier is a reusable sense-reversing barrier with breakage support.
type barrier struct {
	mu     sync.Mutex
	cond   *sync.Cond
	size   int
	count  int
	gen    uint64
	broken bool
}

func newBarrier(size int) *barrier {
	b := &barrier{size: size}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) wait() { b.waitWith(nil) }

// waitWith is wait with a rendezvous action: the last rank to arrive
// runs fn (under the barrier lock, so everything written by the other
// ranks before they arrived is visible) before everyone is released.
// Collectives use it to fold contributions in a single barrier crossing
// instead of a deposit barrier followed by a publish barrier.
func (b *barrier) waitWith(fn func()) {
	b.mu.Lock()
	if b.broken {
		b.mu.Unlock()
		panic(ErrBroken)
	}
	gen := b.gen
	b.count++
	if b.count == b.size {
		if fn != nil {
			// A panicking fn must break the barrier, not complete it:
			// waiters are released down their broken path (they panic
			// ErrBroken instead of returning with a stale result), and
			// the original panic propagates to Run's recover, which
			// records it as the world's root cause.
			func() {
				defer func() {
					if r := recover(); r != nil {
						b.broken = true
						b.cond.Broadcast()
						b.mu.Unlock()
						panic(r)
					}
				}()
				fn()
			}()
		}
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for gen == b.gen && !b.broken {
		b.cond.Wait()
	}
	broken := b.broken
	b.mu.Unlock()
	if broken {
		panic(ErrBroken)
	}
}

// brk releases all waiting ranks with a panic.
func (b *barrier) brk() {
	b.mu.Lock()
	b.broken = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// Send delivers data to rank dst. elemBytes should approximate the wire
// size of the payload; it only affects statistics, not semantics. Send
// blocks when the destination mailbox (64 messages deep) is full.
func (c *Comm) Send(dst int, data any, bytes int64) {
	st := &c.w.stats[c.rank]
	st.MsgsSent++
	st.BytesSent += bytes
	st.ModeledCommSec += c.w.model.P2PTime(bytes)
	c.w.mailbox(dst, c.rank) <- message{data: data, bytes: bytes}
}

// Recv receives the next message from rank src (program order per pair).
func (c *Comm) Recv(src int) any {
	m := <-c.w.mailbox(c.rank, src)
	return m.data
}
