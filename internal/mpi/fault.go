package mpi

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// ErrInjected marks failures raised by a FaultPlan. An aborted run whose
// root cause is an injected fault satisfies errors.Is(err, ErrInjected)
// (through the *AbortError's cause chain), which is how retry drivers
// distinguish scheduled chaos from genuine bugs in tests.
var ErrInjected = errors.New("mpi: injected fault")

// FaultKind selects what a scheduled Fault does when it fires.
type FaultKind int

const (
	// FaultPanic makes the rank panic at the scheduled episode, every
	// time the episode is reached (a hard, non-recoverable failure: a
	// retried run on a fresh world hits it again).
	FaultPanic FaultKind = iota
	// FaultTransient fails the rank like FaultPanic but disarms after
	// Fires firings (default 1): a retried run on a fresh world passes.
	// This models the transient collective failures — a dropped
	// connection, a timed-out peer — that recovery machinery exists for.
	FaultTransient
	// FaultDelay stalls the rank for Delay before it enters the
	// collective (a straggler, not a failure): peers park in the barrier
	// until the delayed deposit arrives. Useful for exercising
	// cancellation while a collective is in flight.
	FaultDelay
)

// String names the kind for logs and error messages.
func (k FaultKind) String() string {
	switch k {
	case FaultPanic:
		return "panic"
	case FaultTransient:
		return "transient"
	case FaultDelay:
		return "delay"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// Fault is one scheduled failure: when rank Rank enters its Episode-th
// collective (0-based per-rank entry count, bare barriers included), the
// fault fires according to Kind.
type Fault struct {
	Rank    int
	Episode int64
	Kind    FaultKind
	// Delay is the stall duration of a FaultDelay.
	Delay time.Duration
	// Fires bounds how many times a FaultTransient fires before it
	// disarms; 0 means 1. Ignored for the other kinds.
	Fires int
}

// FaultPlan is a deterministic fault schedule implementing Hooks: every
// fault fires at a fixed (rank, episode) coordinate, so two runs of the
// same program under the same plan fail identically — no wall-clock or
// global randomness is consulted (the only randomness is the seed given
// to RandomFaultPlan, and the only timing effect is the explicit Delay
// of a FaultDelay).
//
// A plan may outlive a World: transient-fault firing counts live in the
// plan, so a retry driver that rebuilds the world after an abort and
// replays the same episodes gets the transient behavior it expects —
// the fault fired, recovery ran, the replay passes. Per-rank episode
// counters live in the World and start at zero with each fresh world.
//
// A FaultPlan is safe for concurrent use by all ranks.
type FaultPlan struct {
	mu     sync.Mutex
	sched  map[faultKey]*armedFault
	fired  int64
	delays int64

	// Sleep implements FaultDelay stalls; tests substitute a recorder to
	// keep suites fast. Defaults to time.Sleep.
	Sleep func(time.Duration)
}

type faultKey struct {
	rank    int
	episode int64
}

type armedFault struct {
	f         Fault
	remaining int // firings left (transient); -1 = unlimited
}

// NewFaultPlan builds a plan from an explicit schedule. Scheduling two
// faults at the same (rank, episode) keeps the last one.
func NewFaultPlan(faults ...Fault) *FaultPlan {
	p := &FaultPlan{sched: make(map[faultKey]*armedFault), Sleep: time.Sleep}
	for _, f := range faults {
		p.Add(f)
	}
	return p
}

// RandomFaultPlan draws n faults of the given kinds (all three when none
// are named) uniformly over ranks [0,p) and episodes [1,maxEpisode],
// from its own seeded generator — deterministic for a fixed seed, and
// independent of any global randomness. Delays are 1–5ms.
func RandomFaultPlan(seed int64, p int, maxEpisode int64, n int, kinds ...FaultKind) *FaultPlan {
	if len(kinds) == 0 {
		kinds = []FaultKind{FaultPanic, FaultTransient, FaultDelay}
	}
	rng := rand.New(rand.NewSource(seed))
	plan := NewFaultPlan()
	for i := 0; i < n; i++ {
		plan.Add(Fault{
			Rank:    rng.Intn(p),
			Episode: 1 + rng.Int63n(maxEpisode),
			Kind:    kinds[rng.Intn(len(kinds))],
			Delay:   time.Duration(1+rng.Intn(5)) * time.Millisecond,
		})
	}
	return plan
}

// Add schedules one more fault (replacing any fault already at the same
// rank/episode coordinate).
func (p *FaultPlan) Add(f Fault) {
	rem := -1
	if f.Kind == FaultTransient {
		rem = f.Fires
		if rem <= 0 {
			rem = 1
		}
	}
	p.mu.Lock()
	p.sched[faultKey{f.Rank, f.Episode}] = &armedFault{f: f, remaining: rem}
	p.mu.Unlock()
}

// Fired returns how many faults have aborted a world so far (delays are
// counted separately by Delayed).
func (p *FaultPlan) Fired() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fired
}

// Delayed returns how many FaultDelay stalls have been applied.
func (p *FaultPlan) Delayed() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.delays
}

// BeforeCollective implements Hooks: it consults the schedule at this
// rank/episode coordinate and fires the armed fault, if any.
func (p *FaultPlan) BeforeCollective(rank int, episode int64) error {
	p.mu.Lock()
	af, ok := p.sched[faultKey{rank, episode}]
	if !ok {
		p.mu.Unlock()
		return nil
	}
	var (
		sleep func(time.Duration)
		d     time.Duration
	)
	switch af.f.Kind {
	case FaultDelay:
		p.delays++
		sleep, d = p.Sleep, af.f.Delay
	case FaultTransient:
		if af.remaining == 0 {
			p.mu.Unlock()
			return nil
		}
		af.remaining--
		p.fired++
	default: // FaultPanic
		p.fired++
	}
	p.mu.Unlock()
	if sleep != nil {
		if d > 0 {
			sleep(d)
		}
		return nil
	}
	return fmt.Errorf("%w: %s at rank %d episode %d", ErrInjected, af.f.Kind, rank, episode)
}
