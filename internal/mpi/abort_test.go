package mpi

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestAbortErrorChains pins the error-matching contract: an AbortError
// matches ErrBroken (so legacy sentinel checks keep working) and unwraps
// to its cause (so errors.Is reaches ErrInjected and context errors).
func TestAbortErrorChains(t *testing.T) {
	cause := fmt.Errorf("wrapped: %w", ErrInjected)
	err := error(&AbortError{Rank: 7, Cause: cause})
	if !errors.Is(err, ErrBroken) {
		t.Error("AbortError should match ErrBroken")
	}
	if !errors.Is(err, ErrInjected) {
		t.Error("AbortError should unwrap to its cause chain")
	}
	var ae *AbortError
	if !errors.As(err, &ae) || ae.Rank != 7 {
		t.Errorf("errors.As lost the rank: %+v", ae)
	}
	if !strings.Contains(err.Error(), "rank 7") {
		t.Errorf("message should name the rank: %q", err.Error())
	}
	if msg := (&AbortError{Rank: -1, Cause: cause}).Error(); strings.Contains(msg, "rank") {
		t.Errorf("external aborts should not name a rank: %q", msg)
	}
}

// TestRankPanicMidCollectiveHighP is the tentpole's acceptance test: at
// p=1024, a rank that panics while every peer is inside a collective
// must release them all with an *AbortError attributed to the faulting
// rank — no deadlock, no leaked goroutines.
func TestRankPanicMidCollectiveHighP(t *testing.T) {
	const p = 1024
	const victim = 311
	before := runtime.NumGoroutine()
	w := NewWorld(p)
	var aborted atomic.Int64
	done := make(chan error, 1)
	go func() {
		done <- w.Run(func(c *Comm) {
			defer func() {
				if rec := recover(); rec != nil {
					if err, ok := rec.(error); ok {
						var ae *AbortError
						if errors.As(err, &ae) {
							aborted.Add(1)
						}
					}
					panic(rec)
				}
			}()
			AllreduceSum(c, []float64{1, 2, 3})
			if c.Rank() == victim {
				panic("victim down")
			}
			for i := 0; i < 4; i++ {
				AllreduceSum(c, []float64{4, 5, 6})
			}
		})
	}()
	var err error
	select {
	case err = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("world deadlocked after rank panic")
	}
	var ae *AbortError
	if !errors.As(err, &ae) {
		t.Fatalf("Run returned %T (%v), want *AbortError", err, err)
	}
	if ae.Rank != victim {
		t.Errorf("abort attributed to rank %d, want %d", ae.Rank, victim)
	}
	if !strings.Contains(err.Error(), "victim down") {
		t.Errorf("cause lost: %v", err)
	}
	// Every surviving rank must have unwound with the typed abort.
	if got := aborted.Load(); got != p-1 {
		t.Errorf("%d ranks observed an *AbortError, want %d", got, p-1)
	}
	// No rank goroutine may be left behind. Allow the runtime a moment
	// to retire exited goroutines.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+8 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+8 {
		t.Errorf("goroutines leaked: %d before, %d after", before, after)
	}
}

// TestBrokenWorldStaysBroken: recovery is a fresh world, never a reused
// one — a later Run on a broken world fails immediately with the same
// abort instead of deadlocking half-initialized ranks.
func TestBrokenWorldStaysBroken(t *testing.T) {
	w := NewWorld(4)
	first := w.Run(func(c *Comm) {
		if c.Rank() == 2 {
			panic("boom")
		}
		c.Barrier()
	})
	if first == nil {
		t.Fatal("expected abort")
	}
	second := w.Run(func(c *Comm) { c.Barrier() })
	var ae *AbortError
	if !errors.As(second, &ae) || ae.Rank != 2 {
		t.Fatalf("second Run = %v, want the original rank-2 abort", second)
	}
	if w.Err() == nil {
		t.Error("Err() should report the abort")
	}
}

// TestAbortReleasesSendRecv: a rank parked in Recv (its peer is never
// going to send) must be released by an external Abort; same for a Send
// blocked on a full mailbox.
func TestAbortReleasesSendRecv(t *testing.T) {
	w := NewWorld(2)
	cause := errors.New("operator stop")
	entered := make(chan struct{})
	go func() {
		<-entered
		w.Abort(cause)
	}()
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			close(entered)
			c.Recv(1) // never sent: must be released by the abort
		} else {
			// Fill rank 0's mailbox beyond its 64-slot depth so this rank
			// blocks in Send and needs the abort too.
			for i := 0; i < 200; i++ {
				c.Send(0, i, 8)
			}
		}
	})
	var ae *AbortError
	if !errors.As(err, &ae) {
		t.Fatalf("Run returned %T (%v), want *AbortError", err, err)
	}
	if ae.Rank != -1 {
		t.Errorf("external abort should carry rank -1, got %d", ae.Rank)
	}
	if !errors.Is(err, cause) {
		t.Errorf("cause lost: %v", err)
	}
}

// TestRunCtx covers the context-cancellation surface: a cancel mid-run
// aborts the world with the context's cause, and an already-cancelled
// context aborts before any rank body runs.
func TestRunCtx(t *testing.T) {
	t.Run("cancel mid-run", func(t *testing.T) {
		w := NewWorld(8)
		ctx, cancel := context.WithCancelCause(context.Background())
		stop := errors.New("deadline budget exhausted")
		entered := make(chan struct{})
		var once atomic.Bool
		go func() {
			<-entered
			cancel(stop)
		}()
		err := w.RunCtx(ctx, func(c *Comm) {
			if once.CompareAndSwap(false, true) {
				close(entered)
			}
			for {
				c.Barrier()
			}
		})
		if !errors.Is(err, stop) || !errors.Is(err, ErrBroken) {
			t.Fatalf("RunCtx = %v, want abort wrapping the cancel cause", err)
		}
	})
	t.Run("pre-cancelled", func(t *testing.T) {
		w := NewWorld(4)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		var ran atomic.Int64
		err := w.RunCtx(ctx, func(c *Comm) {
			ran.Add(1)
			c.Barrier()
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("RunCtx = %v, want context.Canceled in chain", err)
		}
		if ran.Load() != 0 {
			t.Errorf("%d rank bodies ran under a dead context", ran.Load())
		}
	})
	t.Run("uncancelled context passes through", func(t *testing.T) {
		w := NewWorld(4)
		if err := w.RunCtx(context.Background(), func(c *Comm) {
			AllreduceSum(c, []int64{1})
		}); err != nil {
			t.Fatalf("RunCtx = %v, want nil", err)
		}
	})
}

// TestFaultPlanPanicFault: a scheduled FaultPanic fires at its exact
// (rank, episode) coordinate, aborts the world with the injected error,
// and is attributed to the scheduled rank.
func TestFaultPlanPanicFault(t *testing.T) {
	const p = 16
	plan := NewFaultPlan(Fault{Rank: 5, Episode: 2, Kind: FaultPanic})
	w := NewWorld(p)
	w.SetHooks(plan)
	var reached atomic.Int64
	err := w.Run(func(c *Comm) {
		for i := 0; i < 4; i++ {
			AllreduceSum(c, []float64{1})
			if c.Rank() == 5 {
				reached.Store(int64(i + 1))
			}
		}
	})
	var ae *AbortError
	if !errors.As(err, &ae) {
		t.Fatalf("Run returned %T (%v), want *AbortError", err, err)
	}
	if ae.Rank != 5 {
		t.Errorf("fault attributed to rank %d, want 5", ae.Rank)
	}
	if !errors.Is(err, ErrInjected) {
		t.Errorf("abort should wrap ErrInjected: %v", err)
	}
	// Episode 2 is the third collective entry: the rank completed
	// episodes 0 and 1 and died entering the third.
	if got := reached.Load(); got != 2 {
		t.Errorf("rank 5 completed %d collectives, want 2", got)
	}
	if plan.Fired() != 1 {
		t.Errorf("plan recorded %d firings, want 1", plan.Fired())
	}
}

// TestFaultPlanTransientDisarms: a transient fault fires on the first
// world and disarms; the same plan installed on a fresh world (episodes
// restart at zero, firing counts carry over) lets the retry pass. This
// is the contract the session retry driver builds on.
func TestFaultPlanTransientDisarms(t *testing.T) {
	plan := NewFaultPlan(Fault{Rank: 1, Episode: 1, Kind: FaultTransient})
	body := func(c *Comm) {
		for i := 0; i < 3; i++ {
			AllreduceSum(c, []float64{2})
		}
	}
	w1 := NewWorld(4)
	w1.SetHooks(plan)
	if err := w1.Run(body); !errors.Is(err, ErrInjected) {
		t.Fatalf("first run = %v, want injected abort", err)
	}
	w2 := NewWorld(4)
	w2.SetHooks(plan)
	if err := w2.Run(body); err != nil {
		t.Fatalf("retry on fresh world = %v, want success (fault disarmed)", err)
	}
	if plan.Fired() != 1 {
		t.Errorf("plan fired %d times, want 1", plan.Fired())
	}
}

// TestFaultPlanTransientFires: Fires>1 keeps a transient armed for that
// many worlds before it disarms.
func TestFaultPlanTransientFires(t *testing.T) {
	plan := NewFaultPlan(Fault{Rank: 0, Episode: 0, Kind: FaultTransient, Fires: 2})
	body := func(c *Comm) { c.Barrier() }
	for attempt := 0; attempt < 3; attempt++ {
		w := NewWorld(2)
		w.SetHooks(plan)
		err := w.Run(body)
		if attempt < 2 && !errors.Is(err, ErrInjected) {
			t.Fatalf("attempt %d = %v, want injected abort", attempt, err)
		}
		if attempt == 2 && err != nil {
			t.Fatalf("attempt 2 = %v, want success after 2 firings", err)
		}
	}
}

// TestFaultPlanDelay: a FaultDelay stalls the rank through the plan's
// injectable Sleep (a recorder here — no wall-clock in the suite) and
// the run completes normally.
func TestFaultPlanDelay(t *testing.T) {
	plan := NewFaultPlan(Fault{Rank: 3, Episode: 1, Kind: FaultDelay, Delay: 7 * time.Millisecond})
	var slept atomic.Int64
	plan.Sleep = func(d time.Duration) { slept.Add(int64(d)) }
	w := NewWorld(8)
	w.SetHooks(plan)
	if err := w.Run(func(c *Comm) {
		c.Barrier()
		AllreduceSum(c, []float64{1})
	}); err != nil {
		t.Fatalf("delayed run should succeed, got %v", err)
	}
	if got := time.Duration(slept.Load()); got != 7*time.Millisecond {
		t.Errorf("slept %v, want 7ms", got)
	}
	if plan.Delayed() != 1 {
		t.Errorf("Delayed() = %d, want 1", plan.Delayed())
	}
	if plan.Fired() != 0 {
		t.Errorf("a delay is not a failure: Fired() = %d", plan.Fired())
	}
}

// TestRandomFaultPlanDeterministic: the same seed yields the same fault
// schedule — two runs of the same program abort identically, with no
// global randomness or wall-clock consulted.
func TestRandomFaultPlanDeterministic(t *testing.T) {
	run := func() string {
		plan := RandomFaultPlan(42, 8, 6, 3, FaultPanic)
		plan.Sleep = func(time.Duration) {}
		w := NewWorld(8)
		w.SetHooks(plan)
		err := w.Run(func(c *Comm) {
			for i := 0; i < 8; i++ {
				AllreduceSum(c, []float64{1})
			}
		})
		if err == nil {
			return "<nil>"
		}
		return err.Error()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same seed, different aborts:\n  %s\n  %s", a, b)
	}
	if a == "<nil>" {
		t.Error("expected at least one panic fault to fire")
	}
}

// TestHookEpisodesCountAllCollectives pins the episode coordinate
// system: every collective entry and bare barrier advances the per-rank
// counter exactly once, so fault coordinates are stable across runs.
func TestHookEpisodesCountAllCollectives(t *testing.T) {
	var maxEp atomic.Int64
	hook := hookFunc(func(rank int, ep int64) error {
		for {
			cur := maxEp.Load()
			if ep <= cur || maxEp.CompareAndSwap(cur, ep) {
				return nil
			}
		}
	})
	w := NewWorld(4)
	w.SetHooks(hook)
	if err := w.Run(func(c *Comm) {
		c.Barrier()                   // episode 0
		AllreduceSum(c, []float64{1}) // episode 1
		AllgatherScalar(c, c.Rank())  // episode 2
		Bcast(c, 0, []int{1, 2})      // episode 3
		ReduceScalarSum(c, int64(1))  // episode 4
	}); err != nil {
		t.Fatal(err)
	}
	if got := maxEp.Load(); got != 4 {
		t.Errorf("max episode = %d, want 4 (5 collective entries)", got)
	}
}

type hookFunc func(rank int, episode int64) error

func (f hookFunc) BeforeCollective(rank int, episode int64) error { return f(rank, episode) }
