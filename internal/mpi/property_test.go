package mpi

import (
	"testing"
	"testing/quick"
)

// Property: AllreduceSum over any per-rank vectors equals the serial sum,
// on every rank.
func TestAllreduceSumProperty(t *testing.T) {
	f := func(data [4][8]int64) bool {
		p := 4
		w := NewWorld(p)
		ok := true
		err := w.Run(func(c *Comm) {
			in := data[c.Rank()][:]
			out := AllreduceSum(c, in)
			for i := range out {
				var want int64
				for r := 0; r < p; r++ {
					want += data[r][i]
				}
				if out[i] != want {
					ok = false
				}
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: Alltoall is an involution of the transpose — receiving ranks
// see exactly what senders addressed to them, for arbitrary payloads.
func TestAlltoallTransposeProperty(t *testing.T) {
	f := func(data [3][3][2]uint32) bool {
		p := 3
		w := NewWorld(p)
		ok := true
		err := w.Run(func(c *Comm) {
			send := make([][]uint32, p)
			for dst := 0; dst < p; dst++ {
				send[dst] = data[c.Rank()][dst][:]
			}
			recv := Alltoall(c, send)
			for src := 0; src < p; src++ {
				for i, v := range recv[src] {
					if v != data[src][c.Rank()][i] {
						ok = false
					}
				}
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: ExscanSum of arbitrary contributions is the prefix of the
// total; the last rank's exscan plus its value equals the reduce-sum.
func TestExscanReduceConsistencyProperty(t *testing.T) {
	f := func(vals [5]int32) bool {
		p := 5
		w := NewWorld(p)
		ok := true
		err := w.Run(func(c *Comm) {
			v := int64(vals[c.Rank()])
			pre := ExscanSum(c, v)
			tot := ReduceScalarSum(c, v)
			var want int64
			for r := 0; r < c.Rank(); r++ {
				want += int64(vals[r])
			}
			var all int64
			for r := 0; r < p; r++ {
				all += int64(vals[r])
			}
			if pre != want || tot != all {
				ok = false
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// World reuse: stats must accumulate across consecutive Run calls and
// reset cleanly.
func TestWorldReuseAcrossRuns(t *testing.T) {
	w := NewWorld(3)
	for i := 0; i < 2; i++ {
		if err := w.Run(func(c *Comm) {
			AllreduceSum(c, []int64{1})
		}); err != nil {
			t.Fatal(err)
		}
	}
	if got := w.Stats()[0].Collectives; got != 2 {
		t.Errorf("collectives after two runs = %d, want 2", got)
	}
	w.ResetStats()
	if got := w.Stats()[0].Collectives; got != 0 {
		t.Errorf("after reset = %d", got)
	}
}
