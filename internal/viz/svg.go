// Package viz renders partitions of 2D meshes as SVG images, reproducing
// the visual comparison of the paper's Figure 1 (hugetric-0000 in 8
// blocks under the five tools).
package viz

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"

	"geographer/internal/geom"
)

// Options controls rendering.
type Options struct {
	Width     int     // pixel width (height follows the aspect ratio)
	PointSize float64 // point radius in pixels
	MaxPoints int     // subsample above this count (0 = no limit)
}

// DefaultOptions renders 800px wide images with small dots.
func DefaultOptions() Options {
	return Options{Width: 800, PointSize: 1.6, MaxPoints: 60000}
}

// blockColor returns a well-spread palette color for block b of k, using
// the golden-angle hue walk.
func blockColor(b, k int) string {
	h := math.Mod(float64(b)*0.61803398875, 1) * 360
	r, g, bl := hslToRGB(h, 0.65, 0.55)
	return fmt.Sprintf("#%02x%02x%02x", r, g, bl)
}

func hslToRGB(h, s, l float64) (uint8, uint8, uint8) {
	c := (1 - math.Abs(2*l-1)) * s
	hp := h / 60
	x := c * (1 - math.Abs(math.Mod(hp, 2)-1))
	var r, g, b float64
	switch {
	case hp < 1:
		r, g, b = c, x, 0
	case hp < 2:
		r, g, b = x, c, 0
	case hp < 3:
		r, g, b = 0, c, x
	case hp < 4:
		r, g, b = 0, x, c
	case hp < 5:
		r, g, b = x, 0, c
	default:
		r, g, b = c, 0, x
	}
	m := l - c/2
	return uint8(255 * (r + m)), uint8(255 * (g + m)), uint8(255 * (b + m))
}

// RenderPartition writes an SVG of the 2D points colored by block.
func RenderPartition(w io.Writer, ps *geom.PointSet, part []int32, k int, opts Options) error {
	if ps.Dim != 2 {
		return fmt.Errorf("viz: only 2D point sets renderable, got dim %d", ps.Dim)
	}
	if len(part) != ps.Len() {
		return fmt.Errorf("viz: %d assignments for %d points", len(part), ps.Len())
	}
	if opts.Width <= 0 {
		opts = DefaultOptions()
	}
	box := ps.Bounds()
	sx := box.Side(0)
	sy := box.Side(1)
	if sx == 0 {
		sx = 1
	}
	if sy == 0 {
		sy = 1
	}
	height := int(float64(opts.Width) * sy / sx)
	if height < 1 {
		height = 1
	}
	scale := float64(opts.Width) / sx

	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		opts.Width, height, opts.Width, height)
	fmt.Fprintf(bw, `<rect width="%d" height="%d" fill="white"/>`+"\n", opts.Width, height)

	n := ps.Len()
	stride := 1
	if opts.MaxPoints > 0 && n > opts.MaxPoints {
		stride = (n + opts.MaxPoints - 1) / opts.MaxPoints
	}
	// One <g> per block keeps the file small (shared fill attribute).
	for b := 0; b < k; b++ {
		fmt.Fprintf(bw, `<g fill="%s">`+"\n", blockColor(b, k))
		for i := 0; i < n; i += stride {
			if part[i] != int32(b) {
				continue
			}
			p := ps.At(i)
			x := (p[0] - box.Min[0]) * scale
			y := float64(height) - (p[1]-box.Min[1])*scale
			fmt.Fprintf(bw, `<circle cx="%.1f" cy="%.1f" r="%.1f"/>`+"\n", x, y, opts.PointSize)
		}
		fmt.Fprintln(bw, "</g>")
	}
	fmt.Fprintln(bw, "</svg>")
	return bw.Flush()
}

// RenderMesh writes an SVG with the mesh edges drawn under the colored
// points: interior edges in light gray, cut edges (endpoints in different
// blocks) in black — making the partition boundary visible like the
// paper's Figure 1.
func RenderMesh(w io.Writer, ps *geom.PointSet, adj func(v int32) []int32, part []int32, k int, opts Options) error {
	if ps.Dim != 2 {
		return fmt.Errorf("viz: only 2D meshes renderable, got dim %d", ps.Dim)
	}
	if len(part) != ps.Len() {
		return fmt.Errorf("viz: %d assignments for %d points", len(part), ps.Len())
	}
	if opts.Width <= 0 {
		opts = DefaultOptions()
	}
	box := ps.Bounds()
	sx, sy := box.Side(0), box.Side(1)
	if sx == 0 {
		sx = 1
	}
	if sy == 0 {
		sy = 1
	}
	height := int(float64(opts.Width) * sy / sx)
	if height < 1 {
		height = 1
	}
	scale := float64(opts.Width) / sx
	px := func(p geom.Point) (float64, float64) {
		return (p[0] - box.Min[0]) * scale, float64(height) - (p[1]-box.Min[1])*scale
	}

	n := ps.Len()
	stride := 1
	if opts.MaxPoints > 0 && n > opts.MaxPoints {
		stride = (n + opts.MaxPoints - 1) / opts.MaxPoints
	}

	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		opts.Width, height, opts.Width, height)
	fmt.Fprintf(bw, `<rect width="%d" height="%d" fill="white"/>`+"\n", opts.Width, height)

	// Interior edges, then cut edges on top.
	for pass, style := range []string{`stroke="#dddddd" stroke-width="0.4"`, `stroke="#000000" stroke-width="0.8"`} {
		fmt.Fprintf(bw, "<g %s>\n", style)
		for v := 0; v < n; v += stride {
			vx, vy := px(ps.At(v))
			for _, u := range adj(int32(v)) {
				if u <= int32(v) || int(u)%stride != 0 {
					continue
				}
				isCut := part[v] != part[u]
				if (pass == 1) != isCut {
					continue
				}
				ux, uy := px(ps.At(int(u)))
				fmt.Fprintf(bw, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f"/>`+"\n", vx, vy, ux, uy)
			}
		}
		fmt.Fprintln(bw, "</g>")
	}
	for b := 0; b < k; b++ {
		fmt.Fprintf(bw, `<g fill="%s">`+"\n", blockColor(b, k))
		for i := 0; i < n; i += stride {
			if part[i] != int32(b) {
				continue
			}
			x, y := px(ps.At(i))
			fmt.Fprintf(bw, `<circle cx="%.1f" cy="%.1f" r="%.1f"/>`+"\n", x, y, opts.PointSize)
		}
		fmt.Fprintln(bw, "</g>")
	}
	fmt.Fprintln(bw, "</svg>")
	return bw.Flush()
}

// RenderToFile writes the SVG to a file.
func RenderToFile(path string, ps *geom.PointSet, part []int32, k int, opts Options) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := RenderPartition(f, ps, part, k, opts); err != nil {
		return err
	}
	return f.Close()
}
