package viz

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"geographer/internal/geom"
)

func testPoints(n int) (*geom.PointSet, []int32) {
	ps := geom.NewPointSet(2, n)
	part := make([]int32, n)
	for i := 0; i < n; i++ {
		ps.Append(geom.Point{float64(i % 10), float64(i / 10)}, 1)
		part[i] = int32(i % 4)
	}
	return ps, part
}

func TestRenderPartitionProducesSVG(t *testing.T) {
	ps, part := testPoints(100)
	var buf bytes.Buffer
	if err := RenderPartition(&buf, ps, part, 4, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.HasPrefix(s, "<svg") || !strings.HasSuffix(strings.TrimSpace(s), "</svg>") {
		t.Error("not a complete SVG document")
	}
	if strings.Count(s, "<g fill=") != 4 {
		t.Errorf("expected 4 block groups, got %d", strings.Count(s, "<g fill="))
	}
	if strings.Count(s, "<circle") != 100 {
		t.Errorf("expected 100 circles, got %d", strings.Count(s, "<circle"))
	}
}

func TestRenderSubsampling(t *testing.T) {
	ps, part := testPoints(1000)
	opts := DefaultOptions()
	opts.MaxPoints = 100
	var buf bytes.Buffer
	if err := RenderPartition(&buf, ps, part, 4, opts); err != nil {
		t.Fatal(err)
	}
	if c := strings.Count(buf.String(), "<circle"); c > 120 {
		t.Errorf("subsampling ineffective: %d circles", c)
	}
}

func TestRenderErrors(t *testing.T) {
	ps := geom.NewPointSet(3, 1)
	ps.Append(geom.Point{1, 2, 3}, 1)
	if err := RenderPartition(&bytes.Buffer{}, ps, []int32{0}, 1, DefaultOptions()); err == nil {
		t.Error("3D accepted")
	}
	ps2, _ := testPoints(10)
	if err := RenderPartition(&bytes.Buffer{}, ps2, []int32{0}, 1, DefaultOptions()); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestRenderToFile(t *testing.T) {
	ps, part := testPoints(50)
	path := filepath.Join(t.TempDir(), "out.svg")
	if err := RenderToFile(path, ps, part, 4, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
}

func TestBlockColorsDistinct(t *testing.T) {
	seen := map[string]bool{}
	for b := 0; b < 8; b++ {
		c := blockColor(b, 8)
		if seen[c] {
			t.Errorf("duplicate color %s", c)
		}
		seen[c] = true
		if len(c) != 7 || c[0] != '#' {
			t.Errorf("bad color format %q", c)
		}
	}
}

func TestRenderMeshDrawsCutEdges(t *testing.T) {
	// A 4-point path 0-1-2-3 split in the middle: 1 cut edge, 2 interior.
	ps := geom.NewPointSet(2, 4)
	for i := 0; i < 4; i++ {
		ps.Append(geom.Point{float64(i), 0.5}, 1)
	}
	part := []int32{0, 0, 1, 1}
	adj := func(v int32) []int32 {
		switch v {
		case 0:
			return []int32{1}
		case 1:
			return []int32{0, 2}
		case 2:
			return []int32{1, 3}
		default:
			return []int32{2}
		}
	}
	var buf bytes.Buffer
	if err := RenderMesh(&buf, ps, adj, part, 2, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if strings.Count(s, "<line") != 3 {
		t.Errorf("expected 3 edges, got %d", strings.Count(s, "<line"))
	}
	if !strings.Contains(s, "#000000") || !strings.Contains(s, "#dddddd") {
		t.Error("missing cut/interior edge styles")
	}
	if strings.Count(s, "<circle") != 4 {
		t.Errorf("expected 4 points, got %d", strings.Count(s, "<circle"))
	}
}

func TestRenderMeshErrors(t *testing.T) {
	ps := geom.NewPointSet(3, 1)
	ps.Append(geom.Point{0, 0, 0}, 1)
	adj := func(int32) []int32 { return nil }
	if err := RenderMesh(&bytes.Buffer{}, ps, adj, []int32{0}, 1, DefaultOptions()); err == nil {
		t.Error("3D accepted")
	}
}

func TestDegenerateExtents(t *testing.T) {
	// All points on a horizontal line: height must stay >= 1, no division
	// by zero.
	ps := geom.NewPointSet(2, 5)
	part := make([]int32, 5)
	for i := 0; i < 5; i++ {
		ps.Append(geom.Point{float64(i), 3}, 1)
	}
	if err := RenderPartition(&bytes.Buffer{}, ps, part, 1, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
}
