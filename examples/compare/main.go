// Compare: the Figure 1 reenactment. Partition one adaptively refined
// triangle mesh (hugetric-style) into 8 blocks with all five tools, write
// one SVG per tool, and print the §2 metrics side by side — the visual
// and quantitative comparison that opens the paper's evaluation.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"geographer"
)

func main() {
	dir := "figs"
	if len(os.Args) > 1 {
		dir = os.Args[1]
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}

	m, err := geographer.GenerateMesh(geographer.MeshRefined, 15000, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mesh %s: %d vertices, partitioning into 8 blocks\n\n", m.Name, m.N())
	fmt.Printf("%-14s %8s %12s %12s %10s\n", "tool", "cut", "maxCommVol", "totCommVol", "imbalance")

	methods := []string{
		geographer.MethodRCB,
		geographer.MethodRIB,
		geographer.MethodMultiJagged,
		geographer.MethodHSFC,
		geographer.MethodGeographer,
	}
	for _, method := range methods {
		blocks, err := geographer.Partition(m.Coords, m.Dim, nil, geographer.Options{K: 8, Method: method})
		if err != nil {
			log.Fatal(err)
		}
		q, err := geographer.Evaluate(m.XAdj, m.Adj, m.Coords, m.Dim, nil, blocks, 8)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %8d %12d %12d %10.4f\n", method, q.EdgeCut, q.MaxCommVol, q.TotalCommVol, q.Imbalance)
		path := filepath.Join(dir, fmt.Sprintf("fig1-%s.svg", method))
		if err := geographer.RenderSVG(path, m.Coords, blocks, 8); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("\nSVGs written to %s/ — compare the block shapes: RCB/RIB produce thin\n", dir)
	fmt.Println("strips, MultiJagged rectangles, HSFC wrinkled boundaries, and balanced")
	fmt.Println("k-means curved compact blocks (paper, Figure 1).")
}
