// Climate: the 2.5D use case from the paper's introduction. Ocean meshes
// carry a node weight (the number of vertical layers below each surface
// point); load balance must hold for the *weighted* sum, not the point
// count. This example partitions a synthetic ocean mesh with Geographer
// and with Hilbert-SFC and compares weighted balance and communication
// volume.
package main

import (
	"fmt"
	"log"

	"geographer"
)

func main() {
	m, err := geographer.GenerateMesh(geographer.MeshClimate, 30000, 7)
	if err != nil {
		log.Fatal(err)
	}
	totalW := 0.0
	for _, w := range m.Weights {
		totalW += w
	}
	fmt.Printf("ocean mesh: %d surface points, %.0f weighted 3D cells\n", m.N(), totalW)

	const k = 32
	for _, method := range []string{geographer.MethodGeographer, geographer.MethodHSFC} {
		blocks, err := geographer.Partition(m.Coords, m.Dim, m.Weights, geographer.Options{
			K: k, Method: method, Strict: method == geographer.MethodGeographer,
		})
		if err != nil {
			log.Fatal(err)
		}
		q, err := geographer.Evaluate(m.XAdj, m.Adj, m.Coords, m.Dim, m.Weights, blocks, k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s weighted imbalance %.4f | totCommVol %6d | cut %6d | harmDiam %.1f\n",
			method, q.Imbalance, q.TotalCommVol, q.EdgeCut, q.HarmDiameter)
	}
	fmt.Println("\nGeographer holds the weighted ε=3% constraint while cutting less; SFC")
	fmt.Println("balances perfectly along the curve but pays with wrinkled boundaries.")

	// The 2.5D equivalence (paper §1): lifting the weighted 2D partition
	// column-wise onto the extruded 3D mesh preserves perfect load
	// correspondence — partitioning the surface IS partitioning the
	// volume.
	surface, err := geographer.GenerateMesh(geographer.MeshClimate, 5000, 7)
	if err != nil {
		log.Fatal(err)
	}
	blocks, err := geographer.Partition(surface.Coords, surface.Dim, surface.Weights,
		geographer.Options{K: 8, Strict: true})
	if err != nil {
		log.Fatal(err)
	}
	vol, lifted, err := geographer.Extrude(surface, blocks, 0.005)
	if err != nil {
		log.Fatal(err)
	}
	q3, err := geographer.Evaluate(vol.XAdj, vol.Adj, vol.Coords, vol.Dim, nil, lifted, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nextruded 3D mesh: %d cells from %d surface points\n", vol.N(), surface.N())
	fmt.Printf("lifted 3D partition imbalance: %.4f (inherits the weighted 2D balance)\n", q3.Imbalance)
}
